// Shared buffer pool of 8 KB pages, LRU replacement.
//
// Mirrors POSTGRES 4.0.1: "an in-memory shared cache of recently used 8 KByte
// data pages. The size of this cache is tunable ...; as shipped, the system
// uses 64 buffers, but the version in use locally uses 300. Data pages are
// kicked out of this cache in LRU order, regardless of the device from which
// they came. Dirty pages are written to backing store before being deleted
// from the cache."
//
// Because POSTGRES has no write-ahead log, commit durability comes from
// forcing the dirty pages of every relation the transaction touched
// (FlushRelation), plus persisting the commit-log entry. That force policy —
// not a WAL — is what the paper's write benchmarks measure.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/device/device.h"
#include "src/sim/cost_params.h"
#include "src/storage/page.h"
#include "src/util/status.h"

namespace invfs {

inline constexpr size_t kDefaultBuffers = 64;   // as shipped
inline constexpr size_t kBerkeleyBuffers = 300; // Berkeley's local config

class BufferPool;

// RAII pin on a buffered page. The frame cannot be evicted while pinned.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, size_t frame, std::byte* data);
  ~PageRef();
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  Page page() { return Page(data_); }
  const std::byte* data() const { return data_; }
  std::byte* data() { return data_; }
  // Must be called after modifying page contents.
  void MarkDirty();
  bool valid() const { return pool_ != nullptr; }
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  std::byte* data_ = nullptr;
};

class BufferPool {
 public:
  BufferPool(DeviceSwitch* devices, size_t num_buffers, SimClock* clock,
             CpuParams cpu = {});
  ~BufferPool();

  // Pin block `block` of `rel`, reading it from its device if not cached.
  Result<PageRef> Pin(Oid rel, uint32_t block);

  // Extend `rel` by one block; returns the new block pinned and initialized.
  // The new page is dirty; it reaches the device at flush/eviction.
  Result<PageRef> Extend(Oid rel, uint32_t* new_block);

  // Logical size of the relation: device blocks plus unflushed extensions.
  Result<uint32_t> NumBlocks(Oid rel);

  // Write all dirty pages of `rel` to its device (commit force policy).
  Status FlushRelation(Oid rel);
  Status FlushAll();

  // Flush everything and invalidate every frame; the next access reads from
  // the device. Used by benchmarks ("all caches were flushed before each
  // test") and by DropRelation.
  Status FlushAndInvalidate();

  // Drop all frames of `rel` without writing them (relation being deleted).
  void DiscardRelation(Oid rel);

  // Crash simulation: throw away all volatile state, including dirty pages.
  void DiscardAll();

  size_t num_buffers() const { return frames_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Number of pins the calling thread currently holds (across all pools).
  // Used by the lock manager's debug-invariants mode to flag threads that
  // block on a table lock while holding page latches. Pins must be released
  // on the thread that acquired them for this count to stay meaningful.
  static int ThreadPinCount();

 private:
  friend class PageRef;

  struct Tag {
    Oid rel = kInvalidOid;
    uint32_t block = 0;
    auto operator<=>(const Tag&) const = default;
  };

  struct Frame {
    Tag tag;
    std::unique_ptr<std::byte[]> data;
    bool valid = false;
    bool dirty = false;
    int pins = 0;
    uint64_t last_used = 0;
  };

  void Unpin(size_t frame);
  void Touch(size_t frame);
  // Pick a victim frame (unpinned, least recently used) and write it back if
  // dirty. Requires mu_ held.
  Result<size_t> EvictOne();
  // Write frame's page to its device, honoring extension ordering (a block
  // beyond the device's current size forces lower pending blocks out first).
  Status WriteFrame(size_t frame);
  Result<uint32_t> DeviceBlocks(Oid rel);

  DeviceSwitch* devices_;
  SimClock* clock_;
  CpuParams cpu_;

  std::mutex mu_;
  std::vector<Frame> frames_;
  std::map<Tag, size_t> table_;  // ordered: enables per-relation range scans
  std::map<Oid, uint32_t> pending_extensions_;  // rel -> blocks past device size
  uint64_t clock_tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace invfs
