// Shared buffer pool of 8 KB pages, sharded for concurrency.
//
// Mirrors POSTGRES 4.0.1's semantics: "an in-memory shared cache of recently
// used 8 KByte data pages. The size of this cache is tunable ...; as shipped,
// the system uses 64 buffers, but the version in use locally uses 300. Data
// pages are kicked out of this cache ... regardless of the device from which
// they came. Dirty pages are written to backing store before being deleted
// from the cache."
//
// POSTGRES 4.0.1 serialized the whole pool behind one spinlock and scanned
// all buffers for an LRU victim. We keep the semantics but not the
// bottleneck:
//   * The (rel, block) -> frame mapping is split across N independently
//     locked shards; a buffer *hit* — the hot path of every scan — touches
//     only its shard's mutex.
//   * Per-frame pin counts, dirty bits and clock-sweep reference bits are
//     atomics, so MarkDirty and Unpin take no lock at all, and a pin taken on
//     one thread may be released on another (frames, not threads, own pins).
//   * Victim selection is a clock sweep (second-chance) over the frame array
//     instead of an O(n) LRU scan; misses, evictions, extensions and flushes
//     serialize on one eviction/IO mutex, which also gives the pending-
//     extension bookkeeping a stable world to reason about.
//
// Because POSTGRES has no write-ahead log, commit durability comes from
// forcing the dirty pages of every relation the transaction touched
// (FlushRelation), plus persisting the commit-log entry. That force policy —
// not a WAL — is what the paper's write benchmarks measure.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/device/device.h"
#include "src/obs/metrics.h"
#include "src/sim/cost_params.h"
#include "src/storage/page.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

inline constexpr size_t kDefaultBuffers = 64;   // as shipped
inline constexpr size_t kBerkeleyBuffers = 300; // Berkeley's local config

// Mapping shards used when the constructor is told to pick (partitions = 0).
inline constexpr size_t kDefaultPoolPartitions = 16;

class BufferPool;

// RAII pin on a buffered page. The frame cannot be evicted while pinned.
// Pins are frame-owned: a PageRef may be moved to and released on a different
// thread than the one that pinned it without corrupting any accounting.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, size_t frame, std::byte* data,
          std::shared_ptr<std::atomic<int>> pinner);
  ~PageRef();
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  Page page() { return Page(data_); }
  const std::byte* data() const { return data_; }
  std::byte* data() { return data_; }
  // Must be called after modifying page contents. Lock-free: sets the
  // frame's atomic dirty bit without touching any pool mutex.
  void MarkDirty();
  // The frame's page latch. Snapshot-isolation readers share heap pages with
  // in-place writers (xmax stamping, slot appends, vacuum compaction) with
  // no table lock between them; both sides bracket their access to the page
  // *bytes* with this latch. Leaf-level: holders must not take pool mutexes,
  // table locks, or another page latch. Flushers deliberately skip it — a
  // frame being written back is either unpinned (eviction) or belongs to a
  // relation whose writer already quiesced (commit force under 2PL).
  Mutex& Latch();
  bool valid() const { return pool_ != nullptr; }
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  std::byte* data_ = nullptr;
  // Per-thread pin counter of the thread that took the pin (for the lock
  // manager's latch-vs-lock inversion check). Shared ownership keeps the
  // counter alive even if the pinning thread exits before the release.
  std::shared_ptr<std::atomic<int>> pinner_;
};

class BufferPool {
 public:
  // `partitions` is the number of mapping shards; 0 picks the default
  // (kDefaultPoolPartitions). 1 degenerates to the old single-lock pool —
  // benchmarks use that as the contention baseline. `metrics` is the registry
  // the pool publishes its buffer.* counters into (the owning Database's);
  // nullptr gives the pool a private registry so standalone pools in tests
  // and benches never mix their numbers.
  BufferPool(DeviceSwitch* devices, size_t num_buffers, SimClock* clock,
             CpuParams cpu = {}, size_t partitions = 0,
             MetricsRegistry* metrics = nullptr);
  ~BufferPool();

  // Pin block `block` of `rel`, reading it from its device if not cached.
  Result<PageRef> Pin(Oid rel, uint32_t block) EXCLUDES(io_mu_);

  // Extend `rel` by one block; returns the new block pinned and initialized.
  // The new page is dirty; it reaches the device at flush/eviction.
  Result<PageRef> Extend(Oid rel, uint32_t* new_block) EXCLUDES(io_mu_);

  // Logical size of the relation: device blocks plus unflushed extensions.
  Result<uint32_t> NumBlocks(Oid rel) EXCLUDES(io_mu_);

  // Write all dirty pages of `rel` to its device (commit force policy).
  Status FlushRelation(Oid rel) EXCLUDES(io_mu_);
  Status FlushAll() EXCLUDES(io_mu_);

  // Flush everything and invalidate every frame; the next access reads from
  // the device. Used by benchmarks ("all caches were flushed before each
  // test") and by DropRelation. Requires a quiesced pool (no pins held);
  // the requirement is enforced by rechecking pin counts while holding every
  // shard mutex, so a racing Pin either completes before the invalidation or
  // misses cleanly after it — never holds a ref to an invalidated frame.
  Status FlushAndInvalidate() EXCLUDES(io_mu_);

  // Drop all frames of `rel` without writing them (relation being deleted).
  void DiscardRelation(Oid rel) EXCLUDES(io_mu_);

  // Crash simulation: throw away all volatile state, including dirty pages.
  void DiscardAll() EXCLUDES(io_mu_);

  size_t num_buffers() const { return num_frames_; }
  size_t num_partitions() const { return shards_.size(); }
  // Thin reads over the registry counters (buffer.hits / buffer.misses /
  // buffer.evictions / buffer.write_backs): sums over the counter stripes.
  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  uint64_t evictions() const { return evictions_->Value(); }
  uint64_t write_backs() const { return write_backs_->Value(); }

  // Number of pins the calling thread currently holds (across all pools).
  // Used by the lock manager's debug-invariants mode to flag threads that
  // block on a table lock while holding page latches. A pin released on a
  // different thread is debited from the thread that took it, so the count
  // stays balanced even when PageRefs migrate across threads.
  static int ThreadPinCount();

 private:
  friend class PageRef;

  struct Tag {
    Oid rel = kInvalidOid;
    uint32_t block = 0;
    auto operator<=>(const Tag&) const = default;
  };
  struct TagHash {
    size_t operator()(const Tag& t) const {
      uint64_t v = (static_cast<uint64_t>(t.rel) << 32) | t.block;
      // 64-bit mix (splitmix64 finalizer) so consecutive blocks spread
      // across shards instead of clustering.
      v ^= v >> 30;
      v *= 0xbf58476d1ce4e5b9ULL;
      v ^= v >> 27;
      v *= 0x94d049bb133111ebULL;
      v ^= v >> 31;
      return static_cast<size_t>(v);
    }
  };

  // Frame metadata. `tag`/`valid` change only under io_mu_ *and* the tag's
  // shard mutex; `pins` is incremented only under the shard mutex (so a
  // sweep holding that mutex can trust pins == 0) but decremented anywhere;
  // `dirty` and `ref` are free-running atomics. (`tag`/`valid` carry no
  // GUARDED_BY: a nested struct cannot name the pool's io_mu_, and their
  // guard is the *conjunction* of two capabilities, which the analysis
  // cannot express — the protocol comment above is normative and TSan
  // still checks it dynamically.) Flushers *claim* the dirty
  // bit (exchange to false) before reading page data, and restore it if the
  // device write fails: a MarkDirty racing with the snapshot re-dirties the
  // frame, so a mid-mutation image is never the last one written and no
  // modification is ever silently marked clean.
  struct Frame {
    Tag tag;
    std::unique_ptr<std::byte[]> data;
    bool valid = false;
    std::atomic<bool> dirty{false};
    std::atomic<bool> ref{false};
    std::atomic<int> pins{0};
    // Page latch (see PageRef::Latch). Belongs to the frame, not the page:
    // remapping the frame to a different (rel, block) is fine because a
    // latch is only ever held by a pin holder, and remapping requires
    // pins == 0.
    Mutex latch;
  };

  // One mapping shard: tag -> frame index for tags that hash here. Lock
  // order: io_mu_ strictly before any shard mu (misses hold io_mu_ while
  // completing the mapping under the shard mutex); a thread holding a shard
  // mutex must never perform device I/O or take io_mu_ (invfs_lint rule
  // shard-lock-io).
  struct Shard {
    Mutex mu;
    std::unordered_map<Tag, size_t, TagHash> table GUARDED_BY(mu);
  };

  Shard& ShardFor(const Tag& tag) {
    return *shards_[TagHash{}(tag) & shard_mask_];
  }

  void Unpin(size_t frame);
  // Clock sweep: pick a victim frame (unpinned, reference bit clear), write
  // it back if dirty, and return it invalid and unmapped. The write-back
  // happens while the victim is still mapped, so a failed device write
  // leaves the dirty page reachable and retryable; frames pinned or
  // re-dirtied during the write-back are skipped.
  Result<size_t> EvictOne() REQUIRES(io_mu_);
  // Write frame's page to its device, honoring extension ordering (a block
  // beyond the device's current size forces lower pending blocks out first).
  // Must not be called with any shard mutex held.
  Status WriteFrame(size_t frame) REQUIRES(io_mu_);
  // Flush the dirty frames among `frames` in ascending (rel, block) order.
  Status FlushFrames(std::vector<size_t> frames) REQUIRES(io_mu_);
  Result<uint32_t> DeviceBlocks(Oid rel) REQUIRES(io_mu_);
  // The invalidation tail of FlushAndInvalidate: recheck quiescence and clear
  // every mapping while holding every shard mutex.
  Status InvalidateAllQuiesced() REQUIRES(io_mu_);

  DeviceSwitch* devices_;
  SimClock* clock_;
  CpuParams cpu_;

  size_t num_frames_ = 0;
  std::unique_ptr<Frame[]> frames_;
  std::vector<std::unique_ptr<Shard>> shards_;  // power-of-two count
  size_t shard_mask_ = 0;

  // Serializes everything that changes the mapping or performs device I/O:
  // miss handling, eviction, extension, flushes and discards. Also guards
  // pending_extensions_ and the clock hand. Hits never take it. Acquired
  // strictly before any Shard::mu (see Shard).
  Mutex io_mu_;
  // rel -> blocks past device size
  std::map<Oid, uint32_t> pending_extensions_ GUARDED_BY(io_mu_);
  size_t hand_ GUARDED_BY(io_mu_) = 0;  // clock-sweep position

  // buffer.* metrics. Cached registry pointers: an increment is one striped
  // relaxed fetch_add, so the hit path stays as cheap as the raw atomics the
  // counters replaced. Owned registry only when none was supplied.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Counter* evictions_ = nullptr;
  Counter* write_backs_ = nullptr;
  Counter* sweep_steps_ = nullptr;
};

}  // namespace invfs
