#include "src/buffer/buffer_pool.h"

#include <algorithm>

namespace invfs {

namespace {
// Pins held by the current thread, across all pools. Maintained so the lock
// manager can assert (under debug invariants) that no thread blocks on a
// table lock while holding page latches — the latch-vs-lock inversion that
// starves eviction.
thread_local int t_thread_pins = 0;
}  // namespace

int BufferPool::ThreadPinCount() { return t_thread_pins; }

// -------------------------------------------------------------------- PageRef

PageRef::PageRef(BufferPool* pool, size_t frame, std::byte* data)
    : pool_(pool), frame_(frame), data_(data) {}

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

void PageRef::MarkDirty() {
  INV_CHECK(pool_ != nullptr);
  std::lock_guard lock(pool_->mu_);
  pool_->frames_[frame_].dirty = true;
}

// ----------------------------------------------------------------- BufferPool

BufferPool::BufferPool(DeviceSwitch* devices, size_t num_buffers, SimClock* clock,
                       CpuParams cpu)
    : devices_(devices), clock_(clock), cpu_(cpu) {
  INV_CHECK(num_buffers > 0);
  frames_.resize(num_buffers);
  for (auto& f : frames_) {
    f.data = std::make_unique<std::byte[]>(kPageSize);
  }
}

BufferPool::~BufferPool() = default;

void BufferPool::Unpin(size_t frame) {
  std::lock_guard lock(mu_);
  INV_CHECK(frames_[frame].pins > 0);
  --frames_[frame].pins;
  --t_thread_pins;
}

void BufferPool::Touch(size_t frame) { frames_[frame].last_used = ++clock_tick_; }

Result<uint32_t> BufferPool::DeviceBlocks(Oid rel) {
  INV_ASSIGN_OR_RETURN(DeviceManager * mgr, devices_->ManagerFor(rel));
  return mgr->NumBlocks(rel);
}

Result<uint32_t> BufferPool::NumBlocks(Oid rel) {
  std::lock_guard lock(mu_);
  auto it = pending_extensions_.find(rel);
  const uint32_t pending = it == pending_extensions_.end() ? 0 : it->second;
  INV_ASSIGN_OR_RETURN(uint32_t dev, DeviceBlocks(rel));
  return dev + pending;
}

Result<size_t> BufferPool::EvictOne() {
  size_t victim = frames_.size();
  uint64_t oldest = ~0ULL;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pins > 0) {
      continue;
    }
    if (!f.valid) {
      return i;  // free frame
    }
    if (f.last_used < oldest) {
      oldest = f.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::ResourceExhausted("all buffers pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    INV_RETURN_IF_ERROR(WriteFrame(victim));
  }
  table_.erase(f.tag);
  f.valid = false;
  f.dirty = false;
  return victim;
}

Status BufferPool::WriteFrame(size_t frame) {
  Frame& f = frames_[frame];
  INV_ASSIGN_OR_RETURN(DeviceManager * mgr, devices_->ManagerFor(f.tag.rel));
  INV_ASSIGN_OR_RETURN(uint32_t dev_size, mgr->NumBlocks(f.tag.rel));
  // Devices cannot hold holes: if this block extends past the device's
  // current size, force the intervening pending blocks (which must still be
  // buffered — they were never written) out first, in order.
  for (uint32_t b = dev_size; b < f.tag.block; ++b) {
    auto it = table_.find(Tag{f.tag.rel, b});
    if (it == table_.end()) {
      return Status::Internal("pending extension block " + std::to_string(b) +
                              " of rel " + std::to_string(f.tag.rel) +
                              " missing from buffer pool");
    }
    Frame& g = frames_[it->second];
    if (g.dirty) {
      Page gpage(g.data.get());
      if (gpage.IsInitialized()) {
        gpage.UpdateChecksum();
      }
      INV_RETURN_IF_ERROR(
          mgr->WriteBlock(g.tag.rel, g.tag.block, {g.data.get(), kPageSize}));
      g.dirty = false;
    }
  }
  Page fpage(f.data.get());
  if (fpage.IsInitialized()) {
    fpage.UpdateChecksum();
  }
  INV_RETURN_IF_ERROR(mgr->WriteBlock(f.tag.rel, f.tag.block, {f.data.get(), kPageSize}));
  f.dirty = false;
  // Recompute pending extensions for this relation.
  INV_ASSIGN_OR_RETURN(uint32_t new_dev_size, mgr->NumBlocks(f.tag.rel));
  auto pit = pending_extensions_.find(f.tag.rel);
  if (pit != pending_extensions_.end()) {
    INV_ASSIGN_OR_RETURN(uint32_t logical, [&]() -> Result<uint32_t> {
      return static_cast<uint32_t>(pit->second + dev_size);
    }());
    pit->second = logical > new_dev_size ? logical - new_dev_size : 0;
    if (pit->second == 0) {
      pending_extensions_.erase(pit);
    }
  }
  return Status::Ok();
}

Result<PageRef> BufferPool::Pin(Oid rel, uint32_t block) {
  std::lock_guard lock(mu_);
  clock_->Advance(cpu_.page_cpu_us);
  auto it = table_.find(Tag{rel, block});
  if (it != table_.end()) {
    ++hits_;
    Frame& f = frames_[it->second];
    ++f.pins;
    ++t_thread_pins;
    Touch(it->second);
    return PageRef(this, it->second, f.data.get());
  }
  ++misses_;
  INV_ASSIGN_OR_RETURN(size_t frame, EvictOne());
  Frame& f = frames_[frame];
  INV_ASSIGN_OR_RETURN(DeviceManager * mgr, devices_->ManagerFor(rel));
  INV_RETURN_IF_ERROR(mgr->ReadBlock(rel, block, {f.data.get(), kPageSize}));
  // Self-identification + checksum check on every read from backing store:
  // detects media corruption and misdirected writes (paper's reserved-space
  // design, extended with a whole-frame CRC32C).
  Page page(f.data.get());
  if (page.IsInitialized()) {
    INV_RETURN_IF_ERROR(page.VerifyChecksum());
    INV_RETURN_IF_ERROR(page.VerifySelfIdent(rel, block));
  }
  f.tag = Tag{rel, block};
  f.valid = true;
  f.dirty = false;
  f.pins = 1;
  ++t_thread_pins;
  table_[f.tag] = frame;
  Touch(frame);
  return PageRef(this, frame, f.data.get());
}

Result<PageRef> BufferPool::Extend(Oid rel, uint32_t* new_block) {
  std::lock_guard lock(mu_);
  clock_->Advance(cpu_.page_cpu_us);
  INV_ASSIGN_OR_RETURN(uint32_t dev, DeviceBlocks(rel));
  uint32_t& pending = pending_extensions_[rel];
  const uint32_t block = dev + pending;
  ++pending;
  INV_ASSIGN_OR_RETURN(size_t frame, EvictOne());
  Frame& f = frames_[frame];
  f.tag = Tag{rel, block};
  f.valid = true;
  f.dirty = true;
  f.pins = 1;
  ++t_thread_pins;
  Page page(f.data.get());
  page.Init(rel, block);
  table_[f.tag] = frame;
  Touch(frame);
  if (new_block != nullptr) {
    *new_block = block;
  }
  return PageRef(this, frame, f.data.get());
}

Status BufferPool::FlushRelation(Oid rel) {
  std::lock_guard lock(mu_);
  // std::map iteration is ordered by (rel, block): extension ordering holds.
  for (auto it = table_.lower_bound(Tag{rel, 0});
       it != table_.end() && it->first.rel == rel; ++it) {
    Frame& f = frames_[it->second];
    if (f.dirty) {
      INV_RETURN_IF_ERROR(WriteFrame(it->second));
    }
  }
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  std::lock_guard lock(mu_);
  for (auto& [tag, frame] : table_) {
    if (frames_[frame].dirty) {
      INV_RETURN_IF_ERROR(WriteFrame(frame));
    }
  }
  return Status::Ok();
}

Status BufferPool::FlushAndInvalidate() {
  INV_RETURN_IF_ERROR(FlushAll());
  std::lock_guard lock(mu_);
  for (auto& f : frames_) {
    if (f.pins > 0) {
      return Status::Internal("cannot invalidate pinned buffer");
    }
    f.valid = false;
    f.dirty = false;
  }
  table_.clear();
  pending_extensions_.clear();
  return Status::Ok();
}

void BufferPool::DiscardRelation(Oid rel) {
  std::lock_guard lock(mu_);
  for (auto it = table_.lower_bound(Tag{rel, 0});
       it != table_.end() && it->first.rel == rel;) {
    Frame& f = frames_[it->second];
    INV_CHECK(f.pins == 0);
    f.valid = false;
    f.dirty = false;
    it = table_.erase(it);
  }
  pending_extensions_.erase(rel);
}

void BufferPool::DiscardAll() {
  std::lock_guard lock(mu_);
  for (auto& f : frames_) {
    f.valid = false;
    f.dirty = false;
    f.pins = 0;
  }
  table_.clear();
  pending_extensions_.clear();
}

}  // namespace invfs
