#include "src/buffer/buffer_pool.h"

#include <algorithm>

#include "src/fault/crash_points.h"
#include "src/obs/span.h"

namespace invfs {

namespace {

// Pins held by the current thread, across all pools. Maintained so the lock
// manager can assert (under debug invariants) that no thread blocks on a
// table lock while holding page latches — the latch-vs-lock inversion that
// starves eviction. The counter is heap-allocated and shared into every
// PageRef the thread creates: a pin released on another thread debits the
// *pinning* thread's counter (it no longer holds the pin), and the counter
// outlives the thread if refs migrate past its exit.
std::shared_ptr<std::atomic<int>>& LocalPinCounter() {
  thread_local std::shared_ptr<std::atomic<int>> counter =
      std::make_shared<std::atomic<int>>(0);
  return counter;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// RAII over a dynamic set of mutexes, for the one path that must hold every
// shard mutex at once (InvalidateAllQuiesced). The analysis cannot model a
// variable-length capability set, so acquisition and release are exempt; the
// sole user is itself analysis-exempt with a justifying comment.
class ScopedLockAll {
 public:
  explicit ScopedLockAll(std::vector<Mutex*> mus) NO_THREAD_SAFETY_ANALYSIS
      : mus_(std::move(mus)) {
    for (Mutex* m : mus_) {
      m->lock();
    }
  }
  ~ScopedLockAll() NO_THREAD_SAFETY_ANALYSIS {
    for (Mutex* m : mus_) {
      m->unlock();
    }
  }
  ScopedLockAll(const ScopedLockAll&) = delete;
  ScopedLockAll& operator=(const ScopedLockAll&) = delete;

 private:
  std::vector<Mutex*> mus_;
};

}  // namespace

int BufferPool::ThreadPinCount() {
  return LocalPinCounter()->load(std::memory_order_relaxed);
}

// -------------------------------------------------------------------- PageRef

PageRef::PageRef(BufferPool* pool, size_t frame, std::byte* data,
                 std::shared_ptr<std::atomic<int>> pinner)
    : pool_(pool), frame_(frame), data_(data), pinner_(std::move(pinner)) {}

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_),
      frame_(other.frame_),
      data_(other.data_),
      pinner_(std::move(other.pinner_)) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    pinner_ = std::move(other.pinner_);
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    if (pinner_) {
      pinner_->fetch_sub(1, std::memory_order_relaxed);
      pinner_.reset();
    }
    pool_ = nullptr;
    data_ = nullptr;
  }
}

void PageRef::MarkDirty() {
  INV_CHECK(pool_ != nullptr);
  pool_->frames_[frame_].dirty.store(true, std::memory_order_release);
}

Mutex& PageRef::Latch() {
  INV_CHECK(pool_ != nullptr);
  return pool_->frames_[frame_].latch;
}

// ----------------------------------------------------------------- BufferPool

BufferPool::BufferPool(DeviceSwitch* devices, size_t num_buffers, SimClock* clock,
                       CpuParams cpu, size_t partitions, MetricsRegistry* metrics)
    : devices_(devices), clock_(clock), cpu_(cpu) {
  INV_CHECK(num_buffers > 0);
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  hits_ = metrics->GetCounter("buffer.hits");
  misses_ = metrics->GetCounter("buffer.misses");
  evictions_ = metrics->GetCounter("buffer.evictions");
  write_backs_ = metrics->GetCounter("buffer.write_backs");
  sweep_steps_ = metrics->GetCounter("buffer.sweep_steps");
  num_frames_ = num_buffers;
  frames_ = std::make_unique<Frame[]>(num_frames_);
  for (size_t i = 0; i < num_frames_; ++i) {
    frames_[i].data = std::make_unique<std::byte[]>(kPageSize);
  }
  const size_t n = RoundUpPow2(partitions == 0 ? kDefaultPoolPartitions : partitions);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = n - 1;
}

BufferPool::~BufferPool() = default;

void BufferPool::Unpin(size_t frame) {
  const int prev = frames_[frame].pins.fetch_sub(1, std::memory_order_acq_rel);
  INV_CHECK(prev > 0);
}

Result<uint32_t> BufferPool::DeviceBlocks(Oid rel) {
  INV_ASSIGN_OR_RETURN(DeviceManager * mgr, devices_->ManagerFor(rel));
  return mgr->NumBlocks(rel);
}

Result<uint32_t> BufferPool::NumBlocks(Oid rel) {
  MutexLock lock(io_mu_);
  auto it = pending_extensions_.find(rel);
  const uint32_t pending = it == pending_extensions_.end() ? 0 : it->second;
  INV_ASSIGN_OR_RETURN(uint32_t dev, DeviceBlocks(rel));
  return dev + pending;
}

Result<size_t> BufferPool::EvictOne() {
  ScopedSpan span(&metrics_->spans(), "buffer.evict");
  // Clock sweep with second chance. Two full revolutions clear every
  // reference bit; the third catches frames unpinned mid-sweep. Pin counts
  // are rechecked under the victim's shard mutex, because that mutex is what
  // pin-hits hold while incrementing.
  for (size_t step = 0; step < 3 * num_frames_; ++step) {
    sweep_steps_->Add();
    const size_t i = hand_;
    hand_ = (hand_ + 1) % num_frames_;
    Frame& f = frames_[i];
    if (!f.valid) {
      return i;  // free frame (never mapped, or discarded)
    }
    if (f.pins.load(std::memory_order_acquire) > 0) {
      continue;
    }
    if (f.ref.exchange(false, std::memory_order_acq_rel)) {
      continue;  // second chance
    }
    // Write back while the frame is still mapped: a WriteBlock failure must
    // leave the dirty page reachable and retryable, so the mapping is erased
    // only after the data is safely on the device.
    if (f.dirty.load(std::memory_order_acquire)) {
      CrashPointRegistry::Hit("buffer.eviction");
      INV_RETURN_IF_ERROR(WriteFrame(i));
    }
    {
      Shard& s = ShardFor(f.tag);
      MutexLock shard_lock(s.mu);
      if (f.pins.load(std::memory_order_acquire) > 0) {
        continue;  // pinned during the sweep or the write-back
      }
      if (f.dirty.load(std::memory_order_acquire)) {
        continue;  // re-dirtied during the write-back; stays cached
      }
      s.table.erase(f.tag);
      f.valid = false;
    }
    evictions_->Add();
    metrics_->trace().Record(TraceEvent::kPageEvict, f.tag.rel, f.tag.block);
    return i;
  }
  return Status::ResourceExhausted("all buffers pinned");
}

Status BufferPool::WriteFrame(size_t frame) {
  Frame& f = frames_[frame];
  ScopedSpan span(&metrics_->spans(), "buffer.write_back", f.tag.rel,
                  f.tag.block);
  INV_ASSIGN_OR_RETURN(DeviceManager * mgr, devices_->ManagerFor(f.tag.rel));
  INV_ASSIGN_OR_RETURN(uint32_t dev_size, mgr->NumBlocks(f.tag.rel));
  // Devices cannot hold holes: if this block extends past the device's
  // current size, force the intervening pending blocks (which must still be
  // buffered — they were never written) out first, in order.
  for (uint32_t b = dev_size; b < f.tag.block; ++b) {
    const Tag tag{f.tag.rel, b};
    size_t gi = num_frames_;
    {
      Shard& s = ShardFor(tag);
      MutexLock shard_lock(s.mu);
      auto it = s.table.find(tag);
      if (it != s.table.end()) {
        gi = it->second;
      }
    }
    if (gi == num_frames_) {
      return Status::Internal("pending extension block " + std::to_string(b) +
                              " of rel " + std::to_string(f.tag.rel) +
                              " missing from buffer pool");
    }
    // Holding io_mu_ pins the mapping: the frame cannot be evicted or
    // remapped underneath us, so its data may be read without its shard lock.
    // The dirty bit is *claimed* (cleared) before the data is read: a
    // concurrent pinner's MarkDirty during or after our snapshot re-dirties
    // the frame, so an image taken mid-mutation is never the last one written
    // — the frame stays dirty and a later flush writes the settled page.
    Frame& g = frames_[gi];
    if (g.dirty.exchange(false, std::memory_order_acq_rel)) {
      Page gpage(g.data.get());
      if (gpage.IsInitialized()) {
        gpage.UpdateChecksum();
      }
      CrashPointRegistry::Hit("buffer.write_back");
      Status ws = mgr->WriteBlock(g.tag.rel, g.tag.block, {g.data.get(), kPageSize});
      if (!ws.ok()) {
        g.dirty.store(true, std::memory_order_release);  // still unwritten
        return ws;
      }
      write_backs_->Add();
      metrics_->trace().Record(TraceEvent::kPageWriteBack, g.tag.rel, g.tag.block);
    }
  }
  // Same claim-before-read protocol for the frame itself.
  if (f.dirty.exchange(false, std::memory_order_acq_rel)) {
    Page fpage(f.data.get());
    if (fpage.IsInitialized()) {
      fpage.UpdateChecksum();
    }
    CrashPointRegistry::Hit("buffer.write_back");
    Status ws = mgr->WriteBlock(f.tag.rel, f.tag.block, {f.data.get(), kPageSize});
    if (!ws.ok()) {
      f.dirty.store(true, std::memory_order_release);  // still unwritten
      return ws;
    }
    write_backs_->Add();
    metrics_->trace().Record(TraceEvent::kPageWriteBack, f.tag.rel, f.tag.block);
  }
  // Recompute pending extensions for this relation.
  INV_ASSIGN_OR_RETURN(uint32_t new_dev_size, mgr->NumBlocks(f.tag.rel));
  auto pit = pending_extensions_.find(f.tag.rel);
  if (pit != pending_extensions_.end()) {
    const uint32_t logical = pit->second + dev_size;
    pit->second = logical > new_dev_size ? logical - new_dev_size : 0;
    if (pit->second == 0) {
      pending_extensions_.erase(pit);
    }
  }
  return Status::Ok();
}

Result<PageRef> BufferPool::Pin(Oid rel, uint32_t block) {
  clock_->Advance(cpu_.page_cpu_us);
  const Tag tag{rel, block};
  Shard& s = ShardFor(tag);
  {
    MutexLock shard_lock(s.mu);
    auto it = s.table.find(tag);
    if (it != s.table.end()) {
      Frame& f = frames_[it->second];
      f.pins.fetch_add(1, std::memory_order_acq_rel);
      f.ref.store(true, std::memory_order_release);
      hits_->Add();
      LocalPinCounter()->fetch_add(1, std::memory_order_relaxed);
      return PageRef(this, it->second, f.data.get(), LocalPinCounter());
    }
  }
  // Misses leave the hot path, so the trace record's cost is invisible. The
  // span covers the whole miss: io_mu_ queueing, eviction, and the read.
  misses_->Add();
  metrics_->trace().Record(TraceEvent::kPageMiss, rel, block);
  ScopedSpan span(&metrics_->spans(), "buffer.miss", rel, block);
  MutexLock lock(io_mu_);
  {
    // Another thread may have completed the same miss while we waited.
    MutexLock shard_lock(s.mu);
    auto it = s.table.find(tag);
    if (it != s.table.end()) {
      Frame& f = frames_[it->second];
      f.pins.fetch_add(1, std::memory_order_acq_rel);
      f.ref.store(true, std::memory_order_release);
      LocalPinCounter()->fetch_add(1, std::memory_order_relaxed);
      return PageRef(this, it->second, f.data.get(), LocalPinCounter());
    }
  }
  INV_ASSIGN_OR_RETURN(size_t frame, EvictOne());
  Frame& f = frames_[frame];
  INV_ASSIGN_OR_RETURN(DeviceManager * mgr, devices_->ManagerFor(rel));
  INV_RETURN_IF_ERROR(mgr->ReadBlock(rel, block, {f.data.get(), kPageSize}));
  // Self-identification + checksum check on every read from backing store:
  // detects media corruption and misdirected writes (paper's reserved-space
  // design, extended with a whole-frame CRC32C).
  Page page(f.data.get());
  if (page.IsInitialized()) {
    INV_RETURN_IF_ERROR(page.VerifyChecksum());
    INV_RETURN_IF_ERROR(page.VerifySelfIdent(rel, block));
  }
  {
    MutexLock shard_lock(s.mu);
    f.tag = tag;
    f.valid = true;
    f.dirty.store(false, std::memory_order_release);
    f.pins.store(1, std::memory_order_release);
    f.ref.store(true, std::memory_order_release);
    s.table[tag] = frame;
  }
  LocalPinCounter()->fetch_add(1, std::memory_order_relaxed);
  return PageRef(this, frame, f.data.get(), LocalPinCounter());
}

Result<PageRef> BufferPool::Extend(Oid rel, uint32_t* new_block) {
  clock_->Advance(cpu_.page_cpu_us);
  MutexLock lock(io_mu_);
  INV_ASSIGN_OR_RETURN(uint32_t dev, DeviceBlocks(rel));
  uint32_t& pending = pending_extensions_[rel];
  const uint32_t block = dev + pending;
  ++pending;
  INV_ASSIGN_OR_RETURN(size_t frame, EvictOne());
  Frame& f = frames_[frame];
  const Tag tag{rel, block};
  Page page(f.data.get());
  page.Init(rel, block);
  {
    Shard& s = ShardFor(tag);
    MutexLock shard_lock(s.mu);
    f.tag = tag;
    f.valid = true;
    f.dirty.store(true, std::memory_order_release);
    f.pins.store(1, std::memory_order_release);
    f.ref.store(true, std::memory_order_release);
    s.table[tag] = frame;
  }
  LocalPinCounter()->fetch_add(1, std::memory_order_relaxed);
  if (new_block != nullptr) {
    *new_block = block;
  }
  return PageRef(this, frame, f.data.get(), LocalPinCounter());
}

Status BufferPool::FlushFrames(std::vector<size_t> frames) {
  std::sort(frames.begin(), frames.end(), [this](size_t a, size_t b) {
    return frames_[a].tag < frames_[b].tag;
  });
  for (size_t i : frames) {
    if (frames_[i].dirty.load(std::memory_order_acquire)) {
      INV_RETURN_IF_ERROR(WriteFrame(i));
    }
  }
  return Status::Ok();
}

Status BufferPool::FlushRelation(Oid rel) {
  MutexLock lock(io_mu_);
  // valid/tag are stable under io_mu_: mapping changes all hold it.
  std::vector<size_t> dirty;
  for (size_t i = 0; i < num_frames_; ++i) {
    const Frame& f = frames_[i];
    if (f.valid && f.tag.rel == rel && f.dirty.load(std::memory_order_acquire)) {
      dirty.push_back(i);
    }
  }
  return FlushFrames(std::move(dirty));
}

Status BufferPool::FlushAll() {
  MutexLock lock(io_mu_);
  std::vector<size_t> dirty;
  for (size_t i = 0; i < num_frames_; ++i) {
    const Frame& f = frames_[i];
    if (f.valid && f.dirty.load(std::memory_order_acquire)) {
      dirty.push_back(i);
    }
  }
  return FlushFrames(std::move(dirty));
}

Status BufferPool::FlushAndInvalidate() {
  MutexLock lock(io_mu_);
  std::vector<size_t> dirty;
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (f.pins.load(std::memory_order_acquire) > 0) {
      return Status::Internal("cannot invalidate pinned buffer");
    }
    if (f.valid && f.dirty.load(std::memory_order_acquire)) {
      dirty.push_back(i);
    }
  }
  INV_RETURN_IF_ERROR(FlushFrames(std::move(dirty)));
  return InvalidateAllQuiesced();
}

// Pins are only ever taken under a shard mutex, so holding *every* shard
// mutex makes the pin recheck and the table clear one atomic step against
// the hit path: no PageRef can be handed out for a frame we invalidate.
// (WriteFrame takes shard mutexes, which is why FlushAndInvalidate flushes
// first, outside this region.) The analysis cannot express acquiring a
// variable-length set of capabilities, so the body is exempt; the REQUIRES
// on io_mu_ is still enforced at call sites, and TSan covers the rest.
Status BufferPool::InvalidateAllQuiesced() NO_THREAD_SAFETY_ANALYSIS {
  std::vector<Mutex*> shard_mus;
  shard_mus.reserve(shards_.size());
  for (auto& shard : shards_) {
    shard_mus.push_back(&shard->mu);
  }
  ScopedLockAll shard_locks(std::move(shard_mus));
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (f.pins.load(std::memory_order_acquire) > 0) {
      return Status::Internal("cannot invalidate pinned buffer");
    }
    if (f.valid && f.dirty.load(std::memory_order_acquire)) {
      // A pin slipped in after the flush, dirtied the page and released it:
      // the caller broke the quiesced-pool contract. Refuse rather than
      // silently discard the write.
      return Status::Internal("buffer dirtied during invalidation");
    }
  }
  for (auto& shard : shards_) {
    shard->table.clear();
  }
  for (size_t i = 0; i < num_frames_; ++i) {
    frames_[i].valid = false;
    frames_[i].dirty.store(false, std::memory_order_release);
    frames_[i].ref.store(false, std::memory_order_release);
  }
  pending_extensions_.clear();
  return Status::Ok();
}

void BufferPool::DiscardRelation(Oid rel) {
  MutexLock lock(io_mu_);
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (!f.valid || f.tag.rel != rel) {
      continue;
    }
    INV_CHECK(f.pins.load(std::memory_order_acquire) == 0);
    Shard& s = ShardFor(f.tag);
    MutexLock shard_lock(s.mu);
    s.table.erase(f.tag);
    f.valid = false;
    f.dirty.store(false, std::memory_order_release);
  }
  pending_extensions_.erase(rel);
}

void BufferPool::DiscardAll() {
  MutexLock lock(io_mu_);
  for (auto& shard : shards_) {
    MutexLock shard_lock(shard->mu);
    shard->table.clear();
  }
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    f.valid = false;
    f.dirty.store(false, std::memory_order_release);
    f.ref.store(false, std::memory_order_release);
    f.pins.store(0, std::memory_order_release);
  }
  pending_extensions_.clear();
}

}  // namespace invfs
