// The Inversion file system.
//
// "Strictly speaking, the Inversion file system is a small set of routines
// that are compiled into the POSTGRES data manager." Files are byte streams
// chunked into records of a per-file table named inv<oid> ("the name of the
// POSTGRES table storing data chunks for /etc/passwd would be inv23114"),
// with a B-tree index on the chunk number. The namespace lives in
//   naming(filename, parentid, file)
// and per-file attributes in
//   fileatt(file, owner, type, size, ctime, mtime, atime, device, flags)
// exactly as described in the paper (device/flags are implementation columns
// backing migration and the compressed/no-history options).
//
// Chunk size: "file data are collected into chunks slightly smaller than
// 8 KBytes. The size of the chunk is calculated so that a single record will
// fit exactly on a POSTGRES data manager page." kInvChunkSize below is that
// calculation for our page and tuple formats.
//
// Sessions: the client-visible API (p_creat/p_open/p_close/p_read/p_write/
// p_lseek/p_begin/p_commit/p_abort, Figure 2 of the paper) lives on
// InvSession. "Neither POSTGRES nor Inversion supports nested transactions,
// so a single application program may only have one transaction active at any
// time" — InvSession enforces that. Operations outside an explicit
// transaction run in their own single-op transaction.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/query/executor.h"
#include "src/query/function_registry.h"
#include "src/rules/rules.h"
#include "src/storage/page.h"
#include "src/storage/tuple.h"
#include "src/vacuum/vacuum.h"

namespace invfs {

// ---- chunk geometry ---------------------------------------------------------
// Chunk record: (chunkno int4, data bytea, selfid int8, rawlen int4-or-null).
// Encoded tuple overhead: 14-byte header + 1-byte null bitmap + 4 (chunkno)
// + 4 (bytea length word) + 8 (selfid) = 31 bytes; page overhead: 24-byte
// page header + 4-byte line pointer. One full chunk record exactly fills a
// page:
inline constexpr uint32_t kInvTupleOverhead = kTupleFixedHeader + 1 + 4 + 4 + 8;
inline constexpr uint32_t kInvChunkSize =
    kPageSize - kPageHeaderSize - kLinePointerSize - kInvTupleOverhead;  // 8133
static_assert(kInvChunkSize > 8000 && kInvChunkSize < kPageSize);

// Paper: "Inversion files can be 17.6 TBytes in length."
inline constexpr int64_t kInvMaxFileSize = 17'600'000'000'000;

// fileatt flag bits.
inline constexpr int32_t kInvFlagCompressed = 1 << 0;
inline constexpr int32_t kInvFlagNoHistory = 1 << 1;

struct CreatOptions {
  DeviceId device = kDeviceMagneticDisk;  // "the mode flag to p_open and
                                          // p_creat encodes the device"
  std::string owner = "root";
  std::string type = "file";              // must exist in pg_type
  bool compressed = false;                // LZSS chunk compression
  bool keep_history = true;               // false: vacuum discards versions
};

struct FileStat {
  Oid oid = kInvalidOid;
  std::string name;
  std::string owner;
  std::string type;
  int64_t size = 0;
  Timestamp ctime = 0;
  Timestamp mtime = 0;
  Timestamp atime = 0;
  DeviceId device = kDeviceMagneticDisk;
  bool is_directory = false;
  bool compressed = false;
};

struct DirEntry {
  std::string name;
  Oid oid = kInvalidOid;
  bool is_directory = false;
};

struct InvOptions {
  bool coalesce_writes = true;      // paper: sequential small writes coalesce
  bool maintain_chunk_index = true; // ablation: B-tree on chunk number
  bool update_atime = false;        // atime writes turn reads into writes
};

class InvSession;

class InversionFs {
 public:
  InversionFs(Database* db, InvOptions options = {});
  ~InversionFs();

  // Create or load the file system structures (naming, fileatt, their
  // indices, the root directory) and register the built-in file functions.
  // Idempotent across reopen.
  Status Mount();

  Result<std::unique_ptr<InvSession>> NewSession();

  // --- shared lookups (used by sessions and by registered functions) -------

  // Resolve a path to its file oid under `snap`.
  Result<Oid> ResolvePath(const std::string& path, const Snapshot& snap);
  Result<FileStat> StatOid(Oid file, const Snapshot& snap);
  Result<FileStat> StatPath(const std::string& path, const Snapshot& snap);
  // Full pathname of a file oid (walks parent links).
  Result<std::string> PathOf(Oid file, const Snapshot& snap);
  // Read an entire file's contents under `snap` (file functions use this).
  Result<std::vector<std::byte>> ReadWholeFile(Oid file, const Snapshot& snap);

  // Run one POSTQUEL statement (the paper's ad-hoc query access). Uses the
  // session's transaction when given, else a single-statement transaction.
  Result<ResultSet> Query(std::string_view text, InvSession* session = nullptr);

  // Run migration rules now (the paper imagines this as a periodic daemon).
  Result<int> ApplyMigrationRules(TxnId txn);

  // Vacuum every file table + namespace tables inside `txn`.
  Result<VacuumStats> Vacuum(TxnId txn, bool keep_history = true);

  Database& db() { return *db_; }
  FunctionRegistry& registry() { return registry_; }
  Executor& executor() { return *executor_; }
  RuleEngine& rules() { return *rules_; }
  const InvOptions& options() const { return options_; }

  TableInfo* naming() { return naming_; }
  TableInfo* fileatt() { return fileatt_; }
  Oid root_oid() const { return root_oid_; }

  // fileatt column order (kept in one place).
  enum FileattCol : size_t {
    kFaFile = 0,
    kFaOwner,
    kFaType,
    kFaSize,
    kFaCtime,
    kFaMtime,
    kFaAtime,
    kFaDevice,
    kFaFlags,
  };

 private:
  friend class InvSession;

  Status RegisterBuiltinFunctions(TxnId txn);
  Status RegisterMigrationAction();

  // Find the (tid, row) of the fileatt tuple for `file` under `snap`.
  Result<std::optional<std::pair<Tid, Row>>> FileattLookup(Oid file,
                                                           const Snapshot& snap);
  // Find the (tid, row) of the naming tuple for (parent, name) under `snap`.
  Result<std::optional<std::pair<Tid, Row>>> NamingLookup(Oid parent,
                                                          const std::string& name,
                                                          const Snapshot& snap);
  Result<std::vector<DirEntry>> ListDirectory(Oid dir, const Snapshot& snap);

  static std::string ChunkTableName(Oid file) { return "inv" + std::to_string(file); }

  Database* db_;
  InvOptions options_;
  FunctionRegistry registry_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<RuleEngine> rules_;
  std::unique_ptr<VacuumCleaner> vacuum_;

  TableInfo* naming_ = nullptr;
  TableInfo* fileatt_ = nullptr;
  IndexInfo* naming_by_parent_name_ = nullptr;  // (parentid, filename)
  IndexInfo* naming_by_file_ = nullptr;         // (file)
  IndexInfo* fileatt_by_file_ = nullptr;        // (file)
  Oid root_oid_ = kInvalidOid;
  Oid dir_type_oid_ = kInvalidOid;
  Oid file_type_oid_ = kInvalidOid;

  // Request-tracing plumbing, cached at construction so the p_* entry points
  // never touch the registry maps: the database's span ring plus one
  // op.latency_us histogram per op class the SLO module evaluates.
  SpanRing* spans_ = nullptr;
  Histogram* lat_open_ = nullptr;
  Histogram* lat_creat_ = nullptr;
  Histogram* lat_read_ = nullptr;
  Histogram* lat_write_ = nullptr;
  Histogram* lat_commit_ = nullptr;
  Histogram* lat_query_ = nullptr;
};

// One client of the file system: at most one open transaction, a table of
// open file descriptors, POSIX-flavoured byte-stream semantics.
class InvSession {
 public:
  explicit InvSession(InversionFs* fs) : fs_(fs) {}
  ~InvSession();

  InvSession(const InvSession&) = delete;
  InvSession& operator=(const InvSession&) = delete;

  // --- transactions (Figure 2) ---------------------------------------------
  Status p_begin();
  Status p_commit();
  Status p_abort();
  bool in_txn() const { return txn_ != kInvalidTxn; }
  TxnId txn() const { return txn_; }

  // --- files ----------------------------------------------------------------
  Result<int> p_creat(const std::string& path, CreatOptions options = {});
  // `as_of` != kTimestampNow opens the historical state (read-only).
  Result<int> p_open(const std::string& path, OpenMode mode,
                     Timestamp as_of = kTimestampNow);
  Status p_close(int fd);
  Result<int64_t> p_read(int fd, std::span<std::byte> buf);
  Result<int64_t> p_write(int fd, std::span<const std::byte> buf);
  Result<int64_t> p_lseek(int fd, int64_t offset, Whence whence);
  Result<FileStat> p_fstat(int fd);

  // --- namespace -------------------------------------------------------------
  Status mkdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Result<FileStat> stat(const std::string& path, Timestamp as_of = kTimestampNow);
  Result<std::vector<DirEntry>> readdir(const std::string& path,
                                        Timestamp as_of = kTimestampNow);

  // Ad-hoc POSTQUEL in this session's transaction scope.
  Result<ResultSet> Query(std::string_view text) { return fs_->Query(text, this); }

 private:
  friend class InversionFs;

  struct Handle {
    Oid file = kInvalidOid;
    TableInfo* chunk_table = nullptr;
    IndexInfo* chunk_index = nullptr;  // null when index maintenance disabled
    bool writable = false;
    bool historical = false;
    Timestamp as_of = kTimestampNow;
    bool compressed = false;
    int64_t offset = 0;
    int64_t size = 0;
    bool meta_dirty = false;   // size/mtime pending fileatt update
    Timestamp pending_mtime = 0;
    // Write-coalescing buffer: one chunk's worth of bytes being assembled.
    int64_t buffered_chunk = -1;
    std::vector<std::byte> buffer;
    int64_t buffer_len = 0;    // valid bytes in buffer
    bool buffer_dirty = false;
    // Chunks that may already have a record: everything below the chunk count
    // at open time, plus chunks this handle flushed. Lets the index-less
    // configuration skip a full-table existence scan for brand-new chunks.
    int64_t chunks_at_open = 0;
    std::set<int64_t> flushed_chunks;
  };

  // Run `body` inside the session transaction, or a fresh single-op
  // transaction when none is open (defined at the bottom of this header).
  // `mode` applies only to the fresh transaction: read-only entry points
  // pass kReadOnly so their single-op transactions pin a snapshot and skip
  // the lock manager and commit log. A session transaction's mode was fixed
  // at p_begin and is not affected.
  template <typename Fn>
  auto WithTxn(Fn&& body, TxnMode mode = TxnMode::kReadWrite)
      -> decltype(body(TxnId{}));

  Snapshot SnapFor(const Handle& h, TxnId txn) const;
  Result<Handle*> GetHandle(int fd);
  // Forget buffered writes / pending metadata (abort paths).
  void DiscardVolatile();

  // Chunk I/O.
  Result<int64_t> ReadAt(Handle& h, TxnId txn, int64_t offset,
                         std::span<std::byte> out);
  Result<int64_t> WriteAt(Handle& h, TxnId txn, int64_t offset,
                          std::span<const std::byte> in);
  Status LoadChunk(Handle& h, TxnId txn, int64_t chunkno);
  Status FlushChunk(Handle& h, TxnId txn);
  Status FlushMetadata(Handle& h, TxnId txn);
  Result<std::optional<std::pair<Tid, Blob>>> FetchChunk(const Handle& h,
                                                         int64_t chunkno,
                                                         const Snapshot& snap);
  // Number of valid bytes chunk `chunkno` holds given file size `size`.
  static int64_t ChunkValidBytes(int64_t size, int64_t chunkno);

  Status CloseInternal(int fd, TxnId txn);
  Status FlushAllHandles(TxnId txn);

  InversionFs* fs_;
  TxnId txn_ = kInvalidTxn;
  std::map<int, Handle> fds_;
  int next_fd_ = 3;  // tip of the hat to stdin/stdout/stderr
};

namespace internal {
inline ErrorCode StatusCodeOf(const Status& s) { return s.code(); }
template <typename T>
ErrorCode StatusCodeOf(const Result<T>& r) {
  return r.status().code();
}
}  // namespace internal

template <typename Fn>
auto InvSession::WithTxn(Fn&& body, TxnMode mode) -> decltype(body(TxnId{})) {
  if (txn_ != kInvalidTxn) {
    auto result = body(txn_);
    if (internal::StatusCodeOf(result) == ErrorCode::kDeadlock) {
      // The lock manager chose this transaction as the deadlock victim and
      // the database already aborted it; the session must not keep using the
      // dead xid.
      txn_ = kInvalidTxn;
      DiscardVolatile();
    }
    return result;
  }
  auto txn_or = fs_->db().Begin(mode);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  const TxnId txn = *txn_or;
  auto result = body(txn);
  if (result.ok()) {
    // Single-op transaction: everything buffered must reach the database now.
    // Read-only transactions have nothing to flush by construction: dirty
    // handle buffers only exist inside an open session transaction, and this
    // path only runs when none is open.
    if (mode == TxnMode::kReadWrite) {
      Status flush = FlushAllHandles(txn);
      if (!flush.ok()) {
        (void)fs_->db().Abort(txn);
        DiscardVolatile();
        return flush;
      }
    }
    Status commit = fs_->db().Commit(txn);
    if (!commit.ok()) {
      return commit;
    }
  } else {
    (void)fs_->db().Abort(txn);
    DiscardVolatile();
  }
  return result;
}

}  // namespace invfs
