// InvSession: the client-visible file API (Figure 2 of the paper).

#include <algorithm>
#include <cstring>

#include "src/inversion/inv_fs.h"
#include "src/obs/span.h"
#include "src/obs/tenant.h"
#include "src/util/lzss.h"

namespace invfs {
namespace {

// Double-book an entry-point observation into the calling thread's tenant
// instruments (no-op when untagged). The base op.latency_us histogram keeps
// the all-tenants aggregate; this adds the "<op>@<tenant>" split the SLO
// evaluator expands into per-tenant rows.
void ObserveTenant(TenantOp op, uint64_t micros, bool ok) {
  if (TenantBinding* t = CurrentTenant()) {
    t->ObserveOp(op, micros);
    if (!ok) {
      t->CountError(op);
    }
  }
}

Result<std::pair<std::string, std::string>> SplitParentPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: '" + path + "'");
  }
  size_t end = path.size();
  while (end > 1 && path[end - 1] == '/') {
    --end;
  }
  const size_t slash = path.rfind('/', end - 1);
  if (slash == std::string::npos || end <= slash + 1) {
    return Status::InvalidArgument("path has no final component: '" + path + "'");
  }
  std::string dir = slash == 0 ? "/" : path.substr(0, slash);
  std::string base = path.substr(slash + 1, end - slash - 1);
  return std::make_pair(std::move(dir), std::move(base));
}

int64_t SelfIdent(Oid file, int64_t chunkno) {
  return (static_cast<int64_t>(file) << 32) | chunkno;
}

}  // namespace

InvSession::~InvSession() {
  if (txn_ != kInvalidTxn) {
    (void)fs_->db().Abort(txn_);
    DiscardVolatile();
  }
}

Snapshot InvSession::SnapFor(const Handle& h, TxnId txn) const {
  if (h.historical) {
    return fs_->db().SnapshotAt(h.as_of);
  }
  // Pinned begin-time snapshot until the transaction writes; reads take no
  // data locks under it, so writers never block this handle's reads.
  return fs_->db().ReadSnapshot(txn);
}

Result<InvSession::Handle*> InvSession::GetHandle(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status::InvalidArgument("bad file descriptor " + std::to_string(fd));
  }
  return &it->second;
}

void InvSession::DiscardVolatile() {
  for (auto& [fd, h] : fds_) {
    h.buffer_dirty = false;
    h.buffered_chunk = -1;
    h.meta_dirty = false;
  }
}

// ------------------------------------------------------------- transactions

Status InvSession::p_begin() {
  ScopedSpan span(fs_->spans_, "p_begin");
  if (txn_ != kInvalidTxn) {
    return Status::InvalidArgument(
        "transaction already active (nested transactions are not supported)");
  }
  INV_ASSIGN_OR_RETURN(txn_, fs_->db().Begin());
  return Status::Ok();
}

Status InvSession::p_commit() {
  ScopedSpan span(fs_->spans_, "p_commit");
  if (txn_ == kInvalidTxn) {
    return Status::InvalidArgument("no transaction active");
  }
  Status flush = FlushAllHandles(txn_);
  if (!flush.ok()) {
    (void)p_abort();
    return flush;
  }
  const TxnId txn = txn_;
  txn_ = kInvalidTxn;
  Status status = fs_->db().Commit(txn);
  const uint64_t us = span.ElapsedMicros();
  fs_->lat_commit_->Observe(us);
  ObserveTenant(TenantOp::kCommit, us, status.ok());
  return status;
}

Status InvSession::p_abort() {
  ScopedSpan span(fs_->spans_, "p_abort");
  if (txn_ == kInvalidTxn) {
    return Status::InvalidArgument("no transaction active");
  }
  const TxnId txn = txn_;
  txn_ = kInvalidTxn;
  DiscardVolatile();
  Status status = fs_->db().Abort(txn);
  // Sizes seen through open fds may reflect aborted writes; refresh them.
  const Snapshot snap{kTimestampNow, kInvalidTxn, &fs_->db().txns().log(), nullptr};
  for (auto& [fd, h] : fds_) {
    if (!h.historical) {
      if (auto att = fs_->FileattLookup(h.file, snap); att.ok() && att->has_value()) {
        h.size = (*att)->second[InversionFs::kFaSize].AsInt8();
      }
    }
  }
  return status;
}

Status InvSession::FlushAllHandles(TxnId txn) {
  for (auto& [fd, h] : fds_) {
    INV_RETURN_IF_ERROR(FlushChunk(h, txn));
    INV_RETURN_IF_ERROR(FlushMetadata(h, txn));
  }
  return Status::Ok();
}

// --------------------------------------------------------------------- files

Result<int> InvSession::p_creat(const std::string& path, CreatOptions options) {
  ScopedSpan span(fs_->spans_, "p_creat");
  auto result = WithTxn([&](TxnId txn) -> Result<int> {
    const Snapshot snap = fs_->db().SnapshotFor(txn);
    INV_ASSIGN_OR_RETURN(auto split, SplitParentPath(path));
    INV_ASSIGN_OR_RETURN(Oid parent, fs_->ResolvePath(split.first, snap));
    INV_ASSIGN_OR_RETURN(FileStat parent_stat, fs_->StatOid(parent, snap));
    if (!parent_stat.is_directory) {
      return Status::InvalidArgument(split.first + " is not a directory");
    }
    INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->naming_, LockMode::kExclusive));
    INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->fileatt_, LockMode::kExclusive));
    INV_ASSIGN_OR_RETURN(auto existing, fs_->NamingLookup(parent, split.second, snap));
    if (existing.has_value()) {
      return Status::AlreadyExists(path);
    }
    INV_ASSIGN_OR_RETURN(TypeInfo * type, fs_->db().catalog().GetType(options.type));
    if (!fs_->db().devices().Has(options.device)) {
      return Status::InvalidArgument("no device " + std::to_string(options.device));
    }

    // "For every file, a uniquely-named table is created" — inv<oid>, located
    // on the device encoded in the create mode, plus its chunk-number index.
    const Oid oid = fs_->db().catalog().AllocateOid();
    INV_ASSIGN_OR_RETURN(
        TableInfo * chunk_table,
        fs_->db().catalog().CreateTable(txn, InversionFs::ChunkTableName(oid),
                                        Schema{{"chunkno", TypeId::kInt4},
                                               {"data", TypeId::kBytea},
                                               {"selfid", TypeId::kInt8},
                                               {"rawlen", TypeId::kInt4}},
                                        options.device));
    IndexInfo* chunk_index = nullptr;
    if (fs_->options_.maintain_chunk_index) {
      INV_ASSIGN_OR_RETURN(chunk_index,
                           fs_->db().catalog().CreateIndex(txn, chunk_table, {0}));
    }

    const Timestamp now = fs_->db().Now();
    int32_t flags = 0;
    if (options.compressed) {
      flags |= kInvFlagCompressed;
    }
    if (!options.keep_history) {
      flags |= kInvFlagNoHistory;
    }
    INV_RETURN_IF_ERROR(
        fs_->db()
            .InsertRow(txn, fs_->naming_,
                       {Value::Text(split.second), Value::MakeOid(parent),
                        Value::MakeOid(oid)})
            .status());
    INV_RETURN_IF_ERROR(
        fs_->db()
            .InsertRow(txn, fs_->fileatt_,
                       {Value::MakeOid(oid), Value::Text(options.owner),
                        Value::MakeOid(type->oid), Value::Int8(0),
                        Value::MakeTimestamp(now), Value::MakeTimestamp(now),
                        Value::MakeTimestamp(now),
                        Value::Int4(static_cast<int32_t>(options.device)),
                        Value::Int4(flags)})
            .status());

    Handle h;
    h.file = oid;
    h.chunk_table = chunk_table;
    h.chunk_index = chunk_index;
    h.writable = true;
    h.compressed = options.compressed;
    h.buffer.resize(kInvChunkSize);
    const int fd = next_fd_++;
    fds_[fd] = std::move(h);
    return fd;
  });
  const uint64_t us = span.ElapsedMicros();
  fs_->lat_creat_->Observe(us);
  ObserveTenant(TenantOp::kCreat, us, result.ok());
  return result;
}

Result<int> InvSession::p_open(const std::string& path, OpenMode mode,
                               Timestamp as_of) {
  ScopedSpan span(fs_->spans_, "p_open");
  auto result = WithTxn([&](TxnId txn) -> Result<int> {
    const bool historical = as_of != kTimestampNow;
    if (historical && mode == OpenMode::kWrite) {
      // "Historical files may not be opened for writing."
      return Status::ReadOnly("cannot open historical state for writing: " + path);
    }
    const Snapshot snap =
        historical ? fs_->db().SnapshotAt(as_of) : fs_->db().ReadSnapshot(txn);
    INV_ASSIGN_OR_RETURN(Oid oid, fs_->ResolvePath(path, snap));
    INV_ASSIGN_OR_RETURN(auto att, fs_->FileattLookup(oid, snap));
    if (!att.has_value()) {
      return Status::NotFound("no attributes for " + path);
    }
    const Row& att_row = (*att).second;
    if (att_row[InversionFs::kFaType].AsOid() == fs_->dir_type_oid_) {
      return Status::InvalidArgument(path + " is a directory");
    }
    // Chunk tables survive unlink (that is what makes undelete-via-time-travel
    // work), so historical opens find the handle in the current catalog cache.
    auto chunk_table = fs_->db().catalog().GetTable(InversionFs::ChunkTableName(oid));
    if (!chunk_table.ok()) {
      return Status::NotFound("data table missing for " + path);
    }

    Handle h;
    h.file = oid;
    h.chunk_table = *chunk_table;
    h.chunk_index =
        (*chunk_table)->indexes.empty() ? nullptr : (*chunk_table)->indexes[0];
    h.writable = mode == OpenMode::kWrite;
    h.historical = historical;
    h.as_of = as_of;
    h.compressed = (att_row[InversionFs::kFaFlags].AsInt4() & kInvFlagCompressed) != 0;
    h.size = att_row[InversionFs::kFaSize].AsInt8();
    h.chunks_at_open = (h.size + kInvChunkSize - 1) / kInvChunkSize;
    h.buffer.resize(kInvChunkSize);
    if (h.writable) {
      INV_RETURN_IF_ERROR(
          fs_->db().LockTable(txn, h.chunk_table, LockMode::kExclusive));
    }
    const int fd = next_fd_++;
    fds_[fd] = std::move(h);
    return fd;
  },
  // A read-mode open never locks; its single-op transaction (when the
  // session has none) can be read-only, which keeps historical and plain
  // read opens off the lock manager and the commit log entirely.
  mode == OpenMode::kWrite ? TxnMode::kReadWrite : TxnMode::kReadOnly);
  const uint64_t us = span.ElapsedMicros();
  fs_->lat_open_->Observe(us);
  ObserveTenant(TenantOp::kOpen, us, result.ok());
  return result;
}

Status InvSession::CloseInternal(int fd, TxnId txn) {
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  INV_RETURN_IF_ERROR(FlushChunk(*h, txn));
  INV_RETURN_IF_ERROR(FlushMetadata(*h, txn));
  fds_.erase(fd);
  return Status::Ok();
}

Status InvSession::p_close(int fd) {
  ScopedSpan span(fs_->spans_, "p_close");
  return WithTxn([&](TxnId txn) { return CloseInternal(fd, txn); });
}

Result<int64_t> InvSession::p_lseek(int fd, int64_t offset, Whence whence) {
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = h->offset;
      break;
    case Whence::kEnd:
      base = h->size;
      break;
  }
  const int64_t target = base + offset;
  if (target < 0 || target > kInvMaxFileSize) {
    return Status::InvalidArgument("seek offset out of range");
  }
  h->offset = target;
  return target;
}

Result<FileStat> InvSession::p_fstat(int fd) {
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  return WithTxn(
      [&](TxnId txn) -> Result<FileStat> {
        INV_ASSIGN_OR_RETURN(FileStat st, fs_->StatOid(h->file, SnapFor(*h, txn)));
        if (h->meta_dirty) {
          st.size = h->size;  // uncommitted writes are visible to their author
          st.mtime = h->pending_mtime;
        }
        return st;
      },
      TxnMode::kReadOnly);
}

// ----------------------------------------------------------------- chunk I/O

int64_t InvSession::ChunkValidBytes(int64_t size, int64_t chunkno) {
  const int64_t start = chunkno * static_cast<int64_t>(kInvChunkSize);
  return std::clamp<int64_t>(size - start, 0, kInvChunkSize);
}

Result<std::optional<std::pair<Tid, Blob>>> InvSession::FetchChunk(
    const Handle& h, int64_t chunkno, const Snapshot& snap) {
  // Covers the whole chunk lookup — index descent, heap fetch, decompression
  // — so an entry point's self-time shrinks to offset arithmetic.
  ScopedSpan span(fs_->spans_, "file.fetch_chunk", h.file,
                  static_cast<uint64_t>(chunkno));
  auto decode = [&](const Row& row, Tid tid)
      -> Result<std::optional<std::pair<Tid, Blob>>> {
    // Self-identifying record check (media corruption defense).
    if (!row[2].is_null() && row[2].AsInt8() != SelfIdent(h.file, chunkno)) {
      return Status::Corruption("chunk self-identification mismatch in file " +
                                std::to_string(h.file) + " chunk " +
                                std::to_string(chunkno));
    }
    const Blob& data = row[1].AsBytes();
    if (!row[3].is_null()) {
      INV_ASSIGN_OR_RETURN(
          Blob raw, LzssDecompress(data, static_cast<size_t>(row[3].AsInt4())));
      return std::optional(std::make_pair(tid, std::move(raw)));
    }
    return std::optional(std::make_pair(tid, data));
  };

  if (h.chunk_index != nullptr) {
    Result<std::vector<Tid>> tids_or = [&] {
      // Probe gate: lock-free readers reach this B-tree with no table lock,
      // so vacuum's index rebuild swaps the btree object under exclusive
      // entry; the shared entry spans exactly one probe.
      SharedGateLock gate(fs_->db().probe_gate());
      return h.chunk_index->btree->Lookup(
          EncodeInt4Key(static_cast<int32_t>(chunkno)));
    }();
    INV_ASSIGN_OR_RETURN(auto tids, std::move(tids_or));
    for (Tid tid : tids) {
      INV_ASSIGN_OR_RETURN(auto row, h.chunk_table->heap->Fetch(snap, tid));
      if (row.has_value()) {
        return decode(*row, tid);
      }
    }
  } else {
    // Ablation path: no chunk index, sequential scan (this is what the paper's
    // B-tree buys).
    auto it = h.chunk_table->heap->Scan(snap);
    while (it.Next()) {
      if (it.row()[0].AsInt4() == chunkno) {
        return decode(it.row(), it.tid());
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  // Archived chunk versions (vacuumed) for historical reads.
  if (snap.is_historical() && h.chunk_table->archive_oid != kInvalidOid) {
    INV_ASSIGN_OR_RETURN(
        TableInfo * archive,
        fs_->db().catalog().GetTableByOid(h.chunk_table->archive_oid));
    auto it = archive->heap->Scan(snap);
    while (it.Next()) {
      if (it.row()[0].AsInt4() == chunkno) {
        return decode(it.row(), it.tid());
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  return std::optional<std::pair<Tid, Blob>>();
}

Status InvSession::LoadChunk(Handle& h, TxnId txn, int64_t chunkno) {
  INV_CHECK(h.buffered_chunk == -1 || !h.buffer_dirty);
  std::fill(h.buffer.begin(), h.buffer.end(), std::byte{0});
  h.buffered_chunk = chunkno;
  h.buffer_len = 0;
  h.buffer_dirty = false;
  const Snapshot snap = SnapFor(h, txn);
  INV_ASSIGN_OR_RETURN(auto chunk, FetchChunk(h, chunkno, snap));
  if (chunk.has_value()) {
    const Blob& data = (*chunk).second;
    std::copy(data.begin(), data.end(), h.buffer.begin());
    h.buffer_len = static_cast<int64_t>(data.size());
  }
  return Status::Ok();
}

Status InvSession::FlushChunk(Handle& h, TxnId txn) {
  if (!h.buffer_dirty) {
    return Status::Ok();
  }
  ScopedSpan span(fs_->spans_, "file.flush_chunk", h.file,
                  static_cast<uint64_t>(h.buffered_chunk));
  const int64_t chunkno = h.buffered_chunk;
  const int64_t valid = std::max(h.buffer_len, ChunkValidBytes(h.size, chunkno));
  Blob content(h.buffer.begin(), h.buffer.begin() + valid);
  Value data_value = Value::Null();
  Value rawlen_value = Value::Null();
  if (h.compressed) {
    Blob packed = LzssCompress(content);
    if (packed.size() < content.size()) {
      data_value = Value::Bytes(std::move(packed));
      rawlen_value = Value::Int4(static_cast<int32_t>(valid));
    }
  }
  if (data_value.is_null()) {
    data_value = Value::Bytes(std::move(content));
  }
  Row row{Value::Int4(static_cast<int32_t>(chunkno)), std::move(data_value),
          Value::Int8(SelfIdent(h.file, chunkno)), std::move(rawlen_value)};

  INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, h.chunk_table, LockMode::kExclusive));
  const Snapshot snap = fs_->db().SnapshotFor(txn);
  // Without the chunk index, probing for an existing record costs a full
  // table scan; skip it when this chunk verifiably never existed. (With the
  // index the probe is cheap and always performed.)
  std::optional<std::pair<Tid, Blob>> existing;
  const bool may_exist = h.chunk_index != nullptr ||
                         chunkno < h.chunks_at_open ||
                         h.flushed_chunks.contains(chunkno);
  if (may_exist) {
    INV_ASSIGN_OR_RETURN(existing, FetchChunk(h, chunkno, snap));
  }
  if (existing.has_value()) {
    // "the old record is marked as deleted by the current transaction, and
    // the new record is marked as inserted by the current transaction."
    INV_RETURN_IF_ERROR(
        fs_->db().ReplaceRow(txn, h.chunk_table, (*existing).first, row).status());
  } else {
    INV_RETURN_IF_ERROR(fs_->db().InsertRow(txn, h.chunk_table, row).status());
  }
  h.buffer_dirty = false;
  h.buffer_len = valid;
  h.flushed_chunks.insert(chunkno);
  return Status::Ok();
}

Status InvSession::FlushMetadata(Handle& h, TxnId txn) {
  if (!h.meta_dirty) {
    return Status::Ok();
  }
  INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->fileatt_, LockMode::kExclusive));
  const Snapshot snap = fs_->db().SnapshotFor(txn);
  INV_ASSIGN_OR_RETURN(auto att, fs_->FileattLookup(h.file, snap));
  if (!att.has_value()) {
    return Status::NotFound("fileatt row vanished for oid " + std::to_string(h.file));
  }
  Row updated = (*att).second;
  updated[InversionFs::kFaSize] = Value::Int8(h.size);
  updated[InversionFs::kFaMtime] = Value::MakeTimestamp(h.pending_mtime);
  if (fs_->options_.update_atime) {
    updated[InversionFs::kFaAtime] = Value::MakeTimestamp(fs_->db().Now());
  }
  INV_RETURN_IF_ERROR(
      fs_->db().ReplaceRow(txn, fs_->fileatt_, (*att).first, updated).status());
  h.meta_dirty = false;
  return Status::Ok();
}

Result<int64_t> InvSession::ReadAt(Handle& h, TxnId txn, int64_t offset,
                                   std::span<std::byte> out) {
  if (offset >= h.size) {
    return 0;
  }
  const int64_t want =
      std::min<int64_t>(static_cast<int64_t>(out.size()), h.size - offset);
  int64_t done = 0;
  const Snapshot snap = SnapFor(h, txn);
  while (done < want) {
    const int64_t pos = offset + done;
    const int64_t chunkno = pos / kInvChunkSize;
    const int64_t within = pos % kInvChunkSize;
    const int64_t n = std::min<int64_t>(kInvChunkSize - within, want - done);
    if (h.buffered_chunk == chunkno) {
      std::memcpy(out.data() + done, h.buffer.data() + within, n);
    } else {
      INV_ASSIGN_OR_RETURN(auto chunk, FetchChunk(h, chunkno, snap));
      if (chunk.has_value()) {
        const Blob& data = (*chunk).second;
        const int64_t avail =
            std::max<int64_t>(0, static_cast<int64_t>(data.size()) - within);
        const int64_t copy = std::min(n, avail);
        if (copy > 0) {
          std::memcpy(out.data() + done, data.data() + within, copy);
        }
        if (copy < n) {
          std::memset(out.data() + done + copy, 0, n - copy);
        }
      } else {
        std::memset(out.data() + done, 0, n);  // hole in a sparse file
      }
    }
    done += n;
  }
  // Model the buffer-allocate-and-copy CPU cost the paper's profiling found.
  fs_->db().clock().Advance(
      fs_->db().options().cpu.syscall_us +
      (static_cast<uint64_t>(done) * fs_->db().options().cpu.copy_per_kilobyte_us) /
          1024);
  return done;
}

Result<int64_t> InvSession::WriteAt(Handle& h, TxnId txn, int64_t offset,
                                    std::span<const std::byte> in) {
  if (h.historical || !h.writable) {
    return Status::ReadOnly("file descriptor is not writable");
  }
  if (offset + static_cast<int64_t>(in.size()) > kInvMaxFileSize) {
    return Status::InvalidArgument("write would exceed maximum file size");
  }
  INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, h.chunk_table, LockMode::kExclusive));
  int64_t done = 0;
  const int64_t total = static_cast<int64_t>(in.size());
  while (done < total) {
    const int64_t pos = offset + done;
    const int64_t chunkno = pos / kInvChunkSize;
    const int64_t within = pos % kInvChunkSize;
    const int64_t n = std::min<int64_t>(kInvChunkSize - within, total - done);
    if (h.buffered_chunk != chunkno) {
      INV_RETURN_IF_ERROR(FlushChunk(h, txn));
      h.buffered_chunk = -1;
      if (within == 0 && n == kInvChunkSize) {
        // Full-chunk overwrite: no need to read the old contents. (The old
        // *version* still gets its xmax stamped at flush time.)
        std::fill(h.buffer.begin(), h.buffer.end(), std::byte{0});
        h.buffered_chunk = chunkno;
        h.buffer_len = 0;
        h.buffer_dirty = false;
      } else {
        INV_RETURN_IF_ERROR(LoadChunk(h, txn, chunkno));
      }
    }
    std::memcpy(h.buffer.data() + within, in.data() + done, n);
    h.buffer_len = std::max(h.buffer_len, within + n);
    h.buffer_dirty = true;
    done += n;
    // "Multiple small sequential writes during a single transaction are
    // coalesced" — with coalescing off, every write becomes its own record
    // replacement (the ablation measures what that costs).
    if (!fs_->options_.coalesce_writes) {
      INV_RETURN_IF_ERROR(FlushChunk(h, txn));
    }
  }
  h.size = std::max(h.size, offset + total);
  h.meta_dirty = true;
  h.pending_mtime = fs_->db().Now();
  fs_->db().clock().Advance(
      fs_->db().options().cpu.syscall_us +
      (static_cast<uint64_t>(total) * fs_->db().options().cpu.copy_per_kilobyte_us) /
          1024);
  return total;
}

Result<int64_t> InvSession::p_read(int fd, std::span<std::byte> buf) {
  ScopedSpan span(fs_->spans_, "p_read");
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  // No table lock: reads run against the transaction's pinned snapshot
  // (SnapFor), so a writer's uncommitted chunk versions are invisible and a
  // writer's exclusive lock never blocks this read.
  auto result = WithTxn(
      [&](TxnId txn) -> Result<int64_t> {
        INV_ASSIGN_OR_RETURN(int64_t n, ReadAt(*h, txn, h->offset, buf));
        h->offset += n;
        return n;
      },
      TxnMode::kReadOnly);
  const uint64_t us = span.ElapsedMicros();
  fs_->lat_read_->Observe(us);
  ObserveTenant(TenantOp::kRead, us, result.ok());
  if (result.ok()) {
    if (TenantBinding* t = CurrentTenant()) {
      t->AddBytesRead(static_cast<uint64_t>(*result));
    }
  }
  return result;
}

Result<int64_t> InvSession::p_write(int fd, std::span<const std::byte> buf) {
  ScopedSpan span(fs_->spans_, "p_write");
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  auto result = WithTxn([&](TxnId txn) -> Result<int64_t> {
    INV_ASSIGN_OR_RETURN(int64_t n, WriteAt(*h, txn, h->offset, buf));
    h->offset += n;
    return n;
  });
  const uint64_t us = span.ElapsedMicros();
  fs_->lat_write_->Observe(us);
  ObserveTenant(TenantOp::kWrite, us, result.ok());
  if (result.ok()) {
    if (TenantBinding* t = CurrentTenant()) {
      t->AddBytesWritten(static_cast<uint64_t>(*result));
    }
  }
  return result;
}

// ----------------------------------------------------------------- namespace

Status InvSession::mkdir(const std::string& path) {
  ScopedSpan span(fs_->spans_, "mkdir");
  return WithTxn([&](TxnId txn) -> Status {
    const Snapshot snap = fs_->db().SnapshotFor(txn);
    INV_ASSIGN_OR_RETURN(auto split, SplitParentPath(path));
    INV_ASSIGN_OR_RETURN(Oid parent, fs_->ResolvePath(split.first, snap));
    INV_ASSIGN_OR_RETURN(FileStat parent_stat, fs_->StatOid(parent, snap));
    if (!parent_stat.is_directory) {
      return Status::InvalidArgument(split.first + " is not a directory");
    }
    INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->naming_, LockMode::kExclusive));
    INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->fileatt_, LockMode::kExclusive));
    INV_ASSIGN_OR_RETURN(auto existing, fs_->NamingLookup(parent, split.second, snap));
    if (existing.has_value()) {
      return Status::AlreadyExists(path);
    }
    const Oid oid = fs_->db().catalog().AllocateOid();
    const Timestamp now = fs_->db().Now();
    INV_RETURN_IF_ERROR(
        fs_->db()
            .InsertRow(txn, fs_->naming_,
                       {Value::Text(split.second), Value::MakeOid(parent),
                        Value::MakeOid(oid)})
            .status());
    return fs_->db()
        .InsertRow(txn, fs_->fileatt_,
                   {Value::MakeOid(oid), Value::Text("root"),
                    Value::MakeOid(fs_->dir_type_oid_), Value::Int8(0),
                    Value::MakeTimestamp(now), Value::MakeTimestamp(now),
                    Value::MakeTimestamp(now), Value::Int4(kDeviceMagneticDisk),
                    Value::Int4(0)})
        .status();
  });
}

Status InvSession::unlink(const std::string& path) {
  ScopedSpan span(fs_->spans_, "unlink");
  return WithTxn([&](TxnId txn) -> Status {
    const Snapshot snap = fs_->db().SnapshotFor(txn);
    INV_ASSIGN_OR_RETURN(auto split, SplitParentPath(path));
    INV_ASSIGN_OR_RETURN(Oid parent, fs_->ResolvePath(split.first, snap));
    INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->naming_, LockMode::kExclusive));
    INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->fileatt_, LockMode::kExclusive));
    INV_ASSIGN_OR_RETURN(auto entry, fs_->NamingLookup(parent, split.second, snap));
    if (!entry.has_value()) {
      return Status::NotFound(path);
    }
    const Oid oid = (*entry).second[2].AsOid();
    INV_ASSIGN_OR_RETURN(FileStat st, fs_->StatOid(oid, snap));
    if (st.is_directory) {
      INV_ASSIGN_OR_RETURN(auto entries, fs_->ListDirectory(oid, snap));
      if (!entries.empty()) {
        return Status::InvalidArgument(path + " is a non-empty directory");
      }
    }
    // Only the namespace and attribute rows die; the chunk table — and every
    // historical version in it — survives, which is precisely what lets a
    // user "undelete files removed accidentally" via time travel.
    INV_RETURN_IF_ERROR(fs_->db().DeleteRow(txn, fs_->naming_, (*entry).first));
    INV_ASSIGN_OR_RETURN(auto att, fs_->FileattLookup(oid, snap));
    if (att.has_value()) {
      INV_RETURN_IF_ERROR(fs_->db().DeleteRow(txn, fs_->fileatt_, (*att).first));
    }
    return Status::Ok();
  });
}

Status InvSession::rename(const std::string& from, const std::string& to) {
  ScopedSpan span(fs_->spans_, "rename");
  return WithTxn([&](TxnId txn) -> Status {
    const Snapshot snap = fs_->db().SnapshotFor(txn);
    INV_ASSIGN_OR_RETURN(auto from_split, SplitParentPath(from));
    INV_ASSIGN_OR_RETURN(auto to_split, SplitParentPath(to));
    INV_ASSIGN_OR_RETURN(Oid from_parent, fs_->ResolvePath(from_split.first, snap));
    INV_ASSIGN_OR_RETURN(Oid to_parent, fs_->ResolvePath(to_split.first, snap));
    INV_RETURN_IF_ERROR(fs_->db().LockTable(txn, fs_->naming_, LockMode::kExclusive));
    INV_ASSIGN_OR_RETURN(auto entry,
                         fs_->NamingLookup(from_parent, from_split.second, snap));
    if (!entry.has_value()) {
      return Status::NotFound(from);
    }
    INV_ASSIGN_OR_RETURN(auto clash,
                         fs_->NamingLookup(to_parent, to_split.second, snap));
    if (clash.has_value()) {
      return Status::AlreadyExists(to);
    }
    Row updated = (*entry).second;
    updated[0] = Value::Text(to_split.second);
    updated[1] = Value::MakeOid(to_parent);
    return fs_->db().ReplaceRow(txn, fs_->naming_, (*entry).first, updated).status();
  });
}

Result<FileStat> InvSession::stat(const std::string& path, Timestamp as_of) {
  ScopedSpan span(fs_->spans_, "stat");
  return WithTxn(
      [&](TxnId txn) -> Result<FileStat> {
        const Snapshot snap = as_of != kTimestampNow
                                  ? fs_->db().SnapshotAt(as_of)
                                  : fs_->db().ReadSnapshot(txn);
        return fs_->StatPath(path, snap);
      },
      TxnMode::kReadOnly);
}

Result<std::vector<DirEntry>> InvSession::readdir(const std::string& path,
                                                  Timestamp as_of) {
  ScopedSpan span(fs_->spans_, "readdir");
  return WithTxn(
      [&](TxnId txn) -> Result<std::vector<DirEntry>> {
        const Snapshot snap = as_of != kTimestampNow
                                  ? fs_->db().SnapshotAt(as_of)
                                  : fs_->db().ReadSnapshot(txn);
        INV_ASSIGN_OR_RETURN(Oid dir, fs_->ResolvePath(path, snap));
        INV_ASSIGN_OR_RETURN(FileStat st, fs_->StatOid(dir, snap));
        if (!st.is_directory) {
          return Status::InvalidArgument(path + " is not a directory");
        }
        return fs_->ListDirectory(dir, snap);
      },
      TxnMode::kReadOnly);
}

}  // namespace invfs
