#include "src/inversion/inv_fs.h"

#include <algorithm>

#include "src/obs/span.h"
#include "src/obs/tenant.h"
#include "src/query/parser.h"
#include "src/util/lzss.h"

namespace invfs {
namespace {

Schema NamingSchema() {
  return Schema{{"filename", TypeId::kText},
                {"parentid", TypeId::kOid},
                {"file", TypeId::kOid}};
}

Schema FileattSchema() {
  return Schema{{"file", TypeId::kOid},      {"owner", TypeId::kText},
                {"type", TypeId::kOid},      {"size", TypeId::kInt8},
                {"ctime", TypeId::kTimestamp}, {"mtime", TypeId::kTimestamp},
                {"atime", TypeId::kTimestamp}, {"device", TypeId::kInt4},
                {"flags", TypeId::kInt4}};
}

Schema ChunkSchema() {
  return Schema{{"chunkno", TypeId::kInt4},
                {"data", TypeId::kBytea},
                {"selfid", TypeId::kInt8},
                {"rawlen", TypeId::kInt4}};
}

// Split "/a/b/c" into {"a","b","c"}. "" and "/" yield {}.
Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: '" + path + "'");
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j > i) {
      parts.push_back(path.substr(i, j - i));
    }
    i = j + 1;
  }
  return parts;
}

// Dirname/basename split.
Result<std::pair<std::string, std::string>> SplitParent(const std::string& path) {
  INV_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return Status::InvalidArgument("path has no final component: '" + path + "'");
  }
  std::string base = parts.back();
  std::string dir = "/";
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    dir += parts[i];
    if (i + 2 < parts.size()) {
      dir += '/';
    }
  }
  return std::make_pair(dir, base);
}

}  // namespace

InversionFs::InversionFs(Database* db, InvOptions options)
    : db_(db), options_(options) {
  rules_ = std::make_unique<RuleEngine>(db_, &registry_);
  vacuum_ = std::make_unique<VacuumCleaner>(db_);
  ExecutorHooks hooks;
  hooks.on_define_rule = [this](const Statement& stmt, TxnId txn) {
    return rules_->DefineFromStatement(stmt, txn);
  };
  hooks.on_vacuum = [this](const std::string& table, TxnId txn) -> Status {
    INV_ASSIGN_OR_RETURN(TableInfo * info, db_->catalog().GetTable(table));
    return vacuum_->VacuumTable(txn, info).status();
  };
  executor_ = std::make_unique<Executor>(db_, &registry_, std::move(hooks));
  MetricsRegistry& metrics = db_->metrics();
  spans_ = &metrics.spans();
  lat_open_ = metrics.GetHistogram("op.latency_us", "p_open");
  lat_creat_ = metrics.GetHistogram("op.latency_us", "p_creat");
  lat_read_ = metrics.GetHistogram("op.latency_us", "p_read");
  lat_write_ = metrics.GetHistogram("op.latency_us", "p_write");
  lat_commit_ = metrics.GetHistogram("op.latency_us", "p_commit");
  lat_query_ = metrics.GetHistogram("op.latency_us", "query");
}

InversionFs::~InversionFs() = default;

Status InversionFs::Mount() {
  INV_ASSIGN_OR_RETURN(TxnId txn, db_->Begin());
  Status status = [&]() -> Status {
    // Namespace tables.
    auto naming = db_->catalog().GetTable("naming");
    if (naming.ok()) {
      naming_ = *naming;
      INV_ASSIGN_OR_RETURN(fileatt_, db_->catalog().GetTable("fileatt"));
    } else {
      INV_ASSIGN_OR_RETURN(naming_, db_->catalog().CreateTable(
                                        txn, "naming", NamingSchema(),
                                        kDeviceMagneticDisk));
      INV_ASSIGN_OR_RETURN(fileatt_, db_->catalog().CreateTable(
                                         txn, "fileatt", FileattSchema(),
                                         kDeviceMagneticDisk));
      // "Various Btree indices on the naming table speed up these operations."
      INV_RETURN_IF_ERROR(db_->catalog().CreateIndex(txn, naming_, {1, 0}).status());
      INV_RETURN_IF_ERROR(db_->catalog().CreateIndex(txn, naming_, {2}).status());
      INV_RETURN_IF_ERROR(db_->catalog().CreateIndex(txn, fileatt_, {0}).status());
    }
    for (IndexInfo* idx : naming_->indexes) {
      if (idx->key_columns.size() == 2) {
        naming_by_parent_name_ = idx;
      } else if (idx->key_columns == std::vector<size_t>{2}) {
        naming_by_file_ = idx;
      }
    }
    for (IndexInfo* idx : fileatt_->indexes) {
      if (idx->key_columns == std::vector<size_t>{0}) {
        fileatt_by_file_ = idx;
      }
    }
    if (naming_by_parent_name_ == nullptr || fileatt_by_file_ == nullptr) {
      return Status::Internal("inversion indices missing");
    }

    // Types.
    auto dir_type = db_->catalog().GetType("directory");
    if (dir_type.ok()) {
      dir_type_oid_ = (*dir_type)->oid;
    } else {
      INV_ASSIGN_OR_RETURN(dir_type_oid_, db_->catalog().DefineType(txn, "directory"));
    }
    auto file_type = db_->catalog().GetType("file");
    if (file_type.ok()) {
      file_type_oid_ = (*file_type)->oid;
    } else {
      INV_ASSIGN_OR_RETURN(file_type_oid_, db_->catalog().DefineType(txn, "file"));
    }

    // Root directory: "The root directory, named '/', appears in every
    // POSTGRES database as shipped from Berkeley."
    const Snapshot snap = db_->SnapshotFor(txn);
    INV_ASSIGN_OR_RETURN(auto root, NamingLookup(kInvalidOid, "/", snap));
    if (root.has_value()) {
      root_oid_ = (*root).second[2].AsOid();
    } else {
      root_oid_ = db_->catalog().AllocateOid();
      const Timestamp now = db_->Now();
      INV_RETURN_IF_ERROR(db_->InsertRow(txn, naming_,
                                         {Value::Text("/"), Value::MakeOid(kInvalidOid),
                                          Value::MakeOid(root_oid_)})
                              .status());
      INV_RETURN_IF_ERROR(
          db_->InsertRow(txn, fileatt_,
                         {Value::MakeOid(root_oid_), Value::Text("root"),
                          Value::MakeOid(dir_type_oid_), Value::Int8(0),
                          Value::MakeTimestamp(now), Value::MakeTimestamp(now),
                          Value::MakeTimestamp(now), Value::Int4(kDeviceMagneticDisk),
                          Value::Int4(0)})
              .status());
    }
    INV_RETURN_IF_ERROR(RegisterBuiltinFunctions(txn));
    return Status::Ok();
  }();
  if (!status.ok()) {
    (void)db_->Abort(txn);
    return status;
  }
  INV_RETURN_IF_ERROR(db_->Commit(txn));
  INV_RETURN_IF_ERROR(rules_->Load());
  INV_RETURN_IF_ERROR(RegisterMigrationAction());
  return Status::Ok();
}

Result<std::unique_ptr<InvSession>> InversionFs::NewSession() {
  if (naming_ == nullptr) {
    return Status::Internal("file system not mounted");
  }
  return std::make_unique<InvSession>(this);
}

// ------------------------------------------------------------------ lookups

Result<std::optional<std::pair<Tid, Row>>> InversionFs::NamingLookup(
    Oid parent, const std::string& name, const Snapshot& snap) {
  std::vector<Value> key_vals{Value::MakeOid(parent), Value::Text(name)};
  INV_ASSIGN_OR_RETURN(BtreeKey key, EncodeKey(key_vals));
  INV_ASSIGN_OR_RETURN(auto tids, naming_by_parent_name_->btree->Lookup(key));
  for (Tid tid : tids) {
    INV_ASSIGN_OR_RETURN(auto row, naming_->heap->Fetch(snap, tid));
    if (row.has_value()) {
      return std::optional(std::make_pair(tid, std::move(*row)));
    }
  }
  // Historical snapshots may need the archive (vacuumed namespace entries).
  if (snap.is_historical() && naming_->archive_oid != kInvalidOid) {
    INV_ASSIGN_OR_RETURN(TableInfo * archive,
                         db_->catalog().GetTableByOid(naming_->archive_oid));
    auto it = archive->heap->Scan(snap);
    while (it.Next()) {
      if (it.row()[1].AsOid() == parent && it.row()[0].AsText() == name) {
        return std::optional(std::make_pair(it.tid(), it.row()));
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  return std::optional<std::pair<Tid, Row>>();
}

Result<std::optional<std::pair<Tid, Row>>> InversionFs::FileattLookup(
    Oid file, const Snapshot& snap) {
  INV_ASSIGN_OR_RETURN(auto tids,
                       fileatt_by_file_->btree->Lookup(EncodeOidKey(file)));
  for (Tid tid : tids) {
    INV_ASSIGN_OR_RETURN(auto row, fileatt_->heap->Fetch(snap, tid));
    if (row.has_value()) {
      return std::optional(std::make_pair(tid, std::move(*row)));
    }
  }
  if (snap.is_historical() && fileatt_->archive_oid != kInvalidOid) {
    INV_ASSIGN_OR_RETURN(TableInfo * archive,
                         db_->catalog().GetTableByOid(fileatt_->archive_oid));
    auto it = archive->heap->Scan(snap);
    while (it.Next()) {
      if (it.row()[0].AsOid() == file) {
        return std::optional(std::make_pair(it.tid(), it.row()));
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  return std::optional<std::pair<Tid, Row>>();
}

Result<Oid> InversionFs::ResolvePath(const std::string& path, const Snapshot& snap) {
  INV_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  Oid current = root_oid_;
  for (const std::string& part : parts) {
    INV_ASSIGN_OR_RETURN(auto entry, NamingLookup(current, part, snap));
    if (!entry.has_value()) {
      return Status::NotFound("no such file: " + path);
    }
    current = (*entry).second[2].AsOid();
  }
  return current;
}

Result<FileStat> InversionFs::StatOid(Oid file, const Snapshot& snap) {
  INV_ASSIGN_OR_RETURN(auto att, FileattLookup(file, snap));
  if (!att.has_value()) {
    return Status::NotFound("no attributes for file oid " + std::to_string(file));
  }
  const Row& row = (*att).second;
  FileStat st;
  st.oid = file;
  st.owner = row[kFaOwner].AsText();
  const Oid type_oid = row[kFaType].AsOid();
  if (auto type = db_->catalog().GetTypeByOid(type_oid); type.ok()) {
    st.type = (*type)->name;
  }
  st.size = row[kFaSize].AsInt8();
  st.ctime = row[kFaCtime].AsTimestamp();
  st.mtime = row[kFaMtime].AsTimestamp();
  st.atime = row[kFaAtime].AsTimestamp();
  st.device = static_cast<DeviceId>(row[kFaDevice].AsInt4());
  st.is_directory = type_oid == dir_type_oid_;
  st.compressed = (row[kFaFlags].AsInt4() & kInvFlagCompressed) != 0;
  // Name via the naming table (root keeps its "/").
  INV_ASSIGN_OR_RETURN(auto tids, naming_by_file_->btree->Lookup(EncodeOidKey(file)));
  for (Tid tid : tids) {
    INV_ASSIGN_OR_RETURN(auto row2, naming_->heap->Fetch(snap, tid));
    if (row2.has_value()) {
      st.name = (*row2)[0].AsText();
      break;
    }
  }
  return st;
}

Result<FileStat> InversionFs::StatPath(const std::string& path, const Snapshot& snap) {
  INV_ASSIGN_OR_RETURN(Oid oid, ResolvePath(path, snap));
  return StatOid(oid, snap);
}

Result<std::string> InversionFs::PathOf(Oid file, const Snapshot& snap) {
  std::vector<std::string> parts;
  Oid current = file;
  int guard = 0;
  while (current != root_oid_) {
    if (++guard > 512) {
      return Status::Corruption("namespace cycle resolving oid " +
                                std::to_string(file));
    }
    INV_ASSIGN_OR_RETURN(auto tids,
                         naming_by_file_->btree->Lookup(EncodeOidKey(current)));
    bool found = false;
    for (Tid tid : tids) {
      INV_ASSIGN_OR_RETURN(auto row, naming_->heap->Fetch(snap, tid));
      if (row.has_value()) {
        parts.push_back((*row)[0].AsText());
        current = (*row)[1].AsOid();
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("orphaned file oid " + std::to_string(current));
    }
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    path += '/';
    path += *it;
  }
  return path.empty() ? "/" : path;
}

Result<std::vector<DirEntry>> InversionFs::ListDirectory(Oid dir,
                                                         const Snapshot& snap) {
  std::vector<DirEntry> out;
  const BtreeKey prefix = EncodeOidKey(dir);
  INV_ASSIGN_OR_RETURN(auto it, naming_by_parent_name_->btree->Seek(prefix));
  while (it.Valid()) {
    const BtreeKey& key = it.key();
    if (key.size() < prefix.size() ||
        !std::equal(prefix.begin(), prefix.end(), key.begin())) {
      break;
    }
    INV_ASSIGN_OR_RETURN(auto row, naming_->heap->Fetch(snap, it.tid()));
    if (row.has_value()) {
      DirEntry entry;
      entry.name = (*row)[0].AsText();
      entry.oid = (*row)[2].AsOid();
      if (auto st = StatOid(entry.oid, snap); st.ok()) {
        entry.is_directory = st->is_directory;
      }
      out.push_back(std::move(entry));
    }
    INV_RETURN_IF_ERROR(it.Advance());
  }
  // Historical listings may include vacuumed-away entries in the archive.
  if (snap.is_historical() && naming_->archive_oid != kInvalidOid) {
    INV_ASSIGN_OR_RETURN(TableInfo * archive,
                         db_->catalog().GetTableByOid(naming_->archive_oid));
    auto scan = archive->heap->Scan(snap);
    while (scan.Next()) {
      if (scan.row()[1].AsOid() == dir) {
        DirEntry entry;
        entry.name = scan.row()[0].AsText();
        entry.oid = scan.row()[2].AsOid();
        if (auto st = StatOid(entry.oid, snap); st.ok()) {
          entry.is_directory = st->is_directory;
        }
        out.push_back(std::move(entry));
      }
    }
    INV_RETURN_IF_ERROR(scan.status());
  }
  std::sort(out.begin(), out.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return out;
}

Result<std::vector<std::byte>> InversionFs::ReadWholeFile(Oid file,
                                                          const Snapshot& snap) {
  INV_ASSIGN_OR_RETURN(auto att, FileattLookup(file, snap));
  if (!att.has_value()) {
    return Status::NotFound("file oid " + std::to_string(file));
  }
  const int64_t size = (*att).second[kFaSize].AsInt8();
  const bool compressed =
      ((*att).second[kFaFlags].AsInt4() & kInvFlagCompressed) != 0;
  auto table_or = db_->catalog().GetTable(ChunkTableName(file));
  if (!table_or.ok()) {
    // Directories (and other non-file objects) have no data table; content
    // functions applied to them see empty contents. Real POSTGRES would have
    // rejected the call via type checking before it got here.
    return std::vector<std::byte>{};
  }
  TableInfo* table = *table_or;
  std::vector<std::byte> out(static_cast<size_t>(size));
  // A single ordered index scan beats per-chunk probes for whole-file reads.
  auto scan = table->heap->Scan(snap);
  while (scan.Next()) {
    const Row& row = scan.row();
    const int64_t chunkno = row[0].AsInt4();
    const Blob& data = row[1].AsBytes();
    const int64_t at = chunkno * static_cast<int64_t>(kInvChunkSize);
    if (at >= size) {
      continue;
    }
    Blob raw;
    const Blob* src = &data;
    if (compressed && !row[3].is_null()) {
      INV_ASSIGN_OR_RETURN(raw, LzssDecompress(data, static_cast<size_t>(row[3].AsInt4())));
      src = &raw;
    }
    const int64_t n = std::min<int64_t>(static_cast<int64_t>(src->size()), size - at);
    std::copy_n(src->begin(), n, out.begin() + at);
  }
  INV_RETURN_IF_ERROR(scan.status());
  return out;
}

// ------------------------------------------------------------------ services

Result<ResultSet> InversionFs::Query(std::string_view text, InvSession* session) {
  ScopedSpan span(spans_, "query");
  if (session != nullptr && session->in_txn()) {
    auto result = executor_->ExecuteQuery(text, session->txn());
    const uint64_t us = span.ElapsedMicros();
    lat_query_->Observe(us);
    if (TenantBinding* t = CurrentTenant()) {
      t->ObserveOp(TenantOp::kQuery, us);
      if (!result.ok()) {
        t->CountError(TenantOp::kQuery);
      }
    }
    return result;
  }
  // Parse first so a pure retrieve's single-statement transaction can be
  // read-only: it then runs against a pinned snapshot, takes no data locks,
  // and writes nothing to the commit log.
  INV_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  const TxnMode mode = stmt.kind == StmtKind::kRetrieve ? TxnMode::kReadOnly
                                                        : TxnMode::kReadWrite;
  INV_ASSIGN_OR_RETURN(TxnId txn, db_->Begin(mode));
  auto result = executor_->Execute(stmt, txn);
  if (result.ok()) {
    INV_RETURN_IF_ERROR(db_->Commit(txn));
  } else {
    (void)db_->Abort(txn);
  }
  const uint64_t us = span.ElapsedMicros();
  lat_query_->Observe(us);
  if (TenantBinding* t = CurrentTenant()) {
    t->ObserveOp(TenantOp::kQuery, us);
    if (!result.ok()) {
      t->CountError(TenantOp::kQuery);
    }
  }
  return result;
}

Result<int> InversionFs::ApplyMigrationRules(TxnId txn) {
  return rules_->ApplyRules(txn);
}

Result<VacuumStats> InversionFs::Vacuum(TxnId txn, bool keep_history) {
  VacuumStats total;
  // Vacuum every file's chunk table, honoring its no-history flag.
  const Snapshot snap = db_->SnapshotFor(txn);
  std::vector<std::pair<Oid, bool>> files;
  {
    auto it = fileatt_->heap->Scan(snap);
    while (it.Next()) {
      const bool no_history =
          (it.row()[kFaFlags].AsInt4() & kInvFlagNoHistory) != 0;
      files.emplace_back(it.row()[kFaFile].AsOid(), !no_history);
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  for (const auto& [oid, keep] : files) {
    auto table = db_->catalog().GetTable(ChunkTableName(oid));
    if (!table.ok()) {
      continue;  // directory
    }
    INV_ASSIGN_OR_RETURN(VacuumStats s,
                         vacuum_->VacuumTable(txn, *table, keep_history && keep));
    total.scanned += s.scanned;
    total.archived += s.archived;
    total.discarded += s.discarded;
    total.live += s.live;
  }
  for (TableInfo* table : {naming_, fileatt_}) {
    INV_ASSIGN_OR_RETURN(VacuumStats s,
                         vacuum_->VacuumTable(txn, table, keep_history));
    total.scanned += s.scanned;
    total.archived += s.archived;
    total.discarded += s.discarded;
    total.live += s.live;
  }
  return total;
}

Status InversionFs::RegisterMigrationAction() {
  rules_->SetMigrateAction([this](TxnId txn, const TableInfo* table, const Row& row,
                                  DeviceId device) -> Result<bool> {
    if (table != fileatt_) {
      return Status::InvalidArgument("migration rules must range over fileatt");
    }
    const Oid file = row[kFaFile].AsOid();
    if (static_cast<DeviceId>(row[kFaDevice].AsInt4()) == device) {
      return false;  // already there
    }
    auto chunk_table = db_->catalog().GetTable(ChunkTableName(file));
    if (chunk_table.ok()) {
      // Exclusive lock before the move: MigrateTable flushes and then copies
      // the relation block by block, and relies on no writer re-dirtying
      // pages in between.
      INV_RETURN_IF_ERROR(
          db_->LockTable(txn, *chunk_table, LockMode::kExclusive));
      INV_RETURN_IF_ERROR(db_->catalog().MigrateTable(txn, *chunk_table, device));
    }
    // Record the new location in fileatt.
    const Snapshot snap = db_->SnapshotFor(txn);
    INV_ASSIGN_OR_RETURN(auto att, FileattLookup(file, snap));
    if (att.has_value()) {
      Row updated = (*att).second;
      updated[kFaDevice] = Value::Int4(static_cast<int32_t>(device));
      INV_RETURN_IF_ERROR(db_->LockTable(txn, fileatt_, LockMode::kExclusive));
      INV_RETURN_IF_ERROR(
          db_->ReplaceRow(txn, fileatt_, (*att).first, updated).status());
    }
    return true;
  });
  return Status::Ok();
}

}  // namespace invfs
