// Built-in file functions, registered at mount.
//
// These realize the paper's "functions that operate on a particular type may
// also be registered with the database system ... invoked from the query
// language": owner(file), size(file), filetype(file), dir(file), and the
// generic ASCII-document functions of Table 2 (linecount, wordcount,
// keywords). Domain-specific functions like snow(file) are registered the
// same way by applications (see examples/satellite_queries.cc).

#include <algorithm>
#include <cctype>
#include <set>

#include "src/inversion/inv_fs.h"

namespace invfs {
namespace {

Result<Oid> ArgFileOid(std::span<const Value> args) {
  if (args.size() != 1 || args[0].is_null()) {
    return Status::InvalidArgument("file function expects one file-oid argument");
  }
  if (args[0].HasType(TypeId::kOid)) {
    return args[0].AsOid();
  }
  INV_ASSIGN_OR_RETURN(int64_t v, args[0].ToInt64());
  return static_cast<Oid>(v);
}

std::string BytesToText(const std::vector<std::byte>& bytes, size_t limit) {
  const size_t n = std::min(bytes.size(), limit);
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char c = static_cast<char>(bytes[i]);
    out.push_back(c == '\0' ? ' ' : c);
  }
  return out;
}

constexpr const char* kMonthNames[] = {"January",   "February", "March",    "April",
                                       "May",       "June",     "July",     "August",
                                       "September", "October",  "November", "December"};

}  // namespace

Status InversionFs::RegisterBuiltinFunctions(TxnId txn) {
  auto att_value = [this](Oid file, const Snapshot& snap,
                          size_t column) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(auto att, FileattLookup(file, snap));
    if (!att.has_value()) {
      return Status::NotFound("file oid " + std::to_string(file));
    }
    return (*att).second[column];
  };

  registry_.RegisterNative("owner", [=, this](std::span<const Value> args,
                                              EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    return att_value(file, ctx.snap, kFaOwner);
  });
  registry_.RegisterNative("size", [=, this](std::span<const Value> args,
                                             EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    return att_value(file, ctx.snap, kFaSize);
  });
  registry_.RegisterNative("mtime", [=, this](std::span<const Value> args,
                                              EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    return att_value(file, ctx.snap, kFaMtime);
  });
  registry_.RegisterNative("ctime", [=, this](std::span<const Value> args,
                                              EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    return att_value(file, ctx.snap, kFaCtime);
  });
  registry_.RegisterNative("atime", [=, this](std::span<const Value> args,
                                              EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    return att_value(file, ctx.snap, kFaAtime);
  });
  registry_.RegisterNative("filetype", [=, this](std::span<const Value> args,
                                                 EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    INV_ASSIGN_OR_RETURN(Value type_oid, att_value(file, ctx.snap, kFaType));
    INV_ASSIGN_OR_RETURN(TypeInfo * info,
                         db_->catalog().GetTypeByOid(type_oid.AsOid()));
    return Value::Text(info->name);
  });
  registry_.RegisterNative("dir", [this](std::span<const Value> args,
                                         EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    INV_ASSIGN_OR_RETURN(std::string path, PathOf(file, ctx.snap));
    const size_t slash = path.rfind('/');
    return Value::Text(slash == 0 ? "/" : path.substr(0, slash));
  });
  registry_.RegisterNative("pathname", [this](std::span<const Value> args,
                                              EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    INV_ASSIGN_OR_RETURN(std::string path, PathOf(file, ctx.snap));
    return Value::Text(path);
  });
  // Calendar mapping for the paper's month_of(file) = "April" idiom: the
  // simulated epoch is 1 January; months are 30 simulated days.
  registry_.RegisterNative("month_of", [=, this](std::span<const Value> args,
                                                 EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    INV_ASSIGN_OR_RETURN(Value mtime, att_value(file, ctx.snap, kFaMtime));
    constexpr uint64_t kMonthMicros = 30ull * 24 * 3600 * 1'000'000;
    const uint64_t month = (mtime.AsTimestamp() / kMonthMicros) % 12;
    return Value::Text(kMonthNames[month]);
  });

  // Generic ASCII-document functions (Table 2).
  registry_.RegisterNative("linecount", [this](std::span<const Value> args,
                                               EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    INV_ASSIGN_OR_RETURN(auto bytes, ReadWholeFile(file, ctx.snap));
    const int32_t lines = static_cast<int32_t>(
        std::count(bytes.begin(), bytes.end(), std::byte{'\n'}));
    return Value::Int4(lines);
  });
  registry_.RegisterNative("wordcount", [this](std::span<const Value> args,
                                               EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    INV_ASSIGN_OR_RETURN(auto bytes, ReadWholeFile(file, ctx.snap));
    int32_t words = 0;
    bool in_word = false;
    for (std::byte b : bytes) {
      const bool space = std::isspace(static_cast<unsigned char>(b)) != 0;
      if (!space && !in_word) {
        ++words;
      }
      in_word = !space;
    }
    return Value::Int4(words);
  });
  // keywords(file): the distinct words of the document, space-joined, so that
  // the paper's query  where "RISC" in keywords(file)  works unchanged.
  registry_.RegisterNative("keywords", [this](std::span<const Value> args,
                                              EvalContext& ctx) -> Result<Value> {
    INV_ASSIGN_OR_RETURN(Oid file, ArgFileOid(args));
    INV_ASSIGN_OR_RETURN(auto bytes, ReadWholeFile(file, ctx.snap));
    const std::string text = BytesToText(bytes, 64 << 10);
    std::set<std::string> words;
    std::string word;
    for (char c : text) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        word.push_back(c);
      } else if (!word.empty()) {
        if (word.size() >= 3) {
          words.insert(word);
        }
        word.clear();
      }
    }
    if (word.size() >= 3) {
      words.insert(word);
    }
    std::string joined;
    for (const std::string& w : words) {
      if (!joined.empty()) {
        joined += ' ';
      }
      joined += w;
    }
    return Value::Text(joined);
  });

  // Catalog entries (pg_proc) for each builtin, created once.
  struct ProcDef {
    const char* name;
    TypeId rettype;
  };
  constexpr ProcDef kDefs[] = {
      {"owner", TypeId::kText},     {"size", TypeId::kInt8},
      {"mtime", TypeId::kTimestamp}, {"ctime", TypeId::kTimestamp},
      {"atime", TypeId::kTimestamp}, {"filetype", TypeId::kText},
      {"dir", TypeId::kText},       {"pathname", TypeId::kText},
      {"month_of", TypeId::kText},  {"linecount", TypeId::kInt4},
      {"wordcount", TypeId::kInt4}, {"keywords", TypeId::kText},
  };
  for (const ProcDef& def : kDefs) {
    if (!db_->catalog().GetFunction(def.name).ok()) {
      INV_RETURN_IF_ERROR(db_->catalog()
                              .DefineFunction(txn, def.name, def.rettype, 1,
                                              ProcLang::kNative, def.name)
                              .status());
    }
  }
  return Status::Ok();
}

}  // namespace invfs
