#include "src/access/key_codec.h"

#include <cstring>

namespace invfs {
namespace {

void AppendBe32(uint32_t v, BtreeKey* out) {
  out->push_back(std::byte{static_cast<uint8_t>(v >> 24)});
  out->push_back(std::byte{static_cast<uint8_t>(v >> 16)});
  out->push_back(std::byte{static_cast<uint8_t>(v >> 8)});
  out->push_back(std::byte{static_cast<uint8_t>(v)});
}

void AppendBe64(uint64_t v, BtreeKey* out) {
  AppendBe32(static_cast<uint32_t>(v >> 32), out);
  AppendBe32(static_cast<uint32_t>(v), out);
}

}  // namespace

Status AppendKeyPart(const Value& v, BtreeKey* out) {
  if (v.is_null()) {
    return Status::InvalidArgument("null values are not indexable");
  }
  if (v.HasType(TypeId::kInt4)) {
    AppendBe32(static_cast<uint32_t>(v.AsInt4()) ^ 0x80000000u, out);
    return Status::Ok();
  }
  if (v.HasType(TypeId::kInt8)) {
    AppendBe64(static_cast<uint64_t>(v.AsInt8()) ^ 0x8000000000000000ull, out);
    return Status::Ok();
  }
  if (v.HasType(TypeId::kOid)) {
    AppendBe32(v.AsOid(), out);
    return Status::Ok();
  }
  if (v.HasType(TypeId::kTimestamp)) {
    AppendBe64(v.AsTimestamp(), out);
    return Status::Ok();
  }
  if (v.HasType(TypeId::kBool)) {
    out->push_back(std::byte{static_cast<uint8_t>(v.AsBool() ? 1 : 0)});
    return Status::Ok();
  }
  if (v.HasType(TypeId::kFloat8)) {
    double d = v.AsFloat8();
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    // Total order: positive floats flip the sign bit; negatives invert all.
    bits = (bits & 0x8000000000000000ull) ? ~bits : bits | 0x8000000000000000ull;
    AppendBe64(bits, out);
    return Status::Ok();
  }
  if (v.HasType(TypeId::kText)) {
    const std::string& s = v.AsText();
    if (s.find('\0') != std::string::npos) {
      return Status::InvalidArgument("text key contains NUL");
    }
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    out->insert(out->end(), p, p + s.size());
    out->push_back(std::byte{0});
    return Status::Ok();
  }
  return Status::InvalidArgument("type not indexable: " + v.ToString());
}

Result<BtreeKey> EncodeKey(std::span<const Value> values) {
  BtreeKey out;
  for (const Value& v : values) {
    INV_RETURN_IF_ERROR(AppendKeyPart(v, &out));
  }
  return out;
}

BtreeKey EncodeInt4Key(int32_t v) {
  BtreeKey out;
  AppendBe32(static_cast<uint32_t>(v) ^ 0x80000000u, &out);
  return out;
}

BtreeKey EncodeOidKey(Oid v) {
  BtreeKey out;
  AppendBe32(v, &out);
  return out;
}

BtreeKey EncodeTextKey(std::string_view s) {
  BtreeKey out;
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
  out.push_back(std::byte{0});
  return out;
}

}  // namespace invfs
