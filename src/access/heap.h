// Heap access method: the POSTGRES no-overwrite storage manager.
//
// "When a record is updated or deleted, the original record is marked invalid,
// but remains in place. For updates, a new record containing the new values is
// added." Deletion stamps the tuple's xmax; nothing is ever overwritten, so
// every historical version remains readable until the vacuum cleaner archives
// it. Combined with the commit log this gives time travel and instantaneous
// crash recovery.

#pragma once

#include <atomic>
#include <optional>

#include "src/buffer/buffer_pool.h"
#include "src/storage/tuple.h"
#include "src/txn/snapshot.h"
#include "src/txn/txn_manager.h"
#include "src/util/status.h"

namespace invfs {

class Heap {
 public:
  // `schema` must outlive the heap. The relation must already exist on its
  // device and be bound in the device switch.
  Heap(Oid rel, const Schema* schema, BufferPool* pool, TxnManager* txns);

  Oid rel() const { return rel_; }
  const Schema& schema() const { return *schema_; }

  // Append a new tuple version stamped xmin=txn. `row_oid` is the logical row
  // oid (catalogs use it; 0 elsewhere).
  Result<Tid> Insert(TxnId txn, const Row& row, Oid row_oid = kInvalidOid);

  // Append a tuple with a caller-supplied MVCC header, preserving its
  // original xmin/xmax. Used by vacuum to move versions into the archive
  // without disturbing their visibility. `txn` is only used to note the
  // touched relation for the commit force policy.
  Result<Tid> InsertRaw(TxnId txn, const Row& row, const TupleMeta& meta);

  // Mark the version at `tid` deleted by `txn` (sets xmax in place — the one
  // in-place mutation the no-overwrite scheme performs). Fails with
  // AlreadyExists if a live deleter already claimed it (write-write conflict).
  Status Delete(TxnId txn, Tid tid);

  // Replace = delete old version + insert new version, atomically within txn.
  Result<Tid> Replace(TxnId txn, Tid old_tid, const Row& new_row,
                      Oid row_oid = kInvalidOid);

  // Fetch the version at `tid` if visible under `snap`.
  Result<std::optional<Row>> Fetch(const Snapshot& snap, Tid tid) const;
  // Fetch a single column of the version at `tid` if visible (hot path for
  // chunk reads: skips decoding the 8 KB data column's siblings... and for
  // key probes skips the 8 KB column itself).
  Result<std::optional<Value>> FetchColumn(const Snapshot& snap, Tid tid,
                                           size_t column) const;
  // Raw fetch without visibility check (vacuum, diagnostics).
  Result<std::pair<TupleMeta, Row>> FetchAny(Tid tid) const;

  Result<uint32_t> NumBlocks() const { return pool_->NumBlocks(rel_); }

  // Sequential scan returning only versions visible under the snapshot.
  class Iterator {
   public:
    // Advances to the next visible tuple; false at end of relation.
    bool Next();
    const Row& row() const { return row_; }
    Tid tid() const { return tid_; }
    const TupleMeta& meta() const { return meta_; }
    // Non-OK if iteration stopped due to an error rather than end-of-heap.
    Status status() const { return status_; }

   private:
    friend class Heap;
    Iterator(const Heap* heap, Snapshot snap, bool include_invisible)
        : heap_(heap), snap_(snap), include_invisible_(include_invisible) {}

    const Heap* heap_;
    Snapshot snap_;
    bool include_invisible_;
    uint32_t block_ = 0;
    uint16_t slot_ = 0;
    bool began_ = false;
    uint32_t nblocks_ = 0;
    PageRef page_;
    Row row_;
    Tid tid_;
    TupleMeta meta_;
    Status status_;
  };

  Iterator Scan(const Snapshot& snap) const { return Iterator(this, snap, false); }
  // Scan every version regardless of visibility (vacuum).
  Iterator ScanAll() const {
    return Iterator(this, Snapshot{kTimestampNow, kInvalidTxn, nullptr, nullptr},
                    true);
  }

  // Physically remove a dead slot (vacuum only; ordinary deletes never do this).
  Status Expunge(Tid tid);
  // Compact every page in place (after Expunge passes).
  Status CompactAllPages();

 private:
  Oid rel_;
  const Schema* schema_;
  BufferPool* pool_;
  TxnManager* txns_;
  // Insertion target: last block known to have had space. Atomic because
  // concurrent inserters (distinct transactions under table locks, or the
  // MT stress harness) may race on the hint; it is advisory only.
  mutable std::atomic<uint32_t> hint_block_{0};
};

}  // namespace invfs
