// Disk-based B+tree access method.
//
// Inversion keeps "a Btree index on the chunk number attribute" of every file
// table so seeks are fast, plus "various Btree indices on the naming table".
// The index maps an order-preserving encoded key (see key_codec.h) to a heap
// TID. Entries are never removed by MVCC deletes — all versions stay indexed
// and visibility is resolved at the heap — so a historical snapshot can use
// the same index ("the appropriate historical version of a file is
// constructed using an index on all of the file's available data, including
// both old and current blocks"). Vacuum rebuilds indices after expunging.
//
// Layout: block 0 is a meta page holding the root block number; every other
// block is a node. Nodes keep entries byte-packed in sorted order.

#pragma once

#include <memory>
#include <vector>

#include "src/access/key_codec.h"
#include "src/buffer/buffer_pool.h"
#include "src/storage/common.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

class BTree {
 public:
  // Create a fresh index in relation `rel` (already created on its device).
  static Result<std::unique_ptr<BTree>> Create(Oid rel, BufferPool* pool);
  // Open an existing index.
  static Result<std::unique_ptr<BTree>> Open(Oid rel, BufferPool* pool);

  Oid rel() const { return rel_; }

  // Insert (key, tid). Duplicate keys are allowed; the (key, tid) pair should
  // be unique (the heap never produces the same TID twice).
  Status Insert(const BtreeKey& key, Tid tid);

  // Remove the entry matching (key, tid) exactly. NotFound if absent.
  Status Remove(const BtreeKey& key, Tid tid);

  // Point lookup: all TIDs whose key equals `key` (multiple versions).
  Result<std::vector<Tid>> Lookup(const BtreeKey& key) const;

  // Range iteration over keys in [lo, +inf), caller stops when done.
  class Iterator {
   public:
    bool Valid() const { return pos_ < entries_.size(); }
    const BtreeKey& key() const { return entries_[pos_].first; }
    Tid tid() const { return entries_[pos_].second; }
    // Moves to the next entry in key order; loads sibling leaves on demand.
    Status Advance();

   private:
    friend class BTree;
    const BTree* tree_ = nullptr;
    std::vector<std::pair<BtreeKey, Tid>> entries_;  // current leaf, copied
    size_t pos_ = 0;
    uint32_t next_leaf_ = kNoBlock;
    Status LoadLeaf(uint32_t block, const BtreeKey* lo);
  };

  // Iterator positioned at the first entry with key >= lo (empty lo: first).
  Result<Iterator> Seek(const BtreeKey& lo) const;

  // Structural validation for tests: sorted nodes, uniform leaf depth,
  // ordered sibling chain. Returns Corruption on violation.
  Status CheckInvariants() const;

  // Number of entries (full scan; tests and vacuum statistics).
  Result<uint64_t> CountEntries() const;

  static constexpr uint32_t kNoBlock = 0xFFFFFFFF;

 private:
  BTree(Oid rel, BufferPool* pool) : rel_(rel), pool_(pool) {}

  struct SplitResult {
    bool split = false;
    BtreeKey separator;
    uint32_t right_block = 0;
  };

  // Tree-structure helpers. mu_ guards no field directly — the tree lives in
  // buffer-pool pages — but every structural traversal or mutation must run
  // under it, so the helpers carry REQUIRES and the analysis proves the
  // public entry points hold the monitor lock around them.
  Result<uint32_t> RootBlock() const REQUIRES(mu_);
  Status SetRootBlock(uint32_t root) REQUIRES(mu_);
  Result<uint32_t> NewNode(bool leaf) REQUIRES(mu_);

  Result<SplitResult> InsertRec(uint32_t block, const BtreeKey& key, Tid tid)
      REQUIRES(mu_);
  // Descend from `block` to the leaf that could contain `key`.
  Result<uint32_t> FindLeaf(uint32_t block, const BtreeKey& key) const
      REQUIRES(mu_);
  Result<uint32_t> LeftmostLeaf(uint32_t block) const REQUIRES(mu_);

  Oid rel_;
  BufferPool* pool_;
  mutable Mutex mu_;
};

}  // namespace invfs
