#include "src/access/heap.h"

#include "src/fault/crash_points.h"

namespace invfs {

Heap::Heap(Oid rel, const Schema* schema, BufferPool* pool, TxnManager* txns)
    : rel_(rel), schema_(schema), pool_(pool), txns_(txns) {}

Result<Tid> Heap::Insert(TxnId txn, const Row& row, Oid row_oid) {
  return InsertRaw(txn, row, TupleMeta{row_oid, txn, kInvalidTxn});
}

Result<Tid> Heap::InsertRaw(TxnId txn, const Row& row, const TupleMeta& meta) {
  INV_ASSIGN_OR_RETURN(auto encoded, EncodeTuple(*schema_, row, meta));
  if (encoded.size() + kLinePointerSize > kPageSize - kPageHeaderSize) {
    return Status::InvalidArgument("tuple does not fit on one page (" +
                                   std::to_string(encoded.size()) + " bytes)");
  }
  txns_->NoteTouched(txn, rel_);
  CrashPointRegistry::Hit("heap.insert");

  INV_ASSIGN_OR_RETURN(uint32_t nblocks, pool_->NumBlocks(rel_));
  // Try the hint block (normally the last block), then extend.
  if (nblocks > 0) {
    const uint32_t hint = hint_block_.load(std::memory_order_relaxed);
    uint32_t target = hint < nblocks ? hint : nblocks - 1;
    // Also try the true last block if the hint is stale.
    for (uint32_t candidate : {target, nblocks - 1}) {
      INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, candidate));
      std::optional<uint16_t> slot;
      {
        // Page latch: lock-free snapshot readers may be decoding this page.
        MutexLock latch(ref.Latch());
        Page page = ref.page();
        auto added = page.AddTuple(encoded);
        if (added.ok()) {
          slot = *added;
          ref.MarkDirty();
        }
      }
      if (slot.has_value()) {
        hint_block_.store(candidate, std::memory_order_relaxed);
        return Tid{candidate, *slot};
      }
      if (candidate == nblocks - 1) {
        break;
      }
    }
  }
  uint32_t new_block = 0;
  INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Extend(rel_, &new_block));
  uint16_t slot = 0;
  {
    MutexLock latch(ref.Latch());
    Page page = ref.page();
    INV_ASSIGN_OR_RETURN(slot, page.AddTuple(encoded));
    ref.MarkDirty();
  }
  hint_block_.store(new_block, std::memory_order_relaxed);
  return Tid{new_block, slot};
}

Status Heap::Delete(TxnId txn, Tid tid) {
  INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, tid.block));
  // Page latch across the check-and-stamp: the xmax write is the one
  // in-place mutation of the no-overwrite scheme, and lock-free readers
  // decode this tuple's meta with no table lock held.
  MutexLock latch(ref.Latch());
  Page page = ref.page();
  INV_ASSIGN_OR_RETURN(auto tuple, page.GetMutableTuple(tid.slot));
  if (tuple.empty()) {
    return Status::NotFound("tuple " + tid.ToString() + " is gone");
  }
  TupleMeta meta = GetTupleMeta(tuple);
  if (meta.xmax != kInvalidTxn && meta.xmax != txn) {
    // A previous deleter exists. Only an *aborted* deleter may be overridden.
    const TxnStatus st = txns_->log().StatusOf(meta.xmax);
    if (st != TxnStatus::kAborted) {
      return Status::AlreadyExists("tuple " + tid.ToString() +
                                   " already deleted by txn " +
                                   std::to_string(meta.xmax));
    }
  }
  SetTupleXmax(tuple, txn);
  ref.MarkDirty();
  txns_->NoteTouched(txn, rel_);
  return Status::Ok();
}

Result<Tid> Heap::Replace(TxnId txn, Tid old_tid, const Row& new_row, Oid row_oid) {
  INV_RETURN_IF_ERROR(Delete(txn, old_tid));
  return Insert(txn, new_row, row_oid);
}

Result<std::optional<Row>> Heap::Fetch(const Snapshot& snap, Tid tid) const {
  // A TID past the persisted end of the heap is a dangling reference from a
  // write-through index whose heap page never reached disk before a crash.
  // Force-at-commit flushes data pages before the commit record, so the
  // entry's writer never committed: the tuple is invisible by construction,
  // not an error. Checked only on the failure path so fetches that resolve
  // stay zero-overhead.
  auto ref_or = pool_->Pin(rel_, tid.block);
  if (!ref_or.ok()) {
    auto nblocks = pool_->NumBlocks(rel_);
    if (nblocks.ok() && tid.block >= *nblocks) {
      return std::optional<Row>();
    }
    return ref_or.status();
  }
  PageRef ref = std::move(*ref_or);
  // Page latch: a concurrent writer may be stamping xmax or appending a
  // slot on this page; readers hold no table lock.
  MutexLock latch(ref.Latch());
  Page page = ref.page();
  if (tid.slot >= page.num_slots()) {
    return std::optional<Row>();  // dangling entry; see above
  }
  INV_ASSIGN_OR_RETURN(auto tuple, page.GetTuple(tid.slot));
  if (tuple.empty()) {
    return std::optional<Row>();
  }
  if (!snap.IsVisible(GetTupleMeta(tuple))) {
    return std::optional<Row>();
  }
  INV_ASSIGN_OR_RETURN(Row row, DecodeTuple(*schema_, tuple));
  return std::optional<Row>(std::move(row));
}

Result<std::optional<Value>> Heap::FetchColumn(const Snapshot& snap, Tid tid,
                                               size_t column) const {
  // Dangling post-crash index entries are invisible, not errors; see Fetch.
  auto ref_or = pool_->Pin(rel_, tid.block);
  if (!ref_or.ok()) {
    auto nblocks = pool_->NumBlocks(rel_);
    if (nblocks.ok() && tid.block >= *nblocks) {
      return std::optional<Value>();
    }
    return ref_or.status();
  }
  PageRef ref = std::move(*ref_or);
  MutexLock latch(ref.Latch());
  Page page = ref.page();
  if (tid.slot >= page.num_slots()) {
    return std::optional<Value>();
  }
  INV_ASSIGN_OR_RETURN(auto tuple, page.GetTuple(tid.slot));
  if (tuple.empty() || !snap.IsVisible(GetTupleMeta(tuple))) {
    return std::optional<Value>();
  }
  INV_ASSIGN_OR_RETURN(Value v, DecodeColumn(*schema_, tuple, column));
  return std::optional<Value>(std::move(v));
}

Result<std::pair<TupleMeta, Row>> Heap::FetchAny(Tid tid) const {
  INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, tid.block));
  MutexLock latch(ref.Latch());
  Page page = ref.page();
  INV_ASSIGN_OR_RETURN(auto tuple, page.GetTuple(tid.slot));
  if (tuple.empty()) {
    return Status::NotFound("tuple " + tid.ToString() + " is gone");
  }
  INV_ASSIGN_OR_RETURN(Row row, DecodeTuple(*schema_, tuple));
  return std::make_pair(GetTupleMeta(tuple), std::move(row));
}

bool Heap::Iterator::Next() {
  if (!status_.ok()) {
    return false;
  }
  if (!began_) {
    began_ = true;
    auto nb = heap_->pool_->NumBlocks(heap_->rel_);
    if (!nb.ok()) {
      status_ = nb.status();
      return false;
    }
    nblocks_ = *nb;
    block_ = 0;
    slot_ = 0;
  }
  while (block_ < nblocks_) {
    if (!page_.valid()) {
      auto ref = heap_->pool_->Pin(heap_->rel_, block_);
      if (!ref.ok()) {
        status_ = ref.status();
        return false;
      }
      page_ = std::move(*ref);
      slot_ = 0;
    }
    {
      // Page latch for the slot walk: concurrent in-place writers (xmax
      // stamps, appends, vacuum compaction) share this page with lock-free
      // readers. Released before returning a row — row_ is a materialized
      // copy, and slot numbering is stable across vacuum's Compact, so the
      // cursor position survives re-acquisition on the next call.
      MutexLock latch(page_.Latch());
      Page page(page_.data());
      const uint16_t nslots = page.num_slots();
      while (slot_ < nslots) {
        const uint16_t s = slot_++;
        auto tuple = page.GetTuple(s);
        if (!tuple.ok()) {
          status_ = tuple.status();
          return false;
        }
        if (tuple->empty()) {
          continue;  // expunged slot
        }
        meta_ = GetTupleMeta(*tuple);
        if (!include_invisible_ && !snap_.IsVisible(meta_)) {
          continue;
        }
        auto row = DecodeTuple(*heap_->schema_, *tuple);
        if (!row.ok()) {
          status_ = row.status();
          return false;
        }
        row_ = std::move(*row);
        tid_ = Tid{block_, s};
        return true;
      }
    }
    page_.Release();
    ++block_;
  }
  return false;
}

Status Heap::Expunge(Tid tid) {
  INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, tid.block));
  MutexLock latch(ref.Latch());
  Page page = ref.page();
  INV_RETURN_IF_ERROR(page.KillSlot(tid.slot));
  ref.MarkDirty();
  return Status::Ok();
}

Status Heap::CompactAllPages() {
  INV_ASSIGN_OR_RETURN(uint32_t nblocks, pool_->NumBlocks(rel_));
  for (uint32_t b = 0; b < nblocks; ++b) {
    INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, b));
    // Compact rewrites tuple bytes but preserves slot numbering, so a
    // lock-free reader parked between two pages resumes correctly; the
    // latch makes the byte movement invisible to one parked *on* this page.
    MutexLock latch(ref.Latch());
    Page page = ref.page();
    page.Compact();
    ref.MarkDirty();
  }
  return Status::Ok();
}

}  // namespace invfs
