// On-page layout of B-tree nodes, shared between the live access method
// (btree.cc) and the offline structural verifier (src/check). Keep in sync
// with BTree's node reader/writer; invfs_check depends on these constants to
// walk an image without going through the buffer pool.

#pragma once

#include <cstdint>

#include "src/storage/page.h"

namespace invfs::btree_layout {

// Node byte layout (after the 24-byte standard page header):
inline constexpr uint32_t kOffType = 24;        // u8: 1 leaf, 2 internal
inline constexpr uint32_t kOffRightSib = 25;    // u32
inline constexpr uint32_t kOffNKeys = 29;       // u16
inline constexpr uint32_t kOffLeftChild = 31;   // u32 (internal)
inline constexpr uint32_t kOffUsed = 35;        // u16: entry-area bytes in use
inline constexpr uint32_t kOffEntries = 37;
inline constexpr uint32_t kEntryArea = kPageSize - kOffEntries;

inline constexpr uint8_t kNodeLeaf = 1;
inline constexpr uint8_t kNodeInternal = 2;

// Meta page (block 0) layout:
inline constexpr uint32_t kOffMetaMagic = 24;  // u32
inline constexpr uint32_t kOffMetaRoot = 28;   // u32
inline constexpr uint32_t kBtreeMetaMagic = 0xB7EEB7EE;

// Stored node keys are the user key with the TID appended (big-endian, so
// memcmp order is preserved); see btree.cc for why.
inline constexpr size_t kTidSuffix = 6;

// Entry encoding per node: u16 key length, key bytes, then the payload —
// leaves carry u32 heap block + u16 slot (6 bytes), internal nodes u32 child.

}  // namespace invfs::btree_layout
