// Order-preserving key encoding for B-tree indices.
//
// Composite keys are encoded column-by-column into a byte string whose
// memcmp order equals the tuple order of the underlying values:
//   * signed integers: big-endian with the sign bit flipped
//   * oid/timestamp:   big-endian unsigned
//   * float8:          IEEE bits, sign-flipped-or-inverted (total order)
//   * text:            raw bytes followed by a 0x00 terminator (text keys may
//                      not contain NUL — enforced at encode time)
//   * bool:            one byte
// Nulls are not indexable (Inversion's key columns are all NOT NULL).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/storage/value.h"
#include "src/util/status.h"

namespace invfs {

using BtreeKey = std::vector<std::byte>;

// Encode one value, appending to `out`.
Status AppendKeyPart(const Value& v, BtreeKey* out);

// Encode a composite key.
Result<BtreeKey> EncodeKey(std::span<const Value> values);

// Convenience single-column encoders used on hot paths.
BtreeKey EncodeInt4Key(int32_t v);
BtreeKey EncodeOidKey(Oid v);
BtreeKey EncodeTextKey(std::string_view s);

}  // namespace invfs
