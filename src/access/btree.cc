#include "src/access/btree.h"

#include <algorithm>
#include <cstring>

#include "src/access/btree_layout.h"
#include "src/fault/crash_points.h"
#include "src/storage/page.h"
#include "src/util/bytes.h"

namespace invfs {
namespace {

// Node and meta-page byte layout lives in btree_layout.h, shared with the
// offline verifier.
using namespace btree_layout;  // NOLINT(google-build-using-namespace)

int CompareKeys(std::span<const std::byte> a, std::span<const std::byte> b) {
  const size_t n = std::min(a.size(), b.size());
  const int c = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
  if (c != 0) {
    return c;
  }
  return a.size() < b.size() ? -1 : (a.size() == b.size() ? 0 : 1);
}

// Stored node keys are the user key with the TID appended (big-endian, so
// memcmp order is preserved). This makes every stored key unique, which keeps
// duplicate user keys contiguous across leaf splits — without it, a split in
// the middle of an equal-key run would strand entries left of the separator
// where descent can no longer find them.
BtreeKey CombineKey(const BtreeKey& key, Tid tid) {
  BtreeKey out = key;
  out.push_back(std::byte{static_cast<uint8_t>(tid.block >> 24)});
  out.push_back(std::byte{static_cast<uint8_t>(tid.block >> 16)});
  out.push_back(std::byte{static_cast<uint8_t>(tid.block >> 8)});
  out.push_back(std::byte{static_cast<uint8_t>(tid.block)});
  out.push_back(std::byte{static_cast<uint8_t>(tid.slot >> 8)});
  out.push_back(std::byte{static_cast<uint8_t>(tid.slot)});
  return out;
}

std::span<const std::byte> UserPart(const BtreeKey& stored) {
  return std::span(stored.data(), stored.size() - kTidSuffix);
}

struct Entry {
  BtreeKey key;
  // Leaf payload:
  Tid tid;
  // Internal payload:
  uint32_t child = 0;
};

size_t EntryBytes(const Entry& e, bool leaf) {
  return 2 + e.key.size() + (leaf ? 6 : 4);
}

// Read/write helpers over a raw node frame.
struct NodeView {
  std::byte* p;

  bool leaf() const { return static_cast<uint8_t>(p[kOffType]) == kNodeLeaf; }
  void set_type(bool is_leaf) {
    p[kOffType] = std::byte{is_leaf ? kNodeLeaf : kNodeInternal};
  }
  uint32_t right_sibling() const { return GetU32(p + kOffRightSib); }
  void set_right_sibling(uint32_t b) { PutU32(p + kOffRightSib, b); }
  uint16_t nkeys() const { return GetU16(p + kOffNKeys); }
  uint32_t leftmost_child() const { return GetU32(p + kOffLeftChild); }
  void set_leftmost_child(uint32_t b) { PutU32(p + kOffLeftChild, b); }
  uint16_t used() const { return GetU16(p + kOffUsed); }

  void InitNode(bool is_leaf) {
    set_type(is_leaf);
    set_right_sibling(BTree::kNoBlock);
    PutU16(p + kOffNKeys, 0);
    set_leftmost_child(BTree::kNoBlock);
    PutU16(p + kOffUsed, 0);
  }

  std::vector<Entry> Decode() const {
    const bool is_leaf = leaf();
    std::vector<Entry> out;
    out.reserve(nkeys());
    const std::byte* d = p + kOffEntries;
    for (uint16_t i = 0; i < nkeys(); ++i) {
      Entry e;
      const uint16_t klen = GetU16(d);
      d += 2;
      e.key.assign(d, d + klen);
      d += klen;
      if (is_leaf) {
        e.tid.block = GetU32(d);
        e.tid.slot = GetU16(d + 4);
        d += 6;
      } else {
        e.child = GetU32(d);
        d += 4;
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  static size_t TotalBytes(const std::vector<Entry>& entries, bool is_leaf) {
    size_t total = 0;
    for (const Entry& e : entries) {
      total += EntryBytes(e, is_leaf);
    }
    return total;
  }

  // Returns false (and writes nothing) if the entries do not fit.
  bool Encode(const std::vector<Entry>& entries) {
    const bool is_leaf = leaf();
    const size_t total = TotalBytes(entries, is_leaf);
    if (total > kEntryArea) {
      return false;
    }
    std::byte* d = p + kOffEntries;
    for (const Entry& e : entries) {
      PutU16(d, static_cast<uint16_t>(e.key.size()));
      d += 2;
      std::memcpy(d, e.key.data(), e.key.size());
      d += e.key.size();
      if (is_leaf) {
        PutU32(d, e.tid.block);
        PutU16(d + 4, e.tid.slot);
        d += 6;
      } else {
        PutU32(d, e.child);
        d += 4;
      }
    }
    PutU16(p + kOffNKeys, static_cast<uint16_t>(entries.size()));
    PutU16(p + kOffUsed, static_cast<uint16_t>(total));
    return true;
  }

  // In-place descent: child covering `key` (internal nodes only).
  uint32_t ChildFor(std::span<const std::byte> key) const {
    uint32_t child = leftmost_child();
    const std::byte* d = p + kOffEntries;
    for (uint16_t i = 0; i < nkeys(); ++i) {
      const uint16_t klen = GetU16(d);
      std::span<const std::byte> ekey(d + 2, klen);
      const uint32_t echild = GetU32(d + 2 + klen);
      if (CompareKeys(key, ekey) >= 0) {
        child = echild;
      } else {
        break;
      }
      d += 2 + klen + 4;
    }
    return child;
  }
};

}  // namespace

Result<std::unique_ptr<BTree>> BTree::Create(Oid rel, BufferPool* pool) {
  auto tree = std::unique_ptr<BTree>(new BTree(rel, pool));
  uint32_t meta_block = 0;
  INV_ASSIGN_OR_RETURN(PageRef meta, pool->Extend(rel, &meta_block));
  if (meta_block != 0) {
    return Status::Internal("btree meta must be block 0");
  }
  uint32_t root_block = 0;
  INV_ASSIGN_OR_RETURN(PageRef root, pool->Extend(rel, &root_block));
  NodeView view{root.data()};
  view.InitNode(/*is_leaf=*/true);
  root.MarkDirty();
  PutU32(meta.data() + kOffMetaMagic, kBtreeMetaMagic);
  PutU32(meta.data() + kOffMetaRoot, root_block);
  meta.MarkDirty();
  return tree;
}

Result<std::unique_ptr<BTree>> BTree::Open(Oid rel, BufferPool* pool) {
  auto tree = std::unique_ptr<BTree>(new BTree(rel, pool));
  // Single-threaded open, but RootBlock carries REQUIRES(mu_) and a static
  // member gets no constructor exemption from the analysis.
  MutexLock lock(tree->mu_);
  INV_ASSIGN_OR_RETURN(uint32_t root, tree->RootBlock());
  (void)root;
  return tree;
}

Result<uint32_t> BTree::RootBlock() const {
  INV_ASSIGN_OR_RETURN(PageRef meta, pool_->Pin(rel_, 0));
  if (GetU32(meta.data() + kOffMetaMagic) != kBtreeMetaMagic) {
    return Status::Corruption("btree meta page magic mismatch in rel " +
                              std::to_string(rel_));
  }
  return GetU32(meta.data() + kOffMetaRoot);
}

Status BTree::SetRootBlock(uint32_t root) {
  INV_ASSIGN_OR_RETURN(PageRef meta, pool_->Pin(rel_, 0));
  PutU32(meta.data() + kOffMetaRoot, root);
  meta.MarkDirty();
  return Status::Ok();
}

Result<uint32_t> BTree::NewNode(bool leaf) {
  uint32_t block = 0;
  INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Extend(rel_, &block));
  NodeView view{ref.data()};
  view.InitNode(leaf);
  ref.MarkDirty();
  return block;
}

Result<BTree::SplitResult> BTree::InsertRec(uint32_t block, const BtreeKey& key,
                                            Tid tid) {
  INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, block));
  NodeView view{ref.data()};

  if (view.leaf()) {
    std::vector<Entry> entries = view.Decode();
    // Insert after any run of equal keys (stable for duplicate keys).
    auto pos = std::upper_bound(
        entries.begin(), entries.end(), key,
        [](const BtreeKey& k, const Entry& e) { return CompareKeys(k, e.key) < 0; });
    Entry e;
    e.key = key;
    e.tid = tid;
    entries.insert(pos, std::move(e));
    if (view.Encode(entries)) {
      ref.MarkDirty();
      return SplitResult{};
    }
    // Split: move the upper half to a fresh right sibling.
    CrashPointRegistry::Hit("btree.split");
    const size_t m = entries.size() / 2;
    std::vector<Entry> right_entries(entries.begin() + static_cast<ptrdiff_t>(m),
                                     entries.end());
    entries.resize(m);
    INV_ASSIGN_OR_RETURN(uint32_t right_block, NewNode(/*leaf=*/true));
    INV_ASSIGN_OR_RETURN(PageRef right_ref, pool_->Pin(rel_, right_block));
    NodeView right{right_ref.data()};
    right.set_right_sibling(view.right_sibling());
    view.set_right_sibling(right_block);
    INV_CHECK(right.Encode(right_entries));
    INV_CHECK(view.Encode(entries));
    right_ref.MarkDirty();
    ref.MarkDirty();
    SplitResult result;
    result.split = true;
    result.separator = right_entries.front().key;
    result.right_block = right_block;
    return result;
  }

  // Internal node: descend.
  const uint32_t child = view.ChildFor(key);
  INV_ASSIGN_OR_RETURN(SplitResult child_split, InsertRec(child, key, tid));
  if (!child_split.split) {
    return SplitResult{};
  }
  std::vector<Entry> entries = view.Decode();
  auto pos = std::upper_bound(entries.begin(), entries.end(), child_split.separator,
                              [](const BtreeKey& k, const Entry& e) {
                                return CompareKeys(k, e.key) < 0;
                              });
  Entry e;
  e.key = child_split.separator;
  e.child = child_split.right_block;
  entries.insert(pos, std::move(e));
  if (view.Encode(entries)) {
    ref.MarkDirty();
    return SplitResult{};
  }
  // Split internal node: the middle key moves up (not copied).
  const size_t m = entries.size() / 2;
  SplitResult result;
  result.split = true;
  result.separator = entries[m].key;
  INV_ASSIGN_OR_RETURN(uint32_t right_block, NewNode(/*leaf=*/false));
  INV_ASSIGN_OR_RETURN(PageRef right_ref, pool_->Pin(rel_, right_block));
  NodeView right{right_ref.data()};
  right.set_leftmost_child(entries[m].child);
  right.set_right_sibling(view.right_sibling());
  view.set_right_sibling(right_block);
  std::vector<Entry> right_entries(entries.begin() + static_cast<ptrdiff_t>(m) + 1,
                                   entries.end());
  entries.resize(m);
  INV_CHECK(right.Encode(right_entries));
  INV_CHECK(view.Encode(entries));
  right_ref.MarkDirty();
  ref.MarkDirty();
  result.right_block = right_block;
  return result;
}

Status BTree::Insert(const BtreeKey& key, Tid tid) {
  if (key.size() > kEntryArea / 4) {
    return Status::InvalidArgument("btree key too large");
  }
  MutexLock lock(mu_);
  const BtreeKey stored = CombineKey(key, tid);
  INV_ASSIGN_OR_RETURN(uint32_t root, RootBlock());
  INV_ASSIGN_OR_RETURN(SplitResult split, InsertRec(root, stored, tid));
  if (!split.split) {
    return Status::Ok();
  }
  INV_ASSIGN_OR_RETURN(uint32_t new_root, NewNode(/*leaf=*/false));
  INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, new_root));
  NodeView view{ref.data()};
  view.set_leftmost_child(root);
  Entry e;
  e.key = split.separator;
  e.child = split.right_block;
  std::vector<Entry> entries;
  entries.push_back(std::move(e));
  INV_CHECK(view.Encode(entries));
  ref.MarkDirty();
  return SetRootBlock(new_root);
}

Result<uint32_t> BTree::FindLeaf(uint32_t block, const BtreeKey& key) const {
  uint32_t current = block;
  for (;;) {
    INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, current));
    NodeView view{ref.data()};
    if (view.leaf()) {
      return current;
    }
    current = view.ChildFor(key);
    if (current == kNoBlock) {
      return Status::Corruption("btree internal node with no child");
    }
  }
}

Result<uint32_t> BTree::LeftmostLeaf(uint32_t block) const {
  uint32_t current = block;
  for (;;) {
    INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, current));
    NodeView view{ref.data()};
    if (view.leaf()) {
      return current;
    }
    current = view.leftmost_child();
  }
}

Status BTree::Remove(const BtreeKey& key, Tid tid) {
  MutexLock lock(mu_);
  const BtreeKey stored = CombineKey(key, tid);
  INV_ASSIGN_OR_RETURN(uint32_t root, RootBlock());
  INV_ASSIGN_OR_RETURN(uint32_t leaf, FindLeaf(root, stored));
  uint32_t current = leaf;
  while (current != kNoBlock) {
    INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, current));
    NodeView view{ref.data()};
    std::vector<Entry> entries = view.Decode();
    bool past = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      const int c = CompareKeys(entries[i].key, stored);
      if (c > 0) {
        past = true;
        break;
      }
      if (c == 0) {
        entries.erase(entries.begin() + static_cast<ptrdiff_t>(i));
        INV_CHECK(view.Encode(entries));
        ref.MarkDirty();
        return Status::Ok();
      }
    }
    if (past) {
      break;
    }
    current = view.right_sibling();
  }
  return Status::NotFound("btree entry not found");
}

Result<std::vector<Tid>> BTree::Lookup(const BtreeKey& key) const {
  MutexLock lock(mu_);
  // Position at the first stored key with user part >= key.
  const BtreeKey lower = CombineKey(key, Tid{0, 0});
  INV_ASSIGN_OR_RETURN(uint32_t root, RootBlock());
  INV_ASSIGN_OR_RETURN(uint32_t leaf, FindLeaf(root, lower));
  std::vector<Tid> out;
  uint32_t current = leaf;
  while (current != kNoBlock) {
    INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, current));
    NodeView view{ref.data()};
    std::vector<Entry> entries = view.Decode();
    bool past = false;
    for (const Entry& e : entries) {
      if (e.key.size() < kTidSuffix) {
        return Status::Corruption("stored btree key shorter than TID suffix");
      }
      const int c = CompareKeys(UserPart(e.key), key);
      if (c > 0) {
        past = true;
        break;
      }
      if (c == 0 && e.key.size() == key.size() + kTidSuffix) {
        out.push_back(e.tid);
      }
    }
    if (past) {
      break;
    }
    current = view.right_sibling();
  }
  return out;
}

Status BTree::Iterator::LoadLeaf(uint32_t block, const BtreeKey* lo) {
  entries_.clear();
  pos_ = 0;
  INV_ASSIGN_OR_RETURN(PageRef ref, tree_->pool_->Pin(tree_->rel_, block));
  NodeView view{ref.data()};
  for (Entry& e : view.Decode()) {
    if (e.key.size() < kTidSuffix) {
      return Status::Corruption("stored btree key shorter than TID suffix");
    }
    // Surface the user key (strip the uniquifying TID suffix).
    BtreeKey user(UserPart(e.key).begin(), UserPart(e.key).end());
    if (lo == nullptr || CompareKeys(user, *lo) >= 0) {
      entries_.emplace_back(std::move(user), e.tid);
    }
  }
  next_leaf_ = view.right_sibling();
  return Status::Ok();
}

Status BTree::Iterator::Advance() {
  if (pos_ < entries_.size()) {
    ++pos_;
  }
  while (pos_ >= entries_.size() && next_leaf_ != kNoBlock) {
    INV_RETURN_IF_ERROR(LoadLeaf(next_leaf_, nullptr));
  }
  return Status::Ok();
}

Result<BTree::Iterator> BTree::Seek(const BtreeKey& lo) const {
  MutexLock lock(mu_);
  Iterator it;
  it.tree_ = this;
  INV_ASSIGN_OR_RETURN(uint32_t root, RootBlock());
  uint32_t leaf;
  if (lo.empty()) {
    INV_ASSIGN_OR_RETURN(leaf, LeftmostLeaf(root));
    INV_RETURN_IF_ERROR(it.LoadLeaf(leaf, nullptr));
  } else {
    INV_ASSIGN_OR_RETURN(leaf, FindLeaf(root, lo));
    INV_RETURN_IF_ERROR(it.LoadLeaf(leaf, &lo));
  }
  // Skip empty leaves.
  while (it.entries_.empty() && it.next_leaf_ != kNoBlock) {
    INV_RETURN_IF_ERROR(it.LoadLeaf(it.next_leaf_, nullptr));
  }
  return it;
}

Result<uint64_t> BTree::CountEntries() const {
  INV_ASSIGN_OR_RETURN(Iterator it, Seek({}));
  uint64_t count = 0;
  while (it.Valid()) {
    ++count;
    INV_RETURN_IF_ERROR(it.Advance());
  }
  return count;
}

Status BTree::CheckInvariants() const {
  MutexLock lock(mu_);
  INV_ASSIGN_OR_RETURN(uint32_t root, RootBlock());
  // Recursive bound check; collect leaf depth.
  int leaf_depth = -1;
  // (block, depth, lower bound exclusive-or-inclusive simplification: keys
  // must be >= lower and < upper when bounds present)
  struct Item {
    uint32_t block;
    int depth;
    std::optional<BtreeKey> lower;
    std::optional<BtreeKey> upper;
  };
  std::vector<Item> stack{{root, 0, std::nullopt, std::nullopt}};
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    INV_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(rel_, item.block));
    NodeView view{ref.data()};
    std::vector<Entry> entries = view.Decode();
    for (size_t i = 1; i < entries.size(); ++i) {
      if (CompareKeys(entries[i - 1].key, entries[i].key) > 0) {
        return Status::Corruption("btree node keys out of order");
      }
    }
    for (const Entry& e : entries) {
      if (item.lower && CompareKeys(e.key, *item.lower) < 0) {
        return Status::Corruption("btree key below lower bound");
      }
      if (item.upper && CompareKeys(e.key, *item.upper) >= 0) {
        return Status::Corruption("btree key above upper bound");
      }
    }
    if (view.leaf()) {
      if (leaf_depth == -1) {
        leaf_depth = item.depth;
      } else if (leaf_depth != item.depth) {
        return Status::Corruption("btree leaves at unequal depth");
      }
    } else {
      if (view.leftmost_child() == kNoBlock) {
        return Status::Corruption("internal node missing leftmost child");
      }
      std::optional<BtreeKey> prev = item.lower;
      for (size_t i = 0; i <= entries.size(); ++i) {
        const uint32_t child =
            i == 0 ? view.leftmost_child() : entries[i - 1].child;
        std::optional<BtreeKey> lo = i == 0 ? item.lower : std::optional(entries[i - 1].key);
        std::optional<BtreeKey> hi =
            i == entries.size() ? item.upper : std::optional(entries[i].key);
        stack.push_back(Item{child, item.depth + 1, std::move(lo), std::move(hi)});
      }
      (void)prev;
    }
  }
  return Status::Ok();
}

}  // namespace invfs
