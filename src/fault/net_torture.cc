#include "src/fault/net_torture.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/fault/faulty_transport.h"
#include "src/harness/worlds.h"
#include "src/net/rpc.h"
#include "src/util/random.h"

namespace invfs {
namespace {

constexpr char kRoot[] = "/nt";
constexpr uint64_t kWorkloadClientId = 11;
constexpr uint64_t kOracleClientId = 12;

std::string FileName(int i) { return std::string(kRoot) + "/f" + std::to_string(i); }

// Distinctive payloads: a duplicated append of the same chunk is content the
// oracle can see, so the fill must at least vary per (tag, position).
std::vector<std::byte> Payload(uint64_t tag, uint32_t len) {
  std::vector<std::byte> out(len);
  uint64_t x = tag | 1;
  for (uint32_t i = 0; i < len; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    out[i] = static_cast<std::byte>(x >> 33);
  }
  return out;
}

std::string PayloadStr(uint64_t tag, uint32_t len) {
  auto raw = Payload(tag, len);
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

struct PlannedOp {
  enum Kind : uint8_t { kCreate, kAppend, kOverwrite, kRename, kUnlink, kTxnBatch };
  Kind kind = kCreate;
  int a = 0;  // primary file index
  int b = 0;  // rename target / batch append target
  uint32_t len = 128;
  uint64_t tag = 0;
  uint64_t off = 0;  // overwrite offset selector
};

// Deterministic op plan over a small file-index pool. The planning model
// tracks which names exist so most ops are well-formed; runtime failures
// (fault-induced) simply make later ops fail gracefully.
std::vector<PlannedOp> MakePlan(const NetTortureOptions& opt) {
  Rng rng(opt.seed ^ 0x9E3779B97F4A7C15ULL);
  std::set<int> exists;
  auto pick_existing = [&]() {
    auto it = exists.begin();
    std::advance(it, static_cast<long>(rng.Uniform(exists.size())));
    return *it;
  };
  auto pick_absent = [&]() -> int {
    std::vector<int> absent;
    for (int i = 0; i < opt.max_files; ++i) {
      if (exists.count(i) == 0) {
        absent.push_back(i);
      }
    }
    if (absent.empty()) {
      return -1;
    }
    return absent[rng.Uniform(absent.size())];
  };
  std::vector<PlannedOp> plan;
  plan.reserve(static_cast<size_t>(opt.operations));
  for (int i = 0; i < opt.operations; ++i) {
    PlannedOp op;
    op.len = 64 + static_cast<uint32_t>(rng.Uniform(192));
    op.tag = rng.Next();
    op.off = rng.Next();
    const uint64_t roll = exists.empty() ? 0 : rng.Uniform(10);
    const int absent = pick_absent();
    if (exists.empty() || (roll <= 1 && absent >= 0)) {
      op.kind = PlannedOp::kCreate;
      op.a = absent;
      exists.insert(op.a);
    } else if (roll <= 4 || (roll <= 1 && absent < 0)) {
      op.kind = PlannedOp::kAppend;
      op.a = pick_existing();
    } else if (roll == 5) {
      op.kind = PlannedOp::kOverwrite;
      op.a = pick_existing();
    } else if (roll == 6 && absent >= 0) {
      op.kind = PlannedOp::kRename;
      op.a = pick_existing();
      op.b = absent;
      exists.erase(op.a);
      exists.insert(op.b);
    } else if (roll == 7 && exists.size() > 1) {
      op.kind = PlannedOp::kUnlink;
      op.a = pick_existing();
      exists.erase(op.a);
    } else if (absent >= 0) {
      op.kind = PlannedOp::kTxnBatch;
      op.a = absent;
      op.b = pick_existing();
      exists.insert(op.a);
    } else {
      op.kind = PlannedOp::kAppend;
      op.a = pick_existing();
    }
    plan.push_back(op);
  }
  return plan;
}

// Executes the plan through one retrying client, maintaining the acked-state
// mirror: a mutation enters the mirror exactly when the client sees its call
// (or, for transaction batches, the commit) acked.
class NetWorkload {
 public:
  explicit NetWorkload(RemoteFileClient* client) : c_(client) {}

  void Run(const std::vector<PlannedOp>& plan) {
    for (const PlannedOp& op : plan) {
      const Status st = RunOne(op);
      if (st.ok()) {
        ++acked_;
      } else {
        ++failed_;
      }
    }
  }

  const std::map<std::string, std::string>& mirror() const { return mirror_; }
  uint64_t acked() const { return acked_; }
  uint64_t failed() const { return failed_; }

 private:
  Status RunOne(const PlannedOp& op) {
    switch (op.kind) {
      case PlannedOp::kCreate:
        return DoCreate(FileName(op.a), op.tag, op.len);
      case PlannedOp::kAppend:
        return DoAppend(FileName(op.a), op.tag, op.len);
      case PlannedOp::kOverwrite:
        return DoOverwrite(FileName(op.a), op.tag, op.len, op.off);
      case PlannedOp::kRename: {
        const std::string from = FileName(op.a);
        const std::string to = FileName(op.b);
        INV_RETURN_IF_ERROR(c_->rename(from, to));
        auto it = mirror_.find(from);
        if (it != mirror_.end()) {
          mirror_[to] = std::move(it->second);
          mirror_.erase(it);
        }
        return Status::Ok();
      }
      case PlannedOp::kUnlink: {
        const std::string path = FileName(op.a);
        INV_RETURN_IF_ERROR(c_->unlink(path));
        mirror_.erase(path);
        return Status::Ok();
      }
      case PlannedOp::kTxnBatch:
        return DoTxnBatch(op);
    }
    return Status::Internal("unreachable plan kind");
  }

  Status DoCreate(const std::string& path, uint64_t tag, uint32_t len) {
    INV_ASSIGN_OR_RETURN(int fd, c_->p_creat(path));
    mirror_[path];  // creat acked: the (empty) file exists
    auto n = c_->p_write(fd, Payload(tag, len));
    if (n.ok()) {
      mirror_[path] += PayloadStr(tag, len);
    }
    const Status close = c_->p_close(fd);
    INV_RETURN_IF_ERROR(n.status());
    return close;
  }

  Status DoAppend(const std::string& path, uint64_t tag, uint32_t len) {
    INV_ASSIGN_OR_RETURN(int fd, c_->p_open(path, OpenMode::kWrite));
    auto end = c_->p_lseek(fd, 0, Whence::kEnd);
    if (!end.ok()) {
      (void)c_->p_close(fd);
      return end.status();
    }
    auto n = c_->p_write(fd, Payload(tag, len));
    if (n.ok()) {
      mirror_[path] += PayloadStr(tag, len);
    }
    const Status close = c_->p_close(fd);
    INV_RETURN_IF_ERROR(n.status());
    return close;
  }

  Status DoOverwrite(const std::string& path, uint64_t tag, uint32_t len,
                     uint64_t off_sel) {
    auto it = mirror_.find(path);
    const uint64_t off =
        it == mirror_.end() ? 0 : off_sel % (it->second.size() + 1);
    INV_ASSIGN_OR_RETURN(int fd, c_->p_open(path, OpenMode::kWrite));
    auto pos = c_->p_lseek(fd, static_cast<int64_t>(off), Whence::kSet);
    if (!pos.ok()) {
      (void)c_->p_close(fd);
      return pos.status();
    }
    auto n = c_->p_write(fd, Payload(tag, len));
    if (n.ok() && it != mirror_.end()) {
      std::string& content = it->second;
      const std::string chunk = PayloadStr(tag, len);
      if (content.size() < off + chunk.size()) {
        content.resize(off + chunk.size());
      }
      content.replace(off, chunk.size(), chunk);
    }
    const Status close = c_->p_close(fd);
    INV_RETURN_IF_ERROR(n.status());
    return close;
  }

  Status DoTxnBatch(const PlannedOp& op) {
    // All-or-nothing: effects enter the mirror only when the commit acks.
    INV_RETURN_IF_ERROR(c_->p_begin());
    std::map<std::string, std::string> staged = mirror_;
    const Status body = [&]() -> Status {
      const std::string fresh = FileName(op.a);
      INV_ASSIGN_OR_RETURN(int fd, c_->p_creat(fresh));
      staged[fresh];
      INV_ASSIGN_OR_RETURN(int64_t n, c_->p_write(fd, Payload(op.tag, op.len)));
      (void)n;
      staged[fresh] += PayloadStr(op.tag, op.len);
      INV_RETURN_IF_ERROR(c_->p_close(fd));
      const std::string target = FileName(op.b);
      INV_ASSIGN_OR_RETURN(int fd2, c_->p_open(target, OpenMode::kWrite));
      INV_ASSIGN_OR_RETURN(int64_t end, c_->p_lseek(fd2, 0, Whence::kEnd));
      (void)end;
      INV_ASSIGN_OR_RETURN(int64_t n2,
                           c_->p_write(fd2, Payload(op.tag + 1, op.len)));
      (void)n2;
      staged[target] += PayloadStr(op.tag + 1, op.len);
      return c_->p_close(fd2);
    }();
    if (!body.ok()) {
      (void)c_->p_abort();
      return body;
    }
    const Status commit = c_->p_commit();
    if (commit.ok()) {
      mirror_ = std::move(staged);
    } else {
      (void)c_->p_abort();
    }
    return commit;
  }

  RemoteFileClient* c_;
  std::map<std::string, std::string> mirror_;
  uint64_t acked_ = 0;
  uint64_t failed_ = 0;
};

// One world per run: the full client/server stack with the faulty wire in
// the middle.
struct NetRun {
  std::unique_ptr<InversionWorld> world;
  std::unique_ptr<InversionServer> server;
  std::unique_ptr<NetModel> net;
  std::unique_ptr<LoopbackTransport> loop;
  std::unique_ptr<FaultyTransport> wire;
  std::unique_ptr<RemoteFileClient> client;
};

Result<NetRun> OpenRun(const NetTortureOptions& opt) {
  NetRun run;
  INV_ASSIGN_OR_RETURN(run.world, InversionWorld::Create());
  run.server = std::make_unique<InversionServer>(&run.world->fs());
  run.net = std::make_unique<NetModel>(&run.world->clock(), NetParams{});
  run.loop = std::make_unique<LoopbackTransport>(run.server.get(), run.net.get());
  run.wire = std::make_unique<FaultyTransport>(run.loop.get(),
                                               &run.world->clock(), opt.seed,
                                               &run.world->db().metrics());
  RpcClientOptions copts;
  copts.client_id = kWorkloadClientId;
  copts.clock = &run.world->clock();
  copts.metrics = &run.world->db().metrics();
  run.client = std::make_unique<RemoteFileClient>(run.wire.get(), copts);
  INV_RETURN_IF_ERROR(run.client->mkdir(kRoot));
  return run;
}

// The oracle: through a *fresh* client on the unfaulted wire, the namespace
// and every byte of every file must equal the acked-state mirror, and the
// engine must be quiescent (no orphaned transactions or locks).
Status VerifyOracle(NetRun& run, const std::map<std::string, std::string>& mirror) {
  RpcClientOptions copts;
  copts.client_id = kOracleClientId;
  copts.clock = &run.world->clock();
  RemoteFileClient check(run.loop.get(), copts);
  INV_ASSIGN_OR_RETURN(auto entries, check.readdir(kRoot));
  std::set<std::string> actual;
  for (const DirEntry& e : entries) {
    actual.insert(std::string(kRoot) + "/" + e.name);
  }
  std::set<std::string> expected;
  for (const auto& [path, content] : mirror) {
    expected.insert(path);
  }
  if (actual != expected) {
    std::string diff = "namespace mismatch; actual={";
    for (const std::string& p : actual) {
      diff += p + ",";
    }
    diff += "} expected={";
    for (const std::string& p : expected) {
      diff += p + ",";
    }
    diff += "}";
    return Status::Corruption(diff);
  }
  for (const auto& [path, content] : mirror) {
    INV_ASSIGN_OR_RETURN(int fd, check.p_open(path, OpenMode::kRead));
    std::vector<std::byte> buf(content.size() + 256);
    auto n = check.p_read(fd, buf);
    const Status close = check.p_close(fd);
    INV_RETURN_IF_ERROR(n.status());
    INV_RETURN_IF_ERROR(close);
    if (static_cast<size_t>(*n) != content.size() ||
        std::memcmp(buf.data(), content.data(), content.size()) != 0) {
      return Status::Corruption(
          path + ": content mismatch (actual " + std::to_string(*n) +
          " bytes, acked mirror " + std::to_string(content.size()) +
          " bytes) — an acked op is missing or applied twice");
    }
  }
  const size_t locked = run.world->db().locks().NumLockedRelations();
  if (locked != 0) {
    return Status::Corruption("orphaned locks: " + std::to_string(locked) +
                              " relations still locked after quiesce");
  }
  const size_t active = run.world->db().txns().ActiveTxnCount();
  if (active != 0) {
    return Status::Corruption("orphaned transactions: " +
                              std::to_string(active) + " still active");
  }
  return Status::Ok();
}

}  // namespace

std::string NetTortureReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "net torture: %llu schedules, %llu faults fired, %llu not "
                "reached, %llu exchanges recorded, %llu retries, "
                "%llu acked / %llu failed ops, %zu failures -> %s",
                static_cast<unsigned long long>(schedules),
                static_cast<unsigned long long>(faults_fired),
                static_cast<unsigned long long>(not_reached),
                static_cast<unsigned long long>(recorded_exchanges),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(acked_ops),
                static_cast<unsigned long long>(failed_ops),
                failures.size(), ok() ? "PASS" : "FAIL");
  return buf;
}

Result<NetTortureReport> RunNetTorture(const NetTortureOptions& options) {
  NetTortureReport report;
  const std::vector<PlannedOp> plan = MakePlan(options);

  // Recording pass: unfaulted, counts exchanges, and proves the mirror model
  // itself (a modeling bug here would indict every schedule).
  {
    INV_ASSIGN_OR_RETURN(NetRun run, OpenRun(options));
    const uint64_t before = run.wire->total_exchanges();
    NetWorkload workload(run.client.get());
    workload.Run(plan);
    report.recorded_exchanges = run.wire->total_exchanges() - before;
    if (workload.failed() != 0) {
      return Status::Internal("recording pass had " +
                              std::to_string(workload.failed()) +
                              " failed ops on an unfaulted wire");
    }
    Status oracle = VerifyOracle(run, workload.mirror());
    if (!oracle.ok()) {
      return Status::Internal("recording pass oracle: " + oracle.message());
    }
  }
  if (report.recorded_exchanges == 0) {
    return Status::Internal("recording pass made no rpc exchanges");
  }

  static constexpr NetFaultSpec::Kind kKinds[] = {
      NetFaultSpec::Kind::kDropRequest, NetFaultSpec::Kind::kDropResponse,
      NetFaultSpec::Kind::kDuplicateRequest,
      NetFaultSpec::Kind::kTruncateResponse, NetFaultSpec::Kind::kReset,
  };
  // Occurrence positions spread evenly over the recorded exchange count.
  std::vector<uint64_t> positions;
  const uint64_t n =
      std::min<uint64_t>(options.schedules_per_kind, report.recorded_exchanges);
  for (uint64_t j = 0; j < n; ++j) {
    const uint64_t pos = 1 + (j * report.recorded_exchanges) / n;
    if (positions.empty() || positions.back() != pos) {
      positions.push_back(pos);
    }
  }

  for (const NetFaultSpec::Kind kind : kKinds) {
    for (const uint64_t pos : positions) {
      const std::string name =
          std::string(NetFaultKindName(kind)) + "@" + std::to_string(pos);
      ++report.schedules;
      INV_ASSIGN_OR_RETURN(NetRun run, OpenRun(options));
      NetFaultSpec spec;
      spec.kind = kind;
      spec.at = pos;
      run.wire->ArmOne(spec);
      NetWorkload workload(run.client.get());
      workload.Run(plan);
      run.wire->Disarm();
      report.acked_ops += workload.acked();
      report.failed_ops += workload.failed();
      report.retries += run.client->retries();
      if (run.wire->faults_fired() == 0) {
        ++report.not_reached;
        continue;
      }
      ++report.faults_fired;
      const Status oracle = VerifyOracle(run, workload.mirror());
      if (!oracle.ok()) {
        report.failures.push_back(name + ": " + oracle.message());
      }
      if (options.verbose) {
        std::printf("net schedule %-24s acked=%llu failed=%llu retries=%llu %s\n",
                    name.c_str(),
                    static_cast<unsigned long long>(workload.acked()),
                    static_cast<unsigned long long>(workload.failed()),
                    static_cast<unsigned long long>(run.client->retries()),
                    oracle.ok() ? "ok" : oracle.message().c_str());
      }
    }
  }
  return report;
}

}  // namespace invfs
