// invfs_torture: crash-point and device-write crash-schedule torture sweep.
//
// Usage: invfs_torture [--seed N] [--txns N] [--files N] [--buffers N]
//                      [--occurrences N] [--write-schedules N]
//                      [--no-points] [--no-write-sweep] [--quick]
//                      [--under-load] [--net-faults] [--net-schedules N]
//                      [--verbose]
//
// --under-load interleaves the open-loop multi-tenant load driver (the
// builtin mail/analytics/audit/archive mix under /load) between torture
// transactions in every pass, proving recovery correctness with foreign
// tenant traffic sharing the engine.
//
// --net-faults switches to the network fault-domain sweep (see
// src/fault/net_torture.h): a (fault kind x occurrence position) schedule
// matrix over the at-most-once RPC stack — request/response drops, duplicate
// deliveries, truncated replies, and connection resets injected under a
// retrying client, with the acked-visible / never-acked-invisible oracle and
// a no-orphaned-locks/transactions quiescence check after every schedule.
// --seed, --txns (operations), --files, and --verbose carry over;
// --net-schedules bounds the occurrence positions per fault kind.
//
// Runs the deterministic torture sweep (see src/fault/torture.h): a recording
// pass discovers every crash point the workload exercises, then each
// (point, occurrence) pair and a sweep of Nth-device-write halts are replayed
// with the process image frozen at the boundary, the image reopened,
// recovered, structurally verified, and checked against the commit-ack
// oracle. Exit status: 0 sweep passed, 1 verification failures, 2 error.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/fault/net_torture.h"
#include "src/fault/torture.h"

namespace {

int RunNetMode(const invfs::NetTortureOptions& opt) {
  auto report = invfs::RunNetTorture(opt);
  if (!report.ok()) {
    std::fprintf(stderr, "invfs_torture: %s\n",
                 report.status().message().c_str());
    return 2;
  }
  for (const std::string& line : report->failures) {
    std::printf("net failure: %s\n", line.c_str());
  }
  std::printf("%s\n", report->Summary().c_str());
  return report->ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  invfs::TortureOptions opt;
  invfs::NetTortureOptions net_opt;
  bool net_mode = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "invfs_torture: %s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(next(), nullptr, 0);
      net_opt.seed = opt.seed;
    } else if (std::strcmp(a, "--txns") == 0) {
      opt.transactions = std::atoi(next());
      net_opt.operations = opt.transactions;
    } else if (std::strcmp(a, "--files") == 0) {
      opt.max_files = std::atoi(next());
      net_opt.max_files = opt.max_files;
    } else if (std::strcmp(a, "--buffers") == 0) {
      opt.buffers = static_cast<size_t>(std::atoi(next()));
    } else if (std::strcmp(a, "--occurrences") == 0) {
      opt.occurrences_per_point = std::strtoull(next(), nullptr, 0);
    } else if (std::strcmp(a, "--write-schedules") == 0) {
      opt.write_sweep_schedules = std::strtoull(next(), nullptr, 0);
    } else if (std::strcmp(a, "--net-faults") == 0) {
      net_mode = true;
    } else if (std::strcmp(a, "--net-schedules") == 0) {
      net_opt.schedules_per_kind = std::strtoull(next(), nullptr, 0);
    } else if (std::strcmp(a, "--no-points") == 0) {
      opt.run_crash_points = false;
    } else if (std::strcmp(a, "--no-write-sweep") == 0) {
      opt.run_write_sweep = false;
    } else if (std::strcmp(a, "--quick") == 0) {
      opt.transactions = 10;
      opt.occurrences_per_point = 2;
      opt.write_sweep_schedules = 12;
      net_opt.operations = 20;
      net_opt.schedules_per_kind = 6;
    } else if (std::strcmp(a, "--under-load") == 0) {
      opt.under_load = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      opt.verbose = true;
      net_opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: invfs_torture [--seed N] [--txns N] [--files N] "
                   "[--buffers N] [--occurrences N] [--write-schedules N] "
                   "[--no-points] [--no-write-sweep] [--quick] [--under-load] "
                   "[--net-faults] [--net-schedules N] [--verbose]\n");
      return 2;
    }
  }

  if (net_mode) {
    return RunNetMode(net_opt);
  }

  auto report = invfs::RunTorture(opt);
  if (!report.ok()) {
    std::fprintf(stderr, "invfs_torture: %s\n",
                 report.status().message().c_str());
    return 2;
  }
  for (const std::string& line : report->crash_points) {
    std::printf("crash point: %s\n", line.c_str());
  }
  std::printf("%s\n", report->Summary().c_str());
  return report->ok() ? 0 : 1;
}
