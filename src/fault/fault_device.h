// FaultDevice: a deterministic fault-injecting DeviceManager decorator.
//
// Registered through the existing device switch (stacked under
// InstrumentedDevice and the retry/read-only ErrorPolicyDevice), it lets a
// test or the torture driver schedule, against a seeded Rng:
//
//   * transient errors  — the Nth read/write fails with kTransientIo; the
//     same operation succeeds if retried (exercises the backoff policy);
//   * permanent errors  — the Nth read/write fails with kIoError every time
//     (exercises the sticky read-only degradation);
//   * torn writes       — only a prefix or an arbitrary seeded subset of the
//     8 KB page's 512-byte sectors is persisted; the write *reports success*
//     (a lying disk; detection is the page CRC's job at read time);
//   * bit flips         — the page is persisted with one bit flipped, again
//     reporting success;
//   * crash halts       — the Nth write never reaches the store and every
//     subsequent operation through any FaultDevice sharing the injector
//     fails ("halted at crash point"): the block stores are frozen at the
//     exact image a power failure would have left.
//
// One FaultInjector is shared by all FaultDevices of a StorageEnv, so
// operation counts are global across devices and a schedule like "crash at
// device write #37" is meaningful for the whole stack. Counters restart at
// every Arm call, which lets the driver set up a world (bootstrap traffic
// uncounted) and then arm relative to the workload's own I/O.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/device/device.h"
#include "src/util/mutex.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace invfs {

// One scheduled fault. `at` is 1-based and counts matching operations
// (reads or writes, per `op`) arriving at any FaultDevice of the injector
// since the last Arm call.
struct FaultSpec {
  enum class Kind : uint8_t {
    kTransientError,  // fail with kTransientIo; retry succeeds
    kPermanentError,  // fail with kIoError; every retry fails too
    kTornWrite,       // persist a sector subset of the page, report success
    kBitFlip,         // persist with one flipped bit, report success
    kCrash,           // halt the simulated process image at this write
  };
  enum class Op : uint8_t { kRead, kWrite };

  Kind kind = Kind::kTransientError;
  Op op = Op::kWrite;
  uint64_t at = 1;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : rng_(seed) {}

  // Replace the armed schedule and restart the relative op counters.
  void Arm(std::vector<FaultSpec> specs);
  void ArmOne(FaultSpec spec) { Arm(std::vector<FaultSpec>{spec}); }
  // Clear the schedule (counters keep running; totals remain readable).
  void Disarm();

  // Halt now: every later operation through any attached FaultDevice fails.
  // Crash points call this from their armed callback; kCrash specs call it
  // internally.
  void Crash();
  bool crashed() const {
    return (flags_.load(std::memory_order_acquire) & kCrashedFlag) != 0;
  }

  // Total operations observed since construction (not reset by Arm).
  uint64_t total_reads() const;
  uint64_t total_writes() const;
  // Operations observed since the last Arm call.
  uint64_t reads_since_arm() const;
  uint64_t writes_since_arm() const;
  // Faults delivered (errors returned + silent corruptions applied).
  uint64_t faults_fired() const;

 private:
  friend class FaultDevice;

  // Decide the fate of the next read/write. Returns the action FaultDevice
  // must take; for corruption kinds, fills `spec_out`.
  enum class Action : uint8_t { kPass, kFailTransient, kFailPermanent,
                                kCorrupt, kHalt };
  // Unarmed fast path: armed and crashed state share one atomic flags word,
  // so when nothing is scheduled the whole decision is a single acquire load
  // plus a lossy stat bump — neither mu_ nor a locked read-modify-write is
  // touched on the production-shaped path (bench_pr5 gates the stack's
  // unarmed overhead). kHalt subsumes the old separate crashed() pre-check
  // in the block paths. No out-parameter: a kCorrupt verdict parks its spec
  // under mu_ for TakeCorruptSpec, keeping the fast path free of an escaped
  // stack local.
  Action OnOp(FaultSpec::Op op) EXCLUDES(mu_) {
    const uint8_t flags = flags_.load(std::memory_order_acquire);
    if (flags == 0) [[likely]] {
      BumpStat(op == FaultSpec::Op::kRead ? reads_ : writes_);
      return Action::kPass;
    }
    if ((flags & kCrashedFlag) != 0) {
      return Action::kHalt;
    }
    return OnOpArmed(op);
  }
  // Fetch the spec parked by the kCorrupt verdict just returned to this
  // caller. mu_ is fine here: corruption delivery is the cold path.
  FaultSpec TakeCorruptSpec() EXCLUDES(mu_);
  // Stat totals are deliberately a plain load+store, not fetch_add: an
  // uncontended locked RMW costs an order of magnitude more than the rest of
  // the fast path combined, and the totals are reporting-only (concurrent
  // unarmed bumps may drop a count). Fault *positioning* never relies on
  // them: while any spec is unconsumed the armed flag routes every operation
  // through OnOpArmed, whose position counters live under mu_ and are exact.
  static void BumpStat(std::atomic<uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  Action OnOpArmed(FaultSpec::Op op) EXCLUDES(mu_);
  // Produce the corrupted image for a torn or bit-flipped write. `old_page`
  // is the pre-write content (zero-filled when the write extends).
  std::vector<std::byte> CorruptImage(const FaultSpec& spec,
                                      std::span<const std::byte> data,
                                      std::span<const std::byte> old_page)
      EXCLUDES(mu_);

  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  std::vector<FaultSpec> specs_ GUARDED_BY(mu_);
  std::vector<bool> consumed_ GUARDED_BY(mu_);
  // Stat totals (lossy under concurrency, see BumpStat); atomics so the
  // unarmed fast path can bump them without mu_.
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  // Exact 1-based positions of operations since the last Arm call, counted
  // only while armed (the armed flag routes every op through OnOpArmed, so
  // no op escapes the count until the schedule is spent). Spec matching uses
  // these, never the lossy totals.
  uint64_t pos_reads_ GUARDED_BY(mu_) = 0;
  uint64_t pos_writes_ GUARDED_BY(mu_) = 0;
  uint64_t arm_base_reads_ GUARDED_BY(mu_) = 0;
  uint64_t arm_base_writes_ GUARDED_BY(mu_) = 0;
  uint64_t faults_fired_ GUARDED_BY(mu_) = 0;
  // Spec of the most recent kCorrupt verdict, awaiting TakeCorruptSpec.
  FaultSpec pending_corrupt_ GUARDED_BY(mu_);
  // kArmedFlag is set while any unconsumed spec remains armed (cleared by
  // Disarm and by OnOpArmed once the last spec fires); kCrashedFlag is sticky
  // once a halt triggers.
  static constexpr uint8_t kArmedFlag = 1;
  static constexpr uint8_t kCrashedFlag = 2;
  std::atomic<uint8_t> flags_{0};
};

class FaultDevice final : public DeviceManager {
 public:
  // Wraps `inner`; faults and the halt state come from `injector`
  // (caller-owned, shared across the env's devices).
  FaultDevice(std::unique_ptr<DeviceManager> inner, FaultInjector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  std::string_view name() const override { return inner_->name(); }

  Status CreateRelation(Oid rel) override;
  Status DropRelation(Oid rel) override;
  bool RelationExists(Oid rel) const override {
    return inner_->RelationExists(rel);
  }
  Result<uint32_t> NumBlocks(Oid rel) const override {
    return inner_->NumBlocks(rel);
  }

  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override;
  Status WriteBlock(Oid rel, uint32_t block,
                    std::span<const std::byte> data) override;
  Status Sync() override;

  DeviceManager* Underlying() override { return inner_->Underlying(); }

 private:
  Status HaltedError() const;

  std::unique_ptr<DeviceManager> inner_;
  FaultInjector* injector_;
};

}  // namespace invfs
