#include "src/fault/faulty_transport.h"

#include <algorithm>

namespace invfs {

namespace {

// Sim cost of learning the connection died: one failed delivery attempt's
// worth of protocol processing, far below any sane timeout.
constexpr SimMicros kResetLatencyMicros = 1000;

}  // namespace

const char* NetFaultKindName(NetFaultSpec::Kind kind) {
  switch (kind) {
    case NetFaultSpec::Kind::kDropRequest:
      return "drop_request";
    case NetFaultSpec::Kind::kDropResponse:
      return "drop_response";
    case NetFaultSpec::Kind::kDuplicateRequest:
      return "duplicate_request";
    case NetFaultSpec::Kind::kTruncateResponse:
      return "truncate_response";
    case NetFaultSpec::Kind::kReset:
      return "reset";
    case NetFaultSpec::Kind::kDelay:
      return "delay";
  }
  return "unknown";
}

FaultyTransport::FaultyTransport(Transport* inner, SimClock* clock,
                                 uint64_t seed, MetricsRegistry* metrics)
    : inner_(inner), clock_(clock), rng_(seed) {
  if (metrics != nullptr) {
    injected_ = metrics->GetCounter("rpc.net.faults_injected");
  }
}

void FaultyTransport::Arm(std::vector<NetFaultSpec> specs) {
  MutexLock lock(mu_);
  specs_ = std::move(specs);
  consumed_.assign(specs_.size(), false);
  rates_armed_ = false;
  arm_base_ = exchanges_;
}

void FaultyTransport::ArmRates(NetFaultRates rates) {
  MutexLock lock(mu_);
  specs_.clear();
  consumed_.clear();
  rates_ = rates;
  rates_armed_ = rates.any();
  arm_base_ = exchanges_;
}

void FaultyTransport::Disarm() {
  MutexLock lock(mu_);
  specs_.clear();
  consumed_.clear();
  rates_armed_ = false;
}

uint64_t FaultyTransport::total_exchanges() const {
  MutexLock lock(mu_);
  return exchanges_;
}

uint64_t FaultyTransport::exchanges_since_arm() const {
  MutexLock lock(mu_);
  return exchanges_ - arm_base_;
}

uint64_t FaultyTransport::faults_fired() const {
  MutexLock lock(mu_);
  return faults_fired_;
}

FaultyTransport::Verdict FaultyTransport::Decide() {
  MutexLock lock(mu_);
  ++exchanges_;
  const uint64_t pos = exchanges_ - arm_base_;
  Verdict v;
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (!consumed_[i] && specs_[i].at == pos) {
      consumed_[i] = true;
      ++faults_fired_;
      v.faulted = true;
      v.spec = specs_[i];
      return v;
    }
  }
  if (rates_armed_) {
    auto draw = [&](double p, NetFaultSpec::Kind kind) {
      if (p > 0 && rng_.NextDouble() < p) {
        v.faulted = true;
        v.spec.kind = kind;
        return true;
      }
      return false;
    };
    const bool fired = draw(rates_.drop_request, NetFaultSpec::Kind::kDropRequest) ||
                       draw(rates_.drop_response, NetFaultSpec::Kind::kDropResponse) ||
                       draw(rates_.duplicate, NetFaultSpec::Kind::kDuplicateRequest) ||
                       draw(rates_.truncate, NetFaultSpec::Kind::kTruncateResponse) ||
                       draw(rates_.reset, NetFaultSpec::Kind::kReset);
    if (fired) {
      ++faults_fired_;
    }
  }
  return v;
}

uint64_t FaultyTransport::TruncatedLength(size_t full) {
  MutexLock lock(mu_);
  // [0, full): a truncated frame is strictly shorter; empty is allowed.
  return full == 0 ? 0 : rng_.Uniform(full);
}

void FaultyTransport::ChargeTimeout(SimMicros started, SimMicros timeout_us) {
  const SimMicros deadline = started + timeout_us;
  const SimMicros now = clock_->Peek();
  if (now < deadline) {
    clock_->Advance(deadline - now);
  }
}

Result<std::vector<std::byte>> FaultyTransport::RoundTrip(
    std::span<const std::byte> request, SimMicros timeout_us) {
  const Verdict v = Decide();
  if (!v.faulted) {
    return inner_->RoundTrip(request, timeout_us);
  }
  if (injected_ != nullptr) {
    injected_->Add();
  }
  const SimMicros started = clock_->Peek();
  switch (v.spec.kind) {
    case NetFaultSpec::Kind::kDropRequest: {
      // The server never sees the frame: nothing executes, the client's
      // whole deadline elapses waiting for a reply that will never come.
      ChargeTimeout(started, timeout_us);
      return Status::TransientIo("rpc timeout (request dropped)");
    }
    case NetFaultSpec::Kind::kDropResponse: {
      // The server executes in full — this is the path that proves the
      // duplicate-request cache: the retried op was already applied.
      (void)inner_->RoundTrip(request, timeout_us);
      ChargeTimeout(started, timeout_us);
      return Status::TransientIo("rpc timeout (response dropped)");
    }
    case NetFaultSpec::Kind::kDuplicateRequest: {
      // Retransmit racing the original: both deliveries reach the server
      // back to back; the caller sees the second reply. The server's DRC
      // must make the second delivery a replay, not a re-execution.
      (void)inner_->RoundTrip(request, timeout_us);
      return inner_->RoundTrip(request, timeout_us);
    }
    case NetFaultSpec::Kind::kTruncateResponse: {
      auto response = inner_->RoundTrip(request, timeout_us);
      if (!response.ok()) {
        return response;
      }
      response->resize(TruncatedLength(response->size()));
      return response;
    }
    case NetFaultSpec::Kind::kReset: {
      clock_->Advance(kResetLatencyMicros);
      return Status::IoError("connection reset");
    }
    case NetFaultSpec::Kind::kDelay: {
      clock_->Advance(v.spec.delay_us);
      return inner_->RoundTrip(request, timeout_us);
    }
  }
  return Status::Internal("unreachable net fault kind");
}

}  // namespace invfs
