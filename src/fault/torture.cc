#include "src/fault/torture.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "src/fault/crash_points.h"
#include "src/fault/fault_device.h"
#include "src/harness/worlds.h"
#include "src/load/loadgen.h"
#include "src/util/random.h"

namespace invfs {
namespace {

// Expected file-system state: path -> full contents.
using FileState = std::map<std::string, std::string>;

struct RunOutcome {
  FileState acked;          // state covered by acked commits
  FileState with_inflight;  // acked + the crash-overlapped txn (if any)
  bool crashed = false;
  bool indeterminate = false;  // p_commit was in flight when the halt fired
  bool completed = false;      // workload finished without a halt
  std::string error;           // unexpected (non-halt) failure
};

void ApplyWrite(std::string* content, int64_t offset, const std::string& data) {
  const auto off = static_cast<size_t>(offset);
  if (off + data.size() > content->size()) {
    content->resize(off + data.size());
  }
  content->replace(off, data.size(), data);
}

std::string RandomPayload(Rng& rng, size_t len) {
  std::string s(len, '\0');
  for (char& c : s) {
    c = static_cast<char>('a' + rng.Uniform(26));
  }
  return s;
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// One deterministic workload pass. Identical op sequence for a given seed
// regardless of faults: the op stream is derived only from `rng` and the
// mirrored `pending` state, which evolve the same way until the halt.
void RunWorkload(const TortureOptions& opt, InversionWorld* world,
                 FaultInjector* injector, RunOutcome* out,
                 LoadGen* load = nullptr) {
  InvSession& s = world->session();
  Rng rng(opt.seed * 0x9E3779B9ULL + 17);
  int next_file = 0;
  const auto halted = [&] { return injector->crashed(); };

  for (int t = 0; t < opt.transactions; ++t) {
    // Under-load mode: pump foreign tenant traffic between this session's
    // transactions (never inside one — the torture transaction's locks are
    // released here, and every load op is itself transaction-complete, so
    // the interleaving is deadlock-free by construction). Never pump once
    // the halt has fired: a commit the halt interrupted died *before*
    // releasing its table locks (exactly what recovery exists to clean up),
    // so one more load op against the frozen image would block on them
    // forever.
    for (int k = 0; load != nullptr && !halted() && k < opt.load_steps_per_txn;
         ++k) {
      if (!load->Step()) {
        break;
      }
    }
    Status bs = s.p_begin();
    if (halted()) {
      // Nothing of this transaction was attempted: recovery must show
      // exactly the acked state.
      out->crashed = true;
      out->with_inflight = out->acked;
      return;
    }
    if (!bs.ok()) {
      out->error = "p_begin: " + bs.ToString();
      return;
    }
    FileState pending = out->acked;
    const int nops = 1 + static_cast<int>(rng.Uniform(3));
    for (int op = 0; op < nops; ++op) {
      std::vector<std::string> files;
      files.reserve(pending.size());
      for (const auto& [path, content] : pending) {
        files.push_back(path);
      }
      Status os = Status::Ok();
      const uint64_t dice = rng.Uniform(100);
      if (files.empty() ||
          (files.size() < static_cast<size_t>(opt.max_files) && dice < 35)) {
        // Create a fresh file with initial content.
        const std::string path = "/t" + std::to_string(next_file++) + ".dat";
        const std::string payload =
            RandomPayload(rng, 1 + rng.Uniform(9000));
        auto fd = s.p_creat(path);
        if (fd.ok()) {
          auto w = s.p_write(*fd, AsBytes(payload));
          os = w.ok() ? s.p_close(*fd) : w.status();
        } else {
          os = fd.status();
        }
        if (os.ok()) {
          pending[path] = payload;
        }
      } else if (dice < 50 && files.size() > 1) {
        const std::string path = files[rng.Uniform(files.size())];
        os = s.unlink(path);
        if (os.ok()) {
          pending.erase(path);
        }
      } else {
        // Overwrite/extend an existing file at a random offset <= size.
        const std::string path = files[rng.Uniform(files.size())];
        std::string& content = pending[path];
        const int64_t offset =
            static_cast<int64_t>(rng.Uniform(content.size() + 1));
        const std::string payload =
            RandomPayload(rng, 1 + rng.Uniform(6000));
        auto fd = s.p_open(path, OpenMode::kWrite);
        if (fd.ok()) {
          auto sk = s.p_lseek(*fd, offset, Whence::kSet);
          if (sk.ok()) {
            auto w = s.p_write(*fd, AsBytes(payload));
            os = w.ok() ? s.p_close(*fd) : w.status();
          } else {
            os = sk.status();
          }
        } else {
          os = fd.status();
        }
        if (os.ok()) {
          ApplyWrite(&content, offset, payload);
        }
      }
      if (halted()) {
        // The halt fired inside an operation, before any commit record for
        // this transaction could exist: it must be fully invisible.
        out->crashed = true;
        out->with_inflight = out->acked;
        return;
      }
      if (!os.ok()) {
        out->error = "workload op: " + os.ToString();
        return;
      }
    }
    Status cs = s.p_commit();
    if (halted()) {
      // The halt overlapped the commit protocol. Whether the commit record
      // reached the device decides the outcome; the client never saw an ack,
      // so recovery may legitimately show either state — but nothing in
      // between (atomicity).
      out->crashed = true;
      out->indeterminate = true;
      out->with_inflight = pending;
      return;
    }
    if (!cs.ok()) {
      out->error = "p_commit: " + cs.ToString();
      return;
    }
    out->acked = pending;
  }
  out->completed = true;
  out->with_inflight = out->acked;
}

// Read the recovered file system's actual state through a fresh session.
Result<FileState> ReadActualState(InversionFs* fs) {
  INV_ASSIGN_OR_RETURN(auto session, fs->NewSession());
  FileState actual;
  INV_ASSIGN_OR_RETURN(auto entries, session->readdir("/"));
  for (const DirEntry& e : entries) {
    if (e.is_directory) {
      continue;
    }
    const std::string path = "/" + e.name;
    INV_ASSIGN_OR_RETURN(int fd, session->p_open(path, OpenMode::kRead));
    INV_ASSIGN_OR_RETURN(FileStat st, session->p_fstat(fd));
    std::string content(static_cast<size_t>(st.size), '\0');
    int64_t got = 0;
    while (got < st.size) {
      std::span<std::byte> buf{
          reinterpret_cast<std::byte*>(content.data()) + got,
          static_cast<size_t>(st.size - got)};
      INV_ASSIGN_OR_RETURN(int64_t n, session->p_read(fd, buf));
      if (n <= 0) {
        break;
      }
      got += n;
    }
    if (got != st.size) {
      return Status::Corruption(path + ": read " + std::to_string(got) +
                                " of " + std::to_string(st.size) + " bytes");
    }
    INV_RETURN_IF_ERROR(session->p_close(fd));
    actual[path] = std::move(content);
  }
  return actual;
}

std::string DescribeDiff(const FileState& expect, const FileState& actual) {
  for (const auto& [path, content] : expect) {
    auto it = actual.find(path);
    if (it == actual.end()) {
      return path + " missing (expected " + std::to_string(content.size()) +
             " bytes)";
    }
    if (it->second != content) {
      return path + " content mismatch (expected " +
             std::to_string(content.size()) + " bytes, got " +
             std::to_string(it->second.size()) + ")";
    }
  }
  for (const auto& [path, content] : actual) {
    if (!expect.contains(path)) {
      return path + " present (" + std::to_string(content.size()) +
             " bytes) but should not exist";
    }
  }
  return "";
}

struct Schedule {
  std::string name;
  bool is_point = false;
  std::string point;
  uint64_t occurrence = 0;
  uint64_t write_n = 0;  // for the device-write sweep
};

WorldOptions TortureWorldOptions(const TortureOptions& opt,
                                 FaultInjector* injector) {
  WorldOptions wopt;
  wopt.db.buffers = opt.buffers;
  wopt.db.fault_injector = injector;
  return wopt;
}

LoadGenOptions TortureLoadOptions(const TortureOptions& opt) {
  LoadGenOptions lopt;
  lopt.seed = opt.seed;
  // A horizon far beyond what the sweep pumps, so the driver never runs dry
  // mid-schedule and every replay pops the identical arrival sequence.
  lopt.seconds = 600.0;
  return lopt;
}

// Run one schedule end to end; returns "" on pass, else the failure line.
std::string RunSchedule(const TortureOptions& opt, const Schedule& sched,
                        TortureReport* report) {
  FaultInjector injector(opt.seed);
  auto world_or = InversionWorld::Create(TortureWorldOptions(opt, &injector));
  if (!world_or.ok()) {
    return sched.name + ": world setup failed: " +
           world_or.status().ToString();
  }
  std::unique_ptr<InversionWorld> world = std::move(*world_or);

  // The load driver's own setup (directories, file pools, migration rule) is
  // bootstrap traffic too: run it before arming.
  std::unique_ptr<LoadGen> load;
  if (opt.under_load) {
    load = std::make_unique<LoadGen>(&world->fs(), TortureLoadOptions(opt));
    if (Status ls = load->Setup(); !ls.ok()) {
      return sched.name + ": loadgen setup failed: " + ls.ToString();
    }
  }

  // Arm *after* setup so bootstrap traffic is not part of the schedule.
  if (sched.is_point) {
    CrashPointRegistry::Instance().Arm(sched.point, sched.occurrence,
                                       [&injector] { injector.Crash(); });
    injector.Arm({});  // reset the relative op counters
  } else {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kCrash;
    spec.op = FaultSpec::Op::kWrite;
    spec.at = sched.write_n;
    injector.ArmOne(spec);
  }

  RunOutcome out;
  RunWorkload(opt, world.get(), &injector, &out, load.get());
  CrashPointRegistry::Instance().Disarm();
  if (!out.error.empty()) {
    return sched.name + ": " + out.error;
  }
  if (!out.crashed) {
    ++report->not_reached;
    return "";
  }
  ++report->crashes;
  if (out.indeterminate) {
    ++report->indeterminate;
  }

  // Freeze and snapshot the crash image.
  world->db().Crash();
  auto* disk = dynamic_cast<MemBlockStore*>(world->env().disk_store.get());
  auto* nvram = dynamic_cast<MemBlockStore*>(world->env().nvram_store.get());
  auto* jukebox = dynamic_cast<MemBlockStore*>(world->env().jukebox_store.get());
  if (disk == nullptr || nvram == nullptr || jukebox == nullptr) {
    return sched.name + ": torture requires MemBlockStore-backed worlds";
  }
  StorageEnv renv;
  renv.disk_store = disk->Clone();
  renv.nvram_store = nvram->Clone();
  renv.jukebox_store = jukebox->Clone();
  // Simulated time continues past the crash; without this, new snapshots in
  // the reopened database would predate already-committed timestamps.
  renv.clock.Advance(world->env().clock.Peek());
  load.reset();  // its sessions point into the world being destroyed
  world.reset();

  // Reopen: recovery is nothing but reading the commit log.
  auto db_or = Database::Open(&renv);
  if (!db_or.ok()) {
    return sched.name + ": recovery failed: " + db_or.status().ToString();
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  // Structural verification of the recovered image.
  auto check = CheckImage(renv);
  if (!check.ok()) {
    return sched.name + ": invfs_check errored: " + check.status().ToString();
  }
  // Provably-dead crash residue (uncataloged relations, index entries past
  // the persisted end of their heap) is what a mid-transaction crash
  // legitimately leaves for vacuum; anything else is a real failure.
  if (!check->OnlyResidue()) {
    std::string first;
    for (const Violation& v : check->violations) {
      if (!v.residue) {
        first = v.ToString();
        break;
      }
    }
    return sched.name + ": invfs_check found " +
           std::to_string(check->violations.size()) +
           " violations; first non-residue: " + first;
  }

  // Semantic oracle.
  InversionFs fs(db.get());
  if (Status ms = fs.Mount(); !ms.ok()) {
    return sched.name + ": remount failed: " + ms.ToString();
  }
  auto actual_or = ReadActualState(&fs);
  if (!actual_or.ok()) {
    return sched.name + ": reading recovered state failed: " +
           actual_or.status().ToString();
  }
  const FileState& actual = *actual_or;
  const std::string diff_acked = DescribeDiff(out.acked, actual);
  if (diff_acked.empty()) {
    return "";
  }
  if (out.indeterminate) {
    const std::string diff_inflight = DescribeDiff(out.with_inflight, actual);
    if (diff_inflight.empty()) {
      return "";  // the overlapped commit landed in full: also legal
    }
    return sched.name + ": oracle failed (matches neither side of the " +
           "in-flight commit): vs-acked: " + diff_acked +
           "; vs-committed: " + diff_inflight;
  }
  return sched.name + ": oracle failed: " + diff_acked;
}

// Evenly spread `want` occurrence indices over [1, count].
std::vector<uint64_t> SpreadOccurrences(uint64_t count, uint64_t want) {
  std::set<uint64_t> picks;
  if (count == 0 || want == 0) {
    return {};
  }
  if (want >= count) {
    for (uint64_t i = 1; i <= count; ++i) {
      picks.insert(i);
    }
  } else {
    for (uint64_t i = 0; i < want; ++i) {
      picks.insert(1 + i * (count - 1) / (want - 1 == 0 ? 1 : want - 1));
    }
  }
  return {picks.begin(), picks.end()};
}

}  // namespace

std::string TortureReport::Summary() const {
  std::string s = "torture: " + std::to_string(schedules) + " schedules, " +
                  std::to_string(crashes) + " crashes (" +
                  std::to_string(indeterminate) + " in-flight commits, " +
                  std::to_string(not_reached) + " not reached), " +
                  std::to_string(recorded_writes) + " recorded writes, " +
                  std::to_string(failures.size()) + " failures";
  if (load_ops != 0) {
    s += " [under load: " + std::to_string(load_ops) + " tenant ops/pass]";
  }
  for (const std::string& f : failures) {
    s += "\n  FAIL " + f;
  }
  return s;
}

Result<TortureReport> RunTorture(const TortureOptions& opt) {
  TortureReport report;

  // ---- recording pass ------------------------------------------------------
  std::map<std::string, uint64_t> counts;
  {
    FaultInjector injector(opt.seed);
    INV_ASSIGN_OR_RETURN(
        auto world, InversionWorld::Create(TortureWorldOptions(opt, &injector)));
    std::unique_ptr<LoadGen> load;
    if (opt.under_load) {
      load = std::make_unique<LoadGen>(&world->fs(), TortureLoadOptions(opt));
      INV_RETURN_IF_ERROR(load->Setup());
    }
    CrashPointRegistry::Instance().StartRecording();
    injector.Arm({});  // reset relative counters after bootstrap
    RunOutcome out;
    RunWorkload(opt, world.get(), &injector, &out, load.get());
    counts = CrashPointRegistry::Instance().StopRecording();
    if (!out.completed) {
      return Status::Internal("baseline torture workload failed: " + out.error);
    }
    report.recorded_writes = injector.writes_since_arm();
    if (load != nullptr) {
      const LoadGenReport lr = load->Report();
      report.load_ops = lr.ops;
      if (lr.errors != 0) {
        return Status::Internal("baseline load traffic saw " +
                                std::to_string(lr.errors) + " errors");
      }
    }
    // The baseline image must verify before any fault is armed — otherwise
    // every schedule would "fail" for reasons unrelated to crashes.
    INV_ASSIGN_OR_RETURN(auto base_check, world->VerifyImage());
    if (!base_check.ok()) {
      return Status::Internal("baseline image has violations: " +
                              base_check.violations.front().ToString());
    }
  }
  for (const auto& [point, count] : counts) {
    report.crash_points.push_back(point + " x " + std::to_string(count));
  }

  // ---- schedule enumeration ------------------------------------------------
  std::vector<Schedule> schedules;
  if (opt.run_crash_points) {
    for (const auto& [point, count] : counts) {
      for (uint64_t occ : SpreadOccurrences(count, opt.occurrences_per_point)) {
        Schedule s;
        s.name = "point:" + point + "#" + std::to_string(occ);
        s.is_point = true;
        s.point = point;
        s.occurrence = occ;
        schedules.push_back(std::move(s));
      }
    }
  }
  if (opt.run_write_sweep && report.recorded_writes > 0 &&
      opt.write_sweep_schedules > 0) {
    const uint64_t stride =
        std::max<uint64_t>(1, report.recorded_writes / opt.write_sweep_schedules);
    for (uint64_t n = 1; n <= report.recorded_writes; n += stride) {
      Schedule s;
      s.name = "write#" + std::to_string(n);
      s.write_n = n;
      schedules.push_back(std::move(s));
    }
  }

  // ---- torture -------------------------------------------------------------
  for (const Schedule& sched : schedules) {
    ++report.schedules;
    const std::string failure = RunSchedule(opt, sched, &report);
    if (opt.verbose) {
      std::printf("  %-40s %s\n", sched.name.c_str(),
                  failure.empty() ? "ok" : failure.c_str());
    }
    if (!failure.empty()) {
      report.failures.push_back(failure);
    }
  }
  return report;
}

}  // namespace invfs
