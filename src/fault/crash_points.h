// CrashPointRegistry: named crash points at the write boundaries of the
// storage stack.
//
// The paper's recovery claim ("uncommitted updates are invisible by
// construction") is a statement about every possible halt point, not about
// the handful a test happens to exercise. Crash points make the halt points
// first-class: the commit log, buffer pool, and access methods call
// CrashPointRegistry::Hit("name") immediately before the state transitions a
// crash could bisect, and the torture driver (src/fault/torture.h) enumerates
// every (point, occurrence) pair, halting the simulated process image there
// and verifying recovery.
//
// Cost when idle: one relaxed atomic load per Hit. The registry is inert
// unless a torture run arms it, so production paths pay nothing measurable
// (bench_pr5 gates this).
//
// Catalog of instrumented points (keep in sync with DESIGN.md):
//   commitlog.pre_flush   before the group-commit leader writes any log page
//   commitlog.mid_batch   between two log-page writes of one flush batch
//   commitlog.post_flush  after all log pages landed, before followers ack
//   buffer.write_back     before a dirty page is written to its device
//   buffer.eviction       before a dirty clock-sweep victim is written back
//   heap.insert           before a heap tuple insert mutates its page
//   btree.split           before a leaf split allocates the right sibling

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "src/util/mutex.h"

namespace invfs {

class CrashPointRegistry {
 public:
  static CrashPointRegistry& Instance();

  // Called by instrumented sites. Free (one relaxed load) when the registry
  // is neither recording nor armed.
  static void Hit(std::string_view point) {
    CrashPointRegistry& r = Instance();
    if (r.active_.load(std::memory_order_relaxed)) {
      r.HitSlow(point);
    }
  }

  // Recording mode: count hits per point (the torture driver's first pass
  // discovers how often each point fires under a given workload).
  void StartRecording();
  // Stop recording and return hits per point since StartRecording.
  std::map<std::string, uint64_t> StopRecording();

  // Arm one crash: the `occurrence`-th (1-based) subsequent hit of `point`
  // runs `on_crash` exactly once. Replaces any previous arming and resets the
  // fired flag. The callback runs at the hit site (typically it halts a
  // FaultInjector); it must not re-enter the registry.
  void Arm(std::string point, uint64_t occurrence, std::function<void()> on_crash);
  // Disarm and stop recording. Safe to call at any time.
  void Disarm();

  // True once the armed callback has run.
  bool fired() const;

 private:
  CrashPointRegistry() = default;
  void HitSlow(std::string_view point) EXCLUDES(mu_);
  void UpdateActiveLocked() REQUIRES(mu_);

  std::atomic<bool> active_{false};
  mutable Mutex mu_;
  bool recording_ GUARDED_BY(mu_) = false;
  std::map<std::string, uint64_t> counts_ GUARDED_BY(mu_);
  std::string armed_point_ GUARDED_BY(mu_);
  uint64_t armed_occurrence_ GUARDED_BY(mu_) = 0;
  uint64_t armed_hits_ GUARDED_BY(mu_) = 0;
  std::function<void()> on_crash_ GUARDED_BY(mu_);
  bool fired_ GUARDED_BY(mu_) = false;
};

}  // namespace invfs
