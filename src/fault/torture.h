// Crash-recovery torture driver.
//
// The paper claims file-system recovery is "essentially instantaneous" and
// needs no fsck because uncommitted updates are invisible by construction.
// This driver turns the claim into an enumerated proof obligation:
//
//   1. Recording pass: run a deterministic mixed workload (creates, strided
//      overwrites, appends, unlinks — all through InvSession transactions)
//      against a fresh InversionWorld with the CrashPointRegistry counting
//      how often every named crash point fires, and the FaultInjector
//      counting device writes.
//   2. Schedule enumeration: every (crash point, occurrence) pair — with
//      occurrences spread evenly across the recorded hit count — plus a
//      sweep of "halt at the Nth device write" schedules stepped to fit the
//      budget.
//   3. For each schedule: replay the identical workload in a fresh world,
//      halt the simulated process image at the scheduled boundary (the
//      FaultInjector freezes the block stores), snapshot the frozen image,
//      reopen it (Database::Open *is* recovery), run the offline structural
//      verifier, and check the semantic oracle: every transaction acked as
//      committed is fully visible with its exact contents, every
//      never-acked transaction is fully invisible, and the single
//      transaction whose commit overlapped the crash is all-or-nothing.
//
// All randomness flows from TortureOptions::seed, so a failing schedule
// replays exactly (same workload, same fault, same image).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace invfs {

struct TortureOptions {
  uint64_t seed = 0xC0FFEE;
  // Transactions per workload run (1-3 file operations each).
  int transactions = 24;
  int max_files = 8;
  // Buffer-pool frames for the torture worlds: small enough that evictions
  // (and therefore the buffer.eviction crash point) actually fire.
  size_t buffers = 48;
  // Crash-point schedules: at most this many occurrences per point, spread
  // evenly across the recorded hit count.
  uint64_t occurrences_per_point = 4;
  // Device-write sweep: crash before the Nth write, N stepped so at most
  // this many schedules run.
  uint64_t write_sweep_schedules = 48;
  bool run_crash_points = true;
  bool run_write_sweep = true;
  // Interleave open-loop multi-tenant load (src/load/loadgen.h, the builtin
  // profile mix under /load) between torture transactions, in the recording
  // pass and in every schedule replay alike — so crash/recovery correctness
  // is proven while mail deliveries, analytics scans, historical audits and
  // archive migrations share the engine. The oracle still judges only the
  // torture files in /; the load namespace is exempt (it is not part of the
  // acked-state contract), but the structural verifier covers the whole
  // image, load tables included.
  bool under_load = false;
  // Load-driver arrivals pumped between consecutive torture transactions.
  int load_steps_per_txn = 2;
  bool verbose = false;  // one line per schedule to stdout
};

struct TortureReport {
  uint64_t schedules = 0;      // schedules enumerated and run
  uint64_t crashes = 0;        // schedules whose halt actually fired
  uint64_t not_reached = 0;    // armed point never hit (workload completed)
  uint64_t indeterminate = 0;  // crash overlapped an in-flight commit
  uint64_t recorded_writes = 0;   // device writes in the recording pass
  uint64_t load_ops = 0;          // loadgen arrivals in the recording pass
  std::vector<std::string> crash_points;  // recorded "point x count" lines
  std::vector<std::string> failures;      // empty == the sweep passed

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

// Run the full torture sweep. Non-OK only on environmental errors (the
// baseline workload itself failing); verification failures land in
// TortureReport::failures.
Result<TortureReport> RunTorture(const TortureOptions& options);

}  // namespace invfs
