#include "src/fault/fault_device.h"

#include <algorithm>
#include <cstring>

namespace invfs {

namespace {
// Torn writes are modeled at 512-byte sector granularity: a power failure
// mid-write leaves some sectors new, some old (disks reorder sectors within a
// page write; only individual sectors are atomic).
constexpr size_t kSectorSize = 512;
constexpr size_t kSectorsPerPage = kPageSize / kSectorSize;
}  // namespace

void FaultInjector::Arm(std::vector<FaultSpec> specs) {
  MutexLock lock(mu_);
  specs_ = std::move(specs);
  consumed_.assign(specs_.size(), false);
  pos_reads_ = 0;
  pos_writes_ = 0;
  arm_base_reads_ = reads_.load(std::memory_order_relaxed);
  arm_base_writes_ = writes_.load(std::memory_order_relaxed);
  if (specs_.empty()) {
    flags_.fetch_and(static_cast<uint8_t>(~kArmedFlag),
                     std::memory_order_release);
  } else {
    flags_.fetch_or(kArmedFlag, std::memory_order_release);
  }
}

void FaultInjector::Disarm() {
  MutexLock lock(mu_);
  specs_.clear();
  consumed_.clear();
  flags_.fetch_and(static_cast<uint8_t>(~kArmedFlag),
                   std::memory_order_release);
}

void FaultInjector::Crash() {
  flags_.fetch_or(kCrashedFlag, std::memory_order_release);
}

uint64_t FaultInjector::total_reads() const {
  return reads_.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::total_writes() const {
  return writes_.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::reads_since_arm() const {
  MutexLock lock(mu_);
  return reads_.load(std::memory_order_relaxed) - arm_base_reads_;
}

uint64_t FaultInjector::writes_since_arm() const {
  MutexLock lock(mu_);
  return writes_.load(std::memory_order_relaxed) - arm_base_writes_;
}

uint64_t FaultInjector::faults_fired() const {
  MutexLock lock(mu_);
  return faults_fired_;
}

FaultSpec FaultInjector::TakeCorruptSpec() {
  MutexLock lock(mu_);
  return pending_corrupt_;
}

FaultInjector::Action FaultInjector::OnOpArmed(FaultSpec::Op op) {
  MutexLock lock(mu_);
  // While armed, every op lands here, so the mu_-guarded position counter is
  // this op's exact 1-based position since Arm regardless of how lossy the
  // stat totals are. The matching total is bumped too so reporting stays
  // consistent with the unarmed path.
  BumpStat(op == FaultSpec::Op::kRead ? reads_ : writes_);
  const uint64_t since_arm =
      op == FaultSpec::Op::kRead ? ++pos_reads_ : ++pos_writes_;
  Action action = Action::kPass;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i];
    if (s.op != op || s.at != since_arm) {
      continue;
    }
    // Each spec fires at most once: it names a single (op, position) and the
    // position counter only advances. Transient semantics — the retry
    // succeeds — fall out naturally, because the retry is the next position.
    // "Permanent" means the error status is kIoError, which the retry policy
    // above refuses to retry and converts into a read-only trip.
    if (consumed_[i]) {
      continue;
    }
    ++faults_fired_;
    consumed_[i] = true;
    switch (s.kind) {
      case FaultSpec::Kind::kTransientError:
        action = Action::kFailTransient;
        break;
      case FaultSpec::Kind::kPermanentError:
        action = Action::kFailPermanent;
        break;
      case FaultSpec::Kind::kTornWrite:
      case FaultSpec::Kind::kBitFlip:
        pending_corrupt_ = s;
        action = Action::kCorrupt;
        break;
      case FaultSpec::Kind::kCrash:
        flags_.fetch_or(kCrashedFlag, std::memory_order_release);
        action = Action::kHalt;
        break;
    }
    break;
  }
  // Once every spec has fired the schedule is spent; drop back to the
  // lock-free fast path for the rest of the run.
  bool all_consumed = true;
  for (bool c : consumed_) {
    all_consumed = all_consumed && c;
  }
  if (all_consumed) {
    flags_.fetch_and(static_cast<uint8_t>(~kArmedFlag),
                     std::memory_order_release);
  }
  return action;
}

std::vector<std::byte> FaultInjector::CorruptImage(
    const FaultSpec& spec, std::span<const std::byte> data,
    std::span<const std::byte> old_page) {
  MutexLock lock(mu_);
  std::vector<std::byte> image(data.begin(), data.end());
  if (spec.kind == FaultSpec::Kind::kBitFlip) {
    const size_t bit = rng_.Uniform(image.size() * 8);
    image[bit / 8] ^= std::byte{static_cast<uint8_t>(1U << (bit % 8))};
    return image;
  }
  // Torn write: keep a strict subset of the new sectors; the rest revert to
  // the pre-write content. Half the time it is a prefix (an in-order disk
  // that lost power), otherwise a random non-empty proper subset (a disk that
  // reorders sectors).
  const size_t sectors = std::min(kSectorsPerPage, image.size() / kSectorSize);
  std::vector<bool> keep_new(sectors, false);
  if (rng_.Uniform(2) == 0) {
    const size_t prefix = 1 + rng_.Uniform(sectors - 1);
    std::fill(keep_new.begin(),
              keep_new.begin() + static_cast<ptrdiff_t>(prefix), true);
  } else {
    size_t kept = 0;
    for (size_t s = 0; s < sectors; ++s) {
      if (rng_.Uniform(2) == 0) {
        keep_new[s] = true;
        ++kept;
      }
    }
    if (kept == 0) {
      keep_new[rng_.Uniform(sectors)] = true;
      kept = 1;
    }
    if (kept == sectors) {
      keep_new[rng_.Uniform(sectors)] = false;  // must lose something
    }
  }
  for (size_t s = 0; s < sectors; ++s) {
    if (!keep_new[s]) {
      const size_t off = s * kSectorSize;
      if (off + kSectorSize <= old_page.size()) {
        std::memcpy(image.data() + off, old_page.data() + off, kSectorSize);
      } else {
        std::memset(image.data() + off, 0, kSectorSize);  // extending write
      }
    }
  }
  return image;
}

Status FaultDevice::HaltedError() const {
  return Status::IoError(std::string(name()) +
                         ": halted at crash point (simulated power failure)");
}

Status FaultDevice::CreateRelation(Oid rel) {
  if (injector_->crashed()) {
    return HaltedError();
  }
  return inner_->CreateRelation(rel);
}

Status FaultDevice::DropRelation(Oid rel) {
  if (injector_->crashed()) {
    return HaltedError();
  }
  return inner_->DropRelation(rel);
}

Status FaultDevice::Sync() {
  if (injector_->crashed()) {
    return HaltedError();
  }
  return inner_->Sync();
}

Status FaultDevice::ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) {
  // No crashed() pre-check: OnOp folds the halt state into its flags load and
  // reports it as kHalt.
  switch (injector_->OnOp(FaultSpec::Op::kRead)) {
    case FaultInjector::Action::kFailTransient:
      return Status::TransientIo(std::string(name()) +
                                 ": injected transient read error");
    case FaultInjector::Action::kFailPermanent:
      return Status::IoError(std::string(name()) +
                             ": injected permanent read error");
    case FaultInjector::Action::kHalt:
      return HaltedError();
    case FaultInjector::Action::kCorrupt:  // reads are never corrupted in place
    case FaultInjector::Action::kPass:
      break;
  }
  return inner_->ReadBlock(rel, block, out);
}

Status FaultDevice::WriteBlock(Oid rel, uint32_t block,
                               std::span<const std::byte> data) {
  switch (injector_->OnOp(FaultSpec::Op::kWrite)) {
    case FaultInjector::Action::kFailTransient:
      return Status::TransientIo(std::string(name()) +
                                 ": injected transient write error");
    case FaultInjector::Action::kFailPermanent:
      return Status::IoError(std::string(name()) +
                             ": injected permanent write error");
    case FaultInjector::Action::kHalt:
      return HaltedError();
    case FaultInjector::Action::kCorrupt: {
      // Persist a damaged image but report success: the caller believes the
      // write landed, exactly as a disk with a failing head would behave.
      const FaultSpec spec = injector_->TakeCorruptSpec();
      std::vector<std::byte> old_page(kPageSize, std::byte{0});
      INV_ASSIGN_OR_RETURN(uint32_t nblocks, inner_->NumBlocks(rel));
      if (block < nblocks) {
        INV_RETURN_IF_ERROR(inner_->ReadBlock(rel, block, old_page));
      }
      const std::vector<std::byte> image =
          injector_->CorruptImage(spec, data, old_page);
      return inner_->WriteBlock(rel, block, image);
    }
    case FaultInjector::Action::kPass:
      break;
  }
  return inner_->WriteBlock(rel, block, data);
}

}  // namespace invfs
