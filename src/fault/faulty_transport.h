// FaultyTransport: a deterministic fault-injecting Transport decorator.
//
// The network is the one fault domain the device torture stack cannot reach:
// frames vanish in either direction, arrive twice, arrive cut short, or the
// connection dies under the client. This decorator injects exactly those
// failures against a seeded Rng and the shared SimClock, mirroring
// FaultDevice's spec style (src/fault/fault_device.h): a schedule of 1-based
// occurrence counts armed per replay for the torture sweeps, plus a
// probabilistic rate mode for the load observatory and benchmarks.
//
// Fault semantics, in terms of the Transport status contract (src/net/rpc.h):
//
//   * kDropRequest      — the request never reaches the server. The inner
//     transport is not invoked; the client's whole timeout elapses on the
//     sim clock; RoundTrip returns kTransientIo.
//   * kDropResponse     — the server executes (the inner round trip runs in
//     full, charging service + wire time) but the reply is lost: the clock
//     advances to the timeout deadline and RoundTrip returns kTransientIo.
//     This is the half that makes duplicate-request caching load-bearing —
//     the retried op was already applied.
//   * kDuplicateRequest — the frame is delivered twice back to back (a
//     retransmit racing the original). Both deliveries execute through the
//     inner transport; the caller sees the second response. Without the
//     server's DRC a non-idempotent op would apply twice.
//   * kTruncateResponse — the reply arrives cut to a seeded prefix (possibly
//     empty). Exercises the client's trust boundary: decode must fail
//     crisply, never crash or hang.
//   * kReset            — the connection dies before delivery: the inner
//     transport is not invoked, a small tear-down latency is charged, and
//     RoundTrip returns kIoError ("connection reset"). The client's epoch
//     bump on retry is what lets the server abort the orphaned session.
//   * kDelay            — the frame is delivered intact after `delay_us` of
//     extra latency.
//
// Determinism: scheduled faults fire on exact 1-based exchange counts since
// the last Arm (bootstrap traffic uncounted, FaultDevice-style); rate-mode
// draws come from the seeded Rng only. Same seed + same schedule + same
// workload = the same faults at the same sim times.

#pragma once

#include <cstdint>
#include <vector>

#include "src/net/rpc.h"
#include "src/sim/sim_clock.h"
#include "src/util/mutex.h"
#include "src/util/random.h"

namespace invfs {

// One scheduled network fault. `at` is 1-based and counts RoundTrip calls
// arriving at this transport since the last Arm call.
struct NetFaultSpec {
  enum class Kind : uint8_t {
    kDropRequest,
    kDropResponse,
    kDuplicateRequest,
    kTruncateResponse,
    kReset,
    kDelay,
  };

  Kind kind = Kind::kDropRequest;
  uint64_t at = 1;
  SimMicros delay_us = 0;  // kDelay only
};

const char* NetFaultKindName(NetFaultSpec::Kind kind);

// Independent per-exchange fault probabilities for rate mode. Draws are made
// in field order; the first that fires wins the exchange.
struct NetFaultRates {
  double drop_request = 0.0;
  double drop_response = 0.0;
  double duplicate = 0.0;
  double truncate = 0.0;
  double reset = 0.0;

  bool any() const {
    return drop_request > 0 || drop_response > 0 || duplicate > 0 ||
           truncate > 0 || reset > 0;
  }
};

class FaultyTransport final : public Transport {
 public:
  // Wraps `inner`; lost time is charged to `clock`; all randomness (truncate
  // prefix lengths, rate-mode draws) comes from `seed`.
  FaultyTransport(Transport* inner, SimClock* clock, uint64_t seed = 0,
                  MetricsRegistry* metrics = nullptr);

  // Replace the armed schedule and restart the relative exchange counter.
  void Arm(std::vector<NetFaultSpec> specs);
  void ArmOne(NetFaultSpec spec) { Arm(std::vector<NetFaultSpec>{spec}); }
  // Probabilistic mode (load/bench): every exchange draws against `rates`.
  // Clears any scheduled specs.
  void ArmRates(NetFaultRates rates);
  // Clear schedule and rates (the exchange counter keeps running).
  void Disarm();

  // Exchanges observed since construction / since the last Arm[Rates] call.
  uint64_t total_exchanges() const;
  uint64_t exchanges_since_arm() const;
  uint64_t faults_fired() const;

  Result<std::vector<std::byte>> RoundTrip(std::span<const std::byte> request,
                                           SimMicros timeout_us) override;

 private:
  struct Verdict {
    bool faulted = false;
    NetFaultSpec spec;
  };
  Verdict Decide() EXCLUDES(mu_);
  uint64_t TruncatedLength(size_t full) EXCLUDES(mu_);

  // When a lost exchange must cost the client its full deadline, advance the
  // clock to `deadline` (service time already charged may have passed it).
  void ChargeTimeout(SimMicros started, SimMicros timeout_us);

  Transport* inner_;
  SimClock* clock_;
  Counter* injected_ = nullptr;  // rpc.net.faults_injected

  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  std::vector<NetFaultSpec> specs_ GUARDED_BY(mu_);
  std::vector<bool> consumed_ GUARDED_BY(mu_);
  NetFaultRates rates_ GUARDED_BY(mu_);
  bool rates_armed_ GUARDED_BY(mu_) = false;
  uint64_t exchanges_ GUARDED_BY(mu_) = 0;
  uint64_t arm_base_ GUARDED_BY(mu_) = 0;
  uint64_t faults_fired_ GUARDED_BY(mu_) = 0;
};

}  // namespace invfs
