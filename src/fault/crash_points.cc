#include "src/fault/crash_points.h"

namespace invfs {

CrashPointRegistry& CrashPointRegistry::Instance() {
  static CrashPointRegistry instance;
  return instance;
}

void CrashPointRegistry::StartRecording() {
  MutexLock lock(mu_);
  recording_ = true;
  counts_.clear();
  UpdateActiveLocked();
}

std::map<std::string, uint64_t> CrashPointRegistry::StopRecording() {
  MutexLock lock(mu_);
  recording_ = false;
  UpdateActiveLocked();
  return std::move(counts_);
}

void CrashPointRegistry::Arm(std::string point, uint64_t occurrence,
                             std::function<void()> on_crash) {
  MutexLock lock(mu_);
  armed_point_ = std::move(point);
  armed_occurrence_ = occurrence == 0 ? 1 : occurrence;
  armed_hits_ = 0;
  on_crash_ = std::move(on_crash);
  fired_ = false;
  UpdateActiveLocked();
}

void CrashPointRegistry::Disarm() {
  MutexLock lock(mu_);
  recording_ = false;
  counts_.clear();
  armed_point_.clear();
  armed_occurrence_ = 0;
  armed_hits_ = 0;
  on_crash_ = nullptr;
  fired_ = false;
  UpdateActiveLocked();
}

bool CrashPointRegistry::fired() const {
  MutexLock lock(mu_);
  return fired_;
}

void CrashPointRegistry::UpdateActiveLocked() {
  active_.store(recording_ || !armed_point_.empty(),
                std::memory_order_relaxed);
}

void CrashPointRegistry::HitSlow(std::string_view point) {
  std::function<void()> cb;
  {
    MutexLock lock(mu_);
    if (recording_) {
      ++counts_[std::string(point)];
    }
    if (!fired_ && !armed_point_.empty() && point == armed_point_) {
      if (++armed_hits_ == armed_occurrence_) {
        fired_ = true;
        cb = on_crash_;  // run outside mu_: the callback may take other locks
      }
    }
  }
  if (cb) {
    cb();
  }
}

}  // namespace invfs
