// Network-fault torture sweep: the at-most-once proof obligation.
//
// The crash torture harness (torture.h) proves the acked/unacked oracle
// against a dying *device*; this sweep proves the same contract against a
// dying *wire*. A deterministic RPC workload (creates, appends, strided
// overwrites, renames, unlinks, explicit transaction batches) runs through a
// retrying RemoteFileClient over a FaultyTransport:
//
//   1. Recording pass: run the workload unfaulted, count the round-trip
//      exchanges it makes, and verify the mirror oracle holds with no faults.
//   2. Schedule enumeration: every fault kind (request drop, response drop,
//      duplicate delivery, response truncation, connection reset) crossed
//      with occurrence positions spread evenly over the recorded exchange
//      count — both request-path and response-path losses are in the set.
//   3. For each schedule: fresh world, arm exactly that fault, run the
//      identical workload plan with the client retrying through it, then
//      check the oracle:
//        * every operation the client saw acked is applied exactly once —
//          final file contents equal the acked-state mirror byte for byte
//          (a duplicated append or replayed rename shows up immediately);
//        * every operation the client saw fail is invisible;
//        * no orphaned state — zero active transactions and zero locked
//          relations once the workload's sessions quiesce, even after a
//          reset tore a session down mid-transaction.
//
// All randomness flows from NetTortureOptions::seed; a failing schedule
// replays exactly (same plan, same fault position, same truncation prefix).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace invfs {

struct NetTortureOptions {
  uint64_t seed = 0xF1BE;
  // Operations per workload run (each one creat/append/overwrite/rename/
  // unlink or a multi-op transaction batch).
  int operations = 36;
  int max_files = 6;
  // At most this many occurrence positions per fault kind, spread evenly
  // across the recorded exchange count.
  uint64_t schedules_per_kind = 12;
  bool verbose = false;  // one line per schedule to stdout
};

struct NetTortureReport {
  uint64_t schedules = 0;      // schedules enumerated and run
  uint64_t faults_fired = 0;   // schedules whose fault actually fired
  uint64_t not_reached = 0;    // armed position past the replay's exchanges
  uint64_t recorded_exchanges = 0;  // round trips in the recording pass
  uint64_t retries = 0;        // client retries summed over all schedules
  uint64_t acked_ops = 0;      // workload ops acked, summed over schedules
  uint64_t failed_ops = 0;     // workload ops that surfaced an error
  std::vector<std::string> failures;  // empty == the sweep passed

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

Result<NetTortureReport> RunNetTorture(const NetTortureOptions& options);

}  // namespace invfs
