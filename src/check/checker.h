// invfs_check: offline structural verifier for an Inversion storage image.
//
// Walks the raw block stores of a quiescent database — no buffer pool, no
// transactions — and verifies the invariants the no-overwrite storage design
// promises:
//   * page integrity: magic, CRC32C checksum, self-identification, slotted
//     geometry, line-pointer bounds, non-overlapping tuples;
//   * tuple well-formedness: every live tuple decodes under its relation's
//     schema, MVCC headers reference known transactions, commit timestamps
//     are ordered along version chains, and each logical key has at most one
//     current version;
//   * B-tree structure: meta page, node encoding, strict key order, parent
//     separator bounds, uniform leaf depth, sibling chain, and leaf TIDs that
//     point inside their heap;
//   * catalog referential integrity: pg_attribute rows reference live
//     relations, pg_index rows pair index and heap relations, every cataloged
//     relation physically exists on its bound device (and vice versa);
//   * Inversion-level consistency: chunk records carry the correct
//     self-identifier and chunk tables are reachable from fileatt;
//   * commit-log sanity: every entry has a valid status.
//
// The checker never mutates the image. It reports all violations it can find
// rather than stopping at the first, so a single run characterizes the damage.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/catalog/database.h"
#include "src/device/block_store.h"
#include "src/storage/value.h"
#include "src/txn/commit_log.h"
#include "src/util/status.h"

namespace invfs {

struct Violation {
  // Short invariant name, stable for tests and scripts: e.g. "page-checksum",
  // "btree-key-order", "orphan-chunk-table".
  std::string invariant;
  Oid rel = kInvalidOid;
  uint32_t block = 0;
  std::string detail;
  // True when the violation is physically detectable page damage (bad magic,
  // bad checksum, unreadable) or fallout confined to — or pointing at — such
  // a page. Fault-injection tests corrupt pages on purpose; quarantined
  // violations are the ones the page-level defenses caught and contained.
  bool quarantined = false;
  // True for provably-dead crash residue under force-at-commit: state a
  // transaction in flight at a crash legitimately leaves behind (a physical
  // relation no pg_class version names, a write-through index entry pointing
  // past the persisted end of its heap). Invisible after recovery; the
  // vacuum cleaner reclaims it.
  bool residue = false;

  std::string ToString() const;
};

struct CheckReport {
  std::vector<Violation> violations;
  uint32_t relations_checked = 0;
  uint64_t pages_checked = 0;
  uint64_t tuples_checked = 0;
  uint64_t index_entries_checked = 0;

  bool ok() const { return violations.empty(); }
  // True when every violation (there may be none) is quarantined page damage
  // or its fallout — i.e. all corruption present was *detected* at the page
  // level and is confined to the damaged pages. `invfs_check
  // --tolerate-quarantined` exits 0 in this state.
  bool OnlyQuarantined() const;
  // True when every violation (there may be none) is crash residue — the
  // torture driver's standard for an image recovered from a mid-transaction
  // crash. `invfs_check --tolerate-residue` exits 0 in this state.
  bool OnlyResidue() const;
  // True if any violation names `invariant`.
  bool Has(const std::string& invariant) const;
  std::string ToString() const;
};

class Checker {
 public:
  // The stores may be null (device never configured); relations bound to a
  // missing device are reported, not dereferenced.
  Checker(BlockStore* disk, BlockStore* nvram = nullptr,
          BlockStore* jukebox = nullptr);
  explicit Checker(StorageEnv& env);

  // Run every check. Only fails (non-OK) on environmental errors — a store
  // that cannot be read at all; corruption is reported in the CheckReport.
  Result<CheckReport> Run();

 private:
  struct RelInfo {
    Oid oid = kInvalidOid;
    std::string name;
    DeviceId device = kDeviceMagneticDisk;
    RelKind kind = RelKind::kHeap;
  };

  // Commit-log view loaded from the raw log relation.
  struct LogView {
    struct Entry {
      uint32_t status = 0;
      Timestamp commit_ts = 0;
    };
    std::vector<Entry> entries;  // indexed by xid
    // Durable xid high-water mark (entry 0's timestamp field): xids at or
    // below it are valid allocations even without a persisted begin record —
    // if unused on disk they were burned by a crash and count as aborted.
    TxnId horizon = 0;

    bool Committed(TxnId x) const;
    bool Known(TxnId x) const;
    Timestamp CommitTs(TxnId x) const;
  };

  // One decoded heap tuple (all versions, not just visible).
  struct HeapTuple {
    Tid tid;
    TupleMeta meta;
    Row row;
  };

  // `fallout` forces the quarantined flag for cross-reference damage (e.g. an
  // index entry pointing into a quarantined heap page) that the same-block
  // rule in Add cannot see.
  void Add(std::string invariant, Oid rel, uint32_t block, std::string detail,
           bool fallout = false);
  bool Quarantined(Oid rel, uint32_t block) const;
  BlockStore* StoreFor(DeviceId device) const;
  bool IsCurrent(const TupleMeta& meta) const;

  void LoadCommitLog();
  // Walk every page of a heap relation, running page-level checks; decoded
  // tuples (every version) are appended to `out`.
  void WalkHeap(BlockStore* store, Oid rel, const Schema& schema,
                std::vector<HeapTuple>* out);
  void CheckTupleMeta(Oid rel, const HeapTuple& t);
  // At most one current version per logical key.
  void CheckCurrentUnique(Oid rel, const std::vector<HeapTuple>& tuples,
                          const std::vector<size_t>& key_columns);
  void CheckChunkTable(const RelInfo& rel, Oid file,
                       const std::vector<HeapTuple>& tuples, const Schema& schema);
  void CheckBtree(BlockStore* store, const RelInfo& index, Oid heap_rel);

  BlockStore* disk_;
  BlockStore* nvram_;
  BlockStore* jukebox_;

  LogView log_;
  CheckReport report_;
  // Heap geometry gathered during heap walks: rel -> per-block slot counts.
  // B-tree leaf TIDs are validated against this.
  std::map<Oid, std::vector<uint16_t>> heap_slots_;
  // (rel, block) pairs whose pages carry detectable physical damage; further
  // violations on (or pointing at) these blocks are tagged as fallout.
  std::set<std::pair<Oid, uint32_t>> quarantined_;
};

// Convenience: check the image held by `env` and return the report.
Result<CheckReport> CheckImage(StorageEnv& env);

}  // namespace invfs
