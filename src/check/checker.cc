#include "src/check/checker.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>
#include <string_view>

#include "src/access/btree.h"
#include "src/access/btree_layout.h"
#include "src/catalog/catalog.h"
#include "src/storage/page.h"
#include "src/storage/tuple.h"
#include "src/util/bytes.h"

namespace invfs {
namespace {

constexpr uint32_t kStatusAborted = static_cast<uint32_t>(TxnStatus::kAborted);

bool ValidTypeId(int32_t v) {
  return v >= static_cast<int32_t>(TypeId::kBool) &&
         v <= static_cast<int32_t>(TypeId::kTimestamp);
}

// Chunk-table names are "inv<oid>"; returns the oid or 0.
Oid ParseChunkTableName(const std::string& name) {
  if (name.size() <= 3 || name.compare(0, 3, "inv") != 0) {
    return kInvalidOid;
  }
  Oid oid = 0;
  for (size_t i = 3; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return kInvalidOid;
    }
    oid = oid * 10 + static_cast<Oid>(name[i] - '0');
  }
  return oid;
}

int CompareKeys(std::span<const std::byte> a, std::span<const std::byte> b) {
  const size_t n = std::min(a.size(), b.size());
  const int c = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
  if (c != 0) {
    return c;
  }
  return a.size() < b.size() ? -1 : (a.size() == b.size() ? 0 : 1);
}

std::string KeyOf(const Row& row, const std::vector<size_t>& key_columns) {
  std::string key;
  for (size_t c : key_columns) {
    key += row[c].ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

// ---------------------------------------------------------------- reporting

std::string Violation::ToString() const {
  std::string out = invariant + ": rel " + std::to_string(rel);
  if (block != ~0u) {
    out += " block " + std::to_string(block);
  }
  out += ": " + detail;
  if (quarantined) {
    out += " [quarantined]";
  }
  if (residue) {
    out += " [crash residue]";
  }
  return out;
}

bool CheckReport::OnlyQuarantined() const {
  return std::all_of(violations.begin(), violations.end(),
                     [](const Violation& v) { return v.quarantined; });
}

bool CheckReport::OnlyResidue() const {
  return std::all_of(violations.begin(), violations.end(),
                     [](const Violation& v) { return v.residue; });
}

bool CheckReport::Has(const std::string& invariant) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

std::string CheckReport::ToString() const {
  std::string out = "invfs_check: " + std::to_string(relations_checked) +
                    " relations, " + std::to_string(pages_checked) + " pages, " +
                    std::to_string(tuples_checked) + " tuples, " +
                    std::to_string(index_entries_checked) + " index entries, " +
                    std::to_string(violations.size()) + " violation(s)\n";
  for (const Violation& v : violations) {
    out += "  " + v.ToString() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------- commit log

bool Checker::LogView::Known(TxnId x) const {
  if (x == kBootstrapTxn) {
    return true;
  }
  if (x != kInvalidTxn && x <= horizon) {
    return true;  // allocated under the persisted horizon; unused = burned
  }
  return x < entries.size() &&
         entries[x].status != static_cast<uint32_t>(TxnStatus::kUnused);
}

bool Checker::LogView::Committed(TxnId x) const {
  if (x == kBootstrapTxn) {
    return true;
  }
  return x < entries.size() &&
         entries[x].status == static_cast<uint32_t>(TxnStatus::kCommitted);
}

Timestamp Checker::LogView::CommitTs(TxnId x) const {
  if (x == kBootstrapTxn) {
    return 0;
  }
  return x < entries.size() ? entries[x].commit_ts : 0;
}

// ------------------------------------------------------------------ checker

Checker::Checker(BlockStore* disk, BlockStore* nvram, BlockStore* jukebox)
    : disk_(disk), nvram_(nvram), jukebox_(jukebox) {}

Checker::Checker(StorageEnv& env)
    : Checker(env.disk_store.get(), env.nvram_store.get(),
              env.jukebox_store.get()) {}

void Checker::Add(std::string invariant, Oid rel, uint32_t block,
                  std::string detail, bool fallout) {
  // Detectable physical damage quarantines its page: every further complaint
  // about the same block (undecodable tuples, bad geometry, overlapping line
  // pointers) is fallout of that damage, not an independent invariant breach.
  // page-geometry is deliberately NOT an anchor — bad geometry under a valid
  // checksum is software corruption the page-level defenses did not catch.
  static constexpr std::string_view kAnchors[] = {"page-unreadable",
                                                  "page-magic",
                                                  "page-checksum"};
  bool quarantined = fallout;
  for (std::string_view a : kAnchors) {
    if (invariant == a) {
      quarantined_.emplace(rel, block);
      quarantined = true;
      break;
    }
  }
  quarantined = quarantined || Quarantined(rel, block);
  report_.violations.push_back(
      Violation{std::move(invariant), rel, block, std::move(detail),
                quarantined});
}

bool Checker::Quarantined(Oid rel, uint32_t block) const {
  return quarantined_.count({rel, block}) != 0;
}

BlockStore* Checker::StoreFor(DeviceId device) const {
  switch (device) {
    case kDeviceMagneticDisk:
      return disk_;
    case kDeviceNvram:
      return nvram_;
    case kDeviceJukebox:
      return jukebox_;
    default:
      return nullptr;
  }
}

bool Checker::IsCurrent(const TupleMeta& meta) const {
  return log_.Committed(meta.xmin) &&
         (meta.xmax == kInvalidTxn || !log_.Committed(meta.xmax));
}

void Checker::LoadCommitLog() {
  if (!disk_->Exists(kCommitLogRelOid)) {
    Add("commit-log-missing", kCommitLogRelOid, ~0u,
        "no commit log relation on the default device");
    return;
  }
  auto nblocks = disk_->NumBlocks(kCommitLogRelOid);
  if (!nblocks.ok()) {
    Add("commit-log-missing", kCommitLogRelOid, ~0u, nblocks.status().message());
    return;
  }
  constexpr uint32_t kEntrySize = 16;
  constexpr uint32_t kEntriesPerPage = kPageSize / kEntrySize;
  std::vector<std::byte> buf(kPageSize);
  for (uint32_t b = 0; b < *nblocks; ++b) {
    if (Status s = disk_->Read(kCommitLogRelOid, b, buf); !s.ok()) {
      Add("commit-log-unreadable", kCommitLogRelOid, b, s.message());
      continue;
    }
    if (b == 0) {
      // Entry 0 (xid 0 is invalid) carries the xid horizon, not a status.
      log_.horizon = GetU64(buf.data() + 8);
    }
    for (uint32_t i = b == 0 ? 1 : 0; i < kEntriesPerPage; ++i) {
      const std::byte* p = buf.data() + i * kEntrySize;
      const TxnId xid = b * kEntriesPerPage + i;
      LogView::Entry e;
      e.status = GetU32(p);
      e.commit_ts = GetU64(p + 8);
      if (e.status > kStatusAborted) {
        Add("commit-log-status", kCommitLogRelOid, b,
            "xid " + std::to_string(xid) + " has invalid status " +
                std::to_string(e.status));
        continue;
      }
      if (e.status != static_cast<uint32_t>(TxnStatus::kUnused)) {
        if (log_.entries.size() <= xid) {
          log_.entries.resize(xid + 1);
        }
        log_.entries[xid] = e;
      }
    }
  }
}

void Checker::CheckTupleMeta(Oid rel, const HeapTuple& t) {
  const TupleMeta& m = t.meta;
  if (m.xmin == kInvalidTxn) {
    Add("tuple-xmin-zero", rel, t.tid.block,
        "slot " + std::to_string(t.tid.slot) + " has xmin 0");
    return;
  }
  if (!log_.Known(m.xmin)) {
    Add("tuple-xmin-unknown", rel, t.tid.block,
        "slot " + std::to_string(t.tid.slot) + " written by unknown xid " +
            std::to_string(m.xmin));
  }
  if (m.xmax != kInvalidTxn && !log_.Known(m.xmax)) {
    Add("tuple-xmax-unknown", rel, t.tid.block,
        "slot " + std::to_string(t.tid.slot) + " deleted by unknown xid " +
            std::to_string(m.xmax));
  }
  if (m.xmax != kInvalidTxn && log_.Committed(m.xmin) && log_.Committed(m.xmax) &&
      log_.CommitTs(m.xmax) < log_.CommitTs(m.xmin)) {
    Add("commit-ts-order", rel, t.tid.block,
        "slot " + std::to_string(t.tid.slot) + " deleted (xid " +
            std::to_string(m.xmax) + ", ts " +
            std::to_string(log_.CommitTs(m.xmax)) + ") before it was written (xid " +
            std::to_string(m.xmin) + ", ts " +
            std::to_string(log_.CommitTs(m.xmin)) + ")");
  }
}

void Checker::WalkHeap(BlockStore* store, Oid rel, const Schema& schema,
                       std::vector<HeapTuple>* out) {
  auto nblocks = store->NumBlocks(rel);
  if (!nblocks.ok()) {
    Add("relation-missing", rel, ~0u, nblocks.status().message());
    return;
  }
  std::vector<uint16_t>& slots = heap_slots_[rel];
  slots.assign(*nblocks, 0);
  std::vector<std::byte> buf(kPageSize);
  for (uint32_t b = 0; b < *nblocks; ++b) {
    if (Status s = store->Read(rel, b, buf); !s.ok()) {
      Add("page-unreadable", rel, b, s.message());
      continue;
    }
    ++report_.pages_checked;
    const Page page(buf.data());
    if (!page.IsInitialized()) {
      Add("page-magic", rel, b, "bad page magic");
      continue;
    }
    if (Status s = page.VerifyChecksum(); !s.ok()) {
      Add("page-checksum", rel, b, s.message());
    }
    if (Status s = page.VerifySelfIdent(rel, b); !s.ok()) {
      Add("page-self-ident", rel, b, s.message());
    }
    const uint16_t nslots = page.num_slots();
    const uint16_t lower = GetU16(buf.data() + 4);
    const uint16_t upper = GetU16(buf.data() + 6);
    if (lower != kPageHeaderSize + nslots * kLinePointerSize || lower > upper ||
        upper > kPageSize) {
      Add("page-geometry", rel, b,
          "nslots " + std::to_string(nslots) + ", lower " + std::to_string(lower) +
              ", upper " + std::to_string(upper));
      continue;  // line pointers cannot be trusted
    }
    slots[b] = nslots;
    // Live line pointers: in bounds and non-overlapping.
    std::vector<std::pair<uint16_t, uint16_t>> live;
    for (uint16_t s = 0; s < nslots; ++s) {
      const std::byte* lp = buf.data() + kPageHeaderSize +
                            static_cast<uint32_t>(s) * kLinePointerSize;
      const uint16_t off = GetU16(lp);
      const uint16_t len = GetU16(lp + 2);
      if (len == 0) {
        continue;  // dead (or compacted-away) slot
      }
      if (off < upper || static_cast<uint32_t>(off) + len > kPageSize) {
        Add("line-pointer-bounds", rel, b,
            "slot " + std::to_string(s) + " -> [" + std::to_string(off) + "," +
                std::to_string(off + len) + ") outside tuple area [" +
                std::to_string(upper) + "," + std::to_string(kPageSize) + ")");
        continue;
      }
      live.emplace_back(off, len);
      ++report_.tuples_checked;
      HeapTuple t;
      t.tid = Tid{b, s};
      const std::span<const std::byte> tuple(buf.data() + off, len);
      if (len < kTupleFixedHeader) {
        Add("tuple-decode", rel, b,
            "slot " + std::to_string(s) + " shorter than the tuple header");
        continue;
      }
      t.meta = GetTupleMeta(tuple);
      auto row = DecodeTuple(schema, tuple);
      if (!row.ok()) {
        Add("tuple-decode", rel, b,
            "slot " + std::to_string(s) + ": " + row.status().message());
        continue;
      }
      t.row = std::move(*row);
      CheckTupleMeta(rel, t);
      if (out != nullptr) {
        out->push_back(std::move(t));
      }
    }
    std::sort(live.begin(), live.end());
    for (size_t i = 1; i < live.size(); ++i) {
      if (live[i - 1].first + live[i - 1].second > live[i].first) {
        Add("tuple-overlap", rel, b,
            "tuples at offsets " + std::to_string(live[i - 1].first) + " and " +
                std::to_string(live[i].first) + " overlap");
      }
    }
  }
}

void Checker::CheckCurrentUnique(Oid rel, const std::vector<HeapTuple>& tuples,
                                 const std::vector<size_t>& key_columns) {
  std::map<std::string, Tid> current;
  for (const HeapTuple& t : tuples) {
    if (!IsCurrent(t.meta)) {
      continue;
    }
    std::string key = KeyOf(t.row, key_columns);
    auto [it, inserted] = current.emplace(std::move(key), t.tid);
    if (!inserted) {
      Add("duplicate-current-version", rel, t.tid.block,
          "key " + KeyOf(t.row, key_columns) + " is current at both " +
              it->second.ToString() + " and " + t.tid.ToString() +
              " (version chain cut)");
    }
  }
}

void Checker::CheckChunkTable(const RelInfo& rel, Oid file,
                              const std::vector<HeapTuple>& tuples,
                              const Schema& schema) {
  auto chunkno_col = schema.ColumnIndex("chunkno");
  auto selfid_col = schema.ColumnIndex("selfid");
  auto data_col = schema.ColumnIndex("data");
  if (!chunkno_col.ok() || !selfid_col.ok() || !data_col.ok()) {
    Add("chunk-schema", rel.oid, ~0u,
        "chunk table " + rel.name + " lacks chunkno/data/selfid columns");
    return;
  }
  for (const HeapTuple& t : tuples) {
    const Value& chunkno = t.row[*chunkno_col];
    const Value& selfid = t.row[*selfid_col];
    if (chunkno.is_null() || chunkno.AsInt4() < 0) {
      Add("chunk-number", rel.oid, t.tid.block,
          "chunk record at " + t.tid.ToString() + " has bad chunk number");
      continue;
    }
    if (t.row[*data_col].is_null()) {
      Add("chunk-data-null", rel.oid, t.tid.block,
          "chunk " + std::to_string(chunkno.AsInt4()) + " has null data");
    }
    // Every chunk record self-identifies as (file oid << 32) | chunkno; see
    // inv_session.cc. A mismatch means the record belongs to another file or
    // another chunk — a misdirected or cross-linked write.
    const int64_t want =
        (static_cast<int64_t>(file) << 32) | chunkno.AsInt4();
    if (selfid.is_null() || selfid.AsInt8() != want) {
      Add("chunk-self-ident", rel.oid, t.tid.block,
          "chunk " + std::to_string(chunkno.AsInt4()) + " of file " +
              std::to_string(file) + " carries selfid " +
              (selfid.is_null() ? "null" : std::to_string(selfid.AsInt8())) +
              ", expected " + std::to_string(want));
    }
  }
}

void Checker::CheckBtree(BlockStore* store, const RelInfo& index, Oid heap_rel) {
  namespace bl = btree_layout;
  auto nblocks_or = store->NumBlocks(index.oid);
  if (!nblocks_or.ok()) {
    Add("relation-missing", index.oid, ~0u, nblocks_or.status().message());
    return;
  }
  const uint32_t nblocks = *nblocks_or;
  if (nblocks < 2) {
    Add("btree-meta", index.oid, 0,
        "index has " + std::to_string(nblocks) + " block(s), need meta + root");
    return;
  }
  std::vector<std::byte> buf(kPageSize);

  // Page-level checks shared by meta and nodes.
  auto read_page = [&](uint32_t b) -> bool {
    if (Status s = store->Read(index.oid, b, buf); !s.ok()) {
      Add("page-unreadable", index.oid, b, s.message());
      return false;
    }
    ++report_.pages_checked;
    const Page page(buf.data());
    if (!page.IsInitialized()) {
      Add("page-magic", index.oid, b, "bad page magic");
      return false;
    }
    if (Status s = page.VerifyChecksum(); !s.ok()) {
      Add("page-checksum", index.oid, b, s.message());
    }
    if (Status s = page.VerifySelfIdent(index.oid, b); !s.ok()) {
      Add("page-self-ident", index.oid, b, s.message());
    }
    return true;
  };

  if (!read_page(0)) {
    return;
  }
  if (GetU32(buf.data() + bl::kOffMetaMagic) != bl::kBtreeMetaMagic) {
    Add("btree-meta", index.oid, 0, "meta page magic mismatch");
    return;
  }
  const uint32_t root = GetU32(buf.data() + bl::kOffMetaRoot);
  if (root == 0 || root >= nblocks) {
    Add("btree-meta", index.oid, 0,
        "root block " + std::to_string(root) + " out of range");
    return;
  }

  struct NodeEntry {
    std::vector<std::byte> key;
    Tid tid;
    uint32_t child = 0;
  };
  using Key = std::vector<std::byte>;
  std::vector<uint32_t> visited(nblocks, 0);
  std::vector<std::pair<uint32_t, uint32_t>> leaves;  // (block, right sibling)
  std::optional<uint32_t> leaf_depth;
  const std::vector<uint16_t>* heap_slots = nullptr;
  if (auto it = heap_slots_.find(heap_rel); it != heap_slots_.end()) {
    heap_slots = &it->second;
  }

  // Recursive structural walk with key bounds: every key in the subtree under
  // (block) must lie in [lo, hi).
  auto walk = [&](auto&& self, uint32_t block, uint32_t depth,
                  const std::optional<Key>& lo,
                  const std::optional<Key>& hi) -> void {
    if (block >= nblocks) {
      Add("btree-child-range", index.oid, block,
          "child block out of range (index has " + std::to_string(nblocks) +
              " blocks)");
      return;
    }
    if (++visited[block] > 1) {
      Add("btree-cycle", index.oid, block, "node reached twice");
      return;
    }
    if (!read_page(block)) {
      return;
    }
    const uint8_t type = static_cast<uint8_t>(buf[bl::kOffType]);
    if (type != bl::kNodeLeaf && type != bl::kNodeInternal) {
      Add("btree-node-type", index.oid, block,
          "node type byte " + std::to_string(type));
      return;
    }
    const bool leaf = type == bl::kNodeLeaf;
    const uint16_t nkeys = GetU16(buf.data() + bl::kOffNKeys);
    const uint32_t right_sib = GetU32(buf.data() + bl::kOffRightSib);
    const uint32_t leftmost = GetU32(buf.data() + bl::kOffLeftChild);

    // Decode entries with bounds checking.
    std::vector<NodeEntry> entries;
    entries.reserve(nkeys);
    const std::byte* d = buf.data() + bl::kOffEntries;
    const std::byte* end = buf.data() + kPageSize;
    bool encoding_ok = true;
    for (uint16_t i = 0; i < nkeys; ++i) {
      const size_t payload = leaf ? 6 : 4;
      if (static_cast<size_t>(end - d) < 2 ||
          static_cast<size_t>(end - d) < 2 + GetU16(d) + payload) {
        Add("btree-node-encoding", index.oid, block,
            "entry " + std::to_string(i) + " runs past the node");
        encoding_ok = false;
        break;
      }
      const uint16_t klen = GetU16(d);
      d += 2;
      NodeEntry e;
      e.key.assign(d, d + klen);
      d += klen;
      if (leaf) {
        e.tid.block = GetU32(d);
        e.tid.slot = GetU16(d + 4);
        d += 6;
      } else {
        e.child = GetU32(d);
        d += 4;
      }
      entries.push_back(std::move(e));
    }
    if (!encoding_ok) {
      return;
    }

    for (size_t i = 0; i < entries.size(); ++i) {
      const Key& k = entries[i].key;
      if (i > 0 && CompareKeys(entries[i - 1].key, k) >= 0) {
        Add("btree-key-order", index.oid, block,
            "entry " + std::to_string(i) + " not strictly greater than its "
            "predecessor");
      }
      if (lo && CompareKeys(k, *lo) < 0) {
        Add("btree-key-bounds", index.oid, block,
            "entry " + std::to_string(i) + " below the parent separator");
      }
      if (hi && CompareKeys(k, *hi) >= 0) {
        Add("btree-key-bounds", index.oid, block,
            "entry " + std::to_string(i) + " not below the next parent "
            "separator");
      }
    }

    if (leaf) {
      if (!leaf_depth) {
        leaf_depth = depth;
      } else if (*leaf_depth != depth) {
        Add("btree-depth", index.oid, block,
            "leaf at depth " + std::to_string(depth) + ", expected " +
                std::to_string(*leaf_depth));
      }
      leaves.emplace_back(block, right_sib);
      for (size_t i = 0; i < entries.size(); ++i) {
        ++report_.index_entries_checked;
        const NodeEntry& e = entries[i];
        // The stored key ends in the big-endian TID (see CombineKey); it must
        // agree with the payload TID.
        if (e.key.size() < bl::kTidSuffix) {
          Add("btree-tid-suffix", index.oid, block,
              "entry " + std::to_string(i) + " key shorter than the TID suffix");
          continue;
        }
        const std::byte* s = e.key.data() + e.key.size() - bl::kTidSuffix;
        const uint32_t kblock = (static_cast<uint32_t>(s[0]) << 24) |
                                (static_cast<uint32_t>(s[1]) << 16) |
                                (static_cast<uint32_t>(s[2]) << 8) |
                                static_cast<uint32_t>(s[3]);
        const uint16_t kslot = static_cast<uint16_t>(
            (static_cast<uint16_t>(s[4]) << 8) | static_cast<uint16_t>(s[5]));
        if (kblock != e.tid.block || kslot != e.tid.slot) {
          Add("btree-tid-suffix", index.oid, block,
              "entry " + std::to_string(i) + " key suffix " +
                  Tid{kblock, kslot}.ToString() + " != payload TID " +
                  e.tid.ToString());
        }
        if (heap_slots != nullptr &&
            (e.tid.block >= heap_slots->size() ||
             e.tid.slot >= (*heap_slots)[e.tid.block])) {
          // A TID into a quarantined heap page is fallout: the page's slot
          // count is unknowable, so the entry may well be fine.
          const bool fallout = Quarantined(heap_rel, e.tid.block);
          Add("btree-tid-range", index.oid, block,
              "entry " + std::to_string(i) + " points at " + e.tid.ToString() +
                  ", outside heap rel " + std::to_string(heap_rel),
              fallout);
          // Otherwise the TID points past the persisted end of its heap.
          // Force-at-commit flushes heap pages before the commit record, so
          // the entry's writer never committed: this is a dead entry a crash
          // legitimately strands in a write-through index, gone at the next
          // rebuild.
          report_.violations.back().residue = !fallout;
        }
      }
      return;
    }

    // Internal node: child i covers [previous separator, entries[i].key).
    if (entries.empty()) {
      Add("btree-node-encoding", index.oid, block, "internal node with no keys");
      return;
    }
    // Keys and child pointers were copied out above; `buf` is reused freely by
    // the recursive calls.
    self(self, leftmost, depth + 1, lo,
         std::optional<Key>(entries.front().key));
    for (size_t i = 0; i < entries.size(); ++i) {
      const std::optional<Key> child_hi =
          i + 1 < entries.size() ? std::optional<Key>(entries[i + 1].key) : hi;
      self(self, entries[i].child, depth + 1,
           std::optional<Key>(entries[i].key), child_hi);
    }
  };
  walk(walk, root, 0, std::nullopt, std::nullopt);

  // Leaves were collected in key order; the sibling chain must thread them in
  // exactly that order and terminate.
  for (size_t i = 0; i < leaves.size(); ++i) {
    const uint32_t expect =
        i + 1 < leaves.size() ? leaves[i + 1].first : BTree::kNoBlock;
    if (leaves[i].second != expect) {
      Add("btree-sibling", index.oid, leaves[i].first,
          "right sibling is " + std::to_string(leaves[i].second) +
              ", expected " + std::to_string(expect));
    }
  }

  // Every block of the index relation must be reachable exactly once (block 0
  // is the meta page).
  for (uint32_t b = 1; b < nblocks; ++b) {
    if (visited[b] == 0) {
      Add("btree-unreachable", index.oid, b, "node not reachable from the root");
    }
  }

  // A physically damaged page anywhere in this index makes the structural
  // walk's downstream complaints (key order, sibling chain, unreachable
  // nodes, depth) fallout of that damage rather than independent corruption.
  if (auto it = quarantined_.lower_bound({index.oid, 0});
      it != quarantined_.end() && it->first == index.oid) {
    for (Violation& v : report_.violations) {
      if (v.rel == index.oid) {
        v.quarantined = true;
      }
    }
  }
}

Result<CheckReport> Checker::Run() {
  if (disk_ == nullptr) {
    return Status::InvalidArgument("no default-device store to check");
  }
  if (!disk_->Exists(kPgClassOid)) {
    Add("catalog-missing", kPgClassOid, ~0u,
        "pg_class does not exist on the default device");
    return report_;
  }
  LoadCommitLog();

  // --- catalogs, with their canonical schemas -----------------------------
  std::vector<HeapTuple> class_rows;
  std::vector<HeapTuple> attr_rows;
  std::vector<HeapTuple> type_rows;
  std::vector<HeapTuple> proc_rows;
  std::vector<HeapTuple> index_rows;
  const Schema class_schema = PgClassSchema();
  const Schema attr_schema = PgAttributeSchema();
  WalkHeap(disk_, kPgClassOid, class_schema, &class_rows);
  WalkHeap(disk_, kPgAttributeOid, attr_schema, &attr_rows);
  WalkHeap(disk_, kPgTypeOid, PgTypeSchema(), &type_rows);
  WalkHeap(disk_, kPgProcOid, PgProcSchema(), &proc_rows);
  WalkHeap(disk_, kPgIndexOid, PgIndexSchema(), &index_rows);
  report_.relations_checked += 5;
  CheckCurrentUnique(kPgClassOid, class_rows, {1});       // relid
  CheckCurrentUnique(kPgAttributeOid, attr_rows, {0, 3});  // (attrelid, attnum)
  CheckCurrentUnique(kPgTypeOid, type_rows, {1});          // typid
  CheckCurrentUnique(kPgProcOid, proc_rows, {1});          // proid
  CheckCurrentUnique(kPgIndexOid, index_rows, {0});        // indexrelid

  // Current relations, and every oid any pg_class version has ever named
  // (crashed DDL legitimately leaves physical relations whose pg_class row
  // never committed — those are garbage for vacuum, not corruption).
  std::map<Oid, RelInfo> rels;
  std::set<Oid> named_oids = {kCommitLogRelOid, kPgClassOid, kPgAttributeOid,
                              kPgTypeOid,       kPgProcOid,  kPgIndexOid};
  for (const HeapTuple& t : class_rows) {
    if (t.row[1].is_null()) {
      continue;
    }
    named_oids.insert(t.row[1].AsOid());
    if (!IsCurrent(t.meta)) {
      continue;
    }
    RelInfo info;
    info.name = t.row[0].is_null() ? "" : t.row[0].AsText();
    info.oid = t.row[1].AsOid();
    info.device = t.row[2].is_null()
                      ? kDeviceMagneticDisk
                      : static_cast<DeviceId>(t.row[2].AsInt4());
    info.kind = t.row[3].is_null() ? RelKind::kHeap
                                   : static_cast<RelKind>(t.row[3].AsInt4());
    rels.emplace(info.oid, info);
  }

  // Current attribute rows grouped by relation.
  std::map<Oid, std::vector<const HeapTuple*>> attrs;
  for (const HeapTuple& t : attr_rows) {
    if (!IsCurrent(t.meta) || t.row[0].is_null()) {
      continue;
    }
    const Oid relid = t.row[0].AsOid();
    if (relid >= kFirstUserOid && rels.find(relid) == rels.end()) {
      Add("attribute-orphan", kPgAttributeOid, t.tid.block,
          "pg_attribute row at " + t.tid.ToString() +
              " references missing relation " + std::to_string(relid));
      continue;
    }
    attrs[relid].push_back(&t);
  }

  // --- every cataloged relation -------------------------------------------
  std::vector<HeapTuple> fileatt_rows;
  std::optional<Schema> fileatt_schema;
  std::vector<std::pair<RelInfo, Oid>> chunk_tables;  // (rel, file oid)
  for (const auto& [oid, info] : rels) {
    BlockStore* store = StoreFor(info.device);
    if (store == nullptr) {
      Add("relation-bad-device", oid, ~0u,
          info.name + " bound to unknown device " + std::to_string(info.device));
      continue;
    }
    if (!store->Exists(oid)) {
      Add("relation-missing", oid, ~0u,
          info.name + " is cataloged but absent from device " +
              std::to_string(info.device));
      continue;
    }
    if (oid >= kFirstUserOid && info.kind != RelKind::kIndex) {
      // Reconstruct the schema from pg_attribute: attnum must be 0..n-1 with
      // valid types.
      auto ait = attrs.find(oid);
      if (ait == attrs.end()) {
        Add("attribute-gap", oid, ~0u, info.name + " has no pg_attribute rows");
        continue;
      }
      std::vector<Column> cols(ait->second.size());
      std::vector<bool> seen(ait->second.size(), false);
      bool schema_ok = true;
      for (const HeapTuple* t : ait->second) {
        const int32_t attnum = t->row[3].is_null() ? -1 : t->row[3].AsInt4();
        const int32_t typid = t->row[2].is_null() ? -1 : t->row[2].AsInt4();
        if (attnum < 0 || static_cast<size_t>(attnum) >= cols.size() ||
            seen[attnum] || !ValidTypeId(typid)) {
          Add("attribute-gap", oid, t->tid.block,
              info.name + " attribute row at " + t->tid.ToString() +
                  " has attnum " + std::to_string(attnum) + " / type " +
                  std::to_string(typid));
          schema_ok = false;
          break;
        }
        seen[attnum] = true;
        cols[attnum] = Column{t->row[1].is_null() ? "" : t->row[1].AsText(),
                              static_cast<TypeId>(typid)};
      }
      if (!schema_ok) {
        continue;
      }
      const Schema schema{cols};
      std::vector<HeapTuple> tuples;
      WalkHeap(store, oid, schema, &tuples);
      ++report_.relations_checked;
      if (info.name == "fileatt") {
        CheckCurrentUnique(oid, tuples, {0});  // file
        fileatt_schema = schema;
        fileatt_rows = std::move(tuples);
        continue;
      }
      if (info.name == "naming") {
        CheckCurrentUnique(oid, tuples, {1, 0});  // (parentid, filename)
        continue;
      }
      if (const Oid file = ParseChunkTableName(info.name); file != kInvalidOid) {
        auto cno = schema.ColumnIndex("chunkno");
        if (cno.ok()) {
          CheckCurrentUnique(oid, tuples, {*cno});
        }
        CheckChunkTable(info, file, tuples, schema);
        chunk_tables.emplace_back(info, file);
      }
    }
  }

  // --- indexes -------------------------------------------------------------
  std::set<Oid> indexed;
  for (const HeapTuple& t : index_rows) {
    if (!IsCurrent(t.meta)) {
      continue;
    }
    const Oid index_oid = t.row[0].is_null() ? kInvalidOid : t.row[0].AsOid();
    const Oid heap_oid = t.row[1].is_null() ? kInvalidOid : t.row[1].AsOid();
    auto iit = rels.find(index_oid);
    if (iit == rels.end() || iit->second.kind != RelKind::kIndex) {
      Add("index-ref", kPgIndexOid, t.tid.block,
          "pg_index row at " + t.tid.ToString() + " names " +
              std::to_string(index_oid) + ", which is not a cataloged index");
      continue;
    }
    auto hit = rels.find(heap_oid);
    if (hit == rels.end() || hit->second.kind == RelKind::kIndex) {
      Add("index-ref", kPgIndexOid, t.tid.block,
          "index " + std::to_string(index_oid) + " is over " +
              std::to_string(heap_oid) + ", which is not a cataloged heap");
      continue;
    }
    indexed.insert(index_oid);
    BlockStore* store = StoreFor(iit->second.device);
    if (store == nullptr || !store->Exists(index_oid)) {
      continue;  // already reported above
    }
    CheckBtree(store, iit->second, heap_oid);
    ++report_.relations_checked;
  }
  for (const auto& [oid, info] : rels) {
    if (info.kind == RelKind::kIndex && indexed.find(oid) == indexed.end()) {
      Add("index-unreferenced", oid, ~0u,
          info.name + " is cataloged as an index but has no pg_index row");
    }
  }

  // --- orphan chunk tables -------------------------------------------------
  // Any version of a fileatt row (current, superseded, or uncommitted) keeps
  // a chunk table referenced; a chunk table no version ever named is an
  // orphan.
  std::set<Oid> known_files;
  if (fileatt_schema) {
    auto file_col = fileatt_schema->ColumnIndex("file");
    if (file_col.ok()) {
      for (const HeapTuple& t : fileatt_rows) {
        if (!t.row[*file_col].is_null()) {
          known_files.insert(t.row[*file_col].AsOid());
        }
      }
    }
  }
  for (const auto& [info, file] : chunk_tables) {
    if (known_files.find(file) == known_files.end()) {
      Add("orphan-chunk-table", info.oid, ~0u,
          info.name + " stores chunks of file " + std::to_string(file) +
              ", which no fileatt row references");
      // A crashed p_creat leaves the chunk table cataloged (its pg_class
      // page flushed) while the fileatt insert never reached disk: garbage
      // for the vacuum cleaner, not corruption.
      report_.violations.back().residue = true;
    }
  }

  // --- physical relations nobody names ------------------------------------
  struct StoreRef {
    BlockStore* store;
    const char* name;
  };
  const StoreRef stores[] = {{disk_, "disk"}, {nvram_, "nvram"},
                             {jukebox_, "jukebox"}};
  for (const StoreRef& s : stores) {
    if (s.store == nullptr) {
      continue;
    }
    for (Oid oid : s.store->ListRelations()) {
      if (named_oids.find(oid) == named_oids.end()) {
        Add("relation-unreferenced", oid, ~0u,
            std::string("relation exists on ") + s.name +
                " but no pg_class version names it");
        // Relations are created on the device the moment DDL runs, but the
        // pg_class insert only reaches disk at commit (or an eviction). A
        // crash in between strands the physical relation with no cataloged
        // trace — vacuum garbage, not corruption.
        report_.violations.back().residue = true;
      }
    }
  }

  return report_;
}

Result<CheckReport> CheckImage(StorageEnv& env) {
  return Checker(env).Run();
}

}  // namespace invfs
