// invfs_check: offline structural verifier (fsck for Inversion images).
//
// Usage: invfs_check <disk-dir> [nvram-dir] [jukebox-dir]
//
// Each argument is a FileBlockStore directory (one rel<oid>.blk file per
// relation) as written by examples that persist a StorageEnv. The image must
// be quiescent — run against a copy if the database is live.
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

#include <cstdio>

#include "src/check/checker.h"

namespace {

invfs::BlockStore* OpenStore(
    const char* dir, std::unique_ptr<invfs::FileBlockStore>* slot) {
  auto store = invfs::FileBlockStore::Open(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "invfs_check: cannot open %s: %s\n", dir,
                 store.status().message().c_str());
    return nullptr;
  }
  *slot = std::move(*store);
  return slot->get();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 4) {
    std::fprintf(stderr,
                 "usage: invfs_check <disk-dir> [nvram-dir] [jukebox-dir]\n");
    return 2;
  }
  std::unique_ptr<invfs::FileBlockStore> disk, nvram, jukebox;
  invfs::BlockStore* disk_store = OpenStore(argv[1], &disk);
  if (disk_store == nullptr) {
    return 2;
  }
  invfs::BlockStore* nvram_store = nullptr;
  invfs::BlockStore* jukebox_store = nullptr;
  if (argc > 2 && (nvram_store = OpenStore(argv[2], &nvram)) == nullptr) {
    return 2;
  }
  if (argc > 3 && (jukebox_store = OpenStore(argv[3], &jukebox)) == nullptr) {
    return 2;
  }

  invfs::Checker checker(disk_store, nvram_store, jukebox_store);
  auto report = checker.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "invfs_check: %s\n", report.status().message().c_str());
    return 2;
  }
  std::fputs(report->ToString().c_str(), stdout);
  return report->ok() ? 0 : 1;
}
