// invfs_check: offline structural verifier (fsck for Inversion images).
//
// Usage: invfs_check [--tolerate-quarantined] [--tolerate-residue]
//                    <disk-dir> [nvram-dir] [jukebox-dir]
//
// Each argument is a FileBlockStore directory (one rel<oid>.blk file per
// relation) as written by examples that persist a StorageEnv. The image must
// be quiescent — run against a copy if the database is live.
//
// --tolerate-quarantined: tolerate violations that are detectable physical
// page damage (bad checksum/magic, unreadable) or fallout confined to those
// pages — i.e. corruption caught and contained by the page-level defenses.
// Used by fault-injection tests that corrupt pages on purpose.
//
// --tolerate-residue: tolerate provably-dead crash residue (uncataloged
// physical relations, index entries past the persisted end of their heap) —
// what a mid-transaction crash legitimately leaves for the vacuum cleaner.
// Use when checking an image recovered from a crash.
//
// Exit 0 when every violation is tolerated by an enabled class (trivially so
// when clean), 1 when violations remain, 2 on usage or I/O error.

#include <cstdio>
#include <cstring>

#include "src/check/checker.h"

namespace {

invfs::BlockStore* OpenStore(
    const char* dir, std::unique_ptr<invfs::FileBlockStore>* slot) {
  auto store = invfs::FileBlockStore::Open(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "invfs_check: cannot open %s: %s\n", dir,
                 store.status().message().c_str());
    return nullptr;
  }
  *slot = std::move(*store);
  return slot->get();
}

}  // namespace

int main(int argc, char** argv) {
  bool tolerate_quarantined = false;
  bool tolerate_residue = false;
  while (argc > 1) {
    if (std::strcmp(argv[1], "--tolerate-quarantined") == 0) {
      tolerate_quarantined = true;
    } else if (std::strcmp(argv[1], "--tolerate-residue") == 0) {
      tolerate_residue = true;
    } else {
      break;
    }
    --argc;
    ++argv;
  }
  if (argc < 2 || argc > 4) {
    std::fprintf(stderr,
                 "usage: invfs_check [--tolerate-quarantined] "
                 "[--tolerate-residue] <disk-dir> [nvram-dir] [jukebox-dir]\n");
    return 2;
  }
  std::unique_ptr<invfs::FileBlockStore> disk, nvram, jukebox;
  invfs::BlockStore* disk_store = OpenStore(argv[1], &disk);
  if (disk_store == nullptr) {
    return 2;
  }
  invfs::BlockStore* nvram_store = nullptr;
  invfs::BlockStore* jukebox_store = nullptr;
  if (argc > 2 && (nvram_store = OpenStore(argv[2], &nvram)) == nullptr) {
    return 2;
  }
  if (argc > 3 && (jukebox_store = OpenStore(argv[3], &jukebox)) == nullptr) {
    return 2;
  }

  invfs::Checker checker(disk_store, nvram_store, jukebox_store);
  auto report = checker.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "invfs_check: %s\n", report.status().message().c_str());
    return 2;
  }
  std::fputs(report->ToString().c_str(), stdout);
  if (report->ok()) {
    return 0;
  }
  bool all_tolerated = true;
  for (const invfs::Violation& v : report->violations) {
    if (!((tolerate_quarantined && v.quarantined) ||
          (tolerate_residue && v.residue))) {
      all_tolerated = false;
      break;
    }
  }
  if (all_tolerated) {
    std::fputs("invfs_check: all violations tolerated\n", stdout);
    return 0;
  }
  return 1;
}
