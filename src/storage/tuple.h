// On-page tuple format with the POSTGRES no-overwrite MVCC header.
//
// Every tuple carries (oid, xmin, xmax): xmin is the transaction that wrote
// this version, xmax the transaction that deleted/replaced it (0 while the
// version is current). Records are never updated in place — a replace marks
// the old version's xmax and appends a new version — which is precisely the
// mechanism that gives Inversion time travel and log-less crash recovery.
//
// Encoding (little-endian, unaligned):
//   u32 oid | u32 xmin | u32 xmax | u16 natts | null bitmap (ceil(natts/8))
//   then per column in schema order:
//     bool: 1 byte;  int4/oid: 4;  int8/float8/timestamp: 8
//     text/bytea: u32 length + bytes
//   null columns contribute no data bytes.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/storage/common.h"
#include "src/storage/value.h"
#include "src/util/status.h"

namespace invfs {

inline constexpr uint32_t kTupleFixedHeader = 14;  // oid + xmin + xmax + natts

struct TupleMeta {
  Oid oid = kInvalidOid;
  TxnId xmin = kInvalidTxn;
  TxnId xmax = kInvalidTxn;
};

// Serialize a row. `row` must match `schema` (same arity, compatible types).
Result<std::vector<std::byte>> EncodeTuple(const Schema& schema, const Row& row,
                                           const TupleMeta& meta);

// Decode all columns of a tuple.
Result<Row> DecodeTuple(const Schema& schema, std::span<const std::byte> tuple);

// Decode a single column without materializing the rest (used on hot paths:
// chunk-number probes and B-tree key extraction).
Result<Value> DecodeColumn(const Schema& schema, std::span<const std::byte> tuple,
                           size_t column);

// Header accessors (no full decode).
TupleMeta GetTupleMeta(std::span<const std::byte> tuple);
void SetTupleXmax(std::span<std::byte> tuple, TxnId xmax);

// Size in bytes a row will occupy once encoded.
Result<uint32_t> EncodedTupleSize(const Schema& schema, const Row& row);

}  // namespace invfs
