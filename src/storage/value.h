// Typed values, column descriptors, and relation schemas.
//
// The type set mirrors what Inversion actually stores: OIDs, integers of both
// widths (file sizes are "longlong" in the paper's fileatt schema), text
// names, byte-string file chunks, and timestamps for time travel.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/storage/common.h"
#include "src/util/status.h"

namespace invfs {

enum class TypeId : uint8_t {
  kBool = 1,
  kInt4 = 2,
  kInt8 = 3,
  kFloat8 = 4,
  kText = 5,
  kBytea = 6,   // variable-length byte string (file chunks)
  kOid = 7,
  kTimestamp = 8,
};

std::string_view TypeName(TypeId t);
Result<TypeId> TypeFromName(std::string_view name);

using Blob = std::vector<std::byte>;

// A single typed value. monostate == SQL NULL.
class Value {
 public:
  Value() = default;  // null
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int4(int32_t v) { return Value(Rep(v)); }
  static Value Int8(int64_t v) { return Value(Rep(v)); }
  static Value Float8(double v) { return Value(Rep(v)); }
  static Value Text(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bytes(Blob v) { return Value(Rep(std::move(v))); }
  static Value MakeOid(Oid v) { return Value(Rep(v)); }
  static Value MakeTimestamp(Timestamp v) { return Value(Rep(TimestampBox{v})); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  bool AsBool() const { return std::get<bool>(rep_); }
  int32_t AsInt4() const { return std::get<int32_t>(rep_); }
  int64_t AsInt8() const { return std::get<int64_t>(rep_); }
  double AsFloat8() const { return std::get<double>(rep_); }
  const std::string& AsText() const { return std::get<std::string>(rep_); }
  const Blob& AsBytes() const { return std::get<Blob>(rep_); }
  Blob&& TakeBytes() { return std::get<Blob>(std::move(rep_)); }
  Oid AsOid() const { return std::get<Oid>(rep_); }
  Timestamp AsTimestamp() const { return std::get<TimestampBox>(rep_).t; }

  // Numeric widening for expression evaluation: any numeric type as double /
  // int64. Returns error for non-numeric values.
  Result<double> ToDouble() const;
  Result<int64_t> ToInt64() const;

  // Dynamic type of the stored representation (null has no type).
  bool HasType(TypeId t) const;

  // Three-way comparison for values of the same type. Nulls sort first.
  // Cross-numeric comparisons are widened.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }

  std::string ToString() const;

 private:
  // Timestamp wrapped so the variant distinguishes it from Oid/int64.
  struct TimestampBox {
    Timestamp t;
    bool operator==(const TimestampBox&) const = default;
  };
  using Rep = std::variant<std::monostate, bool, int32_t, int64_t, double,
                           std::string, Blob, Oid, TimestampBox>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

struct Column {
  std::string name;
  TypeId type;
};

// Relation schema: ordered column list.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> cols) : cols_(cols) {}
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  // Index of a column by name, or error.
  Result<size_t> ColumnIndex(std::string_view name) const;

 private:
  std::vector<Column> cols_;
};

// A decoded row.
using Row = std::vector<Value>;

}  // namespace invfs
