// Core identifier types shared across the storage engine.

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "src/sim/sim_clock.h"

namespace invfs {

// Object identifier: names relations, types, functions, and files. OIDs are
// allocated from a single database-wide counter, exactly as in POSTGRES,
// which is what lets Inversion derive a file's chunk-table name ("inv23114")
// from the file identifier in the naming table.
using Oid = uint32_t;
inline constexpr Oid kInvalidOid = 0;

// Transaction identifier.
using TxnId = uint32_t;
inline constexpr TxnId kInvalidTxn = 0;
// Bootstrap transaction: rows written while creating a database are stamped
// with this xid, which is always considered committed at time zero.
inline constexpr TxnId kBootstrapTxn = 1;

// Commit timestamp, in simulated microseconds (see SimClock).
using Timestamp = SimMicros;
inline constexpr Timestamp kTimestampNow = ~0ULL;  // "as of now" sentinel

// Tuple identifier: physical address of a tuple version within a relation.
struct Tid {
  uint32_t block = 0;
  uint16_t slot = 0;

  auto operator<=>(const Tid&) const = default;
  std::string ToString() const {
    return "(" + std::to_string(block) + "," + std::to_string(slot) + ")";
  }
};

// File-API vocabulary shared by the Inversion sessions, the RPC layer, and
// the NFS baseline client.
enum class OpenMode { kRead, kWrite };  // kWrite implies read
enum class Whence { kSet, kCur, kEnd };

struct TidHash {
  size_t operator()(const Tid& t) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(t.block) << 16) | t.slot);
  }
};

}  // namespace invfs
