#include "src/storage/page.h"

#include <cstring>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/crc32.h"

namespace invfs {

// Header field offsets.
namespace {
constexpr uint32_t kOffMagic = 0;
constexpr uint32_t kOffNslots = 2;
constexpr uint32_t kOffLower = 4;
constexpr uint32_t kOffUpper = 6;
constexpr uint32_t kOffChecksum = 8;
constexpr uint32_t kOffSelfRel = 12;
constexpr uint32_t kOffSelfBlock = 16;

// CRC32C of a frame with the checksum field counted as zero.
uint32_t FrameCrc(const std::byte* p) {
  uint32_t crc = Crc32c(p, kOffChecksum);
  const std::byte zeros[4] = {};
  crc = Crc32c(zeros, sizeof zeros, crc);
  return Crc32c(p + kOffChecksum + 4, kPageSize - kOffChecksum - 4, crc);
}
}  // namespace

void Page::Init(Oid rel, uint32_t block) {
  std::memset(p_, 0, kPageSize);
  PutU16(p_ + kOffMagic, kPageMagic);
  PutU16(p_ + kOffNslots, 0);
  PutU16(p_ + kOffLower, kPageHeaderSize);
  PutU16(p_ + kOffUpper, kPageSize);
  PutU32(p_ + kOffSelfRel, rel);
  PutU32(p_ + kOffSelfBlock, block);
}

bool Page::IsInitialized() const { return GetU16(p_ + kOffMagic) == kPageMagic; }

Status Page::VerifySelfIdent(Oid rel, uint32_t block) const {
  if (!IsInitialized()) {
    return Status::Corruption("page not initialized");
  }
  const Oid self_rel = GetU32(p_ + kOffSelfRel);
  const uint32_t self_block = GetU32(p_ + kOffSelfBlock);
  if (self_rel != rel || self_block != block) {
    return Status::Corruption("self-identification mismatch: page claims rel " +
                              std::to_string(self_rel) + " block " +
                              std::to_string(self_block) + ", expected rel " +
                              std::to_string(rel) + " block " + std::to_string(block));
  }
  return Status::Ok();
}

void Page::UpdateChecksum() { PutU32(p_ + kOffChecksum, FrameCrc(p_)); }

uint32_t Page::StoredChecksum() const { return GetU32(p_ + kOffChecksum); }

Status Page::VerifyChecksum() const {
  const uint32_t stored = StoredChecksum();
  if (stored == 0) {
    return Status::Ok();  // never stamped
  }
  const uint32_t actual = FrameCrc(p_);
  if (actual != stored) {
    return Status::Corruption("page checksum mismatch: stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(actual));
  }
  return Status::Ok();
}

uint16_t Page::num_slots() const { return GetU16(p_ + kOffNslots); }
uint16_t Page::Lower() const { return GetU16(p_ + kOffLower); }
uint16_t Page::Upper() const { return GetU16(p_ + kOffUpper); }
void Page::SetLower(uint16_t v) { PutU16(p_ + kOffLower, v); }
void Page::SetUpper(uint16_t v) { PutU16(p_ + kOffUpper, v); }

std::pair<uint16_t, uint16_t> Page::Lp(uint16_t slot) const {
  const std::byte* lp = p_ + kPageHeaderSize + static_cast<uint32_t>(slot) * kLinePointerSize;
  return {GetU16(lp), GetU16(lp + 2)};
}

void Page::SetLp(uint16_t slot, uint16_t off, uint16_t len) {
  std::byte* lp = p_ + kPageHeaderSize + static_cast<uint32_t>(slot) * kLinePointerSize;
  PutU16(lp, off);
  PutU16(lp + 2, len);
}

uint32_t Page::FreeSpace() const {
  const uint32_t lower = Lower();
  const uint32_t upper = Upper();
  const uint32_t gap = upper > lower ? upper - lower : 0;
  return gap > kLinePointerSize ? gap - kLinePointerSize : 0;
}

Result<uint16_t> Page::AddTuple(std::span<const std::byte> tuple) {
  const uint32_t need = static_cast<uint32_t>(tuple.size());
  if (need == 0 || need > kPageSize) {
    return Status::InvalidArgument("tuple size out of range");
  }
  if (FreeSpace() < need) {
    return Status::ResourceExhausted("page full");
  }
  const uint16_t slot = num_slots();
  const uint16_t new_upper = static_cast<uint16_t>(Upper() - need);
  std::memcpy(p_ + new_upper, tuple.data(), need);
  SetLp(slot, new_upper, static_cast<uint16_t>(need));
  SetUpper(new_upper);
  SetLower(static_cast<uint16_t>(Lower() + kLinePointerSize));
  PutU16(p_ + kOffNslots, static_cast<uint16_t>(slot + 1));
  return slot;
}

Result<std::span<const std::byte>> Page::GetTuple(uint16_t slot) const {
  if (slot >= num_slots()) {
    return Status::InvalidArgument("slot out of range");
  }
  auto [off, len] = Lp(slot);
  if (len == 0) {
    return std::span<const std::byte>();  // dead
  }
  return std::span<const std::byte>(p_ + off, len);
}

Result<std::span<std::byte>> Page::GetMutableTuple(uint16_t slot) {
  if (slot >= num_slots()) {
    return Status::InvalidArgument("slot out of range");
  }
  auto [off, len] = Lp(slot);
  if (len == 0) {
    return std::span<std::byte>();
  }
  return std::span<std::byte>(p_ + off, len);
}

Status Page::KillSlot(uint16_t slot) {
  if (slot >= num_slots()) {
    return Status::InvalidArgument("slot out of range");
  }
  auto [off, len] = Lp(slot);
  SetLp(slot, off, 0);
  return Status::Ok();
}

void Page::Compact() {
  const uint16_t n = num_slots();
  // Collect surviving tuples, rewrite tuple space from the top down.
  std::vector<std::vector<std::byte>> live(n);
  for (uint16_t s = 0; s < n; ++s) {
    auto [off, len] = Lp(s);
    if (len != 0) {
      live[s].assign(p_ + off, p_ + off + len);
    }
  }
  uint16_t upper = kPageSize;
  for (uint16_t s = 0; s < n; ++s) {
    if (live[s].empty()) {
      SetLp(s, 0, 0);
      continue;
    }
    upper = static_cast<uint16_t>(upper - live[s].size());
    std::memcpy(p_ + upper, live[s].data(), live[s].size());
    SetLp(s, upper, static_cast<uint16_t>(live[s].size()));
  }
  SetUpper(upper);
}

}  // namespace invfs
