#include "src/storage/tuple.h"

#include <cstring>
#include <functional>

#include "src/util/bytes.h"

namespace invfs {
namespace {

bool IsVarlen(TypeId t) { return t == TypeId::kText || t == TypeId::kBytea; }

uint32_t FixedWidth(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt4:
    case TypeId::kOid:
      return 4;
    case TypeId::kInt8:
    case TypeId::kFloat8:
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kText:
    case TypeId::kBytea:
      return 0;
  }
  return 0;
}

Status CheckRow(const Schema& schema, const Row& row) {
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(schema.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && !row[i].HasType(schema.column(i).type)) {
      return Status::InvalidArgument("column " + schema.column(i).name +
                                     " type mismatch: got " + row[i].ToString());
    }
  }
  return Status::Ok();
}

uint32_t ValueDataSize(TypeId t, const Value& v) {
  if (v.is_null()) {
    return 0;
  }
  if (t == TypeId::kText) {
    return 4 + static_cast<uint32_t>(v.AsText().size());
  }
  if (t == TypeId::kBytea) {
    return 4 + static_cast<uint32_t>(v.AsBytes().size());
  }
  return FixedWidth(t);
}

}  // namespace

Result<uint32_t> EncodedTupleSize(const Schema& schema, const Row& row) {
  INV_RETURN_IF_ERROR(CheckRow(schema, row));
  uint32_t size = kTupleFixedHeader + (static_cast<uint32_t>(row.size()) + 7) / 8;
  for (size_t i = 0; i < row.size(); ++i) {
    size += ValueDataSize(schema.column(i).type, row[i]);
  }
  return size;
}

Result<std::vector<std::byte>> EncodeTuple(const Schema& schema, const Row& row,
                                           const TupleMeta& meta) {
  INV_ASSIGN_OR_RETURN(uint32_t size, EncodedTupleSize(schema, row));
  std::vector<std::byte> out(size);
  std::byte* p = out.data();
  PutU32(p, meta.oid);
  PutU32(p + 4, meta.xmin);
  PutU32(p + 8, meta.xmax);
  PutU16(p + 12, static_cast<uint16_t>(row.size()));
  std::byte* bitmap = p + kTupleFixedHeader;
  const uint32_t bitmap_bytes = (static_cast<uint32_t>(row.size()) + 7) / 8;
  std::memset(bitmap, 0, bitmap_bytes);
  std::byte* d = bitmap + bitmap_bytes;
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      bitmap[i / 8] |= std::byte{static_cast<uint8_t>(1u << (i % 8))};
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kBool:
        *d++ = std::byte{static_cast<uint8_t>(v.AsBool() ? 1 : 0)};
        break;
      case TypeId::kInt4:
        PutU32(d, static_cast<uint32_t>(v.AsInt4()));
        d += 4;
        break;
      case TypeId::kOid:
        PutU32(d, v.AsOid());
        d += 4;
        break;
      case TypeId::kInt8:
        PutU64(d, static_cast<uint64_t>(v.AsInt8()));
        d += 8;
        break;
      case TypeId::kTimestamp:
        PutU64(d, v.AsTimestamp());
        d += 8;
        break;
      case TypeId::kFloat8: {
        double f = v.AsFloat8();
        uint64_t bits;
        std::memcpy(&bits, &f, 8);
        PutU64(d, bits);
        d += 8;
        break;
      }
      case TypeId::kText: {
        const std::string& s = v.AsText();
        PutU32(d, static_cast<uint32_t>(s.size()));
        std::memcpy(d + 4, s.data(), s.size());
        d += 4 + s.size();
        break;
      }
      case TypeId::kBytea: {
        const Blob& b = v.AsBytes();
        PutU32(d, static_cast<uint32_t>(b.size()));
        if (!b.empty()) {
          std::memcpy(d + 4, b.data(), b.size());
        }
        d += 4 + b.size();
        break;
      }
    }
  }
  INV_CHECK(d == out.data() + out.size());
  return out;
}

namespace {

// Walks the encoded columns; invokes `sink(i, span_of_data)` for non-null
// columns in order, stopping after `stop_after` (inclusive).
Status WalkColumns(const Schema& schema, std::span<const std::byte> tuple,
                   size_t stop_after,
                   const std::function<void(size_t, const std::byte*, uint32_t)>& sink) {
  if (tuple.size() < kTupleFixedHeader) {
    return Status::Corruption("tuple shorter than header");
  }
  const uint16_t natts = GetU16(tuple.data() + 12);
  if (natts != schema.num_columns()) {
    return Status::Corruption("tuple natts mismatch");
  }
  const uint32_t bitmap_bytes = (static_cast<uint32_t>(natts) + 7) / 8;
  if (tuple.size() < kTupleFixedHeader + bitmap_bytes) {
    return Status::Corruption("tuple shorter than null bitmap");
  }
  const std::byte* bitmap = tuple.data() + kTupleFixedHeader;
  const std::byte* d = bitmap + bitmap_bytes;
  const std::byte* end = tuple.data() + tuple.size();
  for (size_t i = 0; i < natts; ++i) {
    const bool is_null =
        (static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1;
    if (is_null) {
      sink(i, nullptr, 0);
    } else {
      const TypeId t = schema.column(i).type;
      // 64-bit length: a corrupted varlena header of ~4 billion must not wrap
      // to a small value and sneak past the bounds check. Compare against the
      // remaining bytes instead of forming d + len, which could itself
      // overflow past the buffer end (UB).
      uint64_t len;
      if (IsVarlen(t)) {
        if (static_cast<size_t>(end - d) < 4) {
          return Status::Corruption("tuple varlena header past end");
        }
        len = 4ULL + GetU32(d);
      } else {
        len = FixedWidth(t);
      }
      if (static_cast<uint64_t>(end - d) < len) {
        return Status::Corruption("tuple data past end");
      }
      sink(i, d, static_cast<uint32_t>(len));
      d += len;
    }
    if (i == stop_after) {
      break;
    }
  }
  return Status::Ok();
}

Value DecodeOne(TypeId t, const std::byte* d, uint32_t len) {
  switch (t) {
    case TypeId::kBool:
      return Value::Bool(static_cast<uint8_t>(*d) != 0);
    case TypeId::kInt4:
      return Value::Int4(static_cast<int32_t>(GetU32(d)));
    case TypeId::kOid:
      return Value::MakeOid(GetU32(d));
    case TypeId::kInt8:
      return Value::Int8(static_cast<int64_t>(GetU64(d)));
    case TypeId::kTimestamp:
      return Value::MakeTimestamp(GetU64(d));
    case TypeId::kFloat8: {
      uint64_t bits = GetU64(d);
      double f;
      std::memcpy(&f, &bits, 8);
      return Value::Float8(f);
    }
    case TypeId::kText: {
      const uint32_t n = GetU32(d);
      return Value::Text(std::string(reinterpret_cast<const char*>(d + 4), n));
    }
    case TypeId::kBytea: {
      const uint32_t n = GetU32(d);
      Blob b(d + 4, d + 4 + n);
      return Value::Bytes(std::move(b));
    }
  }
  (void)len;
  return Value::Null();
}

}  // namespace

Result<Row> DecodeTuple(const Schema& schema, std::span<const std::byte> tuple) {
  Row row(schema.num_columns());
  INV_RETURN_IF_ERROR(WalkColumns(
      schema, tuple, schema.num_columns(),
      [&](size_t i, const std::byte* d, uint32_t len) {
        row[i] = d == nullptr ? Value::Null() : DecodeOne(schema.column(i).type, d, len);
      }));
  return row;
}

Result<Value> DecodeColumn(const Schema& schema, std::span<const std::byte> tuple,
                           size_t column) {
  if (column >= schema.num_columns()) {
    return Status::InvalidArgument("column index out of range");
  }
  Value out;
  INV_RETURN_IF_ERROR(
      WalkColumns(schema, tuple, column, [&](size_t i, const std::byte* d, uint32_t len) {
        if (i == column && d != nullptr) {
          out = DecodeOne(schema.column(i).type, d, len);
        }
      }));
  return out;
}

TupleMeta GetTupleMeta(std::span<const std::byte> tuple) {
  TupleMeta m;
  m.oid = GetU32(tuple.data());
  m.xmin = GetU32(tuple.data() + 4);
  m.xmax = GetU32(tuple.data() + 8);
  return m;
}

void SetTupleXmax(std::span<std::byte> tuple, TxnId xmax) {
  PutU32(tuple.data() + 8, xmax);
}

}  // namespace invfs
