// Slotted 8 KB page, the unit of storage for every relation (heap and B-tree).
//
// Layout:
//   [0..24)   header: magic, nslots, lower, upper, checksum, self-ident
//   [24..lower)  line pointer array, 4 bytes per slot (offset, length)
//   [upper..8192) tuple data, grown downward
//
// The self-identification fields (owning relation oid + block number) realize
// the paper's proposal that "every block could be tagged with its file
// identifier and block number" to detect media corruption; VerifySelfIdent
// checks them on every buffered read.
//
// The checksum field is a CRC32C over the whole frame (with the field itself
// zeroed). The buffer pool stamps it immediately before a frame reaches a
// device and verifies it on every read back, so any content corruption on
// stable storage — not just mistagged blocks — is detected. A stored value of
// zero means "never stamped" (the page has only ever lived in memory) and is
// not verified.

#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "src/sim/cost_params.h"
#include "src/storage/common.h"
#include "src/util/status.h"

namespace invfs {

inline constexpr uint16_t kPageMagic = 0x1F5A;
inline constexpr uint32_t kPageHeaderSize = 24;
inline constexpr uint32_t kLinePointerSize = 4;

// A non-owning view over one 8 KB frame. The frame itself lives in the buffer
// pool (or in a caller-provided scratch buffer).
class Page {
 public:
  explicit Page(std::byte* frame) : p_(frame) {}

  // Format an empty page owned by (rel, block).
  void Init(Oid rel, uint32_t block);

  bool IsInitialized() const;
  Status VerifySelfIdent(Oid rel, uint32_t block) const;

  // Stamp the CRC32C of the frame into the header (device write path).
  void UpdateChecksum();
  // Recompute and compare against the stored CRC. A stored CRC of zero means
  // the page was never checksummed and passes vacuously.
  Status VerifyChecksum() const;
  uint32_t StoredChecksum() const;

  uint16_t num_slots() const;
  // Free bytes available for one more tuple (including its line pointer).
  uint32_t FreeSpace() const;

  // Append a tuple; returns its slot, or ResourceExhausted if it cannot fit.
  Result<uint16_t> AddTuple(std::span<const std::byte> tuple);

  // Tuple bytes at `slot`; empty span if the slot is dead. InvalidArgument if
  // the slot is out of range.
  Result<std::span<const std::byte>> GetTuple(uint16_t slot) const;
  Result<std::span<std::byte>> GetMutableTuple(uint16_t slot);

  // Mark a slot dead. Space is reclaimed by Compact (vacuum).
  Status KillSlot(uint16_t slot);

  // Reclaim space of dead slots. Slot numbers of surviving tuples are
  // preserved (dead line pointers remain, pointing nowhere) so that TIDs held
  // by indices stay valid until the index is rebuilt.
  void Compact();

  // Raw frame access for checksumming and device I/O.
  std::byte* frame() { return p_; }
  const std::byte* frame() const { return p_; }

 private:
  uint16_t Lower() const;
  uint16_t Upper() const;
  void SetLower(uint16_t v);
  void SetUpper(uint16_t v);
  // Line pointer accessors. offset==0 && len==0 -> never used; len==0 with
  // offset!=0 -> dead.
  std::pair<uint16_t, uint16_t> Lp(uint16_t slot) const;
  void SetLp(uint16_t slot, uint16_t off, uint16_t len);

  std::byte* p_;
};

}  // namespace invfs
