#include "src/storage/value.h"

#include <cstring>

namespace invfs {

std::string_view TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt4:
      return "int4";
    case TypeId::kInt8:
      return "int8";
    case TypeId::kFloat8:
      return "float8";
    case TypeId::kText:
      return "text";
    case TypeId::kBytea:
      return "bytea";
    case TypeId::kOid:
      return "oid";
    case TypeId::kTimestamp:
      return "timestamp";
  }
  return "?";
}

Result<TypeId> TypeFromName(std::string_view name) {
  for (TypeId t : {TypeId::kBool, TypeId::kInt4, TypeId::kInt8, TypeId::kFloat8,
                   TypeId::kText, TypeId::kBytea, TypeId::kOid, TypeId::kTimestamp}) {
    if (TypeName(t) == name) {
      return t;
    }
  }
  // POSTQUEL aliases used in the paper's schemas.
  if (name == "char[]" || name == "charn") {
    return TypeId::kText;
  }
  if (name == "object_id") {
    return TypeId::kOid;
  }
  if (name == "longlong") {
    return TypeId::kInt8;
  }
  if (name == "time") {
    return TypeId::kTimestamp;
  }
  return Status::NotFound("unknown type: " + std::string(name));
}

Result<double> Value::ToDouble() const {
  if (auto* v = std::get_if<int32_t>(&rep_)) {
    return static_cast<double>(*v);
  }
  if (auto* v = std::get_if<int64_t>(&rep_)) {
    return static_cast<double>(*v);
  }
  if (auto* v = std::get_if<double>(&rep_)) {
    return *v;
  }
  if (auto* v = std::get_if<Oid>(&rep_)) {
    return static_cast<double>(*v);
  }
  if (auto* v = std::get_if<TimestampBox>(&rep_)) {
    return static_cast<double>(v->t);
  }
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

Result<int64_t> Value::ToInt64() const {
  if (auto* v = std::get_if<int32_t>(&rep_)) {
    return static_cast<int64_t>(*v);
  }
  if (auto* v = std::get_if<int64_t>(&rep_)) {
    return *v;
  }
  if (auto* v = std::get_if<double>(&rep_)) {
    return static_cast<int64_t>(*v);
  }
  if (auto* v = std::get_if<Oid>(&rep_)) {
    return static_cast<int64_t>(*v);
  }
  if (auto* v = std::get_if<TimestampBox>(&rep_)) {
    return static_cast<int64_t>(v->t);
  }
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

bool Value::HasType(TypeId t) const {
  switch (t) {
    case TypeId::kBool:
      return std::holds_alternative<bool>(rep_);
    case TypeId::kInt4:
      return std::holds_alternative<int32_t>(rep_);
    case TypeId::kInt8:
      return std::holds_alternative<int64_t>(rep_);
    case TypeId::kFloat8:
      return std::holds_alternative<double>(rep_);
    case TypeId::kText:
      return std::holds_alternative<std::string>(rep_);
    case TypeId::kBytea:
      return std::holds_alternative<Blob>(rep_);
    case TypeId::kOid:
      return std::holds_alternative<Oid>(rep_);
    case TypeId::kTimestamp:
      return std::holds_alternative<TimestampBox>(rep_);
  }
  return false;
}

namespace {
int Cmp3(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Cmp3(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) {
      return 0;
    }
    return is_null() ? -1 : 1;
  }
  // Same-representation fast paths for non-numeric types.
  if (auto* a = std::get_if<std::string>(&rep_)) {
    const auto& b = std::get<std::string>(other.rep_);
    return a->compare(b) < 0 ? -1 : (*a == b ? 0 : 1);
  }
  if (auto* a = std::get_if<Blob>(&rep_)) {
    const auto& b = std::get<Blob>(other.rep_);
    const size_t n = std::min(a->size(), b.size());
    int c = n == 0 ? 0 : std::memcmp(a->data(), b.data(), n);
    if (c != 0) {
      return c < 0 ? -1 : 1;
    }
    return Cmp3(static_cast<int64_t>(a->size()), static_cast<int64_t>(b.size()));
  }
  if (auto* a = std::get_if<bool>(&rep_)) {
    bool b = std::get<bool>(other.rep_);
    return Cmp3(static_cast<int64_t>(*a), static_cast<int64_t>(b));
  }
  // Numeric (possibly cross-width) comparison. Integers compare exactly;
  // mixed with float compares as double.
  const bool lf = std::holds_alternative<double>(rep_);
  const bool rf = std::holds_alternative<double>(other.rep_);
  if (lf || rf) {
    auto a = ToDouble();
    auto b = other.ToDouble();
    INV_CHECK(a.ok() && b.ok());
    return Cmp3(*a, *b);
  }
  auto a = ToInt64();
  auto b = other.ToInt64();
  INV_CHECK(a.ok() && b.ok());
  return Cmp3(*a, *b);
}

std::string Value::ToString() const {
  if (is_null()) {
    return "null";
  }
  if (auto* v = std::get_if<bool>(&rep_)) {
    return *v ? "true" : "false";
  }
  if (auto* v = std::get_if<int32_t>(&rep_)) {
    return std::to_string(*v);
  }
  if (auto* v = std::get_if<int64_t>(&rep_)) {
    return std::to_string(*v);
  }
  if (auto* v = std::get_if<double>(&rep_)) {
    return std::to_string(*v);
  }
  if (auto* v = std::get_if<std::string>(&rep_)) {
    return "\"" + *v + "\"";
  }
  if (auto* v = std::get_if<Blob>(&rep_)) {
    return "<bytea " + std::to_string(v->size()) + "B>";
  }
  if (auto* v = std::get_if<Oid>(&rep_)) {
    return std::to_string(*v);
  }
  if (auto* v = std::get_if<TimestampBox>(&rep_)) {
    return "@" + std::to_string(v->t);
  }
  return "?";
}

Result<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) {
      return i;
    }
  }
  return Status::NotFound("no column named " + std::string(name));
}

}  // namespace invfs
