#include "src/harness/worlds.h"

namespace invfs {
namespace {

// ------------------------------------------------- Inversion, single process

class LocalInversionApi final : public FileApi {
 public:
  explicit LocalInversionApi(InversionWorld* world, InvSession* session,
                             Database* db)
      : world_(world), session_(session), db_(db) {
    (void)world_;
  }

  std::string_view name() const override { return "inversion-single-process"; }
  Status Begin() override { return session_->p_begin(); }
  Status Commit() override { return session_->p_commit(); }
  Result<int> Creat(const std::string& path) override {
    return session_->p_creat(path);
  }
  Result<int> Open(const std::string& path, bool writable) override {
    return session_->p_open(path, writable ? OpenMode::kWrite : OpenMode::kRead);
  }
  Status Close(int fd) override { return session_->p_close(fd); }
  Result<int64_t> Read(int fd, std::span<std::byte> buf) override {
    return session_->p_read(fd, buf);
  }
  Result<int64_t> Write(int fd, std::span<const std::byte> buf) override {
    return session_->p_write(fd, buf);
  }
  Result<int64_t> Seek(int fd, int64_t offset, Whence whence) override {
    return session_->p_lseek(fd, offset, whence);
  }
  int64_t PreferredPageSize() const override { return kInvChunkSize; }
  Status FlushCaches() override { return db_->FlushCaches(); }

 private:
  InversionWorld* world_;
  InvSession* session_;
  Database* db_;
};

// --------------------------------------------------- Inversion, client/server

class RemoteInversionApi final : public FileApi {
 public:
  RemoteInversionApi(RemoteFileClient* client, Database* db)
      : client_(client), db_(db) {}

  std::string_view name() const override { return "inversion-client-server"; }
  Status Begin() override { return client_->p_begin(); }
  Status Commit() override { return client_->p_commit(); }
  Result<int> Creat(const std::string& path) override {
    return client_->p_creat(path);
  }
  Result<int> Open(const std::string& path, bool writable) override {
    return client_->p_open(path, writable ? OpenMode::kWrite : OpenMode::kRead);
  }
  Status Close(int fd) override { return client_->p_close(fd); }
  Result<int64_t> Read(int fd, std::span<std::byte> buf) override {
    return client_->p_read(fd, buf);
  }
  Result<int64_t> Write(int fd, std::span<const std::byte> buf) override {
    return client_->p_write(fd, buf);
  }
  Result<int64_t> Seek(int fd, int64_t offset, Whence whence) override {
    return client_->p_lseek(fd, offset, whence);
  }
  int64_t PreferredPageSize() const override { return kInvChunkSize; }
  Status FlushCaches() override { return db_->FlushCaches(); }

 private:
  RemoteFileClient* client_;
  Database* db_;
};

// ------------------------------------------------------------------ NFS

class NfsFileApi final : public FileApi {
 public:
  NfsFileApi(NfsClient* client, NfsServer* server)
      : client_(client), server_(server) {}

  std::string_view name() const override { return "ultrix-nfs"; }
  Status Begin() override { return Status::Ok(); }   // every NFS op is atomic
  Status Commit() override { return Status::Ok(); }
  Result<int> Creat(const std::string& path) override { return client_->Creat(path); }
  Result<int> Open(const std::string& path, bool writable) override {
    return client_->Open(path, writable);
  }
  Status Close(int fd) override { return client_->Close(fd); }
  Result<int64_t> Read(int fd, std::span<std::byte> buf) override {
    return client_->Read(fd, buf);
  }
  Result<int64_t> Write(int fd, std::span<const std::byte> buf) override {
    return client_->Write(fd, buf);
  }
  Result<int64_t> Seek(int fd, int64_t offset, Whence whence) override {
    return client_->Seek(fd, offset, whence);
  }
  int64_t PreferredPageSize() const override { return kPageSize; }
  Status FlushCaches() override { return server_->FlushCaches(); }

 private:
  NfsClient* client_;
  NfsServer* server_;
};

}  // namespace

Result<std::unique_ptr<InversionWorld>> InversionWorld::Create(WorldOptions options) {
  auto world = std::unique_ptr<InversionWorld>(new InversionWorld());
  INV_ASSIGN_OR_RETURN(world->db_, Database::Open(&world->env_, options.db));
  world->fs_ = std::make_unique<InversionFs>(world->db_.get(), options.inv);
  INV_RETURN_IF_ERROR(world->fs_->Mount());
  INV_ASSIGN_OR_RETURN(world->session_, world->fs_->NewSession());
  world->server_ = std::make_unique<InversionServer>(world->fs_.get());
  world->net_ =
      std::make_unique<NetModel>(&world->env_.clock, options.inversion_net);
  world->transport_ = std::make_unique<LoopbackTransport>(world->server_.get(),
                                                          world->net_.get());
  RpcClientOptions client_options;
  client_options.clock = &world->env_.clock;
  client_options.metrics = &world->db_->metrics();
  world->client_ =
      std::make_unique<RemoteFileClient>(world->transport_.get(), client_options);
  world->local_api_ = std::make_unique<LocalInversionApi>(
      world.get(), world->session_.get(), world->db_.get());
  world->remote_api_ =
      std::make_unique<RemoteInversionApi>(world->client_.get(), world->db_.get());
  return world;
}

Result<CheckReport> InversionWorld::VerifyImage() {
  INV_RETURN_IF_ERROR(db_->FlushCaches());
  return CheckImage(env_);
}

Result<std::unique_ptr<NfsWorld>> NfsWorld::Create(WorldOptions options) {
  auto world = std::unique_ptr<NfsWorld>(new NfsWorld());
  world->ffs_ = std::make_unique<FfsSim>(&world->clock_, options.db.disk,
                                         options.ffs_cache_pages);
  world->server_ = std::make_unique<NfsServer>(&world->clock_, world->ffs_.get(),
                                               options.nfs);
  world->net_ = std::make_unique<NetModel>(&world->clock_, options.nfs_net);
  world->client_ =
      std::make_unique<NfsClient>(world->server_.get(), world->net_.get());
  world->api_ =
      std::make_unique<NfsFileApi>(world->client_.get(), world->server_.get());
  return world;
}

}  // namespace invfs
