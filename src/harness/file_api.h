// FileApi: the uniform byte-stream interface the benchmark harness drives.
//
// Three implementations reproduce the paper's three configurations:
//   * LocalInversionApi  — Inversion called in the data manager's address
//     space (the paper's "single process" / user-defined-function mode);
//   * RemoteInversionApi — Inversion through the marshalled TCP protocol
//     (the paper's client/server mode);
//   * NfsApi             — ULTRIX NFS with PRESTOserve (the baseline).

#pragma once

#include <span>
#include <string>
#include <string_view>

#include "src/storage/common.h"
#include "src/util/status.h"

namespace invfs {

class FileApi {
 public:
  virtual ~FileApi() = default;

  virtual std::string_view name() const = 0;

  // Transaction brackets. NFS has no transactions ("the NFS protocol makes
  // every operation an atomic transaction"): no-ops there.
  virtual Status Begin() = 0;
  virtual Status Commit() = 0;

  virtual Result<int> Creat(const std::string& path) = 0;
  virtual Result<int> Open(const std::string& path, bool writable) = 0;
  virtual Status Close(int fd) = 0;
  virtual Result<int64_t> Read(int fd, std::span<std::byte> buf) = 0;
  virtual Result<int64_t> Write(int fd, std::span<const std::byte> buf) = 0;
  virtual Result<int64_t> Seek(int fd, int64_t offset, Whence whence) = 0;

  // "The page size was chosen to be efficient for the file system under
  // test": chunk size for Inversion, 8 KB for NFS.
  virtual int64_t PreferredPageSize() const = 0;

  // "All caches were flushed before each test."
  virtual Status FlushCaches() = 0;
};

}  // namespace invfs
