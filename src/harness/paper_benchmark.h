// The paper's benchmark (Performance section):
//   * Create a 25 MByte file.
//   * Measure the latency to read or write a single byte at a random
//     location in the file.
//   * Read 1 MByte in a single large transfer.
//   * Read 1 MByte sequentially in page-sized units.
//   * Read 1 MByte in page-sized units distributed at random.
//   * Repeat the 1 MByte transfer tests, writing instead of reading.
//   All caches are flushed before each test.
//
// Elapsed times are simulated seconds (SimClock deltas), deterministic across
// runs. `scale` shrinks the workload proportionally for quick CI runs while
// preserving every ratio the paper reports.

#pragma once

#include <cstdint>
#include <string>

#include "src/harness/file_api.h"
#include "src/sim/sim_clock.h"

namespace invfs {

struct PaperBenchResult {
  double create_file_s = 0;
  double read_1mb_single_s = 0;
  double read_1mb_seq_pages_s = 0;
  double read_1mb_rand_pages_s = 0;
  double write_1mb_single_s = 0;
  double write_1mb_seq_pages_s = 0;
  double write_1mb_rand_pages_s = 0;
  double read_single_byte_s = 0;
  double write_single_byte_s = 0;
};

struct PaperBenchParams {
  int64_t file_bytes = 25LL << 20;    // the 25 MB benchmark file
  int64_t transfer_bytes = 1LL << 20; // the 1 MB transfer tests
  uint64_t seed = 19930425;           // random-offset workload seed
  bool use_transactions = true;       // wrap each test in Begin/Commit
};

// Runs the full nine-test suite against `api`, timing with `clock`.
Result<PaperBenchResult> RunPaperBenchmark(FileApi& api, SimClock& clock,
                                           const PaperBenchParams& params = {});

// Formats one configuration's results as the rows of Table 3.
std::string FormatResultColumn(const PaperBenchResult& r);

}  // namespace invfs
