// Self-contained benchmark "worlds": each bundles the storage, simulation
// clock, and client stack for one configuration of the paper's evaluation.

#pragma once

#include <memory>

#include "src/check/checker.h"
#include "src/harness/file_api.h"
#include "src/inversion/inv_fs.h"
#include "src/net/rpc.h"
#include "src/nfs/nfs.h"

namespace invfs {

struct WorldOptions {
  WorldOptions() {
    // The systems the paper measured ran Berkeley's local configuration of
    // 300 buffers, not the as-shipped 64. This is load-bearing for the
    // benchmark shape: the 1 MB transfer tests fit entirely in a 300-page
    // pool (one sorted flush at commit), while the 25 MB create thrashes it
    // (interleaved evictions, Figure 3's seek penalty).
    db.buffers = kBerkeleyBuffers;
  }

  DatabaseOptions db{};            // buffer pool size, disk params, CPU costs
  InvOptions inv{};                // coalescing, chunk index, atime
  NetParams inversion_net{};       // the heavyweight TCP protocol
  NfsServerOptions nfs{};          // PRESTOserve configuration
  NetParams nfs_net = NfsNetParams();
  size_t ffs_cache_pages = 300;    // ULTRIX server buffer cache
};

// Inversion configuration: one database, with both the in-process ("single
// process") and marshalled-RPC ("client/server") access paths.
class InversionWorld {
 public:
  static Result<std::unique_ptr<InversionWorld>> Create(WorldOptions options = {});

  FileApi& local_api() { return *local_api_; }
  FileApi& remote_api() { return *remote_api_; }
  SimClock& clock() { return env_.clock; }
  InversionFs& fs() { return *fs_; }
  Database& db() { return *db_; }
  InvSession& session() { return *session_; }
  StorageEnv& env() { return env_; }

  // Flush every dirty page, then run the offline structural verifier over the
  // stable image. Benchmarks and tests use this as a post-condition: the
  // workload may do anything, but the image it leaves must be sound.
  Result<CheckReport> VerifyImage();

 private:
  InversionWorld() = default;

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> session_;
  std::unique_ptr<InversionServer> server_;
  std::unique_ptr<NetModel> net_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<RemoteFileClient> client_;
  std::unique_ptr<FileApi> local_api_;
  std::unique_ptr<FileApi> remote_api_;
};

// ULTRIX NFS configuration.
class NfsWorld {
 public:
  static Result<std::unique_ptr<NfsWorld>> Create(WorldOptions options = {});

  FileApi& api() { return *api_; }
  SimClock& clock() { return clock_; }
  NfsServer& server() { return *server_; }
  FfsSim& ffs() { return *ffs_; }

 private:
  NfsWorld() = default;

  SimClock clock_;
  std::unique_ptr<FfsSim> ffs_;
  std::unique_ptr<NfsServer> server_;
  std::unique_ptr<NetModel> net_;
  std::unique_ptr<NfsClient> client_;
  std::unique_ptr<FileApi> api_;
};

}  // namespace invfs
