#include "src/harness/paper_benchmark.h"

#include <algorithm>
#include <vector>

#include "src/util/random.h"

namespace invfs {
namespace {

constexpr char kBenchFile[] = "/bench25mb.dat";

// Deterministic payload so verification is possible in tests.
std::vector<std::byte> MakePayload(size_t n, uint64_t seed) {
  std::vector<std::byte> out(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; i += 8) {
    const uint64_t v = rng.Next();
    for (size_t j = 0; j < 8 && i + j < n; ++j) {
      out[i + j] = static_cast<std::byte>((v >> (8 * j)) & 0xFF);
    }
  }
  return out;
}

struct Timer {
  SimClock& clock;
  SimMicros start;
  explicit Timer(SimClock& c) : clock(c), start(c.Peek()) {}
  double Elapsed() const { return clock.SecondsSince(start); }
};

}  // namespace

Result<PaperBenchResult> RunPaperBenchmark(FileApi& api, SimClock& clock,
                                           const PaperBenchParams& params) {
  PaperBenchResult result;
  Rng rng(params.seed);
  const int64_t page = api.PreferredPageSize();
  const int64_t file_bytes = params.file_bytes;
  const int64_t xfer = std::min(params.transfer_bytes, file_bytes);

  auto begin = [&]() -> Status {
    return params.use_transactions ? api.Begin() : Status::Ok();
  };
  auto commit = [&]() -> Status {
    return params.use_transactions ? api.Commit() : Status::Ok();
  };

  // ---- Test 1: create the file (sequential page-sized writes) --------------
  {
    INV_RETURN_IF_ERROR(api.FlushCaches());
    const std::vector<std::byte> payload =
        MakePayload(static_cast<size_t>(page), params.seed);
    Timer t(clock);
    INV_RETURN_IF_ERROR(begin());
    INV_ASSIGN_OR_RETURN(int fd, api.Creat(kBenchFile));
    int64_t written = 0;
    while (written < file_bytes) {
      const int64_t n = std::min<int64_t>(page, file_bytes - written);
      INV_RETURN_IF_ERROR(
          api.Write(fd, std::span(payload.data(), static_cast<size_t>(n))).status());
      written += n;
    }
    INV_RETURN_IF_ERROR(api.Close(fd));
    INV_RETURN_IF_ERROR(commit());
    result.create_file_s = t.Elapsed();
  }

  auto timed_io = [&](bool write, int64_t unit, bool random,
                      int64_t total) -> Result<double> {
    std::vector<std::byte> buf(static_cast<size_t>(unit));
    if (write) {
      buf = MakePayload(static_cast<size_t>(unit), params.seed ^ 0xABCD);
    }
    const int64_t ops = (total + unit - 1) / unit;
    // The transaction bracket and the open happen before the caches are
    // flushed and the clock starts: the paper's numbers time the transfers,
    // not pathname resolution.
    INV_RETURN_IF_ERROR(begin());
    INV_ASSIGN_OR_RETURN(int fd, api.Open(kBenchFile, write));
    INV_RETURN_IF_ERROR(api.FlushCaches());
    Timer t(clock);
    for (int64_t i = 0; i < ops; ++i) {
      int64_t offset;
      if (random) {
        offset = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>((file_bytes - unit) / unit))) *
            unit;
      } else {
        offset = i * unit;
      }
      INV_RETURN_IF_ERROR(api.Seek(fd, offset, Whence::kSet).status());
      if (write) {
        INV_RETURN_IF_ERROR(api.Write(fd, buf).status());
      } else {
        INV_RETURN_IF_ERROR(api.Read(fd, buf).status());
      }
    }
    INV_RETURN_IF_ERROR(api.Close(fd));
    INV_RETURN_IF_ERROR(commit());
    return t.Elapsed();
  };

  // ---- Single-byte latency ---------------------------------------------------
  INV_ASSIGN_OR_RETURN(result.read_single_byte_s,
                       timed_io(/*write=*/false, /*unit=*/1, /*random=*/true,
                                /*total=*/1));
  INV_ASSIGN_OR_RETURN(result.write_single_byte_s,
                       timed_io(/*write=*/true, 1, true, 1));

  // ---- 1 MB reads -------------------------------------------------------------
  INV_ASSIGN_OR_RETURN(result.read_1mb_single_s, timed_io(false, xfer, false, xfer));
  INV_ASSIGN_OR_RETURN(result.read_1mb_seq_pages_s,
                       timed_io(false, page, false, xfer));
  INV_ASSIGN_OR_RETURN(result.read_1mb_rand_pages_s,
                       timed_io(false, page, true, xfer));

  // ---- 1 MB writes ------------------------------------------------------------
  INV_ASSIGN_OR_RETURN(result.write_1mb_single_s, timed_io(true, xfer, false, xfer));
  INV_ASSIGN_OR_RETURN(result.write_1mb_seq_pages_s,
                       timed_io(true, page, false, xfer));
  INV_ASSIGN_OR_RETURN(result.write_1mb_rand_pages_s,
                       timed_io(true, page, true, xfer));

  return result;
}

std::string FormatResultColumn(const PaperBenchResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "create=%0.1f 1mb_read=%0.1f seq_read=%0.1f rand_read=%0.1f "
                "1mb_write=%0.1f seq_write=%0.1f rand_write=%0.1f "
                "byte_read=%0.3f byte_write=%0.3f",
                r.create_file_s, r.read_1mb_single_s, r.read_1mb_seq_pages_s,
                r.read_1mb_rand_pages_s, r.write_1mb_single_s,
                r.write_1mb_seq_pages_s, r.write_1mb_rand_pages_s,
                r.read_single_byte_s, r.write_single_byte_s);
  return buf;
}

}  // namespace invfs
