#include "src/rules/rules.h"

#include "src/query/ast_print.h"
#include "src/query/eval.h"
#include "src/query/parser.h"

namespace invfs {
namespace {

Schema PgRuleSchema() {
  return Schema{{"rulename", TypeId::kText},
                {"ruletable", TypeId::kText},
                {"rulepred", TypeId::kText},
                {"ruleaction", TypeId::kText},
                {"ruledevice", TypeId::kInt4}};
}

}  // namespace

RuleEngine::RuleEngine(Database* db, FunctionRegistry* registry)
    : db_(db), registry_(registry) {}

Result<TableInfo*> RuleEngine::RuleTable(TxnId txn) {
  auto existing = db_->catalog().GetTable("pg_rule");
  if (existing.ok()) {
    return existing;
  }
  return db_->catalog().CreateTable(txn, "pg_rule", PgRuleSchema(),
                                    kDeviceMagneticDisk);
}

Status RuleEngine::Load() {
  auto table = db_->catalog().GetTable("pg_rule");
  if (!table.ok()) {
    return Status::Ok();  // no rules defined yet
  }
  const Snapshot snap{kTimestampNow, kInvalidTxn, &db_->txns().log(), nullptr};
  auto it = (*table)->heap->Scan(snap);
  while (it.Next()) {
    const Row& r = it.row();
    Rule rule;
    rule.name = r[0].AsText();
    rule.table = r[1].AsText();
    rule.predicate_src = r[2].AsText();
    rule.action = r[3].AsText();
    rule.target_device = static_cast<DeviceId>(r[4].AsInt4());
    INV_ASSIGN_OR_RETURN(rule.predicate, ParseExpression(rule.predicate_src));
    rules_.push_back(std::move(rule));
  }
  return it.status();
}

Status RuleEngine::DefineMigrationRule(TxnId txn, const std::string& name,
                                       const std::string& table,
                                       const std::string& predicate_src,
                                       DeviceId device) {
  for (const Rule& r : rules_) {
    if (r.name == name) {
      return Status::AlreadyExists("rule " + name);
    }
  }
  if (!db_->devices().Has(device)) {
    return Status::InvalidArgument("no device " + std::to_string(device));
  }
  INV_RETURN_IF_ERROR(db_->catalog().GetTable(table).status());
  Rule rule;
  rule.name = name;
  rule.table = table;
  rule.predicate_src = predicate_src;
  rule.action = "migrate";
  rule.target_device = device;
  INV_ASSIGN_OR_RETURN(rule.predicate, ParseExpression(predicate_src));

  INV_ASSIGN_OR_RETURN(TableInfo * rule_table, RuleTable(txn));
  Row row{Value::Text(name), Value::Text(table), Value::Text(predicate_src),
          Value::Text("migrate"), Value::Int4(static_cast<int32_t>(device))};
  INV_RETURN_IF_ERROR(db_->InsertRow(txn, rule_table, row).status());
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

Status RuleEngine::DefineFromStatement(const Statement& stmt, TxnId txn) {
  if (stmt.rule_action != "migrate") {
    return Status::Unimplemented("only 'do migrate <device>' rules are supported");
  }
  if (stmt.where == nullptr) {
    return Status::InvalidArgument("rule requires a where clause");
  }
  return DefineMigrationRule(txn, stmt.name, stmt.table, ExprToString(*stmt.where),
                             static_cast<DeviceId>(stmt.rule_device));
}

Status RuleEngine::DropRule(TxnId txn, const std::string& name) {
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&](const Rule& r) { return r.name == name; });
  if (it == rules_.end()) {
    return Status::NotFound("rule " + name);
  }
  INV_ASSIGN_OR_RETURN(TableInfo * rule_table, RuleTable(txn));
  const Snapshot snap = db_->SnapshotFor(txn);
  auto scan = rule_table->heap->Scan(snap);
  while (scan.Next()) {
    if (scan.row()[0].AsText() == name) {
      INV_RETURN_IF_ERROR(db_->DeleteRow(txn, rule_table, scan.tid()));
    }
  }
  INV_RETURN_IF_ERROR(scan.status());
  rules_.erase(it);
  return Status::Ok();
}

Result<int> RuleEngine::ApplyRules(TxnId txn) {
  int fired = 0;
  for (const Rule& rule : rules_) {
    auto table = db_->catalog().GetTable(rule.table);
    if (!table.ok()) {
      continue;  // table dropped since the rule was defined
    }
    // The match scan is lock-free: it runs against the transaction's pinned
    // (or, once written, live) snapshot. Actions that modify rows take their
    // own exclusive locks.
    EvalContext ctx;
    ctx.db = db_;
    ctx.txn = txn;
    ctx.snap = db_->ReadSnapshot(txn);
    ctx.registry = registry_;

    // Materialize matches before firing actions (actions may update the
    // table being scanned, e.g. fileatt's device column).
    std::vector<Row> matches;
    auto it = (*table)->heap->Scan(ctx.snap);
    while (it.Next()) {
      Row current = it.row();
      ctx.bindings[rule.table] = EvalContext::Binding{*table, &current};
      INV_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*rule.predicate, ctx));
      if (pass) {
        matches.push_back(std::move(current));
      }
    }
    INV_RETURN_IF_ERROR(it.status());

    for (const Row& row : matches) {
      if (rule.action == "migrate" && migrate_) {
        INV_ASSIGN_OR_RETURN(bool acted, migrate_(txn, *table, row, rule.target_device));
        if (acted) {
          ++fired;
        }
      }
    }
  }
  return fired;
}

}  // namespace invfs
