// Predicate rules engine: the paper's file-migration mechanism.
//
// "We are exploring strategies for using the POSTGRES predicate rules system
// to allow users and administrators to define migration policies. Arbitrarily
// complex rules controlling the locations of files or groups of files would
// be declared to the database manager. When a file met the announced
// conditions, it would be moved from one location in the storage hierarchy to
// another."
//
// A rule is (name, target table, POSTQUEL predicate, action). The only
// built-in action is `migrate <device>`; the Inversion layer registers the
// callback that actually moves a file's chunk table between devices. Rules
// are persisted in a `pg_rule` relation so they survive restarts.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/query/ast.h"
#include "src/query/function_registry.h"

namespace invfs {

struct Rule {
  std::string name;
  std::string table;        // relation the predicate ranges over
  ExprPtr predicate;        // bound with range var == table name
  std::string predicate_src;
  std::string action;       // "migrate"
  DeviceId target_device = kDeviceMagneticDisk;
};

class RuleEngine {
 public:
  RuleEngine(Database* db, FunctionRegistry* registry);

  // Load persisted rules (call once after Database::Open).
  Status Load();

  // Define and persist a migration rule. `predicate_src` is a POSTQUEL
  // expression over the columns of `table`.
  Status DefineMigrationRule(TxnId txn, const std::string& name,
                             const std::string& table,
                             const std::string& predicate_src, DeviceId device);

  // Executor hook for `define rule ... do migrate <device>` statements.
  Status DefineFromStatement(const Statement& stmt, TxnId txn);

  Status DropRule(TxnId txn, const std::string& name);

  // Action callback: (txn, matched table, matched row, target device).
  // Returns true if it acted, false if the row already satisfied the goal
  // (keeps ApplyRules' fired count idempotent).
  using ActionFn =
      std::function<Result<bool>(TxnId, const TableInfo*, const Row&, DeviceId)>;
  void SetMigrateAction(ActionFn fn) { migrate_ = std::move(fn); }

  // Evaluate every rule against the current contents of its table and fire
  // the action for each matching row. Returns the number of actions fired.
  // (The paper's system would run this periodically, like vacuum.)
  Result<int> ApplyRules(TxnId txn);

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  Result<TableInfo*> RuleTable(TxnId txn);

  Database* db_;
  FunctionRegistry* registry_;
  ActionFn migrate_;
  std::vector<Rule> rules_;
};

}  // namespace invfs
