// Tokenizer for the POSTQUEL subset.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace invfs {

enum class TokKind {
  kIdent,     // bare word (keywords resolved by the parser)
  kInt,       // integer literal
  kFloat,     // floating literal
  kString,    // "quoted"
  kSymbol,    // punctuation / operator
  kParam,     // $N
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;    // identifier / symbol / string body
  int64_t int_val = 0;
  double float_val = 0;
  size_t offset = 0;   // for error messages
};

// Tokenize an entire statement string. Symbols recognized:
//   ( ) , . = != < <= > >= + - * / [ ]
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace invfs
