#include "src/query/executor.h"

#include <algorithm>
#include <set>

#include "src/obs/span.h"
#include "src/query/parser.h"
#include "src/query/virtual_tables.h"

namespace invfs {
namespace {

// Collect the range variables an expression references. Unqualified column
// refs contribute the empty string (meaning "unknown": evaluate late).
void CollectVars(const Expr& e, std::set<std::string>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->insert(e.range_var);
    return;
  }
  for (const ExprPtr& a : e.args) {
    CollectVars(*a, out);
  }
}

// Split a predicate tree on top-level ANDs.
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinaryOp && e->name == "and") {
    SplitConjuncts(e->args[0].get(), out);
    SplitConjuncts(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

struct BoundRange {
  RangeDecl decl;
  TableInfo* table = nullptr;
  Snapshot snap;
  Row current;
  // Virtual relations (invfs_stats / invfs_trace): rows materialized from an
  // observability snapshot at bind time; no heap, no lock, no index.
  bool is_virtual = false;
  std::vector<Row> vrows;
};

}  // namespace

std::string ResultSet::ToString() const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) {
        widths[i] = std::max(widths[i], line.back().size());
      }
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& line) {
    for (size_t i = 0; i < line.size(); ++i) {
      out += line[i];
      out.append(widths[i] >= line[i].size() ? widths[i] - line[i].size() + 2 : 2, ' ');
    }
    out += '\n';
  };
  emit_row(columns);
  emit_row(std::vector<std::string>());  // spacer
  for (const auto& line : cells) {
    emit_row(line);
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

Result<Value> CoerceValue(const Value& v, TypeId t) {
  if (v.is_null() || v.HasType(t)) {
    return v;
  }
  switch (t) {
    case TypeId::kInt4: {
      INV_ASSIGN_OR_RETURN(int64_t x, v.ToInt64());
      if (x < INT32_MIN || x > INT32_MAX) {
        return Status::InvalidArgument("value out of int4 range");
      }
      return Value::Int4(static_cast<int32_t>(x));
    }
    case TypeId::kInt8: {
      INV_ASSIGN_OR_RETURN(int64_t x, v.ToInt64());
      return Value::Int8(x);
    }
    case TypeId::kOid: {
      INV_ASSIGN_OR_RETURN(int64_t x, v.ToInt64());
      if (x < 0 || x > UINT32_MAX) {
        return Status::InvalidArgument("value out of oid range");
      }
      return Value::MakeOid(static_cast<Oid>(x));
    }
    case TypeId::kTimestamp: {
      INV_ASSIGN_OR_RETURN(int64_t x, v.ToInt64());
      if (x < 0) {
        return Status::InvalidArgument("negative timestamp");
      }
      return Value::MakeTimestamp(static_cast<Timestamp>(x));
    }
    case TypeId::kFloat8: {
      INV_ASSIGN_OR_RETURN(double x, v.ToDouble());
      return Value::Float8(x);
    }
    default:
      return Status::InvalidArgument("cannot coerce " + v.ToString() + " to " +
                                     std::string(TypeName(t)));
  }
}

Executor::Executor(Database* db, FunctionRegistry* registry, ExecutorHooks hooks)
    : db_(db), registry_(registry), hooks_(std::move(hooks)) {
  plans_run_ = db_->metrics().GetCounter("query.plans_run");
  tuples_scanned_ = db_->metrics().GetCounter("query.tuples_scanned");
}

Result<ResultSet> Executor::ExecuteQuery(std::string_view text, TxnId txn) {
  INV_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  return Execute(stmt, txn);
}

Result<ResultSet> Executor::Execute(const Statement& stmt, TxnId txn) {
  ScopedSpan span(&db_->metrics().spans(), "query.exec",
                  static_cast<uint64_t>(stmt.kind), txn);
  switch (stmt.kind) {
    case StmtKind::kRetrieve:
      return ExecRetrieve(stmt, txn);
    case StmtKind::kAppend:
      return ExecAppend(stmt, txn);
    case StmtKind::kReplace:
      return ExecReplace(stmt, txn);
    case StmtKind::kDelete:
      return ExecDelete(stmt, txn);
    case StmtKind::kCreate:
      return ExecCreate(stmt, txn);
    case StmtKind::kDefineType:
      return ExecDefineType(stmt, txn);
    case StmtKind::kDefineFunction:
      return ExecDefineFunction(stmt, txn);
    case StmtKind::kDefineIndex:
      return ExecDefineIndex(stmt, txn);
    case StmtKind::kDefineRule:
      if (!hooks_.on_define_rule) {
        return Status::Unimplemented("no rules engine attached");
      }
      INV_RETURN_IF_ERROR(hooks_.on_define_rule(stmt, txn));
      return ResultSet{};
    case StmtKind::kVacuum:
      if (!hooks_.on_vacuum) {
        return Status::Unimplemented("no vacuum cleaner attached");
      }
      INV_RETURN_IF_ERROR(hooks_.on_vacuum(stmt.table, txn));
      return ResultSet{};
  }
  return Status::Internal("unreachable statement kind");
}

Result<ResultSet> Executor::ExecRetrieve(const Statement& stmt, TxnId txn) {
  // Counted before range binding, so a SELECT over invfs_stats observes
  // itself (its own plan is part of the snapshot it reads).
  plans_run_->Add();
  // Resolve range declarations; infer them from qualified column refs when
  // the from-clause is omitted (POSTQUEL's implicit range variables).
  std::vector<RangeDecl> decls = [] (const Statement& s) {
    std::vector<RangeDecl> out = s.from;
    return out;
  }(stmt);
  if (decls.empty()) {
    std::set<std::string> vars;
    for (const TargetItem& t : stmt.targets) {
      CollectVars(*t.expr, &vars);
    }
    if (stmt.where) {
      CollectVars(*stmt.where, &vars);
    }
    for (const std::string& v : vars) {
      if (!v.empty()) {
        decls.push_back(RangeDecl{v, v, std::nullopt});
      }
    }
  }

  std::vector<BoundRange> ranges;
  for (const RangeDecl& decl : decls) {
    BoundRange r;
    r.decl = decl;
    if (IsVirtualTable(decl.table)) {
      if (decl.as_of.has_value()) {
        return Status::InvalidArgument("virtual relation " + decl.table +
                                       " does not support time travel");
      }
      r.table = VirtualTableInfo(decl.table);
      r.is_virtual = true;
      r.vrows = MaterializeVirtualTable(db_, decl.table);
      r.snap = db_->ReadSnapshot(txn);
      ranges.push_back(std::move(r));
      continue;  // no catalog entry, no table lock
    }
    if (decl.as_of.has_value()) {
      r.snap = db_->SnapshotAt(*decl.as_of);
      INV_ASSIGN_OR_RETURN(r.table, db_->catalog().GetTableAt(decl.table, r.snap));
    } else {
      r.snap = db_->ReadSnapshot(txn);
      INV_ASSIGN_OR_RETURN(r.table, db_->catalog().GetTable(decl.table));
    }
    // No shared table lock: retrieves run against the transaction's pinned
    // snapshot, so concurrent writers are invisible rather than excluded.
    // (A transaction that already wrote reads its live snapshot instead and
    // still holds its own exclusive locks.)
    ranges.push_back(std::move(r));
  }

  std::vector<const Expr*> conjuncts;
  if (stmt.where) {
    SplitConjuncts(stmt.where.get(), &conjuncts);
  }

  ResultSet result;
  for (const TargetItem& t : stmt.targets) {
    result.columns.push_back(t.alias);
  }

  EvalContext ctx;
  ctx.db = db_;
  ctx.txn = txn;
  ctx.snap = db_->ReadSnapshot(txn);
  ctx.registry = registry_;

  // Which conjuncts can be evaluated once variables 0..level are bound?
  // A conjunct with an unqualified (empty) var is evaluated at the innermost
  // level where all names are certainly in scope.
  auto eval_level = [&](const Expr* c) -> size_t {
    std::set<std::string> vars;
    CollectVars(*c, &vars);
    size_t level = 0;
    for (const std::string& v : vars) {
      if (v.empty()) {
        return ranges.empty() ? 0 : ranges.size() - 1;
      }
      for (size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].decl.var == v) {
          level = std::max(level, i);
        }
      }
    }
    return level;
  };
  std::vector<std::vector<const Expr*>> level_filters(std::max<size_t>(1, ranges.size()));
  for (const Expr* c : conjuncts) {
    if (ranges.empty()) {
      level_filters[0].push_back(c);
    } else {
      level_filters[eval_level(c)].push_back(c);
    }
  }

  // For each level, find an index-equality access path:
  //   conjunct of shape  var.col = <expr over outer vars/constants>
  // with a single-column index on col.
  struct AccessPath {
    IndexInfo* index = nullptr;
    const Expr* key_expr = nullptr;  // evaluated in outer context
    size_t key_column = 0;
  };
  std::vector<AccessPath> paths(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].is_virtual) {
      continue;  // virtual relations have no indexes
    }
    if (ranges[i].decl.as_of.has_value()) {
      continue;  // historical scans read heap + archive sequentially
    }
    for (const Expr* c : conjuncts) {
      if (c->kind != ExprKind::kBinaryOp || c->name != "=") {
        continue;
      }
      for (int side = 0; side < 2; ++side) {
        const Expr* col_side = c->args[side].get();
        const Expr* other = c->args[1 - side].get();
        if (col_side->kind != ExprKind::kColumnRef ||
            col_side->range_var != ranges[i].decl.var) {
          continue;
        }
        // `other` must reference only outer variables.
        std::set<std::string> vars;
        CollectVars(*other, &vars);
        bool outer_only = true;
        for (const std::string& v : vars) {
          bool is_outer = false;
          for (size_t j = 0; j < i; ++j) {
            if (ranges[j].decl.var == v) {
              is_outer = true;
            }
          }
          if (!is_outer) {
            outer_only = false;
          }
        }
        if (!outer_only) {
          continue;
        }
        auto col_idx = ranges[i].table->schema.ColumnIndex(col_side->column);
        if (!col_idx.ok()) {
          continue;
        }
        for (IndexInfo* idx : ranges[i].table->indexes) {
          if (idx->key_columns.size() == 1 && idx->key_columns[0] == *col_idx) {
            paths[i] = AccessPath{idx, other, *col_idx};
            break;
          }
        }
      }
      if (paths[i].index != nullptr) {
        break;
      }
    }
  }

  // Recursive nested-loop join.
  std::function<Status(size_t)> recurse = [&](size_t level) -> Status {
    if (level == ranges.size()) {
      if (ranges.empty()) {
        for (const Expr* c : level_filters[0]) {
          INV_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*c, ctx));
          if (!pass) {
            return Status::Ok();
          }
        }
      }
      Row out;
      out.reserve(stmt.targets.size());
      for (const TargetItem& t : stmt.targets) {
        INV_ASSIGN_OR_RETURN(Value v, Eval(*t.expr, ctx));
        out.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out));
      return Status::Ok();
    }
    BoundRange& r = ranges[level];
    auto emit = [&](Row row) -> Status {
      r.current = std::move(row);
      ctx.bindings[r.decl.var] = EvalContext::Binding{r.table, &r.current};
      for (const Expr* c : level_filters[level]) {
        INV_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*c, ctx));
        if (!pass) {
          return Status::Ok();
        }
      }
      return recurse(level + 1);
    };

    if (r.is_virtual) {
      for (const Row& vrow : r.vrows) {
        INV_RETURN_IF_ERROR(emit(Row(vrow)));
      }
      return Status::Ok();
    }

    if (paths[level].index != nullptr) {
      INV_ASSIGN_OR_RETURN(Value key_val, Eval(*paths[level].key_expr, ctx));
      const TypeId col_type =
          r.table->schema.column(paths[level].key_column).type;
      INV_ASSIGN_OR_RETURN(Value coerced, CoerceValue(key_val, col_type));
      INV_ASSIGN_OR_RETURN(BtreeKey key, EncodeKey(std::span(&coerced, 1)));
      Result<std::vector<Tid>> tids_or = [&] {
        // Lock-free probe: the gate excludes vacuum's index rebuild (which
        // replaces the btree object) for the duration of one lookup.
        SharedGateLock gate(db_->probe_gate());
        return paths[level].index->btree->Lookup(key);
      }();
      INV_ASSIGN_OR_RETURN(auto tids, std::move(tids_or));
      for (Tid tid : tids) {
        INV_ASSIGN_OR_RETURN(auto row, r.table->heap->Fetch(r.snap, tid));
        if (row.has_value()) {
          tuples_scanned_->Add();
          INV_RETURN_IF_ERROR(emit(std::move(*row)));
        }
      }
      return Status::Ok();
    }

    auto scan_heap = [&](Heap* heap) -> Status {
      auto it = heap->Scan(r.snap);
      while (it.Next()) {
        tuples_scanned_->Add();
        INV_RETURN_IF_ERROR(emit(it.row()));
      }
      return it.status();
    };
    INV_RETURN_IF_ERROR(scan_heap(r.table->heap.get()));
    if (r.snap.is_historical() && r.table->archive_oid != kInvalidOid) {
      INV_ASSIGN_OR_RETURN(TableInfo * archive,
                           db_->catalog().GetTableByOid(r.table->archive_oid));
      INV_RETURN_IF_ERROR(scan_heap(archive->heap.get()));
    }
    return Status::Ok();
  };
  INV_RETURN_IF_ERROR(recurse(0));
  return result;
}

Result<ResultSet> Executor::ExecAppend(const Statement& stmt, TxnId txn) {
  INV_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  INV_RETURN_IF_ERROR(db_->LockTable(txn, table, LockMode::kExclusive));
  EvalContext ctx;
  ctx.db = db_;
  ctx.txn = txn;
  ctx.snap = db_->SnapshotFor(txn);
  ctx.registry = registry_;
  Row row(table->schema.num_columns(), Value::Null());
  for (const SetItem& set : stmt.sets) {
    INV_ASSIGN_OR_RETURN(size_t idx, table->schema.ColumnIndex(set.column));
    INV_ASSIGN_OR_RETURN(Value v, Eval(*set.expr, ctx));
    INV_ASSIGN_OR_RETURN(row[idx], CoerceValue(v, table->schema.column(idx).type));
  }
  INV_RETURN_IF_ERROR(db_->InsertRow(txn, table, row).status());
  return ResultSet{};
}

Result<ResultSet> Executor::ExecReplace(const Statement& stmt, TxnId txn) {
  INV_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  INV_RETURN_IF_ERROR(db_->LockTable(txn, table, LockMode::kExclusive));
  EvalContext ctx;
  ctx.db = db_;
  ctx.txn = txn;
  ctx.snap = db_->SnapshotFor(txn);
  ctx.registry = registry_;

  // Materialize matches first (Halloween protection: the scan must not see
  // its own replacements).
  struct Match {
    Tid tid;
    Row row;
    Oid row_oid;
  };
  std::vector<Match> matches;
  {
    auto it = table->heap->Scan(ctx.snap);
    while (it.Next()) {
      Row current = it.row();
      ctx.bindings[stmt.table] = EvalContext::Binding{table, &current};
      bool pass = true;
      if (stmt.where) {
        INV_ASSIGN_OR_RETURN(pass, EvalPredicate(*stmt.where, ctx));
      }
      if (pass) {
        matches.push_back(Match{it.tid(), std::move(current), it.meta().oid});
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  for (Match& m : matches) {
    Row updated = m.row;
    ctx.bindings[stmt.table] = EvalContext::Binding{table, &m.row};
    for (const SetItem& set : stmt.sets) {
      INV_ASSIGN_OR_RETURN(size_t idx, table->schema.ColumnIndex(set.column));
      INV_ASSIGN_OR_RETURN(Value v, Eval(*set.expr, ctx));
      INV_ASSIGN_OR_RETURN(updated[idx],
                           CoerceValue(v, table->schema.column(idx).type));
    }
    INV_RETURN_IF_ERROR(db_->ReplaceRow(txn, table, m.tid, updated, m.row_oid).status());
  }
  ResultSet rs;
  rs.columns = {"replaced"};
  rs.rows.push_back({Value::Int8(static_cast<int64_t>(matches.size()))});
  return rs;
}

Result<ResultSet> Executor::ExecDelete(const Statement& stmt, TxnId txn) {
  INV_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  INV_RETURN_IF_ERROR(db_->LockTable(txn, table, LockMode::kExclusive));
  EvalContext ctx;
  ctx.db = db_;
  ctx.txn = txn;
  ctx.snap = db_->SnapshotFor(txn);
  ctx.registry = registry_;
  std::vector<Tid> doomed;
  {
    auto it = table->heap->Scan(ctx.snap);
    while (it.Next()) {
      Row current = it.row();
      ctx.bindings[stmt.table] = EvalContext::Binding{table, &current};
      bool pass = true;
      if (stmt.where) {
        INV_ASSIGN_OR_RETURN(pass, EvalPredicate(*stmt.where, ctx));
      }
      if (pass) {
        doomed.push_back(it.tid());
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  for (Tid tid : doomed) {
    INV_RETURN_IF_ERROR(db_->DeleteRow(txn, table, tid));
  }
  ResultSet rs;
  rs.columns = {"deleted"};
  rs.rows.push_back({Value::Int8(static_cast<int64_t>(doomed.size()))});
  return rs;
}

Result<ResultSet> Executor::ExecCreate(const Statement& stmt, TxnId txn) {
  std::vector<Column> cols;
  for (const auto& [name, type_name] : stmt.columns) {
    INV_ASSIGN_OR_RETURN(TypeId type, TypeFromName(type_name));
    cols.push_back(Column{name, type});
  }
  INV_RETURN_IF_ERROR(db_->catalog()
                          .CreateTable(txn, stmt.table, Schema(std::move(cols)),
                                       kDeviceMagneticDisk)
                          .status());
  return ResultSet{};
}

Result<ResultSet> Executor::ExecDefineType(const Statement& stmt, TxnId txn) {
  INV_RETURN_IF_ERROR(db_->catalog().DefineType(txn, stmt.name).status());
  return ResultSet{};
}

Result<ResultSet> Executor::ExecDefineFunction(const Statement& stmt, TxnId txn) {
  INV_ASSIGN_OR_RETURN(TypeId rettype, TypeFromName(stmt.rettype));
  ProcLang lang;
  if (stmt.lang == "native") {
    lang = ProcLang::kNative;
    if (!registry_->Has(stmt.src)) {
      return Status::NotFound("native function body '" + stmt.src +
                              "' is not loaded; register it first");
    }
  } else if (stmt.lang == "postquel") {
    lang = ProcLang::kPostquel;
    // Validate the body parses now, not at first call.
    INV_RETURN_IF_ERROR(ParseExpression(stmt.src).status());
  } else {
    return Status::InvalidArgument("unknown function language " + stmt.lang);
  }
  INV_RETURN_IF_ERROR(
      db_->catalog()
          .DefineFunction(txn, stmt.name, rettype, stmt.nargs, lang, stmt.src)
          .status());
  return ResultSet{};
}

Result<ResultSet> Executor::ExecDefineIndex(const Statement& stmt, TxnId txn) {
  INV_ASSIGN_OR_RETURN(TableInfo * table, db_->catalog().GetTable(stmt.table));
  INV_ASSIGN_OR_RETURN(size_t col, table->schema.ColumnIndex(stmt.index_column));
  INV_RETURN_IF_ERROR(db_->LockTable(txn, table, LockMode::kExclusive));
  INV_RETURN_IF_ERROR(db_->catalog().CreateIndex(txn, table, {col}).status());
  return ResultSet{};
}

}  // namespace invfs
