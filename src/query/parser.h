// Recursive-descent parser for the POSTQUEL subset (see ast.h for grammar).

#pragma once

#include <string_view>

#include "src/query/ast.h"
#include "src/util/status.h"

namespace invfs {

// Parse one statement.
Result<Statement> ParseStatement(std::string_view input);

// Parse a bare expression (used for POSTQUEL-language function bodies and
// rule predicates).
Result<ExprPtr> ParseExpression(std::string_view input);

}  // namespace invfs
