// Abstract syntax for the POSTQUEL subset Inversion exposes.
//
// Supported statements (sufficient for every query shown in the paper):
//   retrieve (expr [, expr ...]) [from v in rel[, ...]] [where qual]
//   append <rel> (col = expr, ...)
//   replace <rel> (col = expr, ...) [where qual]
//   delete <rel> [where qual]
//   create <rel> (col = type, ...)
//   define type <name>
//   define function <name> (n args) returns <type> as {native|postquel} "<src>"
//   define index on <rel> (col)
//   define rule <name> on <rel> where <qual> do migrate <device>
//   vacuum <rel>
// Time travel: a range target may carry a timestamp, e.g.
//   retrieve (n.filename) from n in naming["123456"]
// which scans `naming` as of simulated-microsecond 123456.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/storage/value.h"

namespace invfs {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kConst,     // literal
  kColumnRef, // [range_var.]column
  kFuncCall,  // name(args...)
  kBinaryOp,  // lhs op rhs
  kUnaryOp,   // op operand
  kParam,     // $N inside a POSTQUEL-language function body
};

struct Expr {
  ExprKind kind;
  Value constant;                 // kConst
  std::string range_var;          // kColumnRef (may be empty: unqualified)
  std::string column;             // kColumnRef
  std::string name;               // kFuncCall function name / operator symbol
  std::vector<ExprPtr> args;      // call args; [lhs,rhs] for binop; [x] for unop
  int param_index = 0;            // kParam

  static ExprPtr Const(Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kConst;
    e->constant = std::move(v);
    return e;
  }
  static ExprPtr ColumnRef(std::string rv, std::string col) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kColumnRef;
    e->range_var = std::move(rv);
    e->column = std::move(col);
    return e;
  }
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFuncCall;
    e->name = std::move(fn);
    e->args = std::move(args);
    return e;
  }
  static ExprPtr Binary(std::string op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinaryOp;
    e->name = std::move(op);
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    return e;
  }
  static ExprPtr Unary(std::string op, ExprPtr x) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnaryOp;
    e->name = std::move(op);
    e->args.push_back(std::move(x));
    return e;
  }
  static ExprPtr Param(int index) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kParam;
    e->param_index = index;
    return e;
  }
};

struct RangeDecl {
  std::string var;                      // range variable name
  std::string table;                    // relation name
  std::optional<Timestamp> as_of;       // time-travel bracket
};

struct TargetItem {
  std::string alias;  // output column label
  ExprPtr expr;
};

struct SetItem {
  std::string column;
  ExprPtr expr;
};

enum class StmtKind {
  kRetrieve,
  kAppend,
  kReplace,
  kDelete,
  kCreate,
  kDefineType,
  kDefineFunction,
  kDefineIndex,
  kDefineRule,
  kVacuum,
};

struct Statement {
  StmtKind kind;

  // retrieve
  std::vector<TargetItem> targets;
  std::vector<RangeDecl> from;
  ExprPtr where;

  // append / replace / delete / create / define index / vacuum / define rule
  std::string table;
  std::vector<SetItem> sets;                        // append / replace
  std::vector<std::pair<std::string, std::string>> columns;  // create: (name,type)

  // define type / function / rule
  std::string name;
  std::string rettype;
  int nargs = 0;
  std::string lang;  // "native" | "postquel"
  std::string src;
  std::string index_column;  // define index
  std::string rule_action;   // define rule: "migrate"
  int rule_device = 0;       // migrate target device
};

}  // namespace invfs
