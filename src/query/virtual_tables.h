// Virtual relations backed by the observability layer instead of a heap.
//
// The paper's thesis — put the file system in the database and every piece of
// metadata becomes queryable — applies to the engine's own internals too.
// `invfs_stats` exposes the metrics registry and `invfs_trace` the recent-
// event ring as ordinary POSTQUEL range variables:
//
//   retrieve (s.name, s.value) from s in invfs_stats
//       where s.name = "buffer.hits"
//   retrieve (t.event, t.a) from t in invfs_trace where t.event = "page.miss"
//
// Rows are materialized at range-binding time from a registry snapshot, so a
// query sees one consistent point-in-time image and holds no lock anywhere
// near the hot paths it is observing. Virtual relations have no oid in
// pg_class, take no table locks, and support no time travel or DML.

#pragma once

#include <string_view>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/catalog/database.h"

namespace invfs {

// True for names the executor must bind to a virtual relation
// ("invfs_stats", "invfs_trace", "invfs_spans", "invfs_slo",
// "invfs_timeseries") instead of the catalog.
bool IsVirtualTable(std::string_view name);

// Schema-only TableInfo for a virtual relation (static storage; heap is
// null, indexes empty). Precondition: IsVirtualTable(name).
TableInfo* VirtualTableInfo(std::string_view name);

// Point-in-time rows of the virtual relation, in the schema order of
// VirtualTableInfo(name). `invfs_stats` merges the database's registry with
// the process-wide default registry (database wins on (name, label) ties).
// Precondition: IsVirtualTable(name).
std::vector<Row> MaterializeVirtualTable(Database* db, std::string_view name);

}  // namespace invfs
