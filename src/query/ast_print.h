// Expression pretty-printer: emits POSTQUEL text that re-parses to an
// equivalent tree (used to persist rule predicates and for diagnostics).

#pragma once

#include <string>

#include "src/query/ast.h"

namespace invfs {

std::string ExprToString(const Expr& expr);

}  // namespace invfs
