#include "src/query/eval.h"

#include "src/catalog/database.h"
#include "src/query/parser.h"

namespace invfs {
namespace {

Result<Value> EvalColumnRef(const Expr& expr, EvalContext& ctx) {
  if (!expr.range_var.empty()) {
    auto it = ctx.bindings.find(expr.range_var);
    if (it == ctx.bindings.end()) {
      return Status::NotFound("unknown range variable '" + expr.range_var + "'");
    }
    INV_ASSIGN_OR_RETURN(size_t idx, it->second.table->schema.ColumnIndex(expr.column));
    return (*it->second.row)[idx];
  }
  // Unqualified: the column must be unique across current bindings.
  const Value* found = nullptr;
  for (const auto& [var, binding] : ctx.bindings) {
    auto idx = binding.table->schema.ColumnIndex(expr.column);
    if (idx.ok()) {
      if (found != nullptr) {
        return Status::InvalidArgument("ambiguous column '" + expr.column + "'");
      }
      found = &(*binding.row)[*idx];
    }
  }
  if (found == nullptr) {
    return Status::NotFound("no column '" + expr.column + "' in scope");
  }
  return *found;
}

Result<Value> EvalCall(const Expr& expr, EvalContext& ctx) {
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& a : expr.args) {
    INV_ASSIGN_OR_RETURN(Value v, Eval(*a, ctx));
    args.push_back(std::move(v));
  }
  // Resolution order: pg_proc (catalog-registered, possibly POSTQUEL-language)
  // first, then raw registry builtins.
  if (ctx.db != nullptr) {
    auto proc = ctx.db->catalog().GetFunction(expr.name);
    if (proc.ok()) {
      if ((*proc)->nargs >= 0 &&
          args.size() != static_cast<size_t>((*proc)->nargs)) {
        return Status::InvalidArgument("function " + expr.name + " expects " +
                                       std::to_string((*proc)->nargs) + " args");
      }
      if ((*proc)->lang == ProcLang::kPostquel) {
        // Body is a single POSTQUEL expression over $1..$n.
        INV_ASSIGN_OR_RETURN(ExprPtr body, ParseExpression((*proc)->src));
        EvalContext inner = ctx;
        inner.params = &args;
        inner.bindings.clear();
        return Eval(*body, inner);
      }
      // Native: dispatch through the registry under the pg_proc src symbol
      // (usually the same as the function name).
      const std::string& symbol = (*proc)->src.empty() ? (*proc)->name : (*proc)->src;
      INV_ASSIGN_OR_RETURN(const NativeFn* fn, ctx.registry->Get(symbol));
      return (*fn)(args, ctx);
    }
  }
  if (ctx.registry != nullptr && ctx.registry->Has(expr.name)) {
    INV_ASSIGN_OR_RETURN(const NativeFn* fn, ctx.registry->Get(expr.name));
    return (*fn)(args, ctx);
  }
  return Status::NotFound("unknown function '" + expr.name + "'");
}

Result<Value> Arith(const std::string& op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) {
    return Value::Null();
  }
  const bool any_float = l.HasType(TypeId::kFloat8) || r.HasType(TypeId::kFloat8);
  if (any_float) {
    INV_ASSIGN_OR_RETURN(double a, l.ToDouble());
    INV_ASSIGN_OR_RETURN(double b, r.ToDouble());
    if (op == "+") return Value::Float8(a + b);
    if (op == "-") return Value::Float8(a - b);
    if (op == "*") return Value::Float8(a * b);
    if (op == "/") {
      if (b == 0) {
        return Status::InvalidArgument("division by zero");
      }
      return Value::Float8(a / b);
    }
  } else {
    INV_ASSIGN_OR_RETURN(int64_t a, l.ToInt64());
    INV_ASSIGN_OR_RETURN(int64_t b, r.ToInt64());
    if (op == "+") return Value::Int8(a + b);
    if (op == "-") return Value::Int8(a - b);
    if (op == "*") return Value::Int8(a * b);
    if (op == "/") {
      if (b == 0) {
        return Status::InvalidArgument("division by zero");
      }
      // Integer division promotes to float when inexact, which makes the
      // paper's "snow(file)/size(file) > 0.5" idiom behave as intended.
      if (a % b == 0) {
        return Value::Int8(a / b);
      }
      return Value::Float8(static_cast<double>(a) / static_cast<double>(b));
    }
  }
  return Status::InvalidArgument("unknown arithmetic operator " + op);
}

Result<Value> Compare(const std::string& op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) {
    return Value::Null();
  }
  // Guard: comparing text against numeric is a type error, not "false".
  const bool l_text = l.HasType(TypeId::kText);
  const bool r_text = r.HasType(TypeId::kText);
  if (l_text != r_text) {
    return Status::InvalidArgument("type mismatch in comparison: " + l.ToString() +
                                   " " + op + " " + r.ToString());
  }
  const int c = l.Compare(r);
  if (op == "=") return Value::Bool(c == 0);
  if (op == "!=") return Value::Bool(c != 0);
  if (op == "<") return Value::Bool(c < 0);
  if (op == "<=") return Value::Bool(c <= 0);
  if (op == ">") return Value::Bool(c > 0);
  if (op == ">=") return Value::Bool(c >= 0);
  return Status::InvalidArgument("unknown comparison operator " + op);
}

bool Truthy(const Value& v) { return !v.is_null() && v.HasType(TypeId::kBool) && v.AsBool(); }

}  // namespace

Result<Value> Eval(const Expr& expr, EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kConst:
      return expr.constant;
    case ExprKind::kParam: {
      if (ctx.params == nullptr || expr.param_index < 1 ||
          static_cast<size_t>(expr.param_index) > ctx.params->size()) {
        return Status::InvalidArgument("parameter $" +
                                       std::to_string(expr.param_index) +
                                       " out of range");
      }
      return (*ctx.params)[static_cast<size_t>(expr.param_index - 1)];
    }
    case ExprKind::kColumnRef:
      return EvalColumnRef(expr, ctx);
    case ExprKind::kFuncCall:
      return EvalCall(expr, ctx);
    case ExprKind::kUnaryOp: {
      INV_ASSIGN_OR_RETURN(Value x, Eval(*expr.args[0], ctx));
      if (expr.name == "not") {
        if (x.is_null()) {
          return Value::Null();
        }
        return Value::Bool(!Truthy(x));
      }
      if (expr.name == "-") {
        if (x.is_null()) {
          return Value::Null();
        }
        if (x.HasType(TypeId::kFloat8)) {
          return Value::Float8(-x.AsFloat8());
        }
        INV_ASSIGN_OR_RETURN(int64_t v, x.ToInt64());
        return Value::Int8(-v);
      }
      return Status::InvalidArgument("unknown unary operator " + expr.name);
    }
    case ExprKind::kBinaryOp: {
      if (expr.name == "and") {
        INV_ASSIGN_OR_RETURN(Value l, Eval(*expr.args[0], ctx));
        if (!Truthy(l)) {
          return Value::Bool(false);
        }
        INV_ASSIGN_OR_RETURN(Value r, Eval(*expr.args[1], ctx));
        return Value::Bool(Truthy(r));
      }
      if (expr.name == "or") {
        INV_ASSIGN_OR_RETURN(Value l, Eval(*expr.args[0], ctx));
        if (Truthy(l)) {
          return Value::Bool(true);
        }
        INV_ASSIGN_OR_RETURN(Value r, Eval(*expr.args[1], ctx));
        return Value::Bool(Truthy(r));
      }
      INV_ASSIGN_OR_RETURN(Value l, Eval(*expr.args[0], ctx));
      INV_ASSIGN_OR_RETURN(Value r, Eval(*expr.args[1], ctx));
      if (expr.name == "in") {
        // Substring membership over text, the paper's keyword idiom.
        if (l.is_null() || r.is_null()) {
          return Value::Null();
        }
        if (!l.HasType(TypeId::kText) || !r.HasType(TypeId::kText)) {
          return Status::InvalidArgument("'in' requires text operands");
        }
        return Value::Bool(r.AsText().find(l.AsText()) != std::string::npos);
      }
      if (expr.name == "+" || expr.name == "-" || expr.name == "*" ||
          expr.name == "/") {
        return Arith(expr.name, l, r);
      }
      return Compare(expr.name, l, r);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, EvalContext& ctx) {
  INV_ASSIGN_OR_RETURN(Value v, Eval(expr, ctx));
  return Truthy(v);
}

}  // namespace invfs
