#include "src/query/parser.h"

#include "src/query/lexer.h"

namespace invfs {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStmt();
  Result<ExprPtr> ParseExprPublic() {
    INV_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
    return e;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  Token Take() { return toks_[pos_++]; }
  bool AtIdent(std::string_view kw) const {
    return Peek().kind == TokKind::kIdent && Peek().text == kw;
  }
  bool AtSymbol(std::string_view s) const {
    return Peek().kind == TokKind::kSymbol && Peek().text == s;
  }
  bool EatIdent(std::string_view kw) {
    if (AtIdent(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatSymbol(std::string_view s) {
    if (AtSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokKind kind, std::string_view text) {
    if (Peek().kind != kind || (!text.empty() && Peek().text != text)) {
      return Status::InvalidArgument("parse error at offset " +
                                     std::to_string(Peek().offset) + ": expected '" +
                                     std::string(text) + "', got '" + Peek().text +
                                     "'");
    }
    ++pos_;
    return Status::Ok();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("parse error at offset " +
                                     std::to_string(Peek().offset) +
                                     ": expected identifier");
    }
    return Take().text;
  }

  Result<Statement> ParseRetrieve();
  Result<Statement> ParseAppend();
  Result<Statement> ParseReplace();
  Result<Statement> ParseDelete();
  Result<Statement> ParseCreate();
  Result<Statement> ParseDefine();
  Result<Statement> ParseVacuum();

  Result<std::vector<SetItem>> ParseSetList();

  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

Result<Statement> Parser::ParseStmt() {
  if (EatIdent("retrieve")) {
    return ParseRetrieve();
  }
  if (EatIdent("append")) {
    return ParseAppend();
  }
  if (EatIdent("replace")) {
    return ParseReplace();
  }
  if (EatIdent("delete")) {
    return ParseDelete();
  }
  if (EatIdent("create")) {
    return ParseCreate();
  }
  if (EatIdent("define")) {
    return ParseDefine();
  }
  if (EatIdent("vacuum")) {
    return ParseVacuum();
  }
  return Status::InvalidArgument("unknown statement: '" + Peek().text + "'");
}

Result<Statement> Parser::ParseRetrieve() {
  Statement s;
  s.kind = StmtKind::kRetrieve;
  INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
  for (;;) {
    TargetItem item;
    // Optional "alias =" prefix: an identifier followed by '=' that is not
    // part of a larger expression. Disambiguate by lookahead: ident '=' is an
    // alias only if what follows '=' parses as an expression — POSTQUEL's
    // actual rule; we approximate with: ident '=' not-followed-by '=' .
    if (Peek().kind == TokKind::kIdent && toks_[pos_ + 1].kind == TokKind::kSymbol &&
        toks_[pos_ + 1].text == "=") {
      item.alias = Take().text;
      ++pos_;  // '='
    }
    INV_ASSIGN_OR_RETURN(item.expr, ParseOr());
    if (item.alias.empty()) {
      item.alias = item.expr->kind == ExprKind::kColumnRef
                       ? item.expr->column
                       : "col" + std::to_string(s.targets.size());
    }
    s.targets.push_back(std::move(item));
    if (!EatSymbol(",")) {
      break;
    }
  }
  INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
  if (EatIdent("from")) {
    for (;;) {
      RangeDecl decl;
      INV_ASSIGN_OR_RETURN(decl.var, ExpectIdent());
      INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "in"));
      INV_ASSIGN_OR_RETURN(decl.table, ExpectIdent());
      if (EatSymbol("[")) {
        // naming["123"] or naming[123]: timestamp in simulated microseconds.
        if (Peek().kind == TokKind::kString) {
          decl.as_of = static_cast<Timestamp>(std::stoull(Take().text));
        } else if (Peek().kind == TokKind::kInt) {
          decl.as_of = static_cast<Timestamp>(Take().int_val);
        } else {
          return Status::InvalidArgument("expected timestamp in time-travel bracket");
        }
        INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "]"));
      }
      s.from.push_back(std::move(decl));
      if (!EatSymbol(",")) {
        break;
      }
    }
  }
  if (EatIdent("where")) {
    INV_ASSIGN_OR_RETURN(s.where, ParseOr());
  }
  INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
  return s;
}

Result<std::vector<SetItem>> Parser::ParseSetList() {
  std::vector<SetItem> sets;
  INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
  for (;;) {
    SetItem item;
    INV_ASSIGN_OR_RETURN(item.column, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "="));
    INV_ASSIGN_OR_RETURN(item.expr, ParseOr());
    sets.push_back(std::move(item));
    if (!EatSymbol(",")) {
      break;
    }
  }
  INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
  return sets;
}

Result<Statement> Parser::ParseAppend() {
  Statement s;
  s.kind = StmtKind::kAppend;
  INV_ASSIGN_OR_RETURN(s.table, ExpectIdent());
  INV_ASSIGN_OR_RETURN(s.sets, ParseSetList());
  INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
  return s;
}

Result<Statement> Parser::ParseReplace() {
  Statement s;
  s.kind = StmtKind::kReplace;
  INV_ASSIGN_OR_RETURN(s.table, ExpectIdent());
  INV_ASSIGN_OR_RETURN(s.sets, ParseSetList());
  if (EatIdent("where")) {
    INV_ASSIGN_OR_RETURN(s.where, ParseOr());
  }
  INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
  return s;
}

Result<Statement> Parser::ParseDelete() {
  Statement s;
  s.kind = StmtKind::kDelete;
  INV_ASSIGN_OR_RETURN(s.table, ExpectIdent());
  if (EatIdent("where")) {
    INV_ASSIGN_OR_RETURN(s.where, ParseOr());
  }
  INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
  return s;
}

Result<Statement> Parser::ParseCreate() {
  Statement s;
  s.kind = StmtKind::kCreate;
  INV_ASSIGN_OR_RETURN(s.table, ExpectIdent());
  INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
  for (;;) {
    INV_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "="));
    INV_ASSIGN_OR_RETURN(std::string type, ExpectIdent());
    s.columns.emplace_back(std::move(col), std::move(type));
    if (!EatSymbol(",")) {
      break;
    }
  }
  INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
  INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
  return s;
}

Result<Statement> Parser::ParseDefine() {
  Statement s;
  if (EatIdent("type")) {
    s.kind = StmtKind::kDefineType;
    INV_ASSIGN_OR_RETURN(s.name, ExpectIdent());
  } else if (EatIdent("function")) {
    s.kind = StmtKind::kDefineFunction;
    INV_ASSIGN_OR_RETURN(s.name, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    if (Peek().kind != TokKind::kInt) {
      return Status::InvalidArgument("define function: expected argument count");
    }
    s.nargs = static_cast<int>(Take().int_val);
    INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "returns"));
    INV_ASSIGN_OR_RETURN(s.rettype, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "as"));
    INV_ASSIGN_OR_RETURN(s.lang, ExpectIdent());
    if (Peek().kind != TokKind::kString) {
      return Status::InvalidArgument("define function: expected source string");
    }
    s.src = Take().text;
  } else if (EatIdent("index")) {
    s.kind = StmtKind::kDefineIndex;
    INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "on"));
    INV_ASSIGN_OR_RETURN(s.table, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    INV_ASSIGN_OR_RETURN(s.index_column, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
  } else if (EatIdent("rule")) {
    s.kind = StmtKind::kDefineRule;
    INV_ASSIGN_OR_RETURN(s.name, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "on"));
    INV_ASSIGN_OR_RETURN(s.table, ExpectIdent());
    INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "where"));
    INV_ASSIGN_OR_RETURN(s.where, ParseOr());
    INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "do"));
    INV_RETURN_IF_ERROR(Expect(TokKind::kIdent, "migrate"));
    s.rule_action = "migrate";
    if (Peek().kind != TokKind::kInt) {
      return Status::InvalidArgument("define rule: expected device id after migrate");
    }
    s.rule_device = static_cast<int>(Take().int_val);
  } else {
    return Status::InvalidArgument("define: expected type/function/index/rule");
  }
  INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
  return s;
}

Result<Statement> Parser::ParseVacuum() {
  Statement s;
  s.kind = StmtKind::kVacuum;
  INV_ASSIGN_OR_RETURN(s.table, ExpectIdent());
  INV_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
  return s;
}

Result<ExprPtr> Parser::ParseOr() {
  INV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (EatIdent("or")) {
    INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::Binary("or", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  INV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (EatIdent("and")) {
    INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::Binary("and", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (EatIdent("not")) {
    INV_ASSIGN_OR_RETURN(ExprPtr x, ParseNot());
    return Expr::Unary("not", std::move(x));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  INV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  static constexpr std::string_view kOps[] = {"=", "!=", "<=", ">=", "<", ">"};
  for (std::string_view op : kOps) {
    if (AtSymbol(op)) {
      ++pos_;
      INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return Expr::Binary(std::string(op), std::move(lhs), std::move(rhs));
    }
  }
  // "x in y": substring / membership test (paper: "RISC" in keywords(file)).
  if (EatIdent("in")) {
    INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Binary("in", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  INV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    if (EatSymbol("+")) {
      INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary("+", std::move(lhs), std::move(rhs));
    } else if (EatSymbol("-")) {
      INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary("-", std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  INV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  for (;;) {
    if (EatSymbol("*")) {
      INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary("*", std::move(lhs), std::move(rhs));
    } else if (EatSymbol("/")) {
      INV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary("/", std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (EatSymbol("-")) {
    INV_ASSIGN_OR_RETURN(ExprPtr x, ParseUnary());
    return Expr::Unary("-", std::move(x));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokKind::kInt: {
      const int64_t v = Take().int_val;
      if (v >= INT32_MIN && v <= INT32_MAX) {
        return Expr::Const(Value::Int4(static_cast<int32_t>(v)));
      }
      return Expr::Const(Value::Int8(v));
    }
    case TokKind::kFloat:
      return Expr::Const(Value::Float8(Take().float_val));
    case TokKind::kString:
      return Expr::Const(Value::Text(Take().text));
    case TokKind::kParam:
      return Expr::Param(static_cast<int>(Take().int_val));
    case TokKind::kSymbol:
      if (t.text == "(") {
        ++pos_;
        INV_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
        INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
        return e;
      }
      break;
    case TokKind::kIdent: {
      std::string name = Take().text;
      if (name == "true") {
        return Expr::Const(Value::Bool(true));
      }
      if (name == "false") {
        return Expr::Const(Value::Bool(false));
      }
      if (name == "null") {
        return Expr::Const(Value::Null());
      }
      if (EatSymbol("(")) {
        std::vector<ExprPtr> args;
        if (!AtSymbol(")")) {
          for (;;) {
            INV_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
            args.push_back(std::move(arg));
            if (!EatSymbol(",")) {
              break;
            }
          }
        }
        INV_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
        return Expr::Call(std::move(name), std::move(args));
      }
      if (EatSymbol(".")) {
        INV_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return Expr::ColumnRef(std::move(name), std::move(col));
      }
      return Expr::ColumnRef("", std::move(name));
    }
    default:
      break;
  }
  return Status::InvalidArgument("parse error at offset " + std::to_string(t.offset) +
                                 ": unexpected '" + t.text + "'");
}

}  // namespace

Result<Statement> ParseStatement(std::string_view input) {
  INV_ASSIGN_OR_RETURN(auto tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseStmt();
}

Result<ExprPtr> ParseExpression(std::string_view input) {
  INV_ASSIGN_OR_RETURN(auto tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseExprPublic();
}

}  // namespace invfs
