#include "src/query/virtual_tables.h"

#include <set>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"

namespace invfs {

namespace {

// Reserved oids well below the catalog's first allocated oid; never stored
// in pg_class, only used so EvalContext bindings have distinct identities.
constexpr Oid kInvfsStatsOid = 90;
constexpr Oid kInvfsTraceOid = 91;
constexpr Oid kInvfsSpansOid = 92;
constexpr Oid kInvfsSloOid = 93;
constexpr Oid kInvfsTimeseriesOid = 94;

TableInfo* StatsTableInfo() {
  static TableInfo* info = [] {
    auto* t = new TableInfo();
    t->oid = kInvfsStatsOid;
    t->name = "invfs_stats";
    t->schema = Schema{{"name", TypeId::kText},
                       {"label", TypeId::kText},
                       {"kind", TypeId::kText},
                       {"value", TypeId::kInt8},
                       {"count", TypeId::kInt8},
                       {"sum", TypeId::kInt8}};
    return t;
  }();
  return info;
}

TableInfo* TraceTableInfo() {
  static TableInfo* info = [] {
    auto* t = new TableInfo();
    t->oid = kInvfsTraceOid;
    t->name = "invfs_trace";
    t->schema = Schema{{"seq", TypeId::kInt8},
                       {"micros", TypeId::kInt8},
                       {"thread", TypeId::kInt8},
                       {"event", TypeId::kText},
                       {"a", TypeId::kInt8},
                       {"b", TypeId::kInt8},
                       {"c", TypeId::kInt8}};
    return t;
  }();
  return info;
}

TableInfo* SpansTableInfo() {
  static TableInfo* info = [] {
    auto* t = new TableInfo();
    t->oid = kInvfsSpansOid;
    t->name = "invfs_spans";
    t->schema = Schema{{"trace", TypeId::kInt8},
                       {"span", TypeId::kInt8},
                       {"parent", TypeId::kInt8},
                       {"name", TypeId::kText},
                       // Tenant tag active when the span opened ("" =
                       // untagged): the join key between a request tree and
                       // the per-tenant invfs_slo rows.
                       {"tenant", TypeId::kText},
                       {"thread", TypeId::kInt8},
                       {"start", TypeId::kInt8},
                       {"duration", TypeId::kInt8},
                       {"a", TypeId::kInt8},
                       {"b", TypeId::kInt8}};
    return t;
  }();
  return info;
}

TableInfo* SloTableInfo() {
  static TableInfo* info = [] {
    auto* t = new TableInfo();
    t->oid = kInvfsSloOid;
    t->name = "invfs_slo";
    t->schema = Schema{{"op", TypeId::kText},
                       // "" = the all-tenants aggregate row; otherwise one
                       // row per tenant observed for this op class.
                       {"tenant", TypeId::kText},
                       {"count", TypeId::kInt8},
                       {"p50", TypeId::kInt8},
                       {"p99", TypeId::kInt8},
                       {"p999", TypeId::kInt8},
                       {"target_p50", TypeId::kInt8},
                       {"target_p99", TypeId::kInt8},
                       {"target_p999", TypeId::kInt8},
                       {"ok", TypeId::kBool},
                       // "ok" / "VIOLATED" / "no data" — distinguishes a
                       // never-exercised op class (count 0, zeros above are
                       // absence of data) from a passing one.
                       {"verdict", TypeId::kText},
                       // Error-budget burn against the p99 target (1.0 =
                       // budget spent exactly; see kSloErrorBudget).
                       {"burn", TypeId::kFloat8}};
    return t;
  }();
  return info;
}

TableInfo* TimeseriesTableInfo() {
  static TableInfo* info = [] {
    auto* t = new TableInfo();
    t->oid = kInvfsTimeseriesOid;
    t->name = "invfs_timeseries";
    t->schema = Schema{{"sample", TypeId::kInt8},
                       {"micros", TypeId::kInt8},
                       {"name", TypeId::kText},
                       {"label", TypeId::kText},
                       {"kind", TypeId::kText},
                       // Counter delta over the window / gauge point value /
                       // histogram observations in the window.
                       {"value", TypeId::kInt8},
                       {"count", TypeId::kInt8},
                       // Windowed percentiles (histograms; 0 otherwise).
                       {"p50", TypeId::kInt8},
                       {"p99", TypeId::kInt8},
                       {"p999", TypeId::kInt8}};
    return t;
  }();
  return info;
}

void AppendStatsRows(const std::vector<MetricSample>& samples,
                     std::set<std::pair<std::string, std::string>>* seen,
                     std::vector<Row>* out) {
  for (const MetricSample& s : samples) {
    if (!seen->insert({s.name, s.label}).second) {
      continue;
    }
    out->push_back(Row{Value::Text(s.name), Value::Text(s.label),
                       Value::Text(MetricKindName(s.kind)), Value::Int8(s.value),
                       Value::Int8(static_cast<int64_t>(s.count)),
                       Value::Int8(static_cast<int64_t>(s.sum))});
  }
}

}  // namespace

bool IsVirtualTable(std::string_view name) {
  return name == "invfs_stats" || name == "invfs_trace" ||
         name == "invfs_spans" || name == "invfs_slo" ||
         name == "invfs_timeseries";
}

TableInfo* VirtualTableInfo(std::string_view name) {
  if (name == "invfs_trace") {
    return TraceTableInfo();
  }
  if (name == "invfs_spans") {
    return SpansTableInfo();
  }
  if (name == "invfs_slo") {
    return SloTableInfo();
  }
  if (name == "invfs_timeseries") {
    return TimeseriesTableInfo();
  }
  return StatsTableInfo();
}

std::vector<Row> MaterializeVirtualTable(Database* db, std::string_view name) {
  std::vector<Row> rows;
  if (name == "invfs_trace") {
    for (const TraceRecord& r : db->metrics().trace().Snapshot()) {
      rows.push_back(Row{Value::Int8(static_cast<int64_t>(r.seq)),
                         Value::Int8(static_cast<int64_t>(r.micros)),
                         Value::Int8(static_cast<int64_t>(r.thread)),
                         Value::Text(TraceEventName(r.event)),
                         Value::Int8(static_cast<int64_t>(r.a)),
                         Value::Int8(static_cast<int64_t>(r.b)),
                         Value::Int8(static_cast<int64_t>(r.c))});
    }
    return rows;
  }
  if (name == "invfs_spans") {
    for (const SpanRecord& r : db->metrics().spans().Snapshot()) {
      rows.push_back(Row{Value::Int8(static_cast<int64_t>(r.trace_id)),
                         Value::Int8(static_cast<int64_t>(r.span_id)),
                         Value::Int8(static_cast<int64_t>(r.parent_id)),
                         Value::Text(r.name == nullptr ? "" : r.name),
                         Value::Text(r.tenant == nullptr ? "" : r.tenant),
                         Value::Int8(static_cast<int64_t>(r.thread)),
                         Value::Int8(static_cast<int64_t>(r.start_micros)),
                         Value::Int8(static_cast<int64_t>(r.dur_micros)),
                         Value::Int8(static_cast<int64_t>(r.a)),
                         Value::Int8(static_cast<int64_t>(r.b))});
    }
    return rows;
  }
  if (name == "invfs_slo") {
    for (const SloReport& r :
         EvaluateSlos(&db->metrics(), db->options().slo_targets)) {
      rows.push_back(Row{Value::Text(r.op), Value::Text(r.tenant),
                         Value::Int8(static_cast<int64_t>(r.count)),
                         Value::Int8(static_cast<int64_t>(r.p50_us)),
                         Value::Int8(static_cast<int64_t>(r.p99_us)),
                         Value::Int8(static_cast<int64_t>(r.p999_us)),
                         Value::Int8(static_cast<int64_t>(r.target.p50_us)),
                         Value::Int8(static_cast<int64_t>(r.target.p99_us)),
                         Value::Int8(static_cast<int64_t>(r.target.p999_us)),
                         Value::Bool(r.ok), Value::Text(SloVerdict(r)),
                         Value::Float8(r.burn)});
    }
    return rows;
  }
  if (name == "invfs_timeseries") {
    for (const TimeSeriesPoint& pt : db->metrics().timeseries().Snapshot()) {
      rows.push_back(Row{Value::Int8(static_cast<int64_t>(pt.sample)),
                         Value::Int8(static_cast<int64_t>(pt.at_micros)),
                         Value::Text(pt.name), Value::Text(pt.label),
                         Value::Text(MetricKindName(pt.kind)),
                         Value::Int8(pt.value),
                         Value::Int8(static_cast<int64_t>(pt.count)),
                         Value::Int8(static_cast<int64_t>(pt.p50)),
                         Value::Int8(static_cast<int64_t>(pt.p99)),
                         Value::Int8(static_cast<int64_t>(pt.p999))});
    }
    return rows;
  }
  // invfs_stats: this database's registry first, then process-wide metrics
  // (logging) that the database does not shadow.
  std::set<std::pair<std::string, std::string>> seen;
  AppendStatsRows(db->metrics().Snapshot(), &seen, &rows);
  AppendStatsRows(MetricsRegistry::Default().Snapshot(), &seen, &rows);
  return rows;
}

}  // namespace invfs
