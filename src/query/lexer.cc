#include "src/query/lexer.h"

#include <cctype>

namespace invfs {

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      tok.kind = TokKind::kIdent;
      tok.text = std::string(input.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') {
          // ".." or trailing dot would be odd; a single dot makes a float.
          if (is_float) {
            break;
          }
          is_float = true;
        }
        ++j;
      }
      const std::string text(input.substr(i, j - i));
      if (is_float) {
        tok.kind = TokKind::kFloat;
        tok.float_val = std::stod(text);
      } else {
        tok.kind = TokKind::kInt;
        tok.int_val = std::stoll(text);
      }
      tok.text = text;
      i = j;
    } else if (c == '"') {
      size_t j = i + 1;
      std::string body;
      while (j < n && input[j] != '"') {
        if (input[j] == '\\' && j + 1 < n) {
          ++j;
        }
        body.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      tok.kind = TokKind::kString;
      tok.text = std::move(body);
      i = j + 1;
    } else if (c == '$') {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j == i + 1) {
        return Status::InvalidArgument("bad parameter reference at offset " +
                                       std::to_string(i));
      }
      tok.kind = TokKind::kParam;
      tok.int_val = std::stoll(std::string(input.substr(i + 1, j - i - 1)));
      i = j;
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two(input.substr(i, 2));
        if (two == "!=" || two == "<=" || two == ">=") {
          tok.kind = TokKind::kSymbol;
          tok.text = two;
          out.push_back(tok);
          i += 2;
          continue;
        }
      }
      static constexpr std::string_view kSingles = "(),.=<>+-*/[]";
      if (kSingles.find(c) == std::string_view::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") + c +
                                       "' at offset " + std::to_string(i));
      }
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace invfs
