// FunctionRegistry: native (C++) functions callable from POSTQUEL.
//
// The paper's POSTGRES dynamically loads user C functions into the data
// manager and runs them in its address space — the mechanism behind both the
// file-type functions (snow(file), keywords(file)) and the 7x-faster
// single-process benchmark configuration. We reproduce the call path with a
// registry of C++ callables: registration plays the role of dynamic loading;
// dispatch from the query engine and in-address-space execution are
// identical. pg_proc rows carry the catalog-side metadata.

#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>

#include "src/storage/value.h"
#include "src/txn/snapshot.h"
#include "src/util/status.h"

namespace invfs {

class Database;
struct TableInfo;
class FunctionRegistry;

// Everything an expression needs at evaluation time.
struct EvalContext {
  Database* db = nullptr;
  TxnId txn = kInvalidTxn;
  Snapshot snap;
  const FunctionRegistry* registry = nullptr;
  // $1..$n bindings while evaluating a POSTQUEL-language function body.
  const std::vector<Value>* params = nullptr;

  struct Binding {
    const TableInfo* table = nullptr;
    const Row* row = nullptr;
  };
  // Range-variable bindings for the current joined tuple.
  std::map<std::string, Binding, std::less<>> bindings;
};

using NativeFn = std::function<Result<Value>(std::span<const Value>, EvalContext&)>;

class FunctionRegistry {
 public:
  // Register (or replace) a native function. This is our stand-in for
  // POSTGRES' dynamic loading of user C code into the data manager.
  void RegisterNative(const std::string& name, NativeFn fn) {
    fns_[name] = std::move(fn);
  }

  Result<const NativeFn*> Get(const std::string& name) const {
    auto it = fns_.find(name);
    if (it == fns_.end()) {
      return Status::NotFound("no native function '" + name + "' loaded");
    }
    return &it->second;
  }

  bool Has(const std::string& name) const { return fns_.contains(name); }

 private:
  std::map<std::string, NativeFn> fns_;
};

}  // namespace invfs
