#include "src/query/ast_print.h"

namespace invfs {
namespace {

std::string ValueLiteral(const Value& v) {
  if (v.is_null()) {
    return "null";
  }
  if (v.HasType(TypeId::kText)) {
    return "\"" + v.AsText() + "\"";  // rule predicates never embed quotes
  }
  if (v.HasType(TypeId::kBool)) {
    return v.AsBool() ? "true" : "false";
  }
  if (v.HasType(TypeId::kOid)) {
    return std::to_string(v.AsOid());
  }
  if (v.HasType(TypeId::kTimestamp)) {
    return std::to_string(v.AsTimestamp());
  }
  return v.ToString();
}

}  // namespace

std::string ExprToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kConst:
      return ValueLiteral(expr.constant);
    case ExprKind::kParam:
      return "$" + std::to_string(expr.param_index);
    case ExprKind::kColumnRef:
      return expr.range_var.empty() ? expr.column : expr.range_var + "." + expr.column;
    case ExprKind::kFuncCall: {
      std::string out = expr.name + "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += ExprToString(*expr.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kUnaryOp:
      return "(" + expr.name + " " + ExprToString(*expr.args[0]) + ")";
    case ExprKind::kBinaryOp:
      return "(" + ExprToString(*expr.args[0]) + " " + expr.name + " " +
             ExprToString(*expr.args[1]) + ")";
  }
  return "?";
}

}  // namespace invfs
