// Query executor: nested-loop joins over sequential or index scans, with
// predicate evaluation, projection, and DML/DDL statement execution.
//
// Planning is deliberately simple (POSTGRES 4.0.1 era): for each range
// variable the executor picks an index scan when the qualification contains
// an equality on a single-column B-tree index whose other side is computable
// from already-bound range variables; otherwise it sequential-scans.
// Historical range variables (time-travel brackets) scan heap + archive.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/query/ast.h"
#include "src/query/eval.h"
#include "src/query/function_registry.h"
#include "src/util/status.h"

namespace invfs {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  std::string ToString() const;  // aligned text table for examples/monitor
};

// Statements the executor delegates upward (avoids layering cycles: the rules
// engine and vacuum cleaner sit above the query module).
struct ExecutorHooks {
  std::function<Status(const Statement&, TxnId)> on_define_rule;
  std::function<Status(const std::string& table, TxnId)> on_vacuum;
};

// Coerce `v` to column type `t` (integer width widening/narrowing, oid and
// timestamp from integers, int to float). Identity when already right.
Result<Value> CoerceValue(const Value& v, TypeId t);

class Executor {
 public:
  Executor(Database* db, FunctionRegistry* registry, ExecutorHooks hooks = {});

  Result<ResultSet> Execute(const Statement& stmt, TxnId txn);
  // Parse + execute one statement.
  Result<ResultSet> ExecuteQuery(std::string_view text, TxnId txn);

  FunctionRegistry* registry() { return registry_; }

 private:
  Result<ResultSet> ExecRetrieve(const Statement& stmt, TxnId txn);
  Result<ResultSet> ExecAppend(const Statement& stmt, TxnId txn);
  Result<ResultSet> ExecReplace(const Statement& stmt, TxnId txn);
  Result<ResultSet> ExecDelete(const Statement& stmt, TxnId txn);
  Result<ResultSet> ExecCreate(const Statement& stmt, TxnId txn);
  Result<ResultSet> ExecDefineType(const Statement& stmt, TxnId txn);
  Result<ResultSet> ExecDefineFunction(const Statement& stmt, TxnId txn);
  Result<ResultSet> ExecDefineIndex(const Statement& stmt, TxnId txn);

  Database* db_;
  FunctionRegistry* registry_;
  ExecutorHooks hooks_;
  // query.* metrics (in db_'s registry): retrieves executed, and heap/index
  // tuples fetched by them (virtual-table rows excluded, so a query over
  // invfs_stats does not perturb the counters it reports).
  Counter* plans_run_;
  Counter* tuples_scanned_;
};

}  // namespace invfs
