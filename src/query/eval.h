// Expression evaluator over EvalContext bindings.

#pragma once

#include "src/query/ast.h"
#include "src/query/function_registry.h"

namespace invfs {

// Evaluate `expr` in `ctx`. Comparison/arithmetic on NULL yields NULL; NULL
// in a boolean position counts as false.
Result<Value> Eval(const Expr& expr, EvalContext& ctx);

// Convenience: evaluate as a boolean predicate (NULL -> false).
Result<bool> EvalPredicate(const Expr& expr, EvalContext& ctx);

}  // namespace invfs
