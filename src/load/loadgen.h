// Open-loop multi-tenant workload driver over the SimClock.
//
// The paper evaluates Inversion with closed-loop microbenchmarks: one client,
// the next operation issued when the previous returns. Real file servers —
// the Sequoia deployment the paper describes serving "a network file server"
// for many scientists — face *open-loop* load: mail arrives whether or not
// the last delivery finished. The distinction matters for measurement. A
// closed-loop driver that stalls stops sending, so its recorded latencies
// silently omit every request that *would* have arrived during the stall —
// the coordinated-omission trap. This driver therefore:
//
//   * schedules every client's arrivals on the intended timeline (Poisson or
//     bursty inter-arrivals from a deterministic Rng), independent of
//     completions: the next arrival is intended_prev + interarrival, never
//     completion + interarrival;
//   * measures each operation from its *intended* start to its completion on
//     the sim clock, so time an op spent queued behind a busy server counts
//     against it. When the server saturates, latencies grow without bound —
//     exactly the signal a closed-loop harness hides.
//
// Mechanics: single-threaded event pump over a min-heap of clients keyed by
// next intended arrival. If the sim clock is behind the next intended time
// the pump advances it (the server was idle); if it is ahead, the op is late
// already and its queueing lag is charged to its latency. Every operation is
// self-contained (any transaction it opens commits or aborts within the
// step), so the pump can interleave with other SimClock users — the torture
// harness drives it between transactions via Step() for crash testing under
// load.
//
// Tenancy: each profile is one tenant. The pump installs the tenant's tag
// (ScopedTenantTag) around each op, so entry-point histograms, spans, and
// the SLO report attribute per tenant end to end; the driver additionally
// records its CO-correct sim-time latencies into load.latency_us{<tenant>},
// which the per-profile load objectives are graded against and the
// timeseries sampler (ticked by the pump) turns into per-tenant curves.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/fault/faulty_transport.h"
#include "src/inversion/inv_fs.h"
#include "src/net/rpc.h"
#include "src/obs/slo.h"
#include "src/obs/tenant.h"
#include "src/util/random.h"

namespace invfs {

class TimeSeriesSampler;

// What a tenant's clients do per arrival. Each behavior is one
// self-contained operation sequence (begin..commit inside the step).
enum class TenantKind {
  // Mail server: fsync-heavy small files — explicit transaction around
  // create + write + close, one commit per delivered message.
  kMail,
  // Analytics: ad-hoc POSTQUEL scans over the file metadata tables.
  kAnalytics,
  // Auditors: historical p_open of setup-time files (time travel), read,
  // close — read-only, lock-free.
  kAudit,
  // WORM archive: append-once bulk files plus periodic migration-rule
  // passes pushing cold data toward the jukebox.
  kArchive,
};

const char* TenantKindName(TenantKind kind);

enum class ArrivalKind {
  kPoisson,  // exponential inter-arrivals at the profile rate
  kUniform,  // fixed inter-arrival 1/rate
  // On/off: `burst` back-to-back arrivals (1 ms apart), then an exponential
  // gap sized so the long-run rate still matches ops_per_sec.
  kBursty,
};

// Declarative tenant spec: who, how many, how often, doing what, judged
// against which load-latency objective.
struct TenantProfile {
  std::string name;
  TenantKind kind = TenantKind::kMail;
  size_t clients = 10;
  double ops_per_sec = 1.0;  // per client, long-run intended rate
  ArrivalKind arrival = ArrivalKind::kPoisson;
  uint32_t burst = 4;          // arrivals per burst (kBursty only)
  uint32_t bytes_per_op = 2048;  // payload written/read per operation
  uint32_t setup_files = 4;    // per-tenant file pool created before the run
  // Objective on the CO-correct load latency (sim micros, intended-start to
  // completion). op is set to the tenant name by ParseProfileSpec/builtins.
  SloTarget load_slo;
};

// The four builtin tenants at their 1x size (10/6/3/3 clients = 22 total).
std::vector<TenantProfile> BuiltinProfiles();

// Parse "name[:key=value,...]" where name is a builtin (mail, analytics,
// audit, archive) and keys are clients, rate, arrival (poisson|uniform|
// bursty), burst, bytes, files, p50, p99, p999 (sim micros; 0 =
// unconstrained). Example: "mail:clients=500,rate=2,arrival=bursty,burst=8".
Result<TenantProfile> ParseProfileSpec(std::string_view spec);

// Scale a profile mix to `total_clients`, preserving the mix's proportions
// (every profile keeps at least one client).
void ScaleProfiles(std::vector<TenantProfile>* profiles, size_t total_clients);

// How the fleet reaches the filesystem.
enum class LoadTransport {
  kInProcess,  // one InvSession per client, direct calls
  // Every client is a RemoteFileClient: full marshalling, the NetModel
  // pricing every arrival's frames, and (optionally) FaultyTransport rates
  // injecting wire faults the retry/DRC machinery must absorb.
  kRpc,
};

struct LoadGenOptions {
  uint64_t seed = 42;
  double seconds = 2.0;        // intended-arrival horizon, sim time
  std::string root = "/load";  // namespace the driver works under
  std::vector<TenantProfile> profiles = BuiltinProfiles();
  LoadTransport transport = LoadTransport::kInProcess;
  NetFaultRates net_faults;    // kRpc only: per-exchange fault probabilities
  RpcRetryPolicy rpc_retry;    // kRpc only: per-client resilience policy
  // Test hook: at sim time `stall_at` (if nonzero), freeze the "server" for
  // `stall_for` micros (one clock jump before the next op). An open-loop
  // driver must charge that stall to every arrival it queued — the
  // coordinated-omission test pins exactly that.
  SimMicros stall_at = 0;
  SimMicros stall_for = 0;
};

// Per-tenant outcome of a run.
struct TenantLoadStats {
  std::string tenant;
  TenantKind kind = TenantKind::kMail;
  size_t clients = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t bytes = 0;          // payload moved (reads + writes)
  SloReport slo;               // graded CO-correct load latency
  uint64_t max_lag_us = 0;     // worst intended-start queueing delay
  double offered_ops_per_sec = 0.0;   // clients * rate
  double achieved_ops_per_sec = 0.0;  // ops / actual sim duration
};

struct LoadGenReport {
  uint64_t seed = 0;
  size_t clients = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  double intended_seconds = 0.0;  // the arrival horizon
  double sim_seconds = 0.0;       // actual duration (overrun => saturated)
  // Sim micros the pump finished past the last intended arrival: ~0 when the
  // server keeps up, grows with offered load once it cannot — the report's
  // saturation signal.
  uint64_t end_lag_us = 0;
  uint64_t span_drops = 0;   // SpanRing overwrites during the run
  uint64_t trace_drops = 0;
  uint64_t samples = 0;      // timeseries samples captured
  // RPC transport only (all zero in-process).
  uint64_t rpc_exchanges = 0;   // round trips on the wire
  uint64_t rpc_retries = 0;     // client re-sends across the fleet
  uint64_t rpc_faults = 0;      // wire faults injected
  uint64_t rpc_drc_hits = 0;    // retried ops answered from the server DRC
  std::vector<TenantLoadStats> tenants;

  // True when every tenant's load objective held (count>0 rows only).
  bool AllOk() const;
  std::string DumpText() const;
  std::string DumpJson() const;
};

class LoadGen {
 public:
  LoadGen(InversionFs* fs, LoadGenOptions options);
  ~LoadGen();

  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  // Create the working directories, per-tenant file pools, the archive
  // migration rule, and one session per client; record the historical
  // timestamp the auditors will time-travel to; seed the arrival heap.
  Status Setup();

  // Execute the next intended arrival (advancing the sim clock as needed)
  // and tick the timeseries sampler. Returns false when every arrival inside
  // the horizon has run. Callers interleaving foreign work (torture) call
  // this instead of Run.
  bool Step();

  // Setup + pump to completion + one final timeseries sample.
  Status Run();

  // Totals so far; callable mid-run (the torture harness reports progress).
  LoadGenReport Report() const;

  size_t total_clients() const;

 private:
  struct Client;
  struct TenantState;

  void PushHeap(Client& c);
  void ScheduleNext(Client& c, SimMicros from_intended);
  // One operation of `c`'s tenant kind; returns ok and bytes moved.
  Status RunOp(Client& c, uint64_t* bytes);
  // The op body, generic over the access path: Api is InvSession (in-process)
  // or RemoteFileClient (every call marshalled through the wire).
  template <typename Api>
  Status RunOpOn(Api& api, Client& c, uint64_t* bytes);

  InversionFs* fs_;
  LoadGenOptions options_;
  SimClock* clock_;
  // Cached at Setup so the per-op path never takes the registry mutex.
  TimeSeriesSampler* sampler_ = nullptr;
  Gauge* lag_gauge_ = nullptr;
  SimMicros start_ = 0;
  SimMicros horizon_ = 0;        // start_ + seconds
  SimMicros last_intended_ = 0;  // latest intended arrival executed
  bool setup_done_ = false;
  bool stalled_ = false;
  uint64_t spans_before_ = 0;    // drop counters at Setup (delta = this run)
  uint64_t traces_before_ = 0;
  uint64_t samples_before_ = 0;
  // RPC transport stack (kRpc only): one server + one priced, optionally
  // faulty wire shared by the whole fleet, one stub per client.
  std::unique_ptr<InversionServer> rpc_server_;
  std::unique_ptr<NetModel> rpc_net_;
  std::unique_ptr<LoopbackTransport> rpc_loop_;
  std::unique_ptr<FaultyTransport> rpc_wire_;
  Counter* drc_hits_counter_ = nullptr;  // cached for the report delta
  uint64_t drc_hits_before_ = 0;
  std::vector<TenantState> tenants_;
  std::vector<Client> clients_;
  // Min-heap of client indices keyed by next intended arrival.
  std::vector<size_t> heap_;
};

}  // namespace invfs
