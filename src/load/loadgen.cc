#include "src/load/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/timeseries.h"

namespace invfs {

namespace {

// Minimum spacing of back-to-back arrivals inside a burst.
constexpr SimMicros kBurstSpacingMicros = 1000;

// One migration-rule pass per this many archive-client operations.
constexpr uint64_t kArchiveMigrateEvery = 16;

// Files above this size are cold data for the archive migration rule. The
// archive behavior writes 2x its bytes_per_op (default 16 KB), mail writes
// single small chunks, so with default profiles only archive bulk files trip
// the rule.
constexpr int64_t kArchiveMigrateBytes = 12000;

double ExpSample(Rng& rng, double mean) {
  // Inverse-CDF; 1-U keeps the argument in (0,1] so log() stays finite.
  return -std::log(1.0 - rng.NextDouble()) * mean;
}

uint64_t MixSeed(uint64_t seed, uint64_t tenant, uint64_t client) {
  // SplitMix-style decorrelation so client streams never overlap.
  uint64_t x = seed ^ (tenant * 0x9E3779B97F4A7C15ULL) ^
               (client * 0xBF58476D1CE4E5B9ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Status IgnoreNotFound(const Status& s) {
  if (s.ok() || s.code() == ErrorCode::kNotFound) {
    return Status::Ok();
  }
  return s;
}

}  // namespace

const char* TenantKindName(TenantKind kind) {
  switch (kind) {
    case TenantKind::kMail:
      return "mail";
    case TenantKind::kAnalytics:
      return "analytics";
    case TenantKind::kAudit:
      return "audit";
    case TenantKind::kArchive:
      return "archive";
  }
  return "unknown";
}

std::vector<TenantProfile> BuiltinProfiles() {
  // Per-client rates are calibrated to the simulated device stack: the heavy
  // ops (a mail delivery's create+commit, an archive bulk write) cost
  // 100-250 sim ms on one serialized server, so the 1x mix offers ~3.5 ops/s
  // (~0.35 utilization) and stays comfortably open-loop-stable. Load
  // objectives are CO-correct sim micros (intended start -> completion),
  // sized well above an unsaturated run so the baseline smoke passes with
  // margin while a saturated pump (queueing lag in every latency) blows
  // through them — which is the point.
  auto slo = [](std::string name, uint64_t p99) {
    SloTarget t;
    t.op = std::move(name);
    t.p99_us = p99;
    return t;
  };
  TenantProfile mail;
  mail.name = "mail";
  mail.kind = TenantKind::kMail;
  mail.clients = 10;
  mail.ops_per_sec = 0.2;
  mail.arrival = ArrivalKind::kPoisson;
  mail.bytes_per_op = 2048;
  mail.setup_files = 2;
  mail.load_slo = slo("mail", 2'000'000);

  TenantProfile analytics;
  analytics.name = "analytics";
  analytics.kind = TenantKind::kAnalytics;
  analytics.clients = 6;
  analytics.ops_per_sec = 0.1;
  analytics.arrival = ArrivalKind::kBursty;
  analytics.burst = 4;
  analytics.bytes_per_op = 0;
  analytics.setup_files = 4;
  analytics.load_slo = slo("analytics", 3'000'000);

  TenantProfile audit;
  audit.name = "audit";
  audit.kind = TenantKind::kAudit;
  audit.clients = 3;
  audit.ops_per_sec = 0.2;
  audit.arrival = ArrivalKind::kPoisson;
  audit.bytes_per_op = 4096;
  audit.setup_files = 4;
  audit.load_slo = slo("audit", 1'000'000);

  TenantProfile archive;
  archive.name = "archive";
  archive.kind = TenantKind::kArchive;
  archive.clients = 3;
  archive.ops_per_sec = 0.1;
  archive.arrival = ArrivalKind::kUniform;
  archive.bytes_per_op = 8192;
  archive.setup_files = 2;
  archive.load_slo = slo("archive", 5'000'000);
  return {mail, analytics, audit, archive};
}

Result<TenantProfile> ParseProfileSpec(std::string_view spec) {
  const size_t colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  TenantProfile profile;
  bool found = false;
  for (TenantProfile& p : BuiltinProfiles()) {
    if (p.name == name) {
      profile = std::move(p);
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::InvalidArgument("unknown profile '" + std::string(name) +
                                   "' (want mail|analytics|audit|archive)");
  }
  if (colon == std::string_view::npos) {
    return profile;
  }
  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view kv = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("profile spec wants key=value, got '" +
                                     std::string(kv) + "'");
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string val(kv.substr(eq + 1));
    if (key == "arrival") {
      if (val == "poisson") {
        profile.arrival = ArrivalKind::kPoisson;
      } else if (val == "uniform") {
        profile.arrival = ArrivalKind::kUniform;
      } else if (val == "bursty") {
        profile.arrival = ArrivalKind::kBursty;
      } else {
        return Status::InvalidArgument("unknown arrival '" + val + "'");
      }
      continue;
    }
    char* end = nullptr;
    const double num = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || num < 0) {
      return Status::InvalidArgument("bad numeric value in '" +
                                     std::string(kv) + "'");
    }
    if (key == "clients") {
      profile.clients = static_cast<size_t>(num);
    } else if (key == "rate") {
      profile.ops_per_sec = num;
    } else if (key == "burst") {
      profile.burst = static_cast<uint32_t>(num);
    } else if (key == "bytes") {
      profile.bytes_per_op = static_cast<uint32_t>(num);
    } else if (key == "files") {
      profile.setup_files = static_cast<uint32_t>(num);
    } else if (key == "p50") {
      profile.load_slo.p50_us = static_cast<uint64_t>(num);
    } else if (key == "p99") {
      profile.load_slo.p99_us = static_cast<uint64_t>(num);
    } else if (key == "p999") {
      profile.load_slo.p999_us = static_cast<uint64_t>(num);
    } else {
      return Status::InvalidArgument("unknown profile key '" +
                                     std::string(key) + "'");
    }
  }
  if (profile.clients == 0 || profile.ops_per_sec <= 0) {
    return Status::InvalidArgument("profile needs clients >= 1 and rate > 0");
  }
  if (profile.burst == 0) {
    profile.burst = 1;
  }
  return profile;
}

void ScaleProfiles(std::vector<TenantProfile>* profiles, size_t total_clients) {
  size_t base = 0;
  for (const TenantProfile& p : *profiles) {
    base += p.clients;
  }
  if (base == 0 || total_clients == 0) {
    return;
  }
  // Largest-remainder apportionment: floors first, then hand the shortfall to
  // the profiles with the biggest truncated fractions, so the fleet size is
  // exact (modulo the one-client-per-profile floor) and the mix stays
  // proportional.
  std::vector<std::pair<size_t, size_t>> rem;  // (remainder numerator, index)
  size_t assigned = 0;
  for (size_t i = 0; i < profiles->size(); ++i) {
    TenantProfile& p = (*profiles)[i];
    const size_t scaled = p.clients * total_clients;
    rem.emplace_back(scaled % base, i);
    p.clients = std::max<size_t>(1, scaled / base);
    assigned += p.clients;
  }
  std::sort(rem.begin(), rem.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (size_t k = 0; assigned < total_clients && k < rem.size(); ++k) {
    (*profiles)[rem[k].second].clients += 1;
    ++assigned;
  }
}

// ----------------------------------------------------------------- internals

struct LoadGen::TenantState {
  TenantProfile profile;
  std::string dir;
  std::unique_ptr<TenantBinding> binding;
  Histogram* lat = nullptr;  // registry load.latency_us{name}: CO-correct
  Counter* ops = nullptr;
  Counter* errors = nullptr;
  // This run's latency distribution only. The registry histogram above is
  // cumulative across runs sharing the database (and is what the timeseries
  // sampler windows); the report must not blend a previous run in.
  // unique_ptr because Histogram's atomics make it immovable.
  std::unique_ptr<Histogram> shadow = std::make_unique<Histogram>();
  uint64_t ops_done = 0;
  uint64_t err_count = 0;
  uint64_t bytes = 0;
  uint64_t max_lag = 0;
  std::vector<std::string> pool;  // setup-time files (audit targets)
  Timestamp as_of = 0;            // the auditors' historical point
};

struct LoadGen::Client {
  size_t tenant = 0;
  uint64_t id = 0;
  std::unique_ptr<InvSession> session;      // kInProcess
  std::unique_ptr<RemoteFileClient> remote;  // kRpc
  Rng rng{0};
  SimMicros next_intended = 0;
  uint32_t burst_left = 0;
  uint64_t ops = 0;
};

LoadGen::LoadGen(InversionFs* fs, LoadGenOptions options)
    : fs_(fs), options_(std::move(options)), clock_(&fs->db().clock()) {}

LoadGen::~LoadGen() = default;

size_t LoadGen::total_clients() const {
  size_t n = 0;
  for (const TenantProfile& p : options_.profiles) {
    n += p.clients;
  }
  return n;
}

void LoadGen::PushHeap(Client& c) {
  heap_.push_back(static_cast<size_t>(&c - clients_.data()));
  std::push_heap(heap_.begin(), heap_.end(), [this](size_t a, size_t b) {
    return clients_[a].next_intended != clients_[b].next_intended
               ? clients_[a].next_intended > clients_[b].next_intended
               : a > b;
  });
}

void LoadGen::ScheduleNext(Client& c, SimMicros from_intended) {
  const TenantProfile& p = tenants_[c.tenant].profile;
  const double mean_us = 1e6 / p.ops_per_sec;
  double gap = mean_us;
  switch (p.arrival) {
    case ArrivalKind::kUniform:
      break;
    case ArrivalKind::kPoisson:
      gap = ExpSample(c.rng, mean_us);
      break;
    case ArrivalKind::kBursty:
      if (c.burst_left > 0) {
        --c.burst_left;
        gap = kBurstSpacingMicros;
      } else {
        c.burst_left = p.burst - 1;
        // Off-period sized so the cycle (burst arrivals + gap) still offers
        // ops_per_sec in the long run.
        const double cycle = p.burst * mean_us;
        const double in_burst =
            static_cast<double>((p.burst - 1) * kBurstSpacingMicros);
        gap = ExpSample(c.rng, std::max(cycle - in_burst, 1.0));
      }
      break;
  }
  const SimMicros next =
      from_intended + std::max<SimMicros>(1, static_cast<SimMicros>(gap));
  if (next >= horizon_) {
    c.next_intended = 0;  // retired; not re-pushed
    return;
  }
  c.next_intended = next;
  PushHeap(c);
}

Status LoadGen::Setup() {
  MetricsRegistry& metrics = fs_->db().metrics();
  sampler_ = &metrics.timeseries();
  lag_gauge_ = metrics.GetGauge("load.lag_us");
  spans_before_ = metrics.spans().TotalDropped();
  traces_before_ = metrics.trace().TotalDropped();
  samples_before_ = sampler_->SamplesTaken();

  INV_ASSIGN_OR_RETURN(auto setup, fs_->NewSession());
  Status mk = setup->mkdir(options_.root);
  if (!mk.ok() && mk.code() != ErrorCode::kAlreadyExists) {
    return mk;
  }
  bool archive_present = false;
  tenants_.reserve(options_.profiles.size());
  for (const TenantProfile& p : options_.profiles) {
    TenantState t;
    t.profile = p;
    t.dir = options_.root + "/" + p.name;
    mk = setup->mkdir(t.dir);
    if (!mk.ok() && mk.code() != ErrorCode::kAlreadyExists) {
      return mk;
    }
    t.binding = std::make_unique<TenantBinding>(&metrics, p.name);
    t.lat = metrics.GetHistogram("load.latency_us", p.name);
    t.ops = metrics.GetCounter("load.ops", p.name);
    t.errors = metrics.GetCounter("load.errors", p.name);
    // Seed file pool: what auditors time-travel into and analytics scans
    // see on an otherwise cold database.
    const uint32_t seed_bytes = std::max<uint32_t>(p.bytes_per_op, 512);
    std::vector<std::byte> blob(seed_bytes,
                                static_cast<std::byte>(0x5A ^ tenants_.size()));
    for (uint32_t i = 0; i < p.setup_files; ++i) {
      const std::string path = t.dir + "/seed" + std::to_string(i);
      INV_RETURN_IF_ERROR(IgnoreNotFound(setup->unlink(path)));
      INV_ASSIGN_OR_RETURN(int fd, setup->p_creat(path));
      INV_ASSIGN_OR_RETURN(int64_t n, setup->p_write(fd, blob));
      (void)n;
      INV_RETURN_IF_ERROR(setup->p_close(fd));
      t.pool.push_back(path);
    }
    archive_present |= p.kind == TenantKind::kArchive;
    tenants_.push_back(std::move(t));
  }
  if (archive_present) {
    // Every driver instance defines the same rule text, so a concurrent or
    // prior definition is success, not a conflict.
    const Status rule =
        fs_->Query("define rule load_archive_cold on fileatt where "
                   "fileatt.size > " +
                       std::to_string(kArchiveMigrateBytes) + " do migrate " +
                       std::to_string(kDeviceJukebox),
                   setup.get())
            .status();
    if (!rule.ok() && rule.code() != ErrorCode::kAlreadyExists) {
      return rule;
    }
  }
  // The historical point the auditors open: strictly after every pool file
  // exists, strictly before the run mutates anything.
  const Timestamp past = fs_->db().Now();
  clock_->Advance(1000);
  for (TenantState& t : tenants_) {
    t.as_of = past;
  }

  if (options_.transport == LoadTransport::kRpc) {
    // The whole fleet shares one server, one priced wire, and (when fault
    // rates are set) one fault decorator; each client gets its own stub so
    // the (client id, seq, epoch) at-most-once state is per client.
    rpc_server_ = std::make_unique<InversionServer>(fs_);
    rpc_net_ = std::make_unique<NetModel>(clock_, NetParams{});
    rpc_loop_ =
        std::make_unique<LoopbackTransport>(rpc_server_.get(), rpc_net_.get());
    rpc_wire_ = std::make_unique<FaultyTransport>(
        rpc_loop_.get(), clock_, options_.seed ^ 0xFA17ED, &metrics);
    if (options_.net_faults.any()) {
      rpc_wire_->ArmRates(options_.net_faults);
    }
    drc_hits_counter_ = metrics.GetCounter("rpc.server.drc_hits");
    drc_hits_before_ = drc_hits_counter_->Value();
  }

  start_ = clock_->Peek();
  horizon_ = start_ + static_cast<SimMicros>(options_.seconds * 1e6);
  last_intended_ = start_;
  size_t id = 0;
  clients_.reserve(total_clients());
  for (size_t ti = 0; ti < tenants_.size(); ++ti) {
    for (size_t k = 0; k < tenants_[ti].profile.clients; ++k) {
      Client c;
      c.tenant = ti;
      c.id = id++;
      c.rng = Rng(MixSeed(options_.seed, ti, k));
      if (options_.transport == LoadTransport::kRpc) {
        RpcClientOptions copts;
        copts.client_id = c.id + 1;  // 0 would auto-assign
        copts.clock = clock_;
        copts.metrics = &metrics;
        copts.retry = options_.rpc_retry;
        c.remote = std::make_unique<RemoteFileClient>(rpc_wire_.get(), copts);
        c.remote->set_tenant(tenants_[ti].profile.name);
      } else {
        INV_ASSIGN_OR_RETURN(c.session, fs_->NewSession());
      }
      clients_.push_back(std::move(c));
    }
  }
  // First arrivals: a uniform phase offset in [0, mean inter-arrival) — the
  // stationary start of a renewal process. (Sampling a *full* inter-arrival
  // here would push every client of a tenant whose mean exceeds the horizon
  // entirely outside it.)
  heap_.reserve(clients_.size());
  for (Client& c : clients_) {
    const double mean_us = 1e6 / tenants_[c.tenant].profile.ops_per_sec;
    const SimMicros first =
        start_ + 1 +
        c.rng.Uniform(static_cast<uint64_t>(std::max(mean_us, 2.0)));
    if (first >= horizon_) {
      continue;
    }
    c.next_intended = first;
    PushHeap(c);
  }
  setup_done_ = true;
  return Status::Ok();
}

Status LoadGen::RunOp(Client& c, uint64_t* bytes) {
  TenantState& t = tenants_[c.tenant];
  if (t.profile.kind == TenantKind::kArchive && c.ops != 0 &&
      c.ops % kArchiveMigrateEvery == 0) {
    // Migration-rule daemon pass. This is server-side work in both transport
    // modes (the rule system is the server's background daemon, not a client
    // call), so it never crosses the wire.
    Database& db = fs_->db();
    INV_ASSIGN_OR_RETURN(TxnId txn, db.Begin());
    auto fired = fs_->ApplyMigrationRules(txn);
    if (!fired.ok()) {
      (void)db.Abort(txn);
      return fired.status();
    }
    return db.Commit(txn);
  }
  if (c.remote != nullptr) {
    return RunOpOn(*c.remote, c, bytes);
  }
  return RunOpOn(*c.session, c, bytes);
}

template <typename Api>
Status LoadGen::RunOpOn(Api& s, Client& c, uint64_t* bytes) {
  TenantState& t = tenants_[c.tenant];
  switch (t.profile.kind) {
    case TenantKind::kMail: {
      // One delivered message per op: explicit transaction, one commit (the
      // fsync) per message. A bounded per-client mailbox (unlink + recreate)
      // keeps the namespace from growing without bound across long runs.
      const std::string path = t.dir + "/m" + std::to_string(c.id) + "_" +
                               std::to_string(c.ops % 8);
      std::vector<std::byte> msg(t.profile.bytes_per_op,
                                 static_cast<std::byte>(c.ops));
      INV_RETURN_IF_ERROR(s.p_begin());
      Status st = [&]() -> Status {
        INV_RETURN_IF_ERROR(IgnoreNotFound(s.unlink(path)));
        INV_ASSIGN_OR_RETURN(int fd, s.p_creat(path));
        INV_ASSIGN_OR_RETURN(int64_t n, s.p_write(fd, msg));
        *bytes += static_cast<uint64_t>(n);
        return s.p_close(fd);
      }();
      if (!st.ok()) {
        (void)s.p_abort();
        return st;
      }
      return s.p_commit();
    }
    case TenantKind::kAnalytics: {
      // Ad-hoc POSTQUEL over the shared metadata: a fileatt scan whose cost
      // grows with everyone else's file population.
      auto rs = s.Query(
          "retrieve (f.file, f.size) from f in fileatt where f.size > 1024");
      if (rs.ok()) {
        *bytes += rs->rows.size() * sizeof(int64_t) * 2;
      }
      return rs.status();
    }
    case TenantKind::kAudit: {
      // Historical open of a setup-time file: read-only time travel, pinned
      // snapshot, no locks.
      if (t.pool.empty()) {
        return Status::InvalidArgument("audit profile needs files >= 1");
      }
      const std::string& path = t.pool[c.rng.Uniform(t.pool.size())];
      INV_ASSIGN_OR_RETURN(int fd,
                           s.p_open(path, OpenMode::kRead, t.as_of));
      std::vector<std::byte> buf(t.profile.bytes_per_op);
      auto n = s.p_read(fd, buf);
      const Status close = s.p_close(fd);
      INV_RETURN_IF_ERROR(n.status());
      *bytes += static_cast<uint64_t>(*n);
      return close;
    }
    case TenantKind::kArchive: {
      // WORM: append-once bulk files (the every-Nth migration pass is hoisted
      // into RunOp — it is daemon work, not a client op).
      const std::string path = t.dir + "/a" + std::to_string(c.id) + "_" +
                               std::to_string(c.ops);
      std::vector<std::byte> blob(2 * t.profile.bytes_per_op,
                                  static_cast<std::byte>(0xA5));
      INV_ASSIGN_OR_RETURN(int fd, s.p_creat(path));
      INV_ASSIGN_OR_RETURN(int64_t n, s.p_write(fd, blob));
      *bytes += static_cast<uint64_t>(n);
      return s.p_close(fd);
    }
  }
  return Status::Internal("unreachable tenant kind");
}

bool LoadGen::Step() {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), [this](size_t a, size_t b) {
    return clients_[a].next_intended != clients_[b].next_intended
               ? clients_[a].next_intended > clients_[b].next_intended
               : a > b;
  });
  Client& c = clients_[heap_.back()];
  heap_.pop_back();
  TenantState& t = tenants_[c.tenant];

  const SimMicros intended = c.next_intended;
  if (!stalled_ && options_.stall_for != 0 &&
      intended >= start_ + options_.stall_at) {
    // Test hook: the "server" freezes here. Open-loop accounting must charge
    // the freeze to every arrival intended during it.
    clock_->Advance(options_.stall_for);
    stalled_ = true;
  }
  const SimMicros now = clock_->Peek();
  if (now < intended) {
    clock_->Advance(intended - now);  // server idle until the arrival
  }
  const uint64_t lag = now > intended ? now - intended : 0;
  t.max_lag = std::max(t.max_lag, lag);
  lag_gauge_->Set(static_cast<int64_t>(lag));

  uint64_t bytes = 0;
  Status status;
  {
    // Tag scope: every span and entry-point observation below attributes to
    // this tenant.
    ScopedTenantTag tag(t.binding.get());
    status = RunOp(c, &bytes);
  }

  // Coordinated-omission-correct latency: completion minus *intended* start,
  // in sim micros — queueing lag included.
  const uint64_t latency = clock_->Peek() - intended;
  t.lat->Observe(latency);
  t.shadow->Observe(latency);
  t.ops->Add();
  t.ops_done += 1;
  t.bytes += bytes;
  if (!status.ok()) {
    t.errors->Add();
    t.err_count += 1;
  }
  last_intended_ = std::max(last_intended_, intended);
  c.ops += 1;
  ScheduleNext(c, intended);
  sampler_->Tick(clock_->Peek());
  return true;
}

Status LoadGen::Run() {
  if (!setup_done_) {
    INV_RETURN_IF_ERROR(Setup());
  }
  while (Step()) {
  }
  // Final partial window so the run's tail shows up in the series.
  sampler_->Sample(clock_->Peek());
  return Status::Ok();
}

LoadGenReport LoadGen::Report() const {
  MetricsRegistry& metrics = fs_->db().metrics();
  LoadGenReport r;
  r.seed = options_.seed;
  r.clients = total_clients();
  r.intended_seconds = options_.seconds;
  r.sim_seconds = clock_->Peek() > start_
                      ? static_cast<double>(clock_->Peek() - start_) / 1e6
                      : 0.0;
  r.end_lag_us =
      clock_->Peek() > last_intended_ ? clock_->Peek() - last_intended_ : 0;
  r.span_drops = metrics.spans().TotalDropped() - spans_before_;
  r.trace_drops = metrics.trace().TotalDropped() - traces_before_;
  r.samples = metrics.timeseries().SamplesTaken() - samples_before_;
  if (rpc_wire_ != nullptr) {
    r.rpc_exchanges = rpc_wire_->total_exchanges();
    r.rpc_faults = rpc_wire_->faults_fired();
    r.rpc_drc_hits = drc_hits_counter_->Value() - drc_hits_before_;
    for (const Client& c : clients_) {
      if (c.remote != nullptr) {
        r.rpc_retries += c.remote->retries();
      }
    }
  }
  for (const TenantState& t : tenants_) {
    TenantLoadStats s;
    s.tenant = t.profile.name;
    s.kind = t.profile.kind;
    s.clients = t.profile.clients;
    s.ops = t.ops_done;
    s.errors = t.err_count;
    s.bytes = t.bytes;
    s.max_lag_us = t.max_lag;
    s.slo =
        GradeSlo(t.shadow->Buckets(), t.shadow->Count(), t.profile.load_slo);
    s.slo.op = t.profile.name;
    s.slo.tenant = t.profile.name;
    s.offered_ops_per_sec =
        static_cast<double>(t.profile.clients) * t.profile.ops_per_sec;
    s.achieved_ops_per_sec =
        r.sim_seconds > 0 ? static_cast<double>(t.ops_done) / r.sim_seconds
                          : 0.0;
    r.ops += t.ops_done;
    r.errors += t.err_count;
    r.tenants.push_back(std::move(s));
  }
  return r;
}

bool LoadGenReport::AllOk() const {
  for (const TenantLoadStats& t : tenants) {
    if (t.slo.count != 0 && !t.slo.ok) {
      return false;
    }
  }
  return true;
}

std::string LoadGenReport::DumpText() const {
  std::string out;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "loadgen: seed=%llu clients=%zu ops=%llu errors=%llu "
                "sim=%.3fs (intended %.3fs) end_lag=%lluus samples=%llu "
                "span_drops=%llu\n",
                static_cast<unsigned long long>(seed), clients,
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(errors), sim_seconds,
                intended_seconds, static_cast<unsigned long long>(end_lag_us),
                static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(span_drops));
  out += buf;
  if (rpc_exchanges != 0) {
    std::snprintf(buf, sizeof(buf),
                  "rpc: exchanges=%llu retries=%llu faults=%llu drc_hits=%llu\n",
                  static_cast<unsigned long long>(rpc_exchanges),
                  static_cast<unsigned long long>(rpc_retries),
                  static_cast<unsigned long long>(rpc_faults),
                  static_cast<unsigned long long>(rpc_drc_hits));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "%-10s %-9s %7s %6s %5s %9s %9s %9s %9s %8s %6s %8s\n",
                "tenant", "kind", "clients", "ops", "errs", "p50us", "p99us",
                "p999us", "maxlagus", "ach/s", "burn", "verdict");
  out += buf;
  for (const TenantLoadStats& t : tenants) {
    std::snprintf(
        buf, sizeof(buf),
        "%-10s %-9s %7zu %6llu %5llu %9llu %9llu %9llu %9llu %8.1f %6.2f %8s\n",
        t.tenant.c_str(), TenantKindName(t.kind), t.clients,
        static_cast<unsigned long long>(t.ops),
        static_cast<unsigned long long>(t.errors),
        static_cast<unsigned long long>(t.slo.p50_us),
        static_cast<unsigned long long>(t.slo.p99_us),
        static_cast<unsigned long long>(t.slo.p999_us),
        static_cast<unsigned long long>(t.max_lag_us), t.achieved_ops_per_sec,
        t.slo.burn, SloVerdict(t.slo));
    out += buf;
  }
  return out;
}

std::string LoadGenReport::DumpJson() const {
  std::string out;
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"seed\": %llu, \"clients\": %zu, \"ops\": %llu, "
                "\"errors\": %llu,\n  \"intended_seconds\": %.6f, "
                "\"sim_seconds\": %.6f, \"end_lag_us\": %llu,\n"
                "  \"span_drops\": %llu, \"trace_drops\": %llu, "
                "\"samples\": %llu,\n  \"rpc_exchanges\": %llu, "
                "\"rpc_retries\": %llu, \"rpc_faults\": %llu, "
                "\"rpc_drc_hits\": %llu,\n  \"tenants\": [\n",
                static_cast<unsigned long long>(seed), clients,
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(errors), intended_seconds,
                sim_seconds, static_cast<unsigned long long>(end_lag_us),
                static_cast<unsigned long long>(span_drops),
                static_cast<unsigned long long>(trace_drops),
                static_cast<unsigned long long>(samples),
                static_cast<unsigned long long>(rpc_exchanges),
                static_cast<unsigned long long>(rpc_retries),
                static_cast<unsigned long long>(rpc_faults),
                static_cast<unsigned long long>(rpc_drc_hits));
  out += buf;
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantLoadStats& t = tenants[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"tenant\": \"%s\", \"kind\": \"%s\", \"clients\": %zu, "
        "\"ops\": %llu, \"errors\": %llu, \"bytes\": %llu,\n"
        "     \"p50_us\": %llu, \"p99_us\": %llu, \"p999_us\": %llu, "
        "\"target_p99_us\": %llu, \"max_lag_us\": %llu,\n"
        "     \"offered_ops_per_sec\": %.3f, \"achieved_ops_per_sec\": %.3f, "
        "\"ok\": %s, \"verdict\": \"%s\", \"burn\": %.4f}%s\n",
        t.tenant.c_str(), TenantKindName(t.kind), t.clients,
        static_cast<unsigned long long>(t.ops),
        static_cast<unsigned long long>(t.errors),
        static_cast<unsigned long long>(t.bytes),
        static_cast<unsigned long long>(t.slo.p50_us),
        static_cast<unsigned long long>(t.slo.p99_us),
        static_cast<unsigned long long>(t.slo.p999_us),
        static_cast<unsigned long long>(t.slo.target.p99_us),
        static_cast<unsigned long long>(t.max_lag_us), t.offered_ops_per_sec,
        t.achieved_ops_per_sec, t.slo.ok ? "true" : "false", SloVerdict(t.slo),
        t.slo.burn, i + 1 < tenants.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace invfs
