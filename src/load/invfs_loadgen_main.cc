// invfs_loadgen: open-loop multi-tenant load against a fresh in-memory
// Inversion world, with coordinated-omission-correct latency reporting.
//
//   invfs_loadgen                         builtin 22-client mix, 2 sim seconds
//   invfs_loadgen --clients 1000          same mix scaled to 1000 clients
//   invfs_loadgen --seconds 5 --seed 7    longer horizon, different arrivals
//   invfs_loadgen --profile mail:clients=500,rate=2,arrival=bursty,burst=8
//                                         replace the mix (flag repeats)
//   invfs_loadgen --json                  machine-readable report
//   invfs_loadgen --timeseries [--json]   also dump the sampled time series
//   invfs_loadgen --check                 exit 1 on any SLO violation, any
//                                         span-ring drop, or (rpc transport)
//                                         any op error (scripts/check.sh)
//   invfs_loadgen --transport rpc         every client is a RemoteFileClient:
//                                         marshalled frames, NetModel pricing,
//                                         at-most-once ids on every request
//   invfs_loadgen --transport rpc --net-drop 0.01
//                                         1% of exchanges lose a frame; the
//                                         retry/DRC machinery must absorb it
//                                         (also --net-dup, --net-truncate,
//                                         --net-reset)
//
// The world is simulated: arrivals, service and latency all run on the
// SimClock, so a "2 second" run finishes in a fraction of that wall time and
// two runs with one seed are bit-identical.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/catalog/database.h"
#include "src/load/loadgen.h"
#include "src/obs/timeseries.h"

namespace invfs {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: invfs_loadgen [--clients N] [--seconds S] [--seed N]\n"
               "                     [--profile name[:k=v,...]]... [--json]\n"
               "                     [--timeseries] [--check] [--span-ring N]\n"
               "                     [--transport inprocess|rpc]\n"
               "                     [--net-drop P] [--net-dup P]\n"
               "                     [--net-truncate P] [--net-reset P]\n"
               "  profiles: mail, analytics, audit, archive; keys: clients,\n"
               "  rate, arrival=poisson|uniform|bursty, burst, bytes, files,\n"
               "  p50, p99, p999 (load-SLO caps, sim micros)\n"
               "  --net-* rates are per-exchange probabilities in [0,1) and\n"
               "  need --transport rpc (drop applies to request and response\n"
               "  each at P/2)\n");
  return 2;
}

int Run(int argc, char** argv) {
  LoadGenOptions opts;
  size_t clients = 0;
  size_t span_ring = 1 << 16;  // default 4096 would overwrite under load
  bool json = false;
  bool timeseries = false;
  bool check = false;
  std::vector<TenantProfile> profiles;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      opts.seconds = std::atof(argv[++i]);
      if (opts.seconds <= 0) {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--span-ring") == 0 && i + 1 < argc) {
      span_ring = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      auto p = ParseProfileSpec(argv[++i]);
      if (!p.ok()) {
        std::fprintf(stderr, "--profile: %s\n", p.status().ToString().c_str());
        return 2;
      }
      profiles.push_back(std::move(*p));
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      const char* v = argv[++i];
      if (std::strcmp(v, "rpc") == 0) {
        opts.transport = LoadTransport::kRpc;
      } else if (std::strcmp(v, "inprocess") == 0) {
        opts.transport = LoadTransport::kInProcess;
      } else {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--net-drop") == 0 && i + 1 < argc) {
      const double p = std::atof(argv[++i]);
      opts.net_faults.drop_request = p / 2;
      opts.net_faults.drop_response = p / 2;
    } else if (std::strcmp(argv[i], "--net-dup") == 0 && i + 1 < argc) {
      opts.net_faults.duplicate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--net-truncate") == 0 && i + 1 < argc) {
      opts.net_faults.truncate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--net-reset") == 0 && i + 1 < argc) {
      opts.net_faults.reset = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--timeseries") == 0) {
      timeseries = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      return Usage();
    }
  }
  if (opts.net_faults.any() && opts.transport != LoadTransport::kRpc) {
    std::fprintf(stderr, "--net-* rates need --transport rpc\n");
    return Usage();
  }
  if (!profiles.empty()) {
    opts.profiles = std::move(profiles);
  }
  if (clients != 0) {
    ScaleProfiles(&opts.profiles, clients);
  }

  StorageEnv env;
  DatabaseOptions dbo;
  dbo.buffers = kBerkeleyBuffers;  // the paper's measured configuration
  dbo.span_ring_capacity = span_ring;
  auto db_or = Database::Open(&env, dbo);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  Database& db = **db_or;
  InversionFs fs(&db);
  if (Status s = fs.Mount(); !s.ok()) {
    std::fprintf(stderr, "mount: %s\n", s.ToString().c_str());
    return 1;
  }

  LoadGen gen(&fs, opts);
  if (Status s = gen.Run(); !s.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", s.ToString().c_str());
    return 1;
  }
  const LoadGenReport report = gen.Report();
  std::fputs(json ? report.DumpJson().c_str() : report.DumpText().c_str(),
             stdout);
  if (timeseries) {
    TimeSeriesSampler& ts = db.metrics().timeseries();
    std::fputs(json ? ts.DumpJson().c_str() : ts.DumpText().c_str(), stdout);
  }
  if (check) {
    int rc = 0;
    if (!report.AllOk()) {
      std::fprintf(stderr, "CHECK FAIL: a tenant load SLO is VIOLATED\n");
      rc = 1;
    }
    if (report.span_drops != 0) {
      std::fprintf(stderr,
                   "CHECK FAIL: span ring dropped %llu records "
                   "(raise --span-ring)\n",
                   static_cast<unsigned long long>(report.span_drops));
      rc = 1;
    }
    if (opts.transport == LoadTransport::kRpc && report.errors != 0) {
      // On the wire every fault must be absorbed by retry + DRC; an op-level
      // error under the configured rates means the resilience machinery
      // leaked a wire failure to a client.
      std::fprintf(stderr,
                   "CHECK FAIL: %llu op errors leaked through the rpc "
                   "resilience layer\n",
                   static_cast<unsigned long long>(report.errors));
      rc = 1;
    }
    return rc;
  }
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) { return invfs::Run(argc, argv); }
