// DiskModel: charges simulated time for magnetic-disk block I/O.
//
// The model captures the three effects the paper's results hinge on:
//  1. Sequential transfers are cheap: a read/write of the block following the
//     last one touched costs transfer time only (track buffer / no seek).
//  2. Seeks cost time proportional to head travel distance.
//  3. Every discontiguous access pays average rotational latency.
//
// Inversion's file-creation penalty (Figure 3) falls out of this naturally:
// B-tree index pages live in a different block range than file data pages, so
// interleaved evictions from the buffer pool bounce the head between the two
// regions, while NFS/FFS writes one region sequentially.

#pragma once

#include <cstdint>

#include "src/sim/cost_params.h"
#include "src/util/mutex.h"
#include "src/sim/sim_clock.h"

namespace invfs {

class DiskModel {
 public:
  DiskModel(SimClock* clock, DiskParams params) : clock_(clock), params_(params) {}

  // Charge the cost of transferring one page at `block`, given the previous
  // head position. Thread-safe; the head position is shared state.
  void ChargePageIo(uint64_t block) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    SimMicros cost = params_.page_transfer_us;
    if (!has_position_ || block != last_block_ + 1) {
      cost += SeekCost(block) + params_.rotational_us;
    }
    last_block_ = block;
    has_position_ = true;
    clock_->Advance(cost);
    ++ios_;
    if (cost > params_.page_transfer_us) {
      ++seeks_;
    }
  }

  // A synchronous write that must be on the platter before returning: even
  // sequential blocks pay a full rotation, because the next sync write has
  // already missed its sector by the time the caller issues it. This is the
  // cost NFS pays for statelessness when no NVRAM absorbs it.
  void ChargeSyncPageIo(uint64_t block) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    SimMicros cost = params_.page_transfer_us + 2 * params_.rotational_us;
    if (!has_position_ || (block != last_block_ + 1 && block != last_block_)) {
      cost += SeekCost(block);
    }
    last_block_ = block;
    has_position_ = true;
    clock_->Advance(cost);
    ++ios_;
    ++seeks_;
  }

  uint64_t total_ios() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ios_;
  }
  uint64_t total_seeks() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return seeks_;
  }
  void ResetStats() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ios_ = 0;
    seeks_ = 0;
  }

 private:
  SimMicros SeekCost(uint64_t block) const REQUIRES(mu_) {
    if (!has_position_) {
      return params_.seek_min_us;
    }
    const uint64_t dist = block > last_block_ ? block - last_block_ : last_block_ - block;
    if (dist <= 1) {
      return 0;
    }
    const double frac =
        static_cast<double>(dist) / static_cast<double>(params_.total_blocks);
    return params_.seek_min_us +
           static_cast<SimMicros>(frac * static_cast<double>(params_.seek_max_us -
                                                             params_.seek_min_us));
  }

  SimClock* clock_;
  DiskParams params_;
  mutable Mutex mu_;
  uint64_t last_block_ GUARDED_BY(mu_) = 0;
  bool has_position_ GUARDED_BY(mu_) = false;
  uint64_t ios_ GUARDED_BY(mu_) = 0;
  uint64_t seeks_ GUARDED_BY(mu_) = 0;
};

}  // namespace invfs
