// Calibrated cost parameters for the 1993 evaluation hardware.
//
// Sources for the calibration targets:
//  * DEC RZ58 1.38 GB SCSI disk: ~12.5 ms average seek, 5400 rpm
//    (5.5 ms average rotational latency), ~2.5 MB/s sustained transfer.
//  * 10 Mbit/s Ethernet: ~1.25 MB/s raw; effective NFS/UDP throughput on
//    ULTRIX 4.2 was roughly 0.4-0.5 MB/s, and the paper reports Inversion's
//    TCP-based protocol was noticeably heavier ("much too heavy-weight").
//  * PRESTOserve: 1 MB battery-backed RAM absorbing synchronous NFS writes.
//
// These are defaults; benchmarks that sweep a parameter construct their own
// instances.

#pragma once

#include <cstdint>

#include "src/sim/sim_clock.h"

namespace invfs {

// One 8 KB page, everywhere in the system (POSTGRES' inherited page size).
inline constexpr uint32_t kPageSize = 8192;

struct DiskParams {
  // Seek: charged when the head moves. Cost = min + (distance/full) * (max-min).
  SimMicros seek_min_us = 2'000;
  SimMicros seek_max_us = 22'000;
  // Average rotational latency (half a revolution at 5400 rpm).
  SimMicros rotational_us = 5'500;
  // Transfer time for one 8 KB page at ~2.5 MB/s.
  SimMicros page_transfer_us = 3'200;
  // Capacity used to scale seek distance (blocks).
  uint64_t total_blocks = 170'000;  // ~1.3 GB of 8 KB blocks
};

// Optical WORM jukebox (Sony 327 GB): brutal platter-load cost, slower
// transfer, staged through a magnetic-disk cache (default 10 MB, paper value).
struct JukeboxParams {
  SimMicros platter_load_us = 6'000'000;  // "many seconds to load a platter"
  SimMicros page_transfer_us = 9'000;     // ~0.9 MB/s optical transfer
  SimMicros seek_us = 80'000;             // optical head seek
  uint32_t pages_per_platter = 65'536;    // 512 MB platters
  uint32_t extent_pages = 16;             // paper default extent size
  uint64_t cache_bytes = 10ull << 20;     // magnetic staging cache
};

struct NetParams {
  // Fixed per-message cost: protocol processing, interrupts, context switch.
  SimMicros per_message_us = 2'500;
  // Per-byte wire + protocol-stack cost. TCP (Inversion) is heavier than
  // UDP (NFS): the paper attributes ~3-5 s per 1 MB remote operation to it.
  SimMicros per_kilobyte_us = 2'400;  // ~0.42 MB/s effective for Inversion TCP
};

inline NetParams NfsNetParams() {
  // NFS over UDP with biod read-ahead/write-behind: cheaper per byte.
  return NetParams{.per_message_us = 1'800, .per_kilobyte_us = 1'500};
}

struct CpuParams {
  // Buffer allocate/copy overhead per KB moved through the server. Profiling
  // in the paper found "extra work ... allocating and copying buffers" in
  // Inversion; the single-process numbers still include this.
  SimMicros copy_per_kilobyte_us = 90;
  // Fixed per-call overhead of one file-system entry point.
  SimMicros syscall_us = 120;
  // B-tree descent / tuple format CPU cost per page touched.
  SimMicros page_cpu_us = 60;
};

struct PrestoParams {
  uint64_t nvram_bytes = 1ull << 20;  // 1 MB board
  bool enabled = true;
};

}  // namespace invfs
