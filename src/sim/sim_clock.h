// SimClock: the deterministic time base for the whole reproduction.
//
// The paper's evaluation ran on a 1993 DECsystem 5900 with an RZ58 disk and a
// 10 Mbit Ethernet; we do not have that hardware, so every performance-bearing
// component (device managers, the RPC transport, large memory copies) charges
// elapsed microseconds to a shared SimClock instead of consuming wall time.
// Benchmarks report simulated seconds; results are exactly reproducible.
//
// The clock is also the source of commit timestamps for time travel: it is
// strictly monotonic (every Now() call advances it by at least one tick), so
// two transactions never commit at the same instant.

#pragma once

#include <atomic>
#include <cstdint>

namespace invfs {

// Microseconds of simulated time.
using SimMicros = uint64_t;

class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  // Current simulated time. Advances by one tick per call so that timestamps
  // taken in sequence are strictly ordered even with no I/O in between.
  SimMicros Now() { return micros_.fetch_add(1) + 1; }

  // Current time without advancing (for reporting).
  SimMicros Peek() const { return micros_.load(); }

  // Charge `micros` of simulated elapsed time (device I/O, wire transfer...).
  void Advance(SimMicros micros) { micros_.fetch_add(micros); }

  // Elapsed simulated seconds since `start`.
  double SecondsSince(SimMicros start) const {
    return static_cast<double>(micros_.load() - start) / 1e6;
  }

 private:
  std::atomic<SimMicros> micros_{0};
};

}  // namespace invfs
