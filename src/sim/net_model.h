// NetModel: charges simulated time for client/server message exchange.
//
// The paper's Inversion client talks to the POSTGRES server over TCP/IP on a
// 10 Mbit Ethernet and measures that "remote access adds between three and
// five seconds" per 1 MB operation versus the single-process configuration.
// The model is per-message fixed cost (protocol processing, interrupts) plus
// per-byte cost (wire + stack).

#pragma once

#include <atomic>
#include <cstdint>

#include "src/sim/cost_params.h"
#include "src/sim/sim_clock.h"

namespace invfs {

class NetModel {
 public:
  NetModel(SimClock* clock, NetParams params) : clock_(clock), params_(params) {}

  // Charge one message of `bytes` payload in either direction.
  void ChargeMessage(uint64_t bytes) {
    const SimMicros cost =
        params_.per_message_us + (bytes * params_.per_kilobyte_us) / 1024;
    clock_->Advance(cost);
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  uint64_t total_messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  uint64_t total_bytes() const { return bytes_.load(std::memory_order_relaxed); }

  const NetParams& params() const { return params_; }

 private:
  SimClock* clock_;
  NetParams params_;
  // Relaxed atomics: one model may be shared by every client stub of an RPC
  // fleet across driver threads (SimClock::Advance is already atomic), and
  // the totals are reporting-only — relaxed counts are exact, just unordered.
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace invfs
