// The ULTRIX NFS baseline: an NFS v2-style server over FfsSim, fronted by a
// PRESTOserve non-volatile RAM write cache, plus a client with the same
// byte-stream API shape as Inversion's.
//
// The two properties the paper's write results hinge on are modelled
// directly:
//  * "To guarantee that NFS servers remain stateless, NFS must force every
//    write to stable storage synchronously" — every WRITE RPC is stable
//    before the reply;
//  * "PRESTOserve consists of a board containing 1 MByte of battery-backed
//    RAM and driver software to cache NFS writes in non-volatile memory" —
//    with the board enabled, a write is stable the moment it lands in NVRAM;
//    dirty NVRAM drains to disk only when the board fills. That is why the
//    paper sees *no* degradation for random 1 MB writes: they fit entirely.
//
// NFS v2 transfers at most 8 KB per READ/WRITE RPC, so large client calls
// fan out into page-sized RPCs — which is also true of the paper's setup.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/nfs/ffs_sim.h"
#include "src/sim/net_model.h"
#include "src/storage/common.h"

namespace invfs {

struct NfsServerOptions {
  PrestoParams presto{};
  uint32_t max_transfer = kPageSize;  // NFS v2 rsize/wsize
};

class NfsServer {
 public:
  NfsServer(SimClock* clock, FfsSim* ffs, NfsServerOptions options = {});

  Status Create(const std::string& path);
  Status Remove(const std::string& path);
  Result<int64_t> GetSize(const std::string& path);
  Result<int64_t> Read(const std::string& path, int64_t offset,
                       std::span<std::byte> out);
  // One WRITE RPC: stable before returning (NVRAM or disk).
  Result<int64_t> Write(const std::string& path, int64_t offset,
                        std::span<const std::byte> in);

  // Drain NVRAM + flush server caches (benchmark setup).
  Status FlushCaches();

  uint64_t nvram_bytes_dirty() const { return nvram_dirty_; }
  uint32_t max_transfer() const { return options_.max_transfer; }

 private:
  // Make room in NVRAM for `bytes` more, draining oldest entries to disk.
  Status DrainNvram(uint64_t bytes_needed);

  SimClock* clock_;
  FfsSim* ffs_;
  NfsServerOptions options_;
  // NVRAM contents: FIFO of (path, offset, length) extents awaiting drain.
  struct Pending {
    std::string path;
    int64_t offset;
    int64_t length;
  };
  std::vector<Pending> nvram_fifo_;
  uint64_t nvram_dirty_ = 0;
};

// Client stub: file-descriptor API over per-RPC simulated network cost.
class NfsClient {
 public:
  NfsClient(NfsServer* server, NetModel* net) : server_(server), net_(net) {}

  Result<int> Creat(const std::string& path);
  Result<int> Open(const std::string& path, bool writable);
  Status Close(int fd);
  Result<int64_t> Read(int fd, std::span<std::byte> buf);
  Result<int64_t> Write(int fd, std::span<const std::byte> buf);
  Result<int64_t> Seek(int fd, int64_t offset, Whence whence);

 private:
  struct Handle {
    std::string path;
    int64_t offset = 0;
    bool writable = false;
  };
  Result<Handle*> GetHandle(int fd);

  NfsServer* server_;
  NetModel* net_;
  std::map<int, Handle> fds_;
  int next_fd_ = 3;
};

}  // namespace invfs
