// FfsSim: an FFS-style local file system simulator — the disk side of the
// paper's ULTRIX NFS baseline.
//
// It models the properties the paper credits for NFS's wins over Inversion:
//  * cylinder-group allocation keeps a file's blocks physically contiguous,
//    so sequential transfers rarely seek ("data for a single file are kept
//    close together", [MCKU84]);
//  * no index structures interleave with data writes — the inode/indirect
//    blocks are amortized, unlike Inversion's per-page B-tree entries;
//  * a UNIX buffer cache with sequential read-ahead.
//
// Data are stored for real (reads return what was written); time is charged
// to the shared SimClock through a DiskModel.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/sim/disk_model.h"
#include "src/util/status.h"

namespace invfs {

class FfsSim {
 public:
  FfsSim(SimClock* clock, DiskParams params, size_t cache_pages = 300,
         uint32_t extent_pages = 256, uint32_t readahead_pages = 8);

  Status Create(const std::string& path);
  Status Remove(const std::string& path);
  bool Exists(const std::string& path) const;
  Result<int64_t> Size(const std::string& path) const;

  // Read up to out.size() bytes at `offset`; returns bytes read (0 at EOF).
  Result<int64_t> ReadAt(const std::string& path, int64_t offset,
                         std::span<std::byte> out);
  // Write at `offset`, extending the file. `stable` forces the touched blocks
  // to disk before returning (the NFS server's synchronous-write duty);
  // otherwise they linger dirty in the buffer cache.
  Result<int64_t> WriteAt(const std::string& path, int64_t offset,
                          std::span<const std::byte> in, bool stable);

  // Force one file's dirty pages out (fsync).
  Status Sync(const std::string& path);
  // Write back everything and empty the cache ("all caches were flushed").
  Status FlushCaches();

  DiskModel& disk() { return *disk_; }

 private:
  struct File {
    std::vector<std::vector<std::byte>> blocks;  // 8 KB each
    int64_t size = 0;
    std::vector<uint64_t> extents;  // physical base of each extent
    int64_t last_read_block = -1;   // read-ahead detector
  };

  struct CacheKey {
    std::string path;
    uint64_t block;
    auto operator<=>(const CacheKey&) const = default;
  };

  uint64_t PhysicalBlock(File& f, uint64_t block);
  // Touch the cache; on miss charge a disk read and run read-ahead.
  void CacheRead(const std::string& path, File& f, uint64_t block);
  void CacheWrite(const std::string& path, File& f, uint64_t block, bool stable);
  void EvictIfNeeded();

  SimClock* clock_;
  std::unique_ptr<DiskModel> disk_;
  size_t cache_pages_;
  uint32_t extent_pages_;
  uint32_t readahead_pages_;

  std::map<std::string, File> files_;
  uint64_t next_free_extent_ = 0;
  // Buffer cache: map key -> dirty flag; LRU order list (front = hottest).
  std::map<CacheKey, bool> cache_;
  std::list<CacheKey> lru_;
};

}  // namespace invfs
