#include "src/nfs/nfs.h"

#include <algorithm>

namespace invfs {

NfsServer::NfsServer(SimClock* clock, FfsSim* ffs, NfsServerOptions options)
    : clock_(clock), ffs_(ffs), options_(options) {}

Status NfsServer::Create(const std::string& path) { return ffs_->Create(path); }

Status NfsServer::Remove(const std::string& path) { return ffs_->Remove(path); }

Result<int64_t> NfsServer::GetSize(const std::string& path) {
  return ffs_->Size(path);
}

Result<int64_t> NfsServer::Read(const std::string& path, int64_t offset,
                                std::span<std::byte> out) {
  return ffs_->ReadAt(path, offset, out);
}

Status NfsServer::DrainNvram(uint64_t bytes_needed) {
  while (!nvram_fifo_.empty() &&
         nvram_dirty_ + bytes_needed > options_.presto.nvram_bytes) {
    const Pending p = nvram_fifo_.front();
    nvram_fifo_.erase(nvram_fifo_.begin());
    // The drained extent's bytes are already in the FFS page cache (the data
    // went there when the write arrived); draining forces them to disk.
    INV_RETURN_IF_ERROR(ffs_->Sync(p.path));
    // Sync flushes all dirty pages of the file: retire every pending extent
    // of that file from the FIFO.
    nvram_dirty_ -= static_cast<uint64_t>(p.length);
    for (auto it = nvram_fifo_.begin(); it != nvram_fifo_.end();) {
      if (it->path == p.path) {
        nvram_dirty_ -= static_cast<uint64_t>(it->length);
        it = nvram_fifo_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::Ok();
}

Result<int64_t> NfsServer::Write(const std::string& path, int64_t offset,
                                 std::span<const std::byte> in) {
  if (options_.presto.enabled) {
    // PRESTOserve: the write is stable once in NVRAM (a few microseconds),
    // and lands in the buffer cache unstably; disk happens at drain time.
    INV_RETURN_IF_ERROR(DrainNvram(in.size()));
    clock_->Advance(50);  // NVRAM board latency
    INV_ASSIGN_OR_RETURN(int64_t n,
                         ffs_->WriteAt(path, offset, in, /*stable=*/false));
    nvram_fifo_.push_back(Pending{path, offset, n});
    nvram_dirty_ += static_cast<uint64_t>(n);
    return n;
  }
  // Stateless NFS without NVRAM: synchronous to the platter.
  return ffs_->WriteAt(path, offset, in, /*stable=*/true);
}

Status NfsServer::FlushCaches() {
  nvram_fifo_.clear();
  nvram_dirty_ = 0;
  return ffs_->FlushCaches();
}

// -------------------------------------------------------------------- client

Result<NfsClient::Handle*> NfsClient::GetHandle(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status::InvalidArgument("bad nfs file descriptor " + std::to_string(fd));
  }
  return &it->second;
}

Result<int> NfsClient::Creat(const std::string& path) {
  net_->ChargeMessage(128);  // CREATE request
  INV_RETURN_IF_ERROR(server_->Create(path));
  net_->ChargeMessage(96);  // reply with file handle
  const int fd = next_fd_++;
  fds_[fd] = Handle{path, 0, true};
  return fd;
}

Result<int> NfsClient::Open(const std::string& path, bool writable) {
  net_->ChargeMessage(128);  // LOOKUP
  INV_ASSIGN_OR_RETURN(int64_t size, server_->GetSize(path));
  (void)size;
  net_->ChargeMessage(96);
  const int fd = next_fd_++;
  fds_[fd] = Handle{path, 0, writable};
  return fd;
}

Status NfsClient::Close(int fd) {
  INV_RETURN_IF_ERROR(GetHandle(fd).status());
  fds_.erase(fd);  // stateless protocol: nothing to tell the server
  return Status::Ok();
}

Result<int64_t> NfsClient::Read(int fd, std::span<std::byte> buf) {
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  const uint32_t max = server_->max_transfer();
  int64_t done = 0;
  while (done < static_cast<int64_t>(buf.size())) {
    const uint32_t ask = static_cast<uint32_t>(
        std::min<int64_t>(max, static_cast<int64_t>(buf.size()) - done));
    net_->ChargeMessage(128);  // READ request
    INV_ASSIGN_OR_RETURN(
        int64_t n, server_->Read(h->path, h->offset + done,
                                 buf.subspan(static_cast<size_t>(done), ask)));
    net_->ChargeMessage(static_cast<uint64_t>(n) + 96);  // data reply
    done += n;
    if (n < ask) {
      break;  // EOF
    }
  }
  h->offset += done;
  return done;
}

Result<int64_t> NfsClient::Write(int fd, std::span<const std::byte> buf) {
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  if (!h->writable) {
    return Status::ReadOnly("nfs descriptor opened read-only");
  }
  const uint32_t max = server_->max_transfer();
  int64_t done = 0;
  while (done < static_cast<int64_t>(buf.size())) {
    const uint32_t ask = static_cast<uint32_t>(
        std::min<int64_t>(max, static_cast<int64_t>(buf.size()) - done));
    net_->ChargeMessage(static_cast<uint64_t>(ask) + 128);  // WRITE request+data
    INV_ASSIGN_OR_RETURN(
        int64_t n, server_->Write(h->path, h->offset + done,
                                  buf.subspan(static_cast<size_t>(done), ask)));
    net_->ChargeMessage(96);  // ack
    done += n;
  }
  h->offset += done;
  return done;
}

Result<int64_t> NfsClient::Seek(int fd, int64_t offset, Whence whence) {
  INV_ASSIGN_OR_RETURN(Handle * h, GetHandle(fd));
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = h->offset;
      break;
    case Whence::kEnd: {
      // Seeks are client-local except SEEK_END, which needs GETATTR.
      net_->ChargeMessage(128);
      INV_ASSIGN_OR_RETURN(base, server_->GetSize(h->path));
      net_->ChargeMessage(96);
      break;
    }
  }
  const int64_t target = base + offset;
  if (target < 0) {
    return Status::InvalidArgument("negative seek");
  }
  h->offset = target;
  return target;
}

}  // namespace invfs
