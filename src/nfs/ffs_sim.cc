#include "src/nfs/ffs_sim.h"

#include <algorithm>
#include <cstring>

namespace invfs {

FfsSim::FfsSim(SimClock* clock, DiskParams params, size_t cache_pages,
               uint32_t extent_pages, uint32_t readahead_pages)
    : clock_(clock),
      disk_(std::make_unique<DiskModel>(clock, params)),
      cache_pages_(cache_pages),
      extent_pages_(extent_pages),
      readahead_pages_(readahead_pages) {}

Status FfsSim::Create(const std::string& path) {
  auto [it, inserted] = files_.try_emplace(path);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(path);
  }
  return Status::Ok();
}

Status FfsSim::Remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound(path);
  }
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.path == path) {
      lru_.remove(it->first);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

bool FfsSim::Exists(const std::string& path) const { return files_.contains(path); }

Result<int64_t> FfsSim::Size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(path);
  }
  return it->second.size;
}

uint64_t FfsSim::PhysicalBlock(File& f, uint64_t block) {
  const uint64_t extent_index = block / extent_pages_;
  while (f.extents.size() <= extent_index) {
    f.extents.push_back(next_free_extent_++ * extent_pages_);
  }
  return f.extents[extent_index] + block % extent_pages_;
}

void FfsSim::EvictIfNeeded() {
  while (cache_.size() > cache_pages_ && !lru_.empty()) {
    CacheKey victim = lru_.back();
    lru_.pop_back();
    auto it = cache_.find(victim);
    if (it != cache_.end()) {
      if (it->second) {
        auto fit = files_.find(victim.path);
        if (fit != files_.end()) {
          disk_->ChargePageIo(PhysicalBlock(fit->second, victim.block));
        }
      }
      cache_.erase(it);
    }
  }
}

void FfsSim::CacheRead(const std::string& path, File& f, uint64_t block) {
  const CacheKey key{path, block};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.remove(key);
    lru_.push_front(key);
    return;
  }
  disk_->ChargePageIo(PhysicalBlock(f, block));
  cache_[key] = false;
  lru_.push_front(key);
  // Sequential read-ahead: prefetch the following blocks while the head is
  // here. Each costs only a transfer (contiguous within the extent).
  if (f.last_read_block + 1 == static_cast<int64_t>(block)) {
    const uint64_t file_blocks =
        static_cast<uint64_t>((f.size + kPageSize - 1) / kPageSize);
    for (uint32_t i = 1; i <= readahead_pages_; ++i) {
      const uint64_t next = block + i;
      if (next >= file_blocks) {
        break;
      }
      const CacheKey next_key{path, next};
      if (!cache_.contains(next_key)) {
        disk_->ChargePageIo(PhysicalBlock(f, next));
        cache_[next_key] = false;
        lru_.push_front(next_key);
      }
    }
  }
  f.last_read_block = static_cast<int64_t>(block);
  EvictIfNeeded();
}

void FfsSim::CacheWrite(const std::string& path, File& f, uint64_t block,
                        bool stable) {
  const CacheKey key{path, block};
  if (stable) {
    disk_->ChargeSyncPageIo(PhysicalBlock(f, block));
    lru_.remove(key);
    cache_[key] = false;  // now clean on disk, still cached
    lru_.push_front(key);
  } else {
    lru_.remove(key);
    cache_[key] = true;
    lru_.push_front(key);
  }
  EvictIfNeeded();
}

Result<int64_t> FfsSim::ReadAt(const std::string& path, int64_t offset,
                               std::span<std::byte> out) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(path);
  }
  File& f = it->second;
  if (offset >= f.size) {
    return 0;
  }
  const int64_t want =
      std::min<int64_t>(static_cast<int64_t>(out.size()), f.size - offset);
  int64_t done = 0;
  while (done < want) {
    const int64_t pos = offset + done;
    const uint64_t block = static_cast<uint64_t>(pos) / kPageSize;
    const int64_t within = pos % kPageSize;
    const int64_t n = std::min<int64_t>(kPageSize - within, want - done);
    CacheRead(path, f, block);
    if (block < f.blocks.size() && !f.blocks[block].empty()) {
      std::memcpy(out.data() + done, f.blocks[block].data() + within, n);
    } else {
      std::memset(out.data() + done, 0, n);
    }
    done += n;
  }
  return done;
}

Result<int64_t> FfsSim::WriteAt(const std::string& path, int64_t offset,
                                std::span<const std::byte> in, bool stable) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(path);
  }
  File& f = it->second;
  const int64_t total = static_cast<int64_t>(in.size());
  int64_t done = 0;
  while (done < total) {
    const int64_t pos = offset + done;
    const uint64_t block = static_cast<uint64_t>(pos) / kPageSize;
    const int64_t within = pos % kPageSize;
    const int64_t n = std::min<int64_t>(kPageSize - within, total - done);
    if (f.blocks.size() <= block) {
      f.blocks.resize(block + 1);
    }
    if (f.blocks[block].empty()) {
      f.blocks[block].resize(kPageSize);
    }
    std::memcpy(f.blocks[block].data() + within, in.data() + done, n);
    CacheWrite(path, f, block, stable);
    done += n;
  }
  f.size = std::max(f.size, offset + total);
  return total;
}

Status FfsSim::Sync(const std::string& path) {
  auto fit = files_.find(path);
  if (fit == files_.end()) {
    return Status::NotFound(path);
  }
  for (auto& [key, dirty] : cache_) {
    if (dirty && key.path == path) {
      disk_->ChargePageIo(PhysicalBlock(fit->second, key.block));
      dirty = false;
    }
  }
  return Status::Ok();
}

Status FfsSim::FlushCaches() {
  for (auto& [key, dirty] : cache_) {
    if (dirty) {
      auto fit = files_.find(key.path);
      if (fit != files_.end()) {
        disk_->ChargePageIo(PhysicalBlock(fit->second, key.block));
      }
      dirty = false;
    }
  }
  cache_.clear();
  lru_.clear();
  for (auto& [path, f] : files_) {
    f.last_read_block = -1;
  }
  return Status::Ok();
}

}  // namespace invfs
