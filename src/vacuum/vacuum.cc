#include "src/vacuum/vacuum.h"

namespace invfs {

Result<VacuumStats> VacuumCleaner::VacuumTable(TxnId txn, TableInfo* table,
                                               bool keep_history) {
  INV_RETURN_IF_ERROR(db_->LockTable(txn, table, LockMode::kExclusive));
  const Snapshot now_snap = db_->SnapshotFor(txn);
  // Snapshot-isolation readers scan with no table lock, pinned at their
  // begin time. A version whose deleter committed *after* such a reader
  // pinned is still visible to it; only versions dead before the oldest
  // pinned horizon may be physically reclaimed. kInvalidTxn = no pinned
  // readers, so nothing constrains reclamation.
  const TxnId horizon = db_->txns().OldestActiveXmin();
  VacuumStats stats;

  TableInfo* archive = nullptr;
  if (keep_history) {
    INV_ASSIGN_OR_RETURN(archive, db_->catalog().CreateArchive(txn, table));
  }

  // Pass 1: classify every physical version.
  struct Doomed {
    Tid tid;
    bool archive;
  };
  std::vector<Doomed> doomed;
  {
    auto it = table->heap->ScanAll();
    while (it.Next()) {
      ++stats.scanned;
      const TupleMeta& meta = it.meta();
      const TxnStatus xmin_status = db_->txns().log().StatusOf(meta.xmin);
      if (xmin_status == TxnStatus::kAborted) {
        // Never visible to anyone: physically discard.
        doomed.push_back({it.tid(), false});
        ++stats.discarded;
        continue;
      }
      if (xmin_status == TxnStatus::kInProgress) {
        ++stats.live;  // someone is mid-insert; leave alone
        continue;
      }
      if (now_snap.IsDeadForever(meta) &&
          (horizon == kInvalidTxn || meta.xmax < horizon)) {
        if (keep_history) {
          INV_RETURN_IF_ERROR(
              archive->heap->InsertRaw(txn, it.row(), meta).status());
          ++stats.archived;
        } else {
          ++stats.discarded;
        }
        doomed.push_back({it.tid(), keep_history});
        continue;
      }
      ++stats.live;
    }
    INV_RETURN_IF_ERROR(it.status());
  }

  // Pass 2: expunge and compact.
  for (const Doomed& d : doomed) {
    INV_RETURN_IF_ERROR(table->heap->Expunge(d.tid));
  }
  if (!doomed.empty()) {
    INV_RETURN_IF_ERROR(table->heap->CompactAllPages());
    db_->txns().NoteTouched(txn, table->oid);
    // TIDs changed meaning (slots died): rebuild every index.
    for (IndexInfo* idx : table->indexes) {
      INV_RETURN_IF_ERROR(RebuildIndex(table, idx));
    }
  }
  return stats;
}

Result<VacuumStats> VacuumCleaner::VacuumAll(TxnId txn, bool keep_history) {
  VacuumStats total;
  for (TableInfo* table : db_->catalog().AllTables()) {
    if (table->kind != RelKind::kHeap || table->oid < kFirstUserOid) {
      continue;
    }
    INV_ASSIGN_OR_RETURN(VacuumStats s, VacuumTable(txn, table, keep_history));
    total.scanned += s.scanned;
    total.archived += s.archived;
    total.discarded += s.discarded;
    total.live += s.live;
  }
  return total;
}

Status VacuumCleaner::RebuildIndex(TableInfo* table, IndexInfo* index) {
  // Recreate the index relation from scratch on its device, then reinsert an
  // entry for every surviving heap version.
  //
  // Exclusive gate entry: lock-free readers probe index->btree with no table
  // lock, and this function both replaces the BTree object wholesale and
  // leaves the index incomplete until reinsertion finishes. Taken after the
  // caller's exclusive table lock (gate is always innermost), and shared
  // holders never block while inside, so this cannot deadlock.
  ExclusiveGateLock gate(db_->probe_gate());
  INV_ASSIGN_OR_RETURN(DeviceManager * mgr, db_->devices().ManagerFor(index->oid));
  db_->buffers().DiscardRelation(index->oid);
  INV_RETURN_IF_ERROR(mgr->DropRelation(index->oid));
  INV_RETURN_IF_ERROR(mgr->CreateRelation(index->oid));
  INV_ASSIGN_OR_RETURN(index->btree, BTree::Create(index->oid, db_->buffers_ptr()));
  auto it = table->heap->ScanAll();
  while (it.Next()) {
    std::vector<Value> key_vals;
    key_vals.reserve(index->key_columns.size());
    for (size_t c : index->key_columns) {
      key_vals.push_back(it.row()[c]);
    }
    INV_ASSIGN_OR_RETURN(BtreeKey key, EncodeKey(key_vals));
    INV_RETURN_IF_ERROR(index->btree->Insert(key, it.tid()));
  }
  return it.status();
}

}  // namespace invfs
