// The vacuum cleaner: POSTGRES' record archiver.
//
// "Periodically, obsolete records must be garbage-collected from the
// database, and either moved elsewhere or physically deleted. ... POSTGRES
// includes a special-purpose process, called the vacuum cleaner, that
// archives records. Obsolete records are physically removed from the table in
// which they originally appeared, and are moved to an archive."
//
// A record version is obsolete once its deleter has committed: no present or
// future current-time snapshot can see it. With archiving enabled the version
// moves (with its original xmin/xmax!) to the table's archive relation
// ("a,<name>"), so historical snapshots keep working; with archiving disabled
// ("POSTGRES can be instructed not to save old versions") the history is
// discarded. Versions written by aborted transactions are always discarded.
//
// After expunging, pages are compacted and every index is rebuilt.

#pragma once

#include "src/catalog/database.h"

namespace invfs {

struct VacuumStats {
  uint64_t scanned = 0;
  uint64_t archived = 0;   // dead versions moved to the archive
  uint64_t discarded = 0;  // aborted-insert versions physically dropped
  uint64_t live = 0;
};

class VacuumCleaner {
 public:
  explicit VacuumCleaner(Database* db) : db_(db) {}

  // Vacuum one table inside the caller's transaction (takes an X lock).
  // `keep_history` false discards obsolete versions instead of archiving.
  Result<VacuumStats> VacuumTable(TxnId txn, TableInfo* table,
                                  bool keep_history = true);

  // Vacuum every user heap (not catalogs, not archives, not indices).
  Result<VacuumStats> VacuumAll(TxnId txn, bool keep_history = true);

  // Rebuild `index` from the current physical contents of `table` (every
  // surviving version, visible or not — the index covers history still in
  // the heap).
  Status RebuildIndex(TableInfo* table, IndexInfo* index);

 private:
  Database* db_;
};

}  // namespace invfs
