// Request-scoped causal tracing: spans, the lock-free SpanRing, and the
// RAII ScopedSpan that is the only sanctioned way to emit one.
//
// A span is one timed region of one request: it carries the trace id shared
// by every span of that request, its own span id, its parent's span id, an
// interned name, wall-clock start/duration microseconds, and two free
// attribute slots. Parentage is propagated through a thread-local "current
// span" context: constructing a ScopedSpan makes it the current span (a new
// trace is started when there is none), destroying it records the finished
// span into the ring and restores its parent. The result is a causal tree —
// an RPC write's span contains the p_write span, which contains the
// buffer-miss, device-I/O and group-commit-wait spans that explain where its
// wall time went (`invfs_stats --breakdown`, the `invfs_spans` relation).
//
// Cost model mirrors TraceRing: recording is allocation-free and lock-free
// (seqlock per slot, all fields atomic), so spans are safe on every cold
// path. The buffer-pool *hit* path deliberately carries no span — at
// millions of hits per second it would be all the ring ever holds, and the
// <5% overhead gate in scripts/check.sh exists to keep it that way. Under
// -DINVFS_NO_METRICS every ScopedSpan compiles to nothing.
//
// Lint contract (span-raii): SpanRing::RecordSpan and the thread-local
// context are implementation details of ScopedSpan; invfs_lint forbids
// touching them outside src/obs/span.{h,cc}. Begin/end must always be a
// ScopedSpan scope, so a span can never leak its context installation.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"

namespace invfs {

#ifdef INVFS_NO_METRICS
inline constexpr bool kSpansEnabled = false;
#else
inline constexpr bool kSpansEnabled = true;
#endif

// Returns a stable pointer for `name`, valid for the process lifetime.
// Span names are expected to come from a small fixed vocabulary; interning
// takes a mutex, so callers on repeated paths intern once and cache.
const char* InternSpanName(std::string_view name);

struct SpanRecord {
  uint64_t seq = 0;           // ring sequence, 1-based, monotonic
  uint64_t trace_id = 0;      // shared by every span of one request
  uint64_t span_id = 0;       // unique per span, process-wide
  uint64_t parent_id = 0;     // 0 = root span of its trace
  const char* name = nullptr; // interned or string literal (stable storage)
  const char* tenant = nullptr;  // interned tenant tag; nullptr = untagged
  uint64_t thread = 0;        // recording thread's tag (see ThreadTag())
  uint64_t start_micros = 0;  // wall micros since process start
  uint64_t dur_micros = 0;
  uint64_t a = 0;             // name-specific attributes
  uint64_t b = 0;
};

namespace obs_internal {
// Current span context of this thread. 0/0 = no active span. Owned by
// ScopedSpan; nothing else may read or write these (lint: span-raii).
extern constinit thread_local uint64_t t_trace_id;
extern constinit thread_local uint64_t t_span_id;
// Current tenant tag of this thread (interned name; nullptr = untagged).
// Owned by ScopedTenantTag (src/obs/tenant.h) — every span opened while a
// tag is installed carries it, which is how one tenant's request tree stays
// attributable through txn/buffer/log/device layers it shares with others.
extern constinit thread_local const char* t_tenant;
uint64_t NextTraceId();
uint64_t NextSpanId();
}  // namespace obs_internal

// Lossy bounded ring of finished spans; same seqlock-per-slot protocol as
// TraceRing. Capacity is fixed at construction (rounded up to a power of
// two) and configurable per Database via DatabaseOptions.
class SpanRing {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit SpanRing(size_t capacity = kDefaultCapacity);

  size_t capacity() const { return mask_ + 1; }

  // Raw emission — ScopedSpan only (enforced by invfs_lint rule span-raii).
  void RecordSpan(const SpanRecord& r);

  // Consistent copies of the currently held spans, oldest first. Lossy under
  // concurrent writes (slots being overwritten are skipped).
  std::vector<SpanRecord> Snapshot() const;

  uint64_t TotalRecorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  // Published spans overwritten before any snapshot could have read them;
  // mirrored into the process-wide `span.dropped` counter of
  // MetricsRegistry::Default() so storms that outrun the ring are visible
  // (scripts/check.sh's load leg gates on it staying zero).
  uint64_t TotalDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty/in-flight; published last
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> tenant{nullptr};
    std::atomic<uint64_t> thread{0};
    std::atomic<uint64_t> start_micros{0};
    std::atomic<uint64_t> dur_micros{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  // Count one overwrite of a published span (span.cc).
  void CountDrop();

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  // Lazily resolved `span.dropped` cell of the default registry (see
  // TraceRing::drop_counter_ for why this cannot be done at construction).
  std::atomic<Counter*> drop_counter_{nullptr};
};

// RAII span: construction opens the span and makes it the thread's current
// span (allocating a fresh trace id when none is active); destruction
// records it and restores the parent context. Scopes must nest — a
// ScopedSpan is neither copyable nor movable, so the usual block scoping
// guarantees it. A null ring makes the span a no-op (components without a
// registry stay span-free instead of branching at every call site).
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanRing* ring, const char* name, uint64_t a = 0,
                      uint64_t b = 0) {
    if constexpr (kSpansEnabled) {
      if (ring == nullptr) {
        return;
      }
      ring_ = ring;
      name_ = name;
      tenant_ = obs_internal::t_tenant;
      a_ = a;
      b_ = b;
      start_ = TraceNowMicros();
      parent_trace_ = obs_internal::t_trace_id;
      parent_span_ = obs_internal::t_span_id;
      trace_id_ =
          parent_trace_ != 0 ? parent_trace_ : obs_internal::NextTraceId();
      span_id_ = obs_internal::NextSpanId();
      obs_internal::t_trace_id = trace_id_;
      obs_internal::t_span_id = span_id_;
    } else {
      (void)ring;
      (void)name;
      (void)a;
      (void)b;
    }
  }

  ~ScopedSpan() {
    if constexpr (kSpansEnabled) {
      if (ring_ != nullptr) {
        End();
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_a(uint64_t v) {
    if constexpr (kSpansEnabled) {
      a_ = v;
    } else {
      (void)v;
    }
  }
  void set_b(uint64_t v) {
    if constexpr (kSpansEnabled) {
      b_ = v;
    } else {
      (void)v;
    }
  }

  // Wall microseconds since construction (0 when inactive/compiled out) —
  // lets entry points feed the same measurement into op.latency_us.
  uint64_t ElapsedMicros() const {
    if constexpr (kSpansEnabled) {
      return ring_ != nullptr ? TraceNowMicros() - start_ : 0;
    } else {
      return 0;
    }
  }

  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  void End();  // record + restore parent context (span.cc)

  SpanRing* ring_ = nullptr;
  const char* name_ = nullptr;
  const char* tenant_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_trace_ = 0;
  uint64_t parent_span_ = 0;
  uint64_t start_ = 0;
  uint64_t a_ = 0;
  uint64_t b_ = 0;
};

}  // namespace invfs
