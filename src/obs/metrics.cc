#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "src/obs/timeseries.h"

namespace invfs {

namespace {

// Find-or-create in one of the registry maps. Caller holds mu_.
template <typename T>
T* FindOrCreate(std::map<std::pair<std::string, std::string>, std::unique_ptr<T>>& m,
                std::string_view name, std::string_view label) {
  auto key = std::make_pair(std::string(name), std::string(label));
  auto it = m.find(key);
  if (it == m.end()) {
    it = m.emplace(std::move(key), std::make_unique<T>()).first;
  }
  return it->second.get();
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

uint64_t Histogram::Percentile(double p) const {
  return PercentileOf(Buckets(), p);
}

uint64_t Histogram::PercentileOf(const std::array<uint64_t, kBuckets>& buckets,
                                 double p) {
  uint64_t total = 0;
  for (uint64_t b : buckets) {
    total += b;
  }
  if (total == 0) {
    return 0;
  }
  // Rank of the target observation, 1-based: ceil(p * total), clamped so
  // p<=0 degenerates to the minimum and p>=1 to the maximum.
  uint64_t target = static_cast<uint64_t>(p * static_cast<double>(total));
  if (static_cast<double>(target) < p * static_cast<double>(total)) {
    ++target;
  }
  target = std::clamp<uint64_t>(target, 1, total);
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cum += buckets[i];
    if (cum >= target) {
      return BucketUpper(i);
    }
  }
  return BucketUpper(kBuckets - 1);
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

Counter* MetricsRegistry::GetCounter(std::string_view name, std::string_view label) {
  MutexLock lock(mu_);
  return FindOrCreate(counters_, name, label);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view label) {
  MutexLock lock(mu_);
  return FindOrCreate(gauges_, name, label);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view label) {
  MutexLock lock(mu_);
  return FindOrCreate(histograms_, name, label);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    MetricSample s;
    s.name = key.first;
    s.label = key.second;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<int64_t>(c->Value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauges_) {
    MetricSample s;
    s.name = key.first;
    s.label = key.second;
    s.kind = MetricKind::kGauge;
    s.value = g->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, h] : histograms_) {
    MetricSample s;
    s.name = key.first;
    s.label = key.second;
    s.kind = MetricKind::kHistogram;
    s.count = h->Count();
    s.sum = h->Sum();
    s.value = static_cast<int64_t>(s.count);
    s.p50 = h->Percentile(0.5);
    s.p99 = h->Percentile(0.99);
    s.p999 = h->Percentile(0.999);
    s.buckets = h->Buckets();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const MetricSample& a, const MetricSample& b) {
    return std::tie(a.name, a.label) < std::tie(b.name, b.label);
  });
  return out;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char buf[256];
  for (const MetricSample& s : Snapshot()) {
    std::string id = s.name;
    if (!s.label.empty()) {
      id += "{" + s.label + "}";
    }
    if (s.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "%-44s count=%llu p50=%llu p99=%llu p999=%llu mean=%.1f\n",
                    id.c_str(), static_cast<unsigned long long>(s.count),
                    static_cast<unsigned long long>(s.p50),
                    static_cast<unsigned long long>(s.p99),
                    static_cast<unsigned long long>(s.p999),
                    s.count == 0 ? 0.0
                                 : static_cast<double>(s.sum) /
                                       static_cast<double>(s.count));
    } else {
      std::snprintf(buf, sizeof(buf), "%-44s %lld\n", id.c_str(),
                    static_cast<long long>(s.value));
    }
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{\n  \"metrics\": [\n";
  const std::vector<MetricSample> snap = Snapshot();
  char buf[256];
  for (size_t i = 0; i < snap.size(); ++i) {
    const MetricSample& s = snap[i];
    out += "    {\"name\": ";
    AppendJsonString(out, s.name);
    out += ", \"label\": ";
    AppendJsonString(out, s.label);
    out += ", \"kind\": \"";
    out += MetricKindName(s.kind);
    out += "\"";
    if (s.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    ", \"count\": %llu, \"sum\": %llu, \"mean\": %.3f, "
                    "\"p50\": %llu, \"p99\": %llu, \"p999\": %llu",
                    static_cast<unsigned long long>(s.count),
                    static_cast<unsigned long long>(s.sum),
                    s.count == 0 ? 0.0
                                 : static_cast<double>(s.sum) /
                                       static_cast<double>(s.count),
                    static_cast<unsigned long long>(s.p50),
                    static_cast<unsigned long long>(s.p99),
                    static_cast<unsigned long long>(s.p999));
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf), ", \"value\": %lld",
                    static_cast<long long>(s.value));
      out += buf;
    }
    out += i + 1 < snap.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

MetricsRegistry::MetricsRegistry(size_t trace_capacity, size_t span_capacity)
    : trace_(trace_capacity), spans_(span_capacity) {}

MetricsRegistry::~MetricsRegistry() = default;

TimeSeriesSampler& MetricsRegistry::timeseries() {
  MutexLock lock(mu_);
  if (timeseries_ == nullptr) {
    timeseries_ = std::make_unique<TimeSeriesSampler>(this);
  }
  return *timeseries_;
}

void MetricsRegistry::ConfigureTimeseries(uint64_t interval_micros,
                                          size_t capacity) {
  MutexLock lock(mu_);
  if (timeseries_ != nullptr && timeseries_->SamplesTaken() > 0) {
    return;  // window semantics are frozen once points exist
  }
  timeseries_ =
      std::make_unique<TimeSeriesSampler>(this, interval_micros, capacity);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace invfs
