// Declared latency objectives per operation class, evaluated from the
// op.latency_us histograms the entry points feed.
//
// An SloTarget names an op class (the histogram label: p_read, p_write,
// query, ...) and caps its p50/p99/p999 in microseconds; a 0 cap means that
// percentile is unconstrained. EvaluateSlos snapshots the histograms and
// reports observed-vs-target per class, with an overall pass flag — the same
// rows surface in `invfs_stats --slo` and the `invfs_slo` relation, so bench
// and torture runs can assert latency budgets with a SELECT.
//
// Targets live in DatabaseOptions (defaults from DefaultSloTargets), so a
// deployment declares its budgets where it declares its buffer count. The
// defaults are generous on purpose: sanitizer builds run 10-20x slower than
// release and must not fail correctness suites on latency.
//
// Attribution: entry points tagged with a tenant (src/obs/tenant.h) feed the
// same op.latency_us family under the label "<op>@<tenant>", and EvaluateSlos
// expands each target into per-tenant rows for every such label it finds —
// so one noisy tenant's verdict cannot hide behind a healthy aggregate.
// Each row also reports error-budget burn: the objective grants every op
// class a budget of kSloErrorBudget (1%) of requests above the p99 target,
// and burn is the observed above-target fraction divided by that budget —
// burn 1.0 spends the budget exactly, 30.0 is a page, 0.0 is untouched. Burn
// moves earlier and more smoothly than the p99-vs-cap verdict flip, which is
// why on-call dashboards watch it instead of raw percentiles.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace invfs {

struct SloTarget {
  std::string op;        // op-class label of the op.latency_us histogram
  uint64_t p50_us = 0;   // 0 = unconstrained
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
};

// Fraction of requests an op class may serve above its p99 target before its
// error budget is spent (burn == 1.0). By construction a distribution exactly
// meeting its p99 cap leaves 1% above it, so the natural budget is 1%.
inline constexpr double kSloErrorBudget = 0.01;

// Baseline targets for the op classes every workload exercises.
std::vector<SloTarget> DefaultSloTargets();

struct SloReport {
  std::string op;
  std::string tenant;    // empty = the all-tenants aggregate row
  uint64_t count = 0;    // observations so far
  uint64_t p50_us = 0;   // observed percentiles
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  SloTarget target;
  bool ok = true;        // every constrained percentile within target
  // Error-budget burn rate against the p99 target: observed above-target
  // fraction / kSloErrorBudget. 0 when the target has no p99 cap or no data.
  double burn = 0.0;
};

// One aggregate report row per target, in target order, followed by that
// target's per-tenant rows (tenants sorted by name) for every
// op.latency_us{<op>@<tenant>} histogram present in the registry. Classes
// with no observations yet report count=0 and ok=true (no evidence of a
// violation); present them via SloVerdict, which distinguishes that case
// from a genuinely passing class — Percentile() returns 0 on an empty
// histogram, so a count-0 row's zeros are absence of data, not
// sub-microsecond latency.
std::vector<SloReport> EvaluateSlos(MetricsRegistry* metrics,
                                    const std::vector<SloTarget>& targets);

// Three-state verdict for one report row: "ok", "VIOLATED", or "no data"
// (count == 0: the op class was never exercised, so the objective is neither
// met nor violated). Static strings — safe to hold without the report.
const char* SloVerdict(const SloReport& report);

// Grade one histogram snapshot (bucket counts + observation count) against
// `target`: fills count/percentiles/ok/burn, leaving op/tenant to the
// caller. Shared by EvaluateSlos and the load driver, whose
// coordinated-omission-correct load.latency_us histograms are judged by the
// same rules as the entry-point wall-clock ones.
SloReport GradeSlo(const std::array<uint64_t, Histogram::kBuckets>& buckets,
                   uint64_t count, const SloTarget& target);

}  // namespace invfs
