// Declared latency objectives per operation class, evaluated from the
// op.latency_us histograms the entry points feed.
//
// An SloTarget names an op class (the histogram label: p_read, p_write,
// query, ...) and caps its p50/p99/p999 in microseconds; a 0 cap means that
// percentile is unconstrained. EvaluateSlos snapshots the histograms and
// reports observed-vs-target per class, with an overall pass flag — the same
// rows surface in `invfs_stats --slo` and the `invfs_slo` relation, so bench
// and torture runs can assert latency budgets with a SELECT.
//
// Targets live in DatabaseOptions (defaults from DefaultSloTargets), so a
// deployment declares its budgets where it declares its buffer count. The
// defaults are generous on purpose: sanitizer builds run 10-20x slower than
// release and must not fail correctness suites on latency.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace invfs {

class MetricsRegistry;

struct SloTarget {
  std::string op;        // op-class label of the op.latency_us histogram
  uint64_t p50_us = 0;   // 0 = unconstrained
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
};

// Baseline targets for the op classes every workload exercises.
std::vector<SloTarget> DefaultSloTargets();

struct SloReport {
  std::string op;
  uint64_t count = 0;    // observations so far
  uint64_t p50_us = 0;   // observed percentiles
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  SloTarget target;
  bool ok = true;        // every constrained percentile within target
};

// One report row per target, in target order. Classes with no observations
// yet report count=0 and ok=true (no evidence of a violation); present them
// via SloVerdict, which distinguishes that case from a genuinely passing
// class — Percentile() returns 0 on an empty histogram, so a count-0 row's
// zeros are absence of data, not sub-microsecond latency.
std::vector<SloReport> EvaluateSlos(MetricsRegistry* metrics,
                                    const std::vector<SloTarget>& targets);

// Three-state verdict for one report row: "ok", "VIOLATED", or "no data"
// (count == 0: the op class was never exercised, so the objective is neither
// met nor violated). Static strings — safe to hold without the report.
const char* SloVerdict(const SloReport& report);

}  // namespace invfs
