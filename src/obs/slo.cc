#include "src/obs/slo.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/tenant.h"

namespace invfs {

namespace {

// Fraction of `buckets` observations strictly above `target` (whole buckets
// only: the bucket straddling the target is counted as within it, the same
// conservative rounding direction Percentile uses), scaled by the error
// budget. A distribution exactly at its cap burns ~1.0.
double BurnRate(const std::array<uint64_t, Histogram::kBuckets>& buckets,
                uint64_t count, uint64_t target_p99) {
  if (count == 0 || target_p99 == 0) {
    return 0.0;
  }
  uint64_t above = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    // Bucket i spans up to BucketUpper(i); its observations all exceed the
    // target iff the *previous* bucket's upper bound does.
    if (i > 0 && Histogram::BucketUpper(i - 1) >= target_p99) {
      above += buckets[i];
    }
  }
  const double bad = static_cast<double>(above) / static_cast<double>(count);
  return bad / kSloErrorBudget;
}

}  // namespace

SloReport GradeSlo(const std::array<uint64_t, Histogram::kBuckets>& buckets,
                   uint64_t count, const SloTarget& target) {
  SloReport r;
  r.target = target;
  r.count = count;
  if (count == 0) {
    return r;
  }
  r.p50_us = Histogram::PercentileOf(buckets, 0.5);
  r.p99_us = Histogram::PercentileOf(buckets, 0.99);
  r.p999_us = Histogram::PercentileOf(buckets, 0.999);
  const SloTarget& t = target;
  r.ok = (t.p50_us == 0 || r.p50_us <= t.p50_us) &&
         (t.p99_us == 0 || r.p99_us <= t.p99_us) &&
         (t.p999_us == 0 || r.p999_us <= t.p999_us);
  r.burn = BurnRate(buckets, count, t.p99_us);
  return r;
}

std::vector<SloTarget> DefaultSloTargets() {
  // Wall-clock micros against the simulated device stack. Headroom is
  // deliberate (~10x a warm release run): these are fired-alarm thresholds,
  // not regression detectors, and sanitizer builds dilate real time.
  return {
      {"p_open", 20000, 100000, 500000},
      {"p_creat", 20000, 100000, 500000},
      {"p_read", 500, 5000, 20000},
      {"p_write", 2000, 20000, 100000},
      {"p_commit", 20000, 100000, 500000},
      {"query", 20000, 100000, 500000},
  };
}

std::vector<SloReport> EvaluateSlos(MetricsRegistry* metrics,
                                    const std::vector<SloTarget>& targets) {
  // One registry pass covers both the aggregate rows and the tenant
  // expansion; Snapshot() is already sorted by (name, label), so each op's
  // tenant labels come out in tenant order for free.
  std::vector<MetricSample> latency;
  for (MetricSample& s : metrics->Snapshot()) {
    if (s.name == "op.latency_us") {
      latency.push_back(std::move(s));
    }
  }
  std::vector<SloReport> out;
  out.reserve(targets.size());
  for (const SloTarget& t : targets) {
    SloReport r;
    r.target = t;
    for (const MetricSample& s : latency) {
      if (s.label == t.op) {
        r = GradeSlo(s.buckets, s.count, t);
        break;
      }
    }
    r.op = t.op;
    out.push_back(std::move(r));
    for (const MetricSample& s : latency) {
      // Per-tenant labels are "<op>@<tenant>"; split on the *last* separator
      // so a tenant name may not smuggle in extra columns but an op label
      // containing '@' cannot arise (ops come from the fixed TenantOp set).
      const size_t sep = s.label.rfind(kTenantLabelSep);
      if (sep == std::string::npos || s.label.compare(0, sep, t.op) != 0 ||
          sep != t.op.size()) {
        continue;
      }
      SloReport tr = GradeSlo(s.buckets, s.count, t);
      tr.op = t.op;
      tr.tenant = s.label.substr(sep + 1);
      out.push_back(std::move(tr));
    }
  }
  return out;
}

const char* SloVerdict(const SloReport& report) {
  if (report.count == 0) {
    return "no data";
  }
  return report.ok ? "ok" : "VIOLATED";
}

}  // namespace invfs
