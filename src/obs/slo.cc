#include "src/obs/slo.h"

#include "src/obs/metrics.h"

namespace invfs {

std::vector<SloTarget> DefaultSloTargets() {
  // Wall-clock micros against the simulated device stack. Headroom is
  // deliberate (~10x a warm release run): these are fired-alarm thresholds,
  // not regression detectors, and sanitizer builds dilate real time.
  return {
      {"p_open", 20000, 100000, 500000},
      {"p_creat", 20000, 100000, 500000},
      {"p_read", 500, 5000, 20000},
      {"p_write", 2000, 20000, 100000},
      {"p_commit", 20000, 100000, 500000},
      {"query", 20000, 100000, 500000},
  };
}

std::vector<SloReport> EvaluateSlos(MetricsRegistry* metrics,
                                    const std::vector<SloTarget>& targets) {
  std::vector<SloReport> out;
  out.reserve(targets.size());
  for (const SloTarget& t : targets) {
    SloReport r;
    r.op = t.op;
    r.target = t;
    Histogram* h = metrics->GetHistogram("op.latency_us", t.op);
    r.count = h->Count();
    if (r.count != 0) {
      r.p50_us = h->Percentile(0.5);
      r.p99_us = h->Percentile(0.99);
      r.p999_us = h->Percentile(0.999);
      r.ok = (t.p50_us == 0 || r.p50_us <= t.p50_us) &&
             (t.p99_us == 0 || r.p99_us <= t.p99_us) &&
             (t.p999_us == 0 || r.p999_us <= t.p999_us);
    }
    out.push_back(std::move(r));
  }
  return out;
}

const char* SloVerdict(const SloReport& report) {
  if (report.count == 0) {
    return "no data";
  }
  return report.ok ? "ok" : "VIOLATED";
}

}  // namespace invfs
