// Time-series sampler: periodic snapshots of the metrics registry into a
// bounded ring, so a run produces rate-over-time curves instead of a single
// end-of-run aggregate.
//
// A sample captures, for every metric registered at that instant:
//   * counters   — the delta since the previous sample (a rate, once divided
//                  by the window), not the cumulative total;
//   * gauges     — the point-in-time value;
//   * histograms — the observation count delta plus p50/p99/p999 computed
//                  from the *bucket deltas*, i.e. windowed percentiles: the
//                  latency distribution of the ops that completed inside
//                  this window, unpolluted by the whole run's history. This
//                  is what makes "p99 per tenant over time" a real curve —
//                  cumulative percentiles flatten into their own average.
//
// Time base is the SimClock: the sampler has no thread of its own. Whoever
// owns the run loop (the load driver, a benchmark, a test) calls Tick(now)
// at convenient points and the sampler decides whether a sample is due —
// the same inversion of control every other SimClock consumer uses. Ticks
// take the sampler mutex and a registry snapshot; they are nowhere near any
// hot path.
//
// The ring holds the newest kDefaultCapacity points (a sample emits one
// point per metric), exposed as the `invfs_timeseries` virtual relation and
// `invfs_stats --timeseries`.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/mutex.h"

namespace invfs {

// One metric's contribution to one sample.
struct TimeSeriesPoint {
  uint64_t sample = 0;   // 1-based sample index
  uint64_t at_micros = 0;  // sim micros when the sample was captured
  std::string name;
  std::string label;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;   // counter delta over the window / gauge point value
  uint64_t count = 0;  // histogram observations in the window (0 otherwise)
  uint64_t p50 = 0;    // windowed percentiles (histograms only)
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

class TimeSeriesSampler {
 public:
  static constexpr uint64_t kDefaultIntervalMicros = 100'000;  // 100 sim ms
  static constexpr size_t kDefaultCapacity = 4096;             // points

  explicit TimeSeriesSampler(MetricsRegistry* registry,
                             uint64_t interval_micros = kDefaultIntervalMicros,
                             size_t capacity = kDefaultCapacity)
      : registry_(registry),
        interval_micros_(interval_micros < 1 ? 1 : interval_micros),
        capacity_(capacity < 1 ? 1 : capacity) {}

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  uint64_t interval_micros() const { return interval_micros_; }

  // Capture a sample if at least one interval has elapsed since the last
  // one (the first tick always samples, establishing the baseline window).
  // Returns true when a sample was captured.
  bool Tick(uint64_t now_micros) EXCLUDES(mu_);

  // Capture unconditionally (run epilogues want a final partial window).
  void Sample(uint64_t now_micros) EXCLUDES(mu_);

  // Points currently held, oldest first. One point per (sample, metric).
  std::vector<TimeSeriesPoint> Snapshot() const EXCLUDES(mu_);

  // Samples captured over the sampler's lifetime (points may have been
  // evicted; this keeps counting). Lock-free: the registry reads it while
  // holding its own mutex, and Sample holds ours while snapshotting the
  // registry — taking mu_ here would order the two locks both ways.
  uint64_t SamplesTaken() const {
    return samples_.load(std::memory_order_relaxed);
  }

  // Human-readable table / JSON array of Snapshot().
  std::string DumpText() const;
  std::string DumpJson() const;

 private:
  void SampleLocked(uint64_t now_micros) REQUIRES(mu_);

  mutable Mutex mu_;
  MetricsRegistry* registry_;
  uint64_t interval_micros_;
  size_t capacity_;
  std::atomic<uint64_t> samples_{0};  // written under mu_, read lock-free
  uint64_t next_due_ GUARDED_BY(mu_) = 0;
  // Previous cumulative snapshot per (name, label): the subtrahend for
  // counter and histogram-bucket deltas.
  std::map<std::pair<std::string, std::string>, MetricSample> last_
      GUARDED_BY(mu_);
  std::deque<TimeSeriesPoint> ring_ GUARDED_BY(mu_);
};

}  // namespace invfs
