// Per-tenant attribution: a thread-scoped tenant tag plus the cached
// per-tenant instruments it routes observations into.
//
// The load observatory (src/load) drives thousands of simulated clients from
// several tenant profiles against one database; without attribution every
// histogram and counter is an average over all of them, and an SLO report
// cannot say *whose* p99 blew up. The tag solves this end to end:
//
//   * ScopedTenantTag installs an interned tenant name into the thread's
//     trace context — every ScopedSpan opened while the tag is active
//     carries it (the `tenant` column of `invfs_spans`), and the RPC layer
//     forwards the caller's tag inside the request frame so server-side
//     spans attribute to the remote tenant, not the server thread.
//   * TenantBinding caches one instrument per op class per tenant under the
//     same metric names the untagged paths use, with the label extended to
//     "<op>@<tenant>" (e.g. op.latency_us{p_read@mail}). The SLO evaluator
//     recognizes that label shape and emits per-tenant rows with their own
//     verdicts and error-budget burn rates; the timeseries sampler picks the
//     labeled histograms up automatically, which is where per-tenant
//     p99-over-time curves come from.
//
// Cost model: binding construction is the cold path (registry mutex, string
// concatenation) and is done once per (registry, tenant); tagged observation
// is one thread-local load plus the usual striped-counter increments.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace invfs {

class MetricsRegistry;
class Counter;
class Histogram;

// Op classes the per-tenant instruments cover; mirrors the op.latency_us
// labels the SLO module evaluates.
enum class TenantOp : size_t {
  kOpen = 0,
  kCreat,
  kRead,
  kWrite,
  kCommit,
  kQuery,
  kOpCount,
};

inline constexpr size_t kTenantOpCount =
    static_cast<size_t>(TenantOp::kOpCount);

// The op-class label ("p_open", "p_creat", ...); stable static storage.
const char* TenantOpLabel(TenantOp op);

// Label separator between op class and tenant in per-tenant metric labels:
// op.latency_us{p_read@mail}. The SLO evaluator splits on the last '@'.
inline constexpr char kTenantLabelSep = '@';

// Builds "<op>@<tenant>".
std::string TenantLabel(std::string_view op, std::string_view tenant);

// Cached per-(registry, tenant) instruments. Construct once per tenant (cold
// path), observe from entry points without touching the registry maps.
class TenantBinding {
 public:
  TenantBinding(MetricsRegistry* registry, std::string_view tenant);

  // Interned tenant name, stable for the process lifetime (the same pointer
  // spans carry, so span rows and metric labels agree by identity).
  const char* name() const { return name_; }

  // One op of class `op` completed in `micros` (op.latency_us{<op>@<tenant>}
  // + tenant.ops{<tenant>}).
  void ObserveOp(TenantOp op, uint64_t micros);
  // One op of class `op` failed (tenant.errors{<tenant>}).
  void CountError(TenantOp op);
  void AddBytesRead(uint64_t n);
  void AddBytesWritten(uint64_t n);

  Histogram* op_latency(TenantOp op) const {
    return latency_[static_cast<size_t>(op)];
  }
  Counter* ops() const { return ops_; }
  Counter* errors() const { return errors_; }

 private:
  const char* name_;
  std::array<Histogram*, kTenantOpCount> latency_{};
  Counter* ops_;
  Counter* errors_;
  Counter* bytes_read_;
  Counter* bytes_written_;
};

// The calling thread's current tenant binding (nullptr = untagged). Entry
// points read this once per op to double-book their latency/bytes/errors
// into the tenant's instruments.
TenantBinding* CurrentTenant();

// RAII tenant tag: installs `binding` as the thread's current tenant (and
// its interned name into the span trace context) for the enclosing scope,
// restoring the previous tag on destruction so nested tags compose the same
// way nested spans do. A null binding is inert.
class ScopedTenantTag {
 public:
  explicit ScopedTenantTag(TenantBinding* binding);
  ~ScopedTenantTag();

  ScopedTenantTag(const ScopedTenantTag&) = delete;
  ScopedTenantTag& operator=(const ScopedTenantTag&) = delete;

 private:
  TenantBinding* prev_binding_;
  const char* prev_name_;
};

}  // namespace invfs
