// invfs_stats: run a scripted workload on a fresh in-memory Inversion world
// and dump (or POSTQUEL-query) the resulting metrics registry.
//
//   invfs_stats                  text table of every metric
//   invfs_stats --json           JSON snapshot (same shape bench_pr4 embeds)
//   invfs_stats --trace          recent trace-ring events (newest last)
//   invfs_stats --spans          recent span records (newest last)
//   invfs_stats --slowest N      top-N slowest request trees, children indented
//   invfs_stats --breakdown OP   latency attribution for every span named OP:
//                                an aggregated child tree with self-time, plus
//                                the fraction of OP wall time attributed to
//                                named child spans
//   invfs_stats --slo            per-op-class SLO report (p50/p99/p999 vs the
//                                targets declared in DatabaseOptions), one
//                                aggregate row per op class plus per-tenant
//                                rows with error-budget burn
//   invfs_stats --timeseries     sampled time-series windows (counter deltas,
//                                gauge points, histogram window percentiles);
//                                with --json, a JSON array
//   invfs_stats --query "retrieve (s.name, s.value) from s in invfs_stats
//                        where s.name = \"buffer.hits\""
//
// The world is simulated and self-contained, so the tool doubles as a live
// demo of the observability layer: every number it prints was produced by
// the workload it just ran, and --query goes through the real POSTQUEL
// executor against the invfs_stats / invfs_trace / invfs_spans / invfs_slo
// virtual relations.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/harness/worlds.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/obs/tenant.h"
#include "src/obs/timeseries.h"

namespace invfs {
namespace {

// A small mixed workload: files created, written, read back, queried —
// enough to light up buffer, log, txn, device and query metrics. Caches are
// dropped between the write and read phases so the read side is cold: every
// p_read tree then contains real buffer-miss and device-I/O child spans,
// which is what --breakdown is for. The write phase runs tagged as tenant
// "writer" and the read phase as "reader", so --slo shows per-tenant rows
// and --query sees tenant labels; the sampler is ticked on the sim clock
// throughout, so invfs_timeseries and --timeseries have real windows.
Status RunWorkload(InversionWorld* world) {
  InvSession& s = world->session();
  MetricsRegistry& metrics = world->db().metrics();
  TimeSeriesSampler& sampler = metrics.timeseries();
  SimClock& clock = world->db().clock();
  INV_RETURN_IF_ERROR(s.mkdir("/demo"));
  std::vector<std::byte> block(8192, std::byte{0x5a});
  TenantBinding writer(&metrics, "writer");
  TenantBinding reader(&metrics, "reader");
  for (int i = 0; i < 8; ++i) {
    ScopedTenantTag tag(&writer);
    const std::string path = "/demo/file" + std::to_string(i);
    INV_RETURN_IF_ERROR(s.p_begin());
    INV_ASSIGN_OR_RETURN(int fd, s.p_creat(path));
    for (int j = 0; j < 4; ++j) {
      INV_RETURN_IF_ERROR(s.p_write(fd, block).status());
    }
    INV_RETURN_IF_ERROR(s.p_close(fd));
    INV_RETURN_IF_ERROR(s.p_commit());
    clock.Advance(sampler.interval_micros());
    sampler.Tick(clock.Peek());
  }
  INV_RETURN_IF_ERROR(world->db().FlushCaches());
  for (int i = 0; i < 8; ++i) {
    ScopedTenantTag tag(&reader);
    const std::string path = "/demo/file" + std::to_string(i);
    INV_ASSIGN_OR_RETURN(int fd, s.p_open(path, OpenMode::kRead));
    std::vector<std::byte> buf(4096);
    while (true) {
      INV_ASSIGN_OR_RETURN(int64_t n, s.p_read(fd, buf));
      if (n <= 0) {
        break;
      }
    }
    INV_RETURN_IF_ERROR(s.p_close(fd));
    clock.Advance(sampler.interval_micros());
    sampler.Tick(clock.Peek());
  }
  // An ad-hoc metadata query, the paper's headline feature.
  INV_RETURN_IF_ERROR(
      s.Query("retrieve (f.filename) from f in naming").status());
  sampler.Sample(clock.Peek());  // final partial window
  return Status::Ok();
}

using ChildMap = std::unordered_map<uint64_t, std::vector<const SpanRecord*>>;

// Index a snapshot by parent span id; children sorted by start time.
ChildMap BuildChildMap(const std::vector<SpanRecord>& snap) {
  ChildMap children;
  for (const SpanRecord& r : snap) {
    if (r.parent_id != 0) {
      children[r.parent_id].push_back(&r);
    }
  }
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->start_micros < b->start_micros;
              });
  }
  return children;
}

void PrintSpanTree(const SpanRecord& r, const ChildMap& children, int depth) {
  std::printf("%10llu us  %*s%s  (trace=%llu span=%llu a=%llu b=%llu)\n",
              static_cast<unsigned long long>(r.dur_micros), depth * 2, "",
              r.name == nullptr ? "?" : r.name,
              static_cast<unsigned long long>(r.trace_id),
              static_cast<unsigned long long>(r.span_id),
              static_cast<unsigned long long>(r.a),
              static_cast<unsigned long long>(r.b));
  auto it = children.find(r.span_id);
  if (it == children.end()) {
    return;
  }
  for (const SpanRecord* child : it->second) {
    PrintSpanTree(*child, children, depth + 1);
  }
}

int DumpSpans(const std::vector<SpanRecord>& snap) {
  for (const SpanRecord& r : snap) {
    std::printf(
        "%8llu  trace=%-6llu span=%-6llu parent=%-6llu t%-3llu "
        "%10llu us  %-24s a=%llu b=%llu\n",
        static_cast<unsigned long long>(r.seq),
        static_cast<unsigned long long>(r.trace_id),
        static_cast<unsigned long long>(r.span_id),
        static_cast<unsigned long long>(r.parent_id),
        static_cast<unsigned long long>(r.thread),
        static_cast<unsigned long long>(r.dur_micros),
        r.name == nullptr ? "?" : r.name, static_cast<unsigned long long>(r.a),
        static_cast<unsigned long long>(r.b));
  }
  return 0;
}

int DumpSlowest(const std::vector<SpanRecord>& snap, int n) {
  const ChildMap children = BuildChildMap(snap);
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& r : snap) {
    if (r.parent_id == 0) {
      roots.push_back(&r);
    }
  }
  std::sort(roots.begin(), roots.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->dur_micros > b->dur_micros;
            });
  if (static_cast<size_t>(n) < roots.size()) {
    roots.resize(static_cast<size_t>(n));
  }
  for (const SpanRecord* root : roots) {
    PrintSpanTree(*root, children, 0);
    std::printf("\n");
  }
  return 0;
}

// One node of the aggregated --breakdown tree: all spans that share the same
// name-path under the chosen op, merged.
struct BreakdownNode {
  uint64_t count = 0;
  uint64_t total_us = 0;
  uint64_t child_us = 0;  // Σ direct children's durations (for self-time)
  std::map<std::string, BreakdownNode> children;
};

void Accumulate(BreakdownNode* node, const SpanRecord& r,
                const ChildMap& children) {
  node->count += 1;
  node->total_us += r.dur_micros;
  auto it = children.find(r.span_id);
  if (it == children.end()) {
    return;
  }
  for (const SpanRecord* child : it->second) {
    node->child_us += child->dur_micros;
    Accumulate(&node->children[child->name == nullptr ? "?" : child->name],
               *child, children);
  }
}

void PrintBreakdown(const std::string& name, const BreakdownNode& node,
                    uint64_t op_total_us, int depth) {
  const uint64_t self =
      node.total_us > node.child_us ? node.total_us - node.child_us : 0;
  const double pct =
      op_total_us == 0
          ? 0.0
          : 100.0 * static_cast<double>(node.total_us) / op_total_us;
  std::printf("%*s%-*s %6llu calls  %10llu us total  %10llu us self  %5.1f%%\n",
              depth * 2, "", 32 - depth * 2, name.c_str(),
              static_cast<unsigned long long>(node.count),
              static_cast<unsigned long long>(node.total_us),
              static_cast<unsigned long long>(self), pct);
  for (const auto& [child_name, child] : node.children) {
    PrintBreakdown(child_name, child, op_total_us, depth + 1);
  }
}

int Breakdown(const std::vector<SpanRecord>& snap, const std::string& op) {
  const ChildMap children = BuildChildMap(snap);
  BreakdownNode root;
  uint64_t attributed_us = 0;  // Σ min(dur, direct-child dur) per op span
  for (const SpanRecord& r : snap) {
    if (r.name == nullptr || op != r.name) {
      continue;
    }
    Accumulate(&root, r, children);
    uint64_t direct = 0;
    auto it = children.find(r.span_id);
    if (it != children.end()) {
      for (const SpanRecord* child : it->second) {
        direct += child->dur_micros;
      }
    }
    attributed_us += std::min(r.dur_micros, direct);
  }
  if (root.count == 0) {
    std::fprintf(stderr, "no spans named \"%s\" in the ring\n", op.c_str());
    return 1;
  }
  PrintBreakdown(op, root, root.total_us, 0);
  const double pct = root.total_us == 0
                         ? 100.0
                         : 100.0 * static_cast<double>(attributed_us) /
                               static_cast<double>(root.total_us);
  std::printf(
      "\nattributed %.1f%% of %llu us across %llu %s spans to named child "
      "spans\n",
      pct, static_cast<unsigned long long>(root.total_us),
      static_cast<unsigned long long>(root.count), op.c_str());
  return 0;
}

int DumpSlo(Database* db) {
  std::printf("%-10s %-10s %8s  %10s %10s %10s  %10s %10s %10s  %6s  %s\n",
              "op", "tenant", "count", "p50", "p99", "p999", "slo_p50",
              "slo_p99", "slo_p999", "burn", "verdict");
  for (const SloReport& r :
       EvaluateSlos(&db->metrics(), db->options().slo_targets)) {
    std::printf(
        "%-10s %-10s %8llu  %10llu %10llu %10llu  %10llu %10llu %10llu  "
        "%6.2f  %s\n",
        r.op.c_str(), r.tenant.empty() ? "*" : r.tenant.c_str(),
        static_cast<unsigned long long>(r.count),
        static_cast<unsigned long long>(r.p50_us),
        static_cast<unsigned long long>(r.p99_us),
        static_cast<unsigned long long>(r.p999_us),
        static_cast<unsigned long long>(r.target.p50_us),
        static_cast<unsigned long long>(r.target.p99_us),
        static_cast<unsigned long long>(r.target.p999_us), r.burn,
        SloVerdict(r));
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: invfs_stats [--json] [--trace | --spans | --slowest N |"
               " --breakdown <op> | --slo | --timeseries |"
               " --query <postquel>]\n");
  return 2;
}

int Run(int argc, char** argv) {
  bool json = false;
  bool trace = false;
  bool spans = false;
  bool slo = false;
  bool timeseries = false;
  int slowest = 0;
  std::string breakdown;
  std::string query;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      spans = true;
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      slo = true;
    } else if (std::strcmp(argv[i], "--timeseries") == 0) {
      timeseries = true;
    } else if (std::strcmp(argv[i], "--slowest") == 0 && i + 1 < argc) {
      slowest = std::atoi(argv[++i]);
      if (slowest <= 0) {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--breakdown") == 0 && i + 1 < argc) {
      breakdown = argv[++i];
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      query = argv[++i];
    } else {
      return Usage();
    }
  }

  auto world_or = InversionWorld::Create();
  if (!world_or.ok()) {
    std::fprintf(stderr, "create world: %s\n",
                 world_or.status().ToString().c_str());
    return 1;
  }
  InversionWorld& world = **world_or;
  if (Status s = RunWorkload(&world); !s.ok()) {
    std::fprintf(stderr, "workload: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!query.empty()) {
    auto rs = world.session().Query(query);
    if (!rs.ok()) {
      std::fprintf(stderr, "query: %s\n", rs.status().ToString().c_str());
      return 1;
    }
    std::fputs(rs->ToString().c_str(), stdout);
    return 0;
  }
  if (trace) {
    for (const TraceRecord& r : world.db().metrics().trace().Snapshot()) {
      std::printf("%8llu  %10llu us  t%-3llu  %-14s  a=%llu b=%llu c=%llu\n",
                  static_cast<unsigned long long>(r.seq),
                  static_cast<unsigned long long>(r.micros),
                  static_cast<unsigned long long>(r.thread),
                  TraceEventName(r.event), static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b),
                  static_cast<unsigned long long>(r.c));
    }
    return 0;
  }
  if (spans) {
    return DumpSpans(world.db().metrics().spans().Snapshot());
  }
  if (slowest > 0) {
    return DumpSlowest(world.db().metrics().spans().Snapshot(), slowest);
  }
  if (!breakdown.empty()) {
    return Breakdown(world.db().metrics().spans().Snapshot(), breakdown);
  }
  if (slo) {
    return DumpSlo(&world.db());
  }
  if (timeseries) {
    TimeSeriesSampler& sampler = world.db().metrics().timeseries();
    std::fputs(json ? sampler.DumpJson().c_str() : sampler.DumpText().c_str(),
               stdout);
    return 0;
  }
  std::fputs(json ? world.db().metrics().DumpJson().c_str()
                  : world.db().metrics().DumpText().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) { return invfs::Run(argc, argv); }
