// invfs_stats: run a scripted workload on a fresh in-memory Inversion world
// and dump (or POSTQUEL-query) the resulting metrics registry.
//
//   invfs_stats              text table of every metric
//   invfs_stats --json       JSON snapshot (same shape bench_pr4 embeds)
//   invfs_stats --trace      recent trace-ring events (newest last)
//   invfs_stats --query "retrieve (s.name, s.value) from s in invfs_stats
//                        where s.name = \"buffer.hits\""
//
// The world is simulated and self-contained, so the tool doubles as a live
// demo of the observability layer: every number it prints was produced by
// the workload it just ran, and --query goes through the real POSTQUEL
// executor against the invfs_stats / invfs_trace virtual relations.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/harness/worlds.h"
#include "src/obs/metrics.h"

namespace invfs {
namespace {

// A small mixed workload: files created, written, read back, queried —
// enough to light up buffer, log, txn, device and query metrics.
Status RunWorkload(InversionWorld* world) {
  InvSession& s = world->session();
  INV_RETURN_IF_ERROR(s.mkdir("/demo"));
  std::vector<std::byte> block(8192, std::byte{0x5a});
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/demo/file" + std::to_string(i);
    INV_RETURN_IF_ERROR(s.p_begin());
    INV_ASSIGN_OR_RETURN(int fd, s.p_creat(path));
    for (int j = 0; j < 4; ++j) {
      INV_RETURN_IF_ERROR(s.p_write(fd, block).status());
    }
    INV_RETURN_IF_ERROR(s.p_close(fd));
    INV_RETURN_IF_ERROR(s.p_commit());
  }
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/demo/file" + std::to_string(i);
    INV_ASSIGN_OR_RETURN(int fd, s.p_open(path, OpenMode::kRead));
    std::vector<std::byte> buf(4096);
    while (true) {
      INV_ASSIGN_OR_RETURN(int64_t n, s.p_read(fd, buf));
      if (n <= 0) {
        break;
      }
    }
    INV_RETURN_IF_ERROR(s.p_close(fd));
  }
  // An ad-hoc metadata query, the paper's headline feature.
  INV_RETURN_IF_ERROR(
      s.Query("retrieve (f.filename) from f in naming").status());
  return Status::Ok();
}

int Run(int argc, char** argv) {
  bool json = false;
  bool trace = false;
  std::string query;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      query = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: invfs_stats [--json | --trace | --query <postquel>]\n");
      return 2;
    }
  }

  auto world_or = InversionWorld::Create();
  if (!world_or.ok()) {
    std::fprintf(stderr, "create world: %s\n",
                 world_or.status().ToString().c_str());
    return 1;
  }
  InversionWorld& world = **world_or;
  if (Status s = RunWorkload(&world); !s.ok()) {
    std::fprintf(stderr, "workload: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!query.empty()) {
    auto rs = world.session().Query(query);
    if (!rs.ok()) {
      std::fprintf(stderr, "query: %s\n", rs.status().ToString().c_str());
      return 1;
    }
    std::fputs(rs->ToString().c_str(), stdout);
    return 0;
  }
  if (trace) {
    for (const TraceRecord& r : world.db().metrics().trace().Snapshot()) {
      std::printf("%8llu  %10llu us  t%-3llu  %-14s  a=%llu b=%llu c=%llu\n",
                  static_cast<unsigned long long>(r.seq),
                  static_cast<unsigned long long>(r.micros),
                  static_cast<unsigned long long>(r.thread),
                  TraceEventName(r.event), static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b),
                  static_cast<unsigned long long>(r.c));
    }
    return 0;
  }
  std::fputs(json ? world.db().metrics().DumpJson().c_str()
                  : world.db().metrics().DumpText().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace invfs

int main(int argc, char** argv) { return invfs::Run(argc, argv); }
