// Lock-free bounded trace ring of recent engine events.
//
// Complements the counters in MetricsRegistry: counters tell you *how much*,
// the trace tells you *what just happened* — the last few thousand
// transaction transitions, page misses/evictions/write-backs, lock waits and
// group-commit flushes, each stamped with a monotonic wall-clock microsecond
// and the recording thread's tag. The ring is fixed-size and overwrites the
// oldest records; writers never block and never allocate, so it is safe to
// record from the hottest paths (we still keep it off the buffer *hit* path,
// which at millions of events per second would be all the ring ever holds).
//
// Concurrency protocol (seqlock per slot, all fields atomic so the race is
// benign under TSan as well as in fact):
//   writer: claim a global sequence number, zero the slot's seq (invalidate),
//           store the payload with relaxed stores, publish seq last (release);
//   reader: load seq (acquire), copy the payload, re-load seq — accept the
//           copy only if seq was nonzero and unchanged.
// A reader can lose a record to an overwrite (the ring is lossy by design)
// but can never observe a half-written one.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace invfs {

class Counter;

enum class TraceEvent : uint32_t {
  kNone = 0,
  kTxnBegin = 1,          // a = xid
  kTxnCommit = 2,         // a = xid, b = commit timestamp
  kTxnAbort = 3,          // a = xid
  kPageMiss = 4,          // a = rel, b = block
  kPageEvict = 5,         // a = rel, b = block
  kPageWriteBack = 6,     // a = rel, b = block
  kLockWait = 7,          // a = txn, b = rel
  kGroupCommitFlush = 8,  // a = pages written, b = transitions covered, c = ok
  kDeviceRetry = 9,        // a = attempt (1-based), b = backoff micros
  kDeviceReadOnlyTrip = 10,  // a = error code of the tripping status
  kLogPoisoned = 11,       // a = error code now sticky on the commit log
};

const char* TraceEventName(TraceEvent event);

struct TraceRecord {
  uint64_t seq = 0;     // global record number, 1-based, monotonic
  uint64_t micros = 0;  // wall microseconds since process start (monotonic)
  uint64_t thread = 0;  // recording thread's tag (see ThreadTag())
  TraceEvent event = TraceEvent::kNone;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

namespace obs_internal {
// 0 = not yet assigned. constinit keeps the access wrapper-free: a dynamic
// initializer would make every read go through the TLS init guard, which is
// an out-of-line call on the buffer-pool hit path (measured ~10% there).
extern constinit thread_local uint64_t t_thread_tag;
uint64_t AssignThreadTag();
}  // namespace obs_internal

// Small dense id for the calling thread (1, 2, 3, ... in first-use order).
// Also used by the metrics stripes and the logging layer's line tags.
inline uint64_t ThreadTag() {
  const uint64_t tag = obs_internal::t_thread_tag;
  return tag != 0 ? tag : obs_internal::AssignThreadTag();
}

// Monotonic wall-clock microseconds since the first call in the process.
uint64_t TraceNowMicros();

class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  // Capacity is rounded up to a power of two and fixed for the ring's
  // lifetime; DatabaseOptions::trace_ring_capacity configures the per-db
  // registry's ring.
  explicit TraceRing(size_t capacity = kDefaultCapacity);

  size_t capacity() const { return mask_ + 1; }

  void Record(TraceEvent event, uint64_t a = 0, uint64_t b = 0, uint64_t c = 0);

  // Consistent copies of the currently held records, oldest first. Lossy
  // under concurrent writes (slots being overwritten are skipped).
  std::vector<TraceRecord> Snapshot() const;

  // Total records ever written (records dropped = total - ring occupancy).
  uint64_t TotalRecorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  // Published records overwritten before any snapshot could have read them.
  // Loss is by design (the ring is bounded), but silent loss is not: the
  // count also feeds the process-wide `trace.dropped` counter in
  // MetricsRegistry::Default(), so a load storm that outruns the ring shows
  // up in `invfs_stats` instead of quietly truncating history.
  uint64_t TotalDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty/in-flight; published last
    std::atomic<uint64_t> micros{0};
    std::atomic<uint64_t> thread{0};
    std::atomic<uint32_t> event{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> c{0};
  };

  // Count one overwrite of a published record (trace.cc).
  void CountDrop();

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  // Cached `trace.dropped` cell of the default registry. Resolved lazily on
  // the first drop — never in the constructor, which would recurse while the
  // default registry (whose own ring this may be) is still being built.
  std::atomic<Counter*> drop_counter_{nullptr};
};

}  // namespace invfs
