#include "src/obs/timeseries.h"

#include <cstdio>

namespace invfs {

bool TimeSeriesSampler::Tick(uint64_t now_micros) {
  MutexLock lock(mu_);
  if (samples_.load(std::memory_order_relaxed) != 0 && now_micros < next_due_) {
    return false;
  }
  SampleLocked(now_micros);
  return true;
}

void TimeSeriesSampler::Sample(uint64_t now_micros) {
  MutexLock lock(mu_);
  SampleLocked(now_micros);
}

void TimeSeriesSampler::SampleLocked(uint64_t now_micros) {
  const uint64_t sample =
      samples_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Schedule relative to *now*, not the previous due time: a pump that went
  // quiet for ten intervals should produce one catch-up sample, not ten
  // back-to-back empties.
  next_due_ = now_micros + interval_micros_;
  for (const MetricSample& m : registry_->Snapshot()) {
    TimeSeriesPoint pt;
    pt.sample = sample;
    pt.at_micros = now_micros;
    pt.name = m.name;
    pt.label = m.label;
    pt.kind = m.kind;
    const auto key = std::make_pair(m.name, m.label);
    auto it = last_.find(key);
    const MetricSample* prev = it != last_.end() ? &it->second : nullptr;
    switch (m.kind) {
      case MetricKind::kCounter:
        pt.value = m.value - (prev != nullptr ? prev->value : 0);
        break;
      case MetricKind::kGauge:
        pt.value = m.value;  // gauges are points, not rates
        break;
      case MetricKind::kHistogram: {
        std::array<uint64_t, Histogram::kBuckets> delta{};
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          const uint64_t before = prev != nullptr ? prev->buckets[i] : 0;
          // Bucket reads are not one atomic snapshot; an observation landing
          // mid-read can make a bucket appear to step back one sample and
          // catch up the next. Clamp instead of underflowing.
          delta[i] = m.buckets[i] >= before ? m.buckets[i] - before : 0;
          pt.count += delta[i];
        }
        pt.value = static_cast<int64_t>(pt.count);
        pt.p50 = Histogram::PercentileOf(delta, 0.5);
        pt.p99 = Histogram::PercentileOf(delta, 0.99);
        pt.p999 = Histogram::PercentileOf(delta, 0.999);
        break;
      }
    }
    last_[key] = m;
    ring_.push_back(std::move(pt));
  }
  while (ring_.size() > capacity_) {
    ring_.pop_front();
  }
}

std::vector<TimeSeriesPoint> TimeSeriesSampler::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<TimeSeriesPoint>(ring_.begin(), ring_.end());
}

std::string TimeSeriesSampler::DumpText() const {
  std::string out;
  char buf[320];
  std::snprintf(buf, sizeof(buf), "%6s %12s %-44s %-10s %10s %8s %8s %8s\n",
                "sample", "micros", "metric", "kind", "value", "p50", "p99",
                "p999");
  out += buf;
  for (const TimeSeriesPoint& pt : Snapshot()) {
    std::string id = pt.name;
    if (!pt.label.empty()) {
      id += "{" + pt.label + "}";
    }
    if (pt.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "%6llu %12llu %-44s %-10s %10lld %8llu %8llu %8llu\n",
                    static_cast<unsigned long long>(pt.sample),
                    static_cast<unsigned long long>(pt.at_micros), id.c_str(),
                    MetricKindName(pt.kind), static_cast<long long>(pt.value),
                    static_cast<unsigned long long>(pt.p50),
                    static_cast<unsigned long long>(pt.p99),
                    static_cast<unsigned long long>(pt.p999));
    } else {
      std::snprintf(buf, sizeof(buf), "%6llu %12llu %-44s %-10s %10lld\n",
                    static_cast<unsigned long long>(pt.sample),
                    static_cast<unsigned long long>(pt.at_micros), id.c_str(),
                    MetricKindName(pt.kind), static_cast<long long>(pt.value));
    }
    out += buf;
  }
  return out;
}

std::string TimeSeriesSampler::DumpJson() const {
  std::string out = "{\n  \"timeseries\": [\n";
  const std::vector<TimeSeriesPoint> snap = Snapshot();
  char buf[320];
  for (size_t i = 0; i < snap.size(); ++i) {
    const TimeSeriesPoint& pt = snap[i];
    out += "    {\"sample\": ";
    std::snprintf(buf, sizeof(buf), "%llu, \"micros\": %llu, \"name\": \"",
                  static_cast<unsigned long long>(pt.sample),
                  static_cast<unsigned long long>(pt.at_micros));
    out += buf;
    out += pt.name;  // metric names/labels are identifier-shaped; no escaping
    out += "\", \"label\": \"";
    out += pt.label;
    out += "\", \"kind\": \"";
    out += MetricKindName(pt.kind);
    if (pt.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "\", \"count\": %llu, \"p50\": %llu, \"p99\": %llu, "
                    "\"p999\": %llu",
                    static_cast<unsigned long long>(pt.count),
                    static_cast<unsigned long long>(pt.p50),
                    static_cast<unsigned long long>(pt.p99),
                    static_cast<unsigned long long>(pt.p999));
    } else {
      std::snprintf(buf, sizeof(buf), "\", \"value\": %lld",
                    static_cast<long long>(pt.value));
    }
    out += buf;
    out += i + 1 < snap.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace invfs
