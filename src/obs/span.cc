#include "src/obs/span.h"

#include <algorithm>
#include <set>
#include <string>

#include "src/obs/metrics.h"
#include "src/util/mutex.h"

namespace invfs {

const char* InternSpanName(std::string_view name) {
  // Leaked on purpose: interned names must outlive every ring snapshot, and
  // the vocabulary is small (op names, one pair per device).
  static Mutex* mu = new Mutex();
  static std::set<std::string, std::less<>>* names =
      new std::set<std::string, std::less<>>();
  MutexLock lock(*mu);
  auto it = names->find(name);
  if (it == names->end()) {
    it = names->emplace(name).first;
  }
  return it->c_str();  // node-based container: c_str() is stable
}

namespace obs_internal {

constinit thread_local uint64_t t_trace_id = 0;
constinit thread_local uint64_t t_span_id = 0;
constinit thread_local const char* t_tenant = nullptr;

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace obs_internal

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

SpanRing::SpanRing(size_t capacity)
    : mask_(RoundUpPow2(std::max<size_t>(capacity, 2)) - 1),
      slots_(new Slot[mask_ + 1]()) {}

void SpanRing::RecordSpan(const SpanRecord& r) {
  if constexpr (!kSpansEnabled) {
    (void)r;
    return;
  }
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[seq & mask_];
  // Same seqlock protocol as TraceRing::Record: invalidate, payload with
  // relaxed stores, publish seq last.
  if (s.seq.load(std::memory_order_relaxed) != 0) {
    CountDrop();  // a published span is about to be overwritten unread
  }
  s.seq.store(0, std::memory_order_release);
  s.trace_id.store(r.trace_id, std::memory_order_relaxed);
  s.span_id.store(r.span_id, std::memory_order_relaxed);
  s.parent_id.store(r.parent_id, std::memory_order_relaxed);
  s.name.store(r.name, std::memory_order_relaxed);
  s.tenant.store(r.tenant, std::memory_order_relaxed);
  s.thread.store(r.thread, std::memory_order_relaxed);
  s.start_micros.store(r.start_micros, std::memory_order_relaxed);
  s.dur_micros.store(r.dur_micros, std::memory_order_relaxed);
  s.a.store(r.a, std::memory_order_relaxed);
  s.b.store(r.b, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
}

std::vector<SpanRecord> SpanRing::Snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(capacity());
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& s = slots_[i];
    const uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) {
      continue;
    }
    SpanRecord r;
    r.seq = seq;
    r.trace_id = s.trace_id.load(std::memory_order_relaxed);
    r.span_id = s.span_id.load(std::memory_order_relaxed);
    r.parent_id = s.parent_id.load(std::memory_order_relaxed);
    r.name = s.name.load(std::memory_order_relaxed);
    r.tenant = s.tenant.load(std::memory_order_relaxed);
    r.thread = s.thread.load(std::memory_order_relaxed);
    r.start_micros = s.start_micros.load(std::memory_order_relaxed);
    r.dur_micros = s.dur_micros.load(std::memory_order_relaxed);
    r.a = s.a.load(std::memory_order_relaxed);
    r.b = s.b.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != seq) {
      continue;  // overwritten mid-copy; the record is gone
    }
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& x, const SpanRecord& y) { return x.seq < y.seq; });
  return out;
}

void SpanRing::CountDrop() {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  Counter* c = drop_counter_.load(std::memory_order_acquire);
  if (c == nullptr) {
    // Resolved on first drop, never at construction (see TraceRing::CountDrop
    // for the Default()-recursion hazard). Racing resolvers are benign.
    c = MetricsRegistry::Default().GetCounter("span.dropped");
    drop_counter_.store(c, std::memory_order_release);
  }
  c->Add();
}

void ScopedSpan::End() {
  obs_internal::t_trace_id = parent_trace_;
  obs_internal::t_span_id = parent_span_;
  SpanRecord r;
  r.trace_id = trace_id_;
  r.span_id = span_id_;
  r.parent_id = parent_span_;
  r.name = name_;
  r.tenant = tenant_;
  r.thread = ThreadTag();
  r.start_micros = start_;
  r.dur_micros = TraceNowMicros() - start_;
  r.a = a_;
  r.b = b_;
  ring_->RecordSpan(r);
}

}  // namespace invfs
