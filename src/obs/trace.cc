#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"

namespace invfs {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kNone:
      return "none";
    case TraceEvent::kTxnBegin:
      return "txn.begin";
    case TraceEvent::kTxnCommit:
      return "txn.commit";
    case TraceEvent::kTxnAbort:
      return "txn.abort";
    case TraceEvent::kPageMiss:
      return "page.miss";
    case TraceEvent::kPageEvict:
      return "page.evict";
    case TraceEvent::kPageWriteBack:
      return "page.write_back";
    case TraceEvent::kLockWait:
      return "lock.wait";
    case TraceEvent::kGroupCommitFlush:
      return "log.flush";
    case TraceEvent::kDeviceRetry:
      return "device.retry";
    case TraceEvent::kDeviceReadOnlyTrip:
      return "device.read_only_trip";
    case TraceEvent::kLogPoisoned:
      return "log.poisoned";
  }
  return "unknown";
}

namespace obs_internal {

constinit thread_local uint64_t t_thread_tag = 0;

uint64_t AssignThreadTag() {
  static std::atomic<uint64_t> next_tag{0};
  t_thread_tag = next_tag.fetch_add(1, std::memory_order_relaxed) + 1;
  return t_thread_tag;
}

}  // namespace obs_internal

uint64_t TraceNowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count());
}

namespace {
size_t TraceRoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

TraceRing::TraceRing(size_t capacity)
    : mask_(TraceRoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
      slots_(new Slot[mask_ + 1]()) {}

void TraceRing::Record(TraceEvent event, uint64_t a, uint64_t b, uint64_t c) {
#ifdef INVFS_NO_METRICS
  (void)event;
  (void)a;
  (void)b;
  (void)c;
#else
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[seq & mask_];
  // Invalidate first: a reader that copies a payload mixing the old and the
  // new record will see seq change (to 0 or to `seq`) on its re-check.
  if (s.seq.load(std::memory_order_relaxed) != 0) {
    CountDrop();  // a published record is about to be overwritten unread
  }
  s.seq.store(0, std::memory_order_release);
  s.micros.store(TraceNowMicros(), std::memory_order_relaxed);
  s.thread.store(ThreadTag(), std::memory_order_relaxed);
  s.event.store(static_cast<uint32_t>(event), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.c.store(c, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
#endif
}

void TraceRing::CountDrop() {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  Counter* c = drop_counter_.load(std::memory_order_acquire);
  if (c == nullptr) {
    // First drop of this ring: resolve the shared default-registry counter.
    // Racing resolvers get the same pointer back (find-or-create), and this
    // can never run during MetricsRegistry::Default()'s own construction —
    // no record is written to a ring before its registry finishes building.
    c = MetricsRegistry::Default().GetCounter("trace.dropped");
    drop_counter_.store(c, std::memory_order_release);
  }
  c->Add();
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(capacity());
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& s = slots_[i];
    const uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) {
      continue;
    }
    TraceRecord r;
    r.seq = seq;
    r.micros = s.micros.load(std::memory_order_relaxed);
    r.thread = s.thread.load(std::memory_order_relaxed);
    r.event = static_cast<TraceEvent>(s.event.load(std::memory_order_relaxed));
    r.a = s.a.load(std::memory_order_relaxed);
    r.b = s.b.load(std::memory_order_relaxed);
    r.c = s.c.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != seq) {
      continue;  // overwritten mid-copy; the record is gone
    }
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& x, const TraceRecord& y) { return x.seq < y.seq; });
  return out;
}

}  // namespace invfs
