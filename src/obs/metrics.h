// Low-overhead metrics: monotonic counters, gauges, and fixed-bucket latency
// histograms, collected into a registry that the query layer exposes as the
// `invfs_stats` virtual relation.
//
// The paper's signature argument is that building the file system inside the
// database buys ad-hoc queries over namespace and metadata for free; this
// module extends the same idea to the engine's own internals, the way
// POSTGRES' descendants grew pg_stat_* views. Requirements, in order:
//
//   1. The hot paths PR 3 parallelized (buffer hits, group commit) must not
//      re-serialize on instrumentation. Each early thread owns a
//      cache-line-padded counter cell outright (indexed by its dense tag), so
//      an increment is a plain relaxed load+store — no locked RMW, no shared
//      cache line; reads sum the cells. No mutex anywhere near an increment.
//   2. Instrumentation must be compilable out: -DINVFS_NO_METRICS turns every
//      Add/Set/Observe/Record into a no-op (the registry and its readers stay
//      so tooling keeps linking). scripts/check.sh's `metrics` leg measures
//      the difference on the buffer-hit path and gates it at ~5%.
//   3. Registration is the cold path: GetCounter/GetGauge/GetHistogram take a
//      mutex and return a stable pointer the component caches at construction.
//
// One registry instance per Database (so two databases in one process do not
// mix their numbers), plus a process-wide Default() registry for code with no
// Database in reach (the logging layer). Snapshots merge both when queried
// through `invfs_stats`.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/util/mutex.h"

namespace invfs {

class TimeSeriesSampler;

#ifdef INVFS_NO_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

// Monotonic counter. Each of the first kStripes-1 threads (by dense tag) owns
// a cache-line-padded cell outright, so its increment is a plain relaxed
// load+store — no locked RMW, which alone costs more than the ~5% hit-path
// budget scripts/check.sh enforces. Later threads share one overflow cell via
// fetch_add: still exact, just slower. Value() sums the cells: cheap enough
// for snapshots and accessors, not meant for per-operation reads.
class Counter {
 public:
  static constexpr size_t kStripes = 32;

  void Add(uint64_t n = 1) {
    if constexpr (kMetricsEnabled) {
      const uint64_t tag = ThreadTag();
      if (tag < kStripes) {
        // Single writer per cell (tags are unique), so a non-atomic-RMW
        // update loses nothing; atomic stores keep readers tear-free.
        std::atomic<uint64_t>& v = cells_[tag].v;
        v.store(v.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
      } else {
        overflow_.fetch_add(n, std::memory_order_relaxed);
      }
    } else {
      (void)n;
    }
  }

  uint64_t Value() const {
    uint64_t total = overflow_.load(std::memory_order_relaxed);
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_{};  // cells_[tag], tag 0 unused
  std::atomic<uint64_t> overflow_{0};
};

// Point-in-time signed value (queue depths, open handles).
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kMetricsEnabled) {
      v_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void Add(int64_t d) {
    if constexpr (kMetricsEnabled) {
      v_.fetch_add(d, std::memory_order_relaxed);
    } else {
      (void)d;
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Latency/size histogram with fixed power-of-two buckets: bucket 0 counts
// observations of 0, bucket i >= 1 counts values in [2^(i-1), 2^i), and the
// last bucket absorbs everything larger. Fixed buckets mean zero allocation
// and a single relaxed fetch_add per observation; count and sum ride on
// striped counters so hot observers do not contend.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Observe(uint64_t v) {
    if constexpr (kMetricsEnabled) {
      buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
      count_.Add(1);
      sum_.Add(v);
    } else {
      (void)v;
    }
  }

  uint64_t Count() const { return count_.Value(); }
  uint64_t Sum() const { return sum_.Value(); }

  // Value at quantile `p` in (0, 1], e.g. 0.5 / 0.99 / 0.999. Reported as the
  // inclusive upper bound of the bucket holding the target observation — a
  // conservative estimate whose error is bounded by the power-of-two bucket
  // width. Returns 0 when nothing has been observed.
  uint64_t Percentile(double p) const;

  // Percentile over an explicit bucket array (same semantics as Percentile).
  // Static so consumers holding bucket *deltas* — the timeseries sampler's
  // per-window distributions — reuse the one implementation.
  static uint64_t PercentileOf(const std::array<uint64_t, kBuckets>& buckets,
                               double p);


  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }
  std::array<uint64_t, kBuckets> Buckets() const {
    std::array<uint64_t, kBuckets> out{};
    for (size_t i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  static size_t BucketOf(uint64_t v) {
    if (v == 0) {
      return 0;
    }
    size_t b = 0;
    while (v != 0 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  // Inclusive upper bound of bucket `i` (for rendering).
  static uint64_t BucketUpper(size_t i) {
    return i == 0 ? 0 : (i >= 63 ? UINT64_MAX : (uint64_t{1} << i) - 1);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  Counter count_;
  Counter sum_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

// One metric's state at snapshot time.
struct MetricSample {
  std::string name;
  std::string label;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;   // counter total / gauge value / histogram count
  uint64_t count = 0;  // histogram observation count (0 otherwise)
  uint64_t sum = 0;    // histogram observation sum (0 otherwise)
  uint64_t p50 = 0;    // histogram percentiles (0 otherwise)
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};  // histogram only
};

class MetricsRegistry {
 public:
  // Ctor and dtor out of line: timeseries_ points at an incomplete type here.
  explicit MetricsRegistry(size_t trace_capacity = TraceRing::kDefaultCapacity,
                           size_t span_capacity = SpanRing::kDefaultCapacity);
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; the returned pointer is stable for the registry's
  // lifetime, so components look up once and cache. `label` distinguishes
  // instances of the same metric (device name, log level, shard id).
  Counter* GetCounter(std::string_view name, std::string_view label = "")
      EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view label = "")
      EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, std::string_view label = "")
      EXCLUDES(mu_);

  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  SpanRing& spans() { return spans_; }
  const SpanRing& spans() const { return spans_; }

  // The registry's time-series sampler (src/obs/timeseries.h), created
  // lazily with defaults on first use. Call ConfigureTimeseries before the
  // first timeseries() to override interval/capacity — reconfiguring after
  // points exist would silently change window semantics, so a sampler that
  // has already sampled is left alone.
  TimeSeriesSampler& timeseries() EXCLUDES(mu_);
  void ConfigureTimeseries(uint64_t interval_micros, size_t capacity)
      EXCLUDES(mu_);

  // All registered metrics, sorted by (name, label).
  std::vector<MetricSample> Snapshot() const EXCLUDES(mu_);

  // Human-readable table / machine-readable JSON object of Snapshot().
  std::string DumpText() const;
  std::string DumpJson() const;

  // Process-wide registry for code with no Database in scope (logging).
  static MetricsRegistry& Default();

 private:
  using Key = std::pair<std::string, std::string>;  // (name, label)

  mutable Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
  std::unique_ptr<TimeSeriesSampler> timeseries_ GUARDED_BY(mu_);
  TraceRing trace_;
  SpanRing spans_;
};

}  // namespace invfs
