#include "src/obs/tenant.h"

#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace invfs {

namespace {
constinit thread_local TenantBinding* t_binding = nullptr;
}  // namespace

const char* TenantOpLabel(TenantOp op) {
  switch (op) {
    case TenantOp::kOpen:
      return "p_open";
    case TenantOp::kCreat:
      return "p_creat";
    case TenantOp::kRead:
      return "p_read";
    case TenantOp::kWrite:
      return "p_write";
    case TenantOp::kCommit:
      return "p_commit";
    case TenantOp::kQuery:
      return "query";
    case TenantOp::kOpCount:
      break;
  }
  return "unknown";
}

std::string TenantLabel(std::string_view op, std::string_view tenant) {
  std::string label;
  label.reserve(op.size() + 1 + tenant.size());
  label.append(op);
  label.push_back(kTenantLabelSep);
  label.append(tenant);
  return label;
}

TenantBinding::TenantBinding(MetricsRegistry* registry, std::string_view tenant)
    : name_(InternSpanName(tenant)) {
  for (size_t i = 0; i < kTenantOpCount; ++i) {
    latency_[i] = registry->GetHistogram(
        "op.latency_us", TenantLabel(TenantOpLabel(static_cast<TenantOp>(i)),
                                     tenant));
  }
  ops_ = registry->GetCounter("tenant.ops", tenant);
  errors_ = registry->GetCounter("tenant.errors", tenant);
  bytes_read_ = registry->GetCounter("tenant.bytes_read", tenant);
  bytes_written_ = registry->GetCounter("tenant.bytes_written", tenant);
}

void TenantBinding::ObserveOp(TenantOp op, uint64_t micros) {
  latency_[static_cast<size_t>(op)]->Observe(micros);
  ops_->Add();
}

void TenantBinding::CountError(TenantOp op) {
  (void)op;  // per-op error split has not earned its registry entries yet
  errors_->Add();
}

void TenantBinding::AddBytesRead(uint64_t n) { bytes_read_->Add(n); }

void TenantBinding::AddBytesWritten(uint64_t n) { bytes_written_->Add(n); }

TenantBinding* CurrentTenant() { return t_binding; }

ScopedTenantTag::ScopedTenantTag(TenantBinding* binding)
    : prev_binding_(t_binding), prev_name_(obs_internal::t_tenant) {
  if (binding != nullptr) {
    t_binding = binding;
    obs_internal::t_tenant = binding->name();
  }
}

ScopedTenantTag::~ScopedTenantTag() {
  t_binding = prev_binding_;
  obs_internal::t_tenant = prev_name_;
}

}  // namespace invfs
