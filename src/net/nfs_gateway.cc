#include "src/net/nfs_gateway.h"

#include <cerrno>

#include "src/obs/span.h"

namespace invfs {

int NfsErrnoFor(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kOk:
      return 0;
    case ErrorCode::kNotFound:
      return ENOENT;
    case ErrorCode::kAlreadyExists:
      return EEXIST;
    case ErrorCode::kInvalidArgument:
      return EINVAL;
    case ErrorCode::kReadOnly:
    case ErrorCode::kReadOnlyDevice:
      return EROFS;
    case ErrorCode::kDeadlock:
    case ErrorCode::kTxnAborted:
      // NFS has no transactions; a deadlock-victim abort of the implicit
      // single-op transaction looks like a retryable failure to the client.
      return EAGAIN;
    case ErrorCode::kResourceExhausted:
      return ENOSPC;
    case ErrorCode::kPermissionDenied:
      return EACCES;
    case ErrorCode::kUnimplemented:
      return ENOSYS;
    case ErrorCode::kIoError:
    case ErrorCode::kTransientIo:
    case ErrorCode::kCorruption:
    case ErrorCode::kInternal:
      return EIO;
  }
  return EIO;
}

InvNfsGateway::InvNfsGateway(InversionFs* fs) : fs_(fs) {
  auto session = fs_->NewSession();
  INV_CHECK(session.ok());
  session_ = std::move(*session);
  metrics_ = &fs_->db().metrics();
  read_bytes_ = metrics_->GetCounter("nfs.read_bytes");
  write_bytes_ = metrics_->GetCounter("nfs.write_bytes");
}

void InvNfsGateway::CountOp(const char* op, bool read_only) {
  metrics_->GetCounter("nfs.requests", op)->Add();
  if (read_only) {
    metrics_->GetCounter("nfs.read_only_requests")->Add();
  }
}

Result<std::pair<std::string, Timestamp>> InvNfsGateway::ParseTimePath(
    const std::string& path) {
  const size_t at = path.rfind('@');
  if (at == std::string::npos) {
    return std::make_pair(path, kTimestampNow);
  }
  // The suffix must apply to the final component and be all digits.
  const std::string digits = path.substr(at + 1);
  if (digits.empty() || path.find('/', at) != std::string::npos) {
    return Status::InvalidArgument("malformed @timestamp suffix in " + path);
  }
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed @timestamp suffix in " + path);
    }
  }
  return std::make_pair(path.substr(0, at),
                        static_cast<Timestamp>(std::stoull(digits)));
}

Result<int> InvNfsGateway::Creat(const std::string& path) {
  CountOp("creat");
  ScopedSpan span(&metrics_->spans(), "nfs.creat");
  INV_ASSIGN_OR_RETURN(auto parsed, ParseTimePath(path));
  if (parsed.second != kTimestampNow) {
    return Status::ReadOnly("cannot create files in the past");
  }
  return session_->p_creat(parsed.first);
}

Result<int> InvNfsGateway::Open(const std::string& path, bool writable) {
  CountOp("open");
  ScopedSpan span(&metrics_->spans(), "nfs.open");
  INV_ASSIGN_OR_RETURN(auto parsed, ParseTimePath(path));
  if (parsed.second != kTimestampNow && writable) {
    return Status::ReadOnly("historical names are read-only: " + path);
  }
  return session_->p_open(parsed.first,
                          writable ? OpenMode::kWrite : OpenMode::kRead,
                          parsed.second);
}

Status InvNfsGateway::Close(int fd) {
  CountOp("close");
  ScopedSpan span(&metrics_->spans(), "nfs.close");
  return session_->p_close(fd);
}

Result<int64_t> InvNfsGateway::Read(int fd, std::span<std::byte> buf) {
  CountOp("read", /*read_only=*/true);
  ScopedSpan span(&metrics_->spans(), "nfs.read");
  auto n = session_->p_read(fd, buf);
  if (n.ok() && *n > 0) {
    read_bytes_->Add(static_cast<uint64_t>(*n));
  }
  return n;
}

Result<int64_t> InvNfsGateway::Write(int fd, std::span<const std::byte> buf) {
  // Stateless-NFS semantics: the session has no open transaction, so the
  // write commits (and is forced durable) before returning.
  CountOp("write");
  ScopedSpan span(&metrics_->spans(), "nfs.write");
  auto n = session_->p_write(fd, buf);
  if (n.ok() && *n > 0) {
    write_bytes_->Add(static_cast<uint64_t>(*n));
  }
  return n;
}

Result<int64_t> InvNfsGateway::Seek(int fd, int64_t offset, Whence whence) {
  CountOp("seek", /*read_only=*/true);
  ScopedSpan span(&metrics_->spans(), "nfs.seek");
  return session_->p_lseek(fd, offset, whence);
}

Result<FileStat> InvNfsGateway::GetAttr(const std::string& path) {
  CountOp("getattr", /*read_only=*/true);
  ScopedSpan span(&metrics_->spans(), "nfs.getattr");
  INV_ASSIGN_OR_RETURN(auto parsed, ParseTimePath(path));
  return session_->stat(parsed.first, parsed.second);
}

Status InvNfsGateway::Mkdir(const std::string& path) {
  CountOp("mkdir");
  ScopedSpan span(&metrics_->spans(), "nfs.mkdir");
  INV_ASSIGN_OR_RETURN(auto parsed, ParseTimePath(path));
  if (parsed.second != kTimestampNow) {
    return Status::ReadOnly("cannot mkdir in the past");
  }
  return session_->mkdir(parsed.first);
}

Status InvNfsGateway::Remove(const std::string& path) {
  CountOp("remove");
  ScopedSpan span(&metrics_->spans(), "nfs.remove");
  INV_ASSIGN_OR_RETURN(auto parsed, ParseTimePath(path));
  if (parsed.second != kTimestampNow) {
    return Status::ReadOnly("cannot remove files from the past");
  }
  return session_->unlink(parsed.first);
}

Status InvNfsGateway::Rename(const std::string& from, const std::string& to) {
  CountOp("rename");
  ScopedSpan span(&metrics_->spans(), "nfs.rename");
  INV_ASSIGN_OR_RETURN(auto pf, ParseTimePath(from));
  INV_ASSIGN_OR_RETURN(auto pt, ParseTimePath(to));
  if (pf.second != kTimestampNow || pt.second != kTimestampNow) {
    return Status::ReadOnly("cannot rename across time");
  }
  return session_->rename(pf.first, pt.first);
}

Result<std::vector<DirEntry>> InvNfsGateway::Readdir(const std::string& path) {
  CountOp("readdir", /*read_only=*/true);
  ScopedSpan span(&metrics_->spans(), "nfs.readdir");
  INV_ASSIGN_OR_RETURN(auto parsed, ParseTimePath(path));
  return session_->readdir(parsed.first, parsed.second);
}

}  // namespace invfs
