// NFS gateway to Inversion — the paper's stated near-term plan:
//
// "In the near term, we plan to provide NFS access to Inversion. ... However,
// we are unsure how to support transactions via NFS. The NFS protocol makes
// every operation an atomic transaction ... We are most likely to follow the
// protocol specification, and to provide no multi-operation transaction
// protection for Inversion files accessed via NFS."
//
// This gateway implements exactly that position: every operation runs in its
// own single-op transaction (InvSession auto-commit), stateless-NFS style,
// and no p_begin/p_commit is exposed. Clients who want real transactions
// "may still link with the special library" (InvSession / RemoteFileClient).
//
// Time travel is exposed the way the paper sketches for an NFS server —
// "extending the file system namespace and passing dates along to the
// database system" ([ROOM92]'s 3DFS approach): a path component suffix
// `@<timestamp>` names the historical state, e.g.
//     /etc/passwd@123456        read-only contents as of t=123456
//     readdir("/proj@123456")   the directory as it was then
// which is precisely the namespace extension the paper credits to 3DFS
// (including its wart: such names are visible to, e.g., globbing).

#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/inversion/inv_fs.h"
#include "src/obs/metrics.h"

namespace invfs {

// Maps a Status onto the errno an NFS server would put on the wire (the
// NFSERR_* values coincide with the classic errno numbers). Writes rejected
// by a read-only store — a historical open, a device tripped into sticky
// read-only mode, or a fail-stop database — surface as EROFS; device and
// corruption failures as EIO.
int NfsErrnoFor(const Status& status);

class InvNfsGateway {
 public:
  explicit InvNfsGateway(InversionFs* fs);

  // NFS-flavoured operations: no client-visible transactions; every call is
  // individually atomic and durable before it returns.
  Result<int> Creat(const std::string& path);
  Result<int> Open(const std::string& path, bool writable);
  Status Close(int fd);
  Result<int64_t> Read(int fd, std::span<std::byte> buf);
  Result<int64_t> Write(int fd, std::span<const std::byte> buf);
  Result<int64_t> Seek(int fd, int64_t offset, Whence whence);
  Result<FileStat> GetAttr(const std::string& path);
  Status Mkdir(const std::string& path);
  Status Remove(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  Result<std::vector<DirEntry>> Readdir(const std::string& path);

  // Splits a 3DFS-style "path@ts" name. Returns (clean path, timestamp);
  // timestamp is kTimestampNow when no suffix is present.
  static Result<std::pair<std::string, Timestamp>> ParseTimePath(
      const std::string& path);

 private:
  // Count one nfs.requests{<op>} (cached cold-path lookup per op).
  // `read_only` additionally counts nfs.read_only_requests: such ops run as
  // read-only single-op transactions (pinned snapshot, no data locks) when
  // the gateway session has no transaction open — which, NFS being
  // stateless, is always.
  void CountOp(const char* op, bool read_only = false);

  InversionFs* fs_;
  std::unique_ptr<InvSession> session_;
  // nfs.* metrics (in the served database's registry).
  MetricsRegistry* metrics_;
  Counter* read_bytes_;
  Counter* write_bytes_;
};

}  // namespace invfs
