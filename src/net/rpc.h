// RPC layer for remote access to Inversion.
//
// The paper's Sequoia scientists used Inversion as a network file server: a
// client library marshals p_* calls to the POSTGRES server over TCP/IP on a
// 10 Mbit Ethernet, and the measurements show that protocol is heavy — remote
// access adds 3-5 seconds per 1 MB operation versus single-process.
//
// We reproduce the code path faithfully: every call is serialized into a
// request frame, dispatched through a Transport, deserialized by the server,
// executed on a per-connection InvSession, and the response marshalled back.
// The wire itself is simulated: LoopbackTransport charges the calibrated TCP
// cost per message and per byte to the shared SimClock.
//
// Request framing: every frame is `Str tenant; u8 op; <op args>`. The tenant
// prefix carries the client's tenant tag (src/obs/tenant.h) across the wire
// — attribution must not stop at the transport, or a server running four
// tenants' RPC mixes would report one blended latency histogram. The server
// re-establishes the tag (server-side TenantBinding per distinct name)
// around dispatch, so spans and op.latency_us rows attribute to the remote
// tenant rather than the server thread. An empty tenant string means
// untagged and costs two bytes on the wire.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/inversion/inv_fs.h"
#include "src/obs/metrics.h"
#include "src/obs/tenant.h"
#include "src/sim/net_model.h"
#include "src/util/bytes.h"

namespace invfs {

enum class RpcOp : uint8_t {
  kBegin = 1,
  kCommit,
  kAbort,
  kCreat,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kLseek,
  kFstat,
  kMkdir,
  kUnlink,
  kRename,
  kStat,
  kReaddir,
  kQuery,
};

// Ops that are read-only by construction: outside an explicit client
// transaction they run as read-only single-op transactions — pinned
// snapshot, no data locks, no commit-log record — so a writer holding
// exclusive locks never delays them. kOpen and kQuery are *conditionally*
// read-only (mode / statement kind decides inside the session layer) and are
// conservatively classified false here.
constexpr bool IsReadOnlyRpcOp(RpcOp op) {
  switch (op) {
    case RpcOp::kRead:
    case RpcOp::kLseek:
    case RpcOp::kFstat:
    case RpcOp::kStat:
    case RpcOp::kReaddir:
      return true;
    default:
      return false;
  }
}

// Bidirectional message channel with a cost model. RoundTrip sends a request
// and returns the response.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<std::vector<std::byte>> RoundTrip(
      std::span<const std::byte> request) = 0;
};

// Serves one client connection over one InvSession.
class InversionServer {
 public:
  explicit InversionServer(InversionFs* fs);

  // Decode, execute, encode. Malformed requests produce error responses, not
  // crashes — this is the server's trust boundary.
  std::vector<std::byte> Handle(std::span<const std::byte> request);

 private:
  // Server-side binding for the frame's tenant prefix (nullptr for "").
  // Bindings are cached per distinct name: tenant cardinality is bounded by
  // the deployment's client population, and the instruments must be the
  // same objects across that tenant's requests anyway.
  TenantBinding* BindTenant(const std::string& tenant);

  InversionFs* fs_;
  std::unique_ptr<InvSession> session_;
  // rpc.* metrics (in the served database's registry).
  MetricsRegistry* metrics_;
  Counter* bytes_in_;
  Counter* bytes_out_;
  std::map<std::string, std::unique_ptr<TenantBinding>> tenants_;
};

// In-process transport: full marshalling through the server with simulated
// TCP cost in both directions.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(InversionServer* server, NetModel* net)
      : server_(server), net_(net) {}

  Result<std::vector<std::byte>> RoundTrip(
      std::span<const std::byte> request) override {
    net_->ChargeMessage(request.size());
    std::vector<std::byte> response = server_->Handle(request);
    net_->ChargeMessage(response.size());
    return response;
  }

 private:
  InversionServer* server_;
  NetModel* net_;
};

// Client stub: the "special library" the paper's clients link against.
class RemoteFileClient {
 public:
  explicit RemoteFileClient(Transport* transport) : transport_(transport) {}

  // Tenant tag stamped into every subsequent request frame ("" = untagged).
  // Per-stub state, not per-call: a stub models one client of one tenant.
  void set_tenant(std::string_view tenant) { tenant_ = tenant; }
  const std::string& tenant() const { return tenant_; }

  Status p_begin();
  Status p_commit();
  Status p_abort();
  Result<int> p_creat(const std::string& path, const CreatOptions& options = {});
  Result<int> p_open(const std::string& path, OpenMode mode,
                     Timestamp as_of = kTimestampNow);
  Status p_close(int fd);
  Result<int64_t> p_read(int fd, std::span<std::byte> buf);
  Result<int64_t> p_write(int fd, std::span<const std::byte> buf);
  Result<int64_t> p_lseek(int fd, int64_t offset, Whence whence);
  Result<FileStat> p_fstat(int fd);
  Status mkdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Result<FileStat> stat(const std::string& path, Timestamp as_of = kTimestampNow);
  Result<std::vector<DirEntry>> readdir(const std::string& path,
                                        Timestamp as_of = kTimestampNow);
  Result<ResultSet> Query(const std::string& text);

 private:
  // Send `req` (prefixed with the stub's tenant tag); returns a reader
  // positioned after the status header.
  Result<std::vector<std::byte>> Call(const ByteWriter& req);

  Transport* transport_;
  std::string tenant_;
};

}  // namespace invfs
