// RPC layer for remote access to Inversion.
//
// The paper's Sequoia scientists used Inversion as a network file server: a
// client library marshals p_* calls to the POSTGRES server over TCP/IP on a
// 10 Mbit Ethernet, and the measurements show that protocol is heavy — remote
// access adds 3-5 seconds per 1 MB operation versus single-process.
//
// We reproduce the code path faithfully: every call is serialized into a
// request frame, dispatched through a Transport, deserialized by the server,
// executed on a per-client InvSession, and the response marshalled back. The
// wire itself is simulated: LoopbackTransport charges the calibrated TCP cost
// per message and per byte to the shared SimClock; FaultyTransport
// (src/fault/faulty_transport.h) stacks drops, duplicates, truncation, and
// resets on top of any inner transport.
//
// Request framing: every frame is
//
//   Str tenant; u64 client_id; u64 seq; u32 epoch; u8 op; <op args>
//
// The tenant prefix carries the client's tenant tag (src/obs/tenant.h) across
// the wire — attribution must not stop at the transport, or a server running
// four tenants' RPC mixes would report one blended latency histogram. The
// server re-establishes the tag (server-side TenantBinding per distinct name)
// around dispatch, so spans and op.latency_us rows attribute to the remote
// tenant rather than the server thread.
//
// (client_id, seq, epoch) is the at-most-once substrate (Juszczak's NFS
// duplicate-request cache, PAPERS.md). client_id names one stub; seq is a
// per-stub monotone call number, *reused* by every retry of the same call;
// epoch is the stub's session generation, bumped when the client observes a
// connection reset. The server keeps one InvSession + one bounded DRC slice
// per client id: a retried non-idempotent op replays its cached reply instead
// of re-executing, a frame from a newer epoch tears the old session down
// (aborting any orphaned transaction rather than leaking its locks), and a
// frame from an older epoch is rejected as stale.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/inversion/inv_fs.h"
#include "src/obs/metrics.h"
#include "src/obs/tenant.h"
#include "src/sim/net_model.h"
#include "src/util/bytes.h"

namespace invfs {

enum class RpcOp : uint8_t {
  kBegin = 1,
  kCommit,
  kAbort,
  kCreat,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kLseek,
  kFstat,
  kMkdir,
  kUnlink,
  kRename,
  kStat,
  kReaddir,
  kQuery,
};

// Ops that are read-only by construction: outside an explicit client
// transaction they run as read-only single-op transactions — pinned
// snapshot, no data locks, no commit-log record — so a writer holding
// exclusive locks never delays them. kOpen and kQuery are *conditionally*
// read-only (mode / statement kind decides inside the session layer) and are
// conservatively classified false here.
constexpr bool IsReadOnlyRpcOp(RpcOp op) {
  switch (op) {
    case RpcOp::kRead:
    case RpcOp::kLseek:
    case RpcOp::kFstat:
    case RpcOp::kStat:
    case RpcOp::kReaddir:
      return true;
    default:
      return false;
  }
}

// Ops a duplicate delivery may safely re-execute — the retry classification.
// Strictly narrower than IsReadOnlyRpcOp: kRead advances the fd offset and
// kLseek with Whence::kCur moves it relative to itself, so replaying either
// observably changes session state even though neither takes a data lock.
// Everything outside this set gets its reply cached in the server's
// duplicate-request cache and is replayed, never re-executed, on a retry.
constexpr bool IsIdempotentRpcOp(RpcOp op) {
  switch (op) {
    case RpcOp::kFstat:
    case RpcOp::kStat:
    case RpcOp::kReaddir:
      return true;
    default:
      return false;
  }
}

// Bidirectional message channel with a cost model. RoundTrip sends a request
// and returns the response.
//
// Status contract (what RemoteFileClient's retry loop dispatches on):
//   * kTransientIo — the exchange timed out (a frame was lost in either
//     direction within `timeout_us` sim micros). Retrying the identical
//     frame (same seq, same epoch) is safe: the server's DRC absorbs the
//     executed-but-unacked case.
//   * kIoError with a "connection reset" flavor — the connection died. The
//     client must bump its session epoch before retrying so the server
//     aborts the orphaned session state.
//   * anything else — a fatal transport error, surfaced to the caller as-is.
// `timeout_us` is the caller's per-attempt deadline on the sim clock; cost
// models use it to charge the time a lost exchange wastes. Transports without
// a failure model (LoopbackTransport) ignore it.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<std::vector<std::byte>> RoundTrip(
      std::span<const std::byte> request, SimMicros timeout_us) = 0;
};

struct RpcServerOptions {
  // Total replies cached across all clients (FIFO eviction). A retried
  // non-idempotent op whose entry was evicted fails crisply — the server
  // can no longer prove at-most-once for it, and silent re-execution is the
  // one forbidden outcome.
  size_t drc_capacity = 256;
  // Distinct client ids served before new ones are refused: the per-client
  // state (an InvSession and a DRC slice) must not be wire-allocatable
  // without bound.
  size_t max_clients = 1024;
};

// Serves the marshalled protocol: one InvSession and one duplicate-request
// cache slice per client id. Single-threaded like the rest of the simulated
// server: callers serialize Handle.
class InversionServer {
 public:
  explicit InversionServer(InversionFs* fs, RpcServerOptions options = {});

  // Decode, execute, encode. Malformed requests produce error responses, not
  // crashes — this is the server's trust boundary.
  std::vector<std::byte> Handle(std::span<const std::byte> request);

  // Introspection for tests and reports.
  size_t num_clients() const { return clients_.size(); }
  size_t drc_entries() const { return drc_fifo_.size(); }

 private:
  struct ClientState {
    uint32_t epoch = 0;
    std::unique_ptr<InvSession> session;
    // Highest seq of any non-idempotent op this client has executed (or had
    // answered, e.g. the session-reset abort notice). A non-idempotent seq at
    // or below this mark with no cached reply is a retry whose entry was
    // evicted: refuse, never re-execute.
    uint64_t max_seq = 0;
    std::map<uint64_t, std::vector<std::byte>> replies;  // seq -> reply
  };

  // Server-side binding for the frame's tenant prefix (nullptr for "").
  // Bindings are cached per distinct name: tenant cardinality is bounded by
  // the deployment's client population, and the instruments must be the
  // same objects across that tenant's requests anyway.
  TenantBinding* BindTenant(const std::string& tenant);

  // Cache `reply` under (client, seq) and evict the FIFO down to capacity.
  void CacheReply(uint64_t client_id, ClientState& cs, uint64_t seq,
                  const std::vector<std::byte>& reply);

  // Execute `op` (args in `r`, already positioned past the header) on `cs`'s
  // session; returns the encoded response.
  std::vector<std::byte> Execute(RpcOp op, ByteReader& r, ClientState& cs);

  InversionFs* fs_;
  RpcServerOptions options_;
  // rpc.* metrics (in the served database's registry).
  MetricsRegistry* metrics_;
  Counter* bytes_in_;
  Counter* bytes_out_;
  Counter* drc_hits_;
  Counter* drc_evictions_;
  Counter* drc_lost_;
  Counter* epoch_bumps_;
  Counter* stale_epochs_;
  std::map<std::string, std::unique_ptr<TenantBinding>> tenants_;
  std::map<uint64_t, ClientState> clients_;
  std::deque<std::pair<uint64_t, uint64_t>> drc_fifo_;  // (client, seq)
};

// In-process transport: full marshalling through the server with simulated
// TCP cost in both directions. Never fails, so the timeout is unused.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(InversionServer* server, NetModel* net)
      : server_(server), net_(net) {}

  Result<std::vector<std::byte>> RoundTrip(std::span<const std::byte> request,
                                           SimMicros /*timeout_us*/) override {
    net_->ChargeMessage(request.size());
    std::vector<std::byte> response = server_->Handle(request);
    net_->ChargeMessage(response.size());
    return response;
  }

 private:
  InversionServer* server_;
  NetModel* net_;
};

// Client-side resilience policy. Timeout and backoff are sim micros; backoff
// doubles per retry from `backoff_base_us`, capped at `backoff_cap_us`, and
// is charged to the sim clock so lost exchanges cost visible time.
struct RpcRetryPolicy {
  int max_attempts = 6;
  SimMicros timeout_us = 200'000;
  SimMicros backoff_base_us = 10'000;
  SimMicros backoff_cap_us = 160'000;
};

struct RpcClientOptions {
  // Stable per-stub identity stamped into every frame. 0 auto-assigns from a
  // process-wide counter (deterministic per construction order).
  uint64_t client_id = 0;
  // Charged for backoff waits; nullptr backs off in zero sim time.
  SimClock* clock = nullptr;
  // rpc.client.* counters and rpc.retry spans; nullptr disables them.
  MetricsRegistry* metrics = nullptr;
  RpcRetryPolicy retry;
};

// Client stub: the "special library" the paper's clients link against. One
// stub models one client of one tenant; per-stub state (tenant tag, seq,
// epoch) is single-threaded like the sessions it mirrors.
class RemoteFileClient {
 public:
  explicit RemoteFileClient(Transport* transport, RpcClientOptions options = {});

  // Tenant tag stamped into every subsequent request frame ("" = untagged).
  // Per-stub state, not per-call: a stub models one client of one tenant.
  void set_tenant(std::string_view tenant) { tenant_ = tenant; }
  const std::string& tenant() const { return tenant_; }

  uint64_t client_id() const { return client_id_; }
  uint32_t epoch() const { return epoch_; }
  uint64_t retries() const { return retries_; }

  Status p_begin();
  Status p_commit();
  Status p_abort();
  Result<int> p_creat(const std::string& path, const CreatOptions& options = {});
  Result<int> p_open(const std::string& path, OpenMode mode,
                     Timestamp as_of = kTimestampNow);
  Status p_close(int fd);
  Result<int64_t> p_read(int fd, std::span<std::byte> buf);
  Result<int64_t> p_write(int fd, std::span<const std::byte> buf);
  Result<int64_t> p_lseek(int fd, int64_t offset, Whence whence);
  Result<FileStat> p_fstat(int fd);
  Status mkdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Result<FileStat> stat(const std::string& path, Timestamp as_of = kTimestampNow);
  Result<std::vector<DirEntry>> readdir(const std::string& path,
                                        Timestamp as_of = kTimestampNow);
  Result<ResultSet> Query(const std::string& text);

 private:
  // Send op + args as one call: stamps the header (tenant, client id, a
  // fresh seq, the current epoch), round-trips with the retry policy, and
  // returns the decoded ok-payload. Retries reuse the seq; a reset bumps
  // epoch_ before the re-send.
  Result<std::vector<std::byte>> Call(RpcOp op, const ByteWriter& args);

  Transport* transport_;
  RpcClientOptions options_;
  std::string tenant_;
  uint64_t client_id_;
  uint64_t seq_ = 0;
  uint32_t epoch_ = 1;
  uint64_t retries_ = 0;
  // Cached instruments (cold-path registration at construction).
  Counter* calls_ = nullptr;
  Counter* retries_counter_ = nullptr;
  Counter* timeouts_ = nullptr;
  Counter* resets_ = nullptr;
  Counter* corrupt_ = nullptr;
  Counter* exhausted_ = nullptr;
};

}  // namespace invfs
