#include "src/net/rpc.h"

#include <algorithm>
#include <atomic>

#include "src/obs/span.h"

namespace invfs {
namespace {

// Largest read a single request frame may ask the server to buffer.
constexpr uint32_t kMaxRpcReadBytes = 64u << 20;

// Auto-assigned stub ids (RpcClientOptions::client_id == 0): process-wide so
// two stubs never collide, deterministic per construction order.
std::atomic<uint64_t> g_next_client_id{1};

// ---- shared value / struct marshalling --------------------------------------

enum class WireType : uint8_t {
  kNull = 0,
  kBool,
  kInt4,
  kInt8,
  kFloat8,
  kText,
  kBytea,
  kOid,
  kTimestamp,
};

void PutValue(ByteWriter& w, const Value& v) {
  if (v.is_null()) {
    w.U8(static_cast<uint8_t>(WireType::kNull));
  } else if (v.HasType(TypeId::kBool)) {
    w.U8(static_cast<uint8_t>(WireType::kBool));
    w.U8(v.AsBool() ? 1 : 0);
  } else if (v.HasType(TypeId::kInt4)) {
    w.U8(static_cast<uint8_t>(WireType::kInt4));
    w.U32(static_cast<uint32_t>(v.AsInt4()));
  } else if (v.HasType(TypeId::kInt8)) {
    w.U8(static_cast<uint8_t>(WireType::kInt8));
    w.I64(v.AsInt8());
  } else if (v.HasType(TypeId::kFloat8)) {
    w.U8(static_cast<uint8_t>(WireType::kFloat8));
    w.F64(v.AsFloat8());
  } else if (v.HasType(TypeId::kText)) {
    w.U8(static_cast<uint8_t>(WireType::kText));
    w.Str(v.AsText());
  } else if (v.HasType(TypeId::kBytea)) {
    w.U8(static_cast<uint8_t>(WireType::kBytea));
    w.Blob(v.AsBytes());
  } else if (v.HasType(TypeId::kOid)) {
    w.U8(static_cast<uint8_t>(WireType::kOid));
    w.U32(v.AsOid());
  } else {
    w.U8(static_cast<uint8_t>(WireType::kTimestamp));
    w.U64(v.AsTimestamp());
  }
}

Value GetValue(ByteReader& r) {
  switch (static_cast<WireType>(r.U8())) {
    case WireType::kNull:
      return Value::Null();
    case WireType::kBool:
      return Value::Bool(r.U8() != 0);
    case WireType::kInt4:
      return Value::Int4(static_cast<int32_t>(r.U32()));
    case WireType::kInt8:
      return Value::Int8(r.I64());
    case WireType::kFloat8:
      return Value::Float8(r.F64());
    case WireType::kText:
      return Value::Text(r.Str());
    case WireType::kBytea:
      return Value::Bytes(r.Blob());
    case WireType::kOid:
      return Value::MakeOid(r.U32());
    case WireType::kTimestamp:
      return Value::MakeTimestamp(r.U64());
  }
  return Value::Null();
}

void PutFileStat(ByteWriter& w, const FileStat& st) {
  w.U32(st.oid);
  w.Str(st.name);
  w.Str(st.owner);
  w.Str(st.type);
  w.I64(st.size);
  w.U64(st.ctime);
  w.U64(st.mtime);
  w.U64(st.atime);
  w.U8(st.device);
  w.U8(st.is_directory ? 1 : 0);
  w.U8(st.compressed ? 1 : 0);
}

FileStat GetFileStat(ByteReader& r) {
  FileStat st;
  st.oid = r.U32();
  st.name = r.Str();
  st.owner = r.Str();
  st.type = r.Str();
  st.size = r.I64();
  st.ctime = r.U64();
  st.mtime = r.U64();
  st.atime = r.U64();
  st.device = r.U8();
  st.is_directory = r.U8() != 0;
  st.compressed = r.U8() != 0;
  return st;
}

std::vector<std::byte> OkResponse(const ByteWriter& payload) {
  ByteWriter w;
  w.U8(1);
  w.Bytes(payload.data());
  return std::vector<std::byte>(w.data());
}

std::vector<std::byte> ErrorResponse(const Status& status) {
  ByteWriter w;
  w.U8(0);
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  return std::vector<std::byte>(w.data());
}

}  // namespace

// -------------------------------------------------------------------- server

namespace {

const char* RpcOpName(RpcOp op) {
  switch (op) {
    case RpcOp::kBegin:
      return "begin";
    case RpcOp::kCommit:
      return "commit";
    case RpcOp::kAbort:
      return "abort";
    case RpcOp::kCreat:
      return "creat";
    case RpcOp::kOpen:
      return "open";
    case RpcOp::kClose:
      return "close";
    case RpcOp::kRead:
      return "read";
    case RpcOp::kWrite:
      return "write";
    case RpcOp::kLseek:
      return "lseek";
    case RpcOp::kFstat:
      return "fstat";
    case RpcOp::kMkdir:
      return "mkdir";
    case RpcOp::kUnlink:
      return "unlink";
    case RpcOp::kRename:
      return "rename";
    case RpcOp::kStat:
      return "stat";
    case RpcOp::kReaddir:
      return "readdir";
    case RpcOp::kQuery:
      return "query";
  }
  return "unknown";
}

// Root-span names: static literals so the dispatch path never interns.
const char* RpcSpanName(RpcOp op) {
  switch (op) {
    case RpcOp::kBegin:
      return "rpc.begin";
    case RpcOp::kCommit:
      return "rpc.commit";
    case RpcOp::kAbort:
      return "rpc.abort";
    case RpcOp::kCreat:
      return "rpc.creat";
    case RpcOp::kOpen:
      return "rpc.open";
    case RpcOp::kClose:
      return "rpc.close";
    case RpcOp::kRead:
      return "rpc.read";
    case RpcOp::kWrite:
      return "rpc.write";
    case RpcOp::kLseek:
      return "rpc.lseek";
    case RpcOp::kFstat:
      return "rpc.fstat";
    case RpcOp::kMkdir:
      return "rpc.mkdir";
    case RpcOp::kUnlink:
      return "rpc.unlink";
    case RpcOp::kRename:
      return "rpc.rename";
    case RpcOp::kStat:
      return "rpc.stat";
    case RpcOp::kReaddir:
      return "rpc.readdir";
    case RpcOp::kQuery:
      return "rpc.query";
  }
  return "rpc.unknown";
}

}  // namespace

InversionServer::InversionServer(InversionFs* fs, RpcServerOptions options)
    : fs_(fs), options_(options) {
  metrics_ = &fs_->db().metrics();
  bytes_in_ = metrics_->GetCounter("rpc.bytes_in");
  bytes_out_ = metrics_->GetCounter("rpc.bytes_out");
  drc_hits_ = metrics_->GetCounter("rpc.server.drc_hits");
  drc_evictions_ = metrics_->GetCounter("rpc.server.drc_evictions");
  drc_lost_ = metrics_->GetCounter("rpc.server.drc_lost");
  epoch_bumps_ = metrics_->GetCounter("rpc.server.epoch_bumps");
  stale_epochs_ = metrics_->GetCounter("rpc.server.stale_epochs");
}

TenantBinding* InversionServer::BindTenant(const std::string& tenant) {
  if (tenant.empty()) {
    return nullptr;
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(tenant, std::make_unique<TenantBinding>(metrics_, tenant))
             .first;
  }
  return it->second.get();
}

void InversionServer::CacheReply(uint64_t client_id, ClientState& cs,
                                 uint64_t seq,
                                 const std::vector<std::byte>& reply) {
  cs.replies.emplace(seq, reply);
  cs.max_seq = std::max(cs.max_seq, seq);
  drc_fifo_.emplace_back(client_id, seq);
  while (drc_fifo_.size() > options_.drc_capacity) {
    const auto [cid, old_seq] = drc_fifo_.front();
    drc_fifo_.pop_front();
    auto it = clients_.find(cid);
    if (it != clients_.end()) {
      it->second.replies.erase(old_seq);
    }
    drc_evictions_->Add();
  }
}

std::vector<std::byte> InversionServer::Handle(
    std::span<const std::byte> request) {
  bytes_in_->Add(request.size());
  ByteReader r(request);
  const std::string tenant = r.Str();
  const uint64_t client_id = r.U64();
  const uint64_t seq = r.U64();
  const uint32_t epoch = r.U32();
  const RpcOp op = static_cast<RpcOp>(r.U8());
  auto respond = [this](std::vector<std::byte> resp) {
    bytes_out_->Add(resp.size());
    return resp;
  };
  // A header the reader could not fully decode carries no usable identity:
  // reject before creating any per-client state from garbage bytes.
  if (!r.ok()) {
    return respond(ErrorResponse(
        Status::InvalidArgument("malformed rpc request header")));
  }
  // Re-establish the caller's tenant tag before the root span opens so the
  // whole server-side request tree — and every op.latency_us observation the
  // session makes — attributes to the remote tenant.
  ScopedTenantTag tag(BindTenant(tenant));
  // Per-op request counter: one registry map lookup per call, which is noise
  // next to the simulated wire costs this layer exists to charge.
  metrics_->GetCounter("rpc.requests", RpcOpName(op))->Add();
  if (IsReadOnlyRpcOp(op)) {
    metrics_->GetCounter("rpc.read_only_requests")->Add();
  }

  auto it = clients_.find(client_id);
  if (it == clients_.end()) {
    if (clients_.size() >= options_.max_clients) {
      return respond(ErrorResponse(Status::ResourceExhausted(
          "rpc server at its client limit (" +
          std::to_string(options_.max_clients) + ")")));
    }
    auto session = fs_->NewSession();
    if (!session.ok()) {
      return respond(ErrorResponse(session.status()));
    }
    ClientState fresh;
    fresh.epoch = epoch;
    fresh.session = std::move(*session);
    it = clients_.emplace(client_id, std::move(fresh)).first;
  }
  ClientState& cs = it->second;

  if (epoch < cs.epoch) {
    stale_epochs_->Add();
    return respond(ErrorResponse(Status::InvalidArgument(
        "stale session epoch " + std::to_string(epoch) + " (current " +
        std::to_string(cs.epoch) + ")")));
  }
  if (epoch > cs.epoch) {
    // Session recovery: the client observed a connection reset and announced
    // a new generation. Tear the old session down — its destructor aborts an
    // open transaction (releasing every lock) and closes orphaned fds — and
    // start fresh. If a transaction was in fact orphaned, the triggering
    // request is answered with the abort instead of being executed: its fds
    // and transaction context died with the old epoch, and the client must
    // learn that crisply rather than observe a half-applied op.
    epoch_bumps_->Add();
    const bool orphaned = cs.session != nullptr && cs.session->in_txn();
    cs.session.reset();
    auto session = fs_->NewSession();
    if (!session.ok()) {
      return respond(ErrorResponse(session.status()));
    }
    cs.session = std::move(*session);
    cs.epoch = epoch;
    if (orphaned) {
      std::vector<std::byte> resp = ErrorResponse(Status::TxnAborted(
          "session reset: open transaction aborted, fds closed"));
      if (!IsIdempotentRpcOp(op)) {
        // The abort notice is this seq's reply of record: a retry of the
        // same seq must replay it, not execute the op on the new session.
        CacheReply(client_id, cs, seq, resp);
      }
      return respond(std::move(resp));
    }
  }

  // Duplicate-request cache (Juszczak): a retried or duplicated delivery of
  // a non-idempotent op replays the cached reply instead of re-executing.
  if (!IsIdempotentRpcOp(op)) {
    auto hit = cs.replies.find(seq);
    if (hit != cs.replies.end()) {
      drc_hits_->Add();
      return respond(hit->second);
    }
    if (seq != 0 && seq <= cs.max_seq) {
      // Already executed, reply evicted: refusing is the only honest answer
      // — re-executing would apply the op twice.
      drc_lost_->Add();
      return respond(ErrorResponse(Status::Internal(
          "duplicate request seq " + std::to_string(seq) +
          ": cached reply evicted, cannot guarantee at-most-once")));
    }
  }

  std::vector<std::byte> response = Execute(op, r, cs);
  if (!IsIdempotentRpcOp(op)) {
    CacheReply(client_id, cs, seq, response);
  }
  return respond(std::move(response));
}

std::vector<std::byte> InversionServer::Execute(RpcOp op, ByteReader& r,
                                                ClientState& cs) {
  InvSession& session = *cs.session;
  // Root of the request's causal trace: every span the handled op opens
  // below (p_* entry, txn, buffer, device, commit) becomes a descendant.
  ScopedSpan span(&metrics_->spans(), RpcSpanName(op));
  ByteWriter payload;
  Status status = Status::Ok();

  switch (op) {
    case RpcOp::kBegin:
      status = session.p_begin();
      break;
    case RpcOp::kCommit:
      status = session.p_commit();
      break;
    case RpcOp::kAbort:
      status = session.p_abort();
      break;
    case RpcOp::kCreat: {
      const std::string path = r.Str();
      CreatOptions options;
      options.device = r.U8();
      options.owner = r.Str();
      options.type = r.Str();
      options.compressed = r.U8() != 0;
      options.keep_history = r.U8() != 0;
      auto fd = session.p_creat(path, options);
      status = fd.status();
      if (fd.ok()) {
        payload.U32(static_cast<uint32_t>(*fd));
      }
      break;
    }
    case RpcOp::kOpen: {
      const std::string path = r.Str();
      const OpenMode mode = r.U8() != 0 ? OpenMode::kWrite : OpenMode::kRead;
      const Timestamp as_of = r.U64();
      auto fd = session.p_open(path, mode, as_of);
      status = fd.status();
      if (fd.ok()) {
        payload.U32(static_cast<uint32_t>(*fd));
      }
      break;
    }
    case RpcOp::kClose:
      status = session.p_close(static_cast<int>(r.U32()));
      break;
    case RpcOp::kRead: {
      const int fd = static_cast<int>(r.U32());
      const uint32_t len = r.U32();
      // Trust boundary: `len` is wire-controlled. Without a cap a single
      // 9-byte frame could demand a 4 GB allocation before p_read ever runs.
      if (len > kMaxRpcReadBytes) {
        status = Status::InvalidArgument(
            "rpc read of " + std::to_string(len) + " bytes exceeds the " +
            std::to_string(kMaxRpcReadBytes) + "-byte frame limit");
        break;
      }
      std::vector<std::byte> buf(len);
      auto n = session.p_read(fd, buf);
      status = n.status();
      if (n.ok()) {
        payload.Blob(std::span(buf.data(), static_cast<size_t>(*n)));
      }
      break;
    }
    case RpcOp::kWrite: {
      const int fd = static_cast<int>(r.U32());
      std::vector<std::byte> data = r.Blob();
      auto n = session.p_write(fd, data);
      status = n.status();
      if (n.ok()) {
        payload.I64(*n);
      }
      break;
    }
    case RpcOp::kLseek: {
      const int fd = static_cast<int>(r.U32());
      const int64_t offset = r.I64();
      const Whence whence = static_cast<Whence>(r.U8());
      auto pos = session.p_lseek(fd, offset, whence);
      status = pos.status();
      if (pos.ok()) {
        payload.I64(*pos);
      }
      break;
    }
    case RpcOp::kFstat: {
      auto st = session.p_fstat(static_cast<int>(r.U32()));
      status = st.status();
      if (st.ok()) {
        PutFileStat(payload, *st);
      }
      break;
    }
    case RpcOp::kMkdir:
      status = session.mkdir(r.Str());
      break;
    case RpcOp::kUnlink:
      status = session.unlink(r.Str());
      break;
    case RpcOp::kRename: {
      const std::string from = r.Str();
      const std::string to = r.Str();
      status = session.rename(from, to);
      break;
    }
    case RpcOp::kStat: {
      const std::string path = r.Str();
      const Timestamp as_of = r.U64();
      auto st = session.stat(path, as_of);
      status = st.status();
      if (st.ok()) {
        PutFileStat(payload, *st);
      }
      break;
    }
    case RpcOp::kReaddir: {
      const std::string path = r.Str();
      const Timestamp as_of = r.U64();
      auto entries = session.readdir(path, as_of);
      status = entries.status();
      if (entries.ok()) {
        payload.U32(static_cast<uint32_t>(entries->size()));
        for (const DirEntry& e : *entries) {
          payload.Str(e.name);
          payload.U32(e.oid);
          payload.U8(e.is_directory ? 1 : 0);
        }
      }
      break;
    }
    case RpcOp::kQuery: {
      auto rs = session.Query(r.Str());
      status = rs.status();
      if (rs.ok()) {
        payload.U32(static_cast<uint32_t>(rs->columns.size()));
        for (const std::string& c : rs->columns) {
          payload.Str(c);
        }
        payload.U32(static_cast<uint32_t>(rs->rows.size()));
        for (const Row& row : rs->rows) {
          for (const Value& v : row) {
            PutValue(payload, v);
          }
        }
      }
      break;
    }
    default:
      status = Status::InvalidArgument("unknown rpc op " +
                                       std::to_string(static_cast<int>(op)));
  }
  if (!r.ok()) {
    status = Status::InvalidArgument("malformed rpc request");
  }
  std::vector<std::byte> response =
      status.ok() ? OkResponse(payload) : ErrorResponse(status);
  metrics_->GetHistogram("rpc.latency_us", RpcOpName(op))
      ->Observe(span.ElapsedMicros());
  return response;
}

// -------------------------------------------------------------------- client

RemoteFileClient::RemoteFileClient(Transport* transport,
                                   RpcClientOptions options)
    : transport_(transport), options_(options) {
  client_id_ = options_.client_id != 0
                   ? options_.client_id
                   : g_next_client_id.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    calls_ = options_.metrics->GetCounter("rpc.client.calls");
    retries_counter_ = options_.metrics->GetCounter("rpc.client.retries");
    timeouts_ = options_.metrics->GetCounter("rpc.client.timeouts");
    resets_ = options_.metrics->GetCounter("rpc.client.resets");
    corrupt_ = options_.metrics->GetCounter("rpc.client.corrupt_responses");
    exhausted_ = options_.metrics->GetCounter("rpc.client.exhausted");
  }
}

namespace {

// Shape-walk an ok-response payload for `op` without keeping the result.
// Runs inside the retry loop: a payload cut short mid-field (response
// truncation past the status byte) must be handled like a lost response —
// retried under the same seq so the DRC replays the intact reply — not
// surfaced as a final decode error after an op the server already applied.
bool ValidResponsePayload(RpcOp op, std::span<const std::byte> payload) {
  ByteReader r(payload);
  switch (op) {
    case RpcOp::kBegin:
    case RpcOp::kCommit:
    case RpcOp::kAbort:
    case RpcOp::kClose:
    case RpcOp::kMkdir:
    case RpcOp::kUnlink:
    case RpcOp::kRename:
      return true;  // empty payload
    case RpcOp::kCreat:
    case RpcOp::kOpen:
      r.U32();
      return r.ok();
    case RpcOp::kRead:
      r.Blob();
      return r.ok();
    case RpcOp::kWrite:
    case RpcOp::kLseek:
      r.I64();
      return r.ok();
    case RpcOp::kFstat:
    case RpcOp::kStat:
      (void)GetFileStat(r);
      return r.ok();
    case RpcOp::kReaddir: {
      const uint32_t n = r.U32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        (void)r.Str();
        r.U32();
        r.U8();
      }
      return r.ok();
    }
    case RpcOp::kQuery: {
      const uint32_t ncols = r.U32();
      for (uint32_t i = 0; i < ncols && r.ok(); ++i) {
        (void)r.Str();
      }
      const uint32_t nrows = r.U32();
      for (uint32_t i = 0; i < nrows && r.ok(); ++i) {
        for (uint32_t c = 0; c < ncols && r.ok(); ++c) {
          (void)GetValue(r);
        }
      }
      return r.ok();
    }
  }
  return true;
}

}  // namespace

Result<std::vector<std::byte>> RemoteFileClient::Call(RpcOp op,
                                                      const ByteWriter& args) {
  const uint64_t seq = ++seq_;
  if (calls_ != nullptr) {
    calls_->Add();
  }
  const RpcRetryPolicy& rp = options_.retry;
  const int attempts = std::max(1, rp.max_attempts);
  Status last = Status::Ok();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      // Capped exponential backoff, charged to the sim clock so lost
      // exchanges cost visible time. The rpc.retry span makes each one
      // attributable: a = op, b = attempt number.
      ++retries_;
      if (retries_counter_ != nullptr) {
        retries_counter_->Add();
      }
      const int shift = std::min(attempt - 2, 30);
      const SimMicros delay =
          std::min(rp.backoff_cap_us, rp.backoff_base_us << shift);
      ScopedSpan span(
          options_.metrics != nullptr ? &options_.metrics->spans() : nullptr,
          "rpc.retry", static_cast<uint64_t>(op),
          static_cast<uint64_t>(attempt));
      if (options_.clock != nullptr && delay > 0) {
        options_.clock->Advance(delay);
      }
    }
    // The header is rebuilt per attempt: the seq is sticky across retries
    // (that is what lets the server deduplicate), but a reset bumps epoch_
    // between attempts and the re-send must announce the new generation.
    ByteWriter frame;
    frame.Str(tenant_);
    frame.U64(client_id_);
    frame.U64(seq);
    frame.U32(epoch_);
    frame.U8(static_cast<uint8_t>(op));
    frame.Bytes(args.data());
    auto response = transport_->RoundTrip(frame.data(), rp.timeout_us);
    if (!response.ok()) {
      last = response.status();
      if (last.code() == ErrorCode::kTransientIo) {
        if (timeouts_ != nullptr) {
          timeouts_->Add();
        }
        continue;
      }
      if (last.code() == ErrorCode::kIoError) {
        // Connection reset: the server-side session (fds, any open
        // transaction) is orphaned. Announce a new epoch on the retry so the
        // server aborts it instead of leaking locks.
        if (resets_ != nullptr) {
          resets_->Add();
        }
        ++epoch_;
        continue;
      }
      return last;  // not a wire failure; surface as-is
    }
    // Client trust boundary: the response is wire data. A frame too short
    // for even its status header carries no reply — treat it exactly like a
    // lost response and retry (the DRC makes that safe).
    ByteReader r(*response);
    const uint8_t ok = r.U8();
    if (!r.ok()) {
      if (corrupt_ != nullptr) {
        corrupt_->Add();
      }
      last = Status::TransientIo("truncated rpc response header");
      continue;
    }
    if (ok == 0) {
      const ErrorCode code = static_cast<ErrorCode>(r.U8());
      std::string message = r.Str();
      if (!r.ok()) {
        if (corrupt_ != nullptr) {
          corrupt_->Add();
        }
        last = Status::TransientIo("truncated rpc error response");
        continue;
      }
      return Status(code, std::move(message));
    }
    std::vector<std::byte> payload(response->begin() + 1, response->end());
    if (!ValidResponsePayload(op, payload)) {
      if (corrupt_ != nullptr) {
        corrupt_->Add();
      }
      last = Status::TransientIo("truncated rpc response payload");
      continue;
    }
    return payload;
  }
  if (exhausted_ != nullptr) {
    exhausted_->Add();
  }
  if (last.ok()) {
    return Status::IoError("rpc retries exhausted");
  }
  return Status(last.code(), "rpc retries exhausted after " +
                                 std::to_string(attempts) +
                                 " attempts: " + last.message());
}

Status RemoteFileClient::p_begin() {
  return Call(RpcOp::kBegin, ByteWriter()).status();
}

Status RemoteFileClient::p_commit() {
  return Call(RpcOp::kCommit, ByteWriter()).status();
}

Status RemoteFileClient::p_abort() {
  return Call(RpcOp::kAbort, ByteWriter()).status();
}

Result<int> RemoteFileClient::p_creat(const std::string& path,
                                      const CreatOptions& options) {
  ByteWriter w;
  w.Str(path);
  w.U8(options.device);
  w.Str(options.owner);
  w.Str(options.type);
  w.U8(options.compressed ? 1 : 0);
  w.U8(options.keep_history ? 1 : 0);
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kCreat, w));
  ByteReader r(payload);
  const int fd = static_cast<int>(r.U32());
  if (!r.ok()) {
    return Status::Corruption("malformed creat response");
  }
  return fd;
}

Result<int> RemoteFileClient::p_open(const std::string& path, OpenMode mode,
                                     Timestamp as_of) {
  ByteWriter w;
  w.Str(path);
  w.U8(mode == OpenMode::kWrite ? 1 : 0);
  w.U64(as_of);
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kOpen, w));
  ByteReader r(payload);
  const int fd = static_cast<int>(r.U32());
  if (!r.ok()) {
    return Status::Corruption("malformed open response");
  }
  return fd;
}

Status RemoteFileClient::p_close(int fd) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(fd));
  return Call(RpcOp::kClose, w).status();
}

Result<int64_t> RemoteFileClient::p_read(int fd, std::span<std::byte> buf) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(fd));
  w.U32(static_cast<uint32_t>(buf.size()));
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kRead, w));
  ByteReader r(payload);
  std::vector<std::byte> data = r.Blob();
  if (!r.ok()) {
    return Status::Corruption("malformed read response");
  }
  if (data.size() > buf.size()) {
    return Status::Internal("server returned more data than requested");
  }
  std::copy(data.begin(), data.end(), buf.begin());
  return static_cast<int64_t>(data.size());
}

Result<int64_t> RemoteFileClient::p_write(int fd,
                                          std::span<const std::byte> buf) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(fd));
  w.Blob(buf);
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kWrite, w));
  ByteReader r(payload);
  const int64_t n = r.I64();
  if (!r.ok()) {
    return Status::Corruption("malformed write response");
  }
  return n;
}

Result<int64_t> RemoteFileClient::p_lseek(int fd, int64_t offset,
                                          Whence whence) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(fd));
  w.I64(offset);
  w.U8(static_cast<uint8_t>(whence));
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kLseek, w));
  ByteReader r(payload);
  const int64_t pos = r.I64();
  if (!r.ok()) {
    return Status::Corruption("malformed lseek response");
  }
  return pos;
}

Result<FileStat> RemoteFileClient::p_fstat(int fd) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(fd));
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kFstat, w));
  ByteReader r(payload);
  FileStat st = GetFileStat(r);
  if (!r.ok()) {
    return Status::Corruption("malformed fstat response");
  }
  return st;
}

Status RemoteFileClient::mkdir(const std::string& path) {
  ByteWriter w;
  w.Str(path);
  return Call(RpcOp::kMkdir, w).status();
}

Status RemoteFileClient::unlink(const std::string& path) {
  ByteWriter w;
  w.Str(path);
  return Call(RpcOp::kUnlink, w).status();
}

Status RemoteFileClient::rename(const std::string& from,
                                const std::string& to) {
  ByteWriter w;
  w.Str(from);
  w.Str(to);
  return Call(RpcOp::kRename, w).status();
}

Result<FileStat> RemoteFileClient::stat(const std::string& path,
                                        Timestamp as_of) {
  ByteWriter w;
  w.Str(path);
  w.U64(as_of);
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kStat, w));
  ByteReader r(payload);
  FileStat st = GetFileStat(r);
  if (!r.ok()) {
    return Status::Corruption("malformed stat response");
  }
  return st;
}

Result<std::vector<DirEntry>> RemoteFileClient::readdir(
    const std::string& path, Timestamp as_of) {
  ByteWriter w;
  w.Str(path);
  w.U64(as_of);
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kReaddir, w));
  ByteReader r(payload);
  const uint32_t n = r.U32();
  std::vector<DirEntry> out;
  // `n` is wire-controlled: bound the reservation by what the payload could
  // possibly hold (>= 9 bytes per entry) and let the sticky reader error end
  // the loop, so an oversized count can neither over-allocate nor spin.
  out.reserve(std::min<size_t>(n, r.remaining() / 9));
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    DirEntry e;
    e.name = r.Str();
    e.oid = r.U32();
    e.is_directory = r.U8() != 0;
    out.push_back(std::move(e));
  }
  if (!r.ok()) {
    return Status::Corruption("malformed readdir response");
  }
  return out;
}

Result<ResultSet> RemoteFileClient::Query(const std::string& text) {
  ByteWriter w;
  w.Str(text);
  INV_ASSIGN_OR_RETURN(auto payload, Call(RpcOp::kQuery, w));
  ByteReader r(payload);
  ResultSet rs;
  const uint32_t ncols = r.U32();
  for (uint32_t i = 0; i < ncols && r.ok(); ++i) {
    rs.columns.push_back(r.Str());
  }
  // Both counts are wire-controlled; the r.ok() guards keep a huge count
  // from looping billions of times over an exhausted reader.
  const uint32_t nrows = r.U32();
  for (uint32_t i = 0; i < nrows && r.ok(); ++i) {
    Row row;
    row.reserve(rs.columns.size());
    for (uint32_t c = 0; c < ncols && r.ok(); ++c) {
      row.push_back(GetValue(r));
    }
    rs.rows.push_back(std::move(row));
  }
  if (!r.ok()) {
    return Status::Corruption("malformed query response");
  }
  return rs;
}

}  // namespace invfs
