#include "src/net/rpc.h"

#include "src/obs/span.h"

namespace invfs {
namespace {

// Largest read a single request frame may ask the server to buffer.
constexpr uint32_t kMaxRpcReadBytes = 64u << 20;

// ---- shared value / struct marshalling --------------------------------------

enum class WireType : uint8_t {
  kNull = 0,
  kBool,
  kInt4,
  kInt8,
  kFloat8,
  kText,
  kBytea,
  kOid,
  kTimestamp,
};

void PutValue(ByteWriter& w, const Value& v) {
  if (v.is_null()) {
    w.U8(static_cast<uint8_t>(WireType::kNull));
  } else if (v.HasType(TypeId::kBool)) {
    w.U8(static_cast<uint8_t>(WireType::kBool));
    w.U8(v.AsBool() ? 1 : 0);
  } else if (v.HasType(TypeId::kInt4)) {
    w.U8(static_cast<uint8_t>(WireType::kInt4));
    w.U32(static_cast<uint32_t>(v.AsInt4()));
  } else if (v.HasType(TypeId::kInt8)) {
    w.U8(static_cast<uint8_t>(WireType::kInt8));
    w.I64(v.AsInt8());
  } else if (v.HasType(TypeId::kFloat8)) {
    w.U8(static_cast<uint8_t>(WireType::kFloat8));
    w.F64(v.AsFloat8());
  } else if (v.HasType(TypeId::kText)) {
    w.U8(static_cast<uint8_t>(WireType::kText));
    w.Str(v.AsText());
  } else if (v.HasType(TypeId::kBytea)) {
    w.U8(static_cast<uint8_t>(WireType::kBytea));
    w.Blob(v.AsBytes());
  } else if (v.HasType(TypeId::kOid)) {
    w.U8(static_cast<uint8_t>(WireType::kOid));
    w.U32(v.AsOid());
  } else {
    w.U8(static_cast<uint8_t>(WireType::kTimestamp));
    w.U64(v.AsTimestamp());
  }
}

Value GetValue(ByteReader& r) {
  switch (static_cast<WireType>(r.U8())) {
    case WireType::kNull:
      return Value::Null();
    case WireType::kBool:
      return Value::Bool(r.U8() != 0);
    case WireType::kInt4:
      return Value::Int4(static_cast<int32_t>(r.U32()));
    case WireType::kInt8:
      return Value::Int8(r.I64());
    case WireType::kFloat8:
      return Value::Float8(r.F64());
    case WireType::kText:
      return Value::Text(r.Str());
    case WireType::kBytea:
      return Value::Bytes(r.Blob());
    case WireType::kOid:
      return Value::MakeOid(r.U32());
    case WireType::kTimestamp:
      return Value::MakeTimestamp(r.U64());
  }
  return Value::Null();
}

void PutFileStat(ByteWriter& w, const FileStat& st) {
  w.U32(st.oid);
  w.Str(st.name);
  w.Str(st.owner);
  w.Str(st.type);
  w.I64(st.size);
  w.U64(st.ctime);
  w.U64(st.mtime);
  w.U64(st.atime);
  w.U8(st.device);
  w.U8(st.is_directory ? 1 : 0);
  w.U8(st.compressed ? 1 : 0);
}

FileStat GetFileStat(ByteReader& r) {
  FileStat st;
  st.oid = r.U32();
  st.name = r.Str();
  st.owner = r.Str();
  st.type = r.Str();
  st.size = r.I64();
  st.ctime = r.U64();
  st.mtime = r.U64();
  st.atime = r.U64();
  st.device = r.U8();
  st.is_directory = r.U8() != 0;
  st.compressed = r.U8() != 0;
  return st;
}

std::vector<std::byte> OkResponse(const ByteWriter& payload) {
  ByteWriter w;
  w.U8(1);
  w.Bytes(payload.data());
  return std::vector<std::byte>(w.data());
}

std::vector<std::byte> ErrorResponse(const Status& status) {
  ByteWriter w;
  w.U8(0);
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  return std::vector<std::byte>(w.data());
}

}  // namespace

// -------------------------------------------------------------------- server

namespace {

const char* RpcOpName(RpcOp op) {
  switch (op) {
    case RpcOp::kBegin:
      return "begin";
    case RpcOp::kCommit:
      return "commit";
    case RpcOp::kAbort:
      return "abort";
    case RpcOp::kCreat:
      return "creat";
    case RpcOp::kOpen:
      return "open";
    case RpcOp::kClose:
      return "close";
    case RpcOp::kRead:
      return "read";
    case RpcOp::kWrite:
      return "write";
    case RpcOp::kLseek:
      return "lseek";
    case RpcOp::kFstat:
      return "fstat";
    case RpcOp::kMkdir:
      return "mkdir";
    case RpcOp::kUnlink:
      return "unlink";
    case RpcOp::kRename:
      return "rename";
    case RpcOp::kStat:
      return "stat";
    case RpcOp::kReaddir:
      return "readdir";
    case RpcOp::kQuery:
      return "query";
  }
  return "unknown";
}

// Root-span names: static literals so the dispatch path never interns.
const char* RpcSpanName(RpcOp op) {
  switch (op) {
    case RpcOp::kBegin:
      return "rpc.begin";
    case RpcOp::kCommit:
      return "rpc.commit";
    case RpcOp::kAbort:
      return "rpc.abort";
    case RpcOp::kCreat:
      return "rpc.creat";
    case RpcOp::kOpen:
      return "rpc.open";
    case RpcOp::kClose:
      return "rpc.close";
    case RpcOp::kRead:
      return "rpc.read";
    case RpcOp::kWrite:
      return "rpc.write";
    case RpcOp::kLseek:
      return "rpc.lseek";
    case RpcOp::kFstat:
      return "rpc.fstat";
    case RpcOp::kMkdir:
      return "rpc.mkdir";
    case RpcOp::kUnlink:
      return "rpc.unlink";
    case RpcOp::kRename:
      return "rpc.rename";
    case RpcOp::kStat:
      return "rpc.stat";
    case RpcOp::kReaddir:
      return "rpc.readdir";
    case RpcOp::kQuery:
      return "rpc.query";
  }
  return "rpc.unknown";
}

}  // namespace

InversionServer::InversionServer(InversionFs* fs) : fs_(fs) {
  auto session = fs_->NewSession();
  INV_CHECK(session.ok());
  session_ = std::move(*session);
  metrics_ = &fs_->db().metrics();
  bytes_in_ = metrics_->GetCounter("rpc.bytes_in");
  bytes_out_ = metrics_->GetCounter("rpc.bytes_out");
}

TenantBinding* InversionServer::BindTenant(const std::string& tenant) {
  if (tenant.empty()) {
    return nullptr;
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(tenant, std::make_unique<TenantBinding>(metrics_, tenant))
             .first;
  }
  return it->second.get();
}

std::vector<std::byte> InversionServer::Handle(std::span<const std::byte> request) {
  ByteReader r(request);
  const std::string tenant = r.Str();
  // Re-establish the caller's tenant tag before the root span opens so the
  // whole server-side request tree — and every op.latency_us observation the
  // session makes — attributes to the remote tenant.
  ScopedTenantTag tag(BindTenant(tenant));
  const RpcOp op = static_cast<RpcOp>(r.U8());
  // Per-op request counter: one registry map lookup per call, which is noise
  // next to the simulated wire costs this layer exists to charge.
  metrics_->GetCounter("rpc.requests", RpcOpName(op))->Add();
  if (IsReadOnlyRpcOp(op)) {
    metrics_->GetCounter("rpc.read_only_requests")->Add();
  }
  bytes_in_->Add(request.size());
  // Root of the request's causal trace: every span the handled op opens
  // below (p_* entry, txn, buffer, device, commit) becomes a descendant.
  ScopedSpan span(&metrics_->spans(), RpcSpanName(op));
  ByteWriter payload;
  Status status = Status::Ok();

  switch (op) {
    case RpcOp::kBegin:
      status = session_->p_begin();
      break;
    case RpcOp::kCommit:
      status = session_->p_commit();
      break;
    case RpcOp::kAbort:
      status = session_->p_abort();
      break;
    case RpcOp::kCreat: {
      const std::string path = r.Str();
      CreatOptions options;
      options.device = r.U8();
      options.owner = r.Str();
      options.type = r.Str();
      options.compressed = r.U8() != 0;
      options.keep_history = r.U8() != 0;
      auto fd = session_->p_creat(path, options);
      status = fd.status();
      if (fd.ok()) {
        payload.U32(static_cast<uint32_t>(*fd));
      }
      break;
    }
    case RpcOp::kOpen: {
      const std::string path = r.Str();
      const OpenMode mode = r.U8() != 0 ? OpenMode::kWrite : OpenMode::kRead;
      const Timestamp as_of = r.U64();
      auto fd = session_->p_open(path, mode, as_of);
      status = fd.status();
      if (fd.ok()) {
        payload.U32(static_cast<uint32_t>(*fd));
      }
      break;
    }
    case RpcOp::kClose:
      status = session_->p_close(static_cast<int>(r.U32()));
      break;
    case RpcOp::kRead: {
      const int fd = static_cast<int>(r.U32());
      const uint32_t len = r.U32();
      // Trust boundary: `len` is wire-controlled. Without a cap a single
      // 9-byte frame could demand a 4 GB allocation before p_read ever runs.
      if (len > kMaxRpcReadBytes) {
        status = Status::InvalidArgument(
            "rpc read of " + std::to_string(len) + " bytes exceeds the " +
            std::to_string(kMaxRpcReadBytes) + "-byte frame limit");
        break;
      }
      std::vector<std::byte> buf(len);
      auto n = session_->p_read(fd, buf);
      status = n.status();
      if (n.ok()) {
        payload.Blob(std::span(buf.data(), static_cast<size_t>(*n)));
      }
      break;
    }
    case RpcOp::kWrite: {
      const int fd = static_cast<int>(r.U32());
      std::vector<std::byte> data = r.Blob();
      auto n = session_->p_write(fd, data);
      status = n.status();
      if (n.ok()) {
        payload.I64(*n);
      }
      break;
    }
    case RpcOp::kLseek: {
      const int fd = static_cast<int>(r.U32());
      const int64_t offset = r.I64();
      const Whence whence = static_cast<Whence>(r.U8());
      auto pos = session_->p_lseek(fd, offset, whence);
      status = pos.status();
      if (pos.ok()) {
        payload.I64(*pos);
      }
      break;
    }
    case RpcOp::kFstat: {
      auto st = session_->p_fstat(static_cast<int>(r.U32()));
      status = st.status();
      if (st.ok()) {
        PutFileStat(payload, *st);
      }
      break;
    }
    case RpcOp::kMkdir:
      status = session_->mkdir(r.Str());
      break;
    case RpcOp::kUnlink:
      status = session_->unlink(r.Str());
      break;
    case RpcOp::kRename: {
      const std::string from = r.Str();
      const std::string to = r.Str();
      status = session_->rename(from, to);
      break;
    }
    case RpcOp::kStat: {
      const std::string path = r.Str();
      const Timestamp as_of = r.U64();
      auto st = session_->stat(path, as_of);
      status = st.status();
      if (st.ok()) {
        PutFileStat(payload, *st);
      }
      break;
    }
    case RpcOp::kReaddir: {
      const std::string path = r.Str();
      const Timestamp as_of = r.U64();
      auto entries = session_->readdir(path, as_of);
      status = entries.status();
      if (entries.ok()) {
        payload.U32(static_cast<uint32_t>(entries->size()));
        for (const DirEntry& e : *entries) {
          payload.Str(e.name);
          payload.U32(e.oid);
          payload.U8(e.is_directory ? 1 : 0);
        }
      }
      break;
    }
    case RpcOp::kQuery: {
      auto rs = session_->Query(r.Str());
      status = rs.status();
      if (rs.ok()) {
        payload.U32(static_cast<uint32_t>(rs->columns.size()));
        for (const std::string& c : rs->columns) {
          payload.Str(c);
        }
        payload.U32(static_cast<uint32_t>(rs->rows.size()));
        for (const Row& row : rs->rows) {
          for (const Value& v : row) {
            PutValue(payload, v);
          }
        }
      }
      break;
    }
    default:
      status = Status::InvalidArgument("unknown rpc op " +
                                       std::to_string(static_cast<int>(op)));
  }
  if (!r.ok()) {
    status = Status::InvalidArgument("malformed rpc request");
  }
  std::vector<std::byte> response =
      status.ok() ? OkResponse(payload) : ErrorResponse(status);
  bytes_out_->Add(response.size());
  metrics_->GetHistogram("rpc.latency_us", RpcOpName(op))
      ->Observe(span.ElapsedMicros());
  return response;
}

// -------------------------------------------------------------------- client

Result<std::vector<std::byte>> RemoteFileClient::Call(const ByteWriter& req) {
  // Frame = tenant prefix + the op-specific request the caller built.
  ByteWriter framed;
  framed.Str(tenant_);
  framed.Bytes(req.data());
  INV_ASSIGN_OR_RETURN(std::vector<std::byte> response,
                       transport_->RoundTrip(framed.data()));
  ByteReader r(response);
  if (r.U8() == 0) {
    const ErrorCode code = static_cast<ErrorCode>(r.U8());
    return Status(code, r.Str());
  }
  return std::vector<std::byte>(response.begin() + 1, response.end());
}

Status RemoteFileClient::p_begin() {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kBegin));
  return Call(w).status();
}

Status RemoteFileClient::p_commit() {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kCommit));
  return Call(w).status();
}

Status RemoteFileClient::p_abort() {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kAbort));
  return Call(w).status();
}

Result<int> RemoteFileClient::p_creat(const std::string& path,
                                      const CreatOptions& options) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kCreat));
  w.Str(path);
  w.U8(options.device);
  w.Str(options.owner);
  w.Str(options.type);
  w.U8(options.compressed ? 1 : 0);
  w.U8(options.keep_history ? 1 : 0);
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  return static_cast<int>(r.U32());
}

Result<int> RemoteFileClient::p_open(const std::string& path, OpenMode mode,
                                     Timestamp as_of) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kOpen));
  w.Str(path);
  w.U8(mode == OpenMode::kWrite ? 1 : 0);
  w.U64(as_of);
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  return static_cast<int>(r.U32());
}

Status RemoteFileClient::p_close(int fd) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kClose));
  w.U32(static_cast<uint32_t>(fd));
  return Call(w).status();
}

Result<int64_t> RemoteFileClient::p_read(int fd, std::span<std::byte> buf) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kRead));
  w.U32(static_cast<uint32_t>(fd));
  w.U32(static_cast<uint32_t>(buf.size()));
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  std::vector<std::byte> data = r.Blob();
  if (data.size() > buf.size()) {
    return Status::Internal("server returned more data than requested");
  }
  std::copy(data.begin(), data.end(), buf.begin());
  return static_cast<int64_t>(data.size());
}

Result<int64_t> RemoteFileClient::p_write(int fd, std::span<const std::byte> buf) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kWrite));
  w.U32(static_cast<uint32_t>(fd));
  w.Blob(buf);
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  return r.I64();
}

Result<int64_t> RemoteFileClient::p_lseek(int fd, int64_t offset, Whence whence) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kLseek));
  w.U32(static_cast<uint32_t>(fd));
  w.I64(offset);
  w.U8(static_cast<uint8_t>(whence));
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  return r.I64();
}

Result<FileStat> RemoteFileClient::p_fstat(int fd) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kFstat));
  w.U32(static_cast<uint32_t>(fd));
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  return GetFileStat(r);
}

Status RemoteFileClient::mkdir(const std::string& path) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kMkdir));
  w.Str(path);
  return Call(w).status();
}

Status RemoteFileClient::unlink(const std::string& path) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kUnlink));
  w.Str(path);
  return Call(w).status();
}

Status RemoteFileClient::rename(const std::string& from, const std::string& to) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kRename));
  w.Str(from);
  w.Str(to);
  return Call(w).status();
}

Result<FileStat> RemoteFileClient::stat(const std::string& path, Timestamp as_of) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kStat));
  w.Str(path);
  w.U64(as_of);
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  return GetFileStat(r);
}

Result<std::vector<DirEntry>> RemoteFileClient::readdir(const std::string& path,
                                                        Timestamp as_of) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kReaddir));
  w.Str(path);
  w.U64(as_of);
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  const uint32_t n = r.U32();
  std::vector<DirEntry> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DirEntry e;
    e.name = r.Str();
    e.oid = r.U32();
    e.is_directory = r.U8() != 0;
    out.push_back(std::move(e));
  }
  return out;
}

Result<ResultSet> RemoteFileClient::Query(const std::string& text) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RpcOp::kQuery));
  w.Str(text);
  INV_ASSIGN_OR_RETURN(auto payload, Call(w));
  ByteReader r(payload);
  ResultSet rs;
  const uint32_t ncols = r.U32();
  for (uint32_t i = 0; i < ncols; ++i) {
    rs.columns.push_back(r.Str());
  }
  const uint32_t nrows = r.U32();
  for (uint32_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      row.push_back(GetValue(r));
    }
    rs.rows.push_back(std::move(row));
  }
  if (!r.ok()) {
    return Status::Corruption("malformed query response");
  }
  return rs;
}

}  // namespace invfs
