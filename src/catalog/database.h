// Database: the facade that assembles the whole POSTGRES-analogue engine.
//
// One Database corresponds to one POSTGRES database, which in Inversion terms
// is one mount point ("A single database corresponds to a mount point in
// conventional file system architectures"). It owns the device switch, buffer
// pool, commit log, lock manager, transaction manager and catalogs, and
// provides row-level helpers that keep B-tree indices maintained.
//
// Durability model and crash simulation: all stable storage lives in the
// caller-owned StorageEnv (block stores + simulated clock). Crash() throws
// away every volatile structure; re-Open()ing the same StorageEnv performs
// POSTGRES' "recovery" — which is nothing but reading the commit log.

#pragma once

#include <memory>

#include "src/catalog/catalog.h"
#include "src/device/error_policy.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/sim/cost_params.h"
#include "src/sim/sim_clock.h"
#include "src/txn/reader_gate.h"
#include "src/txn/txn_manager.h"

namespace invfs {

class FaultInjector;

// Caller-owned persistent world: survives Database teardown, so tests and
// examples can crash and reopen.
struct StorageEnv {
  SimClock clock;
  std::unique_ptr<BlockStore> disk_store = std::make_unique<MemBlockStore>();
  std::unique_ptr<BlockStore> nvram_store = std::make_unique<MemBlockStore>();
  std::unique_ptr<BlockStore> jukebox_store = std::make_unique<MemBlockStore>();
};

struct DatabaseOptions {
  size_t buffers = kDefaultBuffers;  // 64 as shipped; Berkeley ran 300
  // Buffer-pool mapping shards. 0 = default (kDefaultPoolPartitions); 1
  // degenerates to a single-lock pool (the POSTGRES 4.0.1 behavior, kept as
  // the contention baseline for bench_mt_scan).
  size_t buffer_partitions = 0;
  DiskParams disk{};
  JukeboxParams jukebox{};
  CpuParams cpu{};
  uint32_t disk_extent_pages = 64;  // FFS-like clustering granularity
  bool enable_nvram = true;
  bool enable_jukebox = true;
  // POSTGRES 4.0.1 forced modified index pages out eagerly; the paper blames
  // exactly this for file-creation throughput ("Btree writes are interleaved
  // with data file writes, penalizing Inversion by forcing the disk head to
  // move frequently"). Disable to measure what lazy index write-back buys
  // (ablation bench).
  bool write_through_indexes = true;
  // Transient-error retry and read-only degradation knobs, applied to every
  // device (the policy decorator is always stacked; with no faults armed its
  // cost is one relaxed load per I/O — bench_pr5 gates this).
  DeviceErrorPolicy error_policy{};
  // Optional fault injection: when set, every device is additionally wrapped
  // in a FaultDevice sharing this injector (stacking:
  // Policy(Instrumented(Fault(real))), so retries are visible to the
  // instrumentation). Caller-owned; must outlive the Database.
  FaultInjector* fault_injector = nullptr;
  // Capacities of the per-registry event and span rings (rounded up to a
  // power of two). Sizing is a retention/memory tradeoff only; recording
  // cost is capacity-independent.
  size_t trace_ring_capacity = TraceRing::kDefaultCapacity;
  size_t span_ring_capacity = SpanRing::kDefaultCapacity;
  // Declared latency objectives, evaluated against the op.latency_us
  // histograms (invfs_stats --slo, the invfs_slo relation).
  std::vector<SloTarget> slo_targets = DefaultSloTargets();
  // Time-series sampler knobs: minimum sim micros between samples, and how
  // many points (one per metric per sample) the ring retains. Applied at
  // Open; the sampler only runs when something calls
  // metrics().timeseries().Tick() — it has no thread of its own.
  uint64_t timeseries_interval_micros = 100'000;
  size_t timeseries_capacity = 4096;
};

class Database {
 public:
  // Opens (bootstrapping if empty) the database stored in `env`.
  static Result<std::unique_ptr<Database>> Open(StorageEnv* env,
                                                DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- transactions --------------------------------------------------------

  // Read-only begins are accepted even on a poisoned (fail-stop read-only)
  // database: they touch neither the commit log nor the lock manager.
  Result<TxnId> Begin(TxnMode mode = TxnMode::kReadWrite);
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);
  Snapshot SnapshotFor(TxnId txn) const { return txns_->SnapshotFor(txn); }
  Snapshot SnapshotAt(Timestamp t) const { return txns_->SnapshotAt(t); }
  // The pinned begin-time snapshot while `txn` has not written; the live
  // snapshot after its first write (or for unknown txns).
  Snapshot ReadSnapshot(TxnId txn) const { return txns_->ReadSnapshot(txn); }
  Timestamp Now() { return clock_->Now(); }

  // --- row operations with index maintenance -------------------------------

  Result<Tid> InsertRow(TxnId txn, TableInfo* table, const Row& row,
                        Oid row_oid = kInvalidOid);
  Status DeleteRow(TxnId txn, TableInfo* table, Tid tid);
  Result<Tid> ReplaceRow(TxnId txn, TableInfo* table, Tid old_tid, const Row& row,
                         Oid row_oid = kInvalidOid);

  // Two-phase locking entry point (released automatically at commit/abort).
  // Refused for read-only transactions: they read pinned snapshots and are
  // promised never to touch the lock manager. An exclusive acquisition marks
  // the transaction written (its reads switch to live snapshots).
  Status LockTable(TxnId txn, const TableInfo* table, LockMode mode);

  // Gate between lock-free index probes and the maintenance operations that
  // swap index structures in place (vacuum rebuild, table migration).
  ReaderGate& probe_gate() { return probe_gate_; }

  // --- administration -------------------------------------------------------

  // Flush all dirty pages and drop every cached page ("all caches were
  // flushed before each test").
  Status FlushCaches();

  // Simulate a hard crash: volatile state vanishes, stable storage stays.
  // The Database object is unusable afterwards; re-Open the StorageEnv.
  void Crash();

  // True once the commit log is poisoned (a flush failed permanently): the
  // database is fail-stop read-only — Begin() refuses new transactions with
  // kReadOnlyDevice while reads, snapshots, and time travel keep working.
  bool read_only() const;

  // --- components ------------------------------------------------------------

  Catalog& catalog() { return *catalog_; }
  CommitLog& commit_log() { return *log_; }
  BufferPool* buffers_ptr() { return buffers_.get(); }
  TxnManager& txns() { return *txns_; }
  BufferPool& buffers() { return *buffers_; }
  DeviceSwitch& devices() { return devices_; }
  LockManager& locks() { return locks_; }
  SimClock& clock() { return *clock_; }
  // Every component's counters/histograms/trace for this database. Queryable
  // through the `invfs_stats` / `invfs_trace` virtual relations.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const DatabaseOptions& options() const { return options_; }

 private:
  Database(StorageEnv* env, DatabaseOptions options);

  DatabaseOptions options_;
  SimClock* clock_;
  // Declared before every component that registers metrics into it.
  MetricsRegistry metrics_;
  DeviceSwitch devices_;
  LockManager locks_{&metrics_};
  std::unique_ptr<BufferPool> buffers_;
  std::unique_ptr<CommitLog> log_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<Catalog> catalog_;
  ReaderGate probe_gate_;
  bool crashed_ = false;
};

}  // namespace invfs
