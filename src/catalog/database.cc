#include "src/catalog/database.h"

#include "src/device/instrumented_device.h"
#include "src/fault/fault_device.h"

namespace invfs {

Database::Database(StorageEnv* env, DatabaseOptions options)
    : options_(options),
      clock_(&env->clock),
      metrics_(options_.trace_ring_capacity, options_.span_ring_capacity) {
  metrics_.ConfigureTimeseries(options_.timeseries_interval_micros,
                               options_.timeseries_capacity);
  // Every device goes through the switch stacked as
  // Policy(Instrumented(Fault(real))): the fault injector (when configured)
  // sits closest to the store so corruption lands in the raw image, the
  // instrumentation above it sees every physical attempt including retries,
  // and the error policy on top retries transients and trips read-only on
  // permanent write failures. Code needing the concrete device type
  // downcasts Underlying().
  auto wrap = [this, &options](std::unique_ptr<DeviceManager> dev)
      -> std::unique_ptr<DeviceManager> {
    if (options.fault_injector != nullptr) {
      dev = std::make_unique<FaultDevice>(std::move(dev), options.fault_injector);
    }
    auto instrumented =
        std::make_unique<InstrumentedDevice>(std::move(dev), clock_, &metrics_);
    return std::make_unique<ErrorPolicyDevice>(
        std::move(instrumented), clock_, options.error_policy, &metrics_);
  };
  devices_.Register(kDeviceMagneticDisk,
                    wrap(std::make_unique<MagneticDiskDevice>(
                        env->disk_store.get(), clock_, options.disk,
                        options.disk_extent_pages)));
  if (options.enable_nvram) {
    devices_.Register(kDeviceNvram,
                      wrap(std::make_unique<NvramDevice>(env->nvram_store.get())));
  }
  if (options.enable_jukebox) {
    devices_.Register(kDeviceJukebox,
                      wrap(std::make_unique<JukeboxDevice>(env->jukebox_store.get(),
                                                           clock_, options.jukebox,
                                                           options.disk)));
  }
  buffers_ = std::make_unique<BufferPool>(&devices_, options.buffers, clock_,
                                          options.cpu, options.buffer_partitions,
                                          &metrics_);
}

Result<std::unique_ptr<Database>> Database::Open(StorageEnv* env,
                                                 DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database(env, options));
  DeviceManager* disk = db->devices_.Get(kDeviceMagneticDisk);
  db->devices_.BindRelation(kCommitLogRelOid, kDeviceMagneticDisk);
  INV_ASSIGN_OR_RETURN(db->log_, CommitLog::Open(disk, &db->metrics_));
  db->txns_ = std::make_unique<TxnManager>(db->log_.get(), db->buffers_.get(),
                                           &db->locks_, db->clock_, &db->metrics_);
  db->catalog_ = std::make_unique<Catalog>(&db->devices_, db->buffers_.get(),
                                           db->txns_.get());
  if (Catalog::Exists(disk)) {
    INV_RETURN_IF_ERROR(db->catalog_->Load());
  } else {
    INV_RETURN_IF_ERROR(db->catalog_->Bootstrap());
  }
  return db;
}

Database::~Database() = default;

Result<TxnId> Database::Begin(TxnMode mode) {
  if (crashed_) {
    return Status::Internal("database has crashed");
  }
  if (mode == TxnMode::kReadWrite && log_->poisoned()) {
    // Fail-stop read-only: a permanently failed commit-log flush means no
    // future commit could be made durable, so refuse new transactions
    // cleanly up front instead of failing at commit time. Read-only begins
    // pass: they need no log record, so degraded devices keep serving reads.
    return Status::ReadOnlyDevice(
        "commit log is poisoned; database is fail-stop read-only");
  }
  return txns_->Begin(mode);
}

bool Database::read_only() const { return log_ != nullptr && log_->poisoned(); }

Status Database::Commit(TxnId txn) {
  INV_RETURN_IF_ERROR(txns_->Commit(txn));
  catalog_->OnCommit(txn);
  return Status::Ok();
}

Status Database::Abort(TxnId txn) {
  INV_RETURN_IF_ERROR(txns_->Abort(txn));
  catalog_->OnAbort(txn);
  return Status::Ok();
}

Result<Tid> Database::InsertRow(TxnId txn, TableInfo* table, const Row& row,
                                Oid row_oid) {
  INV_ASSIGN_OR_RETURN(Tid tid, table->heap->Insert(txn, row, row_oid));
  for (IndexInfo* idx : table->indexes) {
    std::vector<Value> key_vals;
    key_vals.reserve(idx->key_columns.size());
    for (size_t c : idx->key_columns) {
      key_vals.push_back(row[c]);
    }
    INV_ASSIGN_OR_RETURN(BtreeKey key, EncodeKey(key_vals));
    INV_RETURN_IF_ERROR(idx->btree->Insert(key, tid));
    txns_->NoteTouched(txn, idx->oid);
    if (options_.write_through_indexes) {
      INV_RETURN_IF_ERROR(buffers_->FlushRelation(idx->oid));
    }
  }
  return tid;
}

Status Database::DeleteRow(TxnId txn, TableInfo* table, Tid tid) {
  // Index entries are intentionally retained: old versions must stay
  // reachable for time travel; vacuum rebuilds indices after expunging.
  return table->heap->Delete(txn, tid);
}

Result<Tid> Database::ReplaceRow(TxnId txn, TableInfo* table, Tid old_tid,
                                 const Row& row, Oid row_oid) {
  INV_RETURN_IF_ERROR(DeleteRow(txn, table, old_tid));
  return InsertRow(txn, table, row, row_oid);
}

Status Database::LockTable(TxnId txn, const TableInfo* table, LockMode mode) {
  if (IsReadOnlyTxn(txn)) {
    // The read-only promise is structural: these transactions read pinned
    // snapshots and never enter the lock manager, so writers can never block
    // them — and an attempt to lock from one is a caller bug, not a wait.
    return Status::InvalidArgument("read-only txn " + std::to_string(txn) +
                                   " cannot take table locks");
  }
  Status s = locks_.Acquire(txn, table->oid, mode);
  if (s.IsDeadlock()) {
    // The victim must abort; surface the deadlock to the caller after
    // cleaning up so the lock graph unwedges immediately.
    (void)Abort(txn);
  }
  if (s.ok() && mode == LockMode::kExclusive) {
    // Write intent: from here on this transaction's reads must see current
    // state (its re-checks after locking rely on it), so drop the pin.
    txns_->MarkWritten(txn);
  }
  return s;
}

Status Database::FlushCaches() { return buffers_->FlushAndInvalidate(); }

void Database::Crash() {
  buffers_->DiscardAll();
  crashed_ = true;
}

}  // namespace invfs
