// System catalogs and the schema cache.
//
// Everything the database knows about itself is stored in ordinary heap
// relations, exactly as in POSTGRES: pg_class (relations), pg_attribute
// (columns), pg_type (types, including user-defined file types), pg_proc
// (registered functions) and pg_index (index definitions). Catalog rows carry
// the same MVCC header as user data, so DDL is transaction-protected: a
// crashed "create file" leaves no trace, and time travel sees old schemas.
//
// A write-through in-memory cache (name -> TableInfo with live Heap/BTree
// handles) serves current-state lookups; historical lookups scan pg_class
// under the historical snapshot.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/access/btree.h"
#include "src/access/heap.h"
#include "src/buffer/buffer_pool.h"
#include "src/device/device.h"
#include "src/txn/txn_manager.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

// Fixed catalog relation oids (never vacuumed away, always on the default
// magnetic-disk device).
inline constexpr Oid kPgClassOid = 10;
inline constexpr Oid kPgAttributeOid = 11;
inline constexpr Oid kPgTypeOid = 12;
inline constexpr Oid kPgProcOid = 13;
inline constexpr Oid kPgIndexOid = 14;
inline constexpr Oid kFirstUserOid = 100;

enum class RelKind : int32_t {
  kHeap = 0,
  kIndex = 1,
  kArchive = 2,  // vacuum's record archive for a heap
};

// Canonical schemas of the catalog relations. Exposed so offline tools
// (invfs_check) can decode catalog tuples without a live Catalog instance.
Schema PgClassSchema();
Schema PgAttributeSchema();
Schema PgTypeSchema();
Schema PgProcSchema();
Schema PgIndexSchema();

// Function language, per pg_proc.
enum class ProcLang : int32_t {
  kNative = 0,    // C++ callable registered in the FunctionRegistry
  kPostquel = 1,  // stored POSTQUEL expression over $1..$n
};

struct IndexInfo {
  Oid oid = kInvalidOid;
  Oid table = kInvalidOid;
  std::vector<size_t> key_columns;
  std::unique_ptr<BTree> btree;
};

struct TableInfo {
  Oid oid = kInvalidOid;
  std::string name;
  Schema schema;
  DeviceId device = kDeviceMagneticDisk;
  RelKind kind = RelKind::kHeap;
  std::unique_ptr<Heap> heap;
  std::vector<IndexInfo*> indexes;   // owned by Catalog::indexes_
  Oid archive_oid = kInvalidOid;     // archive relation, if vacuum created one
};

struct ProcInfo {
  Oid oid = kInvalidOid;
  std::string name;
  TypeId rettype = TypeId::kInt4;
  int32_t nargs = 0;
  ProcLang lang = ProcLang::kNative;
  std::string src;  // POSTQUEL body, or native symbol name
};

struct TypeInfo {
  Oid oid = kInvalidOid;
  std::string name;
};

class Catalog {
 public:
  Catalog(DeviceSwitch* devices, BufferPool* pool, TxnManager* txns);

  // Create the catalog relations and seed rows (fresh database), or load the
  // cache from existing catalog relations (reopen after shutdown or crash).
  Status Bootstrap();
  Status Load();
  static bool Exists(DeviceManager* default_device) {
    return default_device->RelationExists(kPgClassOid);
  }

  // --- DDL (transactional; cache cleaned up via OnAbort) ------------------

  Result<TableInfo*> CreateTable(TxnId txn, const std::string& name,
                                 const Schema& schema, DeviceId device);
  Status DropTable(TxnId txn, const std::string& name);
  Result<IndexInfo*> CreateIndex(TxnId txn, TableInfo* table,
                                 std::vector<size_t> key_columns);

  Result<Oid> DefineType(TxnId txn, const std::string& name);
  Result<Oid> DefineFunction(TxnId txn, const std::string& name, TypeId rettype,
                             int32_t nargs, ProcLang lang, const std::string& src);

  // Create an archive relation for `table` (vacuum). Named "a,<name>".
  Result<TableInfo*> CreateArchive(TxnId txn, TableInfo* table);

  // Rebind a table to a new device, moving its pages (file migration).
  // The caller must hold an exclusive table lock on `table`: the move
  // flushes then copies blocks and depends on no writer dirtying pages in
  // between. Lock-free snapshot readers are tolerated throughout (cached
  // frames stay valid across the rebind).
  Status MigrateTable(TxnId txn, TableInfo* table, DeviceId new_device);

  // --- lookups -------------------------------------------------------------

  Result<TableInfo*> GetTable(const std::string& name);
  Result<TableInfo*> GetTableByOid(Oid oid);
  // Historical resolution: name -> oid under `snap` via pg_class scan.
  Result<TableInfo*> GetTableAt(const std::string& name, const Snapshot& snap);
  Result<ProcInfo*> GetFunction(const std::string& name);
  Result<TypeInfo*> GetType(const std::string& name);
  Result<TypeInfo*> GetTypeByOid(Oid oid);
  std::vector<TableInfo*> AllTables();

  Oid AllocateOid();

  // Abort hook: undo cache effects of DDL performed by `txn`.
  void OnAbort(TxnId txn);
  // Commit hook: physically destroy relations dropped by `txn`.
  void OnCommit(TxnId txn);

  Heap* pg_class() { return pg_class_->heap.get(); }
  Heap* pg_attribute() { return pg_attribute_->heap.get(); }
  Heap* pg_proc() { return pg_proc_->heap.get(); }
  Heap* pg_type() { return pg_type_->heap.get(); }

  TxnManager* txns() { return txns_; }
  BufferPool* pool() { return pool_; }
  DeviceSwitch* devices() { return devices_; }

 private:
  // Insert the pg_class/pg_attribute rows describing `info`. The helpers run
  // under mu_ (they read and mutate the schema cache mid-DDL).
  Status InsertTableRows(TxnId txn, const TableInfo& info) REQUIRES(mu_);
  Result<TableInfo*> MakeCachedTable(Oid oid, const std::string& name, Schema schema,
                                     DeviceId device, RelKind kind) REQUIRES(mu_);
  Status PhysicallyCreate(Oid oid, DeviceId device) REQUIRES(mu_);
  void NoteCreated(TxnId txn, Oid oid) REQUIRES(mu_);

  DeviceSwitch* devices_;
  BufferPool* pool_;
  TxnManager* txns_;

  Mutex mu_;
  Oid next_oid_ GUARDED_BY(mu_) = kFirstUserOid;
  std::map<Oid, std::unique_ptr<TableInfo>> tables_ GUARDED_BY(mu_);
  std::map<std::string, Oid> table_names_ GUARDED_BY(mu_);
  std::map<Oid, std::unique_ptr<IndexInfo>> indexes_ GUARDED_BY(mu_);
  std::map<std::string, ProcInfo> procs_ GUARDED_BY(mu_);
  std::map<std::string, TypeInfo> types_ GUARDED_BY(mu_);
  std::map<TxnId, std::vector<Oid>> created_by_txn_ GUARDED_BY(mu_);
  std::map<TxnId, std::vector<Oid>> dropped_by_txn_ GUARDED_BY(mu_);

  TableInfo* pg_class_ = nullptr;
  TableInfo* pg_attribute_ = nullptr;
  TableInfo* pg_type_ = nullptr;
  TableInfo* pg_proc_ = nullptr;
  TableInfo* pg_index_ = nullptr;
};

}  // namespace invfs
