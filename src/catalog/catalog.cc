#include "src/catalog/catalog.h"

#include <algorithm>

namespace invfs {

Schema PgClassSchema() {
  return Schema{{"relname", TypeId::kText},
                {"relid", TypeId::kOid},
                {"reldevice", TypeId::kInt4},
                {"relkind", TypeId::kInt4}};
}

Schema PgAttributeSchema() {
  return Schema{{"attrelid", TypeId::kOid},
                {"attname", TypeId::kText},
                {"atttypid", TypeId::kInt4},
                {"attnum", TypeId::kInt4}};
}

Schema PgTypeSchema() {
  return Schema{{"typname", TypeId::kText}, {"typid", TypeId::kOid}};
}

Schema PgProcSchema() {
  return Schema{{"proname", TypeId::kText},   {"proid", TypeId::kOid},
                {"prorettype", TypeId::kInt4}, {"pronargs", TypeId::kInt4},
                {"prolang", TypeId::kInt4},    {"prosrc", TypeId::kText}};
}

Schema PgIndexSchema() {
  return Schema{{"indexrelid", TypeId::kOid},
                {"indrelid", TypeId::kOid},
                {"indkeys", TypeId::kText}};
}

namespace {

std::string EncodeKeyColumns(const std::vector<size_t>& cols) {
  std::string out;
  for (size_t c : cols) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(c);
  }
  return out;
}

std::vector<size_t> DecodeKeyColumns(const std::string& s) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      comma = s.size();
    }
    out.push_back(static_cast<size_t>(std::stoul(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

// Built-in type names registered in pg_type at bootstrap; user file types are
// appended after these.
constexpr TypeId kBuiltinTypes[] = {TypeId::kBool, TypeId::kInt4,  TypeId::kInt8,
                                    TypeId::kFloat8, TypeId::kText, TypeId::kBytea,
                                    TypeId::kOid,  TypeId::kTimestamp};

}  // namespace

Catalog::Catalog(DeviceSwitch* devices, BufferPool* pool, TxnManager* txns)
    : devices_(devices), pool_(pool), txns_(txns) {}

Status Catalog::PhysicallyCreate(Oid oid, DeviceId device) {
  DeviceManager* mgr = devices_->Get(device);
  if (mgr == nullptr) {
    return Status::InvalidArgument("no device " + std::to_string(device));
  }
  INV_RETURN_IF_ERROR(mgr->CreateRelation(oid));
  devices_->BindRelation(oid, device);
  return Status::Ok();
}

Result<TableInfo*> Catalog::MakeCachedTable(Oid oid, const std::string& name,
                                            Schema schema, DeviceId device,
                                            RelKind kind) {
  auto info = std::make_unique<TableInfo>();
  info->oid = oid;
  info->name = name;
  info->schema = std::move(schema);
  info->device = device;
  info->kind = kind;
  info->heap = std::make_unique<Heap>(oid, &info->schema, pool_, txns_);
  TableInfo* ptr = info.get();
  tables_[oid] = std::move(info);
  table_names_[name] = oid;
  return ptr;
}

Status Catalog::InsertTableRows(TxnId txn, const TableInfo& info) {
  Row class_row{Value::Text(info.name), Value::MakeOid(info.oid),
                Value::Int4(static_cast<int32_t>(info.device)),
                Value::Int4(static_cast<int32_t>(info.kind))};
  INV_RETURN_IF_ERROR(pg_class_->heap->Insert(txn, class_row, info.oid).status());
  for (size_t i = 0; i < info.schema.num_columns(); ++i) {
    const Column& col = info.schema.column(i);
    Row att_row{Value::MakeOid(info.oid), Value::Text(col.name),
                Value::Int4(static_cast<int32_t>(col.type)),
                Value::Int4(static_cast<int32_t>(i))};
    INV_RETURN_IF_ERROR(pg_attribute_->heap->Insert(txn, att_row).status());
  }
  return Status::Ok();
}

Status Catalog::Bootstrap() {
  MutexLock lock(mu_);
  // 1. Physically create the five catalog relations on the default device.
  struct Boot {
    Oid oid;
    const char* name;
    Schema schema;
  };
  const Boot boots[] = {
      {kPgClassOid, "pg_class", PgClassSchema()},
      {kPgAttributeOid, "pg_attribute", PgAttributeSchema()},
      {kPgTypeOid, "pg_type", PgTypeSchema()},
      {kPgProcOid, "pg_proc", PgProcSchema()},
      {kPgIndexOid, "pg_index", PgIndexSchema()},
  };
  for (const Boot& b : boots) {
    INV_RETURN_IF_ERROR(PhysicallyCreate(b.oid, kDeviceMagneticDisk));
    INV_ASSIGN_OR_RETURN(TableInfo * info,
                         MakeCachedTable(b.oid, b.name, b.schema,
                                         kDeviceMagneticDisk, RelKind::kHeap));
    (void)info;
  }
  pg_class_ = tables_[kPgClassOid].get();
  pg_attribute_ = tables_[kPgAttributeOid].get();
  pg_type_ = tables_[kPgTypeOid].get();
  pg_proc_ = tables_[kPgProcOid].get();
  pg_index_ = tables_[kPgIndexOid].get();

  // 2. Describe the catalogs in themselves, stamped by the always-committed
  //    bootstrap transaction.
  for (const Boot& b : boots) {
    INV_RETURN_IF_ERROR(InsertTableRows(kBootstrapTxn, *tables_[b.oid]));
  }

  // 3. Seed built-in types.
  for (TypeId t : kBuiltinTypes) {
    const std::string name(TypeName(t));
    Row row{Value::Text(name), Value::MakeOid(static_cast<Oid>(t))};
    INV_RETURN_IF_ERROR(pg_type_->heap->Insert(kBootstrapTxn, row).status());
    types_[name] = TypeInfo{static_cast<Oid>(t), name};
  }

  INV_RETURN_IF_ERROR(pool_->FlushAll());
  return Status::Ok();
}

Status Catalog::Load() {
  MutexLock lock(mu_);
  // Catalog relations have fixed oids and schemas: construct them directly,
  // then read everything else out of them.
  const std::pair<Oid, Schema> fixed[] = {
      {kPgClassOid, PgClassSchema()},
      {kPgAttributeOid, PgAttributeSchema()},
      {kPgTypeOid, PgTypeSchema()},
      {kPgProcOid, PgProcSchema()},
      {kPgIndexOid, PgIndexSchema()},
  };
  for (const auto& [oid, schema] : fixed) {
    devices_->BindRelation(oid, kDeviceMagneticDisk);
  }
  const Snapshot snap{kTimestampNow, kInvalidTxn, &txns_->log(), nullptr};

  // Bootstrap TableInfos for catalogs (names refined from pg_class rows).
  INV_ASSIGN_OR_RETURN(pg_class_, MakeCachedTable(kPgClassOid, "pg_class",
                                                  PgClassSchema(),
                                                  kDeviceMagneticDisk, RelKind::kHeap));
  INV_ASSIGN_OR_RETURN(
      pg_attribute_, MakeCachedTable(kPgAttributeOid, "pg_attribute",
                                     PgAttributeSchema(), kDeviceMagneticDisk,
                                     RelKind::kHeap));
  INV_ASSIGN_OR_RETURN(pg_type_,
                       MakeCachedTable(kPgTypeOid, "pg_type", PgTypeSchema(),
                                       kDeviceMagneticDisk, RelKind::kHeap));
  INV_ASSIGN_OR_RETURN(pg_proc_,
                       MakeCachedTable(kPgProcOid, "pg_proc", PgProcSchema(),
                                       kDeviceMagneticDisk, RelKind::kHeap));
  INV_ASSIGN_OR_RETURN(pg_index_,
                       MakeCachedTable(kPgIndexOid, "pg_index", PgIndexSchema(),
                                       kDeviceMagneticDisk, RelKind::kHeap));

  // Collect attribute rows grouped by relation.
  std::map<Oid, std::vector<std::pair<int32_t, Column>>> atts;
  {
    auto it = pg_attribute_->heap->Scan(snap);
    while (it.Next()) {
      const Row& r = it.row();
      atts[r[0].AsOid()].push_back(
          {r[3].AsInt4(), Column{r[1].AsText(), static_cast<TypeId>(r[2].AsInt4())}});
    }
    INV_RETURN_IF_ERROR(it.status());
  }

  Oid max_oid = kFirstUserOid - 1;
  struct PendingIndex {
    Oid index_oid;
    Oid table_oid;
  };
  std::vector<std::pair<Oid, Row>> class_rows;
  {
    auto it = pg_class_->heap->Scan(snap);
    while (it.Next()) {
      class_rows.emplace_back(it.meta().oid, it.row());
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  for (const auto& [row_oid, row] : class_rows) {
    const std::string name = row[0].AsText();
    const Oid oid = row[1].AsOid();
    const DeviceId device = static_cast<DeviceId>(row[2].AsInt4());
    const RelKind kind = static_cast<RelKind>(row[3].AsInt4());
    max_oid = std::max(max_oid, oid);
    devices_->BindRelation(oid, device);
    if (tables_.contains(oid)) {
      continue;  // catalogs, already cached
    }
    if (kind == RelKind::kIndex) {
      continue;  // handled via pg_index below
    }
    auto& att_list = atts[oid];
    std::sort(att_list.begin(), att_list.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Column> cols;
    cols.reserve(att_list.size());
    for (auto& [num, col] : att_list) {
      cols.push_back(col);
    }
    INV_RETURN_IF_ERROR(
        MakeCachedTable(oid, name, Schema(std::move(cols)), device, kind).status());
  }

  // Indexes.
  {
    auto it = pg_index_->heap->Scan(snap);
    while (it.Next()) {
      const Row& r = it.row();
      const Oid index_oid = r[0].AsOid();
      const Oid table_oid = r[1].AsOid();
      auto tit = tables_.find(table_oid);
      if (tit == tables_.end()) {
        continue;
      }
      auto info = std::make_unique<IndexInfo>();
      info->oid = index_oid;
      info->table = table_oid;
      info->key_columns = DecodeKeyColumns(r[2].AsText());
      INV_ASSIGN_OR_RETURN(info->btree, BTree::Open(index_oid, pool_));
      tit->second->indexes.push_back(info.get());
      max_oid = std::max(max_oid, index_oid);
      indexes_[index_oid] = std::move(info);
    }
    INV_RETURN_IF_ERROR(it.status());
  }

  // Archive links: archives are named "a,<base name>".
  for (auto& [oid, info] : tables_) {
    if (info->kind == RelKind::kArchive && info->name.rfind("a,", 0) == 0) {
      auto nit = table_names_.find(info->name.substr(2));
      if (nit != table_names_.end()) {
        tables_[nit->second]->archive_oid = oid;
      }
    }
  }

  // Types and procs.
  {
    auto it = pg_type_->heap->Scan(snap);
    while (it.Next()) {
      const Row& r = it.row();
      types_[r[0].AsText()] = TypeInfo{r[1].AsOid(), r[0].AsText()};
      max_oid = std::max(max_oid, r[1].AsOid());
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  {
    auto it = pg_proc_->heap->Scan(snap);
    while (it.Next()) {
      const Row& r = it.row();
      ProcInfo p;
      p.name = r[0].AsText();
      p.oid = r[1].AsOid();
      p.rettype = static_cast<TypeId>(r[2].AsInt4());
      p.nargs = r[3].AsInt4();
      p.lang = static_cast<ProcLang>(r[4].AsInt4());
      p.src = r[5].AsText();
      max_oid = std::max(max_oid, p.oid);
      procs_[p.name] = std::move(p);
    }
    INV_RETURN_IF_ERROR(it.status());
  }

  next_oid_ = max_oid + 1;
  return Status::Ok();
}

Oid Catalog::AllocateOid() {
  MutexLock lock(mu_);
  return next_oid_++;
}

void Catalog::NoteCreated(TxnId txn, Oid oid) {
  if (txns_->IsActive(txn)) {
    created_by_txn_[txn].push_back(oid);
  }
}

Result<TableInfo*> Catalog::CreateTable(TxnId txn, const std::string& name,
                                        const Schema& schema, DeviceId device) {
  MutexLock lock(mu_);
  if (table_names_.contains(name)) {
    return Status::AlreadyExists("table " + name);
  }
  const Oid oid = next_oid_++;
  INV_RETURN_IF_ERROR(PhysicallyCreate(oid, device));
  INV_ASSIGN_OR_RETURN(TableInfo * info,
                       MakeCachedTable(oid, name, schema, device, RelKind::kHeap));
  INV_RETURN_IF_ERROR(InsertTableRows(txn, *info));
  // Force policy: the new relation's pages (none yet, but any the txn dirties
  // before its first row insert) must be flushed before this txn's commit
  // record — its catalog rows commit in the same record, so a catalogued
  // relation whose storage never reached the device would otherwise be
  // reachable after recovery.
  txns_->NoteTouched(txn, oid);
  NoteCreated(txn, oid);
  return info;
}

Result<IndexInfo*> Catalog::CreateIndex(TxnId txn, TableInfo* table,
                                        std::vector<size_t> key_columns) {
  MutexLock lock(mu_);
  const Oid oid = next_oid_++;
  INV_RETURN_IF_ERROR(PhysicallyCreate(oid, table->device));
  auto info = std::make_unique<IndexInfo>();
  info->oid = oid;
  info->table = table->oid;
  info->key_columns = key_columns;
  INV_ASSIGN_OR_RETURN(info->btree, BTree::Create(oid, pool_));
  // BTree::Create just dirtied the meta and root pages through the buffer
  // pool. If this txn commits without a single index insert (an empty file's
  // chunk index, say), nothing else puts the relation in the commit's flush
  // set — and the commit record would then catalogue an index whose block 0
  // never reached the device, which BTree::Open rejects at recovery.
  txns_->NoteTouched(txn, oid);

  // pg_class row (so the relation is discoverable) + pg_index row.
  Row class_row{Value::Text(table->name + "_idx" + std::to_string(oid)),
                Value::MakeOid(oid), Value::Int4(static_cast<int32_t>(table->device)),
                Value::Int4(static_cast<int32_t>(RelKind::kIndex))};
  INV_RETURN_IF_ERROR(pg_class_->heap->Insert(txn, class_row, oid).status());
  Row index_row{Value::MakeOid(oid), Value::MakeOid(table->oid),
                Value::Text(EncodeKeyColumns(key_columns))};
  INV_RETURN_IF_ERROR(pg_index_->heap->Insert(txn, index_row).status());

  // Populate from existing visible rows.
  const Snapshot snap = txns_->SnapshotFor(txn);
  auto it = table->heap->Scan(snap);
  while (it.Next()) {
    std::vector<Value> key_vals;
    for (size_t c : key_columns) {
      key_vals.push_back(it.row()[c]);
    }
    INV_ASSIGN_OR_RETURN(BtreeKey key, EncodeKey(key_vals));
    INV_RETURN_IF_ERROR(info->btree->Insert(key, it.tid()));
  }
  INV_RETURN_IF_ERROR(it.status());

  IndexInfo* ptr = info.get();
  table->indexes.push_back(ptr);
  indexes_[oid] = std::move(info);
  NoteCreated(txn, oid);
  return ptr;
}

Status Catalog::DropTable(TxnId txn, const std::string& name) {
  MutexLock lock(mu_);
  auto nit = table_names_.find(name);
  if (nit == table_names_.end()) {
    return Status::NotFound("table " + name);
  }
  TableInfo* info = tables_[nit->second].get();
  const Snapshot snap = txns_->SnapshotFor(txn);

  // Delete catalog rows for the table, its attributes, and its indexes.
  std::vector<Oid> doomed{info->oid};
  for (IndexInfo* idx : info->indexes) {
    doomed.push_back(idx->oid);
  }
  if (info->archive_oid != kInvalidOid) {
    doomed.push_back(info->archive_oid);
  }
  {
    auto it = pg_class_->heap->Scan(snap);
    while (it.Next()) {
      if (std::find(doomed.begin(), doomed.end(), it.row()[1].AsOid()) != doomed.end()) {
        INV_RETURN_IF_ERROR(pg_class_->heap->Delete(txn, it.tid()));
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  {
    auto it = pg_attribute_->heap->Scan(snap);
    while (it.Next()) {
      if (std::find(doomed.begin(), doomed.end(), it.row()[0].AsOid()) != doomed.end()) {
        INV_RETURN_IF_ERROR(pg_attribute_->heap->Delete(txn, it.tid()));
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }
  {
    auto it = pg_index_->heap->Scan(snap);
    while (it.Next()) {
      if (std::find(doomed.begin(), doomed.end(), it.row()[0].AsOid()) != doomed.end()) {
        INV_RETURN_IF_ERROR(pg_index_->heap->Delete(txn, it.tid()));
      }
    }
    INV_RETURN_IF_ERROR(it.status());
  }

  // Physical destruction happens when the txn commits (OnCommit); until then
  // only the name mapping disappears. Historical snapshots lose access to the
  // file's data after the drop commits — the paper's vacuum/archive design
  // has the same property for dropped relations.
  table_names_.erase(nit);
  dropped_by_txn_[txn].push_back(info->oid);
  return Status::Ok();
}

void Catalog::OnCommit(TxnId txn) {
  MutexLock lock(mu_);
  created_by_txn_.erase(txn);
  auto dit = dropped_by_txn_.find(txn);
  if (dit != dropped_by_txn_.end()) {
    for (Oid oid : dit->second) {
      auto tit = tables_.find(oid);
      if (tit == tables_.end()) {
        continue;
      }
      TableInfo* info = tit->second.get();
      std::vector<Oid> victims{oid};
      for (IndexInfo* idx : info->indexes) {
        victims.push_back(idx->oid);
      }
      if (info->archive_oid != kInvalidOid) {
        victims.push_back(info->archive_oid);
      }
      for (Oid v : victims) {
        pool_->DiscardRelation(v);
        if (auto mgr = devices_->ManagerFor(v); mgr.ok()) {
          (void)(*mgr)->DropRelation(v);
        }
        devices_->UnbindRelation(v);
        indexes_.erase(v);
        auto vt = tables_.find(v);
        if (vt != tables_.end()) {
          table_names_.erase(vt->second->name);
          tables_.erase(vt);
        }
      }
    }
    dropped_by_txn_.erase(dit);
  }
}

void Catalog::OnAbort(TxnId txn) {
  MutexLock lock(mu_);
  // Undo drops: restore the name mappings.
  auto dit = dropped_by_txn_.find(txn);
  if (dit != dropped_by_txn_.end()) {
    for (Oid oid : dit->second) {
      auto tit = tables_.find(oid);
      if (tit != tables_.end()) {
        table_names_[tit->second->name] = oid;
      }
    }
    dropped_by_txn_.erase(dit);
  }
  // Undo creates: physically remove; the catalog rows die with the txn.
  auto cit = created_by_txn_.find(txn);
  if (cit != created_by_txn_.end()) {
    for (Oid oid : cit->second) {
      pool_->DiscardRelation(oid);
      if (auto mgr = devices_->ManagerFor(oid); mgr.ok()) {
        (void)(*mgr)->DropRelation(oid);
      }
      devices_->UnbindRelation(oid);
      auto iit = indexes_.find(oid);
      if (iit != indexes_.end()) {
        auto tit = tables_.find(iit->second->table);
        if (tit != tables_.end()) {
          auto& vec = tit->second->indexes;
          vec.erase(std::remove(vec.begin(), vec.end(), iit->second.get()), vec.end());
        }
        indexes_.erase(iit);
        continue;
      }
      auto tit = tables_.find(oid);
      if (tit != tables_.end()) {
        table_names_.erase(tit->second->name);
        tables_.erase(tit);
      }
    }
    created_by_txn_.erase(cit);
  }
}

Result<Oid> Catalog::DefineType(TxnId txn, const std::string& name) {
  MutexLock lock(mu_);
  if (types_.contains(name)) {
    return Status::AlreadyExists("type " + name);
  }
  const Oid oid = next_oid_++;
  Row row{Value::Text(name), Value::MakeOid(oid)};
  INV_RETURN_IF_ERROR(pg_type_->heap->Insert(txn, row, oid).status());
  types_[name] = TypeInfo{oid, name};
  return oid;
}

Result<Oid> Catalog::DefineFunction(TxnId txn, const std::string& name, TypeId rettype,
                                    int32_t nargs, ProcLang lang,
                                    const std::string& src) {
  MutexLock lock(mu_);
  if (procs_.contains(name)) {
    return Status::AlreadyExists("function " + name);
  }
  const Oid oid = next_oid_++;
  Row row{Value::Text(name),
          Value::MakeOid(oid),
          Value::Int4(static_cast<int32_t>(rettype)),
          Value::Int4(nargs),
          Value::Int4(static_cast<int32_t>(lang)),
          Value::Text(src)};
  INV_RETURN_IF_ERROR(pg_proc_->heap->Insert(txn, row, oid).status());
  procs_[name] = ProcInfo{oid, name, rettype, nargs, lang, src};
  return oid;
}

Result<TableInfo*> Catalog::CreateArchive(TxnId txn, TableInfo* table) {
  MutexLock lock(mu_);
  if (table->archive_oid != kInvalidOid) {
    return tables_[table->archive_oid].get();
  }
  const Oid oid = next_oid_++;
  const std::string name = "a," + table->name;
  // Archives default to the same device; sites with a jukebox would place
  // them there (see vacuum tests for that configuration).
  INV_RETURN_IF_ERROR(PhysicallyCreate(oid, table->device));
  INV_ASSIGN_OR_RETURN(TableInfo * info, MakeCachedTable(oid, name, table->schema,
                                                         table->device,
                                                         RelKind::kArchive));
  INV_RETURN_IF_ERROR(InsertTableRows(txn, *info));
  table->archive_oid = oid;
  NoteCreated(txn, oid);
  return info;
}

Status Catalog::MigrateTable(TxnId txn, TableInfo* table, DeviceId new_device) {
  MutexLock lock(mu_);
  if (table->device == new_device) {
    return Status::Ok();
  }
  DeviceManager* dst = devices_->Get(new_device);
  if (dst == nullptr) {
    return Status::InvalidArgument("no device " + std::to_string(new_device));
  }
  // Move the heap and every index, block by block, through the buffer pool's
  // backing stores (flush first so the stores are current).
  std::vector<Oid> victims{table->oid};
  for (IndexInfo* idx : table->indexes) {
    victims.push_back(idx->oid);
  }
  for (Oid oid : victims) {
    INV_RETURN_IF_ERROR(pool_->FlushRelation(oid));
    INV_ASSIGN_OR_RETURN(DeviceManager * src, devices_->ManagerFor(oid));
    INV_ASSIGN_OR_RETURN(uint32_t nblocks, src->NumBlocks(oid));
    INV_RETURN_IF_ERROR(dst->CreateRelation(oid));
    std::vector<std::byte> buf(kPageSize);
    for (uint32_t b = 0; b < nblocks; ++b) {
      INV_RETURN_IF_ERROR(src->ReadBlock(oid, b, buf));
      INV_RETURN_IF_ERROR(dst->WriteBlock(oid, b, buf));
    }
    // Cached frames are deliberately kept: after the flush above they are
    // clean and byte-identical to the copy just written, so they remain a
    // valid cache for the destination device. Dropping them instead would
    // require pins == 0, which lock-free snapshot readers (who may keep a
    // scan parked on a pinned page with no table lock) cannot guarantee.
    // The caller's exclusive table lock keeps writers from re-dirtying
    // frames between the flush and the rebind.
    INV_RETURN_IF_ERROR(src->DropRelation(oid));
    devices_->BindRelation(oid, new_device);
  }
  table->device = new_device;

  // Update the pg_class rows' reldevice.
  const Snapshot snap = txns_->SnapshotFor(txn);
  auto it = pg_class_->heap->Scan(snap);
  std::vector<std::pair<Tid, Row>> updates;
  while (it.Next()) {
    if (std::find(victims.begin(), victims.end(), it.row()[1].AsOid()) !=
        victims.end()) {
      Row updated = it.row();
      updated[2] = Value::Int4(static_cast<int32_t>(new_device));
      updates.emplace_back(it.tid(), std::move(updated));
    }
  }
  INV_RETURN_IF_ERROR(it.status());
  for (auto& [tid, row] : updates) {
    INV_RETURN_IF_ERROR(pg_class_->heap->Replace(txn, tid, row, row[1].AsOid()).status());
  }
  return Status::Ok();
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = table_names_.find(name);
  if (it == table_names_.end()) {
    return Status::NotFound("table " + name);
  }
  return tables_[it->second].get();
}

Result<TableInfo*> Catalog::GetTableByOid(Oid oid) {
  MutexLock lock(mu_);
  auto it = tables_.find(oid);
  if (it == tables_.end()) {
    return Status::NotFound("table oid " + std::to_string(oid));
  }
  return it->second.get();
}

Result<TableInfo*> Catalog::GetTableAt(const std::string& name, const Snapshot& snap) {
  if (!snap.is_historical()) {
    return GetTable(name);
  }
  // Resolve through pg_class as of the snapshot: renamed/dropped/recreated
  // tables resolve to whatever oid held the name then.
  Heap* pg_class_heap;
  {
    MutexLock lock(mu_);
    pg_class_heap = pg_class_->heap.get();
  }
  auto it = pg_class_heap->Scan(snap);
  while (it.Next()) {
    if (it.row()[0].AsText() == name) {
      return GetTableByOid(it.row()[1].AsOid());
    }
  }
  INV_RETURN_IF_ERROR(it.status());
  return Status::NotFound("table " + name + " did not exist at that time");
}

Result<ProcInfo*> Catalog::GetFunction(const std::string& name) {
  MutexLock lock(mu_);
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    return Status::NotFound("function " + name);
  }
  return &it->second;
}

Result<TypeInfo*> Catalog::GetType(const std::string& name) {
  MutexLock lock(mu_);
  auto it = types_.find(name);
  if (it == types_.end()) {
    return Status::NotFound("type " + name);
  }
  return &it->second;
}

Result<TypeInfo*> Catalog::GetTypeByOid(Oid oid) {
  MutexLock lock(mu_);
  for (auto& [name, info] : types_) {
    if (info.oid == oid) {
      return &info;
    }
  }
  return Status::NotFound("type oid " + std::to_string(oid));
}

std::vector<TableInfo*> Catalog::AllTables() {
  MutexLock lock(mu_);
  std::vector<TableInfo*> out;
  out.reserve(tables_.size());
  for (auto& [oid, info] : tables_) {
    out.push_back(info.get());
  }
  return out;
}

}  // namespace invfs
