#include "src/txn/commit_log.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>

#include "src/fault/crash_points.h"
#include "src/obs/span.h"
#include "src/util/bytes.h"

namespace invfs {

CommitLog::CommitLog(DeviceManager* device, MetricsRegistry* metrics)
    : device_(device) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  persist_requests_ = metrics->GetCounter("log.persist_requests");
  persist_batches_ = metrics->GetCounter("log.persist_batches");
  device_page_writes_ = metrics->GetCounter("log.device_page_writes");
  horizon_hits_ = metrics->GetCounter("log.horizon_hits");
  batch_transitions_ = metrics->GetHistogram("log.batch_transitions");
  flush_us_ = metrics->GetHistogram("log.flush_us");
}

Result<std::unique_ptr<CommitLog>> CommitLog::Open(DeviceManager* device,
                                                   MetricsRegistry* metrics) {
  auto log = std::unique_ptr<CommitLog>(new CommitLog(device, metrics));
  if (!device->RelationExists(kCommitLogRelOid)) {
    INV_RETURN_IF_ERROR(device->CreateRelation(kCommitLogRelOid));
  }
  // Open is single-threaded, but entries_ is guarded and a static member gets
  // no constructor exemption from the analysis, so hold mu_ for the setup.
  MutexLock lock(log->mu_);
  INV_RETURN_IF_ERROR(log->LoadFromDevice());
  // The bootstrap transaction is always committed at time zero.
  if (log->entries_.size() <= kBootstrapTxn) {
    log->entries_.resize(kBootstrapTxn + 1);
  }
  log->entries_[kBootstrapTxn] = Entry{TxnStatus::kCommitted, 0};
  return log;
}

Status CommitLog::LoadFromDevice() {
  INV_ASSIGN_OR_RETURN(uint32_t nblocks, device_->NumBlocks(kCommitLogRelOid));
  std::vector<std::byte> buf(kPageSize);
  // Log pages whose entries recovery rewrites; persisted below so the
  // converted aborts reach the raw image, not just memory.
  std::set<uint32_t> converted_blocks;
  for (uint32_t b = 0; b < nblocks; ++b) {
    INV_RETURN_IF_ERROR(device_->ReadBlock(kCommitLogRelOid, b, buf));
    if (b == 0) {
      // Entry 0 (xid 0 is invalid) holds the persisted xid horizon in its
      // timestamp field.
      xid_horizon_ = GetU64(buf.data() + 8);
    }
    for (uint32_t i = b == 0 ? 1 : 0; i < kEntriesPerPage; ++i) {
      const std::byte* p = buf.data() + i * kEntrySize;
      Entry e;
      e.status = static_cast<TxnStatus>(GetU32(p));
      e.commit_ts = GetU64(p + 8);
      const TxnId xid = b * kEntriesPerPage + i;
      if (e.status != TxnStatus::kUnused) {
        if (entries_.size() <= xid) {
          entries_.resize(xid + 1);
        }
        // Crash recovery: an in-progress entry means the writer died before
        // commit. It never happened.
        if (e.status == TxnStatus::kInProgress) {
          e.status = TxnStatus::kAborted;
          converted_blocks.insert(b);
        }
        entries_[xid] = e;
      }
    }
  }
  // Every xid at or below the horizon may have been handed out without a
  // persisted begin record (begin only waits on the device when it advances
  // the horizon). Whatever is still unused after a crash is burned: record it
  // aborted so the xid can never be reused and offline readers agree.
  if (xid_horizon_ > 0) {
    if (entries_.size() <= xid_horizon_) {
      entries_.resize(xid_horizon_ + 1);
    }
    for (TxnId x = kBootstrapTxn + 1; x <= xid_horizon_; ++x) {
      if (entries_[x].status == TxnStatus::kUnused) {
        entries_[x].status = TxnStatus::kAborted;
        converted_blocks.insert(static_cast<uint32_t>(x / kEntriesPerPage));
      }
    }
  }
  // Persist the conversions: without this, a second crash before the next
  // group flush would leave the entries in-progress (or unused) on disk
  // forever, and any offline reader of the raw image would disagree with us
  // about their fate.
  for (uint32_t b : converted_blocks) {
    INV_RETURN_IF_ERROR(WriteLogBlock(b, BuildPageImage(b)));
  }
  return Status::Ok();
}

std::vector<std::byte> CommitLog::BuildPageImage(uint32_t block) const {
  std::vector<std::byte> buf(kPageSize, std::byte{0});
  const TxnId first = block * kEntriesPerPage;
  for (uint32_t i = 0; i < kEntriesPerPage; ++i) {
    const TxnId x = first + i;
    std::byte* p = buf.data() + i * kEntrySize;
    if (x == 0) {
      // xid 0 is invalid; its entry carries the xid horizon instead.
      PutU64(p + 8, xid_horizon_);
    } else if (x < entries_.size()) {
      PutU32(p, static_cast<uint32_t>(entries_[x].status));
      PutU32(p + 4, 0);
      PutU64(p + 8, entries_[x].commit_ts);
    }
  }
  return buf;
}

Status CommitLog::WriteLogBlock(uint32_t block, const std::vector<std::byte>& image) {
  INV_ASSIGN_OR_RETURN(uint32_t nblocks, device_->NumBlocks(kCommitLogRelOid));
  if (block > nblocks) {
    // Zero-fill intermediate pages. They can hold no registered xid: every
    // xid's begin record is persisted before the xid becomes visible, which
    // extends the device past its page first.
    std::vector<std::byte> zero(kPageSize, std::byte{0});
    for (uint32_t b = nblocks; b < block; ++b) {
      INV_RETURN_IF_ERROR(device_->WriteBlock(kCommitLogRelOid, b, zero));
      device_page_writes_->Add();
    }
  }
  INV_RETURN_IF_ERROR(device_->WriteBlock(kCommitLogRelOid, block, image));
  device_page_writes_->Add();
  return Status::Ok();
}

uint64_t CommitLog::EnqueueTransition(TxnId xid) {
  persist_requests_->Add();
  dirty_blocks_.insert(xid / kEntriesPerPage);
  return ++enqueue_seq_;
}

Status CommitLog::WaitPersisted(uint64_t seq) {
  // One span per waiter: a transition that rides someone else's flush still
  // spent this wall time blocked on group commit, so the shared flush cost is
  // attributed to every member of the batch, not just the leader.
  ScopedSpan wait_span(&metrics_->spans(), "log.flush.wait", seq);
  while (sticky_error_.ok() && persisted_seq_ < seq) {
    if (flush_in_progress_) {
      flush_cv_.Wait(mu_);
      continue;
    }
    // Leader: snapshot page images for every queued page under mu_, then
    // write them with mu_ released so new transitions can keep enqueueing
    // (they form the next group).
    flush_in_progress_ = true;
    const uint64_t covers = enqueue_seq_;
    const uint64_t batch_size = covers - persisted_seq_;
    std::vector<uint32_t> blocks(dirty_blocks_.begin(), dirty_blocks_.end());
    dirty_blocks_.clear();
    std::vector<std::vector<std::byte>> images;
    images.reserve(blocks.size());
    for (uint32_t b : blocks) {
      images.push_back(BuildPageImage(b));
    }
    mu_.unlock();
    // The leader's device-write scope; ends before mu_ is retaken so the span
    // measures I/O, not lock handoff.
    std::optional<ScopedSpan> flush_span;
    flush_span.emplace(&metrics_->spans(), "log.flush", batch_size,
                       blocks.size());
    CrashPointRegistry::Hit("commitlog.pre_flush");
    const auto flush_start = std::chrono::steady_clock::now();
    Status s = Status::Ok();
    // A transient device hiccup must not poison the log: page writes are
    // idempotent images, so the whole batch is simply retried from the top.
    // (With the ErrorPolicyDevice stacked below, transients are normally
    // retried there and never reach this loop; this guards logs opened on a
    // bare device.)
    for (int attempt = 0; attempt < 3; ++attempt) {
      s = Status::Ok();
      for (size_t i = 0; i < blocks.size() && s.ok(); ++i) {
        if (i > 0) {
          CrashPointRegistry::Hit("commitlog.mid_batch");
        }
        s = WriteLogBlock(blocks[i], images[i]);
      }
      if (!s.IsTransientIo()) {
        break;
      }
    }
    if (s.ok()) {
      CrashPointRegistry::Hit("commitlog.post_flush");
    }
    flush_us_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - flush_start)
            .count()));
    batch_transitions_->Observe(batch_size);
    metrics_->trace().Record(TraceEvent::kGroupCommitFlush, batch_size,
                             blocks.size(), s.ok() ? 1 : 0);
    flush_span.reset();
    mu_.lock();
    persist_batches_->Add();
    if (s.ok()) {
      // Only a successful flush makes the covered transitions durable (and
      // therefore visible: see VisibleStatus). On failure persisted_seq_
      // stays put and the sticky error poisons the log, so an unflushed
      // commit can never be observed by readers.
      persisted_seq_ = std::max(persisted_seq_, covers);
    } else if (sticky_error_.ok()) {
      sticky_error_ = s;
      metrics_->trace().Record(TraceEvent::kLogPoisoned,
                               static_cast<uint64_t>(s.code()));
    }
    flush_in_progress_ = false;
    flush_cv_.NotifyAll();
  }
  return FailStopLocked();
}

Status CommitLog::FailStopLocked() const {
  if (sticky_error_.ok()) {
    return Status::Ok();
  }
  return Status::ReadOnlyDevice(
      "commit log poisoned; database is fail-stop read-only (cause: " +
      sticky_error_.ToString() + ")");
}

bool CommitLog::poisoned() const {
  MutexLock lock(mu_);
  return !sticky_error_.ok();
}

TxnStatus CommitLog::VisibleStatus(const Entry& e) const {
  // A committed entry whose covering group flush has not landed must read as
  // still in progress: a crash before the flush recovers it as aborted, and
  // snapshot visibility (StatusOf / CommittedBefore) must never show a
  // commit that recovery could take back.
  if (e.status == TxnStatus::kCommitted && e.durable_seq > persisted_seq_) {
    return TxnStatus::kInProgress;
  }
  return e.status;
}

Status CommitLog::BeginTxn(TxnId xid) {
  MutexLock lock(mu_);
  if (entries_.size() <= xid) {
    entries_.resize(xid + 1);
  }
  if (entries_[xid].status != TxnStatus::kUnused) {
    return Status::Internal("xid " + std::to_string(xid) + " reused");
  }
  entries_[xid].status = TxnStatus::kInProgress;
  unresolved_.insert(xid);
  dirty_blocks_.insert(static_cast<uint32_t>(xid / kEntriesPerPage));
  // The begin record exists to prevent xid reuse after a crash. Persisting
  // one per begin would cost a device write per transaction, so begins are
  // covered in batches by the xid horizon: while xid <= horizon, recovery
  // already knows to burn the xid (unused-below-horizon reads as aborted) and
  // the in-progress entry can ride out with the next group flush. Only a
  // begin that crosses the horizon advances it — one device wait per
  // kXidHorizonBatch transactions.
  if (xid <= xid_horizon_) {
    horizon_hits_->Add();
    return FailStopLocked();
  }
  xid_horizon_ = xid + kXidHorizonBatch;
  dirty_blocks_.insert(0);  // the horizon record lives in log page 0
  return WaitPersisted(EnqueueTransition(xid));
}

Status CommitLog::CommitTxn(TxnId xid, Timestamp commit_ts) {
  MutexLock lock(mu_);
  if (xid >= entries_.size() || entries_[xid].status != TxnStatus::kInProgress) {
    return Status::Internal("commit of unknown xid " + std::to_string(xid));
  }
  const uint64_t seq = EnqueueTransition(xid);
  // durable_seq hides the commit from readers until the covering flush lands
  // (the leader may release mu_ mid-flush, so entries_ is observable before
  // the device write completes).
  entries_[xid] = Entry{TxnStatus::kCommitted, commit_ts, seq};
  const Status s = WaitPersisted(seq);
  if (s.ok()) {
    // The covering flush landed: the commit is durable and can never again
    // read as in-progress, so snapshot capture need not track the xid.
    unresolved_.erase(xid);
  }
  return s;
}

Status CommitLog::CommitTxnReadOnly(TxnId xid, Timestamp commit_ts) {
  MutexLock lock(mu_);
  if (xid >= entries_.size() || entries_[xid].status != TxnStatus::kInProgress) {
    return Status::Internal("commit of unknown xid " + std::to_string(xid));
  }
  // durable_seq 0 makes the commit visible immediately: there is nothing a
  // crash could take back, because no tuple bears this xid (recovery simply
  // burns it as aborted, which nothing observes). Deliberately no
  // FailStopLocked check — read-only commits must keep succeeding after the
  // log has poisoned, or in-flight readers would fail on a degraded device.
  entries_[xid] = Entry{TxnStatus::kCommitted, commit_ts, 0};
  unresolved_.erase(xid);
  dirty_blocks_.insert(xid / kEntriesPerPage);
  return Status::Ok();
}

Status CommitLog::AbortTxn(TxnId xid) {
  MutexLock lock(mu_);
  if (xid >= entries_.size() || entries_[xid].status != TxnStatus::kInProgress) {
    return Status::Internal("abort of unknown xid " + std::to_string(xid));
  }
  entries_[xid].status = TxnStatus::kAborted;
  // Aborted xids leave the unresolved set even though the abort record is
  // not yet durable: an aborted entry can never become visible, so excluding
  // it from captured snapshots is always correct (in-view + never-committed
  // still reads as invisible).
  unresolved_.erase(xid);
  // No waiting: the abort rides out with the next group flush, and an
  // unpersisted abort reads back as in-progress, which recovery aborts.
  dirty_blocks_.insert(xid / kEntriesPerPage);
  return Status::Ok();
}

TxnStatus CommitLog::StatusOf(TxnId xid) const {
  MutexLock lock(mu_);
  if (xid >= entries_.size()) {
    return TxnStatus::kUnused;
  }
  return VisibleStatus(entries_[xid]);
}

Timestamp CommitLog::CommitTimeOf(TxnId xid) const {
  MutexLock lock(mu_);
  if (xid >= entries_.size() ||
      VisibleStatus(entries_[xid]) != TxnStatus::kCommitted) {
    return 0;
  }
  return entries_[xid].commit_ts;
}

bool CommitLog::CommittedBefore(TxnId xid, Timestamp as_of) const {
  MutexLock lock(mu_);
  if (xid >= entries_.size()) {
    return false;
  }
  const Entry& e = entries_[xid];
  return VisibleStatus(e) == TxnStatus::kCommitted && e.commit_ts <= as_of;
}

TxnId CommitLog::MaxTxnId() const {
  MutexLock lock(mu_);
  return entries_.empty() ? 0 : static_cast<TxnId>(entries_.size() - 1);
}

std::shared_ptr<const SnapshotState> CommitLog::CaptureState() {
  MutexLock lock(mu_);
  auto state = std::make_shared<SnapshotState>();
  state->xmax = static_cast<TxnId>(entries_.size());
  for (auto it = unresolved_.begin(); it != unresolved_.end();) {
    const TxnId xid = *it;
    if (xid < entries_.size() &&
        VisibleStatus(entries_[xid]) == TxnStatus::kInProgress) {
      state->xip.push_back(xid);  // set order: ascending, as InView expects
      ++it;
    } else {
      // Resolved without passing through an eager erase: prune here so the
      // set stays proportional to live transactions.
      it = unresolved_.erase(it);
    }
  }
  return state;
}

}  // namespace invfs
