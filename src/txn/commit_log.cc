#include "src/txn/commit_log.h"

#include <cstring>

#include "src/util/bytes.h"

namespace invfs {

Result<std::unique_ptr<CommitLog>> CommitLog::Open(DeviceManager* device) {
  auto log = std::unique_ptr<CommitLog>(new CommitLog(device));
  if (!device->RelationExists(kCommitLogRelOid)) {
    INV_RETURN_IF_ERROR(device->CreateRelation(kCommitLogRelOid));
  }
  INV_RETURN_IF_ERROR(log->LoadFromDevice());
  // The bootstrap transaction is always committed at time zero.
  if (log->entries_.size() <= kBootstrapTxn) {
    log->entries_.resize(kBootstrapTxn + 1);
  }
  log->entries_[kBootstrapTxn] = Entry{TxnStatus::kCommitted, 0};
  return log;
}

Status CommitLog::LoadFromDevice() {
  INV_ASSIGN_OR_RETURN(uint32_t nblocks, device_->NumBlocks(kCommitLogRelOid));
  std::vector<std::byte> buf(kPageSize);
  for (uint32_t b = 0; b < nblocks; ++b) {
    INV_RETURN_IF_ERROR(device_->ReadBlock(kCommitLogRelOid, b, buf));
    for (uint32_t i = 0; i < kEntriesPerPage; ++i) {
      const std::byte* p = buf.data() + i * kEntrySize;
      Entry e;
      e.status = static_cast<TxnStatus>(GetU32(p));
      e.commit_ts = GetU64(p + 8);
      const TxnId xid = b * kEntriesPerPage + i;
      if (e.status != TxnStatus::kUnused) {
        if (entries_.size() <= xid) {
          entries_.resize(xid + 1);
        }
        // Crash recovery: an in-progress entry means the writer died before
        // commit. It never happened.
        if (e.status == TxnStatus::kInProgress) {
          e.status = TxnStatus::kAborted;
        }
        entries_[xid] = e;
      }
    }
  }
  return Status::Ok();
}

Status CommitLog::BeginTxn(TxnId xid) {
  std::lock_guard lock(mu_);
  if (entries_.size() <= xid) {
    entries_.resize(xid + 1);
  }
  if (entries_[xid].status != TxnStatus::kUnused) {
    return Status::Internal("xid " + std::to_string(xid) + " reused");
  }
  entries_[xid].status = TxnStatus::kInProgress;
  // Persist the start record. This is what prevents xid reuse after a crash:
  // recovery turns surviving in-progress entries into aborts and the next
  // incarnation allocates past them.
  return PersistEntry(xid);
}

Status CommitLog::PersistEntry(TxnId xid) {
  // Read-modify-write the containing page directly on the device (the log is
  // not routed through the buffer pool: its durability is the commit point).
  const uint32_t block = xid / kEntriesPerPage;
  INV_ASSIGN_OR_RETURN(uint32_t nblocks, device_->NumBlocks(kCommitLogRelOid));
  std::vector<std::byte> buf(kPageSize, std::byte{0});
  // Extend with zero pages up to `block`.
  for (uint32_t b = nblocks; b <= block; ++b) {
    INV_RETURN_IF_ERROR(device_->WriteBlock(kCommitLogRelOid, b, buf));
  }
  INV_RETURN_IF_ERROR(device_->ReadBlock(kCommitLogRelOid, block, buf));
  const TxnId first = block * kEntriesPerPage;
  for (uint32_t i = 0; i < kEntriesPerPage; ++i) {
    const TxnId x = first + i;
    std::byte* p = buf.data() + i * kEntrySize;
    if (x < entries_.size()) {
      PutU32(p, static_cast<uint32_t>(entries_[x].status));
      PutU32(p + 4, 0);
      PutU64(p + 8, entries_[x].commit_ts);
    }
  }
  return device_->WriteBlock(kCommitLogRelOid, block, buf);
}

Status CommitLog::CommitTxn(TxnId xid, Timestamp commit_ts) {
  std::lock_guard lock(mu_);
  if (xid >= entries_.size() || entries_[xid].status != TxnStatus::kInProgress) {
    return Status::Internal("commit of unknown xid " + std::to_string(xid));
  }
  entries_[xid] = Entry{TxnStatus::kCommitted, commit_ts};
  return PersistEntry(xid);
}

Status CommitLog::AbortTxn(TxnId xid) {
  std::lock_guard lock(mu_);
  if (xid >= entries_.size() || entries_[xid].status != TxnStatus::kInProgress) {
    return Status::Internal("abort of unknown xid " + std::to_string(xid));
  }
  entries_[xid].status = TxnStatus::kAborted;
  return Status::Ok();
}

TxnStatus CommitLog::StatusOf(TxnId xid) const {
  std::lock_guard lock(mu_);
  if (xid >= entries_.size()) {
    return TxnStatus::kUnused;
  }
  return entries_[xid].status;
}

Timestamp CommitLog::CommitTimeOf(TxnId xid) const {
  std::lock_guard lock(mu_);
  if (xid >= entries_.size() || entries_[xid].status != TxnStatus::kCommitted) {
    return 0;
  }
  return entries_[xid].commit_ts;
}

bool CommitLog::CommittedBefore(TxnId xid, Timestamp as_of) const {
  std::lock_guard lock(mu_);
  if (xid >= entries_.size()) {
    return false;
  }
  const Entry& e = entries_[xid];
  return e.status == TxnStatus::kCommitted && e.commit_ts <= as_of;
}

TxnId CommitLog::MaxTxnId() const {
  std::lock_guard lock(mu_);
  return entries_.empty() ? 0 : static_cast<TxnId>(entries_.size() - 1);
}

}  // namespace invfs
