#include "src/txn/lock_manager.h"

namespace invfs {

bool LockManager::Compatible(const RelLock& state, TxnId txn, LockMode mode) {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) {
      continue;  // self-compatibility (including upgrade)
    }
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::WouldDeadlock(TxnId txn, Oid rel) const {
  // DFS over the waits-for graph starting from the holders that block `txn`.
  // Edge u -> v exists when u waits on a relation v holds.
  std::set<TxnId> visited;
  std::vector<TxnId> stack;
  auto it = locks_.find(rel);
  if (it == locks_.end()) {
    return false;
  }
  for (const auto& [holder, mode] : it->second.holders) {
    if (holder != txn) {
      stack.push_back(holder);
    }
  }
  while (!stack.empty()) {
    TxnId u = stack.back();
    stack.pop_back();
    if (u == txn) {
      return true;  // cycle back to the requester
    }
    if (!visited.insert(u).second) {
      continue;
    }
    auto wit = waiting_on_.find(u);
    if (wit == waiting_on_.end()) {
      continue;
    }
    auto lit = locks_.find(wit->second);
    if (lit == locks_.end()) {
      continue;
    }
    for (const auto& [holder, mode] : lit->second.holders) {
      if (holder != u) {
        stack.push_back(holder);
      }
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, Oid rel, LockMode mode) {
  std::unique_lock lock(mu_);
  RelLock& state = locks_[rel];
  // Already hold a sufficient lock?
  auto hit = state.holders.find(txn);
  if (hit != state.holders.end() &&
      (hit->second == LockMode::kExclusive || mode == LockMode::kShared)) {
    return Status::Ok();
  }
  while (!Compatible(state, txn, mode)) {
    if (WouldDeadlock(txn, rel)) {
      return Status::Deadlock("txn " + std::to_string(txn) + " would deadlock on rel " +
                              std::to_string(rel));
    }
    waiting_on_[txn] = rel;
    cv_.wait(lock);
    waiting_on_.erase(txn);
  }
  state.holders[txn] = mode;  // grants and upgrades
  return Status::Ok();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard lock(mu_);
  for (auto it = locks_.begin(); it != locks_.end();) {
    it->second.holders.erase(txn);
    if (it->second.holders.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  waiting_on_.erase(txn);
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, Oid rel, LockMode mode) const {
  std::lock_guard lock(mu_);
  auto it = locks_.find(rel);
  if (it == locks_.end()) {
    return false;
  }
  auto hit = it->second.holders.find(txn);
  if (hit == it->second.holders.end()) {
    return false;
  }
  return mode == LockMode::kShared || hit->second == LockMode::kExclusive;
}

size_t LockManager::NumLockedRelations() const {
  std::lock_guard lock(mu_);
  return locks_.size();
}

}  // namespace invfs
