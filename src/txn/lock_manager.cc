#include "src/txn/lock_manager.h"

#include <chrono>
#include <optional>

#include "src/buffer/buffer_pool.h"
#include "src/obs/span.h"

namespace invfs {

LockManager::LockManager(MetricsRegistry* metrics) {
#ifdef INVFS_DEBUG_INVARIANTS
  debug_invariants_ = true;
#endif
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  acquisitions_ = metrics->GetCounter("lock.acquisitions");
  waits_ = metrics->GetCounter("lock.waits");
  wait_us_ = metrics->GetHistogram("lock.wait_us");
}

void LockManager::set_debug_invariants(bool on) {
  MutexLock lock(mu_);
  debug_invariants_ = on;
  if (!on) {
    history_.clear();
    released_.clear();
    violations_.clear();
  }
}

bool LockManager::debug_invariants() const {
  MutexLock lock(mu_);
  return debug_invariants_;
}

std::vector<LockManager::Acquisition> LockManager::AcquisitionHistory(
    TxnId txn) const {
  MutexLock lock(mu_);
  auto it = history_.find(txn);
  return it == history_.end() ? std::vector<Acquisition>{} : it->second;
}

std::vector<std::string> LockManager::violations() const {
  MutexLock lock(mu_);
  return violations_;
}

void LockManager::ClearViolations() {
  MutexLock lock(mu_);
  violations_.clear();
}

void LockManager::RecordViolation(std::string what) {
  violations_.push_back(std::move(what));
}

std::string LockManager::DumpWaitsForLocked() const {
  std::string out;
  for (const auto& [txn, rel] : waiting_on_) {
    out += "txn " + std::to_string(txn) + " waits on rel " + std::to_string(rel) +
           " held by {";
    auto it = locks_.find(rel);
    bool first = true;
    if (it != locks_.end()) {
      for (const auto& [holder, mode] : it->second.holders) {
        if (holder == txn) {
          continue;
        }
        if (!first) {
          out += ", ";
        }
        first = false;
        out += std::to_string(holder) +
               (mode == LockMode::kExclusive ? ":X" : ":S");
      }
    }
    out += "}\n";
  }
  return out;
}

std::string LockManager::DumpWaitsFor() const {
  MutexLock lock(mu_);
  return DumpWaitsForLocked();
}

bool LockManager::Compatible(const RelLock& state, TxnId txn, LockMode mode) {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) {
      continue;  // self-compatibility (including upgrade)
    }
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::WouldDeadlock(TxnId txn, Oid rel) const {
  // DFS over the waits-for graph starting from the holders that block `txn`.
  // Edge u -> v exists when u waits on a relation v holds.
  std::set<TxnId> visited;
  std::vector<TxnId> stack;
  auto it = locks_.find(rel);
  if (it == locks_.end()) {
    return false;
  }
  for (const auto& [holder, mode] : it->second.holders) {
    if (holder != txn) {
      stack.push_back(holder);
    }
  }
  while (!stack.empty()) {
    TxnId u = stack.back();
    stack.pop_back();
    if (u == txn) {
      return true;  // cycle back to the requester
    }
    if (!visited.insert(u).second) {
      continue;
    }
    auto wit = waiting_on_.find(u);
    if (wit == waiting_on_.end()) {
      continue;
    }
    auto lit = locks_.find(wit->second);
    if (lit == locks_.end()) {
      continue;
    }
    for (const auto& [holder, mode] : lit->second.holders) {
      if (holder != u) {
        stack.push_back(holder);
      }
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, Oid rel, LockMode mode) {
  MutexLock lock(mu_);
  if (debug_invariants_ && released_.count(txn) != 0) {
    RecordViolation("2PL violation: txn " + std::to_string(txn) +
                    " acquires rel " + std::to_string(rel) +
                    " after entering its shrinking phase");
  }
  bool upgrade = false;
  {
    RelLock& state = locks_[rel];
    // Already hold a sufficient lock?
    auto hit = state.holders.find(txn);
    if (hit != state.holders.end() &&
        (hit->second == LockMode::kExclusive || mode == LockMode::kShared)) {
      return Status::Ok();
    }
    upgrade = hit != state.holders.end();
  }
  acquisitions_->Add();
  bool inversion_reported = false;
  bool waited = false;
  std::chrono::steady_clock::time_point wait_start;
  // Opened lazily on the first block; ends when Acquire returns (grant or
  // deadlock), which trails the last wakeup by only a map insert.
  std::optional<ScopedSpan> wait_span;
  // Note: the RelLock node must be re-fetched after every wait. A pure waiter
  // (no hold of its own on `rel`) sleeps while ReleaseAll may erase the node
  // once its last holder leaves; a reference held across the wait would
  // dangle and the grant below would write into a dead node — the lock would
  // appear granted but vanish from the table.
  while (!Compatible(locks_[rel], txn, mode)) {
    if (WouldDeadlock(txn, rel)) {
      return Status::Deadlock("txn " + std::to_string(txn) + " would deadlock on rel " +
                              std::to_string(rel));
    }
    if (debug_invariants_ && !inversion_reported &&
        BufferPool::ThreadPinCount() > 0) {
      // Blocking on a table lock while holding page pins can starve eviction
      // (pinned frames are unevictable) — a latch-before-lock inversion. The
      // granted/fast path is exempt: holding pins while *taking* a free lock
      // is harmless.
      RecordViolation("latch-lock inversion: txn " + std::to_string(txn) +
                      " blocks on rel " + std::to_string(rel) + " holding " +
                      std::to_string(BufferPool::ThreadPinCount()) +
                      " page pin(s)\nwaits-for at block time:\n" +
                      DumpWaitsForLocked());
      inversion_reported = true;
    }
    if (!waited) {
      waited = true;
      wait_start = std::chrono::steady_clock::now();
      waits_->Add();
      metrics_->trace().Record(TraceEvent::kLockWait, txn, rel,
                               mode == LockMode::kExclusive ? 1 : 0);
      wait_span.emplace(&metrics_->spans(), "lock.wait", txn, rel);
    }
    waiting_on_[txn] = rel;
    cv_.Wait(mu_);
    waiting_on_.erase(txn);
  }
  if (waited) {
    wait_us_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count()));
  }
  locks_[rel].holders[txn] = mode;  // grants and upgrades
  if (debug_invariants_) {
    history_[txn].push_back(Acquisition{next_seq_++, txn, rel, mode, upgrade});
  }
  return Status::Ok();
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock lock(mu_);
  bool held_any = false;
  for (auto it = locks_.begin(); it != locks_.end();) {
    held_any |= it->second.holders.erase(txn) != 0;
    if (it->second.holders.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  waiting_on_.erase(txn);
  if (debug_invariants_ && held_any) {
    released_.insert(txn);
    history_.erase(txn);
  }
  cv_.NotifyAll();
}

bool LockManager::Holds(TxnId txn, Oid rel, LockMode mode) const {
  MutexLock lock(mu_);
  auto it = locks_.find(rel);
  if (it == locks_.end()) {
    return false;
  }
  auto hit = it->second.holders.find(txn);
  if (hit == it->second.holders.end()) {
    return false;
  }
  return mode == LockMode::kShared || hit->second == LockMode::kExclusive;
}

size_t LockManager::NumLockedRelations() const {
  MutexLock lock(mu_);
  return locks_.size();
}

}  // namespace invfs
