// ReaderGate: a tiny shared/exclusive gate that protects in-memory index
// structures from the one maintenance operation that rebuilds them in place.
//
// Snapshot-isolation readers probe B-trees without holding any table lock,
// so vacuum's index rebuild (which drops the index relation and replaces the
// BTree object wholesale) can no longer rely on its exclusive table lock to
// exclude them. Readers enter the gate shared for the duration of a single
// probe; vacuum (and catalog table migration, which rebinds a relation's
// device underneath the pool) enters exclusive for the duration of the swap.
//
// This is NOT the lock manager: entries are instantaneous relative to
// transaction lifetimes (a probe, not a scan), there is no deadlock
// potential (shared holders never block on anything while inside, and
// exclusive holders take the gate strictly after every table lock they
// need), and no fairness machinery is warranted at this granularity.

#pragma once

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace invfs {

class ReaderGate {
 public:
  ReaderGate() = default;
  ReaderGate(const ReaderGate&) = delete;
  ReaderGate& operator=(const ReaderGate&) = delete;

  void EnterShared() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (exclusive_) {
      cv_.Wait(mu_);
    }
    ++readers_;
  }

  void ExitShared() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (--readers_ == 0) {
      cv_.NotifyAll();
    }
  }

  void EnterExclusive() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (exclusive_) {
      cv_.Wait(mu_);
    }
    exclusive_ = true;
    while (readers_ > 0) {
      cv_.Wait(mu_);
    }
  }

  void ExitExclusive() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    exclusive_ = false;
    cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int readers_ GUARDED_BY(mu_) = 0;
  bool exclusive_ GUARDED_BY(mu_) = false;
};

// RAII shared entry (one probe).
class SharedGateLock {
 public:
  explicit SharedGateLock(ReaderGate& gate) : gate_(gate) { gate_.EnterShared(); }
  ~SharedGateLock() { gate_.ExitShared(); }
  SharedGateLock(const SharedGateLock&) = delete;
  SharedGateLock& operator=(const SharedGateLock&) = delete;

 private:
  ReaderGate& gate_;
};

// RAII exclusive entry (one structure swap).
class ExclusiveGateLock {
 public:
  explicit ExclusiveGateLock(ReaderGate& gate) : gate_(gate) {
    gate_.EnterExclusive();
  }
  ~ExclusiveGateLock() { gate_.ExitExclusive(); }
  ExclusiveGateLock(const ExclusiveGateLock&) = delete;
  ExclusiveGateLock& operator=(const ExclusiveGateLock&) = delete;

 private:
  ReaderGate& gate_;
};

}  // namespace invfs
