// TxnManager: transaction lifecycle over the commit log, buffer pool force
// policy, and lock manager.
//
// Commit sequence (POSTGRES, no WAL):
//   1. force every dirty page of every relation the transaction touched to
//      its device (the no-overwrite manager's only durability requirement);
//   2. persist the commit-log entry with the commit timestamp.
// The commit-log write is the commit point: a crash before it leaves every
// tuple stamped with this xid invisible forever; a crash after it finds all
// the data already on stable storage.
//
// Neither POSTGRES 4.0.1 nor Inversion supports nested transactions, so one
// client has at most one transaction open at a time; the Inversion layer
// enforces that per-session rule.

#pragma once

#include <map>
#include <memory>
#include <set>

#include "src/buffer/buffer_pool.h"
#include "src/sim/sim_clock.h"
#include "src/txn/commit_log.h"
#include "src/txn/lock_manager.h"
#include "src/txn/snapshot.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

class TxnManager {
 public:
  // `metrics` receives txn.begins/commits/aborts; nullptr gives the manager
  // a private registry.
  TxnManager(CommitLog* log, BufferPool* buffers, LockManager* locks,
             SimClock* clock, MetricsRegistry* metrics = nullptr);

  Result<TxnId> Begin();
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);
  bool IsActive(TxnId txn) const;

  // Record that `txn` dirtied `rel`, so commit knows what to force.
  void NoteTouched(TxnId txn, Oid rel);

  // Current-state snapshot as seen by `txn` (includes its own writes).
  Snapshot SnapshotFor(TxnId txn) const;
  // Historical snapshot: the transaction-consistent state at time `t`.
  Snapshot SnapshotAt(Timestamp t) const;

  Timestamp Now() { return clock_->Now(); }

  LockManager& locks() { return *locks_; }
  CommitLog& log() { return *log_; }

 private:
  CommitLog* log_;
  BufferPool* buffers_;
  LockManager* locks_;
  SimClock* clock_;

  mutable Mutex mu_;
  TxnId next_xid_ GUARDED_BY(mu_);
  // txn -> touched relations
  std::map<TxnId, std::set<Oid>> active_ GUARDED_BY(mu_);

  // txn.* metrics.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* begins_ = nullptr;
  Counter* commits_ = nullptr;
  Counter* aborts_ = nullptr;
};

}  // namespace invfs
