// TxnManager: transaction lifecycle over the commit log, buffer pool force
// policy, and lock manager.
//
// Commit sequence (POSTGRES, no WAL):
//   1. force every dirty page of every relation the transaction touched to
//      its device (the no-overwrite manager's only durability requirement);
//   2. persist the commit-log entry with the commit timestamp.
// The commit-log write is the commit point: a crash before it leaves every
// tuple stamped with this xid invisible forever; a crash after it finds all
// the data already on stable storage.
//
// Transactions begin in one of two modes:
//   * kReadWrite — a real xid from the commit log, strict 2PL on every
//     relation it writes, and a snapshot-isolation view for any reads that
//     precede its first write (ReadSnapshot degrades to the live snapshot
//     once the transaction writes, because read-modify-write under an
//     exclusive lock must see current state).
//   * kReadOnly — a *virtual* xid (high bit set) that never enters the
//     commit log: no begin record, no commit record, no log I/O at all, so
//     pure readers keep working even on a poisoned log. The transaction is
//     pinned to the SnapshotState captured at begin and acquires no data
//     locks — writers never block it and it never blocks writers.
//
// Neither POSTGRES 4.0.1 nor Inversion supports nested transactions, so one
// client has at most one transaction open at a time; the Inversion layer
// enforces that per-session rule.

#pragma once

#include <map>
#include <memory>
#include <set>

#include "src/buffer/buffer_pool.h"
#include "src/sim/sim_clock.h"
#include "src/txn/commit_log.h"
#include "src/txn/lock_manager.h"
#include "src/txn/snapshot.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

enum class TxnMode {
  kReadWrite,
  kReadOnly,
};

// Virtual xids for read-only transactions live in the top half of the xid
// space; real xid allocation never gets near it (the commit log would be
// 32 TB of entries first). They stamp no tuples, so visibility code only
// ever sees them as a Snapshot's `self`, where StatusOf answers kUnused.
inline constexpr TxnId kReadOnlyXidBase = 0x80000000u;

inline bool IsReadOnlyTxn(TxnId xid) { return xid >= kReadOnlyXidBase; }

class TxnManager {
 public:
  // `metrics` receives txn.begins/commits/aborts; nullptr gives the manager
  // a private registry.
  TxnManager(CommitLog* log, BufferPool* buffers, LockManager* locks,
             SimClock* clock, MetricsRegistry* metrics = nullptr);

  Result<TxnId> Begin(TxnMode mode = TxnMode::kReadWrite);
  Status Commit(TxnId txn);
  Status Abort(TxnId txn);
  bool IsActive(TxnId txn) const;

  // Record that `txn` dirtied `rel`, so commit knows what to force. Also
  // marks the transaction written (see ReadSnapshot).
  void NoteTouched(TxnId txn, Oid rel);

  // The transaction has acquired write intent (its first exclusive lock):
  // from here on its reads must observe current state, not the begin-time
  // pin, or its read-modify-write cycles would resurrect overwritten data.
  void MarkWritten(TxnId txn);

  // Current-state snapshot as seen by `txn` (includes its own writes). Live:
  // consults the commit log afresh on every check.
  Snapshot SnapshotFor(TxnId txn) const;
  // Historical snapshot: the transaction-consistent state at time `t`.
  // Pinned, so in-flight commits can't shift visibility mid-scan.
  Snapshot SnapshotAt(Timestamp t) const;
  // The snapshot `txn`'s *reads* should use: the begin-time pinned view
  // while the transaction has not written (always, for read-only mode), the
  // live SnapshotFor view after its first write.
  Snapshot ReadSnapshot(TxnId txn) const;

  // Lowest xid whose effects some active pinned snapshot might not see;
  // kInvalidTxn when no unwritten pinned transactions are active. Vacuum may
  // only reclaim a version whose deleter committed below this horizon —
  // anything at or above it may still be visible to a running reader.
  TxnId OldestActiveXmin() const;

  // Transactions currently open (read-write and read-only). The net-fault
  // oracle uses this as a quiescence check: after a session reset the server
  // must have aborted the orphaned transaction, not leaked it.
  size_t ActiveTxnCount() const;

  Timestamp Now() { return clock_->Now(); }

  LockManager& locks() { return *locks_; }
  CommitLog& log() { return *log_; }

 private:
  struct ActiveTxn {
    std::set<Oid> touched;  // relations dirtied (commit force set)
    std::shared_ptr<const SnapshotState> pinned;  // begin-time xid view
    bool written = false;
  };

  CommitLog* log_;
  BufferPool* buffers_;
  LockManager* locks_;
  SimClock* clock_;

  mutable Mutex mu_;
  TxnId next_xid_ GUARDED_BY(mu_);
  TxnId next_read_xid_ GUARDED_BY(mu_) = kReadOnlyXidBase + 1;
  std::map<TxnId, ActiveTxn> active_ GUARDED_BY(mu_);

  // txn.* metrics.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* begins_ = nullptr;
  Counter* ro_begins_ = nullptr;
  Counter* commits_ = nullptr;
  Counter* aborts_ = nullptr;
};

}  // namespace invfs
