#include "src/txn/txn_manager.h"

#include "src/obs/span.h"

namespace invfs {

TxnManager::TxnManager(CommitLog* log, BufferPool* buffers, LockManager* locks,
                       SimClock* clock, MetricsRegistry* metrics)
    : log_(log), buffers_(buffers), locks_(locks), clock_(clock) {
  next_xid_ = log_->MaxTxnId() + 1;
  if (next_xid_ <= kBootstrapTxn) {
    next_xid_ = kBootstrapTxn + 1;
  }
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  begins_ = metrics->GetCounter("txn.begins");
  commits_ = metrics->GetCounter("txn.commits");
  aborts_ = metrics->GetCounter("txn.aborts");
}

Result<TxnId> TxnManager::Begin() {
  ScopedSpan span(&metrics_->spans(), "txn.begin");
  TxnId xid;
  {
    MutexLock lock(mu_);
    xid = next_xid_++;
  }
  span.set_a(xid);
  // Persist the start record outside mu_: concurrent Begin calls must reach
  // the commit log together so its group-commit protocol can coalesce their
  // page writes into one flush. (A failed begin burns the xid; ids are not
  // reused by design.)
  INV_RETURN_IF_ERROR(log_->BeginTxn(xid));
  {
    MutexLock lock(mu_);
    active_[xid] = {};
  }
  begins_->Add();
  metrics_->trace().Record(TraceEvent::kTxnBegin, xid);
  return xid;
}

Status TxnManager::Commit(TxnId txn) {
  ScopedSpan span(&metrics_->spans(), "txn.commit", txn);
  std::set<Oid> touched;
  {
    MutexLock lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::TxnAborted("commit of inactive txn " + std::to_string(txn));
    }
    touched = it->second;
    active_.erase(it);
  }
  if (touched.empty()) {
    // Read-only transaction: no tuple bears this xid, so the commit decision
    // needs no durability. Skipping the forced log write keeps pure-read
    // workloads free of commit I/O, and keeps reads committing on a device
    // that permanent write errors have tripped read-only.
    INV_RETURN_IF_ERROR(log_->CommitTxnReadOnly(txn, clock_->Now()));
  } else {
    // Force policy: all data this transaction changed must be durable before
    // the commit record.
    for (Oid rel : touched) {
      INV_RETURN_IF_ERROR(buffers_->FlushRelation(rel));
    }
    INV_RETURN_IF_ERROR(log_->CommitTxn(txn, clock_->Now()));
  }
  locks_->ReleaseAll(txn);
  commits_->Add();
  metrics_->trace().Record(TraceEvent::kTxnCommit, txn, touched.size());
  return Status::Ok();
}

Status TxnManager::Abort(TxnId txn) {
  ScopedSpan span(&metrics_->spans(), "txn.abort", txn);
  {
    MutexLock lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::TxnAborted("abort of inactive txn " + std::to_string(txn));
    }
    active_.erase(it);
  }
  // Nothing to undo: tuples stamped with this xid are invisible to every
  // snapshot because the xid never commits. (Space is reclaimed by vacuum.)
  INV_RETURN_IF_ERROR(log_->AbortTxn(txn));
  locks_->ReleaseAll(txn);
  aborts_->Add();
  metrics_->trace().Record(TraceEvent::kTxnAbort, txn);
  return Status::Ok();
}

bool TxnManager::IsActive(TxnId txn) const {
  MutexLock lock(mu_);
  return active_.contains(txn);
}

void TxnManager::NoteTouched(TxnId txn, Oid rel) {
  MutexLock lock(mu_);
  auto it = active_.find(txn);
  if (it != active_.end()) {
    it->second.insert(rel);
  }
}

Snapshot TxnManager::SnapshotFor(TxnId txn) const {
  return Snapshot{kTimestampNow, txn, log_};
}

Snapshot TxnManager::SnapshotAt(Timestamp t) const {
  return Snapshot{t, kInvalidTxn, log_};
}

}  // namespace invfs
