#include "src/txn/txn_manager.h"

#include "src/obs/span.h"

namespace invfs {

TxnManager::TxnManager(CommitLog* log, BufferPool* buffers, LockManager* locks,
                       SimClock* clock, MetricsRegistry* metrics)
    : log_(log), buffers_(buffers), locks_(locks), clock_(clock) {
  next_xid_ = log_->MaxTxnId() + 1;
  if (next_xid_ <= kBootstrapTxn) {
    next_xid_ = kBootstrapTxn + 1;
  }
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  begins_ = metrics->GetCounter("txn.begins");
  ro_begins_ = metrics->GetCounter("txn.read_only_begins");
  commits_ = metrics->GetCounter("txn.commits");
  aborts_ = metrics->GetCounter("txn.aborts");
}

Result<TxnId> TxnManager::Begin(TxnMode mode) {
  ScopedSpan span(&metrics_->spans(), "txn.begin");
  if (mode == TxnMode::kReadOnly) {
    // Virtual xid: no commit-log record at all. The only cost of beginning a
    // reader is capturing the unresolved-xid set — no device I/O, no lock
    // manager state, and it works even after the log has poisoned.
    auto pinned = log_->CaptureState();
    TxnId xid;
    {
      MutexLock lock(mu_);
      xid = next_read_xid_++;
      active_[xid] = ActiveTxn{{}, std::move(pinned), false};
    }
    span.set_a(xid);
    ro_begins_->Add();
    metrics_->trace().Record(TraceEvent::kTxnBegin, xid);
    return xid;
  }
  TxnId xid;
  {
    MutexLock lock(mu_);
    xid = next_xid_++;
  }
  span.set_a(xid);
  // Persist the start record outside mu_: concurrent Begin calls must reach
  // the commit log together so its group-commit protocol can coalesce their
  // page writes into one flush. (A failed begin burns the xid; ids are not
  // reused by design.)
  INV_RETURN_IF_ERROR(log_->BeginTxn(xid));
  // Capture after BeginTxn so our own xid is inside the captured horizon
  // (it lands in xip, which is harmless: a snapshot's self-check precedes
  // the frozen-view check).
  auto pinned = log_->CaptureState();
  {
    MutexLock lock(mu_);
    active_[xid] = ActiveTxn{{}, std::move(pinned), false};
  }
  begins_->Add();
  metrics_->trace().Record(TraceEvent::kTxnBegin, xid);
  return xid;
}

Status TxnManager::Commit(TxnId txn) {
  ScopedSpan span(&metrics_->spans(), "txn.commit", txn);
  std::set<Oid> touched;
  {
    MutexLock lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::TxnAborted("commit of inactive txn " + std::to_string(txn));
    }
    touched = it->second.touched;
    active_.erase(it);
  }
  if (IsReadOnlyTxn(txn)) {
    // Nothing to decide: the xid stamped no tuples and has no log entry.
    // No ReleaseAll either — a read-only transaction never acquires locks
    // (Database::LockTable refuses it), so skipping the call keeps the lock
    // manager's per-txn bookkeeping for real writers only.
    if (!touched.empty()) {
      return Status::Internal("read-only txn " + std::to_string(txn) +
                              " dirtied " + std::to_string(touched.size()) +
                              " relations");
    }
    commits_->Add();
    metrics_->trace().Record(TraceEvent::kTxnCommit, txn, 0);
    return Status::Ok();
  }
  if (touched.empty()) {
    // Read-only transaction: no tuple bears this xid, so the commit decision
    // needs no durability. Skipping the forced log write keeps pure-read
    // workloads free of commit I/O, and keeps reads committing on a device
    // that permanent write errors have tripped read-only.
    INV_RETURN_IF_ERROR(log_->CommitTxnReadOnly(txn, clock_->Now()));
  } else {
    // Force policy: all data this transaction changed must be durable before
    // the commit record.
    for (Oid rel : touched) {
      INV_RETURN_IF_ERROR(buffers_->FlushRelation(rel));
    }
    INV_RETURN_IF_ERROR(log_->CommitTxn(txn, clock_->Now()));
  }
  locks_->ReleaseAll(txn);
  commits_->Add();
  metrics_->trace().Record(TraceEvent::kTxnCommit, txn, touched.size());
  return Status::Ok();
}

Status TxnManager::Abort(TxnId txn) {
  ScopedSpan span(&metrics_->spans(), "txn.abort", txn);
  {
    MutexLock lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::TxnAborted("abort of inactive txn " + std::to_string(txn));
    }
    active_.erase(it);
  }
  if (IsReadOnlyTxn(txn)) {
    aborts_->Add();
    metrics_->trace().Record(TraceEvent::kTxnAbort, txn);
    return Status::Ok();
  }
  // Nothing to undo: tuples stamped with this xid are invisible to every
  // snapshot because the xid never commits. (Space is reclaimed by vacuum.)
  INV_RETURN_IF_ERROR(log_->AbortTxn(txn));
  locks_->ReleaseAll(txn);
  aborts_->Add();
  metrics_->trace().Record(TraceEvent::kTxnAbort, txn);
  return Status::Ok();
}

bool TxnManager::IsActive(TxnId txn) const {
  MutexLock lock(mu_);
  return active_.contains(txn);
}

void TxnManager::NoteTouched(TxnId txn, Oid rel) {
  MutexLock lock(mu_);
  auto it = active_.find(txn);
  if (it != active_.end()) {
    it->second.touched.insert(rel);
    it->second.written = true;
  }
}

void TxnManager::MarkWritten(TxnId txn) {
  MutexLock lock(mu_);
  auto it = active_.find(txn);
  if (it != active_.end()) {
    it->second.written = true;
  }
}

Snapshot TxnManager::SnapshotFor(TxnId txn) const {
  return Snapshot{kTimestampNow, txn, log_};
}

Snapshot TxnManager::SnapshotAt(Timestamp t) const {
  // Pin historical reads too: without the frozen view, a transaction that
  // was in flight at the SnapshotAt call but commits with commit_ts <= t
  // mid-scan would flip from invisible to visible between two fetches of
  // the same historical scan.
  return Snapshot{t, kInvalidTxn, log_, log_->CaptureState()};
}

Snapshot TxnManager::ReadSnapshot(TxnId txn) const {
  {
    MutexLock lock(mu_);
    auto it = active_.find(txn);
    if (it != active_.end() && !it->second.written &&
        it->second.pinned != nullptr) {
      return Snapshot{kTimestampNow, txn, log_, it->second.pinned};
    }
  }
  return Snapshot{kTimestampNow, txn, log_};
}

TxnId TxnManager::OldestActiveXmin() const {
  MutexLock lock(mu_);
  TxnId oldest = kInvalidTxn;
  for (const auto& [xid, at] : active_) {
    // Written transactions read live state: committed deletions are already
    // invisible to them, so their pin no longer constrains vacuum.
    if (at.written || at.pinned == nullptr) {
      continue;
    }
    const TxnId h = at.pinned->HorizonXid();
    if (oldest == kInvalidTxn || h < oldest) {
      oldest = h;
    }
  }
  return oldest;
}

size_t TxnManager::ActiveTxnCount() const {
  MutexLock lock(mu_);
  return active_.size();
}

}  // namespace invfs
