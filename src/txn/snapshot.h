// Snapshot: a transaction-consistent view of the database, current or
// historical. This is the mechanism behind Inversion's fine-grained time
// travel: "users can 'change time' to any instant in history, and see the
// database exactly as they would have seen it then."

#pragma once

#include <memory>

#include "src/storage/common.h"
#include "src/storage/tuple.h"
#include "src/txn/commit_log.h"

namespace invfs {

struct Snapshot {
  // Point in time this snapshot observes. kTimestampNow means "latest
  // committed state plus my own uncommitted changes".
  Timestamp as_of = kTimestampNow;
  // The observing transaction; kInvalidTxn for pure historical reads.
  TxnId self = kInvalidTxn;
  const CommitLog* log = nullptr;
  // Frozen xid view captured at begin time. Null means a *live* snapshot:
  // every visibility check consults the commit log afresh, so commits landing
  // mid-scan become visible mid-scan — the behavior writers need for their
  // read-modify-write cycles under 2PL. Non-null pins the snapshot: an xid
  // unresolved at capture stays invisible forever, which is what lets readers
  // run without data locks while writers commit underneath them.
  std::shared_ptr<const SnapshotState> frozen;

  bool is_historical() const { return as_of != kTimestampNow; }
  bool is_pinned() const { return frozen != nullptr; }

  // Is `xid`'s effect (insert or delete) visible to this snapshot? The
  // observer's own uncommitted work is visible to itself; everything else
  // must have committed before as_of — and, when pinned, have been resolved
  // at capture time.
  bool XidVisible(TxnId xid) const {
    if (self != kInvalidTxn && xid == self && !is_historical()) {
      return true;
    }
    if (frozen != nullptr && !frozen->InView(xid)) {
      return false;
    }
    return log->CommittedBefore(xid, as_of);
  }

  // POSTGRES visibility: a tuple version is visible iff its inserter is
  // in-view (committed before as_of, or is the observer itself) and its
  // deleter is not.
  bool IsVisible(const TupleMeta& meta) const {
    if (!XidVisible(meta.xmin)) {
      return false;
    }
    if (meta.xmax == kInvalidTxn) {
      return true;
    }
    return !XidVisible(meta.xmax);
  }

  // True when the tuple version is dead to *every* present and future
  // current-time snapshot (deleter committed): vacuum's archiving criterion.
  // StatusOf reports through VisibleStatus, so a committed-but-not-yet-
  // durable deleter still reads kInProgress here and the version survives.
  // Note: pinned snapshots older than the deleter may still see the version;
  // vacuum additionally honors TxnManager::OldestActiveXmin before acting.
  bool IsDeadForever(const TupleMeta& meta) const {
    return meta.xmax != kInvalidTxn &&
           log->StatusOf(meta.xmax) == TxnStatus::kCommitted;
  }
};

}  // namespace invfs
