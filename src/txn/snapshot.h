// Snapshot: a transaction-consistent view of the database, current or
// historical. This is the mechanism behind Inversion's fine-grained time
// travel: "users can 'change time' to any instant in history, and see the
// database exactly as they would have seen it then."

#pragma once

#include "src/storage/common.h"
#include "src/storage/tuple.h"
#include "src/txn/commit_log.h"

namespace invfs {

struct Snapshot {
  // Point in time this snapshot observes. kTimestampNow means "latest
  // committed state plus my own uncommitted changes".
  Timestamp as_of = kTimestampNow;
  // The observing transaction; kInvalidTxn for pure historical reads.
  TxnId self = kInvalidTxn;
  const CommitLog* log = nullptr;

  bool is_historical() const { return as_of != kTimestampNow; }

  // POSTGRES visibility: a tuple version is visible iff its inserter is
  // in-view (committed before as_of, or is the observer itself) and its
  // deleter is not.
  bool IsVisible(const TupleMeta& meta) const {
    const bool inserted =
        (self != kInvalidTxn && meta.xmin == self && !is_historical()) ||
        log->CommittedBefore(meta.xmin, as_of);
    if (!inserted) {
      return false;
    }
    if (meta.xmax == kInvalidTxn) {
      return true;
    }
    const bool deleted =
        (self != kInvalidTxn && meta.xmax == self && !is_historical()) ||
        log->CommittedBefore(meta.xmax, as_of);
    return !deleted;
  }

  // True when the tuple version is dead to *every* present and future
  // current-time snapshot (deleter committed): vacuum's archiving criterion.
  bool IsDeadForever(const TupleMeta& meta) const {
    return meta.xmax != kInvalidTxn &&
           log->StatusOf(meta.xmax) == TxnStatus::kCommitted;
  }
};

}  // namespace invfs
