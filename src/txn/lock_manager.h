// Two-phase locking, table granularity, with deadlock detection.
//
// "a standard database two-phase locking protocol [GRAY76] allows concurrent
// access to files while preventing simultaneous changes from interfering."
// POSTGRES 4.0.1 locked at relation granularity; so do we. Locks are held to
// transaction end (strict 2PL) and released by TxnManager at commit/abort.
//
// Deadlocks are detected eagerly: before a transaction blocks, a waits-for
// graph reachability check runs; if waiting would close a cycle the requester
// gets ErrorCode::kDeadlock and is expected to abort.
//
// Debug-invariants mode (on by default when built with
// -DINVFS_DEBUG_INVARIANTS, togglable at runtime) records every acquisition
// in order and checks the locking discipline:
//   - strict 2PL: a transaction that has released (ReleaseAll) must not
//     acquire again under the same TxnId;
//   - latch/lock ordering: a thread must not *block* on a table lock while
//     holding buffer-pool page pins (the inversion that starves eviction).
// Violations are recorded, not fatal, so tests can assert on them; see
// violations() / DumpWaitsFor().

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/storage/common.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  // `metrics` receives lock.acquisitions / lock.waits / lock.wait_us;
  // nullptr gives the manager a private registry.
  explicit LockManager(MetricsRegistry* metrics = nullptr);

  // One recorded lock grant (or upgrade), in acquisition order.
  struct Acquisition {
    uint64_t seq = 0;
    TxnId txn = 0;
    Oid rel = kInvalidOid;
    LockMode mode = LockMode::kShared;
    bool upgrade = false;
  };

  // Blocks until granted. Re-entrant: a holder may re-acquire, and a shared
  // holder may upgrade to exclusive (waits for other holders to drain).
  Status Acquire(TxnId txn, Oid rel, LockMode mode);

  // Release every lock held by `txn` (end of transaction).
  void ReleaseAll(TxnId txn);

  // Introspection for tests.
  bool Holds(TxnId txn, Oid rel, LockMode mode) const;
  size_t NumLockedRelations() const;

  // --- Debug-invariants instrumentation ---------------------------------
  // Defaults to true when compiled with INVFS_DEBUG_INVARIANTS, else false.
  void set_debug_invariants(bool on);
  bool debug_invariants() const;

  // Grant history of `txn` since its first acquisition (empty when the mode
  // is off or the txn never locked anything).
  std::vector<Acquisition> AcquisitionHistory(TxnId txn) const;

  // Discipline violations recorded so far (strict-2PL breaches, latch-lock
  // inversions). Human-readable, one entry per incident.
  std::vector<std::string> violations() const;
  void ClearViolations();

  // Render the current waits-for graph: one "txn T waits on rel R held by
  // {...}" line per blocked transaction. Empty string when nothing waits.
  std::string DumpWaitsFor() const;

 private:
  struct RelLock {
    std::map<TxnId, LockMode> holders;
  };

  // True if `txn` may be granted `mode` on `state` right now.
  static bool Compatible(const RelLock& state, TxnId txn, LockMode mode);
  // True if a wait by `txn` on the current holders of `rel` would deadlock.
  bool WouldDeadlock(TxnId txn, Oid rel) const REQUIRES(mu_);
  void RecordViolation(std::string what) REQUIRES(mu_);
  std::string DumpWaitsForLocked() const REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::map<Oid, RelLock> locks_ GUARDED_BY(mu_);
  // txn -> relation it is currently waiting on (at most one).
  std::map<TxnId, Oid> waiting_on_ GUARDED_BY(mu_);

  // Debug-invariants state (all under mu_).
  bool debug_invariants_ GUARDED_BY(mu_) = false;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  std::map<TxnId, std::vector<Acquisition>> history_ GUARDED_BY(mu_);
  // Txns that have entered the shrinking phase (ReleaseAll ran). A later
  // Acquire under the same id is a strict-2PL violation.
  std::set<TxnId> released_ GUARDED_BY(mu_);
  std::vector<std::string> violations_ GUARDED_BY(mu_);

  // lock.* metrics.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* acquisitions_ = nullptr;
  Counter* waits_ = nullptr;       // acquisitions that blocked at least once
  Histogram* wait_us_ = nullptr;   // wall time blocked per waiting acquisition
};

}  // namespace invfs
