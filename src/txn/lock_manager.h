// Two-phase locking, table granularity, with deadlock detection.
//
// "a standard database two-phase locking protocol [GRAY76] allows concurrent
// access to files while preventing simultaneous changes from interfering."
// POSTGRES 4.0.1 locked at relation granularity; so do we. Locks are held to
// transaction end (strict 2PL) and released by TxnManager at commit/abort.
//
// Deadlocks are detected eagerly: before a transaction blocks, a waits-for
// graph reachability check runs; if waiting would close a cycle the requester
// gets ErrorCode::kDeadlock and is expected to abort.

#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "src/storage/common.h"
#include "src/util/status.h"

namespace invfs {

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  // Blocks until granted. Re-entrant: a holder may re-acquire, and a shared
  // holder may upgrade to exclusive (waits for other holders to drain).
  Status Acquire(TxnId txn, Oid rel, LockMode mode);

  // Release every lock held by `txn` (end of transaction).
  void ReleaseAll(TxnId txn);

  // Introspection for tests.
  bool Holds(TxnId txn, Oid rel, LockMode mode) const;
  size_t NumLockedRelations() const;

 private:
  struct RelLock {
    std::map<TxnId, LockMode> holders;
  };

  // True if `txn` may be granted `mode` on `state` right now.
  static bool Compatible(const RelLock& state, TxnId txn, LockMode mode);
  // True if a wait by `txn` on the current holders of `rel` would deadlock.
  bool WouldDeadlock(TxnId txn, Oid rel) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Oid, RelLock> locks_;
  // txn -> relation it is currently waiting on (at most one).
  std::map<TxnId, Oid> waiting_on_;
};

}  // namespace invfs
