// CommitLog: POSTGRES' transaction status file (the TIME relation).
//
// The no-overwrite storage manager needs exactly two facts about any
// transaction to decide tuple visibility: did it commit, and when. Both are
// recorded here, persisted to a reserved relation on the default device. At
// crash recovery there is *nothing to replay*: a transaction whose entry is
// not "committed" simply never happened, and every tuple it wrote is dead on
// arrival. This is the paper's "file system recovery is essentially
// instantaneous".
//
// On-disk layout: raw pages (no slotting) of 16-byte entries indexed by xid:
//   u32 status (0 unused / 1 in-progress / 2 committed / 3 aborted)
//   u32 reserved
//   u64 commit timestamp (valid when committed)

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/device/device.h"
#include "src/storage/common.h"
#include "src/util/status.h"

namespace invfs {

// Reserved relation oid for the commit log.
inline constexpr Oid kCommitLogRelOid = 2;

enum class TxnStatus : uint32_t {
  kUnused = 0,
  kInProgress = 1,
  kCommitted = 2,
  kAborted = 3,
};

class CommitLog {
 public:
  // Opens (or creates) the log on `device`. Existing entries are loaded; any
  // in-progress entries found at open are from a crashed process and are
  // marked aborted — that *is* the entire recovery procedure.
  static Result<std::unique_ptr<CommitLog>> Open(DeviceManager* device);

  // Register a new transaction id as in-progress and persist the start
  // record, so a crash can never lead to xid reuse (recovery reads surviving
  // in-progress entries as aborted and allocates past them).
  Status BeginTxn(TxnId xid);

  // Persist the commit decision (forces the containing log page to stable
  // storage before returning).
  Status CommitTxn(TxnId xid, Timestamp commit_ts);
  // Aborts are recorded in memory; persistence is optional because an
  // unpersisted abort reads as in-progress, which is equally invisible.
  Status AbortTxn(TxnId xid);

  TxnStatus StatusOf(TxnId xid) const;
  // Commit timestamp; 0 unless committed.
  Timestamp CommitTimeOf(TxnId xid) const;

  // True iff `xid` committed at or before `as_of`.
  bool CommittedBefore(TxnId xid, Timestamp as_of) const;

  // Highest xid ever registered (for xid allocation after reopen).
  TxnId MaxTxnId() const;

 private:
  explicit CommitLog(DeviceManager* device) : device_(device) {}

  struct Entry {
    TxnStatus status = TxnStatus::kUnused;
    Timestamp commit_ts = 0;
  };

  static constexpr uint32_t kEntrySize = 16;
  static constexpr uint32_t kEntriesPerPage = kPageSize / kEntrySize;

  Status LoadFromDevice();
  Status PersistEntry(TxnId xid);

  DeviceManager* device_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // indexed by xid
};

}  // namespace invfs
