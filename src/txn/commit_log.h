// CommitLog: POSTGRES' transaction status file (the TIME relation).
//
// The no-overwrite storage manager needs exactly two facts about any
// transaction to decide tuple visibility: did it commit, and when. Both are
// recorded here, persisted to a reserved relation on the default device. At
// crash recovery there is *nothing to replay*: a transaction whose entry is
// not "committed" simply never happened, and every tuple it wrote is dead on
// arrival. This is the paper's "file system recovery is essentially
// instantaneous".
//
// Persistence uses *group commit*: every status transition that must be
// durable (begin, commit) enqueues its containing log page and joins a flush
// group. The first thread to find no flush in progress becomes the leader,
// snapshots page images for every queued page and performs one device write
// per page; followers whose transition those images cover simply wait for
// the leader's flush to land. Under concurrent commit traffic this turns one
// read-modify-write + one device write *per transition* (the POSTGRES 4.0.1
// behavior Hellerstein calls out as the known bottleneck of the no-overwrite
// commit path) into one write per batch. Because the leader releases the log
// mutex during the device write, each committed entry carries the flush
// sequence that makes it durable, and readers (StatusOf, CommittedBefore,
// CommitTimeOf) report it as still in-progress until that flush lands —
// commit *visibility* always implies commit *durability*, exactly as when
// the mutex was held across the write. Aborts piggyback: they only dirty
// the page in memory and ride out with the next group flush, because an
// unpersisted abort reads back as in-progress, which recovery also treats as
// aborted. Begins batch through the *xid horizon*: entry 0 of the log holds a
// durable high-water mark; a begin below it needs no device wait because
// recovery burns every unused xid at or below the horizon as aborted, so the
// xid can never be reused even if its begin record dies with the process.
// Only one begin in kXidHorizonBatch advances (and persists) the horizon.
//
// On-disk layout: raw pages (no slotting) of 16-byte entries indexed by xid:
//   u32 status (0 unused / 1 in-progress / 2 committed / 3 aborted)
//   u32 reserved
//   u64 commit timestamp (valid when committed)

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/device/device.h"
#include "src/obs/metrics.h"
#include "src/storage/common.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

// Reserved relation oid for the commit log.
inline constexpr Oid kCommitLogRelOid = 2;

enum class TxnStatus : uint32_t {
  kUnused = 0,
  kInProgress = 1,
  kCommitted = 2,
  kAborted = 3,
};

// A frozen view of which transactions were unresolved at a single instant:
// the Postgres-style (xmax, xip) pair that makes a snapshot immune to
// commits landing mid-scan. An xid is *in view* when the capture had already
// decided its fate — everything at or past `xmax` had not begun, and
// everything in `xip` was still in flight (in-progress, or committed but not
// yet durable, which visibility must treat identically because a crash could
// still take the commit back). A snapshot that carries one of these never
// changes its mind about any xid, no matter what the live commit log does.
struct SnapshotState {
  TxnId xmax = 0;          // first xid beyond the captured log
  std::vector<TxnId> xip;  // unresolved xids < xmax, ascending

  bool InView(TxnId xid) const {
    return xid < xmax && !std::binary_search(xip.begin(), xip.end(), xid);
  }

  // Lowest xid whose commit a snapshot pinned on this state might not see.
  // Versions whose deleter committed below every active snapshot's horizon
  // are invisible to all of them: vacuum's reclamation criterion.
  TxnId HorizonXid() const { return xip.empty() ? xmax : xip.front(); }
};

class CommitLog {
 public:
  // Opens (or creates) the log on `device`. Existing entries are loaded; any
  // in-progress entries found at open are from a crashed process and are
  // marked aborted — that *is* the entire recovery procedure. The converted
  // entries are persisted immediately, so a second crash (or an offline
  // invfs_check run over the raw image) sees them as aborted too. `metrics`
  // receives the log.* counters/histograms; nullptr gives the log a private
  // registry.
  static Result<std::unique_ptr<CommitLog>> Open(DeviceManager* device,
                                                 MetricsRegistry* metrics = nullptr);

  // Register a new transaction id as in-progress. A crash can never lead to
  // xid reuse: either the begin record itself is persisted (when it advances
  // the xid horizon) or the previously persisted horizon covers the xid and
  // recovery burns it as aborted.
  Status BeginTxn(TxnId xid);

  // Persist the commit decision (forces the containing log page to stable
  // storage — possibly via another thread's group flush — before returning).
  Status CommitTxn(TxnId xid, Timestamp commit_ts);
  // Commit a transaction that stamped no tuples. Its status never gates any
  // snapshot, so the decision needs no durability: recorded in memory only,
  // queued to ride out with the next flush, no device wait. This is what
  // keeps pure-read transactions committing (with zero log I/O) on a device
  // that has tripped read-only — and even on a poisoned log.
  Status CommitTxnReadOnly(TxnId xid, Timestamp commit_ts);
  // Aborts are recorded in memory and queued for the next group flush;
  // waiting is unnecessary because an unpersisted abort reads as
  // in-progress, which is equally invisible.
  Status AbortTxn(TxnId xid);

  TxnStatus StatusOf(TxnId xid) const;
  // Commit timestamp; 0 unless committed.
  Timestamp CommitTimeOf(TxnId xid) const;

  // True iff `xid` committed at or before `as_of`.
  bool CommittedBefore(TxnId xid, Timestamp as_of) const;

  // Highest xid ever registered (for xid allocation after reopen).
  TxnId MaxTxnId() const;

  // Freeze the set of currently unresolved xids. Snapshots built on the
  // returned state keep one immutable answer for every xid's visibility even
  // as transactions commit underneath them. O(active transactions), not
  // O(log size): the unresolved set is maintained incrementally and pruned
  // lazily here.
  std::shared_ptr<const SnapshotState> CaptureState();

  // True once a group flush failed permanently. The log refuses durable
  // transitions from then on (fail-stop): callers see kReadOnlyDevice, and
  // Database surfaces the whole engine as read-only. Reads (StatusOf,
  // CommittedBefore, CommitTimeOf) keep working over what already persisted.
  bool poisoned() const;

  // --- group-commit telemetry ---------------------------------------------
  // Thin reads over the registry counters (log.persist_requests etc.).
  // Durable transitions requested (begin + commit calls).
  uint64_t persist_requests() const { return persist_requests_->Value(); }
  // Flush groups executed. With concurrency, batches < requests: that delta
  // is the device writes group commit saved.
  uint64_t persist_batches() const { return persist_batches_->Value(); }
  // Raw device page writes issued by the log (including zero-fill extension).
  uint64_t device_page_writes() const { return device_page_writes_->Value(); }
  // Begins whose xid the persisted horizon already covered (no device wait).
  uint64_t horizon_hits() const { return horizon_hits_->Value(); }

 private:
  CommitLog(DeviceManager* device, MetricsRegistry* metrics);

  struct Entry {
    TxnStatus status = TxnStatus::kUnused;
    Timestamp commit_ts = 0;
    // Flush sequence that makes a kCommitted entry durable; 0 means already
    // durable (bootstrap / loaded from the device). Readers must not see the
    // commit until persisted_seq_ reaches it — see VisibleStatus.
    uint64_t durable_seq = 0;
  };

  static constexpr uint32_t kEntrySize = 16;
  static constexpr uint32_t kEntriesPerPage = kPageSize / kEntrySize;
  // How far past the highest begun xid the persisted horizon runs. Crashing
  // burns at most this many unallocated xids (they recover as aborted).
  static constexpr TxnId kXidHorizonBatch = 1024;

  // Loads entries from the device and persists recovery conversions. Runs
  // under mu_ even though Open is single-threaded: Open is a static member,
  // so the analysis grants it no constructor exemption for guarded fields.
  Status LoadFromDevice() REQUIRES(mu_);
  // Serialize the in-memory entries of `block` into an 8 KB page.
  std::vector<std::byte> BuildPageImage(uint32_t block) const REQUIRES(mu_);
  // Write one log page, zero-extending the relation up to it. Called by the
  // flush leader outside mu_ (flush_in_progress_ keeps leaders exclusive);
  // LoadFromDevice calls it under mu_ before any concurrency exists.
  Status WriteLogBlock(uint32_t block, const std::vector<std::byte>& image);
  // Queue `xid`'s log page for the next group flush and return the flush
  // sequence that will cover this transition.
  uint64_t EnqueueTransition(TxnId xid) REQUIRES(mu_);
  // Join (or lead) group flushes until the transition with sequence `seq` is
  // durable (or the log is poisoned). Enters and leaves holding mu_; the
  // flush leader drops mu_ around its device writes (flush_in_progress_
  // keeps leaders exclusive while the mutex is down).
  Status WaitPersisted(uint64_t seq) REQUIRES(mu_);
  // Status as transaction-visibility readers may see it: a committed entry
  // whose covering flush has not landed reads as still in progress, because
  // a crash right now would recover it as aborted.
  TxnStatus VisibleStatus(const Entry& e) const REQUIRES(mu_);
  // Ok, or the clean fail-stop error once sticky_error_ poisoned the log.
  Status FailStopLocked() const REQUIRES(mu_);

  DeviceManager* device_;
  mutable Mutex mu_;
  CondVar flush_cv_;
  std::vector<Entry> entries_ GUARDED_BY(mu_);  // indexed by xid
  // Durable xid high-water mark (entry 0's timestamp field on disk). Begins
  // at or below it need no device wait; see BeginTxn.
  TxnId xid_horizon_ GUARDED_BY(mu_) = 0;

  // Xids whose VisibleStatus may still be kInProgress: inserted at BeginTxn,
  // erased when the transition resolves (commit flush landed, read-only
  // commit, abort) and pruned lazily by CaptureState. Keeps state capture
  // proportional to the number of live transactions.
  std::set<TxnId> unresolved_ GUARDED_BY(mu_);

  // Group-commit state.
  // Log pages awaiting flush.
  std::set<uint32_t> dirty_blocks_ GUARDED_BY(mu_);
  // Last persist request enqueued.
  uint64_t enqueue_seq_ GUARDED_BY(mu_) = 0;
  // All requests <= this are durable (advanced only on flush success).
  uint64_t persisted_seq_ GUARDED_BY(mu_) = 0;
  bool flush_in_progress_ GUARDED_BY(mu_) = false;
  // First flush failure; poisons the log.
  Status sticky_error_ GUARDED_BY(mu_) = Status::Ok();

  // log.* metrics (cached registry pointers; Counter increments are striped
  // relaxed atomics, safe under or outside mu_).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* persist_requests_ = nullptr;
  Counter* persist_batches_ = nullptr;
  Counter* device_page_writes_ = nullptr;
  Counter* horizon_hits_ = nullptr;
  Histogram* batch_transitions_ = nullptr;  // transitions covered per flush
  Histogram* flush_us_ = nullptr;           // leader device-write wall time
};

}  // namespace invfs
