// BlockStore: raw persistent storage of 8 KB blocks, keyed by
// (relation oid, block number). This is the layer *below* the device-manager
// switch: device managers add layout policy and simulated cost on top of it.
//
// Two implementations:
//  * MemBlockStore  — hermetic in-memory store used by tests and benchmarks.
//    "Stable storage" semantics still hold for crash simulation: anything
//    written here survives Database::Crash(), anything only in the buffer
//    pool does not.
//  * FileBlockStore — one file per relation under a directory, for examples
//    that persist across process runs.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/sim/cost_params.h"
#include "src/storage/common.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual Status Create(Oid rel) = 0;
  virtual Status Drop(Oid rel) = 0;
  virtual bool Exists(Oid rel) const = 0;
  virtual Result<uint32_t> NumBlocks(Oid rel) const = 0;
  // Read block `block` (must be < NumBlocks) into `out` (>= kPageSize bytes).
  virtual Status Read(Oid rel, uint32_t block, std::span<std::byte> out) = 0;
  // Write block `block`; block == NumBlocks extends the relation by one.
  virtual Status Write(Oid rel, uint32_t block, std::span<const std::byte> data) = 0;
  virtual std::vector<Oid> ListRelations() const = 0;
};

class MemBlockStore final : public BlockStore {
 public:
  Status Create(Oid rel) override;
  Status Drop(Oid rel) override;
  bool Exists(Oid rel) const override;
  Result<uint32_t> NumBlocks(Oid rel) const override;
  Status Read(Oid rel, uint32_t block, std::span<std::byte> out) override;
  Status Write(Oid rel, uint32_t block, std::span<const std::byte> data) override;
  std::vector<Oid> ListRelations() const override;

  // Fault injection: corrupt one byte of a stored block (media-failure tests
  // for the self-identifying block check).
  Status CorruptByte(Oid rel, uint32_t block, uint32_t offset);

  // Deep copy of the stored image. The torture driver snapshots the "disk"
  // at a simulated crash and reopens the copy, leaving the original frozen
  // for re-examination.
  std::unique_ptr<MemBlockStore> Clone() const;

 private:
  mutable Mutex mu_;
  std::map<Oid, std::vector<std::vector<std::byte>>> rels_ GUARDED_BY(mu_);
};

// One file per relation: <dir>/rel<oid>.blk.
class FileBlockStore final : public BlockStore {
 public:
  // Creates `dir` if needed. Existing relation files are picked up.
  static Result<std::unique_ptr<FileBlockStore>> Open(const std::string& dir);
  ~FileBlockStore() override;

  Status Create(Oid rel) override;
  Status Drop(Oid rel) override;
  bool Exists(Oid rel) const override;
  Result<uint32_t> NumBlocks(Oid rel) const override;
  Status Read(Oid rel, uint32_t block, std::span<std::byte> out) override;
  Status Write(Oid rel, uint32_t block, std::span<const std::byte> data) override;
  std::vector<Oid> ListRelations() const override;

 private:
  explicit FileBlockStore(std::string dir) : dir_(std::move(dir)) {}
  std::string PathFor(Oid rel) const;
  Result<int> FdFor(Oid rel, bool create) REQUIRES(mu_);

  std::string dir_;
  mutable Mutex mu_;
  std::map<Oid, int> fds_ GUARDED_BY(mu_);
};

}  // namespace invfs
