// InstrumentedDevice: a transparent DeviceManager decorator that publishes
// per-device I/O metrics.
//
// The switch registers the decorator in place of the real device; everything
// above the switch (buffer pool, commit log, catalogs) is unchanged — the
// same location transparency the bdevsw-style switch already provides is
// what makes the instrumentation free to slot in. Latencies are *simulated*
// time (SimClock::Peek deltas), so `device.read_us` for the jukebox shows
// platter-load spikes exactly as the cost model charges them, reproducibly.
//
// Code that needs the concrete device type must call Underlying() before
// downcasting (see DeviceManager::Underlying).

#pragma once

#include <memory>
#include <utility>

#include "src/device/device.h"
#include "src/obs/metrics.h"
#include "src/sim/sim_clock.h"
#include "src/storage/common.h"

namespace invfs {

class InstrumentedDevice final : public DeviceManager {
 public:
  // Wraps `inner`, publishing device.* metrics labeled with inner->name().
  InstrumentedDevice(std::unique_ptr<DeviceManager> inner, SimClock* clock,
                     MetricsRegistry* metrics)
      : inner_(std::move(inner)), clock_(clock) {
    const std::string_view label = inner_->name();
    reads_ = metrics->GetCounter("device.reads", label);
    writes_ = metrics->GetCounter("device.writes", label);
    read_bytes_ = metrics->GetCounter("device.read_bytes", label);
    write_bytes_ = metrics->GetCounter("device.write_bytes", label);
    read_us_ = metrics->GetHistogram("device.read_us", label);
    write_us_ = metrics->GetHistogram("device.write_us", label);
    spans_ = &metrics->spans();
    read_span_name_ =
        InternSpanName("device.read." + std::string(label));
    write_span_name_ =
        InternSpanName("device.write." + std::string(label));
  }

  std::string_view name() const override { return inner_->name(); }
  Status CreateRelation(Oid rel) override { return inner_->CreateRelation(rel); }
  Status DropRelation(Oid rel) override { return inner_->DropRelation(rel); }
  bool RelationExists(Oid rel) const override { return inner_->RelationExists(rel); }
  Result<uint32_t> NumBlocks(Oid rel) const override { return inner_->NumBlocks(rel); }

  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override {
    ScopedSpan span(spans_, read_span_name_, rel, block);
    const SimMicros start = clock_->Peek();
    Status s = inner_->ReadBlock(rel, block, out);
    reads_->Add();
    read_bytes_->Add(out.size());
    read_us_->Observe(clock_->Peek() - start);
    return s;
  }

  Status WriteBlock(Oid rel, uint32_t block,
                    std::span<const std::byte> data) override {
    ScopedSpan span(spans_, write_span_name_, rel, block);
    const SimMicros start = clock_->Peek();
    Status s = inner_->WriteBlock(rel, block, data);
    writes_->Add();
    write_bytes_->Add(data.size());
    write_us_->Observe(clock_->Peek() - start);
    return s;
  }

  Status Sync() override { return inner_->Sync(); }

  DeviceManager* Underlying() override { return inner_->Underlying(); }

 private:
  std::unique_ptr<DeviceManager> inner_;
  SimClock* clock_;
  Counter* reads_;
  Counter* writes_;
  Counter* read_bytes_;
  Counter* write_bytes_;
  Histogram* read_us_;
  Histogram* write_us_;
  SpanRing* spans_;
  const char* read_span_name_;
  const char* write_span_name_;
};

}  // namespace invfs
