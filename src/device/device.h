// The device-manager switch.
//
// POSTGRES 4.0.1 registers storage devices in a switch table modeled on the
// UNIX bdevsw: each device supplies a small set of interface routines, and all
// accesses above the switch are location-transparent. Inversion inherits this,
// which is how one file system spans magnetic disk, non-volatile RAM, and a
// 327 GB Sony WORM jukebox with a uniform namespace.
//
// Our switch registers DeviceManager implementations under small integer
// DeviceIds. A relation is bound to a device at creation (recorded in
// pg_class); the buffer manager resolves (relation -> device) through the
// switch for every I/O.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/device/block_store.h"
#include "src/sim/cost_params.h"
#include "src/storage/common.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace invfs {

using DeviceId = uint8_t;
inline constexpr DeviceId kDeviceMagneticDisk = 0;  // default; catalogs live here
inline constexpr DeviceId kDeviceNvram = 1;
inline constexpr DeviceId kDeviceJukebox = 2;
inline constexpr DeviceId kMaxDevices = 8;

// Interface routines a device supplies to the switch (create, drop, read,
// write, extend — the operations the paper lists for device managers).
class DeviceManager {
 public:
  virtual ~DeviceManager() = default;

  virtual std::string_view name() const = 0;

  virtual Status CreateRelation(Oid rel) = 0;
  virtual Status DropRelation(Oid rel) = 0;
  virtual bool RelationExists(Oid rel) const = 0;
  virtual Result<uint32_t> NumBlocks(Oid rel) const = 0;

  virtual Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) = 0;
  virtual Status WriteBlock(Oid rel, uint32_t block,
                            std::span<const std::byte> data) = 0;

  // Hook for devices with post-commit work (e.g. jukebox cache destage).
  virtual Status Sync() { return Status::Ok(); }

  // Unwraps instrumentation decorators (InstrumentedDevice). Callers that
  // need the concrete device type (e.g. JukeboxDevice's cache statistics)
  // must downcast Underlying(), never the switch entry itself.
  virtual DeviceManager* Underlying() { return this; }
};

// NVRAM device: battery-backed memory, no mechanical cost. The paper's
// POSTGRES supported raw non-volatile RAM as a first-class device.
class NvramDevice final : public DeviceManager {
 public:
  explicit NvramDevice(BlockStore* store) : store_(store) {}

  std::string_view name() const override { return "nvram"; }
  Status CreateRelation(Oid rel) override { return store_->Create(rel); }
  Status DropRelation(Oid rel) override { return store_->Drop(rel); }
  bool RelationExists(Oid rel) const override { return store_->Exists(rel); }
  Result<uint32_t> NumBlocks(Oid rel) const override { return store_->NumBlocks(rel); }
  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override {
    return store_->Read(rel, block, out);
  }
  Status WriteBlock(Oid rel, uint32_t block, std::span<const std::byte> data) override {
    return store_->Write(rel, block, data);
  }

 private:
  BlockStore* store_;
};

class DiskModel;

// Magnetic disk: cost-modelled seeks/rotation/transfer over a physical block
// address space. Relations are laid out in extents allocated from a global
// cursor, which approximates FFS cylinder-group clustering: blocks within an
// extent are contiguous; separate relations occupy separate regions, so
// interleaved access across relations pays seeks (the Figure 3 effect).
class MagneticDiskDevice final : public DeviceManager {
 public:
  MagneticDiskDevice(BlockStore* store, SimClock* clock, DiskParams params,
                     uint32_t extent_pages = 64);
  ~MagneticDiskDevice() override;

  std::string_view name() const override { return "magnetic"; }
  Status CreateRelation(Oid rel) override;
  Status DropRelation(Oid rel) override;
  bool RelationExists(Oid rel) const override { return store_->Exists(rel); }
  Result<uint32_t> NumBlocks(Oid rel) const override { return store_->NumBlocks(rel); }
  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override;
  Status WriteBlock(Oid rel, uint32_t block, std::span<const std::byte> data) override;

  DiskModel& disk_model();

 private:
  // Physical address of (rel, block); allocates a new extent when `block`
  // crosses the current allocation.
  uint64_t PhysicalAddress(Oid rel, uint32_t block) EXCLUDES(mu_);

  BlockStore* store_;
  std::unique_ptr<DiskModel> model_;
  uint32_t extent_pages_;
  Mutex mu_;
  // Global allocation cursor, in extents.
  uint64_t next_free_extent_ GUARDED_BY(mu_) = 0;
  // Per relation: physical extent bases in logical order.
  std::unordered_map<Oid, std::vector<uint64_t>> extents_ GUARDED_BY(mu_);
};

// Sony WORM optical jukebox with a magnetic staging cache.
//
// Cost structure per the paper: "extremely high setup costs (many seconds to
// load an optical platter) and relatively low transfer rates", mitigated by a
// tunable magnetic-disk cache (default 10 MB). Tables are allocated in
// extents of physically contiguous pages (default 16).
class JukeboxDevice final : public DeviceManager {
 public:
  JukeboxDevice(BlockStore* store, SimClock* clock, JukeboxParams params,
                DiskParams cache_disk_params);
  ~JukeboxDevice() override;

  std::string_view name() const override { return "sony_jukebox"; }
  Status CreateRelation(Oid rel) override;
  Status DropRelation(Oid rel) override;
  bool RelationExists(Oid rel) const override { return store_->Exists(rel); }
  Result<uint32_t> NumBlocks(Oid rel) const override { return store_->NumBlocks(rel); }
  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override;
  Status WriteBlock(Oid rel, uint32_t block, std::span<const std::byte> data) override;
  Status Sync() override;

  // Destage dirty blocks, then empty the magnetic staging cache entirely so
  // the next reads go to the platters (used by cold-read experiments).
  Status DropStagingCache();

  uint64_t platter_loads() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return platter_loads_;
  }
  uint64_t cache_hits() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cache_hits_;
  }
  uint64_t cache_misses() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cache_misses_;
  }
  uint64_t worm_remaps() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return worm_remaps_;
  }

 private:
  struct CacheKey {
    Oid rel;
    uint32_t block;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.rel) << 32) | k.block);
    }
  };

  uint64_t PhysicalAddress(Oid rel, uint32_t block) REQUIRES(mu_);
  void ChargeOpticalIo(uint64_t phys) REQUIRES(mu_);
  // Touch the staging cache; returns true on hit. On miss inserts and evicts.
  bool CacheTouch(const CacheKey& key, bool dirty) REQUIRES(mu_);

  BlockStore* store_;
  SimClock* clock_;
  JukeboxParams params_;
  std::unique_ptr<DiskModel> cache_disk_;  // cost model for the staging cache
  mutable Mutex mu_;

  uint64_t next_free_extent_ GUARDED_BY(mu_) = 0;
  std::unordered_map<Oid, std::vector<uint64_t>> extents_ GUARDED_BY(mu_);
  std::unordered_map<Oid, std::unordered_map<uint32_t, int>> rewrite_counts_
      GUARDED_BY(mu_);

  int64_t loaded_platter_ GUARDED_BY(mu_) = -1;
  uint64_t last_optical_phys_ GUARDED_BY(mu_) = 0;
  bool has_optical_position_ GUARDED_BY(mu_) = false;
  uint64_t platter_loads_ GUARDED_BY(mu_) = 0;
  uint64_t cache_hits_ GUARDED_BY(mu_) = 0;
  uint64_t cache_misses_ GUARDED_BY(mu_) = 0;
  uint64_t worm_remaps_ GUARDED_BY(mu_) = 0;

  // LRU staging cache: list front = most recent.
  std::vector<CacheKey> lru_ GUARDED_BY(mu_);  // linear maintenance is fine
  // Value: dirty.
  std::unordered_map<CacheKey, bool, CacheKeyHash> cached_ GUARDED_BY(mu_);
};

// The switch table itself.
class DeviceSwitch {
 public:
  DeviceSwitch() = default;

  // Register a device under `id`. Replaces any previous registration.
  void Register(DeviceId id, std::unique_ptr<DeviceManager> device);
  DeviceManager* Get(DeviceId id) const;
  bool Has(DeviceId id) const;

  // Relation -> device binding (mirrors pg_class.reldevice; rebuilt from the
  // catalog at reopen).
  void BindRelation(Oid rel, DeviceId id);
  void UnbindRelation(Oid rel);
  Result<DeviceId> DeviceFor(Oid rel) const;
  Result<DeviceManager*> ManagerFor(Oid rel) const;

  Status SyncAll();

 private:
  mutable Mutex mu_;
  std::array<std::unique_ptr<DeviceManager>, kMaxDevices> devices_ GUARDED_BY(mu_);
  std::unordered_map<Oid, DeviceId> bindings_ GUARDED_BY(mu_);
};

}  // namespace invfs
