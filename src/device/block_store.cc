#include "src/device/block_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace invfs {

namespace {
// strerror(3) formats into a static buffer shared by all threads; these
// helpers adapt whichever thread-safe strerror_r the platform provides (the
// GNU variant returns char*, the XSI variant returns int) via overload
// selection on the call's result type.
std::string ErrnoMessage(char* gnu_result, const char* /*buf*/) {
  return gnu_result;
}
std::string ErrnoMessage(int xsi_result, const char* buf) {
  return xsi_result == 0 ? std::string(buf) : std::string("unknown error");
}
std::string ErrnoString(int err) {
  char buf[128] = {};
  return ErrnoMessage(::strerror_r(err, buf, sizeof(buf)), buf);
}
}  // namespace

// ---------------------------------------------------------------- MemBlockStore

Status MemBlockStore::Create(Oid rel) {
  MutexLock lock(mu_);
  auto [it, inserted] = rels_.try_emplace(rel);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation " + std::to_string(rel));
  }
  return Status::Ok();
}

Status MemBlockStore::Drop(Oid rel) {
  MutexLock lock(mu_);
  if (rels_.erase(rel) == 0) {
    return Status::NotFound("relation " + std::to_string(rel));
  }
  return Status::Ok();
}

bool MemBlockStore::Exists(Oid rel) const {
  MutexLock lock(mu_);
  return rels_.contains(rel);
}

Result<uint32_t> MemBlockStore::NumBlocks(Oid rel) const {
  MutexLock lock(mu_);
  auto it = rels_.find(rel);
  if (it == rels_.end()) {
    return Status::NotFound("relation " + std::to_string(rel));
  }
  return static_cast<uint32_t>(it->second.size());
}

Status MemBlockStore::Read(Oid rel, uint32_t block, std::span<std::byte> out) {
  MutexLock lock(mu_);
  auto it = rels_.find(rel);
  if (it == rels_.end()) {
    return Status::NotFound("relation " + std::to_string(rel));
  }
  if (block >= it->second.size()) {
    return Status::InvalidArgument("block " + std::to_string(block) +
                                   " past end of relation " +
                                   std::to_string(rel) + " (" +
                                   std::to_string(it->second.size()) +
                                   " blocks)");
  }
  if (out.size() < kPageSize) {
    return Status::InvalidArgument("read buffer too small");
  }
  std::memcpy(out.data(), it->second[block].data(), kPageSize);
  return Status::Ok();
}

Status MemBlockStore::Write(Oid rel, uint32_t block, std::span<const std::byte> data) {
  MutexLock lock(mu_);
  auto it = rels_.find(rel);
  if (it == rels_.end()) {
    return Status::NotFound("relation " + std::to_string(rel));
  }
  if (data.size() != kPageSize) {
    return Status::InvalidArgument("write must be exactly one page");
  }
  auto& blocks = it->second;
  if (block > blocks.size()) {
    return Status::InvalidArgument("write would leave a hole at block " +
                                   std::to_string(block));
  }
  if (block == blocks.size()) {
    blocks.emplace_back(data.begin(), data.end());
  } else {
    blocks[block].assign(data.begin(), data.end());
  }
  return Status::Ok();
}

std::vector<Oid> MemBlockStore::ListRelations() const {
  MutexLock lock(mu_);
  std::vector<Oid> out;
  out.reserve(rels_.size());
  for (const auto& [oid, blocks] : rels_) {
    out.push_back(oid);
  }
  return out;
}

Status MemBlockStore::CorruptByte(Oid rel, uint32_t block, uint32_t offset) {
  MutexLock lock(mu_);
  auto it = rels_.find(rel);
  if (it == rels_.end() || block >= it->second.size() || offset >= kPageSize) {
    return Status::InvalidArgument("no such byte to corrupt");
  }
  it->second[block][offset] ^= std::byte{0xFF};
  return Status::Ok();
}

std::unique_ptr<MemBlockStore> MemBlockStore::Clone() const {
  MutexLock lock(mu_);
  auto copy = std::make_unique<MemBlockStore>();
  // The copy is private to this thread, but its rels_ is guarded by *its*
  // mutex as far as the analysis is concerned; taking it is free of both
  // contention and ordering concerns (nobody else can reach the object).
  MutexLock copy_lock(copy->mu_);
  copy->rels_ = rels_;
  return copy;
}

// --------------------------------------------------------------- FileBlockStore

Result<std::unique_ptr<FileBlockStore>> FileBlockStore::Open(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + dir + ": " + ErrnoString(errno));
  }
  return std::unique_ptr<FileBlockStore>(new FileBlockStore(dir));
}

FileBlockStore::~FileBlockStore() {
  for (auto& [rel, fd] : fds_) {
    ::close(fd);
  }
}

std::string FileBlockStore::PathFor(Oid rel) const {
  return dir_ + "/rel" + std::to_string(rel) + ".blk";
}

Result<int> FileBlockStore::FdFor(Oid rel, bool create) {
  auto it = fds_.find(rel);
  if (it != fds_.end()) {
    return it->second;
  }
  int flags = O_RDWR | (create ? O_CREAT : 0);
  int fd = ::open(PathFor(rel).c_str(), flags, 0644);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("relation " + std::to_string(rel));
    }
    return Status::IoError("open " + PathFor(rel) + ": " + ErrnoString(errno));
  }
  fds_[rel] = fd;
  return fd;
}

Status FileBlockStore::Create(Oid rel) {
  MutexLock lock(mu_);
  struct stat st;
  if (::stat(PathFor(rel).c_str(), &st) == 0) {
    return Status::AlreadyExists("relation " + std::to_string(rel));
  }
  INV_ASSIGN_OR_RETURN(int fd, FdFor(rel, /*create=*/true));
  (void)fd;
  return Status::Ok();
}

Status FileBlockStore::Drop(Oid rel) {
  MutexLock lock(mu_);
  auto it = fds_.find(rel);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
  if (::unlink(PathFor(rel).c_str()) != 0) {
    return Status::NotFound("relation " + std::to_string(rel));
  }
  return Status::Ok();
}

bool FileBlockStore::Exists(Oid rel) const {
  struct stat st;
  return ::stat(PathFor(rel).c_str(), &st) == 0;
}

Result<uint32_t> FileBlockStore::NumBlocks(Oid rel) const {
  struct stat st;
  if (::stat(PathFor(rel).c_str(), &st) != 0) {
    return Status::NotFound("relation " + std::to_string(rel));
  }
  return static_cast<uint32_t>(st.st_size / kPageSize);
}

Status FileBlockStore::Read(Oid rel, uint32_t block, std::span<std::byte> out) {
  MutexLock lock(mu_);
  INV_ASSIGN_OR_RETURN(int fd, FdFor(rel, /*create=*/false));
  if (out.size() < kPageSize) {
    return Status::InvalidArgument("read buffer too small");
  }
  ssize_t n = ::pread(fd, out.data(), kPageSize,
                      static_cast<off_t>(block) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("short read of rel " + std::to_string(rel) + " block " +
                           std::to_string(block));
  }
  return Status::Ok();
}

Status FileBlockStore::Write(Oid rel, uint32_t block, std::span<const std::byte> data) {
  MutexLock lock(mu_);
  INV_ASSIGN_OR_RETURN(int fd, FdFor(rel, /*create=*/false));
  if (data.size() != kPageSize) {
    return Status::InvalidArgument("write must be exactly one page");
  }
  ssize_t n = ::pwrite(fd, data.data(), kPageSize,
                       static_cast<off_t>(block) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("short write of rel " + std::to_string(rel) + " block " +
                           std::to_string(block));
  }
  return Status::Ok();
}

std::vector<Oid> FileBlockStore::ListRelations() const {
  // Listing is only needed at reopen; parse rel<oid>.blk names.
  std::vector<Oid> out;
  // Avoid <filesystem> dependency: use POSIX dirent.
  // (Declared here to keep the header light.)
  struct Closer {
    void operator()(DIR* d) const { ::closedir(d); }
  };
  std::unique_ptr<DIR, Closer> d(::opendir(dir_.c_str()));
  if (!d) {
    return out;
  }
  while (struct dirent* e = ::readdir(d.get())) {
    std::string name = e->d_name;
    if (name.rfind("rel", 0) == 0 && name.size() > 7 &&
        name.substr(name.size() - 4) == ".blk") {
      out.push_back(static_cast<Oid>(std::stoul(name.substr(3, name.size() - 7))));
    }
  }
  return out;
}

}  // namespace invfs
