#include "src/device/device.h"

#include <algorithm>

#include "src/sim/disk_model.h"

namespace invfs {

// --------------------------------------------------------- MagneticDiskDevice

MagneticDiskDevice::MagneticDiskDevice(BlockStore* store, SimClock* clock,
                                       DiskParams params, uint32_t extent_pages)
    : store_(store),
      model_(std::make_unique<DiskModel>(clock, params)),
      extent_pages_(extent_pages) {}

MagneticDiskDevice::~MagneticDiskDevice() = default;

DiskModel& MagneticDiskDevice::disk_model() { return *model_; }

Status MagneticDiskDevice::CreateRelation(Oid rel) {
  INV_RETURN_IF_ERROR(store_->Create(rel));
  MutexLock lock(mu_);
  extents_.try_emplace(rel);
  return Status::Ok();
}

Status MagneticDiskDevice::DropRelation(Oid rel) {
  INV_RETURN_IF_ERROR(store_->Drop(rel));
  MutexLock lock(mu_);
  extents_.erase(rel);  // extents are leaked on purpose: no free-space reuse
  return Status::Ok();
}

uint64_t MagneticDiskDevice::PhysicalAddress(Oid rel, uint32_t block) {
  MutexLock lock(mu_);
  auto& ext = extents_[rel];
  const uint32_t extent_index = block / extent_pages_;
  while (ext.size() <= extent_index) {
    ext.push_back(next_free_extent_++ * extent_pages_);
  }
  return ext[extent_index] + block % extent_pages_;
}

Status MagneticDiskDevice::ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) {
  model_->ChargePageIo(PhysicalAddress(rel, block));
  return store_->Read(rel, block, out);
}

Status MagneticDiskDevice::WriteBlock(Oid rel, uint32_t block,
                                      std::span<const std::byte> data) {
  model_->ChargePageIo(PhysicalAddress(rel, block));
  return store_->Write(rel, block, data);
}

// -------------------------------------------------------------- JukeboxDevice

JukeboxDevice::JukeboxDevice(BlockStore* store, SimClock* clock, JukeboxParams params,
                             DiskParams cache_disk_params)
    : store_(store),
      clock_(clock),
      params_(params),
      cache_disk_(std::make_unique<DiskModel>(clock, cache_disk_params)) {}

JukeboxDevice::~JukeboxDevice() = default;

Status JukeboxDevice::CreateRelation(Oid rel) {
  INV_RETURN_IF_ERROR(store_->Create(rel));
  MutexLock lock(mu_);
  extents_.try_emplace(rel);
  return Status::Ok();
}

Status JukeboxDevice::DropRelation(Oid rel) {
  INV_RETURN_IF_ERROR(store_->Drop(rel));
  MutexLock lock(mu_);
  extents_.erase(rel);
  rewrite_counts_.erase(rel);
  return Status::Ok();
}

uint64_t JukeboxDevice::PhysicalAddress(Oid rel, uint32_t block) {
  auto& ext = extents_[rel];
  const uint32_t extent_index = block / params_.extent_pages;
  while (ext.size() <= extent_index) {
    ext.push_back(next_free_extent_++ * params_.extent_pages);
  }
  return ext[extent_index] + block % params_.extent_pages;
}

void JukeboxDevice::ChargeOpticalIo(uint64_t phys) {
  const int64_t platter = static_cast<int64_t>(phys / params_.pages_per_platter);
  if (platter != loaded_platter_) {
    clock_->Advance(params_.platter_load_us);
    loaded_platter_ = platter;
    ++platter_loads_;
  }
  // Contiguous optical access streams at transfer rate; discontiguous access
  // pays the (expensive) optical head seek. Extent size controls how much of
  // a table is contiguous — the tradeoff the paper discusses.
  if (has_optical_position_ && phys == last_optical_phys_ + 1) {
    clock_->Advance(params_.page_transfer_us);
  } else {
    clock_->Advance(params_.seek_us + params_.page_transfer_us);
  }
  last_optical_phys_ = phys;
  has_optical_position_ = true;
}

bool JukeboxDevice::CacheTouch(const CacheKey& key, bool dirty) {
  const size_t capacity = std::max<uint64_t>(1, params_.cache_bytes / kPageSize);
  auto it = cached_.find(key);
  const bool hit = it != cached_.end();
  if (hit) {
    it->second = it->second || dirty;
    auto pos = std::find(lru_.begin(), lru_.end(), key);
    if (pos != lru_.end()) {
      lru_.erase(pos);
    }
  } else {
    cached_[key] = dirty;
    while (lru_.size() >= capacity) {
      CacheKey victim = lru_.back();
      lru_.pop_back();
      auto vit = cached_.find(victim);
      if (vit != cached_.end()) {
        if (vit->second) {
          // Destage dirty block to the platter. A block rewritten after a
          // previous destage gets a fresh WORM location (remap).
          int& count = rewrite_counts_[victim.rel][victim.block];
          if (count > 0) {
            ++worm_remaps_;
          }
          ++count;
          ChargeOpticalIo(PhysicalAddress(victim.rel, victim.block));
        }
        cached_.erase(vit);
      }
    }
  }
  lru_.insert(lru_.begin(), key);
  return hit;
}

Status JukeboxDevice::ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) {
  {
    MutexLock lock(mu_);
    const CacheKey key{rel, block};
    if (CacheTouch(key, /*dirty=*/false)) {
      ++cache_hits_;
      cache_disk_->ChargePageIo(PhysicalAddress(rel, block));
    } else {
      ++cache_misses_;
      // Fetch from the platter into the staging cache, then serve.
      ChargeOpticalIo(PhysicalAddress(rel, block));
      cache_disk_->ChargePageIo(PhysicalAddress(rel, block));
    }
  }
  return store_->Read(rel, block, out);
}

Status JukeboxDevice::WriteBlock(Oid rel, uint32_t block,
                                 std::span<const std::byte> data) {
  {
    MutexLock lock(mu_);
    const CacheKey key{rel, block};
    if (CacheTouch(key, /*dirty=*/true)) {
      ++cache_hits_;
    } else {
      ++cache_misses_;
    }
    // Writes land in the magnetic staging cache; optical cost is paid at
    // destage time (eviction or Sync).
    cache_disk_->ChargePageIo(PhysicalAddress(rel, block));
  }
  return store_->Write(rel, block, data);
}

Status JukeboxDevice::Sync() {
  MutexLock lock(mu_);
  for (auto& [key, dirty] : cached_) {
    if (dirty) {
      int& count = rewrite_counts_[key.rel][key.block];
      if (count > 0) {
        ++worm_remaps_;
      }
      ++count;
      ChargeOpticalIo(PhysicalAddress(key.rel, key.block));
      dirty = false;
    }
  }
  return Status::Ok();
}

Status JukeboxDevice::DropStagingCache() {
  INV_RETURN_IF_ERROR(Sync());
  MutexLock lock(mu_);
  cached_.clear();
  lru_.clear();
  // Fully cold also means no platter in the drive and no head position.
  loaded_platter_ = -1;
  has_optical_position_ = false;
  return Status::Ok();
}

// --------------------------------------------------------------- DeviceSwitch

void DeviceSwitch::Register(DeviceId id, std::unique_ptr<DeviceManager> device) {
  INV_CHECK(id < kMaxDevices);
  MutexLock lock(mu_);
  devices_[id] = std::move(device);
}

DeviceManager* DeviceSwitch::Get(DeviceId id) const {
  MutexLock lock(mu_);
  return id < kMaxDevices ? devices_[id].get() : nullptr;
}

bool DeviceSwitch::Has(DeviceId id) const { return Get(id) != nullptr; }

void DeviceSwitch::BindRelation(Oid rel, DeviceId id) {
  MutexLock lock(mu_);
  bindings_[rel] = id;
}

void DeviceSwitch::UnbindRelation(Oid rel) {
  MutexLock lock(mu_);
  bindings_.erase(rel);
}

Result<DeviceId> DeviceSwitch::DeviceFor(Oid rel) const {
  MutexLock lock(mu_);
  auto it = bindings_.find(rel);
  if (it == bindings_.end()) {
    return Status::NotFound("relation " + std::to_string(rel) +
                            " not bound to any device");
  }
  return it->second;
}

Result<DeviceManager*> DeviceSwitch::ManagerFor(Oid rel) const {
  INV_ASSIGN_OR_RETURN(DeviceId id, DeviceFor(rel));
  DeviceManager* mgr = Get(id);
  if (mgr == nullptr) {
    return Status::Internal("device " + std::to_string(id) + " not registered");
  }
  return mgr;
}

Status DeviceSwitch::SyncAll() {
  for (DeviceId id = 0; id < kMaxDevices; ++id) {
    if (DeviceManager* mgr = Get(id)) {
      INV_RETURN_IF_ERROR(mgr->Sync());
    }
  }
  return Status::Ok();
}

}  // namespace invfs
