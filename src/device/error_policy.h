// ErrorPolicyDevice: per-device I/O error policy — retry with capped
// exponential backoff for transient errors, sticky read-only degradation for
// permanent write failures.
//
// The decorator sits *outermost* in the switch stack
// (Policy(Instrumented(Fault(real)))) so that every physical retry is
// visible to the instrumentation layer below it. Behavior:
//
//   * A kTransientIo error is retried up to `max_retries` times with
//     exponential backoff charged to the SimClock (deterministic; no wall
//     sleeping). Each retry increments `device.retries`. If a retry
//     succeeds, the caller never learns a fault happened.
//   * A permanent error (anything non-transient) on a *write* path — or a
//     transient one that survives every retry — trips the device into a
//     sticky read-only state: `device.permanent_errors` increments once, the
//     failed write and every later write/create/drop returns
//     kReadOnlyDevice, and reads keep flowing to the device untouched. This
//     is the graceful degradation the live system promises: a dying disk
//     stops accepting updates, but recovery, queries, and time travel over
//     already-persisted data keep working.
//   * Read errors are returned to the caller after retries but do not trip
//     read-only: a failed read says nothing about the device's ability to
//     persist, and the page CRC layer above decides what the damage means.

#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "src/device/device.h"
#include "src/obs/metrics.h"
#include "src/sim/sim_clock.h"

namespace invfs {

struct DeviceErrorPolicy {
  int max_retries = 4;               // retries after the initial attempt
  SimMicros backoff_us = 100;        // first retry delay; doubles each retry
  SimMicros max_backoff_us = 10000;  // backoff cap
};

class ErrorPolicyDevice final : public DeviceManager {
 public:
  ErrorPolicyDevice(std::unique_ptr<DeviceManager> inner, SimClock* clock,
                    DeviceErrorPolicy policy, MetricsRegistry* metrics);

  std::string_view name() const override { return inner_->name(); }

  Status CreateRelation(Oid rel) override;
  Status DropRelation(Oid rel) override;
  bool RelationExists(Oid rel) const override {
    return inner_->RelationExists(rel);
  }
  Result<uint32_t> NumBlocks(Oid rel) const override {
    return inner_->NumBlocks(rel);
  }
  Status ReadBlock(Oid rel, uint32_t block, std::span<std::byte> out) override;
  Status WriteBlock(Oid rel, uint32_t block,
                    std::span<const std::byte> data) override;
  Status Sync() override;

  DeviceManager* Underlying() override { return inner_->Underlying(); }

  // True once a permanent write failure tripped the device.
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }

 private:
  // Cold continuation of the retry loop: `first` is the already-failed status
  // of the initial attempt. The hot path calls the inner device directly and
  // only falls in here on error, so an unarmed production stack pays one
  // atomic load and one branch per I/O over the bare device.
  template <typename Op>
  Status RetryTail(Status first, Op&& op);
  Status ReadOnlyError() const;
  // Trip read-only (once) and convert `cause` into the kReadOnlyDevice
  // status writers see from now on.
  Status TripReadOnly(const Status& cause);

  std::unique_ptr<DeviceManager> inner_;
  SimClock* clock_;
  DeviceErrorPolicy policy_;
  std::atomic<bool> read_only_{false};
  MetricsRegistry* metrics_;
  Counter* retries_;
  Counter* permanent_errors_;
};

}  // namespace invfs
