#include "src/device/error_policy.h"

#include <algorithm>

#include "src/obs/span.h"

namespace invfs {

ErrorPolicyDevice::ErrorPolicyDevice(std::unique_ptr<DeviceManager> inner,
                                     SimClock* clock, DeviceErrorPolicy policy,
                                     MetricsRegistry* metrics)
    : inner_(std::move(inner)),
      clock_(clock),
      policy_(policy),
      metrics_(metrics) {
  const std::string_view label = inner_->name();
  retries_ = metrics->GetCounter("device.retries", label);
  permanent_errors_ = metrics->GetCounter("device.permanent_errors", label);
}

namespace {
// Write-path errors that trip the sticky read-only degradation: a transient
// error that survived every retry, or a hard I/O error.
bool TripsReadOnly(const Status& s) {
  return s.IsTransientIo() || s.code() == ErrorCode::kIoError;
}
}  // namespace

template <typename Op>
[[gnu::noinline]] Status ErrorPolicyDevice::RetryTail(Status first, Op&& op) {
  // Retry/backoff stalls land on the request that suffered them: the span
  // nests under whatever device.* span is open, so --breakdown attributes
  // fault-layer time instead of mislabeling it as plain device I/O.
  ScopedSpan span(&metrics_->spans(), "device.retry");
  Status s = std::move(first);
  SimMicros backoff = policy_.backoff_us;
  for (int attempt = 0; attempt < policy_.max_retries && s.IsTransientIo();
       ++attempt) {
    clock_->Advance(backoff);
    metrics_->trace().Record(TraceEvent::kDeviceRetry,
                             static_cast<uint64_t>(attempt + 1), backoff);
    backoff = std::min(backoff * 2, policy_.max_backoff_us);
    retries_->Add();
    s = op();
    span.set_a(static_cast<uint64_t>(attempt + 1));
  }
  return s;
}

Status ErrorPolicyDevice::ReadOnlyError() const {
  return Status::ReadOnlyDevice("device '" + std::string(name()) +
                                "' is read-only after a permanent write error");
}

Status ErrorPolicyDevice::TripReadOnly(const Status& cause) {
  if (!read_only_.exchange(true, std::memory_order_acq_rel)) {
    permanent_errors_->Add();
    metrics_->trace().Record(TraceEvent::kDeviceReadOnlyTrip,
                             static_cast<uint64_t>(cause.code()));
  }
  return Status::ReadOnlyDevice("device '" + std::string(name()) +
                                "' tripped read-only: " + cause.ToString());
}

Status ErrorPolicyDevice::CreateRelation(Oid rel) {
  if (read_only()) [[unlikely]] {
    return ReadOnlyError();
  }
  Status s = inner_->CreateRelation(rel);
  if (s.ok()) [[likely]] {
    return s;
  }
  s = RetryTail(std::move(s), [&] { return inner_->CreateRelation(rel); });
  if (!s.ok() && TripsReadOnly(s)) {
    return TripReadOnly(s);
  }
  return s;
}

Status ErrorPolicyDevice::DropRelation(Oid rel) {
  if (read_only()) [[unlikely]] {
    return ReadOnlyError();
  }
  Status s = inner_->DropRelation(rel);
  if (s.ok()) [[likely]] {
    return s;
  }
  s = RetryTail(std::move(s), [&] { return inner_->DropRelation(rel); });
  if (!s.ok() && TripsReadOnly(s)) {
    return TripReadOnly(s);
  }
  return s;
}

Status ErrorPolicyDevice::ReadBlock(Oid rel, uint32_t block,
                                    std::span<std::byte> out) {
  // Reads are served even on a read-only device: that is the entire point of
  // the degradation (queries and recovery outlive a dying write path).
  Status s = inner_->ReadBlock(rel, block, out);
  if (s.ok()) [[likely]] {
    return s;
  }
  s = RetryTail(std::move(s), [&] { return inner_->ReadBlock(rel, block, out); });
  if (s.IsTransientIo()) {
    // Out of retries: surface as a hard I/O error so callers do not loop.
    return Status::IoError("read failed after " +
                           std::to_string(policy_.max_retries) +
                           " retries: " + s.ToString());
  }
  return s;
}

Status ErrorPolicyDevice::WriteBlock(Oid rel, uint32_t block,
                                     std::span<const std::byte> data) {
  if (read_only()) [[unlikely]] {
    return ReadOnlyError();
  }
  Status s = inner_->WriteBlock(rel, block, data);
  if (s.ok()) [[likely]] {
    return s;
  }
  s = RetryTail(std::move(s), [&] { return inner_->WriteBlock(rel, block, data); });
  if (s.ok()) {
    return s;
  }
  if (TripsReadOnly(s)) {
    return TripReadOnly(s);
  }
  return s;  // logical errors (bad block, missing relation) pass through
}

Status ErrorPolicyDevice::Sync() {
  if (read_only()) {
    // A read-only device has nothing new to destage; syncing what already
    // landed is a no-op rather than an error, so shutdown paths stay clean.
    return Status::Ok();
  }
  Status s = inner_->Sync();
  if (s.ok()) [[likely]] {
    return s;
  }
  s = RetryTail(std::move(s), [&] { return inner_->Sync(); });
  if (!s.ok() && TripsReadOnly(s)) {
    return TripReadOnly(s);
  }
  return s;
}

}  // namespace invfs
