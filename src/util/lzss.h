// LZSS compression codec for Inversion's compressed-chunk support.
//
// The paper ("Services Under Investigation") stores user files as compressed
// chunks, with per-chunk compressed/uncompressed sizes recorded so that random
// access only decompresses the chunk containing the requested bytes. This
// codec compresses each ~8 KB chunk independently; there is no cross-chunk
// state, which is what makes random access cheap.
//
// Format: a stream of flag bytes, each describing the next 8 items.
// Flag bit set   -> literal byte follows.
// Flag bit clear -> 2-byte little-endian token: 12-bit backward distance
//                   (1..4096) and 4-bit length (3..18).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/status.h"

namespace invfs {

// Compresses `input`. Output is self-delimiting given its exact size.
// Worst case output is input.size() * 9/8 + 1 bytes.
std::vector<std::byte> LzssCompress(std::span<const std::byte> input);

// Decompresses `input` produced by LzssCompress. `expected_size` is the
// uncompressed size recorded alongside the chunk; decoding validates it.
Result<std::vector<std::byte>> LzssDecompress(std::span<const std::byte> input,
                                              size_t expected_size);

}  // namespace invfs
