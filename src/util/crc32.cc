#include "src/util/crc32.h"

#include <array>

namespace invfs {
namespace {

constexpr uint32_t kPoly = 0x82F63B78;  // reflected CRC-32C

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

uint32_t Crc32c(std::span<const std::byte> data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (std::byte b : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(b)) & 0xFF];
  }
  return ~crc;
}

}  // namespace invfs
