// Status and Result<T>: error handling for the Inversion storage engine.
//
// The engine does not throw on anticipated failures (I/O errors, constraint
// violations, lock timeouts); every fallible call returns a Status or a
// Result<T>. Unanticipated programming errors abort via INV_CHECK.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace invfs {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kNotFound,        // named object does not exist
  kAlreadyExists,   // create of an existing object
  kInvalidArgument, // caller error: bad name, bad offset, bad mode
  kIoError,         // device-level failure
  kCorruption,      // on-disk structure failed validation
  kDeadlock,        // lock manager chose this transaction as victim
  kTxnAborted,      // operation attempted on an aborted transaction
  kReadOnly,        // write attempted on a historical (time-travel) open
  kResourceExhausted, // out of buffers, fds, or device space
  kPermissionDenied,
  kUnimplemented,
  kInternal,
  kTransientIo,     // device hiccup; the same operation may succeed if retried
  kReadOnlyDevice,  // write rejected: device (or the whole database) has
                    // tripped into sticky fail-stop read-only mode
};

// Human-readable name for an ErrorCode, e.g. "NotFound".
std::string_view ErrorCodeName(ErrorCode code);

// A cheap, copyable success-or-error value. OK status carries no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) {
    return {ErrorCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {ErrorCode::kInvalidArgument, std::move(m)};
  }
  static Status IoError(std::string m) { return {ErrorCode::kIoError, std::move(m)}; }
  static Status Corruption(std::string m) { return {ErrorCode::kCorruption, std::move(m)}; }
  static Status Deadlock(std::string m) { return {ErrorCode::kDeadlock, std::move(m)}; }
  static Status TxnAborted(std::string m) { return {ErrorCode::kTxnAborted, std::move(m)}; }
  static Status ReadOnly(std::string m) { return {ErrorCode::kReadOnly, std::move(m)}; }
  static Status ResourceExhausted(std::string m) {
    return {ErrorCode::kResourceExhausted, std::move(m)};
  }
  static Status PermissionDenied(std::string m) {
    return {ErrorCode::kPermissionDenied, std::move(m)};
  }
  static Status Unimplemented(std::string m) {
    return {ErrorCode::kUnimplemented, std::move(m)};
  }
  static Status Internal(std::string m) { return {ErrorCode::kInternal, std::move(m)}; }
  static Status TransientIo(std::string m) {
    return {ErrorCode::kTransientIo, std::move(m)};
  }
  static Status ReadOnlyDevice(std::string m) {
    return {ErrorCode::kReadOnlyDevice, std::move(m)};
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == ErrorCode::kNotFound; }
  bool IsDeadlock() const { return code_ == ErrorCode::kDeadlock; }
  bool IsTransientIo() const { return code_ == ErrorCode::kTransientIo; }
  bool IsReadOnlyDevice() const { return code_ == ErrorCode::kReadOnlyDevice; }

  // "Ok" or "NotFound: no such file".
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {}  // NOLINT
  Result(ErrorCode code, std::string message)
      : v_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(v_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "FATAL: Result::value() on error: %s\n",
                   std::get<Status>(v_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> v_;
};

// Propagate a non-OK Status to the caller.
#define INV_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::invfs::Status inv_st_ = (expr);          \
    if (!inv_st_.ok()) {                       \
      return inv_st_;                          \
    }                                          \
  } while (0)

#define INV_CONCAT_INNER(a, b) a##b
#define INV_CONCAT(a, b) INV_CONCAT_INNER(a, b)

// ASSIGN_OR_RETURN: lhs may be a declaration ("auto x") or an existing lvalue.
#define INV_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto INV_CONCAT(inv_res_, __LINE__) = (rexpr);               \
  if (!INV_CONCAT(inv_res_, __LINE__).ok()) {                  \
    return INV_CONCAT(inv_res_, __LINE__).status();            \
  }                                                            \
  lhs = std::move(INV_CONCAT(inv_res_, __LINE__)).value()

// Invariant check: aborts on violation. Used for programming errors only,
// never for anticipated runtime failures.
#define INV_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "INV_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

}  // namespace invfs
