// Annotated mutex and condition-variable wrappers.
//
// The engine's locking vocabulary: every mutex in src/ is an invfs::Mutex,
// every scoped acquisition an invfs::MutexLock, every condition wait an
// invfs::CondVar. The wrappers exist because clang's thread safety analysis
// tracks *annotated* capabilities, and std::mutex carries no annotations —
// locking discipline on a naked std::mutex is invisible to the analysis.
// invfs_lint enforces adoption: outside this header, naming std::mutex (or
// std::lock_guard / std::unique_lock / std::condition_variable) in src/ is a
// lint error.
//
// Cost: identical to the std types. Mutex is a std::mutex by another name;
// MutexLock compiles to the same code as std::lock_guard; CondVar::Wait
// adopts the already-held native handle, so there is no condition_variable_any
// indirection.

#pragma once

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace invfs {

// A std::mutex the thread safety analysis can see.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scoped acquisition, the annotated std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to an invfs::Mutex at each wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, and re-acquires `mu` before returning.
  // Spurious wakeups happen; callers loop on their predicate. The protocol
  // designates exactly one mutex per wait — holding any other lock across a
  // Wait is an invfs_lint error (rule cv-wait-extra-lock).
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the caller-held native mutex for the duration of the wait; the
    // unique_lock is released (not unlocked) afterwards so ownership stays
    // with the caller's scope, exactly as the annotation promises.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace invfs
