#include "src/util/status.h"

namespace invfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kNotFound:
      return "NotFound";
    case ErrorCode::kAlreadyExists:
      return "AlreadyExists";
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kIoError:
      return "IoError";
    case ErrorCode::kCorruption:
      return "Corruption";
    case ErrorCode::kDeadlock:
      return "Deadlock";
    case ErrorCode::kTxnAborted:
      return "TxnAborted";
    case ErrorCode::kReadOnly:
      return "ReadOnly";
    case ErrorCode::kResourceExhausted:
      return "ResourceExhausted";
    case ErrorCode::kPermissionDenied:
      return "PermissionDenied";
    case ErrorCode::kUnimplemented:
      return "Unimplemented";
    case ErrorCode::kInternal:
      return "Internal";
    case ErrorCode::kTransientIo:
      return "TransientIo";
    case ErrorCode::kReadOnlyDevice:
      return "ReadOnlyDevice";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string s(ErrorCodeName(code_));
  s += ": ";
  s += message_;
  return s;
}

}  // namespace invfs
