// Minimal leveled logging. Off by default above WARN so benchmark output
// stays clean; tests can raise verbosity via SetLogLevel.

#pragma once

#include <cstdio>
#include <string>

namespace invfs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

}  // namespace invfs

#define INV_LOG(level, msg)                                                   \
  do {                                                                        \
    if (static_cast<int>(::invfs::LogLevel::level) >=                         \
        static_cast<int>(::invfs::GetLogLevel())) {                           \
      ::invfs::LogMessage(::invfs::LogLevel::level, __FILE__, __LINE__, msg); \
    }                                                                         \
  } while (0)
