// Clang Thread Safety Analysis annotations.
//
// Every locking protocol in this engine — the buffer pool's io_mu_-before-
// shard-mutex ordering, the commit log's group-commit handoff, strict 2PL in
// the lock manager — was, until this header, enforced only at runtime: TSan
// and the INVFS_DEBUG_INVARIANTS checks catch exactly the interleavings a
// test happens to execute. These macros turn the protocols into compile-time
// contracts: a clang build with -Wthread-safety proves that every GUARDED_BY
// field is touched only under its mutex and that every REQUIRES precondition
// is met at every call site, on every path, including the ones no test runs.
//
// Under compilers without the attribute (GCC builds, which are the default
// toolchain here) the macros expand to nothing, so the annotations are
// zero-cost documentation. scripts/check.sh's `tsa` leg runs the clang gate
// when clang is installed; tests/compile_fail/ proves the annotations
// actually reject misuse.
//
// The macro set and spellings follow the de-facto standard established by
// abseil's thread_annotations.h, so the vocabulary matches what the analysis'
// documentation and diagnostics use.

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define INVFS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define INVFS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Declares a type to be a capability (a lockable resource). `x` names the
// kind in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) INVFS_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose constructor acquires and destructor releases a
// capability (MutexLock).
#define SCOPED_CAPABILITY INVFS_THREAD_ANNOTATION(scoped_lockable)

// Field may only be read or written while holding the given capability.
#define GUARDED_BY(x) INVFS_THREAD_ANNOTATION(guarded_by(x))

// Pointer field: the *pointee* may only be dereferenced under the capability.
#define PT_GUARDED_BY(x) INVFS_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations. NOTE: clang only enforces these under the
// opt-in -Wthread-safety-beta group; without it they are checked for
// well-formedness and serve as machine-readable ordering documentation
// (invfs_lint enforces the orderings the analysis cannot).
#define ACQUIRED_BEFORE(...) INVFS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) INVFS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function precondition: the listed capabilities must be held on entry (and
// are still held on exit).
#define REQUIRES(...) INVFS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  INVFS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability and holds it past return.
#define ACQUIRE(...) INVFS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  INVFS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

// Function releases a capability the caller held on entry.
#define RELEASE(...) INVFS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  INVFS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  INVFS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

// Function must NOT be called while holding the capability (non-reentrant
// monitor entry points; prevents self-deadlock).
#define EXCLUDES(...) INVFS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (tells the analysis so).
#define ASSERT_CAPABILITY(x) INVFS_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) INVFS_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: the function is exempt from analysis. Used only where the
// analysis cannot express a correct pattern (e.g. acquiring a variable-length
// set of shard mutexes in a loop); every use carries a justifying comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  INVFS_THREAD_ANNOTATION(no_thread_safety_analysis)
