// CRC-32 (Castagnoli polynomial) used for page self-identification checks.
//
// The paper reserves space in file-data records for self-identifying blocks
// to detect media corruption; we implement that check with this CRC.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace invfs {

// CRC of `data`, optionally chained from a previous crc.
uint32_t Crc32c(std::span<const std::byte> data, uint32_t seed = 0);

inline uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0) {
  return Crc32c(std::span(static_cast<const std::byte*>(data), len), seed);
}

}  // namespace invfs
