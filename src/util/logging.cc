#include "src/util/logging.h"

#include <atomic>

namespace invfs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, msg.c_str());
}

}  // namespace invfs
