#include "src/util/logging.h"

#include <atomic>

#include "src/obs/metrics.h"
#include "src/util/mutex.h"

namespace invfs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Emitted-message counter per level, in the process-wide default registry
// (logging has no Database in reach). Cached: the registry lookup takes a
// mutex, the increment does not.
Counter* MessageCounter(LogLevel level) {
  static Counter* counters[5] = {
      MetricsRegistry::Default().GetCounter("log_messages", "debug"),
      MetricsRegistry::Default().GetCounter("log_messages", "info"),
      MetricsRegistry::Default().GetCounter("log_messages", "warn"),
      MetricsRegistry::Default().GetCounter("log_messages", "error"),
      MetricsRegistry::Default().GetCounter("log_messages", "off"),
  };
  const int i = static_cast<int>(level);
  return counters[i >= 0 && i < 5 ? i : 4];
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  MessageCounter(level)->Add();
  // Tag with the obs layer's per-thread id so interleaved multi-threaded runs
  // attribute lines, and serialize the write: stderr is unbuffered, so a
  // single unlocked fprintf can interleave mid-line with another thread's.
  static Mutex mu;
  MutexLock lock(mu);
  std::fprintf(stderr, "[%s t%llu %s:%d] %s\n", LevelName(level),
               static_cast<unsigned long long>(ThreadTag()), file, line,
               msg.c_str());
}

}  // namespace invfs
