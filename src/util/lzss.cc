#include "src/util/lzss.h"

#include <array>
#include <cstring>

namespace invfs {
namespace {

constexpr size_t kWindow = 4096;    // 12-bit distance
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;    // kMinMatch + 15
constexpr size_t kHashSize = 1 << 13;

// Hash of 3 bytes for the match-finder chain heads.
inline uint32_t Hash3(const std::byte* p) {
  uint32_t v = static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
               (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
               (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16);
  return (v * 2654435761u) >> (32 - 13);
}

}  // namespace

std::vector<std::byte> LzssCompress(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  out.reserve(input.size() + input.size() / 8 + 1);

  // head[h] = most recent position with hash h; prev[i % kWindow] = previous
  // position in the same chain. -1 terminates.
  std::array<int32_t, kHashSize> head;
  head.fill(-1);
  std::vector<int32_t> prev(kWindow, -1);

  const std::byte* data = input.data();
  const size_t n = input.size();

  size_t flag_pos = 0;  // index of current flag byte in `out`
  int flag_bit = 8;     // 8 == flag byte exhausted / not yet allocated
  uint8_t flag = 0;

  auto emit_flag_bit = [&](bool literal) {
    if (flag_bit == 8) {
      flag_pos = out.size();
      out.push_back(std::byte{0});
      flag = 0;
      flag_bit = 0;
    }
    if (literal) {
      flag |= static_cast<uint8_t>(1u << flag_bit);
    }
    ++flag_bit;
    out[flag_pos] = std::byte{flag};
  };

  size_t i = 0;
  while (i < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      uint32_t h = Hash3(data + i);
      int32_t cand = head[h];
      int probes = 32;
      while (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow && probes-- > 0) {
        const size_t dist = i - static_cast<size_t>(cand);
        if (dist > 0) {
          size_t len = 0;
          const size_t max_len = (n - i < kMaxMatch) ? (n - i) : kMaxMatch;
          while (len < max_len && data[cand + len] == data[i + len]) {
            ++len;
          }
          if (len > best_len) {
            best_len = len;
            best_dist = dist;
            if (len == kMaxMatch) {
              break;
            }
          }
        }
        cand = prev[static_cast<size_t>(cand) % kWindow];
      }
    }

    if (best_len >= kMinMatch) {
      emit_flag_bit(false);
      const uint16_t token = static_cast<uint16_t>(((best_dist - 1) << 4) |
                                                   (best_len - kMinMatch));
      out.push_back(std::byte{static_cast<uint8_t>(token & 0xFF)});
      out.push_back(std::byte{static_cast<uint8_t>(token >> 8)});
      // Insert every covered position into the chains so later matches can
      // reference the interior of this match.
      const size_t end = i + best_len;
      while (i < end) {
        if (i + kMinMatch <= n) {
          uint32_t h = Hash3(data + i);
          prev[i % kWindow] = head[h];
          head[h] = static_cast<int32_t>(i);
        }
        ++i;
      }
    } else {
      emit_flag_bit(true);
      out.push_back(data[i]);
      if (i + kMinMatch <= n) {
        uint32_t h = Hash3(data + i);
        prev[i % kWindow] = head[h];
        head[h] = static_cast<int32_t>(i);
      }
      ++i;
    }
  }
  return out;
}

Result<std::vector<std::byte>> LzssDecompress(std::span<const std::byte> input,
                                              size_t expected_size) {
  std::vector<std::byte> out;
  out.reserve(expected_size);
  size_t i = 0;
  const size_t n = input.size();
  while (i < n && out.size() < expected_size) {
    uint8_t flag = static_cast<uint8_t>(input[i++]);
    for (int bit = 0; bit < 8 && out.size() < expected_size; ++bit) {
      if (flag & (1u << bit)) {
        if (i >= n) {
          return Status::Corruption("lzss: truncated literal");
        }
        out.push_back(input[i++]);
      } else {
        if (i + 1 >= n) {
          return Status::Corruption("lzss: truncated match token");
        }
        const uint16_t token =
            static_cast<uint16_t>(static_cast<uint8_t>(input[i])) |
            (static_cast<uint16_t>(static_cast<uint8_t>(input[i + 1])) << 8);
        i += 2;
        const size_t dist = (token >> 4) + 1;
        const size_t len = (token & 0xF) + kMinMatch;
        if (dist > out.size()) {
          return Status::Corruption("lzss: match distance before stream start");
        }
        for (size_t k = 0; k < len; ++k) {
          out.push_back(out[out.size() - dist]);
        }
      }
    }
  }
  if (out.size() != expected_size) {
    return Status::Corruption("lzss: decompressed size mismatch");
  }
  return out;
}

}  // namespace invfs
