// Byte-level encode/decode helpers. All on-page and on-wire integers are
// little-endian, encoded explicitly so the format is architecture-independent.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace invfs {

inline void PutU16(std::byte* p, uint16_t v) {
  p[0] = std::byte{static_cast<uint8_t>(v)};
  p[1] = std::byte{static_cast<uint8_t>(v >> 8)};
}
inline void PutU32(std::byte* p, uint32_t v) {
  PutU16(p, static_cast<uint16_t>(v));
  PutU16(p + 2, static_cast<uint16_t>(v >> 16));
}
inline void PutU64(std::byte* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}
inline uint16_t GetU16(const std::byte* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8);
}
inline uint32_t GetU32(const std::byte* p) {
  return static_cast<uint32_t>(GetU16(p)) |
         (static_cast<uint32_t>(GetU16(p + 2)) << 16);
}
inline uint64_t GetU64(const std::byte* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

// Appending writer used by the RPC marshalling layer and tuple encoder.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(std::byte{v}); }
  void U16(uint16_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 2);
    PutU16(buf_.data() + n, v);
  }
  void U32(uint32_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 4);
    PutU32(buf_.data() + n, v);
  }
  void U64(uint64_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 8);
    PutU64(buf_.data() + n, v);
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bytes(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  // Length-prefixed string / blob.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }
  void Blob(std::span<const std::byte> data) {
    U32(static_cast<uint32_t>(data.size()));
    Bytes(data);
  }

  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

// Sequential reader over a byte span. Reads past the end return zeros and set
// a sticky error flag the caller checks once at the end of decoding.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = GetU16(data_.data() + pos_);
    pos_ += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = GetU32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = GetU64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<std::byte> Blob() {
    uint32_t len = U32();
    if (!Need(len)) return {};
    std::vector<std::byte> b(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return b;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace invfs
