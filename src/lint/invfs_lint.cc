// invfs_lint: project-specific concurrency-invariant checker.
//
// Clang's thread safety analysis proves that guarded fields are accessed
// under their locks, but five invariants of this engine live outside its
// vocabulary; this tool enforces them with a token-level scan so the check
// runs on every toolchain (it needs no clang and no compile database):
//
//   naked-mutex          Outside src/util/mutex.h, code must use the
//                        annotated invfs::Mutex/MutexLock/CondVar wrappers.
//                        A raw std::mutex (or lock_guard, unique_lock,
//                        scoped_lock, shared_mutex, condition_variable, or
//                        an #include of their headers) is invisible to the
//                        thread safety analysis, so locking discipline on it
//                        is unchecked — forbidden.
//
//   shard-lock-io        A thread holding a buffer-pool *shard* mutex (a
//                        MutexLock on an expression ending in `.mu` or
//                        `->mu`; member mutexes are spelled `mu_`) must not
//                        reach the device layer. Device I/O belongs under
//                        io_mu_, which orders strictly before every shard
//                        mutex; I/O under a shard mutex inverts that order
//                        and stalls the pool's hit path behind a disk.
//
//   cv-wait-extra-lock   CondVar::Wait releases exactly one designated mutex
//                        while sleeping. Waiting with a second MutexLock
//                        live keeps that other mutex held across the sleep —
//                        a deadlock seed the analysis cannot flag because
//                        each scoped lock is individually well-formed.
//
//   crash-point-placement  CrashPointRegistry::Hit sites define the torture
//                        harness' crash surface. Every site must name a
//                        point from the catalog in crash_points.h and live
//                        in one of the write-boundary files (commit_log.cc,
//                        buffer_pool.cc, heap.cc, btree.cc); a typo'd name
//                        or a Hit in random code silently shrinks or
//                        distorts the torture sweep.
//
//   span-raii            Outside src/obs/span.{h,cc}, spans begin and end
//                        only through the ScopedSpan RAII helper. A raw
//                        RecordSpan() call can publish a record with no
//                        matching context save/restore, and touching the
//                        thread-local ids (t_trace_id/t_span_id) directly
//                        can corrupt the current-span context for every
//                        span opened later on that thread.
//
// Suppression: a comment `invfs-lint: allow(<rule>)` on the same line (or
// the line above) waives that rule for that line. Fixture mode for the lint
// self-tests: --expect-fail=<rule> exits 0 iff the scan finds at least one
// violation of exactly that rule.
//
// Usage: invfs_lint [--expect-fail=<rule>] <file-or-directory>...

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Token {
  enum class Kind { kIdent, kString, kPunct };
  Kind kind;
  std::string text;  // identifier/punct spelling, or string literal contents
  int line;
};

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

const std::set<std::string> kForbiddenStdSync = {
    "mutex",          "timed_mutex",       "recursive_mutex",
    "shared_mutex",   "recursive_timed_mutex",
    "lock_guard",     "unique_lock",       "scoped_lock",
    "shared_lock",    "condition_variable", "condition_variable_any",
};

const std::set<std::string> kForbiddenIncludes = {
    "mutex", "condition_variable", "shared_mutex"};

// Calls that reach the device layer (or are documented REQUIRES(io_mu_)
// buffer-pool I/O helpers). Forbidden while a shard mutex is held.
const std::set<std::string> kIoCalls = {
    "ReadBlock", "WriteBlock",  "CreateRelation", "DropRelation",
    "WriteFrame", "FlushFrames", "EvictOne",      "WriteLogBlock",
};

// Keep in sync with the catalog comment in src/fault/crash_points.h.
const std::set<std::string> kCrashPoints = {
    "commitlog.pre_flush", "commitlog.mid_batch", "commitlog.post_flush",
    "buffer.write_back",   "buffer.eviction",     "heap.insert",
    "btree.split",
};

const std::set<std::string> kCrashPointFiles = {
    "commit_log.cc", "buffer_pool.cc", "heap.cc", "btree.cc"};

// Files exempt from naked-mutex: the annotated wrappers themselves.
bool IsMutexWrapperFile(const std::string& path) {
  return path.size() >= 12 &&
         path.compare(path.size() - 12, 12, "util/mutex.h") == 0;
}

bool IsCrashPointHeader(const std::string& path) {
  return path.find("crash_points.h") != std::string::npos;
}

// Files exempt from span-raii: the span layer itself, where RecordSpan and
// the thread-local context are defined and maintained.
bool IsSpanFile(const std::string& path) {
  return path.find("obs/span.h") != std::string::npos ||
         path.find("obs/span.cc") != std::string::npos;
}

// Scans one file into tokens, recording `invfs-lint: allow(rule)` comment
// directives per line as it goes.
class Scanner {
 public:
  Scanner(const std::string& src, std::map<int, std::set<std::string>>* allows)
      : src_(src), allows_(allows) {}

  std::vector<Token> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = src_.size();
    while (i < n) {
      const char c = src_[i];
      if (c == '\n') {
        ++line_;
        ++i;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < n && src_[i + 1] == '/') {
        const size_t start = i;
        while (i < n && src_[i] != '\n') {
          ++i;
        }
        NoteAllows(src_.substr(start, i - start), line_);
        continue;
      }
      if (c == '/' && i + 1 < n && src_[i + 1] == '*') {
        const size_t start = i;
        const int start_line = line_;
        i += 2;
        while (i + 1 < n && !(src_[i] == '*' && src_[i + 1] == '/')) {
          if (src_[i] == '\n') {
            ++line_;
          }
          ++i;
        }
        i = std::min(n, i + 2);
        NoteAllows(src_.substr(start, i - start), start_line);
        continue;
      }
      if (c == '"') {
        std::string value;
        ++i;
        while (i < n && src_[i] != '"') {
          if (src_[i] == '\\' && i + 1 < n) {
            value += src_[i];
            value += src_[i + 1];
            i += 2;
            continue;
          }
          if (src_[i] == '\n') {
            ++line_;  // unterminated; tolerate
          }
          value += src_[i];
          ++i;
        }
        ++i;  // closing quote
        out.push_back({Token::Kind::kString, value, line_});
        continue;
      }
      if (c == '\'') {
        ++i;
        while (i < n && src_[i] != '\'') {
          if (src_[i] == '\\' && i + 1 < n) {
            i += 2;
            continue;
          }
          ++i;
        }
        ++i;
        continue;  // char literals carry no lint signal
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(src_[i])) ||
                         src_[i] == '_')) {
          ++i;
        }
        out.push_back({Token::Kind::kIdent, src_.substr(start, i - start), line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        while (i < n && (std::isalnum(static_cast<unsigned char>(src_[i])) ||
                         src_[i] == '.' || src_[i] == '\'')) {
          ++i;  // numbers (incl. hex/float/digit separators) carry no signal
        }
        continue;
      }
      // Two-char puncts the rules care about.
      if (c == ':' && i + 1 < n && src_[i + 1] == ':') {
        out.push_back({Token::Kind::kPunct, "::", line_});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < n && src_[i + 1] == '>') {
        out.push_back({Token::Kind::kPunct, "->", line_});
        i += 2;
        continue;
      }
      out.push_back({Token::Kind::kPunct, std::string(1, c), line_});
      ++i;
    }
    return out;
  }

 private:
  void NoteAllows(const std::string& comment, int line) {
    size_t pos = 0;
    while ((pos = comment.find("invfs-lint: allow(", pos)) != std::string::npos) {
      const size_t open = pos + 18;
      const size_t close = comment.find(')', open);
      if (close == std::string::npos) {
        break;
      }
      const std::string rule = comment.substr(open, close - open);
      // The directive covers its own line and the next source line, so it
      // works both trailing and as a standalone comment line.
      (*allows_)[line].insert(rule);
      (*allows_)[line + 1].insert(rule);
      pos = close;
    }
  }

  const std::string& src_;
  std::map<int, std::set<std::string>>* allows_;
  int line_ = 1;
};

class Linter {
 public:
  explicit Linter(std::vector<Finding>* findings) : findings_(findings) {}

  void LintFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      findings_->push_back({path, 0, "io", "cannot read file"});
      return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string src = ss.str();

    std::map<int, std::set<std::string>> allows;
    std::vector<Token> toks = Scanner(src, &allows).Tokenize();

    const std::string base = std::filesystem::path(path).filename().string();
    // A MutexLock scope live at the current brace depth.
    struct LockScope {
      int depth;
      bool shard;
      std::string expr;
      int line;
    };
    std::vector<LockScope> locks;
    int depth = 0;

    auto allowed = [&](int line, const std::string& rule) {
      auto it = allows.find(line);
      return it != allows.end() && it->second.count(rule) != 0;
    };
    auto report = [&](int line, const std::string& rule, std::string msg) {
      if (!allowed(line, rule)) {
        findings_->push_back({path, line, rule, std::move(msg)});
      }
    };
    auto ident = [&](size_t i, const char* text) {
      return i < toks.size() && toks[i].kind == Token::Kind::kIdent &&
             toks[i].text == text;
    };
    auto punct = [&](size_t i, const char* text) {
      return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
             toks[i].text == text;
    };

    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "{") {
          ++depth;
        } else if (t.text == "}") {
          --depth;
          while (!locks.empty() && locks.back().depth > depth) {
            locks.pop_back();
          }
        }
        continue;
      }
      if (t.kind != Token::Kind::kIdent) {
        continue;
      }

      // --- naked-mutex ---------------------------------------------------
      if (t.text == "std" && punct(i + 1, "::") && i + 2 < toks.size() &&
          toks[i + 2].kind == Token::Kind::kIdent &&
          kForbiddenStdSync.count(toks[i + 2].text) != 0 &&
          !IsMutexWrapperFile(path)) {
        report(t.line, "naked-mutex",
               "std::" + toks[i + 2].text +
                   " is invisible to the thread safety analysis; use "
                   "invfs::Mutex/MutexLock/CondVar (src/util/mutex.h)");
      }
      if (t.text == "include" && punct(i - 1, "#") && punct(i + 1, "<") &&
          i + 2 < toks.size() &&
          kForbiddenIncludes.count(toks[i + 2].text) != 0 &&
          !IsMutexWrapperFile(path)) {
        report(t.line, "naked-mutex",
               "#include <" + toks[i + 2].text +
                   "> outside src/util/mutex.h; include src/util/mutex.h");
      }

      // --- lock-scope tracking ------------------------------------------
      if (t.text == "MutexLock" && i + 2 < toks.size() &&
          toks[i + 1].kind == Token::Kind::kIdent && punct(i + 2, "(")) {
        // Capture the constructor argument up to the matching ')'.
        size_t j = i + 3;
        int paren = 1;
        std::vector<const Token*> arg;
        while (j < toks.size() && paren > 0) {
          if (punct(j, "(")) {
            ++paren;
          } else if (punct(j, ")")) {
            --paren;
          }
          if (paren > 0) {
            arg.push_back(&toks[j]);
          }
          ++j;
        }
        std::string expr;
        for (const Token* a : arg) {
          expr += a->text;
        }
        // A shard mutex is a *member named exactly `mu`* reached through an
        // object (s.mu, shard->mu); long-lived member mutexes are spelled
        // `mu_`/`io_mu_` and are not shard locks.
        bool shard = false;
        if (arg.size() >= 2 && arg.back()->kind == Token::Kind::kIdent &&
            arg.back()->text == "mu") {
          const std::string& sep = arg[arg.size() - 2]->text;
          shard = sep == "." || sep == "->";
        }
        locks.push_back({depth, shard, expr, t.line});
        i = j - 1;
        continue;
      }

      // --- shard-lock-io -------------------------------------------------
      if (kIoCalls.count(t.text) != 0 && punct(i + 1, "(")) {
        for (const LockScope& l : locks) {
          if (l.shard) {
            report(t.line, "shard-lock-io",
                   t.text + "() while holding shard mutex `" + l.expr +
                       "` (locked line " + std::to_string(l.line) +
                       "); device I/O must run under io_mu_ only");
            break;
          }
        }
      }

      // --- cv-wait-extra-lock -------------------------------------------
      if (t.text == "Wait" && (punct(i - 1, ".") || punct(i - 1, "->")) &&
          punct(i + 1, "(")) {
        if (locks.size() >= 2) {
          report(t.line, "cv-wait-extra-lock",
                 "condition wait with " + std::to_string(locks.size()) +
                     " scoped locks live (first extra: `" +
                     locks[locks.size() - 2].expr + "` line " +
                     std::to_string(locks[locks.size() - 2].line) +
                     "); Wait releases only its designated mutex");
        }
      }

      // --- span-raii -----------------------------------------------------
      if (t.text == "RecordSpan" && punct(i + 1, "(") && !IsSpanFile(path)) {
        report(t.line, "span-raii",
               "RecordSpan() outside src/obs/span.{h,cc}; begin/end spans "
               "only through the ScopedSpan RAII helper");
      }
      if ((t.text == "t_trace_id" || t.text == "t_span_id") &&
          !IsSpanFile(path)) {
        report(t.line, "span-raii",
               t.text + " (the span layer's thread-local context) touched "
                        "outside src/obs/span.{h,cc}; use ScopedSpan");
      }

      // --- crash-point-placement ----------------------------------------
      if (t.text == "CrashPointRegistry" && punct(i + 1, "::") &&
          ident(i + 2, "Hit") && punct(i + 3, "(") &&
          !IsCrashPointHeader(path)) {
        if (i + 4 < toks.size() && toks[i + 4].kind == Token::Kind::kString) {
          const std::string& name = toks[i + 4].text;
          if (kCrashPoints.count(name) == 0) {
            report(t.line, "crash-point-placement",
                   "crash point \"" + name +
                       "\" is not in the catalog (src/fault/crash_points.h)");
          }
        } else {
          report(t.line, "crash-point-placement",
                 "crash point name must be a string literal from the catalog");
        }
        if (kCrashPointFiles.count(base) == 0) {
          report(t.line, "crash-point-placement",
                 "CrashPointRegistry::Hit outside the write-boundary files (" +
                     base + "); allowed: commit_log.cc, buffer_pool.cc, "
                     "heap.cc, btree.cc");
        }
      }
    }
  }

 private:
  std::vector<Finding>* findings_;
};

bool LintableFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  std::string expect_rule;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--expect-fail=", 0) == 0) {
      expect_rule = arg.substr(14);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: invfs_lint [--expect-fail=<rule>] <file-or-dir>...\n");
      return 0;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "invfs_lint: no inputs\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    std::filesystem::path p(in);
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::recursive_directory_iterator(p)) {
        if (e.is_regular_file() && LintableFile(e.path())) {
          files.push_back(e.path().string());
        }
      }
    } else {
      files.push_back(in);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  Linter linter(&findings);
  for (const std::string& f : files) {
    linter.LintFile(f);
  }

  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  if (!expect_rule.empty()) {
    const bool hit = std::any_of(
        findings.begin(), findings.end(),
        [&](const Finding& f) { return f.rule == expect_rule; });
    if (!hit) {
      std::fprintf(stderr,
                   "invfs_lint: expected at least one [%s] violation, found "
                   "none\n",
                   expect_rule.c_str());
      return 1;
    }
    std::fprintf(stderr, "invfs_lint: [%s] violation detected as expected\n",
                 expect_rule.c_str());
    return 0;
  }

  if (!findings.empty()) {
    std::fprintf(stderr, "invfs_lint: %zu violation(s) in %zu file(s)\n",
                 findings.size(), files.size());
    return 1;
  }
  std::printf("invfs_lint: %zu files clean\n", files.size());
  return 0;
}
