#!/usr/bin/env bash
# Tier-2 correctness gate for the Inversion reproduction.
#
# Runs the full ctest suite under ASan+UBSan and under TSan (both with the
# 2PL/latch discipline instrumentation enabled), then clang-tidy over src/.
# Any sanitizer report, test failure, discipline violation, or clang-tidy
# diagnostic fails the gate.
#
# Usage:
#   scripts/check.sh            # everything
#   scripts/check.sh asan       # just the ASan+UBSan leg
#   scripts/check.sh tsan       # just the TSan leg
#   scripts/check.sh tidy       # just clang-tidy
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)
JOBS=${JOBS:-$(nproc)}
LEG=${1:-all}

run_sanitized() {
  local name=$1 preset=$2
  local dir="$ROOT/build-$name"
  echo "==> [$name] configure (INVFS_SANITIZE=$preset, INVFS_DEBUG_INVARIANTS=ON)"
  cmake -B "$dir" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DINVFS_SANITIZE="$preset" \
        -DINVFS_DEBUG_INVARIANTS=ON >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$JOBS" -- --no-print-directory
  echo "==> [$name] ctest"
  # halt_on_error makes any sanitizer report a test failure; TSan's
  # second_deadlock_stack improves lock-order reports.
  env ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
      UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "==> [$name] clean"
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==> [tidy] clang-tidy not installed; skipping (install clang-tidy to run this leg)"
    return 0
  fi
  local dir="$ROOT/build-tidy"
  echo "==> [tidy] configure (compile database)"
  cmake -B "$dir" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "==> [tidy] clang-tidy over src/ (any diagnostic fails)"
  # WarningsAsErrors: '*' in .clang-tidy turns every diagnostic into an error,
  # so a non-zero exit here is the gate failing.
  find src -name '*.cc' -print0 |
    xargs -0 -n 4 -P "$JOBS" clang-tidy -p "$dir" --quiet
  echo "==> [tidy] clean"
}

case "$LEG" in
  asan) run_sanitized asan address ;;
  tsan) run_sanitized tsan thread ;;
  tidy) run_tidy ;;
  all)
    run_sanitized asan address
    run_sanitized tsan thread
    run_tidy
    ;;
  *)
    echo "unknown leg '$LEG' (want asan, tsan, tidy, or all)" >&2
    exit 2
    ;;
esac

echo "==> check.sh: all requested legs passed"
