#!/usr/bin/env bash
# Tier-2 correctness gate for the Inversion reproduction.
#
# Runs the full ctest suite under ASan+UBSan and under TSan (both with the
# 2PL/latch discipline instrumentation enabled), then clang-tidy over src/.
# Any sanitizer report, test failure, discipline violation, or clang-tidy
# diagnostic fails the gate.
#
# Usage:
#   scripts/check.sh            # everything
#   scripts/check.sh asan       # just the ASan+UBSan leg
#   scripts/check.sh tsan       # just the TSan leg
#   scripts/check.sh tidy       # just clang-tidy
#   scripts/check.sh tsa        # invfs_lint + clang thread safety analysis
#   scripts/check.sh metrics    # just the metrics-overhead smoke gate
#   scripts/check.sh torture    # just the crash-recovery torture sweep (ASan)
#   scripts/check.sh load       # just the open-loop loadgen SLO smoke
#   scripts/check.sh net        # the network-fault sweep + faulted rpc load
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)
JOBS=${JOBS:-$(nproc)}
LEG=${1:-all}

run_sanitized() {
  local name=$1 preset=$2
  local dir="$ROOT/build-$name"
  echo "==> [$name] configure (INVFS_SANITIZE=$preset, INVFS_DEBUG_INVARIANTS=ON)"
  cmake -B "$dir" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DINVFS_SANITIZE="$preset" \
        -DINVFS_DEBUG_INVARIANTS=ON >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$JOBS" -- --no-print-directory
  echo "==> [$name] ctest"
  # halt_on_error makes any sanitizer report a test failure; TSan's
  # second_deadlock_stack improves lock-order reports.
  env ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
      UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "==> [$name] clean"
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==> [tidy] clang-tidy not installed; skipping (install clang-tidy to run this leg)"
    return 0
  fi
  local dir="$ROOT/build-tidy"
  echo "==> [tidy] configure (compile database)"
  cmake -B "$dir" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "==> [tidy] clang-tidy over src/ (any diagnostic fails)"
  # WarningsAsErrors: '*' in .clang-tidy turns every diagnostic into an error,
  # so a non-zero exit here is the gate failing.
  find src -name '*.cc' -print0 |
    xargs -0 -n 4 -P "$JOBS" clang-tidy -p "$dir" --quiet
  echo "==> [tidy] clean"
}

run_tsa() {
  # Static concurrency gate, two parts:
  #   1. invfs_lint — the project's own invariant checker (naked std sync
  #      primitives, device I/O under a shard mutex, condition waits holding
  #      extra locks, crash-point catalog/placement). Pure C++, runs on any
  #      toolchain, no excuses.
  #   2. clang -Werror=thread-safety over the whole tree, plus the negative
  #      compile-fail cases in tests/compile_fail. The analysis only exists
  #      in clang, so this half is skipped (loudly) when clang++ is missing;
  #      part 1 and the GCC build still run everywhere.
  local dir="$ROOT/build-tsa"
  echo "==> [tsa] build + run invfs_lint over src/"
  cmake -B "$dir" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$dir" -j "$JOBS" --target invfs_lint -- --no-print-directory
  "$dir/src/lint/invfs_lint" "$ROOT/src"
  echo "==> [tsa] invfs_lint self-tests (fixtures must trip their rules)"
  ctest --test-dir "$dir" -R '^lint_' --output-on-failure
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "==> [tsa] clang++ not installed; skipping thread safety analysis" \
         "(install clang to run the annotated build and compile-fail cases)"
    return 0
  fi
  local cdir="$ROOT/build-tsa-clang"
  echo "==> [tsa] clang build with -Werror=thread-safety"
  cmake -B "$cdir" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build "$cdir" -j "$JOBS" -- --no-print-directory
  echo "==> [tsa] compile-fail cases (annotation violations must not build)"
  ctest --test-dir "$cdir" -R '^compile_fail_' --output-on-failure
  echo "==> [tsa] clean"
}

run_metrics_overhead() {
  # Smoke gate on observability cost, vs a build with the instrumentation
  # compiled out (-DINVFS_NO_METRICS=ON), two benchmarks with two budgets:
  #
  #   BM_BufferHit (INVFS_METRICS_BUDGET, default 5%): the hottest
  #   instrumented loop in the engine. Its budget is tight because the hit
  #   path carries only striped counters — never a span; a span leaking into
  #   it trips this gate immediately.
  #
  #   BM_FileWriteRead (INVFS_SPAN_BUDGET, default 200%): the span-heaviest
  #   request path (p_write/p_read entry spans + latency histograms). Its
  #   bare fast path is ~200ns of buffered-chunk memcpy, while one span
  #   costs ~100ns (two steady_clock reads bound it from below), so a 5%
  #   budget is structurally impossible for *any* per-request timing; the
  #   generous budget instead catches regressions — instrumentation sneaking
  #   into a per-page or per-byte loop blows far past it.
  #
  # Median of several repetitions keeps machine noise from tripping either.
  local budget=${INVFS_METRICS_BUDGET:-5}
  local span_budget=${INVFS_SPAN_BUDGET:-200}
  local reps=${INVFS_METRICS_REPS:-7}
  local on_dir="$ROOT/build-metrics-on" off_dir="$ROOT/build-metrics-off"
  echo "==> [metrics] configure+build bench_micro (instrumented and INVFS_NO_METRICS)"
  cmake -B "$on_dir" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
        -DINVFS_NO_METRICS=OFF >/dev/null
  cmake -B "$off_dir" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
        -DINVFS_NO_METRICS=ON >/dev/null
  cmake --build "$on_dir" -j "$JOBS" --target bench_micro -- --no-print-directory
  cmake --build "$off_dir" -j "$JOBS" --target bench_micro -- --no-print-directory

  median_cpu_time() {
    # $1 = build dir, $2 = benchmark name. CSV rows:
    # name,iterations,real_time,cpu_time,... — pick the *_median aggregate
    # row's cpu_time.
    "$1/bench/bench_micro" --benchmark_filter="^$2\$" \
        --benchmark_repetitions="$reps" --benchmark_report_aggregates_only=true \
        --benchmark_format=csv 2>/dev/null |
      awk -F, -v row="\"$2_median\"" '$1 == row { print $4 }'
  }

  gate_benchmark() {
    # Alternate the two binaries over several passes and keep each one's best
    # median: machine noise (e.g. the build that just saturated every core)
    # inflates both, and the minimum is the stable estimate of the true cost.
    local bench=$1 budget=$2
    echo "==> [metrics] run $bench (3 alternating passes, $reps repetitions each)"
    local on_ns="" off_ns="" pass v
    for pass in 1 2 3; do
      v=$(median_cpu_time "$on_dir" "$bench")
      on_ns=$(awk -v a="$on_ns" -v b="$v" 'BEGIN { print (a == "" || b+0 < a+0) ? b : a }')
      v=$(median_cpu_time "$off_dir" "$bench")
      off_ns=$(awk -v a="$off_ns" -v b="$v" 'BEGIN { print (a == "" || b+0 < a+0) ? b : a }')
    done
    if [[ -z "$on_ns" || -z "$off_ns" ]]; then
      echo "==> [metrics] FAILED: could not parse $bench output" >&2
      exit 1
    fi
    echo "==> [metrics] $bench median cpu_time: instrumented=${on_ns}ns bare=${off_ns}ns"
    awk -v on="$on_ns" -v off="$off_ns" -v budget="$budget" -v bench="$bench" 'BEGIN {
      pct = (on / off - 1) * 100
      printf "==> [metrics] %s overhead: %.2f%% (budget %s%%)\n", bench, pct, budget
      exit (pct > budget) ? 1 : 0
    }' || { echo "==> [metrics] FAILED: $bench instrumentation overhead over budget" >&2; exit 1; }
  }

  gate_benchmark BM_BufferHit "$budget"
  gate_benchmark BM_FileWriteRead "$span_budget"
}

run_torture() {
  # Crash-recovery torture sweep under ASan: a fixed seed and scaled-up
  # workload enumerate ~200 crash schedules (every crash-point occurrence in
  # the budget plus a device-write sweep); each one snapshots the halted
  # image, recovers it, runs the structural checker, and verifies the
  # acked/unacked transaction oracle. Deterministic: a failure reproduces
  # with the printed schedule name.
  local dir="$ROOT/build-asan"
  echo "==> [torture] configure+build invfs_torture (INVFS_SANITIZE=address)"
  cmake -B "$dir" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DINVFS_SANITIZE=address \
        -DINVFS_DEBUG_INVARIANTS=ON >/dev/null
  cmake --build "$dir" -j "$JOBS" --target invfs_torture -- --no-print-directory
  echo "==> [torture] main sweep (seed 1337, ~170 schedules)"
  env ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
      "$dir/src/fault/invfs_torture" \
        --seed 1337 --txns 60 --files 16 --buffers 20 \
        --occurrences 8 --write-schedules 120
  echo "==> [torture] create-heavy sweep (seed 1338, reaches btree.split)"
  env ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
      "$dir/src/fault/invfs_torture" \
        --seed 1338 --txns 300 --files 400 --occurrences 2 --no-write-sweep
  echo "==> [torture] clean"
}

run_load() {
  # Open-loop load observatory smoke: the builtin four-tenant mix at its 1x
  # size, fixed seed, ~5 sim seconds. --check makes invfs_loadgen exit
  # non-zero if any per-tenant load objective reports VIOLATED or the span
  # ring dropped records — so a latency regression in the engine, a broken
  # tenant behavior, or an undersized default ring all fail this gate. The
  # baseline mix offers ~0.35 utilization, far from saturation: a VIOLATED
  # verdict here is a real regression, not load-test noise.
  local dir="$ROOT/build-load"
  echo "==> [load] configure+build invfs_loadgen (Release)"
  cmake -B "$dir" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target invfs_loadgen -- --no-print-directory
  echo "==> [load] builtin mix, seed 42, 5 sim seconds, --check"
  "$dir/src/load/invfs_loadgen" --seconds 5 --seed 42 --check
}

run_net() {
  # Unreliable-network gate, two halves:
  #
  #   1. invfs_torture --net-faults — the at-most-once sweep: every wire
  #      fault kind (request/response drop, duplicate delivery, response
  #      truncation, connection reset) crossed with occurrence positions over
  #      a recorded RPC workload. Each schedule must leave acked ops applied
  #      exactly once, failed ops invisible, and no orphaned locks or
  #      transactions. Deterministic: a failure replays by its printed name.
  #
  #   2. invfs_loadgen --transport rpc --net-drop 0.01 --check — the builtin
  #      four-tenant fleet on the priced wire with 1% frame loss. --check
  #      fails on any op error (a wire fault leaking through retry + DRC),
  #      any SLO violation, or span-ring drops. The p99 overrides account for
  #      the RPC protocol cost plus retry timeouts — the builtin targets are
  #      calibrated for the in-process path.
  local dir="$ROOT/build-load"
  echo "==> [net] configure+build invfs_torture + invfs_loadgen (Release)"
  cmake -B "$dir" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target invfs_torture invfs_loadgen \
        -- --no-print-directory
  echo "==> [net] at-most-once sweep (seed 4242)"
  "$dir/src/fault/invfs_torture" --net-faults --seed 4242
  echo "==> [net] rpc fleet with 1% drop, seed 42, 5 sim seconds, --check"
  "$dir/src/load/invfs_loadgen" --transport rpc --net-drop 0.01 \
      --seconds 5 --seed 42 --check \
      --profile mail:p99=4000000 --profile analytics:p99=5000000 \
      --profile audit:p99=3000000 --profile archive:p99=6000000
}

case "$LEG" in
  asan) run_sanitized asan address ;;
  tsan) run_sanitized tsan thread ;;
  tidy) run_tidy ;;
  tsa) run_tsa ;;
  metrics) run_metrics_overhead ;;
  torture) run_torture ;;
  load) run_load ;;
  net) run_net ;;
  all)
    run_sanitized asan address
    run_sanitized tsan thread
    run_tidy
    run_tsa
    run_metrics_overhead
    run_torture
    run_load
    run_net
    ;;
  *)
    echo "unknown leg '$LEG' (want asan, tsan, tidy, tsa, metrics, torture, load, net, or all)" >&2
    exit 2
    ;;
esac

echo "==> check.sh: all requested legs passed"
