# Empty dependencies file for timetravel_recovery.
# This may be replaced when dependencies are built.
