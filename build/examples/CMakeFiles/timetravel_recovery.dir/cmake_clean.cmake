file(REMOVE_RECURSE
  "CMakeFiles/timetravel_recovery.dir/timetravel_recovery.cpp.o"
  "CMakeFiles/timetravel_recovery.dir/timetravel_recovery.cpp.o.d"
  "timetravel_recovery"
  "timetravel_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timetravel_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
