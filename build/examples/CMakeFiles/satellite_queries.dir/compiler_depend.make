# Empty compiler generated dependencies file for satellite_queries.
# This may be replaced when dependencies are built.
