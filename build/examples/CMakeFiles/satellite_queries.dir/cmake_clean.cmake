file(REMOVE_RECURSE
  "CMakeFiles/satellite_queries.dir/satellite_queries.cpp.o"
  "CMakeFiles/satellite_queries.dir/satellite_queries.cpp.o.d"
  "satellite_queries"
  "satellite_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
