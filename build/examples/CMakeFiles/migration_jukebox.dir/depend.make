# Empty dependencies file for migration_jukebox.
# This may be replaced when dependencies are built.
