file(REMOVE_RECURSE
  "CMakeFiles/migration_jukebox.dir/migration_jukebox.cpp.o"
  "CMakeFiles/migration_jukebox.dir/migration_jukebox.cpp.o.d"
  "migration_jukebox"
  "migration_jukebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_jukebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
