# Empty compiler generated dependencies file for bench_abl_index.
# This may be replaced when dependencies are built.
