file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_index.dir/bench_abl_index.cc.o"
  "CMakeFiles/bench_abl_index.dir/bench_abl_index.cc.o.d"
  "bench_abl_index"
  "bench_abl_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
