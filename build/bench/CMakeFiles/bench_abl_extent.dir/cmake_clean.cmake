file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_extent.dir/bench_abl_extent.cc.o"
  "CMakeFiles/bench_abl_extent.dir/bench_abl_extent.cc.o.d"
  "bench_abl_extent"
  "bench_abl_extent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_extent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
