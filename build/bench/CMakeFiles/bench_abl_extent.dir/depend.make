# Empty dependencies file for bench_abl_extent.
# This may be replaced when dependencies are built.
