# Empty compiler generated dependencies file for bench_abl_presto.
# This may be replaced when dependencies are built.
