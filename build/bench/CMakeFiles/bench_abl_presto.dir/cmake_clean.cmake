file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_presto.dir/bench_abl_presto.cc.o"
  "CMakeFiles/bench_abl_presto.dir/bench_abl_presto.cc.o.d"
  "bench_abl_presto"
  "bench_abl_presto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_presto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
