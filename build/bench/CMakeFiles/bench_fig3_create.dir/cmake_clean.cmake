file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_create.dir/bench_fig3_create.cc.o"
  "CMakeFiles/bench_fig3_create.dir/bench_fig3_create.cc.o.d"
  "bench_fig3_create"
  "bench_fig3_create.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_create.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
