# Empty dependencies file for bench_fig3_create.
# This may be replaced when dependencies are built.
