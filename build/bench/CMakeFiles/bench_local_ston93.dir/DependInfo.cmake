
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_local_ston93.cc" "bench/CMakeFiles/bench_local_ston93.dir/bench_local_ston93.cc.o" "gcc" "bench/CMakeFiles/bench_local_ston93.dir/bench_local_ston93.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/inv_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/inv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/inversion/CMakeFiles/inv_inversion.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/inv_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/inv_query.dir/DependInfo.cmake"
  "/root/repo/build/src/vacuum/CMakeFiles/inv_vacuum.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/inv_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/inv_access.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/inv_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/inv_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/inv_device.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/inv_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/inv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
