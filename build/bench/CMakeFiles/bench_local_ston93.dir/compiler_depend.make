# Empty compiler generated dependencies file for bench_local_ston93.
# This may be replaced when dependencies are built.
