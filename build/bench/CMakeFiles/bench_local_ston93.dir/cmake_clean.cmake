file(REMOVE_RECURSE
  "CMakeFiles/bench_local_ston93.dir/bench_local_ston93.cc.o"
  "CMakeFiles/bench_local_ston93.dir/bench_local_ston93.cc.o.d"
  "bench_local_ston93"
  "bench_local_ston93.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_ston93.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
