file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_protocol.dir/bench_abl_protocol.cc.o"
  "CMakeFiles/bench_abl_protocol.dir/bench_abl_protocol.cc.o.d"
  "bench_abl_protocol"
  "bench_abl_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
