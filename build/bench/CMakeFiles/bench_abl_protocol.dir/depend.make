# Empty dependencies file for bench_abl_protocol.
# This may be replaced when dependencies are built.
