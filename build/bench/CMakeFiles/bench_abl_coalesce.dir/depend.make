# Empty dependencies file for bench_abl_coalesce.
# This may be replaced when dependencies are built.
