file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_coalesce.dir/bench_abl_coalesce.cc.o"
  "CMakeFiles/bench_abl_coalesce.dir/bench_abl_coalesce.cc.o.d"
  "bench_abl_coalesce"
  "bench_abl_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
