file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_compress.dir/bench_abl_compress.cc.o"
  "CMakeFiles/bench_abl_compress.dir/bench_abl_compress.cc.o.d"
  "bench_abl_compress"
  "bench_abl_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
