# Empty dependencies file for bench_abl_compress.
# This may be replaced when dependencies are built.
