# Empty dependencies file for bench_abl_buffers.
# This may be replaced when dependencies are built.
