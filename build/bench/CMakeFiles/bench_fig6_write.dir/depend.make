# Empty dependencies file for bench_fig6_write.
# This may be replaced when dependencies are built.
