# Empty compiler generated dependencies file for bench_fig4_randbyte.
# This may be replaced when dependencies are built.
