file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_randbyte.dir/bench_fig4_randbyte.cc.o"
  "CMakeFiles/bench_fig4_randbyte.dir/bench_fig4_randbyte.cc.o.d"
  "bench_fig4_randbyte"
  "bench_fig4_randbyte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_randbyte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
