# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("storage")
subdirs("device")
subdirs("buffer")
subdirs("txn")
subdirs("access")
subdirs("catalog")
subdirs("query")
subdirs("vacuum")
subdirs("rules")
subdirs("inversion")
subdirs("net")
subdirs("nfs")
subdirs("harness")
