file(REMOVE_RECURSE
  "CMakeFiles/inv_rules.dir/rules.cc.o"
  "CMakeFiles/inv_rules.dir/rules.cc.o.d"
  "libinv_rules.a"
  "libinv_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
