file(REMOVE_RECURSE
  "libinv_rules.a"
)
