# Empty dependencies file for inv_rules.
# This may be replaced when dependencies are built.
