# Empty dependencies file for inv_buffer.
# This may be replaced when dependencies are built.
