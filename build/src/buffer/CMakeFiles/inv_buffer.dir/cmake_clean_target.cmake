file(REMOVE_RECURSE
  "libinv_buffer.a"
)
