file(REMOVE_RECURSE
  "CMakeFiles/inv_buffer.dir/buffer_pool.cc.o"
  "CMakeFiles/inv_buffer.dir/buffer_pool.cc.o.d"
  "libinv_buffer.a"
  "libinv_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
