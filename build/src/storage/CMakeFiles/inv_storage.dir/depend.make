# Empty dependencies file for inv_storage.
# This may be replaced when dependencies are built.
