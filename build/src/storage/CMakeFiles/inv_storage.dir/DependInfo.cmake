
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/inv_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/inv_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/inv_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/inv_storage.dir/tuple.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/inv_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/inv_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/inv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
