file(REMOVE_RECURSE
  "libinv_storage.a"
)
