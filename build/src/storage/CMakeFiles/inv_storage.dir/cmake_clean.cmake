file(REMOVE_RECURSE
  "CMakeFiles/inv_storage.dir/page.cc.o"
  "CMakeFiles/inv_storage.dir/page.cc.o.d"
  "CMakeFiles/inv_storage.dir/tuple.cc.o"
  "CMakeFiles/inv_storage.dir/tuple.cc.o.d"
  "CMakeFiles/inv_storage.dir/value.cc.o"
  "CMakeFiles/inv_storage.dir/value.cc.o.d"
  "libinv_storage.a"
  "libinv_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
