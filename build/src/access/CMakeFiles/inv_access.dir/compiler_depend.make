# Empty compiler generated dependencies file for inv_access.
# This may be replaced when dependencies are built.
