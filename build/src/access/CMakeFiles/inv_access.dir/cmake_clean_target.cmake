file(REMOVE_RECURSE
  "libinv_access.a"
)
