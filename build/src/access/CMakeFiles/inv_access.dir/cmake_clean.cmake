file(REMOVE_RECURSE
  "CMakeFiles/inv_access.dir/btree.cc.o"
  "CMakeFiles/inv_access.dir/btree.cc.o.d"
  "CMakeFiles/inv_access.dir/heap.cc.o"
  "CMakeFiles/inv_access.dir/heap.cc.o.d"
  "CMakeFiles/inv_access.dir/key_codec.cc.o"
  "CMakeFiles/inv_access.dir/key_codec.cc.o.d"
  "libinv_access.a"
  "libinv_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
