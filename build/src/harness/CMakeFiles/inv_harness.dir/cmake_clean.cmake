file(REMOVE_RECURSE
  "CMakeFiles/inv_harness.dir/paper_benchmark.cc.o"
  "CMakeFiles/inv_harness.dir/paper_benchmark.cc.o.d"
  "CMakeFiles/inv_harness.dir/worlds.cc.o"
  "CMakeFiles/inv_harness.dir/worlds.cc.o.d"
  "libinv_harness.a"
  "libinv_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
