# Empty compiler generated dependencies file for inv_harness.
# This may be replaced when dependencies are built.
