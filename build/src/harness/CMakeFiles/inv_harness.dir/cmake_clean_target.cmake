file(REMOVE_RECURSE
  "libinv_harness.a"
)
