file(REMOVE_RECURSE
  "CMakeFiles/inv_device.dir/block_store.cc.o"
  "CMakeFiles/inv_device.dir/block_store.cc.o.d"
  "CMakeFiles/inv_device.dir/device.cc.o"
  "CMakeFiles/inv_device.dir/device.cc.o.d"
  "libinv_device.a"
  "libinv_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
