
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/block_store.cc" "src/device/CMakeFiles/inv_device.dir/block_store.cc.o" "gcc" "src/device/CMakeFiles/inv_device.dir/block_store.cc.o.d"
  "/root/repo/src/device/device.cc" "src/device/CMakeFiles/inv_device.dir/device.cc.o" "gcc" "src/device/CMakeFiles/inv_device.dir/device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/inv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
