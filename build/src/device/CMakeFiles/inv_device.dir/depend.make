# Empty dependencies file for inv_device.
# This may be replaced when dependencies are built.
