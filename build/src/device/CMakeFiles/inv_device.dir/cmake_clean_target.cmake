file(REMOVE_RECURSE
  "libinv_device.a"
)
