# CMake generated Testfile for 
# Source directory: /root/repo/src/inversion
# Build directory: /root/repo/build/src/inversion
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
