# Empty compiler generated dependencies file for inv_inversion.
# This may be replaced when dependencies are built.
