file(REMOVE_RECURSE
  "CMakeFiles/inv_inversion.dir/inv_fs.cc.o"
  "CMakeFiles/inv_inversion.dir/inv_fs.cc.o.d"
  "CMakeFiles/inv_inversion.dir/inv_functions.cc.o"
  "CMakeFiles/inv_inversion.dir/inv_functions.cc.o.d"
  "CMakeFiles/inv_inversion.dir/inv_session.cc.o"
  "CMakeFiles/inv_inversion.dir/inv_session.cc.o.d"
  "libinv_inversion.a"
  "libinv_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
