file(REMOVE_RECURSE
  "libinv_inversion.a"
)
