# Empty dependencies file for inv_net.
# This may be replaced when dependencies are built.
