# Empty compiler generated dependencies file for inv_net.
# This may be replaced when dependencies are built.
