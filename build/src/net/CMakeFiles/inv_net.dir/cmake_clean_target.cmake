file(REMOVE_RECURSE
  "libinv_net.a"
)
