file(REMOVE_RECURSE
  "CMakeFiles/inv_net.dir/nfs_gateway.cc.o"
  "CMakeFiles/inv_net.dir/nfs_gateway.cc.o.d"
  "CMakeFiles/inv_net.dir/rpc.cc.o"
  "CMakeFiles/inv_net.dir/rpc.cc.o.d"
  "libinv_net.a"
  "libinv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
