# Empty dependencies file for inv_txn.
# This may be replaced when dependencies are built.
