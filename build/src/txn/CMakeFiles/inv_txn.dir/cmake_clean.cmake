file(REMOVE_RECURSE
  "CMakeFiles/inv_txn.dir/commit_log.cc.o"
  "CMakeFiles/inv_txn.dir/commit_log.cc.o.d"
  "CMakeFiles/inv_txn.dir/lock_manager.cc.o"
  "CMakeFiles/inv_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/inv_txn.dir/txn_manager.cc.o"
  "CMakeFiles/inv_txn.dir/txn_manager.cc.o.d"
  "libinv_txn.a"
  "libinv_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
