file(REMOVE_RECURSE
  "libinv_txn.a"
)
