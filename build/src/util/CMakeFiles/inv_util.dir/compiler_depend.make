# Empty compiler generated dependencies file for inv_util.
# This may be replaced when dependencies are built.
