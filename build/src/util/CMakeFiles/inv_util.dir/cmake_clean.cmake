file(REMOVE_RECURSE
  "CMakeFiles/inv_util.dir/crc32.cc.o"
  "CMakeFiles/inv_util.dir/crc32.cc.o.d"
  "CMakeFiles/inv_util.dir/logging.cc.o"
  "CMakeFiles/inv_util.dir/logging.cc.o.d"
  "CMakeFiles/inv_util.dir/lzss.cc.o"
  "CMakeFiles/inv_util.dir/lzss.cc.o.d"
  "CMakeFiles/inv_util.dir/status.cc.o"
  "CMakeFiles/inv_util.dir/status.cc.o.d"
  "libinv_util.a"
  "libinv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
