file(REMOVE_RECURSE
  "libinv_util.a"
)
