# Empty compiler generated dependencies file for inv_catalog.
# This may be replaced when dependencies are built.
