file(REMOVE_RECURSE
  "libinv_catalog.a"
)
