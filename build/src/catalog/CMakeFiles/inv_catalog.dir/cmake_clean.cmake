file(REMOVE_RECURSE
  "CMakeFiles/inv_catalog.dir/catalog.cc.o"
  "CMakeFiles/inv_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/inv_catalog.dir/database.cc.o"
  "CMakeFiles/inv_catalog.dir/database.cc.o.d"
  "libinv_catalog.a"
  "libinv_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
