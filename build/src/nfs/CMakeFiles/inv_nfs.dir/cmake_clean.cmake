file(REMOVE_RECURSE
  "CMakeFiles/inv_nfs.dir/ffs_sim.cc.o"
  "CMakeFiles/inv_nfs.dir/ffs_sim.cc.o.d"
  "CMakeFiles/inv_nfs.dir/nfs.cc.o"
  "CMakeFiles/inv_nfs.dir/nfs.cc.o.d"
  "libinv_nfs.a"
  "libinv_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
