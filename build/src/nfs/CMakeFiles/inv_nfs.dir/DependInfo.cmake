
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfs/ffs_sim.cc" "src/nfs/CMakeFiles/inv_nfs.dir/ffs_sim.cc.o" "gcc" "src/nfs/CMakeFiles/inv_nfs.dir/ffs_sim.cc.o.d"
  "/root/repo/src/nfs/nfs.cc" "src/nfs/CMakeFiles/inv_nfs.dir/nfs.cc.o" "gcc" "src/nfs/CMakeFiles/inv_nfs.dir/nfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/inv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/inv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
