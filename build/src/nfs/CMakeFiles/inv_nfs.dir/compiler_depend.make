# Empty compiler generated dependencies file for inv_nfs.
# This may be replaced when dependencies are built.
