file(REMOVE_RECURSE
  "libinv_nfs.a"
)
