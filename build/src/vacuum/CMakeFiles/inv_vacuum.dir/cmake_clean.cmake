file(REMOVE_RECURSE
  "CMakeFiles/inv_vacuum.dir/vacuum.cc.o"
  "CMakeFiles/inv_vacuum.dir/vacuum.cc.o.d"
  "libinv_vacuum.a"
  "libinv_vacuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_vacuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
