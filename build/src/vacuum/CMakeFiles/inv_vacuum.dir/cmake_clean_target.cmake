file(REMOVE_RECURSE
  "libinv_vacuum.a"
)
