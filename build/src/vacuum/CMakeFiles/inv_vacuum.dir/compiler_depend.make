# Empty compiler generated dependencies file for inv_vacuum.
# This may be replaced when dependencies are built.
