file(REMOVE_RECURSE
  "libinv_query.a"
)
