file(REMOVE_RECURSE
  "CMakeFiles/inv_query.dir/ast_print.cc.o"
  "CMakeFiles/inv_query.dir/ast_print.cc.o.d"
  "CMakeFiles/inv_query.dir/eval.cc.o"
  "CMakeFiles/inv_query.dir/eval.cc.o.d"
  "CMakeFiles/inv_query.dir/executor.cc.o"
  "CMakeFiles/inv_query.dir/executor.cc.o.d"
  "CMakeFiles/inv_query.dir/lexer.cc.o"
  "CMakeFiles/inv_query.dir/lexer.cc.o.d"
  "CMakeFiles/inv_query.dir/parser.cc.o"
  "CMakeFiles/inv_query.dir/parser.cc.o.d"
  "libinv_query.a"
  "libinv_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inv_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
