# Empty dependencies file for inv_query.
# This may be replaced when dependencies are built.
