file(REMOVE_RECURSE
  "CMakeFiles/test_database_smoke.dir/test_database_smoke.cc.o"
  "CMakeFiles/test_database_smoke.dir/test_database_smoke.cc.o.d"
  "test_database_smoke"
  "test_database_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_database_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
