# Empty dependencies file for test_database_smoke.
# This may be replaced when dependencies are built.
