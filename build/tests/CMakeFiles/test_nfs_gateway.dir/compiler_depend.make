# Empty compiler generated dependencies file for test_nfs_gateway.
# This may be replaced when dependencies are built.
