file(REMOVE_RECURSE
  "CMakeFiles/test_nfs_gateway.dir/test_nfs_gateway.cc.o"
  "CMakeFiles/test_nfs_gateway.dir/test_nfs_gateway.cc.o.d"
  "test_nfs_gateway"
  "test_nfs_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nfs_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
