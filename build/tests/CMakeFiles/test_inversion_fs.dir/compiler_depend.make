# Empty compiler generated dependencies file for test_inversion_fs.
# This may be replaced when dependencies are built.
