file(REMOVE_RECURSE
  "CMakeFiles/test_inversion_fs.dir/test_inversion_fs.cc.o"
  "CMakeFiles/test_inversion_fs.dir/test_inversion_fs.cc.o.d"
  "test_inversion_fs"
  "test_inversion_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inversion_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
