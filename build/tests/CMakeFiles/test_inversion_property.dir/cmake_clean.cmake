file(REMOVE_RECURSE
  "CMakeFiles/test_inversion_property.dir/test_inversion_property.cc.o"
  "CMakeFiles/test_inversion_property.dir/test_inversion_property.cc.o.d"
  "test_inversion_property"
  "test_inversion_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inversion_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
