# Empty compiler generated dependencies file for test_inversion_property.
# This may be replaced when dependencies are built.
