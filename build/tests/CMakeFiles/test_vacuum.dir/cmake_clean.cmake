file(REMOVE_RECURSE
  "CMakeFiles/test_vacuum.dir/test_vacuum.cc.o"
  "CMakeFiles/test_vacuum.dir/test_vacuum.cc.o.d"
  "test_vacuum"
  "test_vacuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vacuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
