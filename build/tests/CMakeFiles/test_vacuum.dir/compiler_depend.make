# Empty compiler generated dependencies file for test_vacuum.
# This may be replaced when dependencies are built.
