// Time travel + crash recovery walkthrough.
//
// Demonstrates the two headline services the paper builds on the no-overwrite
// storage manager:
//  1. fine-grained time travel — every committed state of a file stays
//     readable, an accidentally deleted file can be undeleted, and queries can
//     range over the namespace "as of" any instant;
//  2. instantaneous crash recovery — a hard crash mid-transaction needs no
//     fsck: reopening the database is recovery, and the half-done transaction
//     has simply never happened.

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/inversion/inv_fs.h"

using namespace invfs;

namespace {

Status WriteVersion(InvSession& s, const std::string& path, const std::string& body,
                    bool create) {
  INV_RETURN_IF_ERROR(s.p_begin());
  Result<int> fd = create ? s.p_creat(path) : s.p_open(path, OpenMode::kWrite);
  INV_RETURN_IF_ERROR(fd.status());
  INV_RETURN_IF_ERROR(
      s.p_write(*fd, std::as_bytes(std::span(body.data(), body.size()))).status());
  INV_RETURN_IF_ERROR(s.p_close(*fd));
  return s.p_commit();
}

Result<std::string> ReadVersion(InvSession& s, const std::string& path,
                                Timestamp as_of) {
  INV_ASSIGN_OR_RETURN(int fd, s.p_open(path, OpenMode::kRead, as_of));
  std::string out;
  char buf[512];
  for (;;) {
    INV_ASSIGN_OR_RETURN(int64_t n, s.p_read(fd, std::as_writable_bytes(std::span(buf))));
    if (n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  INV_RETURN_IF_ERROR(s.p_close(fd));
  return out;
}

Status Run() {
  StorageEnv env;  // stable storage: survives the crash below

  Timestamp v1_time = 0;
  Timestamp v2_time = 0;
  Timestamp before_rm = 0;
  {
    INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env));
    InversionFs fs(db.get());
    INV_RETURN_IF_ERROR(fs.Mount());
    INV_ASSIGN_OR_RETURN(auto s, fs.NewSession());

    // Three committed versions of a program source file.
    INV_RETURN_IF_ERROR(WriteVersion(*s, "/prog.c", "int main() { return 0; }\n",
                                     /*create=*/true));
    v1_time = db->Now();
    INV_RETURN_IF_ERROR(WriteVersion(
        *s, "/prog.c", "int main() { return 42; } /* broke it */\n", false));
    v2_time = db->Now();
    INV_RETURN_IF_ERROR(WriteVersion(
        *s, "/prog.c", "int main() { launch_missiles(); } /* much worse */\n", false));

    std::printf("=== time travel over versions of /prog.c ===\n");
    for (auto [label, t] : {std::pair{"v1", v1_time}, {"v2", v2_time},
                            {"now", kTimestampNow}}) {
      INV_ASSIGN_OR_RETURN(std::string body, ReadVersion(*s, "/prog.c", t));
      std::printf("  %-4s %s", label, body.c_str());
    }
    std::printf("  -> \"recover a working version of a program which they have"
                " changed\"\n\n");

    // Undelete.
    INV_RETURN_IF_ERROR(WriteVersion(*s, "/results.dat",
                                     "priceless experiment output\n", true));
    before_rm = db->Now();
    INV_RETURN_IF_ERROR(s->unlink("/results.dat"));
    std::printf("=== undelete via time travel ===\n");
    std::printf("  rm /results.dat done; stat now -> %s\n",
                s->stat("/results.dat").status().ToString().c_str());
    INV_ASSIGN_OR_RETURN(std::string saved, ReadVersion(*s, "/results.dat", before_rm));
    INV_RETURN_IF_ERROR(WriteVersion(*s, "/results.dat", saved, true));
    std::printf("  restored from t=%llu: \"%s\"\n\n",
                static_cast<unsigned long long>(before_rm),
                std::string(saved.begin(), saved.end() - 1).c_str());

    // Now crash mid-transaction: two of three files of a "check-in" written.
    INV_RETURN_IF_ERROR(s->p_begin());
    INV_ASSIGN_OR_RETURN(int fd1, s->p_creat("/checkin_a.c"));
    const std::string half = "half a check-in";
    INV_RETURN_IF_ERROR(
        s->p_write(fd1, std::as_bytes(std::span(half.data(), half.size()))).status());
    INV_ASSIGN_OR_RETURN(int fd2, s->p_creat("/checkin_b.c"));
    (void)fd2;
    // Force everything to "disk" so the crash can't be excused by lost RAM:
    INV_RETURN_IF_ERROR(db->buffers().FlushAll());
    std::printf("=== crash with a multi-file check-in in flight ===\n");
    s.reset();
    db->Crash();
  }

  // Recovery = reopening. No fsck, no log replay.
  {
    INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env));
    InversionFs fs(db.get());
    INV_RETURN_IF_ERROR(fs.Mount());
    INV_ASSIGN_OR_RETURN(auto s, fs.NewSession());
    std::printf("  reopened instantly; in-flight files after recovery:\n");
    std::printf("    /checkin_a.c -> %s\n",
                s->stat("/checkin_a.c").status().ToString().c_str());
    std::printf("    /checkin_b.c -> %s\n",
                s->stat("/checkin_b.c").status().ToString().c_str());
    INV_ASSIGN_OR_RETURN(std::string body, ReadVersion(*s, "/prog.c", kTimestampNow));
    std::printf("  committed data intact: /prog.c = %s", body.c_str());
    INV_ASSIGN_OR_RETURN(std::string v1, ReadVersion(*s, "/prog.c", v1_time));
    std::printf("  and history survived the crash too: v1 = %s", v1.c_str());
  }
  return Status::Ok();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "timetravel_recovery failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
