// Quickstart: mount an Inversion file system, use the paper's p_* API, make a
// transactional multi-file change, and look at the past with time travel.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <cstdio>
#include <span>
#include <string>

#include "src/inversion/inv_fs.h"

using namespace invfs;

namespace {

Status Run() {
  // A StorageEnv is the stable storage (block stores) + simulated clock.
  // Swap MemBlockStore for FileBlockStore to persist across runs.
  StorageEnv env;
  INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env));
  InversionFs fs(db.get());
  INV_RETURN_IF_ERROR(fs.Mount());
  INV_ASSIGN_OR_RETURN(auto session, fs.NewSession());

  // --- 1. transactional file creation (the paper's Figure 2 API) ----------
  INV_RETURN_IF_ERROR(session->p_begin());
  INV_RETURN_IF_ERROR(session->mkdir("/etc"));
  INV_ASSIGN_OR_RETURN(int fd, session->p_creat("/etc/passwd"));
  const std::string passwd = "root:x:0:0:/root\nmao:x:101:10:/users/mao\n";
  INV_RETURN_IF_ERROR(
      session->p_write(fd, std::as_bytes(std::span(passwd.data(), passwd.size())))
          .status());
  INV_RETURN_IF_ERROR(session->p_close(fd));
  INV_RETURN_IF_ERROR(session->p_commit());
  std::printf("created /etc/passwd (%zu bytes) transactionally\n", passwd.size());

  const Timestamp before_edit = db->Now();

  // --- 2. an update that we will look behind with time travel --------------
  INV_RETURN_IF_ERROR(session->p_begin());
  INV_ASSIGN_OR_RETURN(fd, session->p_open("/etc/passwd", OpenMode::kWrite));
  INV_RETURN_IF_ERROR(session->p_lseek(fd, 0, Whence::kEnd).status());
  const std::string extra = "guest:x:200:20:/tmp\n";
  INV_RETURN_IF_ERROR(
      session->p_write(fd, std::as_bytes(std::span(extra.data(), extra.size())))
          .status());
  INV_RETURN_IF_ERROR(session->p_close(fd));
  INV_RETURN_IF_ERROR(session->p_commit());

  auto read_all = [&](Timestamp as_of) -> Result<std::string> {
    INV_ASSIGN_OR_RETURN(int rfd, session->p_open("/etc/passwd", OpenMode::kRead, as_of));
    std::string out;
    char buf[256];
    for (;;) {
      INV_ASSIGN_OR_RETURN(int64_t n,
                           session->p_read(rfd, std::as_writable_bytes(std::span(buf))));
      if (n == 0) {
        break;
      }
      out.append(buf, static_cast<size_t>(n));
    }
    INV_RETURN_IF_ERROR(session->p_close(rfd));
    return out;
  };

  INV_ASSIGN_OR_RETURN(std::string now_contents, read_all(kTimestampNow));
  INV_ASSIGN_OR_RETURN(std::string old_contents, read_all(before_edit));
  std::printf("\ncurrent /etc/passwd has %zu lines; as of t=%llu it had %zu lines\n",
              std::count(now_contents.begin(), now_contents.end(), '\n'),
              static_cast<unsigned long long>(before_edit),
              std::count(old_contents.begin(), old_contents.end(), '\n'));

  // --- 3. an aborted transaction leaves no trace ---------------------------
  INV_RETURN_IF_ERROR(session->p_begin());
  INV_ASSIGN_OR_RETURN(fd, session->p_creat("/etc/oops"));
  INV_RETURN_IF_ERROR(session->p_close(fd));
  INV_RETURN_IF_ERROR(session->p_abort());
  std::printf("aborted creation of /etc/oops: stat -> %s\n",
              session->stat("/etc/oops").status().ToString().c_str());

  // --- 4. ad-hoc POSTQUEL over the namespace -------------------------------
  INV_ASSIGN_OR_RETURN(
      ResultSet rs,
      session->Query("retrieve (n.filename, bytes = size(n.file)) from n in naming "
                     "where n.filename != \"/\""));
  std::printf("\nretrieve (filename, size) over the file system:\n%s",
              rs.ToString().c_str());
  return Status::Ok();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
