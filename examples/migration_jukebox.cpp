// File migration across the storage hierarchy with predicate rules.
//
// The paper's device-manager switch makes files location-transparent across
// magnetic disk, NVRAM, and the Sony WORM jukebox, and its rules system is
// proposed as the migration policy engine: "When a file met the announced
// conditions, it would be moved from one location in the storage hierarchy to
// another."
//
// This example defines a POSTQUEL migration rule that sends large, cold files
// to the optical jukebox, runs the (in the paper, periodic) rule pass, and
// shows that reads remain transparent — just slower the first time, while the
// jukebox loads a platter and stages blocks onto its magnetic cache.

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/inversion/inv_fs.h"

using namespace invfs;

namespace {

Status Run() {
  StorageEnv env;
  INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env));
  InversionFs fs(db.get());
  INV_RETURN_IF_ERROR(fs.Mount());
  INV_ASSIGN_OR_RETURN(auto s, fs.NewSession());

  // A big simulation output and a small active notes file, both on disk.
  auto write_file = [&](const std::string& path, size_t bytes) -> Status {
    INV_RETURN_IF_ERROR(s->p_begin());
    INV_ASSIGN_OR_RETURN(int fd, s->p_creat(path));
    std::vector<std::byte> chunk(kInvChunkSize, std::byte{0x5E});
    for (size_t written = 0; written < bytes;) {
      const size_t n = std::min(chunk.size(), bytes - written);
      INV_RETURN_IF_ERROR(s->p_write(fd, std::span(chunk.data(), n)).status());
      written += n;
    }
    INV_RETURN_IF_ERROR(s->p_close(fd));
    return s->p_commit();
  };
  INV_RETURN_IF_ERROR(write_file("/ocean_model_1992.out", 2u << 20));
  INV_RETURN_IF_ERROR(write_file("/notes.txt", 4096));

  // Age the world: a simulated week passes without anyone touching the data.
  const Timestamp cold_line = db->Now();
  db->clock().Advance(7ull * 24 * 3600 * 1'000'000);

  // Policy, in POSTQUEL: files bigger than 1 MB not modified since the cold
  // line migrate to device 2 (the jukebox).
  INV_RETURN_IF_ERROR(
      s->Query("define rule archive_cold on fileatt where fileatt.size > 1048576 "
               "and fileatt.mtime < " +
               std::to_string(cold_line) + " do migrate 2")
          .status());
  std::printf("defined rule: size > 1MB and mtime < %llu -> migrate to jukebox\n",
              static_cast<unsigned long long>(cold_line));

  // The paper envisions a daemon applying rules periodically; run one pass.
  INV_ASSIGN_OR_RETURN(TxnId txn, db->Begin());
  auto fired = fs.ApplyMigrationRules(txn);
  if (!fired.ok()) {
    (void)db->Abort(txn);
    return fired.status();
  }
  INV_RETURN_IF_ERROR(db->Commit(txn));
  std::printf("rule pass migrated %d file(s)\n\n", *fired);

  for (const char* path : {"/ocean_model_1992.out", "/notes.txt"}) {
    INV_ASSIGN_OR_RETURN(FileStat st, s->stat(path));
    std::printf("%-24s size=%-9lld device=%u (%s)\n", path,
                static_cast<long long>(st.size), st.device,
                st.device == kDeviceJukebox ? "sony_jukebox" : "magnetic");
  }

  // Location transparency: same p_open/p_read path, now backed by optical.
  auto timed_read = [&](const char* label) -> Status {
    INV_RETURN_IF_ERROR(db->FlushCaches());
    const SimMicros t0 = db->clock().Peek();
    INV_ASSIGN_OR_RETURN(int fd, s->p_open("/ocean_model_1992.out", OpenMode::kRead));
    std::vector<std::byte> buf(kInvChunkSize);
    int64_t total = 0;
    for (;;) {
      INV_ASSIGN_OR_RETURN(int64_t n, s->p_read(fd, buf));
      if (n == 0) {
        break;
      }
      total += n;
    }
    INV_RETURN_IF_ERROR(s->p_close(fd));
    std::printf("%s: read %lld bytes in %.2f simulated seconds\n", label,
                static_cast<long long>(total), db->clock().SecondsSince(t0));
    return Status::Ok();
  };
  std::printf("\nreading the migrated file back (device switch is transparent):\n");
  // First, fully cold: destage to the platter and empty the staging cache so
  // the read pays the platter load; then again, warm from the staging cache.
  // The switch entry is an instrumentation decorator; unwrap it before
  // downcasting to the concrete device.
  auto* jukebox_dev =
      static_cast<JukeboxDevice*>(db->devices().Get(kDeviceJukebox)->Underlying());
  INV_RETURN_IF_ERROR(jukebox_dev->DropStagingCache());
  INV_RETURN_IF_ERROR(timed_read("  cold  (platter load + optical)"));
  INV_RETURN_IF_ERROR(timed_read("  warm  (magnetic staging cache) "));

  auto* jukebox =
      static_cast<JukeboxDevice*>(db->devices().Get(kDeviceJukebox)->Underlying());
  std::printf("\njukebox stats: %llu platter load(s), %llu cache hits, %llu misses\n",
              static_cast<unsigned long long>(jukebox->platter_loads()),
              static_cast<unsigned long long>(jukebox->cache_hits()),
              static_cast<unsigned long long>(jukebox->cache_misses()));
  return Status::Ok();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "migration_jukebox failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
