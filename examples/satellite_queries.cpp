// Satellite catalog: the paper's Sequoia 2000 use case.
//
// Stores synthetic Thematic Mapper-style 5-band raster images as typed files,
// registers the paper's Table 2 functions (snow, pixelcount, pixelavg,
// getband), and runs the paper's showcase query:
//
//   retrieve (snow(file), filename)
//     where filetype(file) = "tm"
//       and snow(file)/size(file) > 0.5
//       and month_of(file) = "April"
//
// The image format is our stand-in for the proprietary satellite data: a tiny
// header (width, height, bands) followed by band-major 8-bit pixels. Band 0
// is "visible"; a pixel is snow when its visible value exceeds 200 — the same
// kind of per-pixel classifier the Berkeley snow function implemented.

#include <cstdio>
#include <span>
#include <string>

#include "src/inversion/inv_fs.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

using namespace invfs;

namespace {

constexpr uint32_t kWidth = 64;
constexpr uint32_t kHeight = 64;
constexpr uint32_t kBands = 5;

std::vector<std::byte> MakeImage(double snow_fraction, uint64_t seed) {
  std::vector<std::byte> img(12 + kWidth * kHeight * kBands);
  PutU32(img.data(), kWidth);
  PutU32(img.data() + 4, kHeight);
  PutU32(img.data() + 8, kBands);
  Rng rng(seed);
  for (uint32_t band = 0; band < kBands; ++band) {
    for (uint32_t i = 0; i < kWidth * kHeight; ++i) {
      uint8_t value = static_cast<uint8_t>(rng.Uniform(180));
      if (band == 0 && rng.NextDouble() < snow_fraction) {
        value = static_cast<uint8_t>(201 + rng.Uniform(55));  // bright: snow
      }
      img[12 + band * kWidth * kHeight + i] = std::byte{value};
    }
  }
  return img;
}

// Parse header + fetch one band from raw image bytes.
struct Raster {
  uint32_t width = 0, height = 0, bands = 0;
  std::span<const std::byte> pixels;
};

Result<Raster> ParseRaster(std::span<const std::byte> bytes) {
  if (bytes.size() < 12) {
    return Status::Corruption("image too small for header");
  }
  Raster r;
  r.width = GetU32(bytes.data());
  r.height = GetU32(bytes.data() + 4);
  r.bands = GetU32(bytes.data() + 8);
  if (bytes.size() < 12 + static_cast<size_t>(r.width) * r.height * r.bands) {
    return Status::Corruption("image truncated");
  }
  r.pixels = bytes.subspan(12);
  return r;
}

// Register the Table 2 satellite functions with the data manager — this is
// the paper's "dynamically loaded user code" path, so queries run them in the
// server's address space.
Status RegisterSatelliteFunctions(InversionFs& fs, TxnId txn) {
  auto file_bytes = [&fs](const Value& arg,
                          EvalContext& ctx) -> Result<std::vector<std::byte>> {
    INV_ASSIGN_OR_RETURN(int64_t oid, arg.ToInt64());
    return fs.ReadWholeFile(static_cast<Oid>(oid), ctx.snap);
  };

  fs.registry().RegisterNative(
      "snow", [file_bytes](std::span<const Value> args,
                           EvalContext& ctx) -> Result<Value> {
        INV_ASSIGN_OR_RETURN(auto bytes, file_bytes(args[0], ctx));
        INV_ASSIGN_OR_RETURN(Raster r, ParseRaster(bytes));
        int32_t snow = 0;
        for (uint32_t i = 0; i < r.width * r.height; ++i) {
          if (static_cast<uint8_t>(r.pixels[i]) > 200) {
            ++snow;
          }
        }
        return Value::Int4(snow);
      });
  fs.registry().RegisterNative(
      "pixelcount", [file_bytes](std::span<const Value> args,
                                 EvalContext& ctx) -> Result<Value> {
        INV_ASSIGN_OR_RETURN(auto bytes, file_bytes(args[0], ctx));
        INV_ASSIGN_OR_RETURN(Raster r, ParseRaster(bytes));
        return Value::Int4(static_cast<int32_t>(r.width * r.height));
      });
  fs.registry().RegisterNative(
      "pixelavg", [file_bytes](std::span<const Value> args,
                               EvalContext& ctx) -> Result<Value> {
        INV_ASSIGN_OR_RETURN(auto bytes, file_bytes(args[0], ctx));
        INV_ASSIGN_OR_RETURN(Raster r, ParseRaster(bytes));
        uint64_t sum = 0;
        for (std::byte b : r.pixels) {
          sum += static_cast<uint8_t>(b);
        }
        return Value::Float8(static_cast<double>(sum) / r.pixels.size());
      });
  fs.registry().RegisterNative(
      "getband", [file_bytes](std::span<const Value> args,
                              EvalContext& ctx) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("getband(file, band)");
        }
        INV_ASSIGN_OR_RETURN(auto bytes, file_bytes(args[0], ctx));
        INV_ASSIGN_OR_RETURN(Raster r, ParseRaster(bytes));
        INV_ASSIGN_OR_RETURN(int64_t band, args[1].ToInt64());
        if (band < 0 || band >= r.bands) {
          return Status::InvalidArgument("no such band");
        }
        uint64_t sum = 0;
        const auto* base = r.pixels.data() + band * r.width * r.height;
        for (uint32_t i = 0; i < r.width * r.height; ++i) {
          sum += static_cast<uint8_t>(base[i]);
        }
        return Value::Float8(static_cast<double>(sum) / (r.width * r.height));
      });

  // Catalog entries so type checking + query resolution work.
  Database& db = fs.db();
  INV_RETURN_IF_ERROR(db.catalog().DefineFunction(txn, "snow", TypeId::kInt4, 1,
                                                  ProcLang::kNative, "snow").status());
  INV_RETURN_IF_ERROR(db.catalog()
                          .DefineFunction(txn, "pixelcount", TypeId::kInt4, 1,
                                          ProcLang::kNative, "pixelcount")
                          .status());
  INV_RETURN_IF_ERROR(db.catalog()
                          .DefineFunction(txn, "pixelavg", TypeId::kFloat8, 1,
                                          ProcLang::kNative, "pixelavg")
                          .status());
  INV_RETURN_IF_ERROR(db.catalog()
                          .DefineFunction(txn, "getband", TypeId::kFloat8, 2,
                                          ProcLang::kNative, "getband")
                          .status());
  return Status::Ok();
}

Status Run() {
  StorageEnv env;
  INV_ASSIGN_OR_RETURN(auto db, Database::Open(&env));
  InversionFs fs(db.get());
  INV_RETURN_IF_ERROR(fs.Mount());
  INV_ASSIGN_OR_RETURN(auto session, fs.NewSession());

  // define type tm — the paper's strong typing for satellite images.
  INV_RETURN_IF_ERROR(session->Query("define type tm").status());
  {
    INV_ASSIGN_OR_RETURN(TxnId txn, db->Begin());
    Status s = RegisterSatelliteFunctions(fs, txn);
    if (!s.ok()) {
      (void)db->Abort(txn);
      return s;
    }
    INV_RETURN_IF_ERROR(db->Commit(txn));
  }

  INV_RETURN_IF_ERROR(session->mkdir("/images"));

  // Scenes arrive over the simulated calendar (months are 30 simulated days;
  // month_of classifies by mtime — see inv_functions.cc). Write one snowy
  // March scene, three April scenes of varying cover, one snowy May scene:
  // only the snowy April ones should satisfy the paper's query.
  constexpr uint64_t kMonthMicros = 30ull * 24 * 3600 * 1'000'000;
  struct Scene {
    const char* path;
    double snow_fraction;
    uint64_t advance_months;  // clock movement before this scene lands
  };
  const Scene scenes[] = {
      {"/images/tahoe_march.tm", 0.80, 2},   // March: snowy, wrong month
      {"/images/sierra_april.tm", 0.75, 1},  // April: snowy -> match
      {"/images/mojave_april.tm", 0.02, 0},  // April: bare desert
      {"/images/shasta_april.tm", 0.60, 0},  // April: snowy -> match
      {"/images/whitney_may.tm", 0.90, 1},   // May: snowy, wrong month
  };
  CreatOptions creat;
  creat.type = "tm";
  creat.owner = "mao";
  uint64_t seed = 1;
  for (const Scene& scene : scenes) {
    db->clock().Advance(scene.advance_months * kMonthMicros);
    INV_RETURN_IF_ERROR(session->p_begin());
    INV_ASSIGN_OR_RETURN(int fd, session->p_creat(scene.path, creat));
    auto img = MakeImage(scene.snow_fraction, seed++);
    INV_RETURN_IF_ERROR(session->p_write(fd, img).status());
    INV_RETURN_IF_ERROR(session->p_close(fd));
    INV_RETURN_IF_ERROR(session->p_commit());
  }

  // Table 2-style inspection.
  INV_ASSIGN_OR_RETURN(
      ResultSet all,
      session->Query("retrieve (n.filename, type = filetype(n.file), "
                     "snowpix = snow(n.file), pixels = pixelcount(n.file), "
                     "month = month_of(n.file)) "
                     "from n in naming where filetype(n.file) = \"tm\""));
  std::printf("TM images in the file system:\n%s\n", all.ToString().c_str());

  // The paper's showcase query, near-verbatim. (Our images are 64x64x5 =
  // 20492 bytes with 4096 pixels, so >50%% snow cover is snow(file) > 2048;
  // the paper phrased it as snow(file)/size(file) > 0.5 over its own format.)
  INV_ASSIGN_OR_RETURN(
      ResultSet rs,
      session->Query("retrieve (snowpix = snow(n.file), n.filename) from n in naming "
                     "where filetype(n.file) = \"tm\" "
                     "and snow(n.file) / pixelcount(n.file) > 0.5 "
                     "and month_of(n.file) = \"April\""));
  std::printf("April images with more than 50%% snow cover:\n%s\n",
              rs.ToString().c_str());

  // Bonus: the paper's owner/dir query.
  INV_ASSIGN_OR_RETURN(
      ResultSet owned,
      session->Query("retrieve (n.filename) from n in naming "
                     "where owner(n.file) = \"mao\" and dir(n.file) = \"/images\""));
  std::printf("files owned by mao in /images:\n%s", owned.ToString().c_str());
  return Status::Ok();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "satellite_queries failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
