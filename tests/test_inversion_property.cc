// Property tests for the Inversion file layer: random operation sequences
// checked against an in-memory reference model, plus multi-session and
// history-interaction properties.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/inversion/inv_fs.h"
#include "src/util/random.h"
#include "src/vacuum/vacuum.h"

namespace invfs {
namespace {

class InvPropertyBase : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto session = fs_->NewSession();
    ASSERT_TRUE(session.ok());
    s_ = std::move(*session);
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> s_;
};

// Random writes/seeks/reads against a byte-vector reference model. Sweeps
// coalescing x compression.
struct FilePropertyParam {
  bool coalesce;
  bool compressed;
  uint64_t seed;
};

class FileProperty : public ::testing::TestWithParam<FilePropertyParam> {};

TEST_P(FileProperty, MatchesReferenceModel) {
  const FilePropertyParam param = GetParam();
  StorageEnv env;
  auto db = Database::Open(&env);
  ASSERT_TRUE(db.ok());
  InvOptions options;
  options.coalesce_writes = param.coalesce;
  InversionFs fs(db->get(), options);
  ASSERT_TRUE(fs.Mount().ok());
  auto session_or = fs.NewSession();
  ASSERT_TRUE(session_or.ok());
  InvSession& s = **session_or;

  CreatOptions creat;
  creat.compressed = param.compressed;
  ASSERT_TRUE(s.p_begin().ok());
  auto fd = s.p_creat("/model.bin", creat);
  ASSERT_TRUE(fd.ok());

  std::vector<std::byte> reference;  // the model
  Rng rng(param.seed);
  constexpr int64_t kMaxSize = 3 * kInvChunkSize + 500;

  for (int step = 0; step < 120; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 5) {
      // Random write at a random offset.
      const int64_t offset = static_cast<int64_t>(rng.Uniform(kMaxSize));
      const size_t len = 1 + rng.Uniform(5000);
      std::vector<std::byte> data(len);
      for (auto& b : data) {
        b = static_cast<std::byte>(rng.Uniform(256));
      }
      ASSERT_TRUE(s.p_lseek(*fd, offset, Whence::kSet).ok());
      auto n = s.p_write(*fd, data);
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      if (reference.size() < offset + len) {
        reference.resize(offset + len);
      }
      std::copy(data.begin(), data.end(),
                reference.begin() + static_cast<ptrdiff_t>(offset));
    } else if (action < 8) {
      // Random read, compare with the model.
      if (reference.empty()) {
        continue;
      }
      const int64_t offset = static_cast<int64_t>(rng.Uniform(reference.size()));
      const size_t len = 1 + rng.Uniform(6000);
      std::vector<std::byte> buf(len);
      ASSERT_TRUE(s.p_lseek(*fd, offset, Whence::kSet).ok());
      auto n = s.p_read(*fd, buf);
      ASSERT_TRUE(n.ok());
      const int64_t expect =
          std::min<int64_t>(static_cast<int64_t>(len),
                            static_cast<int64_t>(reference.size()) - offset);
      ASSERT_EQ(*n, expect) << "step " << step;
      EXPECT_EQ(std::memcmp(buf.data(), reference.data() + offset,
                            static_cast<size_t>(expect)),
                0)
          << "step " << step << " offset " << offset;
    } else if (action == 8) {
      // Commit and reopen a transaction mid-stream.
      ASSERT_TRUE(s.p_commit().ok());
      ASSERT_TRUE(s.p_begin().ok());
    } else {
      // fstat size agrees with the model.
      auto st = s.p_fstat(*fd);
      ASSERT_TRUE(st.ok());
      EXPECT_EQ(st->size, static_cast<int64_t>(reference.size())) << "step " << step;
    }
  }
  // Final full-content comparison after commit + cache flush (cold read).
  ASSERT_TRUE(s.p_close(*fd).ok());
  ASSERT_TRUE(s.p_commit().ok());
  ASSERT_TRUE((*db)->FlushCaches().ok());
  auto rfd = s.p_open("/model.bin", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok());
  std::vector<std::byte> all(reference.size());
  int64_t done = 0;
  while (done < static_cast<int64_t>(all.size())) {
    auto n = s.p_read(*rfd, std::span(all).subspan(static_cast<size_t>(done)));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0);
    done += *n;
  }
  EXPECT_EQ(all, reference);
  ASSERT_TRUE(s.p_close(*rfd).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, FileProperty,
    ::testing::Values(FilePropertyParam{true, false, 1},
                      FilePropertyParam{true, false, 2},
                      FilePropertyParam{false, false, 3},
                      FilePropertyParam{true, true, 4},
                      FilePropertyParam{false, true, 5},
                      FilePropertyParam{true, true, 6}),
    [](const ::testing::TestParamInfo<FilePropertyParam>& info) {
      return std::string(info.param.coalesce ? "coalesce" : "direct") +
             (info.param.compressed ? "_compressed" : "_raw") + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------- history / vacuum interplay

TEST_F(InvPropertyBase, EveryCommittedVersionRemainsReadable) {
  // Write N committed versions, each remembered with its timestamp; all must
  // remain readable, including after a vacuum pass (archive union).
  std::vector<std::pair<Timestamp, std::string>> versions;
  for (int v = 0; v < 8; ++v) {
    ASSERT_TRUE(s_->p_begin().ok());
    Result<int> fd = v == 0 ? s_->p_creat("/versioned.txt")
                            : s_->p_open("/versioned.txt", OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    std::string body = "version " + std::to_string(v) + std::string(v * 100, '.');
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(body.data(), body.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
    versions.emplace_back(db_->Now(), std::move(body));
  }

  auto check_all = [&]() {
    for (const auto& [t, body] : versions) {
      auto fd = s_->p_open("/versioned.txt", OpenMode::kRead, t);
      ASSERT_TRUE(fd.ok());
      std::vector<char> buf(body.size() + 100);
      auto n = s_->p_read(*fd, std::as_writable_bytes(std::span(buf)));
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(std::string(buf.data(), static_cast<size_t>(*n)), body)
          << "as of " << t;
      ASSERT_TRUE(s_->p_close(*fd).ok());
    }
  };
  check_all();

  // Vacuum archives the dead versions; history must still be intact.
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  auto stats = fs_->Vacuum(*txn, /*keep_history=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_GT(stats->archived, 0u);
  check_all();
}

TEST_F(InvPropertyBase, NoHistoryFilesLoseTheirPastOnVacuum) {
  CreatOptions creat;
  creat.keep_history = false;
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/scratch.dat", creat);
  ASSERT_TRUE(fd.ok());
  const std::string v1 = "v1";
  ASSERT_TRUE(s_->p_write(*fd, std::as_bytes(std::span(v1.data(), 2))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());
  const Timestamp t1 = db_->Now();

  ASSERT_TRUE(s_->p_begin().ok());
  fd = s_->p_open("/scratch.dat", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  const std::string v2 = "v2";
  ASSERT_TRUE(s_->p_write(*fd, std::as_bytes(std::span(v2.data(), 2))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());

  auto txn = db_->Begin();
  auto stats = fs_->Vacuum(*txn, true);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_GT(stats->discarded, 0u) << "no-history file versions are discarded";

  // The old version is really gone: the historical read sees nothing.
  auto old_fd = s_->p_open("/scratch.dat", OpenMode::kRead, t1);
  ASSERT_TRUE(old_fd.ok());
  std::vector<std::byte> buf(4);
  auto n = s_->p_read(*old_fd, buf);
  ASSERT_TRUE(n.ok());
  if (*n == 2) {
    EXPECT_NE(std::memcmp(buf.data(), "v1", 2), 0);
  }
  ASSERT_TRUE(s_->p_close(*old_fd).ok());
}

// ---------------------------------------------------- sessions and locking

TEST_F(InvPropertyBase, TwoSessionsIsolatedUntilCommit) {
  auto s2_or = fs_->NewSession();
  ASSERT_TRUE(s2_or.ok());
  InvSession& s2 = **s2_or;

  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/iso.txt");
  ASSERT_TRUE(fd.ok());
  const std::string data = "uncommitted";
  ASSERT_TRUE(
      s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  // Session 2 cannot see the file yet.
  EXPECT_TRUE(s2.stat("/iso.txt").status().IsNotFound());
  ASSERT_TRUE(s_->p_commit().ok());
  EXPECT_TRUE(s2.stat("/iso.txt").ok());
}

TEST_F(InvPropertyBase, BadDescriptorsAndModes) {
  EXPECT_FALSE(s_->p_read(42, std::span<std::byte>()).ok());
  EXPECT_FALSE(s_->p_close(42).ok());
  EXPECT_FALSE(s_->p_lseek(42, 0, Whence::kSet).ok());
  // Read-only fd rejects writes.
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/ro.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());
  auto ro = s_->p_open("/ro.txt", OpenMode::kRead);
  ASSERT_TRUE(ro.ok());
  std::vector<std::byte> b{std::byte{1}};
  EXPECT_EQ(s_->p_write(*ro, b).status().code(), ErrorCode::kReadOnly);
  // Negative and absurd seeks rejected.
  EXPECT_FALSE(s_->p_lseek(*ro, -1, Whence::kSet).ok());
  EXPECT_FALSE(s_->p_lseek(*ro, kInvMaxFileSize + 1, Whence::kSet).ok());
  ASSERT_TRUE(s_->p_close(*ro).ok());
}

TEST_F(InvPropertyBase, PathEdgeCases) {
  EXPECT_FALSE(s_->stat("relative/path").ok());
  EXPECT_FALSE(s_->p_creat("/").ok());
  EXPECT_FALSE(s_->p_creat("/missing_dir/file").ok());
  ASSERT_TRUE(s_->mkdir("/d").ok());
  EXPECT_FALSE(s_->mkdir("/d").ok());
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/d/f");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());
  EXPECT_FALSE(s_->p_creat("/d/f").ok()) << "duplicate names rejected";
  EXPECT_FALSE(s_->p_creat("/d/f/g").ok()) << "files are not directories";
  EXPECT_FALSE(s_->unlink("/d").ok()) << "non-empty directory";
  ASSERT_TRUE(s_->unlink("/d/f").ok());
  EXPECT_TRUE(s_->unlink("/d").ok());
}

TEST_F(InvPropertyBase, NestedDirectoriesAndDeepPaths) {
  std::string path;
  for (int depth = 0; depth < 8; ++depth) {
    path += "/dir" + std::to_string(depth);
    ASSERT_TRUE(s_->mkdir(path).ok()) << path;
  }
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat(path + "/leaf.txt");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());
  auto st = s_->stat(path + "/leaf.txt");
  ASSERT_TRUE(st.ok());
  // PathOf reconstructs the full pathname (the paper's pathname construction
  // routine over naming entries).
  const Snapshot snap{kTimestampNow, kInvalidTxn, &db_->txns().log(), nullptr};
  auto full = fs_->PathOf(st->oid, snap);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, path + "/leaf.txt");
}

TEST_F(InvPropertyBase, HistoricalReaddirShowsThePast) {
  ASSERT_TRUE(s_->mkdir("/proj").ok());
  for (const char* name : {"a.c", "b.c", "c.c"}) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_creat(std::string("/proj/") + name);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }
  const Timestamp full_house = db_->Now();
  ASSERT_TRUE(s_->unlink("/proj/b.c").ok());
  auto now_entries = s_->readdir("/proj");
  ASSERT_TRUE(now_entries.ok());
  EXPECT_EQ(now_entries->size(), 2u);
  auto then_entries = s_->readdir("/proj", full_house);
  ASSERT_TRUE(then_entries.ok());
  EXPECT_EQ(then_entries->size(), 3u);
}

TEST_F(InvPropertyBase, LargeFileOffsetsWork) {
  // A write far past 4 GB: Inversion's 64-bit offsets ("the practical upper
  // limit on file sizes in the current UNIX Fast File System is 4 GBytes").
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/huge.dat");
  ASSERT_TRUE(fd.ok());
  const int64_t far = 6'000'000'000;  // 6 GB
  ASSERT_TRUE(s_->p_lseek(*fd, far, Whence::kSet).ok());
  const std::string tail = "end of a very large file";
  ASSERT_TRUE(
      s_->p_write(*fd, std::as_bytes(std::span(tail.data(), tail.size()))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());
  auto st = s_->stat("/huge.dat");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, far + static_cast<int64_t>(tail.size()));
  // Sparse: reading the tail region returns the data.
  auto rfd = s_->p_open("/huge.dat", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(s_->p_lseek(*rfd, far, Whence::kSet).ok());
  std::vector<char> buf(tail.size());
  auto n = s_->p_read(*rfd, std::as_writable_bytes(std::span(buf)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf.data(), buf.size()), tail);
  ASSERT_TRUE(s_->p_close(*rfd).ok());
}

TEST_F(InvPropertyBase, AutoTxnOpsAreIndividuallyDurable) {
  // Without p_begin, each op runs in its own transaction (and survives a
  // crash immediately after).
  auto fd = s_->p_creat("/auto.txt");
  ASSERT_TRUE(fd.ok());
  const std::string data = "auto-committed";
  ASSERT_TRUE(
      s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());

  s_.reset();
  fs_.reset();
  db_->Crash();
  db_.reset();
  auto db = Database::Open(&env_);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  fs_ = std::make_unique<InversionFs>(db_.get());
  ASSERT_TRUE(fs_->Mount().ok());
  auto session = fs_->NewSession();
  ASSERT_TRUE(session.ok());
  s_ = std::move(*session);
  auto st = s_->stat("/auto.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, static_cast<int64_t>(data.size()));
}

}  // namespace
}  // namespace invfs
