// Serialization-anomaly suite for snapshot-isolation reads.
//
// Read-only transactions (and reads in a mixed transaction before its first
// write) run on a pinned MVCC snapshot and never touch the LockManager;
// writers keep strict 2PL among themselves. This file pins down exactly what
// that isolation level does and does not promise:
//
//   - read skew:   PREVENTED  (pinned snapshot is transaction-consistent)
//   - lost update: PREVENTED  (writers still serialize via exclusive locks)
//   - write skew:  PERMITTED  (documented below; the classic SI anomaly)
//
// plus the lock-freedom evidence the tentpole demands: zero lock.acquisitions
// delta and no "lock.wait" spans across read-only filesystem operations,
// including historical (time-travel) opens.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "src/inversion/inv_fs.h"
#include "src/obs/span.h"
#include "src/vacuum/vacuum.h"

namespace invfs {
namespace {

class SiAnomalyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto s1 = fs_->NewSession();
    auto s2 = fs_->NewSession();
    ASSERT_TRUE(s1.ok() && s2.ok());
    writer_ = std::move(*s1);
    reader_ = std::move(*s2);
  }

  // A two-row "accounts" table for the textbook anomaly shapes.
  void MakeAccounts() {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = db_->catalog().CreateTable(
        *txn, "acct", Schema{{"id", TypeId::kInt4}, {"bal", TypeId::kInt4}},
        kDeviceMagneticDisk);
    ASSERT_TRUE(table.ok());
    acct_ = *table;
    auto a = db_->InsertRow(*txn, acct_, {Value::Int4(1), Value::Int4(100)});
    auto b = db_->InsertRow(*txn, acct_, {Value::Int4(2), Value::Int4(100)});
    ASSERT_TRUE(a.ok() && b.ok());
    tid_a_ = *a;
    tid_b_ = *b;
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }

  // Sum of `bal` over all rows visible to `snap`.
  int SumBalances(const Snapshot& snap) {
    int sum = 0;
    auto it = acct_->heap->Scan(snap);
    while (it.Next()) {
      sum += it.row()[1].AsInt4();
    }
    return sum;
  }

  int CountRows(TableInfo* table, const Snapshot& snap) {
    int n = 0;
    auto it = table->heap->Scan(snap);
    while (it.Next()) {
      ++n;
    }
    return n;
  }

  void WriteFile(InvSession* s, const std::string& path, const std::string& data) {
    ASSERT_TRUE(s->p_begin().ok());
    auto fd = s->p_creat(path);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    auto n = s->p_write(*fd, std::as_bytes(std::span(data.data(), data.size())));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_TRUE(s->p_close(*fd).ok());
    ASSERT_TRUE(s->p_commit().ok());
  }

  std::string ReadFile(InvSession* s, const std::string& path,
                       Timestamp as_of = kTimestampNow) {
    auto fd = s->p_open(path, OpenMode::kRead, as_of);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) {
      return {};
    }
    std::string out;
    char buf[4096];
    for (;;) {
      auto n = s->p_read(*fd, std::as_writable_bytes(std::span(buf)));
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      if (!n.ok() || *n == 0) {
        break;
      }
      out.append(buf, static_cast<size_t>(*n));
    }
    EXPECT_TRUE(s->p_close(*fd).ok());
    return out;
  }

  uint64_t LockAcquisitions() {
    return db_->metrics().GetCounter("lock.acquisitions")->Value();
  }

  // Count "lock.wait" spans recorded after ring sequence `after_seq`.
  uint64_t LockWaitSpansSince(uint64_t after_seq) {
    uint64_t n = 0;
    for (const SpanRecord& r : db_->metrics().spans().Snapshot()) {
      if (r.seq > after_seq && r.name != nullptr &&
          std::string_view(r.name) == "lock.wait") {
        ++n;
      }
    }
    return n;
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> writer_;
  std::unique_ptr<InvSession> reader_;
  TableInfo* acct_ = nullptr;
  Tid tid_a_{};
  Tid tid_b_{};
};

// -------------------------------------------------------------- read skew
//
// Reader observes row A, a writer then moves money from A to B and commits,
// reader observes row B. Under 2PL-free live reads the reader would see the
// transfer half-applied (sum 250 or 150); the pinned snapshot keeps both
// reads at begin time, so the invariant sum==200 holds throughout.

TEST_F(SiAnomalyTest, ReadSkewPrevented) {
  MakeAccounts();

  auto reader = db_->Begin(TxnMode::kReadOnly);
  ASSERT_TRUE(reader.ok());
  const Snapshot snap = db_->ReadSnapshot(*reader);
  auto first = acct_->heap->Fetch(snap, tid_a_);
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((**first)[1].AsInt4(), 100);

  // Transfer 50 from A to B, committed between the reader's two reads.
  auto xfer = db_->Begin();
  ASSERT_TRUE(xfer.ok());
  ASSERT_TRUE(
      db_->ReplaceRow(*xfer, acct_, tid_a_, {Value::Int4(1), Value::Int4(50)}).ok());
  ASSERT_TRUE(
      db_->ReplaceRow(*xfer, acct_, tid_b_, {Value::Int4(2), Value::Int4(150)}).ok());
  ASSERT_TRUE(db_->Commit(*xfer).ok());

  // The same pinned snapshot still sees the pre-transfer state — including
  // row B, read *after* the transfer committed.
  auto second = acct_->heap->Fetch(snap, tid_b_);
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((**second)[1].AsInt4(), 100);
  EXPECT_EQ(SumBalances(snap), 200);
  ASSERT_TRUE(db_->Commit(*reader).ok());

  // A fresh transaction sees the transfer whole: 50 + 150.
  auto after = db_->Begin(TxnMode::kReadOnly);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(SumBalances(db_->ReadSnapshot(*after)), 200);
  auto it = acct_->heap->Scan(db_->ReadSnapshot(*after));
  int seen = 0;
  while (it.Next()) {
    ++seen;
    const int id = it.row()[0].AsInt4();
    EXPECT_EQ(it.row()[1].AsInt4(), id == 1 ? 50 : 150);
  }
  EXPECT_EQ(seen, 2);
  ASSERT_TRUE(db_->Commit(*after).ok());
}

// ------------------------------------- snapshot stability under concurrent commit
//
// Commits landing mid-transaction never change what a pinned snapshot
// returns: same row count, same values, scan after scan.

TEST_F(SiAnomalyTest, SnapshotStableUnderConcurrentCommit) {
  MakeAccounts();
  auto reader = db_->Begin(TxnMode::kReadOnly);
  ASSERT_TRUE(reader.ok());
  const Snapshot snap = db_->ReadSnapshot(*reader);
  EXPECT_EQ(CountRows(acct_, snap), 2);

  for (int i = 0; i < 5; ++i) {
    auto w = db_->Begin();
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(
        db_->InsertRow(*w, acct_, {Value::Int4(10 + i), Value::Int4(1)}).ok());
    ASSERT_TRUE(db_->Commit(*w).ok());
    // Each committed insert is invisible to the pinned snapshot...
    EXPECT_EQ(CountRows(acct_, snap), 2) << "after insert " << i;
    EXPECT_EQ(SumBalances(snap), 200);
  }
  ASSERT_TRUE(db_->Commit(*reader).ok());

  // ...and fully visible to the next transaction.
  auto after = db_->Begin(TxnMode::kReadOnly);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(CountRows(acct_, db_->ReadSnapshot(*after)), 7);
  ASSERT_TRUE(db_->Commit(*after).ok());
}

// ------------------------------------------------------------- lost update
//
// Writers still run strict 2PL against each other: concurrent
// read-modify-write increments serialize on the exclusive table lock, so no
// increment is ever lost. (This is what distinguishes our SI-for-readers
// design from full optimistic SI, where first-committer-wins aborts would be
// needed here.)

TEST_F(SiAnomalyTest, LostUpdatePreventedBy2plWriters) {
  MakeAccounts();
  constexpr int kThreads = 4;
  constexpr int kIncrementsEach = 8;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsEach; ++i) {
        auto txn = db_->Begin();
        if (!txn.ok()) { failures.fetch_add(1); return; }
        // Exclusive lock first: the read below is part of an RMW cycle and
        // must see the latest committed value, not a begin-time snapshot.
        if (!db_->LockTable(*txn, acct_, LockMode::kExclusive).ok()) {
          failures.fetch_add(1);
          return;
        }
        // After the first write-intent the transaction reads live.
        Tid cur = {};
        int bal = -1;
        auto it = acct_->heap->Scan(db_->ReadSnapshot(*txn));
        while (it.Next()) {
          if (it.row()[0].AsInt4() == 1) {
            cur = it.tid();
            bal = it.row()[1].AsInt4();
          }
        }
        if (bal < 0 ||
            !db_->ReplaceRow(*txn, acct_, cur,
                             {Value::Int4(1), Value::Int4(bal + 1)}).ok() ||
            !db_->Commit(*txn).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_EQ(failures.load(), 0);

  auto check = db_->Begin(TxnMode::kReadOnly);
  ASSERT_TRUE(check.ok());
  auto it = acct_->heap->Scan(db_->ReadSnapshot(*check));
  int bal = -1;
  while (it.Next()) {
    if (it.row()[0].AsInt4() == 1) {
      bal = it.row()[1].AsInt4();
    }
  }
  EXPECT_EQ(bal, 100 + kThreads * kIncrementsEach) << "an increment was lost";
  ASSERT_TRUE(db_->Commit(*check).ok());
}

// -------------------------------------------------------------- write skew
//
// The canonical SI anomaly, and this engine PERMITS it by design: two
// transactions each read (from their pinned begin-time snapshots) a
// predicate the *other* is about to falsify, then write disjoint tables —
// so table-level 2PL never sees a conflict. Full serializability would
// forbid the final state; snapshot isolation accepts it. DESIGN.md documents
// this as the price of lock-free reads; applications needing the stronger
// guarantee must take explicit exclusive locks on every table they read.

TEST_F(SiAnomalyTest, WriteSkewPermittedByDesign) {
  // Two one-row tables standing in for "doctors on call in ward A / ward B";
  // the intended (but undeclared) invariant is that not both go empty.
  auto setup = db_->Begin();
  ASSERT_TRUE(setup.ok());
  auto ta = db_->catalog().CreateTable(*setup, "on_call_a",
                                       Schema{{"id", TypeId::kInt4}},
                                       kDeviceMagneticDisk);
  auto tb = db_->catalog().CreateTable(*setup, "on_call_b",
                                       Schema{{"id", TypeId::kInt4}},
                                       kDeviceMagneticDisk);
  ASSERT_TRUE(ta.ok() && tb.ok());
  auto ra = db_->InsertRow(*setup, *ta, {Value::Int4(1)});
  auto rb = db_->InsertRow(*setup, *tb, {Value::Int4(2)});
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_TRUE(db_->Commit(*setup).ok());

  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());

  // Each checks its precondition on the *other* table from its pinned
  // begin-time snapshot: "someone is still on call over there".
  EXPECT_EQ(CountRows(*tb, db_->ReadSnapshot(*t1)), 1);
  EXPECT_EQ(CountRows(*ta, db_->ReadSnapshot(*t2)), 1);

  // Then each takes its own doctor off call. Disjoint tables, disjoint
  // exclusive locks: 2PL admits both.
  ASSERT_TRUE(db_->DeleteRow(*t1, *ta, *ra).ok());
  ASSERT_TRUE(db_->DeleteRow(*t2, *tb, *rb).ok());
  ASSERT_TRUE(db_->Commit(*t1).ok());
  ASSERT_TRUE(db_->Commit(*t2).ok());

  // Both preconditions were true when read, both writes committed, and the
  // combined state no serial order could produce stands: both tables empty.
  auto check = db_->Begin(TxnMode::kReadOnly);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(CountRows(*ta, db_->ReadSnapshot(*check)), 0);
  EXPECT_EQ(CountRows(*tb, db_->ReadSnapshot(*check)), 0);
  ASSERT_TRUE(db_->Commit(*check).ok());
}

// --------------------------------------------------- writers never block readers
//
// A writer session holds the exclusive chunk-table lock of an open file
// (uncommitted overwrite in flight). A reader on the same thread then reads
// the file: if the read path still took data locks this would deadlock (the
// test would hang); instead it completes immediately and sees the last
// committed contents. Same for readdir against an uncommitted create.

TEST_F(SiAnomalyTest, WritersNeverBlockReaders) {
  WriteFile(writer_.get(), "/shared.txt", "committed contents");

  ASSERT_TRUE(writer_->p_begin().ok());
  auto wfd = writer_->p_open("/shared.txt", OpenMode::kWrite);
  ASSERT_TRUE(wfd.ok());
  const std::string overwrite = "UNCOMMITTED overwrite";
  ASSERT_TRUE(writer_->p_write(
      *wfd, std::as_bytes(std::span(overwrite.data(), overwrite.size()))).ok());
  auto nfd = writer_->p_creat("/new-uncommitted.txt");
  ASSERT_TRUE(nfd.ok());

  // Reader proceeds while the writer's exclusive locks are held, and sees
  // only committed state.
  EXPECT_EQ(ReadFile(reader_.get(), "/shared.txt"), "committed contents");
  auto st = reader_->stat("/shared.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, static_cast<int64_t>(std::string("committed contents").size()));
  auto entries = reader_->readdir("/");
  ASSERT_TRUE(entries.ok());
  for (const DirEntry& e : *entries) {
    EXPECT_NE(e.name, "new-uncommitted.txt");
  }

  ASSERT_TRUE(writer_->p_close(*wfd).ok());
  ASSERT_TRUE(writer_->p_close(*nfd).ok());
  ASSERT_TRUE(writer_->p_commit().ok());
  EXPECT_EQ(ReadFile(reader_.get(), "/shared.txt"), "UNCOMMITTED overwrite");
}

// ---------------------------------------------------- lock-freedom evidence
//
// The acceptance criterion, measured: across read-only p_open/p_read/stat/
// readdir — including a historical (time-travel) open, the satellite-1
// regression — the lock.acquisitions counter must not move and no
// "lock.wait" span may be recorded.

TEST_F(SiAnomalyTest, ReadOnlyOpsAcquireZeroDataLocks) {
  WriteFile(writer_.get(), "/a.txt", "version one");
  const Timestamp t1 = db_->Now();
  {
    ASSERT_TRUE(writer_->p_begin().ok());
    auto fd = writer_->p_open("/a.txt", OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    const std::string v2 = "version TWO";
    ASSERT_TRUE(writer_->p_write(
        *fd, std::as_bytes(std::span(v2.data(), v2.size()))).ok());
    ASSERT_TRUE(writer_->p_close(*fd).ok());
    ASSERT_TRUE(writer_->p_commit().ok());
  }

  const uint64_t locks_before = LockAcquisitions();
  const uint64_t spans_before = db_->metrics().spans().TotalRecorded();

  // Current-time reads.
  EXPECT_EQ(ReadFile(reader_.get(), "/a.txt"), "version TWO");
  EXPECT_TRUE(reader_->stat("/a.txt").ok());
  EXPECT_TRUE(reader_->readdir("/").ok());
  // Historical read (satellite 1: SnapFor's time-travel path).
  EXPECT_EQ(ReadFile(reader_.get(), "/a.txt", t1), "version one");
  // POSTQUEL retrieve.
  auto rs = fs_->Query("retrieve (n.filename) from n in naming");
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();

  EXPECT_EQ(LockAcquisitions(), locks_before)
      << "a read-only operation went through the lock manager";
  EXPECT_EQ(LockWaitSpansSince(spans_before), 0u)
      << "a read-only operation waited on a data lock";
}

// Read-only transactions stay off the lock manager even while vacuum holds
// exclusive locks elsewhere in the system — and vacuum never reclaims a
// version a pinned reader might still need (the OldestActiveXmin horizon).

TEST_F(SiAnomalyTest, PinnedReaderSurvivesVacuum) {
  MakeAccounts();
  // Pin a snapshot that sees balance 100 in row A.
  auto reader = db_->Begin(TxnMode::kReadOnly);
  ASSERT_TRUE(reader.ok());
  const Snapshot snap = db_->ReadSnapshot(*reader);

  // Overwrite row A (old version now dead to future snapshots) and vacuum.
  auto w = db_->Begin();
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(
      db_->ReplaceRow(*w, acct_, tid_a_, {Value::Int4(1), Value::Int4(7)}).ok());
  ASSERT_TRUE(db_->Commit(*w).ok());

  VacuumCleaner vacuum(db_.get());
  auto vt = db_->Begin();
  ASSERT_TRUE(vt.ok());
  auto stats = vacuum.VacuumTable(*vt, acct_, /*keep_history=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(db_->Commit(*vt).ok());

  // The dead version was NOT reclaimed: the pinned reader still sees it.
  EXPECT_EQ(stats->archived + stats->discarded, 0u)
      << "vacuum reclaimed a version below an active reader's horizon";
  EXPECT_EQ(SumBalances(snap), 200);
  ASSERT_TRUE(db_->Commit(*reader).ok());

  // With the reader gone the horizon advances and vacuum may reclaim.
  auto vt2 = db_->Begin();
  ASSERT_TRUE(vt2.ok());
  auto stats2 = vacuum.VacuumTable(*vt2, acct_, /*keep_history=*/true);
  ASSERT_TRUE(stats2.ok());
  ASSERT_TRUE(db_->Commit(*vt2).ok());
  EXPECT_EQ(stats2->archived, 1u);
}

}  // namespace
}  // namespace invfs
