// Fast smoke over the crash-recovery torture driver: a small but real sweep
// (crash points + device-write halts, recovery, checker, semantic oracle)
// must pass under ctest. The full-size sweep runs in scripts/check.sh.

#include <gtest/gtest.h>

#include "src/fault/torture.h"

namespace invfs {
namespace {

TEST(Torture, SmallSweepPassesAndActuallyCrashes) {
  TortureOptions options;
  options.seed = 7;
  options.transactions = 8;
  options.max_files = 4;
  options.buffers = 24;
  options.occurrences_per_point = 1;
  options.write_sweep_schedules = 6;
  auto report = RunTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_GT(report->schedules, 0u);
  EXPECT_GT(report->crashes, 0u) << "a sweep that never crashes proves nothing";
  EXPECT_GT(report->recorded_writes, 0u);
}

TEST(Torture, DeterministicAcrossRuns) {
  TortureOptions options;
  options.seed = 11;
  options.transactions = 6;
  options.max_files = 3;
  options.run_crash_points = false;  // write sweep only: fast
  options.write_sweep_schedules = 4;
  auto a = RunTorture(options);
  auto b = RunTorture(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->schedules, b->schedules);
  EXPECT_EQ(a->crashes, b->crashes);
  EXPECT_EQ(a->recorded_writes, b->recorded_writes);
  EXPECT_EQ(a->failures, b->failures);
}

}  // namespace
}  // namespace invfs
