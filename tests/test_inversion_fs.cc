// Inversion file system: files, directories, transactions, time travel,
// undelete, compression, queries.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/inversion/inv_fs.h"
#include "src/util/random.h"

namespace invfs {
namespace {

class InversionFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    fs_ = std::make_unique<InversionFs>(db_.get());
    ASSERT_TRUE(fs_->Mount().ok());
    auto session = fs_->NewSession();
    ASSERT_TRUE(session.ok());
    s_ = std::move(*session);
  }

  // Write `data` to a new file at `path` in one transaction.
  void WriteFile(const std::string& path, const std::string& data,
                 CreatOptions options = {}) {
    ASSERT_TRUE(s_->p_begin().ok());
    auto fd = s_->p_creat(path, options);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    auto n = s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size())));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, static_cast<int64_t>(data.size()));
    ASSERT_TRUE(s_->p_close(*fd).ok());
    ASSERT_TRUE(s_->p_commit().ok());
  }

  std::string ReadFile(const std::string& path, Timestamp as_of = kTimestampNow) {
    auto fd = s_->p_open(path, OpenMode::kRead, as_of);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) {
      return {};
    }
    std::string out;
    char buf[4096];
    for (;;) {
      auto n = s_->p_read(*fd, std::as_writable_bytes(std::span(buf)));
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      if (!n.ok() || *n == 0) {
        break;
      }
      out.append(buf, static_cast<size_t>(*n));
    }
    EXPECT_TRUE(s_->p_close(*fd).ok());
    return out;
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> fs_;
  std::unique_ptr<InvSession> s_;
};

TEST_F(InversionFsTest, WriteReadRoundtrip) {
  WriteFile("/hello.txt", "hello, inversion\n");
  EXPECT_EQ(ReadFile("/hello.txt"), "hello, inversion\n");
}

TEST_F(InversionFsTest, MultiChunkFile) {
  std::string big(3 * kInvChunkSize + 517, 'x');
  Rng rng(7);
  for (auto& c : big) {
    c = static_cast<char>('a' + rng.Uniform(26));
  }
  WriteFile("/big.bin", big);
  EXPECT_EQ(ReadFile("/big.bin"), big);
  auto st = s_->stat("/big.bin");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, static_cast<int64_t>(big.size()));
}

TEST_F(InversionFsTest, DirectoriesAndReaddir) {
  ASSERT_TRUE(s_->mkdir("/etc").ok());
  WriteFile("/etc/passwd", "root:0:0\n");
  WriteFile("/etc/group", "wheel:0\n");
  auto entries = s_->readdir("/etc");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "group");
  EXPECT_EQ((*entries)[1].name, "passwd");
  // Table 1 of the paper: resolving /etc/passwd walks naming entries.
  auto st = s_->stat("/etc/passwd");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->is_directory);
  EXPECT_EQ(st->size, 9);
}

TEST_F(InversionFsTest, AbortRollsBackFileCreation) {
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/doomed.txt");
  ASSERT_TRUE(fd.ok());
  const std::string data = "this never happened";
  ASSERT_TRUE(s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_abort().ok());
  EXPECT_TRUE(s_->stat("/doomed.txt").status().IsNotFound());
}

TEST_F(InversionFsTest, TransactionalMultiFileCheckin) {
  // The paper's motivating example: several source files checked in together.
  WriteFile("/a.c", "int a;\n");
  WriteFile("/b.c", "int b;\n");
  ASSERT_TRUE(s_->p_begin().ok());
  for (const char* path : {"/a.c", "/b.c"}) {
    auto fd = s_->p_open(path, OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(s_->p_lseek(*fd, 0, Whence::kEnd).ok());
    const std::string patch = "/* patched */\n";
    ASSERT_TRUE(
        s_->p_write(*fd, std::as_bytes(std::span(patch.data(), patch.size()))).ok());
    ASSERT_TRUE(s_->p_close(*fd).ok());
  }
  ASSERT_TRUE(s_->p_commit().ok());
  EXPECT_EQ(ReadFile("/a.c"), "int a;\n/* patched */\n");
  EXPECT_EQ(ReadFile("/b.c"), "int b;\n/* patched */\n");
}

TEST_F(InversionFsTest, TimeTravelReadsOldContents) {
  WriteFile("/notes.txt", "version one");
  const Timestamp t1 = db_->Now();

  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_open("/notes.txt", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  const std::string v2 = "version TWO";
  ASSERT_TRUE(s_->p_write(*fd, std::as_bytes(std::span(v2.data(), v2.size()))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());

  EXPECT_EQ(ReadFile("/notes.txt"), "version TWO");
  EXPECT_EQ(ReadFile("/notes.txt", t1), "version one");

  // Historical opens refuse writes.
  auto ro = s_->p_open("/notes.txt", OpenMode::kWrite, t1);
  EXPECT_EQ(ro.status().code(), ErrorCode::kReadOnly);
}

TEST_F(InversionFsTest, UndeleteViaTimeTravel) {
  WriteFile("/precious.dat", "do not lose me");
  const Timestamp before_rm = db_->Now();
  ASSERT_TRUE(s_->unlink("/precious.dat").ok());
  EXPECT_TRUE(s_->stat("/precious.dat").status().IsNotFound());
  // "it allows users to undelete files removed accidentally"
  EXPECT_EQ(ReadFile("/precious.dat", before_rm), "do not lose me");
  auto old_stat = s_->stat("/precious.dat", before_rm);
  ASSERT_TRUE(old_stat.ok());
  EXPECT_EQ(old_stat->size, 14);
}

TEST_F(InversionFsTest, CompressedFileRoundtripAndRandomAccess) {
  CreatOptions options;
  options.compressed = true;
  std::string text;
  for (int i = 0; i < 3000; ++i) {
    text += "the quick brown fox jumps over the lazy dog ";
  }
  WriteFile("/compressed.txt", text, options);
  EXPECT_EQ(ReadFile("/compressed.txt"), text);
  // Random access into the middle decompresses only the covering chunk.
  auto fd = s_->p_open("/compressed.txt", OpenMode::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(s_->p_lseek(*fd, 20000, Whence::kSet).ok());
  char buf[45];
  auto n = s_->p_read(*fd, std::as_writable_bytes(std::span(buf)));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 45);
  EXPECT_EQ(std::string(buf, 45), text.substr(20000, 45));
  ASSERT_TRUE(s_->p_close(*fd).ok());
  // And it actually compressed: the chunk table stores less than the raw.
  auto st = s_->stat("/compressed.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->compressed);
}

TEST_F(InversionFsTest, SparseFileReadsZeros) {
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/sparse.bin");
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(s_->p_lseek(*fd, 5 * kInvChunkSize, Whence::kSet).ok());
  const std::string tail = "tail";
  ASSERT_TRUE(s_->p_write(*fd, std::as_bytes(std::span(tail.data(), tail.size()))).ok());
  ASSERT_TRUE(s_->p_close(*fd).ok());
  ASSERT_TRUE(s_->p_commit().ok());
  std::string contents = ReadFile("/sparse.bin");
  ASSERT_EQ(contents.size(), 5 * kInvChunkSize + 4);
  EXPECT_EQ(contents.substr(0, 10), std::string(10, '\0'));
  EXPECT_EQ(contents.substr(5 * kInvChunkSize), "tail");
}

TEST_F(InversionFsTest, RenameMovesFile) {
  WriteFile("/old_name.txt", "contents");
  ASSERT_TRUE(s_->mkdir("/subdir").ok());
  ASSERT_TRUE(s_->rename("/old_name.txt", "/subdir/new_name.txt").ok());
  EXPECT_TRUE(s_->stat("/old_name.txt").status().IsNotFound());
  EXPECT_EQ(ReadFile("/subdir/new_name.txt"), "contents");
}

TEST_F(InversionFsTest, PostquelQueryOverMetadata) {
  WriteFile("/doc1.txt", "RISC processors are fast\nand simple\n");
  WriteFile("/doc2.txt", "CISC machines differ\n");
  // The paper's keyword query, verbatim shape.
  auto rs = s_->Query(
      "retrieve (n.filename) from n in naming where \"RISC\" in keywords(n.file)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsText(), "doc1.txt");

  // linecount function from Table 2.
  auto lc = s_->Query(
      "retrieve (n.filename, lines = linecount(n.file)) from n in naming "
      "where n.filename = \"doc1.txt\"");
  ASSERT_TRUE(lc.ok()) << lc.status().ToString();
  ASSERT_EQ(lc->rows.size(), 1u);
  EXPECT_EQ(lc->rows[0][1].AsInt4(), 2);
}

TEST_F(InversionFsTest, QueryTimeTravelBracket) {
  WriteFile("/ephemeral.txt", "x");
  const Timestamp before = db_->Now();
  ASSERT_TRUE(s_->unlink("/ephemeral.txt").ok());
  auto now_rs = s_->Query(
      "retrieve (n.filename) from n in naming where n.filename = \"ephemeral.txt\"");
  ASSERT_TRUE(now_rs.ok());
  EXPECT_TRUE(now_rs->rows.empty());
  auto then_rs = s_->Query("retrieve (n.filename) from n in naming[" +
                           std::to_string(before) +
                           "] where n.filename = \"ephemeral.txt\"");
  ASSERT_TRUE(then_rs.ok()) << then_rs.status().ToString();
  EXPECT_EQ(then_rs->rows.size(), 1u);
}

TEST_F(InversionFsTest, CrashRecoveryPreservesCommittedFiles) {
  WriteFile("/durable.txt", "committed data");
  // An in-flight transaction dies with the crash.
  ASSERT_TRUE(s_->p_begin().ok());
  auto fd = s_->p_creat("/inflight.txt");
  ASSERT_TRUE(fd.ok());
  const std::string data = "never committed";
  ASSERT_TRUE(s_->p_write(*fd, std::as_bytes(std::span(data.data(), data.size()))).ok());
  ASSERT_TRUE(db_->buffers().FlushAll().ok());

  s_.reset();
  fs_.reset();
  db_->Crash();
  db_.reset();

  auto db = Database::Open(&env_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(*db);
  fs_ = std::make_unique<InversionFs>(db_.get());
  ASSERT_TRUE(fs_->Mount().ok());
  auto session = fs_->NewSession();
  ASSERT_TRUE(session.ok());
  s_ = std::move(*session);

  EXPECT_EQ(ReadFile("/durable.txt"), "committed data");
  EXPECT_TRUE(s_->stat("/inflight.txt").status().IsNotFound());
}

TEST_F(InversionFsTest, FilesOnNvramAndJukeboxDevices) {
  CreatOptions nvram;
  nvram.device = kDeviceNvram;
  WriteFile("/fast.dat", "nvram data", nvram);
  EXPECT_EQ(ReadFile("/fast.dat"), "nvram data");

  CreatOptions juke;
  juke.device = kDeviceJukebox;
  WriteFile("/archive.dat", "optical data", juke);
  EXPECT_EQ(ReadFile("/archive.dat"), "optical data");

  auto st = s_->stat("/archive.dat");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->device, kDeviceJukebox);
}

}  // namespace
}  // namespace invfs
