// Unit tests: the vacuum cleaner / record archiver.

#include <gtest/gtest.h>

#include "src/vacuum/vacuum.h"

namespace invfs {
namespace {

class VacuumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    vacuum_ = std::make_unique<VacuumCleaner>(db_.get());
    auto txn = db_->Begin();
    auto table = db_->catalog().CreateTable(
        *txn, "t", Schema{{"k", TypeId::kInt4}, {"v", TypeId::kText}},
        kDeviceMagneticDisk);
    ASSERT_TRUE(table.ok());
    table_ = *table;
    auto index = db_->catalog().CreateIndex(*txn, table_, {0});
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }

  // Insert k=0..n-1, then delete the even ones in a second txn.
  void Populate(int n) {
    auto t1 = db_->Begin();
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          db_->InsertRow(*t1, table_, {Value::Int4(i), Value::Text("v")}).ok());
    }
    ASSERT_TRUE(db_->Commit(*t1).ok());
    auto t2 = db_->Begin();
    std::vector<Tid> victims;
    auto it = table_->heap->Scan(db_->SnapshotFor(*t2));
    while (it.Next()) {
      if (it.row()[0].AsInt4() % 2 == 0) {
        victims.push_back(it.tid());
      }
    }
    for (Tid tid : victims) {
      ASSERT_TRUE(db_->DeleteRow(*t2, table_, tid).ok());
    }
    ASSERT_TRUE(db_->Commit(*t2).ok());
  }

  int CountVisible(const Snapshot& snap, Heap* heap) {
    int count = 0;
    auto it = heap->Scan(snap);
    while (it.Next()) {
      ++count;
    }
    return count;
  }

  StorageEnv env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<VacuumCleaner> vacuum_;
  TableInfo* table_ = nullptr;
};

TEST_F(VacuumTest, ArchivesDeadVersions) {
  Populate(20);
  auto txn = db_->Begin();
  auto stats = vacuum_->VacuumTable(*txn, table_, /*keep_history=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(stats->scanned, 20u);
  EXPECT_EQ(stats->archived, 10u);
  EXPECT_EQ(stats->live, 10u);
  EXPECT_NE(table_->archive_oid, kInvalidOid);
  // Heap now physically holds only survivors.
  int physical = 0;
  auto it = table_->heap->ScanAll();
  while (it.Next()) {
    ++physical;
  }
  EXPECT_EQ(physical, 10);
}

TEST_F(VacuumTest, HistoricalReadsSurviveVacuumViaArchive) {
  auto t1 = db_->Begin();
  auto tid = table_->heap->Insert(*t1, {Value::Int4(1), Value::Text("old")});
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(db_->Commit(*t1).ok());
  const Timestamp before = db_->Now();
  auto t2 = db_->Begin();
  ASSERT_TRUE(
      db_->ReplaceRow(*t2, table_, *tid, {Value::Int4(1), Value::Text("new")}).ok());
  ASSERT_TRUE(db_->Commit(*t2).ok());

  auto vt = db_->Begin();
  ASSERT_TRUE(vacuum_->VacuumTable(*vt, table_, true).ok());
  ASSERT_TRUE(db_->Commit(*vt).ok());

  // The old version is no longer in the heap...
  EXPECT_EQ(CountVisible(db_->SnapshotAt(before), table_->heap.get()), 0);
  // ...but the archive union still shows it (as the executor would).
  auto archive = db_->catalog().GetTableByOid(table_->archive_oid);
  ASSERT_TRUE(archive.ok());
  int found = 0;
  auto it = (*archive)->heap->Scan(db_->SnapshotAt(before));
  while (it.Next()) {
    ++found;
    EXPECT_EQ(it.row()[1].AsText(), "old");
  }
  EXPECT_EQ(found, 1);
}

TEST_F(VacuumTest, NoHistoryModeDiscards) {
  Populate(10);
  auto txn = db_->Begin();
  auto stats = vacuum_->VacuumTable(*txn, table_, /*keep_history=*/false);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(stats->archived, 0u);
  EXPECT_EQ(stats->discarded, 5u);
  EXPECT_EQ(table_->archive_oid, kInvalidOid);
}

TEST_F(VacuumTest, AbortedInsertsAlwaysDiscarded) {
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->InsertRow(*txn, table_, {Value::Int4(9), Value::Text("x")}).ok());
  ASSERT_TRUE(db_->Abort(*txn).ok());
  auto vt = db_->Begin();
  auto stats = vacuum_->VacuumTable(*vt, table_, true);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(db_->Commit(*vt).ok());
  EXPECT_EQ(stats->discarded, 1u);
  EXPECT_EQ(stats->archived, 0u) << "aborted versions are garbage, not history";
}

TEST_F(VacuumTest, IndexRebuiltConsistently) {
  Populate(200);
  auto txn = db_->Begin();
  ASSERT_TRUE(vacuum_->VacuumTable(*txn, table_, true).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  IndexInfo* index = table_->indexes[0];
  ASSERT_TRUE(index->btree->CheckInvariants().ok());
  EXPECT_EQ(*index->btree->CountEntries(), 100u);
  // Index points at live tuples.
  auto tids = index->btree->Lookup(EncodeInt4Key(101));
  ASSERT_TRUE(tids.ok());
  ASSERT_EQ(tids->size(), 1u);
  auto reader = db_->Begin();
  auto row = table_->heap->Fetch(db_->SnapshotFor(*reader), (*tids)[0]);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ((**row)[0].AsInt4(), 101);
  ASSERT_TRUE(db_->Commit(*reader).ok());
  // Dead keys are gone from the index.
  EXPECT_TRUE(index->btree->Lookup(EncodeInt4Key(100))->empty());
}

TEST_F(VacuumTest, InProgressVersionsLeftAlone) {
  auto writer = db_->Begin();
  ASSERT_TRUE(db_->InsertRow(*writer, table_, {Value::Int4(1), Value::Text("wip")}).ok());
  // Vacuum runs while the writer is still active (it will skip the X lock by
  // running in the same thread? no — use a different table lock path: vacuum
  // takes X and would block; so vacuum the table in the writer's transaction).
  auto stats = vacuum_->VacuumTable(*writer, table_, true);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->live, 1u);
  EXPECT_EQ(stats->discarded + stats->archived, 0u);
  ASSERT_TRUE(db_->Commit(*writer).ok());
}

TEST_F(VacuumTest, VacuumAllCoversUserTablesOnly) {
  Populate(10);
  auto txn = db_->Begin();
  auto stats = vacuum_->VacuumAll(*txn, true);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(stats->scanned, 10u) << "catalogs and indexes are not vacuumed";
}

TEST_F(VacuumTest, IdempotentSecondPass) {
  Populate(20);
  auto t1 = db_->Begin();
  ASSERT_TRUE(vacuum_->VacuumTable(*t1, table_, true).ok());
  ASSERT_TRUE(db_->Commit(*t1).ok());
  auto t2 = db_->Begin();
  auto stats = vacuum_->VacuumTable(*t2, table_, true);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(db_->Commit(*t2).ok());
  EXPECT_EQ(stats->archived, 0u);
  EXPECT_EQ(stats->discarded, 0u);
  EXPECT_EQ(stats->live, 10u);
}

}  // namespace
}  // namespace invfs
