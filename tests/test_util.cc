// Unit tests: Status/Result, PRNG, CRC32C, byte codecs, LZSS.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/bytes.h"
#include "src/util/crc32.h"
#include "src/util/logging.h"
#include "src/util/lzss.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace invfs {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("no such thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: no such thing");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::IoError("disk on fire");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Doubler(Result<int> in) {
  INV_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::Deadlock("x")).status().code(), ErrorCode::kDeadlock);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo && saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------- CRC32C

TEST(Crc32c, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32c, SensitiveToEveryByte) {
  std::string data(256, 'a');
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 37) {
    std::string mutated = data;
    mutated[i] = 'b';
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base) << "byte " << i;
  }
}

// ---------------------------------------------------------------- bytes

TEST(Bytes, FixedWidthRoundtrip) {
  std::byte buf[8];
  PutU16(buf, 0xBEEF);
  EXPECT_EQ(GetU16(buf), 0xBEEF);
  PutU32(buf, 0xDEADBEEF);
  EXPECT_EQ(GetU32(buf), 0xDEADBEEFu);
  PutU64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(GetU64(buf), 0x0123456789ABCDEFull);
}

TEST(Bytes, WriterReaderRoundtrip) {
  ByteWriter w;
  w.U8(7);
  w.U16(300);
  w.U32(70000);
  w.U64(1ull << 40);
  w.I64(-12345);
  w.F64(3.25);
  w.Str("hello");
  w.Blob(std::vector<std::byte>{std::byte{1}, std::byte{2}});

  ByteReader r(w.data());
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U16(), 300);
  EXPECT_EQ(r.U32(), 70000u);
  EXPECT_EQ(r.U64(), 1ull << 40);
  EXPECT_EQ(r.I64(), -12345);
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Blob().size(), 2u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderDetectsTruncation) {
  ByteWriter w;
  w.U32(5);  // claims a 5-byte string follows, but nothing does
  ByteReader r(w.data());
  (void)r.Str();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, ReaderPastEndIsSticky) {
  ByteReader r(std::span<const std::byte>{});
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------- LZSS

TEST(Lzss, EmptyInput) {
  auto packed = LzssCompress({});
  auto raw = LzssDecompress(packed, 0);
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE(raw->empty());
}

TEST(Lzss, CompressesRepetitiveData) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "abcabcabc ";
  }
  auto input = std::as_bytes(std::span(text.data(), text.size()));
  auto packed = LzssCompress(input);
  EXPECT_LT(packed.size(), text.size() / 3);
  auto raw = LzssDecompress(packed, text.size());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_TRUE(std::equal(raw->begin(), raw->end(), input.begin()));
}

TEST(Lzss, IncompressibleDataSurvives) {
  Rng rng(17);
  std::vector<std::byte> input(4096);
  for (auto& b : input) {
    b = static_cast<std::byte>(rng.Uniform(256));
  }
  auto packed = LzssCompress(input);
  // Worst case bound: 9/8 of input + 1.
  EXPECT_LE(packed.size(), input.size() * 9 / 8 + 1);
  auto raw = LzssDecompress(packed, input.size());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, input);
}

TEST(Lzss, DetectsTruncatedStream) {
  std::string text(1000, 'x');
  auto packed = LzssCompress(std::as_bytes(std::span(text.data(), text.size())));
  packed.resize(packed.size() / 2);
  EXPECT_FALSE(LzssDecompress(packed, text.size()).ok());
}

TEST(Lzss, DetectsWrongExpectedSize) {
  std::string text(100, 'x');
  auto packed = LzssCompress(std::as_bytes(std::span(text.data(), text.size())));
  EXPECT_FALSE(LzssDecompress(packed, 101).ok());
}

TEST(Lzss, RejectsTokenReachingBeforeOutputStart) {
  // Flag byte 0x00 announces eight tokens; the first token points 4096 bytes
  // back when nothing has been emitted yet. Must error, not read out of
  // bounds.
  const std::vector<std::byte> stream = {std::byte{0x00}, std::byte{0xFF},
                                         std::byte{0xFF}};
  EXPECT_FALSE(LzssDecompress(stream, 18).ok());
}

TEST(Lzss, RejectsTruncatedToken) {
  // A token is two bytes; the stream ends after the first.
  const std::vector<std::byte> stream = {std::byte{0x00}, std::byte{0x12}};
  EXPECT_FALSE(LzssDecompress(stream, 18).ok());
}

TEST(Lzss, GarbageStreamsNeverCrash) {
  // ASan/UBSan regression net: decompressing adversarial bytes may fail, but
  // must never touch memory out of bounds (a corrupted compressed chunk on
  // disk reaches this code path via the chunk reader).
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::byte> stream(1 + rng.Uniform(64));
    for (auto& b : stream) {
      b = static_cast<std::byte>(rng.Uniform(256));
    }
    for (size_t expected : {size_t{0}, size_t{1}, stream.size(), size_t{8192}}) {
      auto out = LzssDecompress(stream, expected);
      if (out.ok()) {
        EXPECT_EQ(out->size(), expected);
      }
    }
  }
}

// Property sweep: roundtrip across sizes and content classes.
class LzssRoundtrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LzssRoundtrip, Roundtrips) {
  const auto [size, kind] = GetParam();
  Rng rng(static_cast<uint64_t>(size * 31 + kind));
  std::vector<std::byte> input(static_cast<size_t>(size));
  for (size_t i = 0; i < input.size(); ++i) {
    switch (kind) {
      case 0:  // constant
        input[i] = std::byte{0x41};
        break;
      case 1:  // short period
        input[i] = static_cast<std::byte>('a' + i % 7);
        break;
      case 2:  // random
        input[i] = static_cast<std::byte>(rng.Uniform(256));
        break;
      case 3:  // long-range repeats
        input[i] = static_cast<std::byte>((i / 1000) % 3 == 0 ? 'z' : i % 251);
        break;
    }
  }
  auto packed = LzssCompress(input);
  auto raw = LzssDecompress(packed, input.size());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(*raw, input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKinds, LzssRoundtrip,
    ::testing::Combine(::testing::Values(1, 2, 17, 255, 4096, 8133, 20000),
                       ::testing::Values(0, 1, 2, 3)));

// ------------------------------------------------------------- logging

TEST(Logging, CountsEmittedMessagesPerLevel) {
  Counter* warns =
      MetricsRegistry::Default().GetCounter("log_messages", "warn");
  Counter* errors =
      MetricsRegistry::Default().GetCounter("log_messages", "error");
  const uint64_t warns_before = warns->Value();
  const uint64_t errors_before = errors->Value();
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  INV_LOG(kWarn, "counted");
  INV_LOG(kError, "counted");
  INV_LOG(kDebug, "suppressed below threshold, not counted");
  SetLogLevel(saved);
  EXPECT_EQ(warns->Value(), warns_before + 1);
  EXPECT_EQ(errors->Value(), errors_before + 1);
}

TEST(Logging, ConcurrentEmissionCountsExactly) {
  Counter* infos =
      MetricsRegistry::Default().GetCounter("log_messages", "info");
  const uint64_t before = infos->Value();
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        INV_LOG(kInfo, "mt");
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  SetLogLevel(saved);
  EXPECT_EQ(infos->Value(), before + kThreads * kPerThread);
}

}  // namespace
}  // namespace invfs
