// Tests for the open-loop multi-tenant load driver: profile parsing and
// scaling, the builtin mix end to end, per-tenant metric attribution, the
// coordinated-omission contract (a stalled server must be charged for every
// arrival it queued), and the invfs_timeseries virtual relation the sampler
// feeds.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/worlds.h"
#include "src/load/loadgen.h"
#include "src/obs/metrics.h"

namespace invfs {
namespace {

TEST(ParseProfileSpecTest, BareBuiltinNamesParse) {
  for (const char* name : {"mail", "analytics", "audit", "archive"}) {
    auto p = ParseProfileSpec(name);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_EQ(p->name, name);
    EXPECT_GE(p->clients, 1u);
    EXPECT_GT(p->ops_per_sec, 0.0);
  }
}

TEST(ParseProfileSpecTest, KeyValueOverridesApply) {
  auto p = ParseProfileSpec("mail:clients=500,rate=2.5,arrival=bursty,burst=8,bytes=4096,p99=123456");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->clients, 500u);
  EXPECT_DOUBLE_EQ(p->ops_per_sec, 2.5);
  EXPECT_EQ(p->arrival, ArrivalKind::kBursty);
  EXPECT_EQ(p->burst, 8u);
  EXPECT_EQ(p->bytes_per_op, 4096u);
  EXPECT_EQ(p->load_slo.p99_us, 123456u);
  // The objective row is labeled with the tenant name.
  EXPECT_EQ(p->load_slo.op, "mail");
}

TEST(ParseProfileSpecTest, RejectsUnknownNamesKeysAndBadValues) {
  EXPECT_FALSE(ParseProfileSpec("smtp").ok());
  EXPECT_FALSE(ParseProfileSpec("mail:color=red").ok());
  EXPECT_FALSE(ParseProfileSpec("mail:clients=zero").ok());
  EXPECT_FALSE(ParseProfileSpec("mail:rate=0").ok());
  EXPECT_FALSE(ParseProfileSpec("mail:arrival=sometimes").ok());
}

TEST(ScaleProfilesTest, HitsExactTotalsAndPreservesMix) {
  for (size_t total : {22u, 100u, 1000u, 5000u}) {
    auto profiles = BuiltinProfiles();
    ScaleProfiles(&profiles, total);
    size_t sum = 0;
    for (const TenantProfile& p : profiles) {
      EXPECT_GE(p.clients, 1u) << p.name;
      sum += p.clients;
    }
    EXPECT_EQ(sum, total);
  }
  // Mail is the largest builtin tenant and must stay the largest at scale.
  auto profiles = BuiltinProfiles();
  ScaleProfiles(&profiles, 1000);
  size_t mail = 0;
  size_t largest = 0;
  for (const TenantProfile& p : profiles) {
    largest = std::max(largest, p.clients);
    if (p.name == "mail") {
      mail = p.clients;
    }
  }
  EXPECT_EQ(mail, largest);
}

TEST(ScaleProfilesTest, EveryProfileKeepsAClientWhenShrunk) {
  auto profiles = BuiltinProfiles();
  ScaleProfiles(&profiles, 4);
  size_t sum = 0;
  for (const TenantProfile& p : profiles) {
    EXPECT_EQ(p.clients, 1u) << p.name;
    sum += p.clients;
  }
  EXPECT_EQ(sum, 4u);
}

TEST(LoadGenTest, BuiltinMixRunsCleanAcrossAllTenants) {
  auto world_or = InversionWorld::Create();
  ASSERT_TRUE(world_or.ok());
  InversionWorld& world = **world_or;

  LoadGenOptions opt;
  opt.seed = 42;
  opt.seconds = 4.0;
  LoadGen load(&world.fs(), opt);
  ASSERT_TRUE(load.Run().ok());

  const LoadGenReport report = load.Report();
  ASSERT_GE(report.tenants.size(), 3u) << "mix must span several profiles";
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.span_drops, 0u);
  EXPECT_GT(report.samples, 0u) << "the pump must tick the sampler";
  for (const TenantLoadStats& t : report.tenants) {
    EXPECT_GT(t.ops, 0u) << t.tenant << " never ran an op";
    EXPECT_EQ(t.errors, 0u) << t.tenant;
  }
  // At builtin 1x the offered load is far below saturation, so the per-
  // tenant load objectives must hold.
  EXPECT_TRUE(report.AllOk()) << report.DumpText();
}

TEST(LoadGenTest, PerTenantLatencyLabelsAreIsolated) {
  auto world_or = InversionWorld::Create();
  ASSERT_TRUE(world_or.ok());
  InversionWorld& world = **world_or;

  LoadGenOptions opt;
  opt.seed = 7;
  opt.seconds = 3.0;
  LoadGen load(&world.fs(), opt);
  ASSERT_TRUE(load.Run().ok());

  // The registry's load.latency_us{tenant} histogram must hold exactly that
  // tenant's observations — attribution, not aggregation.
  MetricsRegistry& metrics = world.db().metrics();
  const LoadGenReport report = load.Report();
  uint64_t total = 0;
  for (const TenantLoadStats& t : report.tenants) {
    Histogram* h = metrics.GetHistogram("load.latency_us", t.tenant);
    EXPECT_EQ(h->Count(), t.ops) << t.tenant;
    total += h->Count();
  }
  EXPECT_EQ(total, report.ops);
  // Entry-point wall-clock histograms carry the tenant tag too: mail commits
  // explicitly, and nobody else's label may absorb those observations.
  Histogram* mail_commit = metrics.GetHistogram("op.latency_us", "p_commit@mail");
  EXPECT_GT(mail_commit->Count(), 0u);
  Histogram* audit_commit = metrics.GetHistogram("op.latency_us", "p_commit@audit");
  EXPECT_EQ(audit_commit->Count(), 0u)
      << "auditors are read-only and never p_commit";
}

// The coordinated-omission contract: freeze the server mid-run and every
// arrival that was *intended* during the freeze must be charged the wait.
// A closed-loop driver records only the ops it issued (all fast) and its
// p99 barely moves; an open-loop one sees the stall dominate the tail.
TEST(LoadGenTest, StalledServerDominatesTailLatency) {
  constexpr SimMicros kStall = 30'000'000;  // 30 sim seconds

  auto baseline_p99 = [](SimMicros stall) -> uint64_t {
    auto world_or = InversionWorld::Create();
    EXPECT_TRUE(world_or.ok());
    InversionWorld& world = **world_or;
    LoadGenOptions opt;
    opt.seed = 42;
    opt.seconds = 4.0;
    opt.stall_at = 1'000'000;  // 1s into the arrival horizon
    opt.stall_for = stall;
    LoadGen load(&world.fs(), opt);
    EXPECT_TRUE(load.Run().ok());
    uint64_t worst = 0;
    for (const TenantLoadStats& t : load.Report().tenants) {
      worst = std::max(worst, t.slo.p99_us);
    }
    return worst;
  };

  const uint64_t calm = baseline_p99(0);
  const uint64_t stalled = baseline_p99(kStall);
  // Arrivals intended during the 30s freeze waited up to 30s; with 3 s of
  // post-stall horizon still to drain, the p99 must be stall-scale — not
  // service-time-scale. (Histogram percentiles are power-of-two upper
  // bounds, so compare against half the stall.)
  EXPECT_GE(stalled, kStall / 2)
      << "stall was not charged to queued arrivals";
  EXPECT_GE(stalled, 8 * calm) << "calm=" << calm << " stalled=" << stalled;
}

TEST(LoadGenTest, TimeseriesRelationServesSampledWindows) {
  auto world_or = InversionWorld::Create();
  ASSERT_TRUE(world_or.ok());
  InversionWorld& world = **world_or;

  LoadGenOptions opt;
  opt.seed = 42;
  opt.seconds = 3.0;
  LoadGen load(&world.fs(), opt);
  ASSERT_TRUE(load.Run().ok());
  ASSERT_GT(load.Report().samples, 0u);

  // Exact column check: txn.commits is a counter, so each row's value is the
  // per-window delta and the deltas sum to at most the live total.
  auto rs = world.session().Query(
      "retrieve (t.sample, t.micros, t.name, t.kind, t.value) "
      "from t in invfs_timeseries where t.name = \"txn.commits\"");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_GT(rs->rows.size(), 0u);
  int64_t delta_sum = 0;
  int64_t last_sample = 0;
  for (const Row& row : rs->rows) {
    EXPECT_GT(row[0].AsInt8(), last_sample) << "sample ids must ascend";
    last_sample = row[0].AsInt8();
    EXPECT_GT(row[1].AsInt8(), 0);  // micros
    EXPECT_EQ(row[2].AsText(), "txn.commits");
    EXPECT_EQ(row[3].AsText(), "counter");
    EXPECT_GE(row[4].AsInt8(), 0);
    delta_sum += row[4].AsInt8();
  }
  EXPECT_GT(delta_sum, 0) << "the load ran commits; some window saw them";

  // Per-tenant histogram series surface under their tenant label.
  rs = world.session().Query(
      "retrieve (t.label, t.count, t.p99) from t in invfs_timeseries "
      "where t.name = \"load.latency_us\" and t.label = \"mail\"");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_GT(rs->rows.size(), 0u);

  // Like every virtual relation, the series is now-only: it materializes
  // live ring state, so historical reads are a contract error, not empty.
  auto tt = world.session().Query(
      "retrieve (t.name) from t in invfs_timeseries[\"12345\"]");
  ASSERT_FALSE(tt.ok());
  EXPECT_EQ(tt.status().code(), ErrorCode::kInvalidArgument)
      << tt.status().ToString();
}

TEST(LoadGenRpcTest, FleetRunsOverTheMarshalledWire) {
  auto world_or = InversionWorld::Create();
  ASSERT_TRUE(world_or.ok());
  InversionWorld& world = **world_or;

  LoadGenOptions opt;
  opt.seed = 42;
  opt.seconds = 2.0;
  opt.transport = LoadTransport::kRpc;
  LoadGen load(&world.fs(), opt);
  ASSERT_TRUE(load.Run().ok());

  const LoadGenReport report = load.Report();
  EXPECT_GT(report.ops, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.rpc_exchanges, 0u) << "every op must cross the wire";
  EXPECT_EQ(report.rpc_faults, 0u) << "no rates armed";
  EXPECT_EQ(report.rpc_retries, 0u) << "a clean wire never retries";
  // Every tenant's frames carry its tag: the server-side binding must have
  // attributed rpc requests per tenant, not blended them.
  MetricsRegistry& metrics = world.db().metrics();
  EXPECT_GT(metrics.GetCounter("rpc.requests", "write")->Value(), 0u);
}

TEST(LoadGenRpcTest, WireFaultsAreAbsorbedInvisiblyByRetryAndDrc) {
  auto world_or = InversionWorld::Create();
  ASSERT_TRUE(world_or.ok());
  InversionWorld& world = **world_or;

  LoadGenOptions opt;
  opt.seed = 7;
  opt.seconds = 2.0;
  opt.transport = LoadTransport::kRpc;
  // Drops, duplicates, and truncation are fully absorbable: the client
  // retries under the same seq and the server's DRC replays anything already
  // executed. (Resets are excluded — one mid-transaction legitimately
  // surfaces kTxnAborted to its client.)
  opt.net_faults.drop_request = 0.02;
  opt.net_faults.drop_response = 0.02;
  opt.net_faults.duplicate = 0.01;
  opt.net_faults.truncate = 0.01;
  LoadGen load(&world.fs(), opt);
  ASSERT_TRUE(load.Run().ok());

  const LoadGenReport report = load.Report();
  EXPECT_GT(report.ops, 0u);
  EXPECT_GT(report.rpc_faults, 0u) << "the rates must actually fire";
  EXPECT_GT(report.rpc_retries, 0u);
  EXPECT_EQ(report.errors, 0u)
      << "a wire fault leaked through the resilience layer:\n"
      << report.DumpText();
}

}  // namespace
}  // namespace invfs
